// Package repro is the root of a Go reproduction of conf_icde_NandiPSA13
// ("With a Little Help from My Friends": socially personalized top-k
// search over a collaborative tagging network), grown into a replicated,
// overload-protected serving system.
//
// The package itself holds no library code — the engine lives under
// internal/... and the binaries under cmd/... (see README.md for the
// architecture map). What is rooted here is the cross-cutting test and
// benchmark surface: end-to-end integration tests across the storage and
// query stack, equivalence tests pinning the serving paths to each other,
// the benchmark suite mirroring the paper's experiment registry, and the
// doc-drift test keeping flags and stats keys in sync with the
// documentation.
package repro
