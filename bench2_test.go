package repro

// Benchmarks for the second wave of subsystems: the exact-algorithm
// portfolio (Fig 12), the durability layer (Ext 4), the buffer pool
// (Ext 5), the cost-based planner (Ext 6), and the HTTP serving layer
// (Ext 7). Same convention as bench_test.go: one bench per
// table/figure, `go test -bench=. -benchmem` regenerates the
// measurements.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/gen"
	"repro/internal/index"
	"repro/internal/pagestore"
	"repro/internal/planner"
	"repro/internal/server"
	"repro/internal/social"
	"repro/internal/wal"
)

// portfolioEngine builds the bench engine with the item index attached.
func portfolioEngine(b *testing.B) (*core.Engine, *gen.Dataset) {
	b.Helper()
	ds := benchDataset(b)
	e := benchEngine(b, ds)
	e.AttachItemIndex(core.BuildItemIndex(ds.Store))
	return e, ds
}

func benchQuery(ds *gen.Dataset, k int) core.Query {
	return core.Query{
		Seeker: ds.Graph.DegreePercentileUser(50),
		Tags:   []int32{1, 3},
		K:      k,
	}
}

// BenchmarkFig12_Portfolio compares the three exact algorithms on the
// same query (k = 10, median-degree seeker).
func BenchmarkFig12_Portfolio(b *testing.B) {
	e, ds := portfolioEngine(b)
	q := benchQuery(ds, 10)
	b.Run("SocialMerge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := e.SocialMerge(q, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ContextMerge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := e.ContextMerge(q, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("SocialTA", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := e.SocialTA(q, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExt4_WALAppend measures the durable mutation path under both
// sync policies (the fsync gap is the headline of Ext 4).
func BenchmarkExt4_WALAppend(b *testing.B) {
	for _, pol := range []struct {
		name string
		sync wal.SyncPolicy
	}{{"SyncAlways", wal.SyncAlways}, {"SyncManual", wal.SyncManual}} {
		b.Run(pol.name, func(b *testing.B) {
			cfg := durable.DefaultConfig()
			cfg.Sync = pol.sync
			cfg.CheckpointEvery = 0
			svc, err := durable.Open(b.TempDir(), cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer svc.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := svc.Tag(fmt.Sprintf("u%d", i%100), fmt.Sprintf("i%d", i%500), "t"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExt4_Recovery measures replaying a 2000-record log.
func BenchmarkExt4_Recovery(b *testing.B) {
	dir := b.TempDir()
	cfg := durable.DefaultConfig()
	cfg.Sync = wal.SyncManual
	cfg.CheckpointEvery = 0
	svc, err := durable.Open(dir, cfg)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if err := svc.Tag(fmt.Sprintf("u%d", i%100), fmt.Sprintf("i%d", i%500), fmt.Sprintf("t%d", i%20)); err != nil {
			b.Fatal(err)
		}
	}
	svc.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := durable.Open(dir, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if got := s.Stats().RecoveredRecords; got != 2000 {
			b.Fatalf("recovered %d", got)
		}
		s.Close()
	}
}

// BenchmarkExt5_PagedIndexRead measures the bounded-memory index load
// against the buffered one (BenchmarkIndexRead in bench_test.go).
func BenchmarkExt5_PagedIndexRead(b *testing.B) {
	ds := benchDataset(b)
	path := filepath.Join(b.TempDir(), "data.frnd")
	if err := index.WriteFile(path, ds.Graph, ds.Store); err != nil {
		b.Fatal(err)
	}
	for _, capacity := range []int{4, 64} {
		b.Run(fmt.Sprintf("capacity%d", capacity), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, _, err := index.ReadPagedFile(path, pagestore.Options{Capacity: capacity}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExt6_PlannerPlan measures pure planning overhead (it must be
// negligible next to execution).
func BenchmarkExt6_PlannerPlan(b *testing.B) {
	e, ds := portfolioEngine(b)
	p, err := planner.New(e)
	if err != nil {
		b.Fatal(err)
	}
	qs := make([]core.Query, 16)
	for i := range qs {
		qs[i] = benchQuery(ds, 1+i)
	}
	if err := p.Calibrate(qs); err != nil {
		b.Fatal(err)
	}
	q := benchQuery(ds, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if plan := p.Plan(q); plan.Est == nil {
			b.Fatal("no estimates")
		}
	}
}

// BenchmarkExt6_PlannerExecute measures planned end-to-end execution.
func BenchmarkExt6_PlannerExecute(b *testing.B) {
	e, ds := portfolioEngine(b)
	p, err := planner.New(e)
	if err != nil {
		b.Fatal(err)
	}
	q := benchQuery(ds, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := p.Execute(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExt7_HTTPSearch measures a search through the full HTTP
// handler stack (JSON decode/encode included, network excluded).
func BenchmarkExt7_HTTPSearch(b *testing.B) {
	cfg := social.DefaultServiceConfig()
	cfg.AutoCompactEvery = 0
	svc, err := social.NewService(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for u := 0; u < 30; u++ {
		if err := svc.Befriend(fmt.Sprintf("u%d", u), fmt.Sprintf("u%d", (u+1)%30), 0.7); err != nil {
			b.Fatal(err)
		}
		if err := svc.Tag(fmt.Sprintf("u%d", u), fmt.Sprintf("i%d", u%10), "go"); err != nil {
			b.Fatal(err)
		}
	}
	srv, err := server.New(svc)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodGet, "/v1/search?seeker=u0&tags=go&k=5", nil)
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body)
		}
	}
}

// BenchmarkExt7_HTTPTag measures a mutation through the handler stack.
func BenchmarkExt7_HTTPTag(b *testing.B) {
	cfg := social.DefaultServiceConfig()
	svc, err := social.NewService(cfg)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := server.New(svc)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body, _ := json.Marshal(map[string]interface{}{
			"user": fmt.Sprintf("u%d", i%50), "item": fmt.Sprintf("i%d", i%200), "tag": "go",
		})
		req := httptest.NewRequest(http.MethodPost, "/v1/tag", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != http.StatusNoContent {
			b.Fatalf("status %d: %s", rec.Code, rec.Body)
		}
	}
}
