#!/usr/bin/env bash
# Fleet smoke test (run by CI, and runnable locally): launches three
# friendserve -replica processes and one -replicas front-end (with a
# WAL-backed replication log), drives mixed search/Befriend traffic
# through the front-end, kills one replica, and asserts that
#   (a) answers after the kill are byte-identical to before it
#       (failover re-routes the dead replica's seekers to survivors
#       holding the same data),
#   (b) mixed traffic keeps succeeding while a replica is down, and
#   (c) /v1/stats on the front-end reports the ejection.
# It then SIGSTOPs another replica, pushes mutations it must miss,
# SIGCONTs it, and asserts
#   (d) the missed mutations and the catch-up that repaired them are
#       stats-visible (MissedMutations, Catchups, zero ReplogLag), and
#   (e) post-rejoin answers — now routed to the readmitted replica —
#       are byte-identical to the answers the survivors gave while it
#       was stopped (the stale-after-readmission regression).
# A resize phase then stands up a fresh 3-replica fleet and grows it
# to 5 via -join self-registration, shrinking back to 3 over
# POST /v2/fleet/resize, asserting
#   (f) answers stay byte-identical before, DURING and after each
#       splice (the joiner is gated on snapshot + catch-up),
#   (g) the joiners were pre-warmed with their inherited ring slice
#       (bounded cache-miss dip on the post-grow query sweep), and
#   (h) the fleet accepts mutations at both sizes.
# Finally, an HA phase stands up a fresh fleet with THREE quorum
# front-ends (-frontend-id/-peers), SIGKILLs the leader mid-write-storm
# and asserts
#   (i) a follower wins the election and keeps accepting writes,
#   (j) the surviving front-ends serve byte-identical answers,
#   (k) no quorum-acked mutation is lost: every acked write is
#       queryable and the survivors' committed replication logs are
#       identical (LSN audit via /v2/replog), and
#   (l) a traced mutation's flight record covers the whole write path,
#       including a follower's replicated-append span.
set -euo pipefail
cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
BIN="$WORK/friendserve"
OBSCHECK="$WORK/obscheck"
go build -o "$BIN" ./cmd/friendserve
go build -o "$OBSCHECK" ./cmd/obscheck

FRONT_PORT=18080
REPLICA_PORTS=(18081 18082 18083)
PIDS=()
cleanup() {
  kill "${PIDS[@]}" >/dev/null 2>&1 || true
  rm -rf "$WORK"
}
trap cleanup EXIT

for p in "${REPLICA_PORTS[@]}"; do
  "$BIN" -replica -addr "127.0.0.1:$p" >"$WORK/replica-$p.log" 2>&1 &
  PIDS+=("$!")
done
"$BIN" -replicas "http://127.0.0.1:${REPLICA_PORTS[0]},http://127.0.0.1:${REPLICA_PORTS[1]},http://127.0.0.1:${REPLICA_PORTS[2]}" \
  -addr "127.0.0.1:$FRONT_PORT" -health-interval 150ms -fail-after 2 -bcast-window 20ms \
  -replog-dir "$WORK/replog" -catchup-timeout 20s -mutation-timeout 1s \
  >"$WORK/frontend.log" 2>&1 &
PIDS+=("$!")

wait_ready() {
  for _ in $(seq 1 50); do
    if curl -fsS --max-time 10 "http://127.0.0.1:$1/readyz" >/dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "FAIL: port $1 never became ready" >&2
  exit 1
}
for p in "${REPLICA_PORTS[@]}" "$FRONT_PORT"; do wait_ready "$p"; done

BASE="http://127.0.0.1:$FRONT_PORT"
NUSERS=20

befriend() {
  curl -fsS --max-time 10 -X POST -d "{\"a\":\"$1\",\"b\":\"$2\",\"weight\":$3}" "$BASE/v1/friend" >/dev/null
}
tag() {
  curl -fsS --max-time 10 -X POST -d "{\"user\":\"$1\",\"item\":\"$2\",\"tag\":\"$3\"}" "$BASE/v1/tag" >/dev/null
}
query() {
  curl -fsS --max-time 10 -X POST -d "{\"seeker\":\"$1\",\"tags\":[\"pizza\"],\"k\":5,\"mode\":\"exact\"}" "$BASE/v2/search"
}

echo "== seeding corpus through the front-end"
for i in $(seq 0 $((NUSERS - 1))); do
  befriend "u$i" "u$(((i + 1) % NUSERS))" 0.8
  tag "u$i" "item$i" "pizza"
done
sleep 0.5 # let the invalidation broadcast fold the writes in fleet-wide

echo "== recording pre-kill answers"
for i in $(seq 0 $((NUSERS - 1))); do
  query "u$i" >"$WORK/before-u$i.json"
done

echo "== crashing replica ${REPLICA_PORTS[1]}"
# SIGKILL: a plain TERM would trigger the replica's graceful drain and
# it would keep answering — the point here is a hard crash.
kill -9 "${PIDS[1]}"

echo "== answers must fail over and stay byte-identical"
for i in $(seq 0 $((NUSERS - 1))); do
  query "u$i" >"$WORK/after-u$i.json"
  if ! cmp -s "$WORK/before-u$i.json" "$WORK/after-u$i.json"; then
    echo "FAIL: seeker u$i answered differently after the replica kill" >&2
    diff "$WORK/before-u$i.json" "$WORK/after-u$i.json" >&2 || true
    exit 1
  fi
done

echo "== mixed traffic with a dead replica must keep succeeding"
for i in $(seq 0 29); do
  case $((i % 3)) in
    0) befriend "u$((i % NUSERS))" "u$(((i + 7) % NUSERS))" 0.6 ;;
    1) tag "u$((i % NUSERS))" "extra$i" "pizza" ;;
    2) query "u$((i % NUSERS))" >/dev/null ;;
  esac
done

echo "== waiting for the health checker to eject the dead replica"
sleep 1
STATS=$(curl -fsS --max-time 10 "$BASE/v1/stats")
echo "$STATS" >"$WORK/stats.json"
if ! echo "$STATS" | grep -q '"Live":false'; then
  echo "FAIL: no ejected replica in /v1/stats: $STATS" >&2
  exit 1
fi
if ! echo "$STATS" | grep -Eq '"Ejections":[1-9]'; then
  echo "FAIL: /v1/stats reports no ejection: $STATS" >&2
  exit 1
fi
if ! echo "$STATS" | grep -Eq '"Failovers":[1-9]'; then
  echo "FAIL: /v1/stats reports no failovers: $STATS" >&2
  exit 1
fi
if ! echo "$STATS" | grep -Eq '"Batches":[1-9]'; then
  echo "FAIL: /v1/stats reports no invalidation broadcasts: $STATS" >&2
  exit 1
fi

echo "== SIGSTOP replica ${REPLICA_PORTS[2]}: it must miss mutations, then catch up"
STOPPED_PID="${PIDS[2]}"
kill -STOP "$STOPPED_PID"

# Mutations the stopped replica cannot see. The first couple block on
# -mutation-timeout until the health checker ejects it; all must succeed.
for i in $(seq 0 9); do
  befriend "u$((i % NUSERS))" "u$(((i + 5) % NUSERS))" 0.7
  tag "u$((i % NUSERS))" "stopped$i" "pizza"
done

echo "== waiting for the missed mutations to be stats-visible"
MISSED=no
for _ in $(seq 1 40); do
  STATS=$(curl -fsS --max-time 10 "$BASE/v1/stats")
  if echo "$STATS" | grep -Eq '"MissedMutations":[1-9]'; then MISSED=yes; break; fi
  sleep 0.25
done
if [ "$MISSED" != "yes" ]; then
  echo "FAIL: /v1/stats never reported MissedMutations while a replica was stopped" >&2
  exit 1
fi

# A stopped replica stalls each broadcast fan-out for its timeout, so
# the survivors' compaction heartbeat lags: wait until the final write
# (tag stopped9 by u9) is queryable before snapshotting.
QUIESCED=no
for _ in $(seq 1 80); do
  if query "u9" | grep -q stopped9; then QUIESCED=yes; break; fi
  sleep 0.25
done
if [ "$QUIESCED" != "yes" ]; then
  echo "FAIL: survivors never folded the writes pushed while a replica was stopped" >&2
  exit 1
fi
sleep 0.3 # both survivors ride the same batch; give the second its ack window
echo "== recording answers served by the survivors"
for i in $(seq 0 $((NUSERS - 1))); do
  query "u$i" >"$WORK/stopped-u$i.json"
done

echo "== SIGCONT: readmission must be gated on replication log catch-up"
kill -CONT "$STOPPED_PID"
CAUGHTUP=no
for _ in $(seq 1 80); do
  STATS=$(curl -fsS --max-time 10 "$BASE/v1/stats")
  if echo "$STATS" | grep -Eq '"Catchups":[1-9]'; then CAUGHTUP=yes; break; fi
  sleep 0.25
done
echo "$STATS" >"$WORK/stats-catchup.json"
if [ "$CAUGHTUP" != "yes" ]; then
  echo "FAIL: /v1/stats never reported a completed catch-up after SIGCONT: $STATS" >&2
  exit 1
fi
LIVE_COUNT=$(echo "$STATS" | grep -o '"Live":true' | wc -l)
if [ "$LIVE_COUNT" -ne 2 ]; then
  echo "FAIL: want 2 live replicas (killed one stays out), got $LIVE_COUNT: $STATS" >&2
  exit 1
fi
# Pin the post-rejoin assertions to the SIGCONTed replica specifically:
# it must be live, caught up (zero lag), and credited with the catch-up.
if ! echo "$STATS" | python3 -c "
import json, sys
stats = json.load(sys.stdin)
stats = stats.get('Backend', stats)  # /v1/stats wraps backend stats in an envelope
r = next(r for r in stats['Replicas'] if r['URL'].endswith(':${REPLICA_PORTS[2]}'))
assert r['Live'], 'stopped replica not live: %r' % r
assert r['ReplogLag'] == 0, 'stopped replica still lags: %r' % r
assert r['Counters']['Catchups'] >= 1, 'stopped replica has no catch-up: %r' % r
assert r['Counters']['MissedMutations'] >= 1, 'stopped replica missed nothing?: %r' % r
"; then
  echo "FAIL: readmitted replica is not caught up in /v1/stats: $STATS" >&2
  exit 1
fi

echo "== post-rejoin answers must be byte-identical to the survivors'"
sleep 0.3 # let routing settle on the readmitted replica
for i in $(seq 0 $((NUSERS - 1))); do
  query "u$i" >"$WORK/rejoined-u$i.json"
  if ! cmp -s "$WORK/stopped-u$i.json" "$WORK/rejoined-u$i.json"; then
    echo "FAIL: seeker u$i answered differently after the replica rejoined (stale serving)" >&2
    diff "$WORK/stopped-u$i.json" "$WORK/rejoined-u$i.json" >&2 || true
    exit 1
  fi
done

echo "== graceful drain: SIGTERM flips /readyz before shutdown"
FRONT_PID="${PIDS[3]}"
kill -TERM "$FRONT_PID"
DRAINED=no
for _ in $(seq 1 20); do
  CODE=$(curl -s --max-time 10 -o /dev/null -w '%{http_code}' "$BASE/readyz" || true)
  if [ "$CODE" = "503" ]; then DRAINED=yes; break; fi
  if [ -z "$CODE" ] || [ "$CODE" = "000" ]; then break; fi
  sleep 0.05
done
if [ "$DRAINED" != "yes" ]; then
  echo "FAIL: front-end never reported draining on SIGTERM" >&2
  exit 1
fi

echo "== resize phase: grow 3 -> 5 -> 3 under traffic (elastic join/retire)"
RS_FRONT_PORT=18100
RS_REPLICA_PORTS=(18101 18102 18103)
RS_JOINER_PORTS=(18104 18105)
RS_BASE="http://127.0.0.1:$RS_FRONT_PORT"

for p in "${RS_REPLICA_PORTS[@]}"; do
  "$BIN" -replica -addr "127.0.0.1:$p" >"$WORK/rs-replica-$p.log" 2>&1 &
  PIDS+=("$!")
done
"$BIN" -replicas "http://127.0.0.1:${RS_REPLICA_PORTS[0]},http://127.0.0.1:${RS_REPLICA_PORTS[1]},http://127.0.0.1:${RS_REPLICA_PORTS[2]}" \
  -addr "127.0.0.1:$RS_FRONT_PORT" -health-interval 150ms -fail-after 2 -bcast-window 20ms \
  -replog-dir "$WORK/rs-replog" -catchup-timeout 20s -mutation-timeout 2s \
  >"$WORK/rs-frontend.log" 2>&1 &
PIDS+=("$!")
for p in "${RS_REPLICA_PORTS[@]}" "$RS_FRONT_PORT"; do wait_ready "$p"; done

rs_befriend() {
  curl -fsS --max-time 10 -X POST -d "{\"a\":\"$1\",\"b\":\"$2\",\"weight\":$3}" "$RS_BASE/v1/friend" >/dev/null
}
rs_tag() {
  curl -fsS --max-time 10 -X POST -d "{\"user\":\"$1\",\"item\":\"$2\",\"tag\":\"$3\"}" "$RS_BASE/v1/tag" >/dev/null
}
rs_query() {
  curl -fsS --max-time 10 -X POST -d "{\"seeker\":\"$1\",\"tags\":[\"pizza\"],\"k\":5,\"mode\":\"exact\"}" "$RS_BASE/v2/search"
}
# rs_in_ring_counts prints "<in_ring> <retired>" from the front's stats.
rs_in_ring_counts() {
  curl -fsS --max-time 10 "$RS_BASE/v1/stats" | python3 -c "
import json, sys
stats = json.load(sys.stdin)
stats = stats.get('Backend', stats)
rows = stats['Replicas']
print(sum(1 for r in rows if r['InRing']), sum(1 for r in rows if r.get('Retired')))
"
}

echo "== seeding the resize fleet"
for i in $(seq 0 $((NUSERS - 1))); do
  rs_befriend "u$i" "u$(((i + 1) % NUSERS))" 0.8
  rs_tag "u$i" "item$i" "pizza"
done
sleep 0.5
echo "== recording pre-grow answers (also makes horizons cache-resident)"
for i in $(seq 0 $((NUSERS - 1))); do
  rs_query "u$i" >"$WORK/rs-pregrow-u$i.json"
done

echo "== joiners self-register with -join while queries keep flowing"
for p in "${RS_JOINER_PORTS[@]}"; do
  "$BIN" -replica -addr "127.0.0.1:$p" -join "$RS_BASE" -advertise "http://127.0.0.1:$p" \
    >"$WORK/rs-joiner-$p.log" 2>&1 &
  PIDS+=("$!")
done
# Byte-identical answers THROUGHOUT the grow: every query racing the
# two joins must match the pre-grow snapshot (no mutations in flight).
GROWN=no
for round in $(seq 1 120); do
  i=$((round % NUSERS))
  rs_query "u$i" >"$WORK/rs-during-u$i.json"
  if ! cmp -s "$WORK/rs-pregrow-u$i.json" "$WORK/rs-during-u$i.json"; then
    echo "FAIL: seeker u$i answered differently while the fleet was growing" >&2
    diff "$WORK/rs-pregrow-u$i.json" "$WORK/rs-during-u$i.json" >&2 || true
    exit 1
  fi
  read -r IN_RING RETIRED <<<"$(rs_in_ring_counts)"
  if [ "$IN_RING" = "5" ]; then GROWN=yes; break; fi
  sleep 0.25
done
if [ "$GROWN" != "yes" ]; then
  echo "FAIL: fleet never grew to 5 in-ring replicas" >&2
  curl -fsS "$RS_BASE/v1/stats" >&2 || true
  for p in "${RS_JOINER_PORTS[@]}"; do tail -3 "$WORK/rs-joiner-$p.log" >&2; done
  exit 1
fi
for p in "${RS_JOINER_PORTS[@]}"; do
  if ! grep -q "joined fleet via" "$WORK/rs-joiner-$p.log"; then
    echo "FAIL: joiner $p never logged a completed join" >&2
    tail -5 "$WORK/rs-joiner-$p.log" >&2
    exit 1
  fi
done

echo "== post-grow answers must be byte-identical to pre-grow"
for i in $(seq 0 $((NUSERS - 1))); do
  rs_query "u$i" >"$WORK/rs-postgrow-u$i.json"
  if ! cmp -s "$WORK/rs-pregrow-u$i.json" "$WORK/rs-postgrow-u$i.json"; then
    echo "FAIL: seeker u$i answered differently after the grow" >&2
    diff "$WORK/rs-pregrow-u$i.json" "$WORK/rs-postgrow-u$i.json" >&2
    exit 1
  fi
done

echo "== the cache hit-rate dip must be bounded: joiners were pre-warmed"
# Every seeker was cache-resident somewhere before the grow, so every
# seeker the grown ring hands a joiner was pushed to it pre-splice: the
# post-grow query sweep should hit, not rebuild. Allow a small dip.
if ! python3 -c "
import json, urllib.request
hits = misses = 0
for p in (${RS_JOINER_PORTS[0]}, ${RS_JOINER_PORTS[1]}):
    stats = json.load(urllib.request.urlopen('http://127.0.0.1:%d/v1/stats' % p, timeout=10))
    cache = stats.get('Backend', stats)['SeekerCache']
    hits += cache['Hits']; misses += cache['Misses']
assert hits >= 1, 'joiners served no cached query at all (hits=%d)' % hits
assert misses <= $((NUSERS / 4)), 'cache dip too deep: %d misses vs %d hits' % (misses, hits)
print('   joiner cache: %d hits, %d misses' % (hits, misses))
"; then
  echo "FAIL: joiners were not pre-warmed with their ring slice" >&2
  exit 1
fi

echo "== the 5-replica fleet must accept mutations"
for i in $(seq 0 9); do
  rs_tag "u$((i % NUSERS))" "grown$i" "pizza"
done
GROWNQ=no
for _ in $(seq 1 80); do
  if rs_query "u9" | grep -q grown9; then GROWNQ=yes; break; fi
  sleep 0.25
done
if [ "$GROWNQ" != "yes" ]; then
  echo "FAIL: writes at size 5 never became queryable" >&2
  exit 1
fi
sleep 0.3 # all five ride the same broadcast batch; give stragglers their ack window
echo "== recording pre-shrink answers"
for i in $(seq 0 $((NUSERS - 1))); do
  rs_query "u$i" >"$WORK/rs-preshrink-u$i.json"
done

echo "== shrink back to 3: retire the joined slots over /v2/fleet/resize"
RETIRE_OUT=$(curl -fsS --max-time 30 -X POST -d '{"retire":[3,4]}' "$RS_BASE/v2/fleet/resize")
echo "   $RETIRE_OUT"
if ! echo "$RETIRE_OUT" | python3 -c "
import json, sys
out = json.load(sys.stdin)
assert sorted(out['retired']) == [3, 4], out
"; then
  echo "FAIL: resize endpoint did not retire slots 3 and 4: $RETIRE_OUT" >&2
  exit 1
fi
read -r IN_RING RETIRED <<<"$(rs_in_ring_counts)"
if [ "$IN_RING" != "3" ] || [ "$RETIRED" != "2" ]; then
  echo "FAIL: post-shrink topology is $IN_RING in-ring / $RETIRED retired, want 3/2" >&2
  exit 1
fi

echo "== post-shrink answers must be byte-identical to pre-shrink"
for i in $(seq 0 $((NUSERS - 1))); do
  rs_query "u$i" >"$WORK/rs-postshrink-u$i.json"
  if ! cmp -s "$WORK/rs-preshrink-u$i.json" "$WORK/rs-postshrink-u$i.json"; then
    echo "FAIL: seeker u$i answered differently after the shrink" >&2
    diff "$WORK/rs-preshrink-u$i.json" "$WORK/rs-postshrink-u$i.json" >&2
    exit 1
  fi
done
echo "== the shrunk fleet must still accept mutations"
rs_tag "u0" "shrunk0" "pizza"
SHRUNKQ=no
for _ in $(seq 1 80); do
  if rs_query "u19" | grep -q shrunk0; then SHRUNKQ=yes; break; fi
  sleep 0.25
done
if [ "$SHRUNKQ" != "yes" ]; then
  echo "FAIL: writes after the shrink never became queryable" >&2
  exit 1
fi

echo "== HA phase: three quorum front-ends over a fresh replica set"
HA_REPLICA_PORTS=(18091 18092 18093)
HA_FE_PORTS=(18094 18095 18096)
HA_FE_IDS=(fe1 fe2 fe3)
PEERS="fe1=http://127.0.0.1:${HA_FE_PORTS[0]},fe2=http://127.0.0.1:${HA_FE_PORTS[1]},fe3=http://127.0.0.1:${HA_FE_PORTS[2]}"
HA_REPLICAS="http://127.0.0.1:${HA_REPLICA_PORTS[0]},http://127.0.0.1:${HA_REPLICA_PORTS[1]},http://127.0.0.1:${HA_REPLICA_PORTS[2]}"

for p in "${HA_REPLICA_PORTS[@]}"; do
  "$BIN" -replica -addr "127.0.0.1:$p" >"$WORK/ha-replica-$p.log" 2>&1 &
  PIDS+=("$!")
done
HA_FE_PIDS=()
for i in 0 1 2; do
  "$BIN" -replicas "$HA_REPLICAS" -addr "127.0.0.1:${HA_FE_PORTS[$i]}" \
    -frontend-id "${HA_FE_IDS[$i]}" -peers "$PEERS" -replog-dir "$WORK/ha-replog-${HA_FE_IDS[$i]}" \
    -health-interval 150ms -fail-after 2 -bcast-window 20ms -mutation-timeout 1s \
    -admit -trace-sample 1 -pprof -log-format json \
    >"$WORK/ha-fe-${HA_FE_IDS[$i]}.log" 2>&1 &
  HA_FE_PIDS+=("$!")
  PIDS+=("$!")
done
for p in "${HA_REPLICA_PORTS[@]}" "${HA_FE_PORTS[@]}"; do wait_ready "$p"; done
# A squatter on one of our ports would pass wait_ready while the real
# front-end died on bind; insist each process came up in HA mode.
for id in "${HA_FE_IDS[@]}"; do
  if ! grep -q "HA fleet front-end" "$WORK/ha-fe-$id.log"; then
    echo "FAIL: $id did not come up as an HA front-end (port taken?): $(cat "$WORK/ha-fe-$id.log")" >&2
    exit 1
  fi
done

# ha_leader prints the index (0..2) of the front-end reporting itself
# leader on /healthz, or returns nonzero.
ha_leader() {
  for i in 0 1 2; do
    local role
    role=$(curl -fsS --max-time 5 -o /dev/null -D - "http://127.0.0.1:${HA_FE_PORTS[$i]}/healthz" 2>/dev/null |
      tr -d '\r' | awk -F': ' 'tolower($1)=="x-quorum-role"{print $2}')
    if [ "$role" = "leader" ]; then echo "$i"; return 0; fi
  done
  return 1
}

wait_ha_leader() {
  for _ in $(seq 1 60); do
    if LEADER_IDX=$(ha_leader); then return 0; fi
    sleep 0.25
  done
  echo "FAIL: HA front-ends never elected a leader" >&2
  exit 1
}
wait_ha_leader
echo "   leader is ${HA_FE_IDS[$LEADER_IDX]} (port ${HA_FE_PORTS[$LEADER_IDX]})"

# ha_write retries one mutation across the front-end set until some
# node acks it — curl -L chases the follower's 307 to the leader, and
# the retry loop rides out the election window. Writes that never ack
# are NOT recorded, so the audit below checks exactly the acked set.
ha_write() { # $1 = path, $2 = body
  for _ in $(seq 1 60); do
    for p in "${HA_FE_PORTS[@]}"; do
      if curl -fsS -L --max-time 5 -X POST -d "$2" "http://127.0.0.1:$p$1" >/dev/null 2>&1; then
        return 0
      fi
    done
    sleep 0.25
  done
  return 1
}

echo "== write storm: SIGKILL the leader mid-stream"
ha_write "/v1/friend" '{"a":"haa","b":"hab","weight":0.9}' || { echo "FAIL: seed befriend never acked" >&2; exit 1; }
: >"$WORK/ha-acked.txt"
STORM_N=40
for i in $(seq 0 $((STORM_N - 1))); do
  if [ "$i" -eq 10 ]; then
    echo "   killing leader ${HA_FE_IDS[$LEADER_IDX]}"
    kill -9 "${HA_FE_PIDS[$LEADER_IDX]}"
  fi
  if ha_write "/v1/tag" "{\"user\":\"hab\",\"item\":\"haitem$i\",\"tag\":\"pizza\"}"; then
    echo "haitem$i" >>"$WORK/ha-acked.txt"
  fi
done
ACKED=$(wc -l <"$WORK/ha-acked.txt")
if [ "$ACKED" -lt $((STORM_N - 5)) ]; then
  echo "FAIL: only $ACKED/$STORM_N storm writes acked — the fleet did not keep serving" >&2
  exit 1
fi

echo "== a follower must have won the election"
DEAD_IDX=$LEADER_IDX
wait_ha_leader
if [ "$LEADER_IDX" = "$DEAD_IDX" ]; then
  echo "FAIL: dead front-end still reported as leader" >&2
  exit 1
fi
echo "   successor is ${HA_FE_IDS[$LEADER_IDX]} (port ${HA_FE_PORTS[$LEADER_IDX]})"
SURVIVORS=()
for i in 0 1 2; do
  if [ "$i" != "$DEAD_IDX" ]; then SURVIVORS+=("$i"); fi
done

echo "== no acked mutation lost: every acked item must be queryable"
ha_query() { # $1 = fe index, $2 = seeker
  curl -fsS --max-time 10 -X POST -d "{\"seeker\":\"$2\",\"tags\":[\"pizza\"],\"k\":200,\"mode\":\"exact\"}" \
    "http://127.0.0.1:${HA_FE_PORTS[$1]}/v2/search"
}
AUDITED=no
for _ in $(seq 1 80); do
  ha_query "${SURVIVORS[0]}" haa >"$WORK/ha-answer.json" || { sleep 0.25; continue; }
  if python3 -c "
import json, sys
answer = json.load(open('$WORK/ha-answer.json'))
items = {r['item'] for r in answer['results']}
acked = [l.strip() for l in open('$WORK/ha-acked.txt') if l.strip()]
missing = [a for a in acked if a not in items]
sys.exit(1 if missing else 0)
"; then AUDITED=yes; break; fi
  sleep 0.25
done
if [ "$AUDITED" != "yes" ]; then
  echo "FAIL: acked mutations missing from post-failover answers" >&2
  python3 -c "
import json
answer = json.load(open('$WORK/ha-answer.json'))
items = {r['item'] for r in answer['results']}
acked = [l.strip() for l in open('$WORK/ha-acked.txt') if l.strip()]
print('missing:', [a for a in acked if a not in items])
" >&2
  exit 1
fi

echo "== surviving front-ends must serve byte-identical answers"
ha_query "${SURVIVORS[0]}" haa >"$WORK/ha-surv0.json"
ha_query "${SURVIVORS[1]}" haa >"$WORK/ha-surv1.json"
if ! cmp -s "$WORK/ha-surv0.json" "$WORK/ha-surv1.json"; then
  echo "FAIL: surviving front-ends answered differently" >&2
  diff "$WORK/ha-surv0.json" "$WORK/ha-surv1.json" >&2 || true
  exit 1
fi

echo "== LSN audit: survivors' committed replication logs must be identical"
LOGS_MATCH=no
for _ in $(seq 1 40); do
  curl -fsS --max-time 10 "http://127.0.0.1:${HA_FE_PORTS[${SURVIVORS[0]}]}/v2/replog?from=1" >"$WORK/ha-log0.json"
  curl -fsS --max-time 10 "http://127.0.0.1:${HA_FE_PORTS[${SURVIVORS[1]}]}/v2/replog?from=1" >"$WORK/ha-log1.json"
  if cmp -s "$WORK/ha-log0.json" "$WORK/ha-log1.json"; then LOGS_MATCH=yes; break; fi
  sleep 0.25 # a follower learns the commit index one heartbeat late
done
if [ "$LOGS_MATCH" != "yes" ]; then
  echo "FAIL: survivors' committed replication logs diverge" >&2
  diff "$WORK/ha-log0.json" "$WORK/ha-log1.json" >&2 || true
  exit 1
fi
# The committed log must cover every acked write (1 befriend + tags +
# the election term records), or an acked LSN was dropped.
if ! python3 -c "
import json
page = json.load(open('$WORK/ha-log0.json'))
acked = sum(1 for l in open('$WORK/ha-acked.txt') if l.strip())
assert page['head'] >= acked + 1, 'committed head %d < %d acked writes' % (page['head'], acked + 1)
"; then
  echo "FAIL: committed log shorter than the acked write count" >&2
  exit 1
fi

echo "== observability phase: metrics, cross-process traces, pprof, structured logs"
# The HA front-ends run -trace-sample 1 -admit -pprof -log-format json.
OBS_PORT="${HA_FE_PORTS[$LEADER_IDX]}"
OBS_ID="${HA_FE_IDS[$LEADER_IDX]}"
OBS_BASE="http://127.0.0.1:$OBS_PORT"

# (i) /metrics must be valid Prometheus text exposition and carry the
# build, tracing, admission and backend metric families.
"$OBSCHECK" -mode metrics -url "$OBS_BASE" \
  -require "friendserve_build_info,friendserve_trace_started,friendserve_trace_sampled_count,friendserve_admission_admitted,friendserve_admission_latency_count,friendserve_replicas_info,friendserve_quorum_commit_lsn"

# (ii) a batched query sent with a sampled traceparent must land in the
# flight recorder as ONE trace stitching the front-end's routing spans
# with the replica's execution spans (a span from a node != the
# front-end's).
QTRACE="4bf92f3577b34da6a3ce929d0e0e4736"
curl -fsS --max-time 10 -H "traceparent: 00-$QTRACE-00f067aa0ba902b7-01" \
  -X POST -d '{"queries":[{"seeker":"haa","tags":["pizza"],"k":5,"mode":"exact"}]}' \
  "$OBS_BASE/v2/search/batch" >/dev/null
"$OBSCHECK" -mode trace -url "$OBS_BASE" -trace-id "$QTRACE" \
  -require-spans "admission.acquire,fleet.route,fleet.rpc,social.execute" -remote-node "$OBS_ID"

# (iii) a mutation's trace must cover front-end admission, the quorum
# commit — including at least one FOLLOWER's durable-append leg, which
# rides the detached replication push via per-entry traceparents — and
# at least one replica's execution: the end-to-end write path in one
# request id.
MTRACE="6c0fd2ab7e135c8b2a4f90d11e25aa04"
curl -fsS --max-time 10 -H "traceparent: 00-$MTRACE-00f067aa0ba902b7-01" \
  -X POST -d '{"user":"hab","item":"obsitem","tag":"pizza"}' "$OBS_BASE/v1/tag" >/dev/null
"$OBSCHECK" -mode trace -url "$OBS_BASE" -trace-id "$MTRACE" \
  -require-spans "admission.acquire,quorum.commit,quorum.follower.append,fleet.forward,fleet.rpc" -remote-node "$OBS_ID"

# (iv) pprof answers when enabled.
"$OBSCHECK" -mode pprof -url "$OBS_BASE"

# (v) the structured access log carries trace ids (JSON format here).
if ! grep -q '"trace":"'"$QTRACE"'"' "$WORK/ha-fe-$OBS_ID.log"; then
  echo "FAIL: front-end access log has no JSON line for trace $QTRACE" >&2
  tail -5 "$WORK/ha-fe-$OBS_ID.log" >&2
  exit 1
fi

echo "fleet smoke test passed"
