#!/usr/bin/env bash
# Fleet smoke test (run by CI, and runnable locally): launches three
# friendserve -replica processes and one -replicas front-end, drives
# mixed search/Befriend traffic through the front-end, kills one
# replica, and asserts that
#   (a) answers after the kill are byte-identical to before it
#       (failover re-routes the dead replica's seekers to survivors
#       holding the same data),
#   (b) mixed traffic keeps succeeding while a replica is down, and
#   (c) /v1/stats on the front-end reports the ejection.
set -euo pipefail
cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
BIN="$WORK/friendserve"
go build -o "$BIN" ./cmd/friendserve

FRONT_PORT=18080
REPLICA_PORTS=(18081 18082 18083)
PIDS=()
cleanup() {
  kill "${PIDS[@]}" >/dev/null 2>&1 || true
  rm -rf "$WORK"
}
trap cleanup EXIT

for p in "${REPLICA_PORTS[@]}"; do
  "$BIN" -replica -addr "127.0.0.1:$p" >"$WORK/replica-$p.log" 2>&1 &
  PIDS+=("$!")
done
"$BIN" -replicas "http://127.0.0.1:${REPLICA_PORTS[0]},http://127.0.0.1:${REPLICA_PORTS[1]},http://127.0.0.1:${REPLICA_PORTS[2]}" \
  -addr "127.0.0.1:$FRONT_PORT" -health-interval 150ms -fail-after 2 -bcast-window 20ms \
  >"$WORK/frontend.log" 2>&1 &
PIDS+=("$!")

wait_ready() {
  for _ in $(seq 1 50); do
    if curl -fsS --max-time 10 "http://127.0.0.1:$1/readyz" >/dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "FAIL: port $1 never became ready" >&2
  exit 1
}
for p in "${REPLICA_PORTS[@]}" "$FRONT_PORT"; do wait_ready "$p"; done

BASE="http://127.0.0.1:$FRONT_PORT"
NUSERS=20

befriend() {
  curl -fsS --max-time 10 -X POST -d "{\"a\":\"$1\",\"b\":\"$2\",\"weight\":$3}" "$BASE/v1/friend" >/dev/null
}
tag() {
  curl -fsS --max-time 10 -X POST -d "{\"user\":\"$1\",\"item\":\"$2\",\"tag\":\"$3\"}" "$BASE/v1/tag" >/dev/null
}
query() {
  curl -fsS --max-time 10 -X POST -d "{\"seeker\":\"$1\",\"tags\":[\"pizza\"],\"k\":5,\"mode\":\"exact\"}" "$BASE/v2/search"
}

echo "== seeding corpus through the front-end"
for i in $(seq 0 $((NUSERS - 1))); do
  befriend "u$i" "u$(((i + 1) % NUSERS))" 0.8
  tag "u$i" "item$i" "pizza"
done
sleep 0.5 # let the invalidation broadcast fold the writes in fleet-wide

echo "== recording pre-kill answers"
for i in $(seq 0 $((NUSERS - 1))); do
  query "u$i" >"$WORK/before-u$i.json"
done

echo "== crashing replica ${REPLICA_PORTS[1]}"
# SIGKILL: a plain TERM would trigger the replica's graceful drain and
# it would keep answering — the point here is a hard crash.
kill -9 "${PIDS[1]}"

echo "== answers must fail over and stay byte-identical"
for i in $(seq 0 $((NUSERS - 1))); do
  query "u$i" >"$WORK/after-u$i.json"
  if ! cmp -s "$WORK/before-u$i.json" "$WORK/after-u$i.json"; then
    echo "FAIL: seeker u$i answered differently after the replica kill" >&2
    diff "$WORK/before-u$i.json" "$WORK/after-u$i.json" >&2 || true
    exit 1
  fi
done

echo "== mixed traffic with a dead replica must keep succeeding"
for i in $(seq 0 29); do
  case $((i % 3)) in
    0) befriend "u$((i % NUSERS))" "u$(((i + 7) % NUSERS))" 0.6 ;;
    1) tag "u$((i % NUSERS))" "extra$i" "pizza" ;;
    2) query "u$((i % NUSERS))" >/dev/null ;;
  esac
done

echo "== waiting for the health checker to eject the dead replica"
sleep 1
STATS=$(curl -fsS --max-time 10 "$BASE/v1/stats")
echo "$STATS" >"$WORK/stats.json"
if ! echo "$STATS" | grep -q '"Live":false'; then
  echo "FAIL: no ejected replica in /v1/stats: $STATS" >&2
  exit 1
fi
if ! echo "$STATS" | grep -Eq '"Ejections":[1-9]'; then
  echo "FAIL: /v1/stats reports no ejection: $STATS" >&2
  exit 1
fi
if ! echo "$STATS" | grep -Eq '"Failovers":[1-9]'; then
  echo "FAIL: /v1/stats reports no failovers: $STATS" >&2
  exit 1
fi
if ! echo "$STATS" | grep -Eq '"Batches":[1-9]'; then
  echo "FAIL: /v1/stats reports no invalidation broadcasts: $STATS" >&2
  exit 1
fi

echo "== graceful drain: SIGTERM flips /readyz before shutdown"
FRONT_PID="${PIDS[3]}"
kill -TERM "$FRONT_PID"
DRAINED=no
for _ in $(seq 1 20); do
  CODE=$(curl -s --max-time 10 -o /dev/null -w '%{http_code}' "$BASE/readyz" || true)
  if [ "$CODE" = "503" ]; then DRAINED=yes; break; fi
  if [ -z "$CODE" ] || [ "$CODE" = "000" ]; then break; fi
  sleep 0.05
done
if [ "$DRAINED" != "yes" ]; then
  echo "FAIL: front-end never reported draining on SIGTERM" >&2
  exit 1
fi

echo "fleet smoke test passed"
