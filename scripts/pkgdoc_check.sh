#!/usr/bin/env bash
# pkgdoc_check.sh — every package must carry a godoc package comment.
#
# A package comment is the one-line contract a reader gets before any
# code; CI failing here is how the repo keeps that contract as packages
# are added. Uses `go list` only — no extra tooling.
set -euo pipefail
cd "$(dirname "$0")/.."

missing=0
while IFS=: read -r path doc; do
  if [ -z "${doc// /}" ]; then
    echo "MISSING package comment: $path"
    missing=1
  fi
done < <(go list -f '{{.ImportPath}}:{{.Doc}}' ./...)

if [ "$missing" -ne 0 ]; then
  echo "FAIL: add a package comment (// Package <name> ...) to each package above." >&2
  exit 1
fi
echo "pkgdoc check passed: every package is documented."
