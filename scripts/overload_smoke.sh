#!/usr/bin/env bash
# Overload smoke test (run by CI, and runnable locally): launches a
# 3-replica fleet behind a front-end with adaptive admission control,
# calibrates its capacity with the open-loop harness, then drives 2×
# that capacity for ~20s and asserts the brownout contract:
#   (a) the server sheds (429 + Retry-After on the wire; the stats
#       counters prove the admission controller did it, not a proxy),
#   (b) p99 of ADMITTED requests stays bounded near the queue deadline
#       — overload makes answers scarce, not slow,
#   (c) on-deadline goodput keeps a floor relative to measured capacity
#       (the server keeps doing useful work while shedding the excess),
#   (d) brownout degraded answers (mode auto → certified approximate)
#       are visible in the stats.
# It then restarts the fleet WITHOUT admission control, calibrates that
# topology's own capacity, and asserts that driving 2× violates the
# latency SLO — the control group that shows the controller is what
# buys the bounded tail.
set -euo pipefail
cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
SERVE="$WORK/friendserve"
LOAD="$WORK/loadtest"
go build -o "$SERVE" ./cmd/friendserve
go build -o "$LOAD" ./cmd/loadtest

FRONT_PORT=18080
REPLICA_PORTS=(18081 18082 18083)
BASE="http://127.0.0.1:$FRONT_PORT"
SLO=100ms
PIDS=()

cleanup() {
  kill "${PIDS[@]}" >/dev/null 2>&1 || true
  rm -rf "$WORK"
}
trap cleanup EXIT

wait_ready() {
  for _ in $(seq 1 50); do
    if curl -fsS --max-time 10 "http://127.0.0.1:$1/readyz" >/dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "FAIL: port $1 never became ready" >&2
  exit 1
}

start_fleet() { # $1 = extra flags for every process ("" for none)
  local extra=$1
  for p in "${REPLICA_PORTS[@]}"; do
    # shellcheck disable=SC2086
    "$SERVE" -replica -addr "127.0.0.1:$p" $extra >"$WORK/replica-$p.log" 2>&1 &
    PIDS+=("$!")
  done
  # shellcheck disable=SC2086
  "$SERVE" -replicas "http://127.0.0.1:${REPLICA_PORTS[0]},http://127.0.0.1:${REPLICA_PORTS[1]},http://127.0.0.1:${REPLICA_PORTS[2]}" \
    -addr "127.0.0.1:$FRONT_PORT" -health-interval 250ms -fail-after 3 -bcast-window 20ms \
    $extra >"$WORK/frontend.log" 2>&1 &
  PIDS+=("$!")
  for p in "${REPLICA_PORTS[@]}" "$FRONT_PORT"; do wait_ready "$p"; done
}

stop_fleet() {
  kill "${PIDS[@]}" >/dev/null 2>&1 || true
  wait "${PIDS[@]}" 2>/dev/null || true
  PIDS=()
}

echo "== fleet up (admission on: tight front-end window so the generator can saturate it)"
# Replicas run package-default adaptive admission; the front-end gets a
# deliberately tight cap (window 2, queue 8, 50ms queue budget) so that
# a same-machine generator can actually saturate it — the contract
# under test is the control loop, not the hardware's absolute capacity.
for p in "${REPLICA_PORTS[@]}"; do
  "$SERVE" -replica -addr "127.0.0.1:$p" -admit >"$WORK/replica-$p.log" 2>&1 &
  PIDS+=("$!")
done
"$SERVE" -replicas "http://127.0.0.1:${REPLICA_PORTS[0]},http://127.0.0.1:${REPLICA_PORTS[1]},http://127.0.0.1:${REPLICA_PORTS[2]}" \
  -addr "127.0.0.1:$FRONT_PORT" -health-interval 250ms -fail-after 3 -bcast-window 20ms \
  -admit -admit-max-window 2 -admit-queue 8 -admit-queue-deadline 50ms \
  >"$WORK/frontend.log" 2>&1 &
PIDS+=("$!")
for p in "${REPLICA_PORTS[@]}" "$FRONT_PORT"; do wait_ready "$p"; done

echo "== calibrating capacity (×2 ramp, 2s steps)"
CAP=$("$LOAD" -url "$BASE" -calibrate -qps 200 -duration 2s -slo "$SLO" -out "$WORK/calibration.json")
echo "   capacity-at-SLO: $CAP qps"

DRIVE=$(awk "BEGIN{printf \"%d\", $CAP * 2}")
# Goodput floor: 70% of one replica's share (a third) of the measured
# fleet capacity, over the 18s drive, counted by the server itself
# (OKOnDeadline) so harness-side CPU contention cannot fail the run.
MINOK=$(awk "BEGIN{printf \"%d\", $CAP / 3 * 0.7 * 18}")

echo "== driving 2× capacity ($DRIVE qps) for 18s against the admitting fleet"
"$LOAD" -url "$BASE" -qps "$DRIVE" -duration 18s -slo "$SLO" \
  -min-stat-shed 1 -max-admitted-p99 400ms -min-stat-ok "$MINOK" \
  -out "$WORK/overload.json"
grep -E '"(shed|ok|late|degraded|timeout)"' "$WORK/overload.json" | sed 's/^/   /'

echo "== sheds and brownout degrades must be visible in /v1/stats"
STATS=$(curl -fsS --max-time 10 "$BASE/v1/stats")
echo "$STATS" >"$WORK/stats-overload.json"
if ! echo "$STATS" | grep -Eq '"Shed(QueueFull|Budget|Deadline)":[1-9]'; then
  echo "FAIL: overload run produced no admission sheds: $STATS" >&2
  exit 1
fi
if ! echo "$STATS" | grep -Eq '"Degraded":[1-9]'; then
  echo "FAIL: overload run produced no brownout-degraded answers: $STATS" >&2
  exit 1
fi

echo "== a shed must answer 429 with Retry-After while saturated"
# Saturate briefly in the background and probe for a 429.
"$LOAD" -url "$BASE" -qps "$DRIVE" -duration 4s -slo "$SLO" >/dev/null 2>&1 &
BGLOAD=$!
GOT429=no
for _ in $(seq 1 100); do
  HDRS=$(curl -s --max-time 2 -o /dev/null -D - "$BASE/v1/search?seeker=u0001&tags=tag01&k=5" || true)
  if echo "$HDRS" | head -1 | grep -q 429; then
    if ! echo "$HDRS" | grep -qi '^retry-after:'; then
      echo "FAIL: 429 without a Retry-After header:" >&2
      echo "$HDRS" >&2
      exit 1
    fi
    GOT429=yes
    break
  fi
done
wait "$BGLOAD" 2>/dev/null || true
if [ "$GOT429" != "yes" ]; then
  echo "FAIL: never observed a 429 while driving 2x capacity" >&2
  exit 1
fi

echo "== control group: same fleet WITHOUT admission control"
stop_fleet
start_fleet ""
CAP2=$("$LOAD" -url "$BASE" -calibrate -qps 200 -duration 2s -slo "$SLO" -out "$WORK/calibration-off.json")
DRIVE2=$(awk "BEGIN{printf \"%d\", $CAP2 * 2}")
echo "   admission-off capacity: $CAP2 qps; driving $DRIVE2 for 10s"
"$LOAD" -url "$BASE" -qps "$DRIVE2" -duration 10s -slo "$SLO" \
  -expect-p99-over "$SLO" -out "$WORK/overload-off.json"
grep -E '"(p99_ns|timeout|late)"' "$WORK/overload-off.json" | sed 's/^/   /'

echo "overload smoke test passed"
