#!/usr/bin/env python3
"""linkcheck.py — validate relative markdown links and anchors.

Scans README.md, ROADMAP.md, CHANGES.md and docs/**.md for inline
markdown links. For every relative link it asserts the target file (or
directory) exists, and for fragment links (#anchor) that the target
heading exists, using GitHub's anchor-slug rules. External http(s) and
mailto links are skipped — CI must not depend on the network.

Exit 0 when clean; prints one line per broken link and exits 1 otherwise.
"""

import os
import re
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

LINK_RE = re.compile(r"(?<!!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
CODE_FENCE_RE = re.compile(r"^\s*```")


def md_files():
    files = []
    for name in ("README.md", "ROADMAP.md", "CHANGES.md", "PAPER.md"):
        p = os.path.join(ROOT, name)
        if os.path.exists(p):
            files.append(p)
    for dirpath, _dirnames, filenames in os.walk(os.path.join(ROOT, "docs")):
        for fn in sorted(filenames):
            if fn.endswith(".md"):
                files.append(os.path.join(dirpath, fn))
    return files


def github_slug(heading):
    """GitHub's anchor algorithm: lowercase, drop punctuation, spaces to dashes."""
    # Inline code and links inside headings keep their text.
    heading = re.sub(r"`([^`]*)`", r"\1", heading)
    heading = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    heading = heading.strip().lower()
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def anchors_of(path, cache={}):
    if path in cache:
        return cache[path]
    slugs = set()
    counts = {}
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for line in f:
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = HEADING_RE.match(line)
            if not m:
                continue
            slug = github_slug(m.group(1))
            n = counts.get(slug, 0)
            counts[slug] = n + 1
            slugs.add(slug if n == 0 else f"{slug}-{n}")
    cache[path] = slugs
    return slugs


def check_file(path):
    errors = []
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for m in LINK_RE.finditer(line):
                target = m.group(1)
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                base, _, frag = target.partition("#")
                if base:
                    dest = os.path.normpath(os.path.join(os.path.dirname(path), base))
                else:
                    dest = path  # same-file anchor
                rel = os.path.relpath(path, ROOT)
                if not os.path.exists(dest):
                    errors.append(f"{rel}:{lineno}: broken link {target!r} (no such file)")
                    continue
                if frag:
                    if os.path.isdir(dest) or not dest.endswith(".md"):
                        continue  # anchors only checked into markdown
                    if frag.lower() not in anchors_of(dest):
                        errors.append(
                            f"{rel}:{lineno}: broken anchor {target!r} "
                            f"(no heading slug {frag!r} in {os.path.relpath(dest, ROOT)})"
                        )
    return errors


def main():
    files = md_files()
    errors = []
    for path in files:
        errors.extend(check_file(path))
    for e in errors:
        print(e)
    if errors:
        print(f"linkcheck: {len(errors)} broken link(s) across {len(files)} files", file=sys.stderr)
        return 1
    print(f"linkcheck: {len(files)} markdown files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
