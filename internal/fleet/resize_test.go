package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/search"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/social"
)

// TestElasticJoinAndRetireUnderTraffic is the end-to-end resharding
// test: a 2-replica fleet with a replication log grows to 3 via the
// snapshot-bootstrapped join, then shrinks back by retiring a slot,
// with answers byte-identical to a reference service throughout and
// the joiner pre-warmed with exactly its ring slice.
func TestElasticJoinAndRetireUnderTraffic(t *testing.T) {
	front, pool, reps, _ := newCatchupFleet(t, 2, t.TempDir())
	ctx := context.Background()

	ref, err := social.NewService(social.DefaultServiceConfig())
	if err != nil {
		t.Fatal(err)
	}
	const nUsers = 16
	user := func(i int) string { return fmt.Sprintf("u%d", i) }
	mutate := func(i int) {
		a, b := user(i), user((i+1)%nUsers)
		if err := front.Befriend(a, b, 0.9); err != nil {
			t.Fatalf("Befriend(%s,%s): %v", a, b, err)
		}
		if err := ref.Befriend(a, b, 0.9); err != nil {
			t.Fatal(err)
		}
		if err := front.Tag(b, "item"+b, "pizza"); err != nil {
			t.Fatalf("Tag(%s): %v", b, err)
		}
		if err := ref.Tag(b, "item"+b, "pizza"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < nUsers; i++ {
		mutate(i)
	}
	if err := front.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := ref.Flush(); err != nil {
		t.Fatal(err)
	}

	req := func(i int) search.Request {
		return search.Request{Seeker: user(i), Tags: []string{"pizza"}, K: 4, Mode: search.ModeExact}
	}
	checkAnswers := func(when string) {
		t.Helper()
		for i := 0; i < nUsers; i++ {
			want, err := ref.Do(ctx, req(i))
			if err != nil {
				t.Fatal(err)
			}
			got, err := front.Do(ctx, req(i))
			if err != nil {
				t.Fatalf("%s: Do(%s): %v", when, user(i), err)
			}
			if !reflect.DeepEqual(got.Results, want.Results) {
				t.Fatalf("%s: answers for %s diverge: got %+v want %+v", when, user(i), got.Results, want.Results)
			}
		}
	}
	checkAnswers("before join") // also makes horizons cache-resident

	// Grow 2 → 3: snapshot bootstrap, suffix catch-up, pre-warm, splice.
	joiner := newToggleReplica(t)
	epoch := front.FleetEpoch()
	oldRing := pool.Ring()
	slot, err := front.JoinReplica(ctx, joiner.ts.URL)
	if err != nil {
		t.Fatalf("JoinReplica: %v", err)
	}
	if slot != 2 {
		t.Fatalf("joiner slot = %d, want 2", slot)
	}
	if !pool.InRing(slot) || !pool.Live(slot) {
		t.Fatalf("joiner not live in-ring: inRing=%v live=%v", pool.InRing(slot), pool.Live(slot))
	}
	if got := front.FleetEpoch(); got <= epoch {
		t.Fatalf("epoch = %d after join, want > %d", got, epoch)
	}
	checkAnswers("after join")

	// The joiner was pre-warmed with its moved slice: any queried seeker
	// the grown ring hands to slot 2 must already be cache-resident there
	// (it was resident on its previous owner — checkAnswers saw to that).
	var queried []string
	for i := 0; i < nUsers; i++ {
		queried = append(queried, user(i))
	}
	movedToJoiner := shard.MovedKeys(oldRing, pool.Ring(), queried)[slot]
	if len(movedToJoiner) == 0 {
		t.Fatalf("no queried seeker moved to the joiner (vnode layout changed?)")
	}
	resident := make(map[string]bool)
	for _, n := range joiner.svc.CachedSeekers() {
		resident[n] = true
	}
	for _, n := range movedToJoiner {
		if !resident[n] {
			t.Fatalf("moved seeker %q not pre-warmed on the joiner (resident: %v)", n, joiner.svc.CachedSeekers())
		}
	}

	// Writes after the join reach the joiner through ordinary stamped
	// fan-out.
	for i := 0; i < nUsers; i++ {
		mutate(i)
	}
	if err := front.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := ref.Flush(); err != nil {
		t.Fatal(err)
	}
	checkAnswers("after post-join writes")

	// Shrink 3 → 2: retire slot 0, draining its cached slice to the ring
	// successors.
	epoch = front.FleetEpoch()
	if err := front.RetireReplica(ctx, 0); err != nil {
		t.Fatalf("RetireReplica: %v", err)
	}
	if !pool.Retired(0) || pool.InRing(0) || pool.Live(0) {
		t.Fatalf("slot 0 not fully retired: retired=%v inRing=%v live=%v", pool.Retired(0), pool.InRing(0), pool.Live(0))
	}
	if got := front.FleetEpoch(); got <= epoch {
		t.Fatalf("epoch = %d after retire, want > %d", got, epoch)
	}
	checkAnswers("after retire")

	// A retired slot stops receiving mutations: its cursor freezes while
	// the fleet keeps writing.
	frozen := reps[0].svc.AppliedLSN()
	for i := 0; i < nUsers; i++ {
		mutate(i)
	}
	if err := front.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := ref.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := reps[0].svc.AppliedLSN(); got != frozen {
		t.Fatalf("retired replica cursor advanced %d → %d", frozen, got)
	}
	checkAnswers("after post-retire writes")

	st := front.StatsAny().(Stats)
	if len(st.Replicas) != 3 || !st.Replicas[0].Retired || st.Replicas[0].InRing || !st.Replicas[2].InRing {
		t.Fatalf("stats do not reflect the resize: %+v", st.Replicas)
	}
}

// TestJoinIdempotentByURL pins the retry contract: re-joining a URL
// that is already a member resumes (and, once joined, no-ops) instead
// of admitting a duplicate slot.
func TestJoinIdempotentByURL(t *testing.T) {
	front, pool, _, _ := newCatchupFleet(t, 2, t.TempDir())
	ctx := context.Background()
	if err := front.Befriend("alice", "bob", 0.9); err != nil {
		t.Fatal(err)
	}
	joiner := newToggleReplica(t)
	slot1, err := front.JoinReplica(ctx, joiner.ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	slot2, err := front.JoinReplica(ctx, joiner.ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if slot1 != slot2 {
		t.Fatalf("re-join allocated a new slot: %d then %d", slot1, slot2)
	}
	if pool.Replicas() != 3 {
		t.Fatalf("replicas = %d after double join, want 3", pool.Replicas())
	}
}

// TestResizeWithoutReplogRefused pins the mode constraint: elastic
// resize needs the replication log (the joiner's bootstrap is snapshot
// + log suffix), so a log-less front-end refuses it.
func TestResizeWithoutReplogRefused(t *testing.T) {
	front, _, _, _ := newCatchupFleet(t, 2, "")
	if _, err := front.JoinReplica(context.Background(), "http://127.0.0.1:1"); err != ErrNoElasticLog {
		t.Fatalf("join without replog: %v, want ErrNoElasticLog", err)
	}
	if err := front.RetireReplica(context.Background(), 0); err != ErrNoElasticLog {
		t.Fatalf("retire without replog: %v, want ErrNoElasticLog", err)
	}
}

// TestFleetResizeEndpoint drives a join and a retire through the admin
// HTTP surface (POST /v2/fleet/resize) end to end.
func TestFleetResizeEndpoint(t *testing.T) {
	front, pool, _, _ := newCatchupFleet(t, 2, t.TempDir())
	if err := front.Befriend("alice", "bob", 0.9); err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(front)
	if err != nil {
		t.Fatal(err)
	}
	admin := httptest.NewServer(srv)
	t.Cleanup(admin.Close)

	joiner := newToggleReplica(t)
	body := fmt.Sprintf(`{"join":[%q],"retire":[0]}`, joiner.ts.URL)
	resp, err := admin.Client().Post(admin.URL+"/v2/fleet/resize", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out server.FleetResizeResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("resize status = %d (%+v)", resp.StatusCode, out)
	}
	if len(out.Joined) != 1 || out.Joined[0] != 2 || len(out.Retired) != 1 || out.Retired[0] != 0 {
		t.Fatalf("resize response = %+v", out)
	}
	if out.Epoch != pool.Epoch() || out.Epoch < 3 {
		t.Fatalf("epoch = %d (pool %d)", out.Epoch, pool.Epoch())
	}
	if !pool.InRing(2) || !pool.Retired(0) {
		t.Fatalf("topology after endpoint resize: inRing(2)=%v retired(0)=%v", pool.InRing(2), pool.Retired(0))
	}

	// The resized fleet still accepts writes and answers queries.
	if err := front.Tag("bob", "luigis", "pizza"); err != nil {
		t.Fatal(err)
	}
	if err := front.Flush(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool {
		r, err := front.Do(context.Background(), search.Request{Seeker: "alice", Tags: []string{"pizza"}, K: 3, Mode: search.ModeExact})
		return err == nil && len(r.Results) == 1 && r.Results[0].Item == "luigis"
	})
}
