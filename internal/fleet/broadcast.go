package fleet

import (
	"context"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Broadcaster defaults, substituted for zero config fields.
const (
	DefaultBroadcastWindow  = 25 * time.Millisecond
	DefaultMaxBatchEdges    = 512
	DefaultBroadcastTimeout = 5 * time.Second
)

// BroadcasterConfig tunes the invalidation broadcaster.
type BroadcasterConfig struct {
	// Window is the coalescing window: dirty edges noted within it ride
	// one batch, so a burst of writes costs one fleet-wide POST instead
	// of one per write (0 = DefaultBroadcastWindow).
	Window time.Duration
	// MaxBatchEdges flushes a batch early once this many distinct dirty
	// edges accumulated, bounding both the wire size and how much cached
	// state one broadcast drops at once (0 = DefaultMaxBatchEdges).
	MaxBatchEdges int
	// Timeout bounds one replica's acknowledgement of one batch
	// (0 = DefaultBroadcastTimeout).
	Timeout time.Duration
}

// Broadcaster batches the write path's dirty friendship edges and fans
// them out to every replica's /v2/invalidate endpoint. A broadcast does
// two jobs on each replica: it folds forwarded-but-pending writes into
// the queryable snapshot (the fleet's compaction heartbeat) and drops
// the cached seeker horizons the batch's edges could affect — the
// edge-scoped rule, applied across processes, so a confined write burst
// never global-flushes the fleet's caches.
//
// A replica that fails to acknowledge a batch is marked missed; its
// next successful broadcast — or, on the eject→live transition, an
// immediate FlushMissed — is escalated to a global invalidation, so
// edge-level bookkeeping never has to replay history to stay sound.
// (Missed *mutations* are the replication log's job: a replica ejected
// while the fleet kept writing streams the records it missed from the
// Frontend's wal-backed replog before the pool readmits it, and its
// rejoin invalidation is scoped to exactly those records' edges; see
// docs/fleet.md.)
type Broadcaster struct {
	cfg BroadcasterConfig

	// flushMu serializes whole flushes, so a synchronous Flush returns
	// only after any in-flight fan-out completed too.
	flushMu sync.Mutex

	mu      sync.Mutex
	clients []*Client // slot-indexed, append-only (AddClient); aligned with the pool's slots
	pending [][2]string
	seen    map[[2]string]struct{}
	dirty   bool      // a write (possibly tag-only) awaits a broadcast
	oldest  time.Time // arrival of the oldest unbroadcast note
	missed  []bool    // per replica: escalate next batch to global
	// disabled marks retired slots: never fanned out to again, and a
	// fan-out already in flight when the slot retires may still send —
	// harmless, the retiree just drops cache state it no longer serves.
	disabled []bool
	// missedSeq counts MarkMissed calls per replica; clears are guarded
	// on it so a repair can never erase a miss recorded after the repair
	// started (check-act race on the flag).
	missedSeq []uint64
	kick      chan struct{}

	counters metrics.BroadcastCounters
	stop     chan struct{}
	done     chan struct{}
	once     sync.Once
}

// NewBroadcaster builds a broadcaster over the replica clients and
// starts its flush loop. Close drains and stops it.
func NewBroadcaster(clients []*Client, cfg BroadcasterConfig) *Broadcaster {
	if cfg.Window <= 0 {
		cfg.Window = DefaultBroadcastWindow
	}
	if cfg.MaxBatchEdges <= 0 {
		cfg.MaxBatchEdges = DefaultMaxBatchEdges
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultBroadcastTimeout
	}
	b := &Broadcaster{
		clients:   clients,
		cfg:       cfg,
		seen:      make(map[[2]string]struct{}),
		missed:    make([]bool, len(clients)),
		missedSeq: make([]uint64, len(clients)),
		disabled:  make([]bool, len(clients)),
		kick:      make(chan struct{}, 1),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	go b.loop()
	return b
}

// NoteEdge records one dirty friendship edge (order-insensitive,
// deduplicated within the batch) for the next broadcast.
func (b *Broadcaster) NoteEdge(a, c string) {
	key := [2]string{a, c}
	if c < a {
		key = [2]string{c, a}
	}
	b.mu.Lock()
	if _, ok := b.seen[key]; !ok {
		b.seen[key] = struct{}{}
		b.pending = append(b.pending, key)
	}
	b.noteLocked()
	full := len(b.pending) >= b.cfg.MaxBatchEdges
	b.mu.Unlock()
	if full {
		b.wake()
	}
}

// NoteWrite records a write that dirtied no friendship edge (a tag).
// Tags never invalidate cached horizons, but replicas still need the
// broadcast's compaction heartbeat for the write to become queryable.
func (b *Broadcaster) NoteWrite() {
	b.mu.Lock()
	b.noteLocked()
	b.mu.Unlock()
}

func (b *Broadcaster) noteLocked() {
	if !b.dirty {
		b.dirty = true
		b.oldest = time.Now()
		b.wake()
	}
}

// AddClient registers a new replica slot for invalidation fan-out and
// returns its index. The caller (the resize orchestrator) keeps the
// broadcaster's slots aligned with the pool's: Pool.Admit and AddClient
// are invoked together, in slot order.
func (b *Broadcaster) AddClient(c *Client) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.clients = append(b.clients, c)
	b.missed = append(b.missed, false)
	b.missedSeq = append(b.missedSeq, 0)
	b.disabled = append(b.disabled, false)
	return len(b.clients) - 1
}

// Disable permanently removes a retired slot from fan-out. Its missed
// flag is dropped too: an escalation owed to a replica that will never
// serve again is not owed to anyone.
func (b *Broadcaster) Disable(replica int) {
	b.mu.Lock()
	if replica >= 0 && replica < len(b.disabled) {
		b.disabled[replica] = true
		b.missed[replica] = false
	}
	b.mu.Unlock()
}

// MarkMissed flags a replica as having missed broadcast traffic (the
// pool's ejection hook): its next acknowledged broadcast is escalated
// to a global invalidation.
func (b *Broadcaster) MarkMissed(replica int) {
	b.mu.Lock()
	if replica >= 0 && replica < len(b.missed) {
		b.missed[replica] = true
		b.missedSeq[replica]++
	}
	b.mu.Unlock()
}

// MissedSeq returns the replica's miss sequence number: capture it
// before starting a repair, and pass it to ClearMissedIf afterwards so
// only misses the repair actually covered are withdrawn.
func (b *Broadcaster) MissedSeq(replica int) uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if replica < 0 || replica >= len(b.missedSeq) {
		return 0
	}
	return b.missedSeq[replica]
}

// ClearMissedIf withdraws a replica's missed flag after an out-of-band
// repair covered it — the replication log catch-up ends with an
// invalidation scoped to exactly the records the replica missed, so the
// escalated global is no longer owed. seq must be the MissedSeq
// captured before the repair's invalidation: a miss recorded since then
// is NOT covered and keeps the flag.
func (b *Broadcaster) ClearMissedIf(replica int, seq uint64) {
	b.mu.Lock()
	if replica >= 0 && replica < len(b.missed) && b.missedSeq[replica] == seq {
		b.missed[replica] = false
	}
	b.mu.Unlock()
}

// FlushMissed immediately sends the escalated global invalidation to a
// replica that missed broadcast traffic, instead of leaving it to ride
// the next batch flush — which, in a write-quiet fleet, may never come,
// letting a readmitted replica serve from a stale cache indefinitely.
// The pool's readmission hook calls it on the eject→live transition.
// No-op for replicas not marked missed; a failed send counts a Failure
// (the Escalation is counted only when one is actually delivered) and
// leaves the flag set, so the next broadcast still escalates.
func (b *Broadcaster) FlushMissed(ctx context.Context, replica int) error {
	b.mu.Lock()
	owed := replica >= 0 && replica < len(b.missed) && b.missed[replica] && !b.disabled[replica]
	var seq uint64
	var c *Client
	if owed {
		seq = b.missedSeq[replica]
		c = b.clients[replica]
	}
	b.mu.Unlock()
	if !owed {
		return nil
	}
	sctx, cancel := context.WithTimeout(ctx, b.cfg.Timeout)
	defer cancel()
	if _, err := c.Invalidate(sctx, nil, true); err != nil {
		b.counters.Failure()
		return err
	}
	b.counters.Escalation()
	b.ClearMissedIf(replica, seq)
	return nil
}

func (b *Broadcaster) wake() {
	select {
	case b.kick <- struct{}{}:
	default:
	}
}

// loop coalesces: on the first note of a batch it waits out the window
// (or an early-flush wake) and sends.
func (b *Broadcaster) loop() {
	defer close(b.done)
	for {
		select {
		case <-b.stop:
			return
		case <-b.kick:
		}
		// Something is pending: give the window a chance to coalesce
		// more, unless the batch is already full.
		b.mu.Lock()
		full := len(b.pending) >= b.cfg.MaxBatchEdges
		b.mu.Unlock()
		if !full {
			select {
			case <-b.stop:
				return
			case <-time.After(b.cfg.Window):
			}
		}
		b.flushOnce(context.Background())
	}
}

// flushOnce takes the pending batch and fans it out; concurrent notes
// start the next batch.
func (b *Broadcaster) flushOnce(ctx context.Context) {
	b.flushMu.Lock()
	defer b.flushMu.Unlock()
	b.mu.Lock()
	if !b.dirty {
		b.mu.Unlock()
		return
	}
	edges := b.pending
	b.pending = nil
	b.seen = make(map[[2]string]struct{})
	b.dirty = false
	// Snapshot the membership under the lock: AddClient may grow the
	// slices concurrently, and a slot admitted after the batch was taken
	// rides the NEXT batch.
	clients := append([]*Client(nil), b.clients...)
	skip := append([]bool(nil), b.disabled...)
	global := make([]bool, len(clients))
	copy(global, b.missed)
	seqs := append([]uint64(nil), b.missedSeq...)
	b.mu.Unlock()

	b.counters.Batch(len(edges))
	var wg sync.WaitGroup
	for i, c := range clients {
		if skip[i] {
			continue
		}
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			sctx, cancel := context.WithTimeout(ctx, b.cfg.Timeout)
			defer cancel()
			if global[i] {
				b.counters.Escalation()
			}
			_, err := c.Invalidate(sctx, edges, global[i])
			b.mu.Lock()
			if err != nil {
				b.missed[i] = true
				b.missedSeq[i]++
				b.mu.Unlock()
				b.counters.Failure()
				return
			}
			// Withdraw the escalation debt only if no NEW miss was
			// recorded since this batch was taken — a global delivered
			// now does not cover a batch missed meanwhile.
			if global[i] && b.missedSeq[i] == seqs[i] {
				b.missed[i] = false
			}
			b.mu.Unlock()
		}(i, c)
	}
	wg.Wait()
}

// Flush synchronously broadcasts everything pending. Callers that need
// read-your-writes across the fleet (tests, admin tooling) quiesce with
// it; the serving path never waits on it.
func (b *Broadcaster) Flush(ctx context.Context) {
	b.flushOnce(ctx)
}

// Lag returns how long the oldest unbroadcast write has been waiting
// (0 when nothing is pending) — the freshness bound on replica
// snapshots.
func (b *Broadcaster) Lag() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.dirty {
		return 0
	}
	return time.Since(b.oldest)
}

// Close flushes pending work and stops the loop.
func (b *Broadcaster) Close() {
	b.once.Do(func() {
		close(b.stop)
		<-b.done
		b.flushOnce(context.Background())
	})
}

// BroadcastStats is the broadcaster's observable state.
type BroadcastStats struct {
	Counters metrics.BroadcastSnapshot
	// PendingEdges is the current unbroadcast distinct-edge count.
	PendingEdges int
	// LagMS is how long the oldest unbroadcast write has waited.
	LagMS int64
}

// Stats returns current counters.
func (b *Broadcaster) Stats() BroadcastStats {
	b.mu.Lock()
	pending := len(b.pending)
	var lag time.Duration
	if b.dirty {
		lag = time.Since(b.oldest)
	}
	b.mu.Unlock()
	return BroadcastStats{
		Counters:     b.counters.Snapshot(),
		PendingEdges: pending,
		LagMS:        lag.Milliseconds(),
	}
}
