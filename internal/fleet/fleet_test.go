package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/search"
	"repro/internal/server"
	"repro/internal/social"
)

// newReplica builds one in-process replica: a social service in fleet
// replica posture (manual compaction) behind the real HTTP server.
func newReplica(t *testing.T) (*social.Service, *httptest.Server) {
	t.Helper()
	cfg := social.DefaultServiceConfig()
	cfg.AutoCompactEvery = 1 << 30 // broadcast is the compaction heartbeat
	svc, err := social.NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(svc)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return svc, ts
}

func newTestClient(t *testing.T, url string, cfg ClientConfig) *Client {
	t.Helper()
	c, err := NewClient(url, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClientValidation(t *testing.T) {
	if _, err := NewClient("", ClientConfig{}); err == nil {
		t.Error("empty URL accepted")
	}
	if _, err := NewClient("localhost:8080", ClientConfig{}); err == nil {
		t.Error("schemeless URL accepted")
	}
	if _, err := NewClient("http://x", ClientConfig{Timeout: -time.Second}); err == nil {
		t.Error("negative timeout accepted")
	}
}

// TestClientRoundTrip drives a real replica over the wire: mutations
// forward, /v2/invalidate compacts, searches answer, and explain
// survives the JSON round trip.
func TestClientRoundTrip(t *testing.T) {
	_, ts := newReplica(t)
	c := newTestClient(t, ts.URL, ClientConfig{})
	ctx := context.Background()

	if _, err := c.Befriend(ctx, "alice", "bob", 0.9, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Tag(ctx, "bob", "luigis", "pizza", 0); err != nil {
		t.Fatal(err)
	}
	// Before the broadcast heartbeat the writes are pending, not
	// queryable; the invalidation call is what folds them in.
	if _, err := c.Invalidate(ctx, [][2]string{{"alice", "bob"}}, false); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Do(ctx, search.Request{Seeker: "alice", Tags: []string{"pizza"}, K: 3, Mode: search.ModeExact, Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || resp.Results[0].Item != "luigis" {
		t.Fatalf("results = %+v, want luigis", resp.Results)
	}
	if resp.Explain == nil || resp.Explain.Mode != "exact" {
		t.Fatalf("explain = %+v, want mode=exact", resp.Explain)
	}

	users, err := c.Users(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(users) != 2 {
		t.Fatalf("users = %v, want alice+bob", users)
	}
	if _, err := c.Healthz(ctx); err != nil {
		t.Fatal(err)
	}

	// Batch: one good query, one per-query error.
	out := c.DoBatch(ctx, []search.Request{
		{Seeker: "alice", Tags: []string{"pizza"}, K: 3, Mode: search.ModeExact},
		{Seeker: "nobody", Tags: []string{"pizza"}, K: 3},
	})
	if out[0].Err != nil || len(out[0].Response.Results) != 1 {
		t.Fatalf("batch[0] = %+v", out[0])
	}
	if out[1].Err == nil {
		t.Fatal("batch[1]: unknown seeker did not error")
	}
}

// TestClientErrorClassification pins the wire→error mapping that
// failover depends on: 400 is ErrInvalid (never failover-eligible),
// 5xx and connection failures are ErrUnavailable.
func TestClientErrorClassification(t *testing.T) {
	_, ts := newReplica(t)
	c := newTestClient(t, ts.URL, ClientConfig{})
	ctx := context.Background()

	_, err := c.Do(ctx, search.Request{Seeker: "ghost", Tags: []string{"x"}})
	if !errors.Is(err, search.ErrInvalid) {
		t.Fatalf("unknown user error = %v, want ErrInvalid", err)
	}
	if errors.Is(err, search.ErrUnavailable) {
		t.Fatalf("unknown user error %v must not be failover-eligible", err)
	}

	boom := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"internal"}`, http.StatusInternalServerError)
	}))
	defer boom.Close()
	cb := newTestClient(t, boom.URL, ClientConfig{})
	if _, err := cb.Do(ctx, search.Request{Seeker: "a", Tags: []string{"x"}}); !errors.Is(err, search.ErrUnavailable) {
		t.Fatalf("500 error = %v, want ErrUnavailable", err)
	}

	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // connection refused from here on
	cd := newTestClient(t, dead.URL, ClientConfig{})
	if _, err := cd.Do(ctx, search.Request{Seeker: "a", Tags: []string{"x"}}); !errors.Is(err, search.ErrUnavailable) {
		t.Fatalf("conn-refused error = %v, want ErrUnavailable", err)
	}
	if _, err := cd.Healthz(ctx); !errors.Is(err, search.ErrUnavailable) {
		t.Fatalf("healthz error = %v, want ErrUnavailable", err)
	}

	// Client cancellation is the caller's, not the replica's, fault.
	release := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer slow.Close()
	defer close(release)
	cs := newTestClient(t, slow.URL, ClientConfig{})
	cctx, cancel := context.WithCancel(ctx)
	go func() { time.Sleep(20 * time.Millisecond); cancel() }()
	if _, err := cs.Do(cctx, search.Request{Seeker: "a", Tags: []string{"x"}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled request error = %v, want context.Canceled", err)
	}
}

// TestClientHedging holds the first attempt hostage and checks the
// hedge answers, and that the counters record it.
func TestClientHedging(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			time.Sleep(400 * time.Millisecond) // only the first attempt is slow
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]interface{}{
			"results": []map[string]interface{}{{"item": "x", "score": 1.0}},
		})
	}))
	defer ts.Close()
	c := newTestClient(t, ts.URL, ClientConfig{HedgeDelay: 30 * time.Millisecond})
	resp, err := c.Do(context.Background(), search.Request{Seeker: "a", Tags: []string{"x"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || resp.Results[0].Item != "x" {
		t.Fatalf("results = %+v", resp.Results)
	}
	snap := c.Counters().Snapshot()
	if snap.HedgesLaunched != 1 || snap.HedgesWon != 1 {
		t.Fatalf("hedge counters = %+v, want launched=1 won=1", snap)
	}
}

// TestPoolFailover kills the replica owning a seeker and checks the
// query spills to a live one, health state ejects the dead replica, and
// the stats say so.
func TestPoolFailover(t *testing.T) {
	ctx := context.Background()
	var svcs []*social.Service
	var servers []*httptest.Server
	var clients []*Client
	for i := 0; i < 3; i++ {
		svc, ts := newReplica(t)
		svcs = append(svcs, svc)
		servers = append(servers, ts)
		clients = append(clients, newTestClient(t, ts.URL, ClientConfig{}))
	}
	pool, err := NewPool(clients, PoolConfig{HealthInterval: -1, FailAfter: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	// Seed every replica identically and make it queryable.
	for _, svc := range svcs {
		if err := svc.Befriend("alice", "bob", 0.9); err != nil {
			t.Fatal(err)
		}
		if err := svc.Tag("bob", "luigis", "pizza"); err != nil {
			t.Fatal(err)
		}
		if err := svc.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	req := search.Request{Seeker: "alice", Tags: []string{"pizza"}, K: 3, Mode: search.ModeExact}
	if _, err := pool.Do(ctx, req); err != nil {
		t.Fatal(err)
	}

	owner := pool.ReplicaFor("alice")
	servers[owner].Close()
	resp, err := pool.Do(ctx, req)
	if err != nil {
		t.Fatalf("failover Do: %v", err)
	}
	if len(resp.Results) != 1 || resp.Results[0].Item != "luigis" {
		t.Fatalf("failover results = %+v", resp.Results)
	}
	if pool.Live(owner) {
		t.Fatal("dead owner still live after FailAfter=1 failure")
	}
	stats := pool.Stats()
	if stats[owner].Counters.Ejections != 1 {
		t.Fatalf("owner stats = %+v, want 1 ejection", stats[owner])
	}
	spilled := false
	for i, rs := range stats {
		if i != owner && rs.Counters.Failovers > 0 {
			spilled = true
		}
	}
	if !spilled {
		t.Fatalf("no survivor recorded a failover: %+v", stats)
	}

	// Batches spill too, with every entry answered.
	out := pool.DoBatch(ctx, []search.Request{req, req, req})
	for i, br := range out {
		if br.Err != nil {
			t.Fatalf("batch[%d] after failover: %v", i, br.Err)
		}
	}

	// All replicas down: the error is the unavailable class (503 on the
	// wire), not a silent empty answer.
	for i, ts := range servers {
		if i != owner {
			ts.Close()
		}
	}
	if _, err := pool.Do(ctx, req); !errors.Is(err, search.ErrUnavailable) {
		t.Fatalf("all-dead Do error = %v, want ErrUnavailable", err)
	}
}

// TestPoolProber checks the background /healthz sweep ejects a dead
// replica and re-admits it when it returns.
func TestPoolProber(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !healthy.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ok\n"))
	}))
	defer ts.Close()
	pool, err := NewPool(
		[]*Client{newTestClient(t, ts.URL, ClientConfig{})},
		PoolConfig{HealthInterval: 10 * time.Millisecond, FailAfter: 2, ReviveAfter: 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	healthy.Store(false)
	waitFor(t, time.Second, func() bool { return !pool.Live(0) })
	healthy.Store(true)
	waitFor(t, time.Second, func() bool { return pool.Live(0) })
	snap := pool.Stats()[0].Counters
	if snap.Ejections < 1 || snap.Readmissions < 1 {
		t.Fatalf("counters = %+v, want >=1 ejection and readmission", snap)
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

// TestBroadcasterCoalesces checks a burst of noted edges rides one
// batched /v2/invalidate per replica, deduplicated.
func TestBroadcasterCoalesces(t *testing.T) {
	type call struct {
		Edges [][2]string `json:"edges"`
		All   bool        `json:"all"`
	}
	var mu sync.Mutex
	var calls []call
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var c call
		json.NewDecoder(r.Body).Decode(&c)
		mu.Lock()
		calls = append(calls, c)
		mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"dropped":0}`))
	}))
	defer ts.Close()

	b := NewBroadcaster([]*Client{newTestClient(t, ts.URL, ClientConfig{})}, BroadcasterConfig{Window: 20 * time.Millisecond})
	defer b.Close()
	for i := 0; i < 10; i++ {
		b.NoteEdge("alice", "bob") // duplicates
		b.NoteEdge("bob", "alice") // reversed duplicates
	}
	b.NoteEdge("carol", "dave")
	waitFor(t, time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(calls) > 0
	})
	mu.Lock()
	defer mu.Unlock()
	if len(calls) != 1 {
		t.Fatalf("%d broadcasts for one burst, want 1 (coalescing)", len(calls))
	}
	if len(calls[0].Edges) != 2 {
		t.Fatalf("broadcast edges = %v, want 2 distinct", calls[0].Edges)
	}
	if calls[0].All {
		t.Fatal("ordinary batch escalated to global")
	}
	st := b.Stats()
	if st.Counters.Batches != 1 || st.Counters.Edges != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestBroadcasterEscalatesAfterMiss checks a replica that failed a
// broadcast gets a global invalidation on its next successful one.
func TestBroadcasterEscalatesAfterMiss(t *testing.T) {
	var fail atomic.Bool
	type call struct {
		All bool `json:"all"`
	}
	var mu sync.Mutex
	var calls []call
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fail.Load() {
			http.Error(w, `{"error":"down"}`, http.StatusServiceUnavailable)
			return
		}
		var c call
		json.NewDecoder(r.Body).Decode(&c)
		mu.Lock()
		calls = append(calls, c)
		mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"dropped":0}`))
	}))
	defer ts.Close()

	b := NewBroadcaster([]*Client{newTestClient(t, ts.URL, ClientConfig{})}, BroadcasterConfig{Window: 5 * time.Millisecond})
	defer b.Close()

	fail.Store(true)
	b.NoteEdge("a", "b")
	b.Flush(context.Background())
	if got := b.Stats().Counters.Failures; got != 1 {
		t.Fatalf("failures = %d, want 1", got)
	}

	fail.Store(false)
	b.NoteEdge("c", "d")
	b.Flush(context.Background())
	mu.Lock()
	defer mu.Unlock()
	if len(calls) != 1 || !calls[0].All {
		t.Fatalf("post-miss calls = %+v, want one global invalidation", calls)
	}
	if b.Stats().Counters.Escalations != 1 {
		t.Fatalf("escalations = %d, want 1", b.Stats().Counters.Escalations)
	}
}

// TestFrontendMutationsAndStats drives the full glue: mutations forward
// to every replica, the broadcast makes them queryable, and StatsAny
// reports per-replica and broadcast counters.
func TestFrontendMutationsAndStats(t *testing.T) {
	var svcs []*social.Service
	var clients []*Client
	for i := 0; i < 3; i++ {
		svc, ts := newReplica(t)
		svcs = append(svcs, svc)
		clients = append(clients, newTestClient(t, ts.URL, ClientConfig{}))
	}
	pool, err := NewPool(clients, PoolConfig{HealthInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	bcast := NewBroadcaster(clients, BroadcasterConfig{Window: 5 * time.Millisecond})
	front, err := NewFrontend(pool, bcast)
	if err != nil {
		t.Fatal(err)
	}
	defer front.Close()

	if err := front.Befriend("alice", "bob", 0.9); err != nil {
		t.Fatal(err)
	}
	if err := front.Tag("bob", "luigis", "pizza"); err != nil {
		t.Fatal(err)
	}
	if err := front.Flush(); err != nil {
		t.Fatal(err)
	}
	for i, svc := range svcs {
		st := svc.Stats()
		if st.Users != 2 || st.PendingWrites != 0 {
			t.Fatalf("replica %d stats = %+v, want 2 users, 0 pending", i, st)
		}
	}
	resp, err := front.Do(context.Background(), search.Request{Seeker: "alice", Tags: []string{"pizza"}, K: 3, Mode: search.ModeExact})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || resp.Results[0].Item != "luigis" {
		t.Fatalf("results = %+v", resp.Results)
	}
	if got := front.Users(); len(got) != 2 {
		t.Fatalf("users = %v", got)
	}

	stats, ok := front.StatsAny().(Stats)
	if !ok {
		t.Fatalf("StatsAny returned %T", front.StatsAny())
	}
	if len(stats.Replicas) != 3 {
		t.Fatalf("stats replicas = %d", len(stats.Replicas))
	}
	if stats.Broadcast.Counters.Batches < 1 {
		t.Fatalf("broadcast stats = %+v, want >=1 batch", stats.Broadcast)
	}

	// An invalid mutation is rejected without partial effects.
	if err := front.Befriend("", "x", 0.5); err == nil {
		t.Fatal("invalid befriend accepted")
	}
}
