package fleet

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/obs"
	"repro/internal/shard"
)

// Elastic resize: grow and shrink the replica fleet under traffic.
//
// JoinReplica adopts a running replica process into the fleet without a
// restart and without restreaming the whole replication log:
//
//  1. Admit — the joiner becomes a slot outside the routing ring. It is
//     probed and receives LSN-stamped fan-out, and its zero cursor pins
//     the replication log's truncation barrier, so the suffix it is
//     about to need cannot be reclaimed mid-join.
//  2. Bootstrap — a state snapshot pinned at some LSN L streams from a
//     live replica into the joiner (GET→POST /v2/snapshot), replacing
//     full history with one bulk transfer. A durable joiner that
//     already holds a persisted cursor above the log's truncation
//     barrier skips this step and resumes from its cursor instead.
//  3. Catch-up — the ordinary rejoin gate streams the replog suffix
//     (L, head], with the moving-head exit guaranteeing no gap when it
//     declares the joiner caught up.
//  4. Pre-warm — the joiner materializes exactly the cached seeker
//     horizons that the grown ring will move onto it (shard.MovedKeys
//     over the current owners' resident seekers), so activation does
//     not start with a cold cache.
//  5. Activate — the ring grows under a new topology epoch; consistent
//     hashing moves only the joiner's slice.
//
// RetireReplica is the reverse: pre-warm the ring successors with the
// retiree's resident seekers (the drain), then retire the slot under a
// new epoch. The replica process itself keeps running — it just stops
// being part of the fleet.
//
// Both operations require the single-front-end replication log
// (UseRepLog): the log is what lets a joiner bootstrap from a snapshot
// plus a suffix. Quorum-replicated HA front-ends each own a static pool
// today; resizing them is a deployment-level operation.

// ErrNoElasticLog rejects resize operations on a front-end without a
// replication log.
var ErrNoElasticLog = errors.New("fleet: elastic resize requires the replication log (UseRepLog)")

// JoinReplica adopts the replica serving at url into the fleet and
// returns its slot. Idempotent on retry: a url already admitted (and
// not retired) resumes the join from wherever the previous attempt
// stopped rather than admitting a duplicate slot.
func (f *Frontend) JoinReplica(ctx context.Context, url string) (int, error) {
	if f.replog == nil {
		return 0, ErrNoElasticLog
	}
	ctx, sp := obs.StartSpan(ctx, "fleet.join")
	defer sp.End()
	sp.SetAttr("url", url)

	c, slot, fresh, err := f.adoptClient(url)
	if err != nil {
		return 0, err
	}
	sp.SetInt("slot", int64(slot))
	if f.pool.InRing(slot) {
		return slot, nil // already fully joined
	}

	// The joiner's own cursor decides the bootstrap path. Probe it
	// directly — the pool's tracked value may not have seen the replica
	// yet.
	cursor, err := c.Healthz(ctx)
	if err != nil {
		return slot, fmt.Errorf("fleet: joiner %s unreachable: %w", url, err)
	}
	if cursor > f.replog.Head() {
		return slot, fmt.Errorf("fleet: replication epoch mismatch: joiner cursor %d beyond log head %d", cursor, f.replog.Head())
	}
	sp.SetInt("cursor", int64(cursor))

	// Snapshot bootstrap — unless the joiner's persisted cursor proves it
	// already holds a prefix the log can still extend (a restarted
	// durable replica resuming from its cursor WAL: every record past its
	// cursor is still in the log, so catch-up alone closes the gap).
	if cursor == 0 || cursor+1 < f.replog.Barrier() {
		lsn, err := f.bootstrapSnapshot(ctx, c, slot)
		if err != nil {
			return slot, err
		}
		sp.SetInt("snapshot_lsn", int64(lsn))
	} else {
		sp.SetAttr("bootstrap", "cursor-resume")
	}

	// Drive the rejoin gate inline rather than waiting for the prober's
	// streak: catchUp streams the suffix from the joiner's cursor to the
	// moving head and finishes with the scoped invalidation. catchingUp
	// is claimed first so a concurrent probe-started gate run (possible
	// only if a previous join attempt already released the hold) cannot
	// double-stream.
	st := f.pool.state(slot)
	st.mu.Lock()
	racing := st.catchingUp
	if !racing {
		st.catchingUp = true
	}
	st.mu.Unlock()
	if !racing {
		st.finishGate(f.catchUp(slot))
	}
	// Whatever happened, the bootstrap hold ends here: from now on the
	// ordinary probe→gate→live machinery owns the slot, so even a failed
	// join converges to a caught-up admitted member.
	f.pool.ReleaseGate(slot)
	if !f.pool.Live(slot) {
		if fresh {
			return slot, fmt.Errorf("fleet: joiner %s admitted as slot %d but not live after catch-up: %s", url, slot, f.pool.Stats()[slot].LastError)
		}
		return slot, fmt.Errorf("fleet: joiner %s (slot %d) not live after catch-up: %s", url, slot, f.pool.Stats()[slot].LastError)
	}

	// Pre-warm the exact slice the grown ring will hand the joiner, so
	// the flip does not trade correctness for a cold-cache latency cliff.
	// Best-effort: a failed warm costs first-query latency, not answers.
	warmed, werr := f.warmJoiner(ctx, c, slot)
	sp.SetInt("warmed", int64(warmed))
	if werr != nil {
		sp.SetAttr("warm_error", werr.Error())
	}

	if err := f.pool.Activate(slot); err != nil {
		return slot, err
	}
	sp.SetInt("epoch", int64(f.pool.Epoch()))
	return slot, nil
}

// adoptClient resolves url to a member slot, admitting a new one (to
// both the pool and the broadcaster, keeping their slot indexes
// aligned) unless a non-retired slot already serves that url.
func (f *Frontend) adoptClient(url string) (c *Client, slot int, fresh bool, err error) {
	for i := 0; i < f.pool.Replicas(); i++ {
		if !f.pool.Retired(i) && f.pool.Client(i).URL() == url {
			return f.pool.Client(i), i, false, nil
		}
	}
	factory := f.NewReplicaClient
	if factory == nil {
		factory = func(url string) (*Client, error) { return NewClient(url, ClientConfig{}) }
	}
	if c, err = factory(url); err != nil {
		return nil, 0, false, err
	}
	if slot, err = f.pool.Admit(c); err != nil {
		return nil, 0, false, err
	}
	if bslot := f.bcast.AddClient(c); bslot != slot {
		// Pool and broadcaster were built over different member lists;
		// nothing sound can be broadcast to this joiner.
		return nil, 0, false, fmt.Errorf("fleet: pool slot %d and broadcaster slot %d diverge", slot, bslot)
	}
	return c, slot, true, nil
}

// bootstrapSnapshot streams a pinned-LSN state snapshot from the first
// live in-ring replica into the joiner and returns the pinned LSN.
func (f *Frontend) bootstrapSnapshot(ctx context.Context, joiner *Client, slot int) (uint64, error) {
	ctx, sp := obs.StartSpan(ctx, "fleet.snapshot")
	defer sp.End()
	var src *Client
	for i := 0; i < f.pool.Replicas(); i++ {
		if i != slot && f.pool.InRing(i) && f.pool.Live(i) {
			src = f.pool.Client(i)
			break
		}
	}
	if src == nil {
		return 0, unavailablef("no live replica to snapshot from")
	}
	sp.SetAttr("source", src.URL())
	r, lsn, err := src.SnapshotReader(ctx)
	if err != nil {
		return 0, fmt.Errorf("fleet: snapshot export from %s: %w", src.URL(), err)
	}
	defer r.Close()
	ack, err := joiner.ImportSnapshot(ctx, r)
	if err != nil {
		return 0, fmt.Errorf("fleet: snapshot import into %s: %w", joiner.URL(), err)
	}
	if ack != lsn {
		return 0, fmt.Errorf("fleet: snapshot import ack %d != pinned lsn %d", ack, lsn)
	}
	sp.SetInt("lsn", int64(lsn))
	// The tracked cursor jumps to the pinned LSN immediately (the next
	// probe would get there anyway); the truncation barrier may rise past
	// the snapshotted prefix, which the joiner no longer needs.
	f.pool.state(slot).setApplied(lsn)
	return lsn, nil
}

// warmJoiner pre-warms the joiner with exactly the resident seeker
// horizons the grown ring will move onto it: the union of live in-ring
// replicas' cached seekers, filtered by shard.MovedKeys against the
// candidate ring to the slice whose ownership changes to the joiner.
func (f *Frontend) warmJoiner(ctx context.Context, joiner *Client, slot int) (int, error) {
	oldRing := f.pool.Ring()
	newRing, err := f.pool.RingAdding(slot)
	if err != nil {
		return 0, err
	}
	seen := make(map[string]struct{})
	var seekers []string
	for i := 0; i < f.pool.Replicas(); i++ {
		if i == slot || !f.pool.InRing(i) || !f.pool.Live(i) {
			continue
		}
		names, err := f.pool.Client(i).CachedSeekers(ctx)
		if err != nil {
			continue // best-effort: this replica's residents warm on first query
		}
		for _, n := range names {
			if _, ok := seen[n]; !ok {
				seen[n] = struct{}{}
				seekers = append(seekers, n)
			}
		}
	}
	moved := shard.MovedKeys(oldRing, newRing, seekers)[slot]
	if len(moved) == 0 {
		return 0, nil
	}
	if len(moved) > MaxWarmBatch {
		moved = moved[:MaxWarmBatch]
	}
	return joiner.WarmSeekers(ctx, moved)
}

// MaxWarmBatch bounds one resize's pre-warm transfer; seekers beyond it
// (coldest last — CachedSeekers returns hottest-first per shard) warm
// on first query instead.
const MaxWarmBatch = 16384

// RetireReplica drains slot's cached working set to its ring successors
// and removes it from the fleet under a new topology epoch. The drained
// replica keeps running; it is simply no longer a member. One-way.
func (f *Frontend) RetireReplica(ctx context.Context, slot int) error {
	if f.replog == nil {
		return ErrNoElasticLog
	}
	ctx, sp := obs.StartSpan(ctx, "fleet.drain")
	defer sp.End()
	sp.SetInt("slot", int64(slot))
	if slot < 0 || slot >= f.pool.Replicas() {
		return fmt.Errorf("fleet: no replica slot %d", slot)
	}
	if f.pool.Retired(slot) {
		return nil
	}

	// Drain: hand the retiree's resident seekers to whichever successor
	// the shrunk ring assigns them, before the flip — same bounded,
	// best-effort warm plane as joining, in reverse.
	if f.pool.InRing(slot) {
		oldRing := f.pool.Ring()
		newRing, err := f.pool.RingRemoving(slot)
		if err != nil {
			return err
		}
		var residents []string
		if f.pool.Live(slot) {
			residents, _ = f.pool.Client(slot).CachedSeekers(ctx)
		}
		if len(residents) > MaxWarmBatch {
			residents = residents[:MaxWarmBatch]
		}
		warmed := 0
		for dst, names := range shard.MovedKeys(oldRing, newRing, residents) {
			if dst == slot || !f.pool.Live(dst) {
				continue
			}
			if n, err := f.pool.Client(dst).WarmSeekers(ctx, names); err == nil {
				warmed += n
			}
		}
		sp.SetInt("drained", int64(warmed))
	}

	if err := f.pool.Retire(slot); err != nil {
		return err
	}
	f.bcast.Disable(slot)
	sp.SetInt("epoch", int64(f.pool.Epoch()))
	return nil
}

// FleetEpoch returns the current topology epoch (server.FleetResizer).
func (f *Frontend) FleetEpoch() uint64 { return f.pool.Epoch() }
