package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/search"
	"repro/internal/server"
	"repro/internal/social"
)

// invalidateCall is one recorded /v2/invalidate body.
type invalidateCall struct {
	Edges [][2]string `json:"edges"`
	All   bool        `json:"all"`
}

// toggleReplica is a fleet replica whose HTTP surface can be forced
// down (503 on every request) and back up without losing its state —
// the SIGSTOP/SIGCONT shape of the readmission bug, which httptest
// Close cannot model. It also records every invalidation broadcast it
// receives.
type toggleReplica struct {
	svc  *social.Service
	ts   *httptest.Server
	down atomic.Bool

	mu            sync.Mutex
	invalidations []invalidateCall
}

func newToggleReplica(t *testing.T) *toggleReplica {
	t.Helper()
	cfg := social.DefaultServiceConfig()
	cfg.AutoCompactEvery = 1 << 30 // broadcast is the compaction heartbeat
	svc, err := social.NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(svc)
	if err != nil {
		t.Fatal(err)
	}
	tr := &toggleReplica{svc: svc}
	tr.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if tr.down.Load() {
			http.Error(w, `{"error":"replica down"}`, http.StatusServiceUnavailable)
			return
		}
		if r.URL.Path == "/v2/invalidate" {
			raw, _ := io.ReadAll(r.Body)
			var call invalidateCall
			json.Unmarshal(raw, &call)
			tr.mu.Lock()
			tr.invalidations = append(tr.invalidations, call)
			tr.mu.Unlock()
			r.Body = io.NopCloser(bytes.NewReader(raw))
		}
		srv.ServeHTTP(w, r)
	}))
	t.Cleanup(tr.ts.Close)
	return tr
}

// globalInvalidations counts recorded all=true invalidation broadcasts.
func (tr *toggleReplica) globalInvalidations() int {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	n := 0
	for _, c := range tr.invalidations {
		if c.All {
			n++
		}
	}
	return n
}

// newCatchupFleet builds an n-replica fleet over toggle replicas with
// fast health probing (FailAfter/ReviveAfter 1) and, when replogDir is
// non-empty, a replication log with catch-up-gated readmission.
func newCatchupFleet(t *testing.T, n int, replogDir string) (*Frontend, *Pool, []*toggleReplica, []*Client) {
	t.Helper()
	var reps []*toggleReplica
	var clients []*Client
	for i := 0; i < n; i++ {
		tr := newToggleReplica(t)
		reps = append(reps, tr)
		clients = append(clients, newTestClient(t, tr.ts.URL, ClientConfig{}))
	}
	pool, err := NewPool(clients, PoolConfig{
		HealthInterval: 10 * time.Millisecond,
		FailAfter:      1,
		ReviveAfter:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	bcast := NewBroadcaster(clients, BroadcasterConfig{Window: 2 * time.Millisecond})
	front, err := NewFrontend(pool, bcast)
	if err != nil {
		t.Fatal(err)
	}
	if replogDir != "" {
		rl, err := OpenRepLog(replogDir)
		if err != nil {
			t.Fatal(err)
		}
		if err := front.UseRepLog(rl); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(front.Close)
	return front, pool, reps, clients
}

// TestReadmissionFiresImmediateInvalidation is the regression test for
// the write-quiet rejoin bug: a replica that missed broadcast traffic
// used to get its escalated global invalidation only at the *next*
// broadcast flush — with zero post-rejoin writes, never. The eject→live
// transition itself must now fire it.
func TestReadmissionFiresImmediateInvalidation(t *testing.T) {
	front, pool, reps, _ := newCatchupFleet(t, 2, "") // PR 4 posture: no replog
	victim := 0
	reps[victim].down.Store(true)
	waitFor(t, 5*time.Second, func() bool { return !pool.Live(victim) })
	reps[victim].down.Store(false)
	waitFor(t, 5*time.Second, func() bool { return pool.Live(victim) })

	// Zero writes anywhere: the escalated global must arrive anyway.
	waitFor(t, 5*time.Second, func() bool { return reps[victim].globalInvalidations() >= 1 })
	// The counter lands after delivery is acknowledged; wait for it too.
	waitFor(t, 5*time.Second, func() bool {
		return front.StatsAny().(Stats).Broadcast.Counters.Escalations >= 1
	})
}

// TestCatchUpRacesConcurrentWrites runs a replica ejection + rejoin
// while a foreground writer keeps mutating through the front-end: the
// catch-up stream and the direct fan-out race on the same replica, and
// the LSN ordering rule must keep the result bit-identical to a
// reference service fed the same stream. Run under -race.
func TestCatchUpRacesConcurrentWrites(t *testing.T) {
	front, pool, reps, clients := newCatchupFleet(t, 3, t.TempDir())
	ref, err := social.NewService(social.DefaultServiceConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const nUsers = 16
	user := func(i int) string { return fmt.Sprintf("u%d", i) }

	// Single writer: identical mutation order on reference and fleet.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var writeErr atomic.Value
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			a, b := user(i%nUsers), user((i+1+i%5)%nUsers)
			if a == b {
				continue
			}
			w := 0.2 + 0.6*float64(i%7)/7
			if err := ref.Befriend(a, b, w); err != nil {
				writeErr.Store(fmt.Errorf("ref befriend: %w", err))
				return
			}
			if err := front.Befriend(a, b, w); err != nil {
				writeErr.Store(fmt.Errorf("front befriend: %w", err))
				return
			}
			if i%3 == 0 {
				it, tg := fmt.Sprintf("i%d", i%9), fmt.Sprintf("t%d", i%3)
				if err := ref.Tag(a, it, tg); err != nil {
					writeErr.Store(fmt.Errorf("ref tag: %w", err))
					return
				}
				if err := front.Tag(a, it, tg); err != nil {
					writeErr.Store(fmt.Errorf("front tag: %w", err))
					return
				}
			}
			time.Sleep(2 * time.Millisecond) // let catch-up outrun the head
		}
	}()

	victim := 1
	time.Sleep(50 * time.Millisecond) // some pre-ejection history
	reps[victim].down.Store(true)
	waitFor(t, 5*time.Second, func() bool { return !pool.Live(victim) })
	time.Sleep(100 * time.Millisecond) // mutations the victim misses
	reps[victim].down.Store(false)
	waitFor(t, 10*time.Second, func() bool { return pool.Live(victim) })
	close(stop)
	wg.Wait()
	if err, _ := writeErr.Load().(error); err != nil {
		t.Fatal(err)
	}

	// Quiesce both sides, then the readmitted replica must answer every
	// query bit-identically to the reference.
	if err := ref.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := front.Flush(); err != nil {
		t.Fatal(err)
	}
	compareReplicaToReference(t, ctx, clients[victim], ref, nUsers, 3)

	stats := front.StatsAny().(Stats)
	vs := stats.Replicas[victim]
	if vs.Counters.Catchups < 1 {
		t.Fatalf("victim stats = %+v, want >=1 completed catch-up", vs.Counters)
	}
	if vs.ReplogLag != 0 {
		t.Fatalf("victim replog lag = %d after quiesce, want 0", vs.ReplogLag)
	}
}

// compareReplicaToReference asserts one replica, queried directly over
// the wire, answers every seeker × tag mode=exact query bit-identically
// to the in-process reference service.
func compareReplicaToReference(t *testing.T, ctx context.Context, c *Client, ref *social.Service, nUsers, nTags int) {
	t.Helper()
	for u := 0; u < nUsers; u++ {
		for tg := 0; tg < nTags; tg++ {
			req := search.Request{
				Seeker: fmt.Sprintf("u%d", u),
				Tags:   []string{fmt.Sprintf("t%d", tg)},
				K:      8,
				Mode:   search.ModeExact,
			}
			want, werr := ref.Do(ctx, req)
			got, gerr := c.Do(ctx, req)
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("seeker u%d tag t%d: ref err %v, replica err %v", u, tg, werr, gerr)
			}
			if werr != nil {
				continue // both reject — parity holds
			}
			if len(want.Results) != len(got.Results) {
				t.Fatalf("seeker u%d tag t%d: %d vs %d results", u, tg, len(want.Results), len(got.Results))
			}
			for i := range want.Results {
				if want.Results[i] != got.Results[i] {
					t.Fatalf("seeker u%d tag t%d result %d: ref %+v, replica %+v",
						u, tg, i, want.Results[i], got.Results[i])
				}
			}
		}
	}
}

// TestCatchUpTornReplogFailsCleanly shears the replication log
// mid-record while a replica is waiting to rejoin: catch-up must fail
// with a clean error — never hand the replica a torn frame — keep the
// replica out of the ring, and keep retrying (observable via
// LastError), leaving the torn record unapplied.
func TestCatchUpTornReplogFailsCleanly(t *testing.T) {
	dir := t.TempDir()
	front, pool, reps, _ := newCatchupFleet(t, 2, dir)

	seedErr := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		seedErr(front.Befriend(fmt.Sprintf("u%d", i), fmt.Sprintf("u%d", i+1), 0.5))
	}
	victim := 1
	reps[victim].down.Store(true)
	waitFor(t, 5*time.Second, func() bool { return !pool.Live(victim) })
	for i := 0; i < 8; i++ {
		seedErr(front.Befriend(fmt.Sprintf("v%d", i), fmt.Sprintf("v%d", i+1), 0.5))
	}
	appliedBefore := reps[victim].svc.AppliedLSN()
	head := front.StatsAny().(Stats).Replog.Head

	// Shear the last segment mid-record (out-of-band disk damage).
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no replog segments: %v", err)
	}
	sort.Strings(segs)
	last := segs[len(segs)-1]
	st, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, st.Size()-5); err != nil {
		t.Fatal(err)
	}

	reps[victim].down.Store(false)
	// Catch-up attempts must fail cleanly: the replica stays out with the
	// error observable, and the torn head record is never applied.
	waitFor(t, 5*time.Second, func() bool {
		for _, rs := range front.StatsAny().(Stats).Replicas {
			if strings.Contains(rs.LastError, "catch-up") {
				return true
			}
		}
		return false
	})
	if pool.Live(victim) {
		t.Fatal("replica readmitted over a torn replication log")
	}
	vs := front.StatsAny().(Stats).Replicas[victim]
	if vs.Counters.Catchups != 0 {
		t.Fatalf("victim counters = %+v, want 0 completed catch-ups", vs.Counters)
	}
	if got := reps[victim].svc.AppliedLSN(); got >= head {
		t.Fatalf("replica applied lsn %d, want < head %d (torn frame must not apply)", got, head)
	}
	if got := reps[victim].svc.AppliedLSN(); got < appliedBefore {
		t.Fatalf("replica applied lsn went backwards: %d -> %d", appliedBefore, got)
	}
}

// TestReplogEndpoint drives GET /v2/replog over the wire: the
// front-end pages out exactly the records it logged, and a front-end
// without a replication log answers 404.
func TestReplogEndpoint(t *testing.T) {
	front, _, _, _ := newCatchupFleet(t, 1, t.TempDir())
	if err := front.Befriend("alice", "bob", 0.9); err != nil {
		t.Fatal(err)
	}
	if err := front.Tag("bob", "luigis", "pizza"); err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(front)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v2/replog?from=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v2/replog: status %d", resp.StatusCode)
	}
	var page server.ReplogPage
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	if page.Head != 2 || len(page.Records) != 2 {
		t.Fatalf("page = head %d, %d records; want head 2, 2 records", page.Head, len(page.Records))
	}
	if page.Records[0].LSN != 1 || page.Records[1].LSN != 2 {
		t.Fatalf("record lsns = %d, %d; want 1, 2", page.Records[0].LSN, page.Records[1].LSN)
	}

	// Paging from the middle.
	resp2, err := http.Get(ts.URL + "/v2/replog?from=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var page2 server.ReplogPage
	if err := json.NewDecoder(resp2.Body).Decode(&page2); err != nil {
		t.Fatal(err)
	}
	if len(page2.Records) != 1 || page2.Records[0].LSN != 2 {
		t.Fatalf("page from=2 = %+v, want the single record lsn 2", page2)
	}

	// A front-end without a replog answers 404.
	bare, _, _, _ := newCatchupFleet(t, 1, "")
	srv2, err := server.New(bare)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	resp3, err := http.Get(ts2.URL + "/v2/replog")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /v2/replog without a replog: status %d, want 404", resp3.StatusCode)
	}
}

// TestPreLogValidationMirrorsReplicas pins the invariant that the
// replication log never grows a record the fleet cannot apply: every
// mutation a replica would deterministically reject — empty names,
// line breaks (durable replicas), self-edges, out-of-range weights —
// is refused with ErrInvalid BEFORE the append, leaving the log head
// untouched.
func TestPreLogValidationMirrorsReplicas(t *testing.T) {
	front, _, _, _ := newCatchupFleet(t, 1, t.TempDir())
	if err := front.Befriend("alice", "bob", 0.9); err != nil {
		t.Fatal(err)
	}
	head := front.StatsAny().(Stats).Replog.Head
	bad := []func() error{
		func() error { return front.Befriend("", "x", 0.5) },
		func() error { return front.Befriend("a\nb", "x", 0.5) },
		func() error { return front.Befriend("x", "x", 0.5) },
		func() error { return front.Befriend("x", "y", 0) },
		func() error { return front.Befriend("x", "y", 1.5) },
		func() error { return front.Tag("", "i", "t") },
		func() error { return front.Tag("u", "i\r", "t") },
	}
	for i, f := range bad {
		if err := f(); !errors.Is(err, search.ErrInvalid) {
			t.Fatalf("bad mutation %d: err = %v, want ErrInvalid", i, err)
		}
	}
	if got := front.StatsAny().(Stats).Replog.Head; got != head {
		t.Fatalf("replog head moved %d -> %d on rejected mutations", head, got)
	}
}

// TestProbeObservesCursorReset pins the barrier-safety rule: health
// probes overwrite the tracked cursor with the replica's self-reported
// value, so a restarted replica's reset to zero is observed (and the
// truncation barrier retreats with it) instead of being masked by
// monotonic ack tracking.
func TestProbeObservesCursorReset(t *testing.T) {
	var st replicaState
	st.noteApplied(40)
	st.noteApplied(10) // acks are monotonic
	if got := st.appliedLSN; got != 40 {
		t.Fatalf("cursor after acks = %d, want 40", got)
	}
	st.setApplied(0) // the replica restarted and says so
	if got := st.appliedLSN; got != 0 {
		t.Fatalf("cursor after probe reset = %d, want 0", got)
	}
}

// TestLiveReplicaDivergenceEjectsImmediately pins the decisive-eject
// rule: a live replica that misses ONE stamped mutation (here: a
// transient 503 on the write, with probes healthy throughout) must not
// ride out FailAfter serving a stale graph — it is ejected on the
// spot, caught up, and readmitted fresh.
func TestLiveReplicaDivergenceEjectsImmediately(t *testing.T) {
	var reps []*toggleReplica
	var clients []*Client
	for i := 0; i < 2; i++ {
		tr := newToggleReplica(t)
		reps = append(reps, tr)
		clients = append(clients, newTestClient(t, tr.ts.URL, ClientConfig{}))
	}
	// FailAfter 3: under the old cumulative rule, a single missed write
	// with healthy probes in between would never eject.
	pool, err := NewPool(clients, PoolConfig{
		HealthInterval: 10 * time.Millisecond,
		FailAfter:      3,
		ReviveAfter:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	bcast := NewBroadcaster(clients, BroadcasterConfig{Window: 2 * time.Millisecond})
	front, err := NewFrontend(pool, bcast)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := OpenRepLog(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := front.UseRepLog(rl); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(front.Close)

	if err := front.Befriend("alice", "bob", 0.9); err != nil {
		t.Fatal(err)
	}
	victim := 0
	// One write while the victim's HTTP surface blips: mutation misses,
	// probes may interleave successes — the eject must happen anyway.
	reps[victim].down.Store(true)
	if err := front.Befriend("carol", "dave", 0.8); err != nil {
		t.Fatal(err)
	}
	reps[victim].down.Store(false)
	// The miss itself must have ejected the replica (decisively), and
	// catch-up must bring it back holding the record it missed.
	waitFor(t, 5*time.Second, func() bool {
		return pool.Live(victim) && reps[victim].svc.AppliedLSN() == 2
	})
	vs := front.StatsAny().(Stats).Replicas[victim]
	if vs.Counters.Ejections < 1 || vs.Counters.Catchups < 1 {
		t.Fatalf("victim counters = %+v, want the miss to eject and catch-up to repair", vs.Counters)
	}
}

// TestEpochMismatchRefusesReplica pins the fresh-log-over-running-
// replicas detection: a replica whose cursor is beyond the log head is
// ejected (its "acks" are dedup no-ops) and catch-up refuses to
// readmit it.
func TestEpochMismatchRefusesReplica(t *testing.T) {
	front, pool, reps, _ := newCatchupFleet(t, 2, t.TempDir())
	// Replica 0 lives in a future epoch: cursor far beyond this log.
	victim := 0
	for lsn := uint64(1); lsn <= 5; lsn++ {
		if err := reps[victim].svc.BefriendAt(lsn, fmt.Sprintf("e%d", lsn), fmt.Sprintf("f%d", lsn), 0.5); err != nil {
			t.Fatal(err)
		}
	}
	// The fresh log's first write gets LSN 1 — the victim dedup-skips it.
	if err := front.Befriend("alice", "bob", 0.9); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return !pool.Live(victim) })
	waitFor(t, 5*time.Second, func() bool {
		return strings.Contains(front.StatsAny().(Stats).Replicas[victim].LastError, "epoch mismatch")
	})
	// Catch-up keeps refusing: the replica must stay out.
	time.Sleep(100 * time.Millisecond)
	if pool.Live(victim) {
		t.Fatal("epoch-mismatched replica readmitted")
	}
	// The healthy replica carries the fleet.
	if !pool.Live(1) {
		t.Fatal("healthy replica ejected")
	}
}

// TestFlushMissedCountsDeliveredEscalationsOnly pins the counter
// semantics the readmission retry loop depends on: failed FlushMissed
// attempts count Failures, and exactly one Escalation is recorded when
// the global invalidation is finally delivered.
func TestFlushMissedCountsDeliveredEscalationsOnly(t *testing.T) {
	tr := newToggleReplica(t)
	c := newTestClient(t, tr.ts.URL, ClientConfig{})
	b := NewBroadcaster([]*Client{c}, BroadcasterConfig{Window: time.Hour})
	defer b.Close()
	b.MarkMissed(0)
	tr.down.Store(true)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := b.FlushMissed(ctx, 0); err == nil {
			t.Fatal("FlushMissed succeeded against a down replica")
		}
	}
	if got := b.Stats().Counters.Escalations; got != 0 {
		t.Fatalf("escalations after failed attempts = %d, want 0", got)
	}
	tr.down.Store(false)
	if err := b.FlushMissed(ctx, 0); err != nil {
		t.Fatal(err)
	}
	st := b.Stats().Counters
	if st.Escalations != 1 || st.Failures != 3 {
		t.Fatalf("counters = %+v, want 1 escalation, 3 failures", st)
	}
	if tr.globalInvalidations() != 1 {
		t.Fatalf("replica saw %d globals, want 1", tr.globalInvalidations())
	}
	// The debt is settled: another flush is a no-op.
	if err := b.FlushMissed(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if tr.globalInvalidations() != 1 {
		t.Fatal("settled FlushMissed sent another invalidation")
	}
}

// TestRejoinInvalidationIsEdgeScoped pins the rejoin invalidation's
// scope: a readmitted replica that caught up on a handful of dirty
// edges receives one edges-listed (not global) invalidation.
func TestRejoinInvalidationIsEdgeScoped(t *testing.T) {
	front, pool, reps, _ := newCatchupFleet(t, 2, t.TempDir())
	if err := front.Befriend("alice", "bob", 0.9); err != nil {
		t.Fatal(err)
	}
	victim := 0
	reps[victim].down.Store(true)
	waitFor(t, 5*time.Second, func() bool { return !pool.Live(victim) })
	if err := front.Befriend("carol", "dave", 0.8); err != nil {
		t.Fatal(err)
	}
	if err := front.Befriend("carol", "erin", 0.7); err != nil {
		t.Fatal(err)
	}
	reps[victim].down.Store(false)
	waitFor(t, 5*time.Second, func() bool { return pool.Live(victim) })

	reps[victim].mu.Lock()
	defer reps[victim].mu.Unlock()
	var rejoin *invalidateCall
	for i := range reps[victim].invalidations {
		c := reps[victim].invalidations[i]
		if len(c.Edges) > 0 || c.All {
			rejoin = &c
		}
	}
	if rejoin == nil {
		t.Fatalf("no rejoin invalidation recorded: %+v", reps[victim].invalidations)
	}
	if rejoin.All {
		t.Fatalf("rejoin invalidation escalated to global for %d dirty edges: %+v",
			len(rejoin.Edges), rejoin)
	}
	want := map[[2]string]bool{{"carol", "dave"}: true, {"carol", "erin"}: true}
	for _, e := range rejoin.Edges {
		if !want[e] {
			t.Fatalf("rejoin invalidation carries unexpected edge %v (want only the caught-up dirty edges)", e)
		}
		delete(want, e)
	}
	if len(want) != 0 {
		t.Fatalf("rejoin invalidation missing caught-up edges %v", want)
	}
}
