package fleet

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/quorum"
	"repro/internal/server"
	"repro/internal/wal"
)

// haFE is one HA front-end under test: Frontend + quorum.Node mounted
// behind a handler that can be yanked (everything answers 503, the
// node stops participating) to model a SIGKILLed process whose port
// stays allocated.
type haFE struct {
	id    string
	front *Frontend
	node  *quorum.Node
	ts    *httptest.Server

	mu   sync.Mutex
	h    http.Handler
	dead bool
}

func (fe *haFE) serve(w http.ResponseWriter, r *http.Request) {
	fe.mu.Lock()
	h := fe.h
	fe.mu.Unlock()
	if h == nil {
		http.Error(w, `{"error":"front-end killed"}`, http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// kill takes the front-end out of the fleet: HTTP surface answers 503
// and the quorum node stops voting, replicating and campaigning.
func (fe *haFE) kill() {
	fe.mu.Lock()
	fe.h = nil
	fe.dead = true
	fe.mu.Unlock()
	fe.front.Close()
}

// newHAFleet stands up n quorum front-ends over a shared replica set.
// Listeners exist before the nodes so the peer URL map is complete at
// quorum.Open time.
func newHAFleet(t *testing.T, n int, reps []*toggleReplica) []*haFE {
	t.Helper()
	fes := make([]*haFE, n)
	peers := make(map[string]string, n)
	for i := range fes {
		fe := &haFE{id: fmt.Sprintf("fe%d", i+1)}
		fe.ts = httptest.NewServer(http.HandlerFunc(fe.serve))
		t.Cleanup(fe.ts.Close)
		peers[fe.id] = fe.ts.URL
		fes[i] = fe
	}
	base := t.TempDir()
	for _, fe := range fes {
		fe := fe
		var clients []*Client
		for _, tr := range reps {
			clients = append(clients, newTestClient(t, tr.ts.URL, ClientConfig{}))
		}
		pool, err := NewPool(clients, PoolConfig{
			HealthInterval: 10 * time.Millisecond,
			FailAfter:      1,
			ReviveAfter:    1,
		})
		if err != nil {
			t.Fatal(err)
		}
		bcast := NewBroadcaster(clients, BroadcasterConfig{Window: 2 * time.Millisecond})
		front, err := NewFrontend(pool, bcast)
		if err != nil {
			t.Fatal(err)
		}
		node, err := quorum.Open(quorum.Config{
			ID:              fe.id,
			Peers:           peers,
			Dir:             filepath.Join(base, fe.id),
			ElectionTimeout: 80 * time.Millisecond,
			Heartbeat:       20 * time.Millisecond,
			RPCTimeout:      500 * time.Millisecond,
			Logf:            t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := front.UseQuorum(node); err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(front)
		if err != nil {
			t.Fatal(err)
		}
		srv.MountQuorum(node.Handler())
		fe.front, fe.node = front, node
		fe.mu.Lock()
		fe.h = srv
		fe.mu.Unlock()
		node.Start()
		t.Cleanup(func() {
			fe.mu.Lock()
			dead := fe.dead
			fe.mu.Unlock()
			if !dead {
				front.Close()
			}
		})
	}
	return fes
}

// waitHALeader waits for the live front-ends to converge on exactly
// one leader and returns it.
func waitHALeader(t *testing.T, fes []*haFE) *haFE {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var leader *haFE
		agreed := true
		count := 0
		for _, fe := range fes {
			fe.mu.Lock()
			dead := fe.dead
			fe.mu.Unlock()
			if dead {
				continue
			}
			if fe.node.IsLeader() {
				count++
				leader = fe
			}
		}
		if count == 1 {
			id := leader.id
			for _, fe := range fes {
				fe.mu.Lock()
				dead := fe.dead
				fe.mu.Unlock()
				if dead || fe == leader {
					continue
				}
				if got, _ := fe.node.Leader(); got != id {
					agreed = false
				}
			}
			if agreed {
				return leader
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("no single agreed leader within 10s")
	return nil
}

func feURLs(fes []*haFE) []string {
	urls := make([]string, len(fes))
	for i, fe := range fes {
		urls[i] = fe.ts.URL
	}
	return urls
}

// committedLog flattens a node's committed prefix for byte-level
// comparison across survivors.
func committedLog(t *testing.T, n *quorum.Node) []string {
	t.Helper()
	var out []string
	if _, err := n.ReadCommitted(1, func(rec wal.Record) error {
		out = append(out, fmt.Sprintf("%d/%d/%x", rec.LSN, rec.Type, rec.Data))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// waitReplicaConvergence polls until every replica's applied cursor
// reaches lsn.
func waitReplicaConvergence(t *testing.T, reps []*toggleReplica, lsn uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for _, tr := range reps {
			if tr.svc.AppliedLSN() < lsn {
				done = false
			}
		}
		if done {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	for i, tr := range reps {
		t.Logf("replica %d cursor = %d, want %d", i, tr.svc.AppliedLSN(), lsn)
	}
	t.Fatal("replicas did not converge within 10s")
}

// TestHAFleetSurvivesLeaderKill is the tentpole end-to-end: a 3-FE/3-
// replica fleet takes writes through the HA client, loses its leader
// mid-stream, elects a successor, keeps accepting writes, and ends
// with every acked mutation applied on every replica and the two
// survivors holding byte-identical committed quorum logs.
func TestHAFleetSurvivesLeaderKill(t *testing.T) {
	var reps []*toggleReplica
	for i := 0; i < 3; i++ {
		reps = append(reps, newToggleReplica(t))
	}
	fes := newHAFleet(t, 3, reps)
	leader := waitHALeader(t, fes)

	ha, err := NewHAClient(feURLs(fes), ClientConfig{Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := ha.Befriend(ctx, "alice", "bob", 0.9); err != nil {
		t.Fatal(err)
	}
	const before, after = 12, 12
	for i := 0; i < before; i++ {
		if err := ha.Tag(ctx, "bob", fmt.Sprintf("item%02d", i), "good"); err != nil {
			t.Fatalf("pre-kill tag %d: %v", i, err)
		}
	}

	leader.kill()
	t.Logf("killed leader %s", leader.id)

	// Acked writes must keep landing across the election; the HA client
	// owns riding out the window.
	for i := before; i < before+after; i++ {
		if err := ha.Tag(ctx, "bob", fmt.Sprintf("item%02d", i), "good"); err != nil {
			t.Fatalf("post-kill tag %d: %v", i, err)
		}
	}
	successor := waitHALeader(t, fes)
	if successor == leader {
		t.Fatal("dead leader still leading")
	}

	// No acked LSN lost: every replica applies through the successor's
	// commit point, and the survivors' committed logs are identical.
	commit := successor.node.CommitLSN()
	waitReplicaConvergence(t, reps, commit)
	var survivors []*haFE
	for _, fe := range fes {
		if fe != leader {
			survivors = append(survivors, fe)
		}
	}
	// A follower learns the commit index one heartbeat behind the
	// leader; wait for the indices to meet before comparing prefixes.
	convergeBy := time.Now().Add(5 * time.Second)
	for survivors[0].node.CommitLSN() != survivors[1].node.CommitLSN() {
		if time.Now().After(convergeBy) {
			t.Fatalf("survivor commit indices never met: %d vs %d",
				survivors[0].node.CommitLSN(), survivors[1].node.CommitLSN())
		}
		time.Sleep(10 * time.Millisecond)
	}
	logA := committedLog(t, survivors[0].node)
	logB := committedLog(t, survivors[1].node)
	if !reflect.DeepEqual(logA, logB) {
		t.Fatalf("survivor committed logs diverge:\n%s: %v\n%s: %v",
			survivors[0].id, logA, survivors[1].id, logB)
	}

	// Byte-identical serving: every replica holds the same users, and a
	// search through the HA client sees the post-kill writes.
	want := reps[0].svc.Users()
	sort.Strings(want)
	for i, tr := range reps[1:] {
		got := tr.svc.Users()
		sort.Strings(got)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("replica %d users %v != replica 0 users %v", i+1, got, want)
		}
	}
	users, err := ha.Users(ctx)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, u := range users {
		if u == "bob" {
			found = true
		}
	}
	if !found {
		t.Fatalf("HA Users() = %v, missing bob", users)
	}
}

// TestHAClientFollowsRedirect pins the write-routing contract: a write
// aimed at a follower is answered with the leader's address and the HA
// client re-aims instead of failing.
func TestHAClientFollowsRedirect(t *testing.T) {
	var reps []*toggleReplica
	for i := 0; i < 2; i++ {
		reps = append(reps, newToggleReplica(t))
	}
	fes := newHAFleet(t, 3, reps)
	leader := waitHALeader(t, fes)

	leaderIdx, followerIdx := -1, -1
	for i, fe := range fes {
		if fe == leader {
			leaderIdx = i
		} else if followerIdx == -1 {
			followerIdx = i
		}
	}

	// The raw per-FE client surfaces the redirect as NotLeaderError
	// naming the leader.
	follower := newTestClient(t, fes[followerIdx].ts.URL, ClientConfig{Timeout: 2 * time.Second})
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := follower.Befriend(context.Background(), "x", "y", 0.5, 0)
		nle, ok := err.(*quorum.NotLeaderError)
		if ok && nle.LeaderURL == fes[leaderIdx].ts.URL {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower write error = %v, want NotLeaderError naming %s", err, fes[leaderIdx].ts.URL)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The HA client pinned to the follower chases the redirect and
	// remembers where it landed.
	ha, err := NewHAClient(feURLs(fes), ClientConfig{Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ha.mu.Lock()
	ha.write = followerIdx
	ha.mu.Unlock()
	if err := ha.Befriend(context.Background(), "carol", "dave", 0.7); err != nil {
		t.Fatal(err)
	}
	ha.mu.Lock()
	landed := ha.write
	ha.mu.Unlock()
	if landed != leaderIdx {
		t.Fatalf("HA client write index = %d (%s), want leader %d (%s)",
			landed, fes[landed].id, leaderIdx, fes[leaderIdx].id)
	}
}
