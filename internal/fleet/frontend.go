package fleet

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/search"
)

// Frontend is the fleet's server.Backend: queries go through the Pool
// (consistent-hash routing, health-checked failover, optional hedging)
// and mutations are forwarded — serialized, so every replica applies
// the identical stream in the identical order, which is what makes
// replica snapshots and the name→id dictionaries they derive agree —
// to every replica, with the dirty edges handed to the Broadcaster for
// batched fleet-wide cache invalidation.
type Frontend struct {
	pool  *Pool
	bcast *Broadcaster

	// writeMu serializes the mutation path. One writer at a time is the
	// fleet's ordering guarantee; read traffic never takes this lock.
	writeMu sync.Mutex

	// MutationTimeout bounds one replica's acknowledgement of one
	// forwarded mutation.
	MutationTimeout time.Duration
}

// NewFrontend glues a pool and a broadcaster into a serving backend and
// registers the pool→broadcaster ejection hook (an ejected replica's
// next broadcast escalates to a global invalidation).
func NewFrontend(pool *Pool, bcast *Broadcaster) (*Frontend, error) {
	if pool == nil || bcast == nil {
		return nil, errors.New("fleet: frontend needs a pool and a broadcaster")
	}
	pool.OnEject(bcast.MarkMissed)
	return &Frontend{pool: pool, bcast: bcast, MutationTimeout: DefaultTimeout}, nil
}

var _ search.Searcher = (*Frontend)(nil)

// Do routes one query through the pool.
func (f *Frontend) Do(ctx context.Context, req search.Request) (search.Response, error) {
	return f.pool.Do(ctx, req)
}

// DoBatch routes a batch through the pool.
func (f *Frontend) DoBatch(ctx context.Context, reqs []search.Request) []search.BatchResult {
	return f.pool.DoBatch(ctx, reqs)
}

// forward fans one mutation out to every replica. A replica that
// rejects the mutation as invalid fails the call — every replica
// rejects the same input the same way, so nothing was applied anywhere.
// A replica that is unreachable feeds health state and is skipped: the
// write must stay available when a replica dies, and the missed
// mutation is the documented gap the WAL replication log closes. Only
// when no replica accepted the write does it fail as unavailable.
func (f *Frontend) forward(send func(ctx context.Context, c *Client) error) error {
	applied := 0
	var lastUnavailable error
	for i := 0; i < f.pool.Replicas(); i++ {
		c := f.pool.Client(i)
		// One timeout per replica, not one shared across the fan-out: a
		// blackholed replica must cost its own deadline, never starve
		// the later replicas into spurious failures.
		ctx, cancel := context.WithTimeout(context.Background(), f.MutationTimeout)
		err := send(ctx, c)
		cancel()
		if err == nil {
			applied++
			f.pool.states[i].ok()
			continue
		}
		if errors.Is(err, search.ErrInvalid) {
			return err
		}
		lastUnavailable = err
		f.pool.states[i].fail(err)
		f.bcast.MarkMissed(i)
	}
	if applied == 0 {
		if lastUnavailable != nil {
			return lastUnavailable
		}
		return unavailablef("no replicas")
	}
	return nil
}

// Befriend forwards the friendship mutation to every replica and notes
// the dirty edge for the next invalidation broadcast.
func (f *Frontend) Befriend(a, b string, weight float64) error {
	f.writeMu.Lock()
	defer f.writeMu.Unlock()
	if err := f.forward(func(ctx context.Context, c *Client) error {
		return c.Befriend(ctx, a, b, weight)
	}); err != nil {
		return err
	}
	f.bcast.NoteEdge(a, b)
	return nil
}

// Tag forwards the tagging mutation to every replica and schedules the
// compaction heartbeat that makes it queryable fleet-wide.
func (f *Frontend) Tag(user, item, tag string) error {
	f.writeMu.Lock()
	defer f.writeMu.Unlock()
	if err := f.forward(func(ctx context.Context, c *Client) error {
		return c.Tag(ctx, user, item, tag)
	}); err != nil {
		return err
	}
	f.bcast.NoteWrite()
	return nil
}

// Users asks the first live replica (replicas agree on the user set, up
// to in-flight forwards).
func (f *Frontend) Users() []string {
	ctx, cancel := context.WithTimeout(context.Background(), f.MutationTimeout)
	defer cancel()
	for i := 0; i < f.pool.Replicas(); i++ {
		if !f.pool.Live(i) {
			continue
		}
		if users, err := f.pool.Client(i).Users(ctx); err == nil {
			return users
		}
	}
	return nil
}

// Flush synchronously broadcasts pending invalidations — the fleet
// equivalent of social.Service.Flush.
func (f *Frontend) Flush() error {
	f.bcast.Flush(context.Background())
	return nil
}

// Stats is the fleet front door's /v1/stats payload.
type Stats struct {
	Replicas  []ReplicaStats
	Broadcast BroadcastStats
}

// StatsAny implements server.Statser.
func (f *Frontend) StatsAny() interface{} {
	return Stats{Replicas: f.pool.Stats(), Broadcast: f.bcast.Stats()}
}

// Close stops the pool's prober and drains the broadcaster.
func (f *Frontend) Close() {
	f.pool.Close()
	f.bcast.Close()
}
