package fleet

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/durable"
	"repro/internal/obs"
	"repro/internal/quorum"
	"repro/internal/search"
	"repro/internal/server"
	"repro/internal/wal"
)

// DefaultCatchupTimeout bounds one replica's replication log catch-up
// attempt (stream + apply + rejoin invalidation).
const DefaultCatchupTimeout = 30 * time.Second

// replogTruncateEvery is how many replog appends ride between
// truncation sweeps (each sweep reclaims sealed segments below the
// fleet's minimum applied LSN).
const replogTruncateEvery = 1024

// Frontend is the fleet's server.Backend: queries go through the Pool
// (consistent-hash routing, health-checked failover, optional hedging)
// and mutations are forwarded — serialized, so every replica applies
// the identical stream in the identical order, which is what makes
// replica snapshots and the name→id dictionaries they derive agree —
// to every replica, with the dirty edges handed to the Broadcaster for
// batched fleet-wide cache invalidation.
//
// With a replication log attached (UseRepLog), every mutation is
// LSN-stamped and appended to the log *before* fan-out, replicas
// acknowledge with their applied LSN, and an ejected replica is
// readmitted only after catch-up: the pool's rejoin gate streams the
// records the replica missed from the log, in order, and finishes with
// one invalidation scoped to exactly the caught-up dirty edges — so a
// readmitted replica can never serve answers derived from a stale
// graph. Without a replog the PR 4 posture remains: mutations reach
// only reachable replicas and an ejected replica's divergence is
// visible in MissedMutations but not repaired.
type Frontend struct {
	pool   *Pool
	bcast  *Broadcaster
	replog *RepLog // nil: no replication log

	// qnode, when set (UseQuorum), replaces the single-process replog
	// with the quorum-replicated consensus log: this front-end is one of
	// 2–3 HA peers, writes are accepted only while it holds leadership
	// (followers answer NotLeaderError → 307 on the wire), every record
	// is majority-acknowledged before fan-out, and replica catch-up
	// streams the log's committed prefix only.
	qnode *quorum.Node
	// leaderReady opens the quorum write path: false from construction
	// and from every leadership loss, true once the takeover reconcile
	// has brought the live replicas' cursors to the committed prefix.
	// Writes before that would mass-gap-reject the fleet (the takeover
	// term record occupies an LSN replicas have not streamed yet).
	leaderReady atomic.Bool

	// writeMu serializes the mutation path. One writer at a time is the
	// fleet's ordering guarantee; read traffic never takes this lock.
	writeMu sync.Mutex
	// appends counts replog appends since the last truncation sweep
	// (guarded by writeMu).
	appends int

	// MutationTimeout bounds one replica's acknowledgement of one
	// forwarded mutation.
	MutationTimeout time.Duration
	// CatchupTimeout bounds one replica's whole catch-up attempt.
	CatchupTimeout time.Duration
	// NewReplicaClient builds the client for a replica adopted by
	// JoinReplica (nil: NewClient with default config). Set it when the
	// fleet's clients carry non-default timeouts or hedging.
	NewReplicaClient func(url string) (*Client, error)

	// lagMu guards the lag ejector's per-replica memory: the log head and
	// the replica's cursor as of the previous probe sweep. A cursor that
	// sits below the OLD head while making NO progress is a silently
	// restarted or stuck replica; a cursor that is merely behind but
	// advancing is just slow (an in-flight fan-out, a scheduling hiccup)
	// and must not flap the ring.
	lagMu      sync.Mutex
	prevHead   map[int]uint64
	prevCursor map[int]uint64
}

// NewFrontend glues a pool and a broadcaster into a serving backend and
// registers the pool→broadcaster hooks: an ejected replica's broadcasts
// escalate to a global invalidation, and an (ungated) readmission fires
// that escalation immediately rather than waiting for the next flush.
func NewFrontend(pool *Pool, bcast *Broadcaster) (*Frontend, error) {
	if pool == nil || bcast == nil {
		return nil, errors.New("fleet: frontend needs a pool and a broadcaster")
	}
	f := &Frontend{
		pool:            pool,
		bcast:           bcast,
		MutationTimeout: DefaultTimeout,
		CatchupTimeout:  DefaultCatchupTimeout,
	}
	pool.OnEject(bcast.MarkMissed)
	// The eject→live transition must not leave the escalated invalidation
	// to "the next broadcast" — a write-quiet fleet never flushes one. A
	// transient send failure is retried while the replica stays live; if
	// it is ejected again the ejection hook re-owns the debt, and the
	// missed flag survives every failure, so a later broadcast still
	// escalates.
	pool.OnReadmit(func(i int) {
		for attempt := 0; attempt < readmitFlushAttempts; attempt++ {
			if !pool.Live(i) {
				return
			}
			if bcast.FlushMissed(context.Background(), i) == nil {
				return
			}
			time.Sleep(readmitFlushRetryDelay)
		}
	})
	return f, nil
}

// Retry schedule for the readmission-time escalated invalidation.
const (
	readmitFlushAttempts   = 40
	readmitFlushRetryDelay = 250 * time.Millisecond
)

// UseRepLog attaches the replication log and switches the pool to
// catch-up-gated readmission. Call before serving traffic. The log may
// hold history from an earlier front-end run; replicas behind it (all
// of them, for fresh in-memory replicas) are brought up to head by the
// same catch-up path that serves readmission.
func (f *Frontend) UseRepLog(rl *RepLog) error {
	if rl == nil {
		return errors.New("fleet: nil replication log")
	}
	f.replog = rl
	f.prevHead = make(map[int]uint64)
	f.prevCursor = make(map[int]uint64)
	f.pool.SetRejoinGate(f.catchUp)
	// Divergence ejection: a live replica whose self-reported cursor sits
	// two or more records below the head that already existed at the
	// previous probe sweep — without progressing since that sweep — has
	// silently lost or stopped applying history (a restart the fan-out
	// never noticed, a wedged apply loop); eject it so catch-up repairs
	// it. The thresholds are what make this flap-free: writes are
	// serialized, so at most ONE record is ever mid-fan-out — a live
	// replica lagging by exactly one may just be a slow ack, but a lag of
	// two is impossible without a miss (which the write path would have
	// ejected for) or a restart. The no-progress condition is
	// belt-and-braces against delivery paths this analysis missed.
	f.pool.SetLagEjector(func(i int, cursor uint64) bool {
		f.lagMu.Lock()
		defer f.lagMu.Unlock()
		prevH, seen := f.prevHead[i]
		prevC := f.prevCursor[i]
		f.prevHead[i] = f.replog.Head()
		f.prevCursor[i] = cursor
		return seen && cursor+1 < prevH && cursor <= prevC
	})
	return nil
}

// UseQuorum attaches a quorum node in place of a local replication log:
// the consensus log (committed prefix) plays the replog's role in
// catch-up, fan-out ordering and observability, and this front-end
// accepts writes only while the node holds leadership. Mutually
// exclusive with UseRepLog; call before the node is Started and before
// serving traffic.
func (f *Frontend) UseQuorum(n *quorum.Node) error {
	if n == nil {
		return errors.New("fleet: nil quorum node")
	}
	if f.replog != nil {
		return errors.New("fleet: UseRepLog and UseQuorum are mutually exclusive")
	}
	f.qnode = n
	f.prevHead = make(map[int]uint64)
	f.prevCursor = make(map[int]uint64)
	f.pool.SetRejoinGate(f.catchUp)
	// Divergence ejection, leader-only (see UseRepLog for the lag
	// reasoning): followers never fan out writes, so a replica lagging a
	// follower's view of the commit is the leader's business, not
	// grounds for ejection here. The comparison baseline is the commit
	// LSN — the uncommitted suffix is invisible to replicas by design.
	f.pool.SetLagEjector(func(i int, cursor uint64) bool {
		if !n.IsLeader() {
			return false
		}
		f.lagMu.Lock()
		defer f.lagMu.Unlock()
		prevH, seen := f.prevHead[i]
		prevC := f.prevCursor[i]
		f.prevHead[i] = n.CommitLSN()
		f.prevCursor[i] = cursor
		return seen && cursor+1 < prevH && cursor <= prevC
	})
	n.OnRoleChange(func(leader bool, term uint64) {
		if !leader {
			f.leaderReady.Store(false)
			return
		}
		f.reconcile(term)
	})
	return nil
}

// reconcile runs on leadership takeover: wait for the takeover term
// record to commit (which commits the whole inherited prefix under it),
// stream every live replica up to the committed prefix — term records
// and all, via the same catch-up path ejected replicas use — and only
// then open the write path. Retries until it succeeds or leadership is
// lost; meanwhile writes answer 503 ("leadership settling") rather
// than mass-ejecting replicas on takeover-gap rejections.
func (f *Frontend) reconcile(term uint64) {
	stillLeading := func() bool {
		return f.qnode.IsLeader() && f.qnode.Term() == term
	}
	// The write path is closed, so the head is stable: it is exactly the
	// inherited prefix plus our term record.
	takeoverHead := f.qnode.Head()
	for stillLeading() && f.qnode.CommitLSN() < takeoverHead {
		time.Sleep(10 * time.Millisecond)
	}
	for stillLeading() {
		settled := true
		for i := 0; i < f.pool.Replicas(); i++ {
			if !f.pool.Live(i) {
				continue // the rejoin gate owns ejected replicas
			}
			if err := f.catchUp(i); err != nil {
				settled = false
			}
		}
		if settled {
			f.leaderReady.Store(true)
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// logHead is the highest LSN the attached log (replog or quorum) has
// issued; acks beyond it are epoch-mismatch evidence.
func (f *Frontend) logHead() uint64 {
	if f.qnode != nil {
		return f.qnode.Head()
	}
	return f.replog.Head()
}

var _ search.Searcher = (*Frontend)(nil)

// Do routes one query through the pool.
func (f *Frontend) Do(ctx context.Context, req search.Request) (search.Response, error) {
	return f.pool.Do(ctx, req)
}

// DoBatch routes a batch through the pool.
func (f *Frontend) DoBatch(ctx context.Context, reqs []search.Request) []search.BatchResult {
	return f.pool.DoBatch(ctx, reqs)
}

// forward fans one mutation out. lsn is the replication LSN the record
// was appended under (0 without a replog).
//
// Without a replog (lsn == 0), the PR 4 contract holds: every replica
// is tried; a replica that rejects the mutation as invalid fails the
// call (every replica rejects the same input the same way, so nothing
// was applied anywhere); an unreachable replica feeds health state, is
// counted in MissedMutations — the stats-visible record of divergence —
// and is skipped.
//
// With a replog, ejected replicas are skipped outright (their missed
// mutations are in the log and arrive via catch-up, still counted in
// MissedMutations), replicas mid-catch-up are included — the LSN
// ordering rule makes that safe: the record either applies cleanly or
// is refused with ErrBehind and left to the catch-up stream — and a
// *live* replica answering ErrBehind is divergence evidence that feeds
// its health state so ejection and catch-up follow.
func (f *Frontend) forward(ctx context.Context, lsn uint64, send func(ctx context.Context, c *Client) (uint64, error)) error {
	ctx, fsp := obs.StartSpan(ctx, "fleet.forward")
	defer fsp.End()
	fsp.SetInt("lsn", int64(lsn))
	applied := 0
	var lastUnavailable, lastInvalid error
	for i := 0; i < f.pool.Replicas(); i++ {
		if f.pool.Retired(i) {
			continue
		}
		st := f.pool.state(i)
		if lsn > 0 && !st.admissible() {
			st.counters.MissedMutation()
			continue
		}
		c := f.pool.Client(i)
		// One timeout per replica, not one shared across the fan-out: a
		// blackholed replica must cost its own deadline, never starve
		// the later replicas into spurious failures. The parent ctx
		// carries only trace values, never cancellation (BefriendCtx
		// strips it), so a client hang-up cannot abort the fan-out
		// half-way into divergence.
		ctx, cancel := context.WithTimeout(ctx, f.MutationTimeout)
		ack, err := send(ctx, c)
		cancel()
		if err == nil {
			if lsn > 0 {
				if ack > f.logHead() {
					// The replica's cursor is beyond anything this log ever
					// issued: a replication epoch mismatch (e.g. the
					// front-end was restarted with a fresh -replog-dir over
					// running replicas). The "success" was a dedup no-op —
					// every write would silently vanish this way — so eject
					// the replica and surface the mismatch; catch-up refuses
					// it too, keeping it out until an operator intervenes.
					st.counters.MissedMutation()
					st.eject(fmt.Errorf("fleet: replication epoch mismatch: replica cursor %d beyond log head", ack))
					f.bcast.MarkMissed(i)
					continue
				}
				f.pool.noteApplied(i, ack)
			}
			applied++
			st.ok()
			continue
		}
		if errors.Is(err, ErrBehind) {
			// The record is durably in the log; catch-up delivers it. A
			// replica mid-catch-up answering this is routine; one that
			// claims to be live has PROVABLY missed history — eject it now
			// (FailAfter is for ambiguous evidence, not known divergence).
			if st.isLive() {
				st.counters.MissedMutation()
				st.eject(err)
				f.bcast.MarkMissed(i)
			}
			continue
		}
		if lsn == 0 && errors.Is(err, search.ErrOverloaded) {
			// Shared-fate shed: the replica is healthy but at capacity —
			// return the 429 (Retry-After hint intact) to the client
			// instead of ejecting a replica for protecting itself. The
			// client's backoff-retry re-forwards the mutation; replicas
			// earlier in the fan-out that already applied it get their
			// dirty edge noted by the caller (see BefriendCtx), and
			// unstamped mode's divergence accounting already owns the gap
			// until then. Stamped mutations never take this branch:
			// replicas exempt the replication apply path from admission,
			// so an overload answer there is divergence and falls through
			// below.
			st.counters.MissedMutation()
			return err
		}
		if errors.Is(err, search.ErrInvalid) {
			if lsn == 0 {
				// Every replica rejects the same input the same way, so
				// nothing was applied anywhere; fail the call.
				return err
			}
			// With a replog the record is already durably logged (the
			// front-end pre-validates, so this is belt-and-braces): the
			// replica processed-and-rejected it deterministically,
			// advancing its cursor, and the rest of the fleet must do the
			// same in lockstep — keep fanning out, report the rejection
			// at the end.
			lastInvalid = err
			st.ok()
			f.pool.noteApplied(i, lsn)
			continue
		}
		st.counters.MissedMutation()
		lastUnavailable = err
		if lsn > 0 && st.isLive() {
			// A live replica that failed a stamped mutation has missed it
			// for certain. Don't wait out FailAfter probes while it serves
			// a stale graph: eject now, let catch-up repair and readmit.
			st.eject(err)
		} else {
			st.fail(err)
		}
		f.bcast.MarkMissed(i)
	}
	if lastInvalid != nil {
		return lastInvalid
	}
	if applied == 0 {
		if lastUnavailable != nil {
			return lastUnavailable
		}
		return unavailablef("no replicas")
	}
	return nil
}

// validateMutationNames is the front-end's pre-log validation: with a
// replication log, a record is appended before fan-out, so anything a
// replica would deterministically reject must be caught here first —
// the log must never grow a record the fleet cannot apply. The rules
// mirror the STRICTEST replica side: vocab rejects empty names,
// overlay rejects self-edges and out-of-range weights, and durable
// replicas reject names containing line breaks (their persistence
// format is line-based).
func validateMutationNames(names ...string) error {
	for _, n := range names {
		if strings.TrimSpace(n) == "" {
			return search.WrapInvalid(errors.New("fleet: empty name in mutation"))
		}
		if strings.ContainsAny(n, "\n\r") {
			return search.WrapInvalid(fmt.Errorf("fleet: name %q contains line breaks", n))
		}
	}
	return nil
}

func validateBefriend(a, b string, weight float64) error {
	if err := validateMutationNames(a, b); err != nil {
		return err
	}
	if a == b {
		return search.WrapInvalid(fmt.Errorf("fleet: self-friendship for %q", a))
	}
	if !(weight > 0 && weight <= 1) {
		return search.WrapInvalid(fmt.Errorf("fleet: weight %g outside (0,1]", weight))
	}
	return nil
}

// Befriend forwards the friendship mutation to every replica and notes
// the dirty edge for the next invalidation broadcast. With a replog the
// record is validated, durably logged, and only then fanned out.
func (f *Frontend) Befriend(a, b string, weight float64) error {
	return f.BefriendCtx(context.Background(), a, b, weight)
}

// BefriendCtx is Befriend carrying the request context's trace through
// the append and fan-out path (the server.CtxMutator surface).
// Cancellation is stripped up front: once the record is durably logged
// the fan-out must run to completion whether or not the client is
// still listening, or replicas would diverge on a hang-up.
func (f *Frontend) BefriendCtx(ctx context.Context, a, b string, weight float64) error {
	ctx = context.WithoutCancel(ctx)
	f.writeMu.Lock()
	defer f.writeMu.Unlock()
	var lsn uint64
	switch {
	case f.qnode != nil:
		if err := validateBefriend(a, b, weight); err != nil {
			return err
		}
		var err error
		if lsn, err = f.quorumAppend(ctx, durable.RecBefriend, durable.EncodeBefriend(a, b, weight)); err != nil {
			return err
		}
	case f.replog != nil:
		if err := validateBefriend(a, b, weight); err != nil {
			return err
		}
		if !f.pool.anyLive() {
			return unavailablef("no live replica to accept the write")
		}
		var err error
		if lsn, err = f.replogAppend(ctx, func() (uint64, error) {
			return f.replog.AppendBefriend(a, b, weight)
		}); err != nil {
			return err
		}
	}
	if err := f.forward(ctx, lsn, func(ctx context.Context, c *Client) (uint64, error) {
		return c.Befriend(ctx, a, b, weight, lsn)
	}); err != nil {
		if errors.Is(err, search.ErrOverloaded) {
			// A shed aborted the fan-out partway: replicas before the
			// shedding one applied the edge, and their caches must not
			// outlive it just because the client was told to back off.
			f.bcast.NoteEdge(a, b)
		}
		return err
	}
	f.bcast.NoteEdge(a, b)
	return nil
}

// replogAppend wraps one replication log append in its trace span and
// the periodic log maintenance. Callers hold writeMu.
func (f *Frontend) replogAppend(ctx context.Context, append func() (uint64, error)) (uint64, error) {
	_, sp := obs.StartSpan(ctx, "replog.append")
	defer sp.End()
	lsn, err := append()
	if err != nil {
		return 0, fmt.Errorf("fleet: replication log append: %w", err)
	}
	sp.SetInt("lsn", int64(lsn))
	f.noteAppendLocked()
	return lsn, nil
}

// quorumAppend is the leader-only half of a quorum-mode mutation: gate
// on leadership and reconcile state, then append to the consensus log
// and wait for the majority ack. Only after it returns does the record
// exist for the fleet — fan-out of an uncommitted record could surface
// a write a new leader later disowns. Callers hold writeMu.
func (f *Frontend) quorumAppend(ctx context.Context, t wal.Type, payload []byte) (uint64, error) {
	if !f.qnode.IsLeader() {
		return 0, f.qnode.NotLeader()
	}
	if !f.leaderReady.Load() {
		return 0, unavailablef("leadership settling: replica reconcile in progress")
	}
	if !f.pool.anyLive() {
		return 0, unavailablef("no live replica to accept the write")
	}
	// The span covers append → majority replicate → commit; the caller's
	// ctx carries trace values only (cancellation already stripped), so
	// the append still runs under its own timeout.
	ctx, sp := obs.StartSpan(ctx, "quorum.commit")
	defer sp.End()
	ctx, cancel := context.WithTimeout(ctx, f.MutationTimeout)
	defer cancel()
	lsn, err := f.qnode.Append(ctx, t, payload)
	if err != nil {
		var nle *quorum.NotLeaderError
		if errors.As(err, &nle) {
			return 0, err
		}
		return 0, unavailablef("quorum append: %v", err)
	}
	sp.SetInt("lsn", int64(lsn))
	sp.SetInt("term", int64(f.qnode.Term()))
	return lsn, nil
}

// Tag forwards the tagging mutation to every replica and schedules the
// compaction heartbeat that makes it queryable fleet-wide.
func (f *Frontend) Tag(user, item, tag string) error {
	return f.TagCtx(context.Background(), user, item, tag)
}

// TagCtx is Tag carrying the request context's trace; cancellation is
// stripped for the same divergence-safety reason as BefriendCtx.
func (f *Frontend) TagCtx(ctx context.Context, user, item, tag string) error {
	ctx = context.WithoutCancel(ctx)
	f.writeMu.Lock()
	defer f.writeMu.Unlock()
	var lsn uint64
	switch {
	case f.qnode != nil:
		if err := validateMutationNames(user, item, tag); err != nil {
			return err
		}
		var err error
		if lsn, err = f.quorumAppend(ctx, durable.RecTag, durable.EncodeTag(user, item, tag)); err != nil {
			return err
		}
	case f.replog != nil:
		if err := validateMutationNames(user, item, tag); err != nil {
			return err
		}
		if !f.pool.anyLive() {
			return unavailablef("no live replica to accept the write")
		}
		var err error
		if lsn, err = f.replogAppend(ctx, func() (uint64, error) {
			return f.replog.AppendTag(user, item, tag)
		}); err != nil {
			return err
		}
	}
	if err := f.forward(ctx, lsn, func(ctx context.Context, c *Client) (uint64, error) {
		return c.Tag(ctx, user, item, tag, lsn)
	}); err != nil {
		if errors.Is(err, search.ErrOverloaded) {
			// Partial fan-out before the shed: the applied replicas still
			// need the compaction heartbeat (see BefriendCtx).
			f.bcast.NoteWrite()
		}
		return err
	}
	f.bcast.NoteWrite()
	return nil
}

// noteAppendLocked runs the periodic replog maintenance: every
// replogTruncateEvery appends, raise the truncation barrier to the
// fleet's minimum applied LSN + 1 and reclaim the sealed prefix below
// it. Callers hold writeMu.
func (f *Frontend) noteAppendLocked() {
	f.appends++
	if f.appends < replogTruncateEvery {
		return
	}
	f.appends = 0
	barrier := f.pool.minApplied() + 1
	f.replog.SetBarrier(barrier)
	// Reclaim everything the barrier permits; errors are advisory (the
	// next sweep retries) but must not fail the write.
	_ = f.replog.TruncateThrough(f.replog.Head())
}

// catchUp is the pool's rejoin gate: bring replica i from its applied
// LSN to the replication log head, then send one invalidation scoped to
// exactly the dirty edges of the caught-up records. Runs concurrently
// with foreground writes — the loop re-reads the head until the replica
// has it, and the LSN ordering rule keeps the two delivery paths
// (catch-up stream, direct fan-out to a catching-up replica) from ever
// applying a record twice or out of order.
func (f *Frontend) catchUp(i int) error {
	if f.replog == nil && f.qnode == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), f.CatchupTimeout)
	defer cancel()
	c := f.pool.Client(i)

	// The replica's own cursor is authoritative — a restarted replica is
	// back at zero no matter what our ack tracking remembers — so the
	// tracked value is overwritten, not maxed: the truncation barrier
	// must observe the reset.
	applied, err := c.Healthz(ctx)
	if err != nil {
		return err
	}
	if applied > f.logHead() {
		// The replica has applied records this log never issued: a
		// replication epoch mismatch (fresh -replog-dir over running
		// replicas). "Catching it up" would silently dedup-skip every
		// future write; keep it out until an operator resolves the epoch
		// (restore the original log, or restart the replica clean).
		return fmt.Errorf("fleet: replication epoch mismatch: replica cursor %d beyond log head %d", applied, f.logHead())
	}
	f.pool.state(i).setApplied(applied)

	if f.qnode != nil && !f.qnode.IsLeader() {
		// Follower gate: streaming records to replicas is the leader's
		// job (one writer, one delivery order). This follower only
		// verifies the replica has reached the committed prefix as this
		// node knows it before letting it back into the read ring; until
		// then the gate fails and the next probe sweep retries.
		if commit := f.qnode.CommitLSN(); applied < commit {
			return unavailablef("replica cursor %d behind quorum commit %d (the leader streams catch-up)", applied, commit)
		}
		return nil
	}

	// Leader (or single-front-end replog) streaming path. In quorum
	// mode the stream is bounded by the COMMITTED prefix: an
	// uncommitted record must never reach a replica, or a conflicting
	// leader change would leave it serving history the cluster
	// disowned.
	readLog := func(from uint64, fn func(wal.Record) error) (uint64, error) {
		if f.qnode != nil {
			return f.qnode.ReadCommitted(from, fn)
		}
		return f.replog.ReadFrom(from, fn)
	}

	replayed := 0
	edgeSeen := make(map[[2]string]struct{})
	var edges [][2]string
	for {
		_, err := readLog(applied+1, func(rec wal.Record) error {
			if rec.LSN <= applied {
				return nil // another delivery path got there first
			}
			switch rec.Type {
			case durable.RecBefriend:
				a, b, w, derr := durable.DecodeBefriend(rec.Data)
				if derr != nil {
					return derr
				}
				ack, aerr := c.Befriend(ctx, a, b, w, rec.LSN)
				if aerr != nil && !errors.Is(aerr, search.ErrInvalid) {
					return aerr
				}
				// A deterministic rejection still advances the replica's
				// cursor — every replica skips the same record identically.
				applied = rec.LSN
				if ack > applied {
					applied = ack
				}
				key := [2]string{a, b}
				if b < a {
					key = [2]string{b, a}
				}
				if _, ok := edgeSeen[key]; !ok {
					edgeSeen[key] = struct{}{}
					edges = append(edges, key)
				}
			case durable.RecTag:
				u, it, tg, derr := durable.DecodeTag(rec.Data)
				if derr != nil {
					return derr
				}
				ack, aerr := c.Tag(ctx, u, it, tg, rec.LSN)
				if aerr != nil && !errors.Is(aerr, search.ErrInvalid) {
					return aerr
				}
				applied = rec.LSN
				if ack > applied {
					applied = ack
				}
			case durable.RecTerm:
				// Leadership records carry no mutation: the replica just
				// advances its cursor past them, keeping LSN arithmetic in
				// lockstep with the quorum log.
				ack, aerr := c.Skip(ctx, rec.LSN)
				if aerr != nil {
					return aerr
				}
				applied = rec.LSN
				if ack > applied {
					applied = ack
				}
			default:
				return fmt.Errorf("fleet: replog lsn %d: unknown record type %d", rec.LSN, rec.Type)
			}
			replayed++
			f.pool.noteApplied(i, applied)
			return nil
		})
		if err != nil {
			return err
		}
		// Exit only against the CURRENT head, never the head the pass
		// captured: a record appended after the pass started may already
		// have been gap-rejected at fan-out (the replica's cursor was
		// behind), so only the catch-up stream will ever deliver it. Any
		// record that can gap-reject was appended before this check reads
		// the head; conversely, once the replica holds the current head,
		// every later record reaches it directly (cursor == lsn-1 at
		// fan-out time — writes are serialized), so no gap can form after
		// the loop exits. In quorum mode the moving target is the commit
		// LSN, for the same reason.
		target := f.logHead()
		if f.qnode != nil {
			target = f.qnode.CommitLSN()
		}
		if applied >= target {
			break
		}
		// The head moved while we streamed (foreground writes); go again
		// from where the replica now is.
	}

	// One rejoin invalidation: edge-scoped to exactly the caught-up dirty
	// edges (escalating to global only past the broadcast batch bound),
	// and — records or not — the compaction heartbeat that folds the
	// replayed writes into the replica's queryable snapshot. Only after
	// it succeeds is the escalated-global debt for missed broadcasts
	// withdrawn: everything a missed broadcast would have dropped is
	// covered by the replica's own dirty tracking (for writes it applied
	// itself) plus this edge set (for writes it missed).
	all := false
	if len(edges) > f.bcast.cfg.MaxBatchEdges {
		all, edges = true, nil
	}
	// Capture the miss sequence before the invalidation: a broadcast that
	// fails for this replica after this point is NOT covered by it, and
	// the guarded clear below must leave that debt standing.
	seq := f.bcast.MissedSeq(i)
	if _, err := c.Invalidate(ctx, edges, all); err != nil {
		return err
	}
	f.bcast.ClearMissedIf(i, seq)
	c.Counters().Catchup(replayed)
	return nil
}

// Users asks the first live replica (replicas agree on the user set, up
// to in-flight forwards).
func (f *Frontend) Users() []string {
	ctx, cancel := context.WithTimeout(context.Background(), f.MutationTimeout)
	defer cancel()
	for i := 0; i < f.pool.Replicas(); i++ {
		if !f.pool.Live(i) {
			continue
		}
		if users, err := f.pool.Client(i).Users(ctx); err == nil {
			return users
		}
	}
	return nil
}

// Flush synchronously broadcasts pending invalidations — the fleet
// equivalent of social.Service.Flush.
func (f *Frontend) Flush() error {
	f.bcast.Flush(context.Background())
	return nil
}

// ReplogPage implements server.ReplogSource: GET /v2/replog pages
// through the replication log, so operators (and external tooling) can
// inspect exactly the stream replicas catch up from.
func (f *Frontend) ReplogPage(from uint64, max int) (server.ReplogPage, error) {
	if f.qnode != nil {
		// Serve the COMMITTED prefix only: the uncommitted suffix may be
		// disowned by a leader change, and external auditors comparing
		// HA peers' logs must see streams that can only agree.
		page := server.ReplogPage{From: from}
		head, err := f.qnode.ReadCommitted(from, func(rec wal.Record) error {
			if len(page.Records) >= max {
				return errPageFull
			}
			page.Records = append(page.Records, server.ReplogRecord{
				LSN:  rec.LSN,
				Type: uint8(rec.Type),
				Data: append([]byte(nil), rec.Data...),
			})
			return nil
		})
		if err != nil && !errors.Is(err, errPageFull) {
			return server.ReplogPage{}, err
		}
		page.Head = head
		return page, nil
	}
	if f.replog == nil {
		return server.ReplogPage{}, server.ErrNoReplog
	}
	return f.replog.Page(from, max)
}

// ReplogStats is the replication log's observable state.
type ReplogStats struct {
	// Head is the LSN of the last appended record.
	Head uint64
	// Barrier is the truncation barrier (fleet min applied LSN + 1 as of
	// the last maintenance sweep).
	Barrier uint64
	// Segments is the number of live log segment files.
	Segments int
	// MinAppliedLSN is the lowest replica cursor currently tracked.
	MinAppliedLSN uint64
}

// Stats is the fleet front door's /v1/stats payload.
type Stats struct {
	Replicas  []ReplicaStats
	Broadcast BroadcastStats
	Replog    *ReplogStats  `json:",omitempty"`
	Quorum    *quorum.Stats `json:",omitempty"`
}

// StatsAny implements server.Statser.
func (f *Frontend) StatsAny() interface{} {
	st := Stats{Replicas: f.pool.Stats(), Broadcast: f.bcast.Stats()}
	if f.qnode != nil {
		qs := f.qnode.Stats()
		st.Quorum = &qs
		// Replica lag is measured against the committed prefix — the
		// only part of the log replicas are ever streamed.
		for i := range st.Replicas {
			if qs.CommitLSN > st.Replicas[i].AppliedLSN {
				st.Replicas[i].ReplogLag = qs.CommitLSN - st.Replicas[i].AppliedLSN
			}
		}
		st.Replog = &ReplogStats{
			Head:          qs.Head,
			Segments:      qs.Segments,
			MinAppliedLSN: f.pool.minApplied(),
		}
		return st
	}
	if f.replog != nil {
		head := f.replog.Head()
		for i := range st.Replicas {
			if head > st.Replicas[i].AppliedLSN {
				st.Replicas[i].ReplogLag = head - st.Replicas[i].AppliedLSN
			}
		}
		st.Replog = &ReplogStats{
			Head:          head,
			Barrier:       f.replog.Barrier(),
			Segments:      f.replog.Segments(),
			MinAppliedLSN: f.pool.minApplied(),
		}
	}
	return st
}

// QuorumRole implements server.RoleReporter for HA front-ends: the
// node's role, believed leader URL, and term ride on /healthz headers.
// Without a quorum node the role is empty and the server omits the
// headers.
func (f *Frontend) QuorumRole() (role, leaderURL string, term uint64) {
	if f.qnode == nil {
		return "", "", 0
	}
	_, leaderURL = f.qnode.Leader()
	role = "follower"
	if f.qnode.IsLeader() {
		role = "leader"
	}
	return role, leaderURL, f.qnode.Term()
}

// Close stops the pool's prober, drains the broadcaster and closes the
// replication log (or quorum node).
func (f *Frontend) Close() {
	f.pool.Close()
	f.bcast.Close()
	if f.replog != nil {
		f.replog.Close()
	}
	if f.qnode != nil {
		f.qnode.Close()
	}
}
