package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/search"
	"repro/internal/shard"
)

// Pool defaults, substituted for zero config fields.
const (
	DefaultHealthInterval = time.Second
	DefaultHealthTimeout  = 2 * time.Second
	DefaultFailAfter      = 3
	DefaultReviveAfter    = 2
)

// PoolConfig tunes the replica pool.
type PoolConfig struct {
	// HealthInterval is the period between /healthz sweeps
	// (0 = DefaultHealthInterval; negative disables the prober — tests
	// drive health transitions through query failures alone).
	HealthInterval time.Duration
	// HealthTimeout bounds one probe (0 = DefaultHealthTimeout).
	HealthTimeout time.Duration
	// FailAfter ejects a replica after this many consecutive failures —
	// probe failures and query transport failures both count
	// (0 = DefaultFailAfter).
	FailAfter int
	// ReviveAfter re-admits an ejected replica after this many
	// consecutive successful probes (0 = DefaultReviveAfter).
	ReviveAfter int
	// VirtualNodes configures the routing ring (0 = ring default).
	VirtualNodes int
}

// replicaState is the health bookkeeping for one replica. The mutex
// serializes the consecutive-outcome counters; the live flag is read on
// every query, so it lives behind the same lock but is cached by
// preference walks that tolerate slight staleness.
type replicaState struct {
	mu          sync.Mutex
	live        bool
	retired     bool // permanently out: no probes, routing, or fan-out
	holdGate    bool // admitted but awaiting bootstrap: don't start the gate yet
	consecFails int
	consecOKs   int
	lastErr     string
	lastProbe   time.Time
	onEject     func() // notified once per ejection (broadcaster hook)
	onReadmit   func() // notified (in a goroutine) once per ungated eject→live transition
	gate        func() // when set, readmission runs the rejoin gate instead of flipping live
	catchingUp  bool   // a rejoin gate run is in flight
	appliedLSN  uint64 // replica's replication cursor, from acks and probes
	failAfter   int
	reviveAfter int
	counters    *metrics.ReplicaCounters
}

func (r *replicaState) isLive() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.live && !r.retired
}

// admissible reports whether the replica should receive forwarded
// mutations: live, or mid-rejoin (a catching-up replica is reachable
// and the LSN ordering rule makes direct fan-out to it safe — it either
// applies the record cleanly or defers it to the catch-up stream).
// Admitted-but-not-yet-activated joiners are admissible the same way a
// catching-up replica is; retired replicas never are.
func (r *replicaState) admissible() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return !r.retired && (r.live || r.catchingUp)
}

// noteApplied advances the tracked replication cursor (monotonic —
// mutation acks can only move it forward).
func (r *replicaState) noteApplied(lsn uint64) {
	r.mu.Lock()
	if lsn > r.appliedLSN {
		r.appliedLSN = lsn
	}
	r.mu.Unlock()
}

// setApplied overwrites the tracked cursor with the replica's
// self-reported value (health probes). NOT monotonic on purpose: a
// restarted replica reports 0, and the truncation barrier must observe
// the reset or it would reclaim exactly the records the replica now
// needs. A transiently stale probe value only lowers the barrier —
// retaining more log than necessary, never less.
func (r *replicaState) setApplied(lsn uint64) {
	r.mu.Lock()
	r.appliedLSN = lsn
	r.mu.Unlock()
}

// fail records one failure (probe or query) and reports whether the
// replica just transitioned to ejected.
func (r *replicaState) fail(err error) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.consecOKs = 0
	r.consecFails++
	if err != nil {
		r.lastErr = err.Error()
	}
	if r.live && r.consecFails >= r.failAfter {
		r.live = false
		r.counters.Ejection()
		if r.onEject != nil && !r.retired {
			r.onEject()
		}
		return true
	}
	return false
}

// eject forces the replica out of rotation immediately, bypassing the
// FailAfter threshold. The replication write path uses it on KNOWN
// divergence — a live replica that missed (or gap-rejected) a stamped
// mutation is not "maybe flaky", it is provably behind, and it must
// not serve another query until catch-up repairs it. FailAfter remains
// the threshold for ambiguous evidence (probe failures, query
// transport errors).
func (r *replicaState) eject(err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.consecOKs = 0
	if err != nil {
		r.lastErr = err.Error()
	}
	if r.live {
		r.live = false
		r.counters.Ejection()
		if r.onEject != nil && !r.retired {
			r.onEject()
		}
	}
}

// retire permanently removes the replica from every plane: it stops
// being probed, routed to, fanned out to, or counted in the truncation
// barrier. One-way by design — a retired slot's member is gone; a
// returning process joins as a NEW member.
func (r *replicaState) retire() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.retired = true
	r.live = false
	r.catchingUp = false
}

// releaseGate ends the post-admission bootstrap hold: the next
// successful probe streak may start the rejoin gate (catch-up) that
// flips the replica live.
func (r *replicaState) releaseGate() {
	r.mu.Lock()
	r.holdGate = false
	r.mu.Unlock()
}

// ok records one success (probe or query) and reports whether the
// replica just transitioned back to live. With a rejoin gate
// configured, probe successes alone never readmit: eligibility starts
// (at most) one gate run, and only its successful completion — the
// replica has streamed and applied the replication log through the
// head — flips live (see finishGate).
func (r *replicaState) ok() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.retired {
		return false
	}
	r.consecFails = 0
	r.consecOKs++
	// A probe success on a gated, still-ejected replica must not erase
	// the last catch-up failure: that error is the operator's only clue
	// why the replica is healthy yet out of the ring.
	if r.live || r.gate == nil {
		r.lastErr = ""
	}
	if !r.live && r.consecOKs >= r.reviveAfter {
		if r.holdGate {
			// Admitted, healthy, but the join orchestration has not yet
			// bootstrapped it — flipping live (or streaming the whole log)
			// now would defeat the snapshot transfer.
			return false
		}
		if r.gate != nil {
			if !r.catchingUp {
				r.catchingUp = true
				go r.gate()
			}
			return false
		}
		r.live = true
		r.counters.Readmission()
		if r.onReadmit != nil {
			go r.onReadmit()
		}
		return true
	}
	return false
}

// finishGate completes a rejoin gate run: on success the replica goes
// live (the only way live flips true while a gate is configured); on
// failure it stays out with the error observable, and the next probe
// success starts another attempt.
func (r *replicaState) finishGate(err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.catchingUp = false
	if err != nil {
		r.lastErr = "catch-up: " + err.Error()
		return
	}
	r.lastErr = ""
	if !r.live && !r.retired {
		r.live = true
		r.counters.Readmission()
	}
}

// topology is the immutable routing + membership view the whole read
// path works against: the epoch (bumped by every membership or ring
// change), the consistent-hash ring over the in-ring slot labels, and
// the slot-indexed member arrays. Every query loads it exactly ONCE —
// the epoch fence — so a request routed under epoch N can never mix
// epoch N ring decisions with epoch N+1 member arrays mid-flight.
// Member arrays are append-only across views (a slot, once assigned,
// always names the same member), which is what keeps slot indices
// stable across resizes for the health, broadcast, and replication
// planes.
type topology struct {
	epoch   uint64
	ring    *shard.Ring
	clients []*Client
	states  []*replicaState
	inRing  []bool // slot participates in read routing
	retired []bool // slot permanently removed (implies !inRing)
}

// ringSlots returns the in-ring slot labels, ascending.
func (t *topology) ringSlots() []int {
	return t.ring.Slots()
}

// Pool is a health-checked registry of replica clients that implements
// search.Searcher with consistent-hash routing and failover: each
// seeker's queries go to the replica owning it on the ring; when that
// replica is ejected (or an attempt fails with ErrUnavailable), the
// query walks the seeker's ring-successor order until a live replica
// answers, so a dead replica's seekers spill across the survivors.
//
// Membership is elastic: Admit registers a new replica outside the
// ring (it is probed and receives stamped fan-out, pinning the
// replication log's truncation barrier, but serves no reads), Activate
// splices its slot into the ring once it is bootstrapped and warm, and
// Retire removes a slot from every plane. Each change publishes a new
// immutable topology under the next epoch; in-flight queries keep the
// view they loaded.
type Pool struct {
	topo atomic.Pointer[topology]
	cfg  PoolConfig

	// adminMu serializes membership changes (Admit/Activate/Retire) and
	// hook installation; the read path never takes it.
	adminMu     sync.Mutex
	ejectHook   func(replica int)
	readmitHook func(replica int)
	rejoinGate  func(replica int) error

	// lagEject, when set, is consulted on every successful probe of a
	// live replica with its self-reported cursor; true ejects it (see
	// SetLagEjector). Atomic because the prober is already running when
	// UseQuorum installs it.
	lagEject atomic.Pointer[func(replica int, cursor uint64) bool]

	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

var _ search.Searcher = (*Pool)(nil)

// NewPool builds a pool over the clients (≥ 1) and starts the health
// prober. Close stops it.
func NewPool(clients []*Client, cfg PoolConfig) (*Pool, error) {
	if len(clients) == 0 {
		return nil, errors.New("fleet: pool needs >= 1 replica")
	}
	for i, c := range clients {
		if c == nil {
			return nil, fmt.Errorf("fleet: nil replica client %d", i)
		}
	}
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = DefaultHealthInterval
	}
	if cfg.HealthTimeout == 0 {
		cfg.HealthTimeout = DefaultHealthTimeout
	}
	if cfg.FailAfter == 0 {
		cfg.FailAfter = DefaultFailAfter
	}
	if cfg.ReviveAfter == 0 {
		cfg.ReviveAfter = DefaultReviveAfter
	}
	if cfg.FailAfter < 0 || cfg.ReviveAfter < 0 || cfg.HealthTimeout < 0 {
		return nil, errors.New("fleet: negative pool config value")
	}
	ring, err := shard.NewRing(len(clients), cfg.VirtualNodes)
	if err != nil {
		return nil, err
	}
	t := &topology{
		epoch:   1,
		ring:    ring,
		clients: append([]*Client(nil), clients...),
		states:  make([]*replicaState, len(clients)),
		inRing:  make([]bool, len(clients)),
		retired: make([]bool, len(clients)),
	}
	for i, c := range clients {
		t.states[i] = &replicaState{
			live:        true,
			failAfter:   cfg.FailAfter,
			reviveAfter: cfg.ReviveAfter,
			counters:    c.Counters(),
		}
		t.inRing[i] = true
	}
	p := &Pool{cfg: cfg, stop: make(chan struct{})}
	p.topo.Store(t)
	if cfg.HealthInterval > 0 {
		p.wg.Add(1)
		go p.probeLoop()
	}
	return p, nil
}

// view returns the current topology (never nil).
func (p *Pool) view() *topology { return p.topo.Load() }

// state returns slot i's health state.
func (p *Pool) state(i int) *replicaState { return p.view().states[i] }

// Epoch returns the current topology epoch. It advances on every
// membership or ring change; two equal epochs observed around a
// routing decision certify the decision used a single consistent view.
func (p *Pool) Epoch() uint64 { return p.view().epoch }

// InRing reports whether slot i currently participates in read routing.
func (p *Pool) InRing(i int) bool {
	t := p.view()
	return i < len(t.inRing) && t.inRing[i]
}

// Retired reports whether slot i has been permanently removed.
func (p *Pool) Retired(i int) bool {
	t := p.view()
	return i < len(t.retired) && t.retired[i]
}

// applyHooksLocked wires the registered hooks into one state. Callers
// hold adminMu.
func (p *Pool) applyHooksLocked(slot int, st *replicaState) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if p.ejectHook != nil {
		hook := p.ejectHook
		st.onEject = func() { hook(slot) }
	}
	if p.readmitHook != nil {
		hook := p.readmitHook
		st.onReadmit = func() { hook(slot) }
	}
	if p.rejoinGate != nil {
		gate := p.rejoinGate
		st.gate = func() { st.finishGate(gate(slot)) }
	}
}

// OnEject registers a hook called (once per transition, with the
// replica slot) whenever a replica is ejected. The Broadcaster uses it
// to mark the replica as having missed invalidation traffic. Applies
// to current members and everyone admitted later.
func (p *Pool) OnEject(hook func(replica int)) {
	p.adminMu.Lock()
	defer p.adminMu.Unlock()
	p.ejectHook = hook
	for i, st := range p.view().states {
		p.applyHooksLocked(i, st)
	}
}

// OnReadmit registers a hook called (in a goroutine, once per
// transition) whenever a replica is readmitted without a rejoin gate.
// The Frontend uses it to fire the escalated invalidation immediately
// on the eject→live transition — in a write-quiet fleet the next
// broadcast flush may never come, and a stale cache must not outlive
// the readmission.
func (p *Pool) OnReadmit(hook func(replica int)) {
	p.adminMu.Lock()
	defer p.adminMu.Unlock()
	p.readmitHook = hook
	for i, st := range p.view().states {
		p.applyHooksLocked(i, st)
	}
}

// SetRejoinGate configures catch-up-gated readmission: a
// probed-healthy ejected replica stays out of the ring until gate
// (the Frontend's replication log catch-up) returns nil. At most one
// gate run per replica is in flight; a failed run leaves the replica
// out, the error in LastError, and the next successful probe retries.
// Configure before serving traffic; applies to later admissions too.
func (p *Pool) SetRejoinGate(gate func(replica int) error) {
	p.adminMu.Lock()
	defer p.adminMu.Unlock()
	p.rejoinGate = gate
	for i, st := range p.view().states {
		p.applyHooksLocked(i, st)
	}
}

// Admit registers a new replica as the next slot, OUTSIDE the routing
// ring: it is probed for health, receives LSN-stamped fan-out (safe
// under the ordering rule), and its zero cursor pins the replication
// log's truncation barrier — exactly what a joiner bootstrapping from
// a snapshot needs — but it serves no reads and its gate is held until
// ReleaseGate. Returns the new slot index.
func (p *Pool) Admit(c *Client) (int, error) {
	if c == nil {
		return 0, errors.New("fleet: nil replica client")
	}
	p.adminMu.Lock()
	defer p.adminMu.Unlock()
	old := p.view()
	slot := len(old.clients)
	st := &replicaState{
		live:        false,
		holdGate:    true,
		failAfter:   p.cfg.FailAfter,
		reviveAfter: p.cfg.ReviveAfter,
		counters:    c.Counters(),
	}
	p.applyHooksLocked(slot, st)
	t := &topology{
		epoch:   old.epoch + 1,
		ring:    old.ring,
		clients: append(append([]*Client(nil), old.clients...), c),
		states:  append(append([]*replicaState(nil), old.states...), st),
		inRing:  append(append([]bool(nil), old.inRing...), false),
		retired: append(append([]bool(nil), old.retired...), false),
	}
	p.topo.Store(t)
	return slot, nil
}

// ReleaseGate ends slot i's post-admission bootstrap hold (snapshot
// imported): probe successes may now start the catch-up gate that
// flips it live.
func (p *Pool) ReleaseGate(i int) {
	p.view().states[i].releaseGate()
}

// Activate splices slot i into the routing ring under a new epoch. The
// member must be admitted and not retired; typically it is also live
// (bootstrapped, caught-up and pre-warmed) — activation is what flips
// read traffic onto it. Consistent hashing guarantees only the keys
// the new slot now owns change owner.
func (p *Pool) Activate(i int) error {
	p.adminMu.Lock()
	defer p.adminMu.Unlock()
	old := p.view()
	if i < 0 || i >= len(old.clients) {
		return fmt.Errorf("fleet: no replica slot %d", i)
	}
	if old.retired[i] {
		return fmt.Errorf("fleet: slot %d is retired", i)
	}
	if old.inRing[i] {
		return nil
	}
	slots := append(old.ring.Slots(), i)
	ring, err := shard.NewRingOf(slots, p.cfg.VirtualNodes)
	if err != nil {
		return err
	}
	t := &topology{
		epoch:   old.epoch + 1,
		ring:    ring,
		clients: old.clients,
		states:  old.states,
		inRing:  append([]bool(nil), old.inRing...),
		retired: old.retired,
	}
	t.inRing[i] = true
	p.topo.Store(t)
	return nil
}

// Retire removes slot i from every plane under a new epoch: read
// routing (its keys move to ring successors — and only its keys),
// mutation fan-out, health probing, and the truncation barrier.
// One-way; the last in-ring slot cannot be retired.
func (p *Pool) Retire(i int) error {
	p.adminMu.Lock()
	defer p.adminMu.Unlock()
	old := p.view()
	if i < 0 || i >= len(old.clients) {
		return fmt.Errorf("fleet: no replica slot %d", i)
	}
	if old.retired[i] {
		return nil
	}
	ring := old.ring
	if old.inRing[i] {
		slots := make([]int, 0, len(old.ring.Slots())-1)
		for _, s := range old.ring.Slots() {
			if s != i {
				slots = append(slots, s)
			}
		}
		if len(slots) == 0 {
			return errors.New("fleet: cannot retire the last in-ring replica")
		}
		var err error
		if ring, err = shard.NewRingOf(slots, p.cfg.VirtualNodes); err != nil {
			return err
		}
	}
	t := &topology{
		epoch:   old.epoch + 1,
		ring:    ring,
		clients: old.clients,
		states:  old.states,
		inRing:  append([]bool(nil), old.inRing...),
		retired: append([]bool(nil), old.retired...),
	}
	t.inRing[i] = false
	t.retired[i] = true
	p.topo.Store(t)
	old.states[i].retire()
	return nil
}

// Ring returns the current routing ring (resize planning: the
// orchestrator diffs the current ring against a candidate via
// shard.MovedKeys to find the minimal moved slice).
func (p *Pool) Ring() *shard.Ring { return p.view().ring }

// RingAdding returns the candidate ring that Activate(slot) would
// install — the current in-ring slots plus slot — without changing
// anything. The orchestrator diffs it against Ring() to find the
// minimal seeker slice the joiner must be pre-warmed with.
func (p *Pool) RingAdding(slot int) (*shard.Ring, error) {
	t := p.view()
	if t.ring.HasSlot(slot) {
		return t.ring, nil
	}
	return shard.NewRingOf(append(t.ring.Slots(), slot), p.cfg.VirtualNodes)
}

// RingRemoving returns the candidate ring that Retire(slot) would
// install — the current in-ring slots minus slot. The orchestrator
// diffs it against Ring() to find which successors inherit the
// retiree's seekers (and should be pre-warmed with them).
func (p *Pool) RingRemoving(slot int) (*shard.Ring, error) {
	t := p.view()
	if !t.ring.HasSlot(slot) {
		return t.ring, nil
	}
	slots := make([]int, 0, len(t.ring.Slots())-1)
	for _, s := range t.ring.Slots() {
		if s != slot {
			slots = append(slots, s)
		}
	}
	if len(slots) == 0 {
		return nil, errors.New("fleet: cannot remove the last in-ring replica")
	}
	return shard.NewRingOf(slots, p.cfg.VirtualNodes)
}

// noteApplied records replica i's replication cursor (from a mutation
// ack); monotonic.
func (p *Pool) noteApplied(i int, lsn uint64) {
	p.view().states[i].noteApplied(lsn)
}

// SetLagEjector configures divergence detection on the probe path: fn
// is called with each live replica's self-reported cursor, and a true
// return ejects the replica (catch-up then repairs and readmits it).
// The Frontend uses it to catch a replica that silently restarted or
// missed history while staying probe-healthy — the cursor lagging a
// head that already existed a full probe interval ago is divergence no
// in-flight write can explain. Configure before serving traffic.
func (p *Pool) SetLagEjector(fn func(replica int, cursor uint64) bool) {
	p.lagEject.Store(&fn)
}

// minApplied returns the minimum replication cursor across non-retired
// replicas — the fleet's truncation barrier input. A just-admitted
// joiner counts (its zero cursor pins the barrier through bootstrap);
// a retired replica never holds the log back.
func (p *Pool) minApplied() uint64 {
	t := p.view()
	min := ^uint64(0)
	for i, st := range t.states {
		if t.retired[i] {
			continue
		}
		st.mu.Lock()
		if st.appliedLSN < min {
			min = st.appliedLSN
		}
		st.mu.Unlock()
	}
	if min == ^uint64(0) {
		return 0
	}
	return min
}

// Close stops the health prober. Queries issued after Close still
// route, but health state freezes.
func (p *Pool) Close() {
	p.once.Do(func() { close(p.stop) })
	p.wg.Wait()
}

// Replicas returns the member count (every slot ever admitted,
// including retired ones — slot indices are stable).
func (p *Pool) Replicas() int { return len(p.view().clients) }

// Client returns replica i's client (stats, broadcaster wiring).
func (p *Pool) Client(i int) *Client { return p.view().clients[i] }

// Live reports whether replica i is currently in rotation.
func (p *Pool) Live(i int) bool { return p.view().states[i].isLive() }

// probeLoop sweeps /healthz on every replica each interval.
func (p *Pool) probeLoop() {
	defer p.wg.Done()
	ticker := time.NewTicker(p.cfg.HealthInterval)
	defer ticker.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-ticker.C:
			p.probeAll()
		}
	}
}

func (p *Pool) probeAll() {
	t := p.view()
	var wg sync.WaitGroup
	for i := range t.clients {
		if t.retired[i] {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), p.cfg.HealthTimeout)
			defer cancel()
			applied, err := t.clients[i].Healthz(ctx)
			st := t.states[i]
			st.mu.Lock()
			st.lastProbe = time.Now()
			st.mu.Unlock()
			if err != nil {
				st.fail(err)
			} else {
				st.setApplied(applied)
				if eject := p.lagEject.Load(); eject != nil && st.isLive() && (*eject)(i, applied) {
					st.eject(fmt.Errorf("fleet: replica cursor %d lags the replication log", applied))
				} else {
					st.ok()
				}
			}
		}(i)
	}
	wg.Wait()
}

// anyLive reports whether any non-retired member is live, under the
// given view.
func (t *topology) anyLive() bool {
	for i, st := range t.states {
		if t.retired[i] {
			continue
		}
		if st.isLive() {
			return true
		}
	}
	return false
}

func (p *Pool) anyLive() bool { return p.view().anyLive() }

// ReplicaFor returns the slot of the replica that owns a seeker when
// every replica is healthy.
func (p *Pool) ReplicaFor(seeker string) int {
	return p.view().ring.OwnerString(seeker)
}

// Do answers one request with failover: the seeker's preference order
// is walked, skipping ejected replicas while any replica is live, and
// every ErrUnavailable attempt both feeds the owner's health state and
// moves on. Non-transport errors (validation, unknown names) return
// immediately — no replica will answer those differently. A shed
// (search.ErrOverloaded) also returns immediately and does NOT feed
// health state: the replica is alive and protecting itself, and failing
// over would dump its load onto the ring successors — the caller backs
// off and retries the same route instead.
//
// The topology is loaded ONCE per request (the epoch fence): a resize
// publishing a new epoch mid-request never mixes two rings inside one
// routing decision.
func (p *Pool) Do(ctx context.Context, req search.Request) (search.Response, error) {
	ctx, sp := obs.StartSpan(ctx, "fleet.route")
	defer sp.End()
	sp.SetAttr("seeker", req.Seeker)
	t := p.view()
	sp.SetInt("epoch", int64(t.epoch))
	pref := t.ring.SuccessorsString(req.Seeker)
	anyLive := t.anyLive()
	var lastErr error
	for rank, idx := range pref {
		if anyLive && !t.states[idx].isLive() {
			continue
		}
		if err := ctx.Err(); err != nil {
			return search.Response{}, err
		}
		c := t.clients[idx]
		c.Counters().Request()
		if rank > 0 {
			c.Counters().Failover()
		}
		resp, err := c.Do(ctx, req)
		if err == nil {
			t.states[idx].ok()
			return resp, nil
		}
		if !errors.Is(err, search.ErrUnavailable) {
			return search.Response{}, err
		}
		c.Counters().Failure()
		t.states[idx].fail(err)
		lastErr = err
	}
	if lastErr == nil {
		lastErr = unavailablef("no live replica for seeker %q", req.Seeker)
	}
	return search.Response{}, lastErr
}

// DoBatch partitions the batch by each seeker's first live preference,
// runs the sub-batches concurrently, and re-routes entries that failed
// with ErrUnavailable to their next preference — up to one round per
// replica, so a replica dying mid-batch costs its entries one retry,
// not the whole batch. Entries a replica shed (search.ErrOverloaded)
// are returned as-is, never re-routed — see Do. The whole batch runs
// under one topology view (the epoch fence).
func (p *Pool) DoBatch(ctx context.Context, reqs []search.Request) []search.BatchResult {
	out := make([]search.BatchResult, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	ctx, sp := obs.StartSpan(ctx, "fleet.route")
	defer sp.End()
	sp.SetInt("queries", int64(len(reqs)))
	t := p.view()
	sp.SetInt("epoch", int64(t.epoch))
	// rank[i] is how far down request i's preference list routing has
	// walked; pending holds the requests still needing an answer.
	rank := make([]int, len(reqs))
	pending := make([]int, len(reqs))
	for i := range reqs {
		pending[i] = i
	}
	for round := 0; round <= len(t.clients) && len(pending) > 0; round++ {
		// A dead caller context makes every further attempt futile (and,
		// worse, would count against replica health): fail what is left.
		if err := ctx.Err(); err != nil {
			for _, i := range pending {
				out[i] = search.BatchResult{Err: err}
			}
			return out
		}
		anyLive := t.anyLive()
		subs := make(map[int][]int) // replica -> request indices
		var exhausted []int
		for _, i := range pending {
			pref := t.ring.SuccessorsString(reqs[i].Seeker)
			// Advance past ejected replicas (while any replica is live)
			// and past preferences already tried.
			idx := -1
			for rank[i] < len(pref) {
				cand := pref[rank[i]]
				if !anyLive || t.states[cand].isLive() {
					idx = cand
					break
				}
				rank[i]++
			}
			if idx < 0 {
				exhausted = append(exhausted, i)
				continue
			}
			subs[idx] = append(subs[idx], i)
		}
		for _, i := range exhausted {
			out[i] = search.BatchResult{Err: unavailablef("no live replica for seeker %q", reqs[i].Seeker)}
		}
		var wg sync.WaitGroup
		var mu sync.Mutex
		var retry []int
		for idx, members := range subs {
			wg.Add(1)
			go func(idx int, members []int) {
				defer wg.Done()
				c := t.clients[idx]
				sub := make([]search.Request, len(members))
				for j, i := range members {
					sub[j] = reqs[i]
					c.Counters().Request()
					if rank[i] > 0 {
						c.Counters().Failover()
					}
				}
				res := c.DoBatch(ctx, sub)
				var failed []int
				for j, br := range res {
					i := members[j]
					if br.Err != nil && errors.Is(br.Err, search.ErrUnavailable) {
						c.Counters().Failure()
						failed = append(failed, i)
						out[i] = br // kept if retries run out
						continue
					}
					out[i] = br
				}
				if len(failed) > 0 {
					t.states[idx].fail(out[failed[0]].Err)
				} else {
					t.states[idx].ok()
				}
				mu.Lock()
				for _, i := range failed {
					rank[i]++
					retry = append(retry, i)
				}
				mu.Unlock()
			}(idx, members)
		}
		wg.Wait()
		pending = retry
	}
	return out
}

// ReplicaStats is one replica's observable pool state.
type ReplicaStats struct {
	URL       string
	Live      bool
	LastError string `json:",omitempty"`
	// Slot is the member's stable slot index; InRing reports whether it
	// currently serves reads; Retired marks a permanently removed slot.
	Slot    int
	InRing  bool
	Retired bool `json:",omitempty"`
	// CatchingUp reports an in-flight rejoin gate run: the replica is
	// probed-healthy but held out of the ring until it has applied the
	// replication log through the head.
	CatchingUp bool
	// AppliedLSN is the replica's replication cursor as last observed
	// (mutation acks and health probes); ReplogLag is how many records
	// it trails the replication log head by (both 0 without a replog).
	AppliedLSN uint64
	ReplogLag  uint64
	Counters   metrics.ReplicaSnapshot
}

// Stats returns each member's health and counters, in slot order.
// ReplogLag is filled by the Frontend, which knows the log head.
func (p *Pool) Stats() []ReplicaStats {
	t := p.view()
	out := make([]ReplicaStats, len(t.clients))
	for i, c := range t.clients {
		st := t.states[i]
		st.mu.Lock()
		out[i] = ReplicaStats{
			URL:        c.URL(),
			Live:       st.live && !st.retired,
			LastError:  st.lastErr,
			Slot:       i,
			InRing:     t.inRing[i],
			Retired:    t.retired[i],
			CatchingUp: st.catchingUp,
			AppliedLSN: st.appliedLSN,
			Counters:   c.Counters().Snapshot(),
		}
		st.mu.Unlock()
	}
	return out
}
