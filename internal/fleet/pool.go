package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/search"
	"repro/internal/shard"
)

// Pool defaults, substituted for zero config fields.
const (
	DefaultHealthInterval = time.Second
	DefaultHealthTimeout  = 2 * time.Second
	DefaultFailAfter      = 3
	DefaultReviveAfter    = 2
)

// PoolConfig tunes the replica pool.
type PoolConfig struct {
	// HealthInterval is the period between /healthz sweeps
	// (0 = DefaultHealthInterval; negative disables the prober — tests
	// drive health transitions through query failures alone).
	HealthInterval time.Duration
	// HealthTimeout bounds one probe (0 = DefaultHealthTimeout).
	HealthTimeout time.Duration
	// FailAfter ejects a replica after this many consecutive failures —
	// probe failures and query transport failures both count
	// (0 = DefaultFailAfter).
	FailAfter int
	// ReviveAfter re-admits an ejected replica after this many
	// consecutive successful probes (0 = DefaultReviveAfter).
	ReviveAfter int
	// VirtualNodes configures the routing ring (0 = ring default).
	VirtualNodes int
}

// replicaState is the health bookkeeping for one replica. The mutex
// serializes the consecutive-outcome counters; the live flag is read on
// every query, so it lives behind the same lock but is cached by
// preference walks that tolerate slight staleness.
type replicaState struct {
	mu          sync.Mutex
	live        bool
	consecFails int
	consecOKs   int
	lastErr     string
	lastProbe   time.Time
	onEject     func() // notified once per ejection (broadcaster hook)
	onReadmit   func() // notified (in a goroutine) once per ungated eject→live transition
	gate        func() // when set, readmission runs the rejoin gate instead of flipping live
	catchingUp  bool   // a rejoin gate run is in flight
	appliedLSN  uint64 // replica's replication cursor, from acks and probes
	failAfter   int
	reviveAfter int
	counters    *metrics.ReplicaCounters
}

func (r *replicaState) isLive() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.live
}

// admissible reports whether the replica should receive forwarded
// mutations: live, or mid-rejoin (a catching-up replica is reachable
// and the LSN ordering rule makes direct fan-out to it safe — it either
// applies the record cleanly or defers it to the catch-up stream).
func (r *replicaState) admissible() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.live || r.catchingUp
}

// noteApplied advances the tracked replication cursor (monotonic —
// mutation acks can only move it forward).
func (r *replicaState) noteApplied(lsn uint64) {
	r.mu.Lock()
	if lsn > r.appliedLSN {
		r.appliedLSN = lsn
	}
	r.mu.Unlock()
}

// setApplied overwrites the tracked cursor with the replica's
// self-reported value (health probes). NOT monotonic on purpose: a
// restarted replica reports 0, and the truncation barrier must observe
// the reset or it would reclaim exactly the records the replica now
// needs. A transiently stale probe value only lowers the barrier —
// retaining more log than necessary, never less.
func (r *replicaState) setApplied(lsn uint64) {
	r.mu.Lock()
	r.appliedLSN = lsn
	r.mu.Unlock()
}

// fail records one failure (probe or query) and reports whether the
// replica just transitioned to ejected.
func (r *replicaState) fail(err error) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.consecOKs = 0
	r.consecFails++
	if err != nil {
		r.lastErr = err.Error()
	}
	if r.live && r.consecFails >= r.failAfter {
		r.live = false
		r.counters.Ejection()
		if r.onEject != nil {
			r.onEject()
		}
		return true
	}
	return false
}

// eject forces the replica out of rotation immediately, bypassing the
// FailAfter threshold. The replication write path uses it on KNOWN
// divergence — a live replica that missed (or gap-rejected) a stamped
// mutation is not "maybe flaky", it is provably behind, and it must
// not serve another query until catch-up repairs it. FailAfter remains
// the threshold for ambiguous evidence (probe failures, query
// transport errors).
func (r *replicaState) eject(err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.consecOKs = 0
	if err != nil {
		r.lastErr = err.Error()
	}
	if r.live {
		r.live = false
		r.counters.Ejection()
		if r.onEject != nil {
			r.onEject()
		}
	}
}

// ok records one success (probe or query) and reports whether the
// replica just transitioned back to live. With a rejoin gate
// configured, probe successes alone never readmit: eligibility starts
// (at most) one gate run, and only its successful completion — the
// replica has streamed and applied the replication log through the
// head — flips live (see finishGate).
func (r *replicaState) ok() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.consecFails = 0
	r.consecOKs++
	// A probe success on a gated, still-ejected replica must not erase
	// the last catch-up failure: that error is the operator's only clue
	// why the replica is healthy yet out of the ring.
	if r.live || r.gate == nil {
		r.lastErr = ""
	}
	if !r.live && r.consecOKs >= r.reviveAfter {
		if r.gate != nil {
			if !r.catchingUp {
				r.catchingUp = true
				go r.gate()
			}
			return false
		}
		r.live = true
		r.counters.Readmission()
		if r.onReadmit != nil {
			go r.onReadmit()
		}
		return true
	}
	return false
}

// finishGate completes a rejoin gate run: on success the replica goes
// live (the only way live flips true while a gate is configured); on
// failure it stays out with the error observable, and the next probe
// success starts another attempt.
func (r *replicaState) finishGate(err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.catchingUp = false
	if err != nil {
		r.lastErr = "catch-up: " + err.Error()
		return
	}
	r.lastErr = ""
	if !r.live {
		r.live = true
		r.counters.Readmission()
	}
}

// Pool is a health-checked registry of replica clients that implements
// search.Searcher with consistent-hash routing and failover: each
// seeker's queries go to the replica owning it on the ring; when that
// replica is ejected (or an attempt fails with ErrUnavailable), the
// query walks the seeker's ring-successor order until a live replica
// answers, so a dead replica's seekers spill across the survivors.
type Pool struct {
	clients []*Client
	states  []*replicaState
	ring    *shard.Ring
	cfg     PoolConfig

	// lagEject, when set, is consulted on every successful probe of a
	// live replica with its self-reported cursor; true ejects it (see
	// SetLagEjector). Atomic because the prober is already running when
	// UseQuorum installs it.
	lagEject atomic.Pointer[func(replica int, cursor uint64) bool]

	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

var _ search.Searcher = (*Pool)(nil)

// NewPool builds a pool over the clients (≥ 1) and starts the health
// prober. Close stops it.
func NewPool(clients []*Client, cfg PoolConfig) (*Pool, error) {
	if len(clients) == 0 {
		return nil, errors.New("fleet: pool needs >= 1 replica")
	}
	for i, c := range clients {
		if c == nil {
			return nil, fmt.Errorf("fleet: nil replica client %d", i)
		}
	}
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = DefaultHealthInterval
	}
	if cfg.HealthTimeout == 0 {
		cfg.HealthTimeout = DefaultHealthTimeout
	}
	if cfg.FailAfter == 0 {
		cfg.FailAfter = DefaultFailAfter
	}
	if cfg.ReviveAfter == 0 {
		cfg.ReviveAfter = DefaultReviveAfter
	}
	if cfg.FailAfter < 0 || cfg.ReviveAfter < 0 || cfg.HealthTimeout < 0 {
		return nil, errors.New("fleet: negative pool config value")
	}
	ring, err := shard.NewRing(len(clients), cfg.VirtualNodes)
	if err != nil {
		return nil, err
	}
	p := &Pool{
		clients: clients,
		states:  make([]*replicaState, len(clients)),
		ring:    ring,
		cfg:     cfg,
		stop:    make(chan struct{}),
	}
	for i, c := range clients {
		p.states[i] = &replicaState{
			live:        true,
			failAfter:   cfg.FailAfter,
			reviveAfter: cfg.ReviveAfter,
			counters:    c.Counters(),
		}
	}
	if cfg.HealthInterval > 0 {
		p.wg.Add(1)
		go p.probeLoop()
	}
	return p, nil
}

// OnEject registers a hook called (once per transition, with the
// replica index) whenever a replica is ejected. The Broadcaster uses it
// to mark the replica as having missed invalidation traffic.
func (p *Pool) OnEject(hook func(replica int)) {
	for i, st := range p.states {
		i := i
		st.mu.Lock()
		st.onEject = func() { hook(i) }
		st.mu.Unlock()
	}
}

// OnReadmit registers a hook called (in a goroutine, once per
// transition) whenever a replica is readmitted without a rejoin gate.
// The Frontend uses it to fire the escalated invalidation immediately
// on the eject→live transition — in a write-quiet fleet the next
// broadcast flush may never come, and a stale cache must not outlive
// the readmission.
func (p *Pool) OnReadmit(hook func(replica int)) {
	for i, st := range p.states {
		i := i
		st.mu.Lock()
		st.onReadmit = func() { hook(i) }
		st.mu.Unlock()
	}
}

// SetRejoinGate configures catch-up-gated readmission: a
// probed-healthy ejected replica stays out of the ring until gate
// (the Frontend's replication log catch-up) returns nil. At most one
// gate run per replica is in flight; a failed run leaves the replica
// out, the error in LastError, and the next successful probe retries.
// Configure before serving traffic.
func (p *Pool) SetRejoinGate(gate func(replica int) error) {
	for i, st := range p.states {
		i, st := i, st
		st.mu.Lock()
		st.gate = func() { st.finishGate(gate(i)) }
		st.mu.Unlock()
	}
}

// noteApplied records replica i's replication cursor (from a mutation
// ack); monotonic.
func (p *Pool) noteApplied(i int, lsn uint64) {
	p.states[i].noteApplied(lsn)
}

// SetLagEjector configures divergence detection on the probe path: fn
// is called with each live replica's self-reported cursor, and a true
// return ejects the replica (catch-up then repairs and readmits it).
// The Frontend uses it to catch a replica that silently restarted or
// missed history while staying probe-healthy — the cursor lagging a
// head that already existed a full probe interval ago is divergence no
// in-flight write can explain. Configure before serving traffic.
func (p *Pool) SetLagEjector(fn func(replica int, cursor uint64) bool) {
	p.lagEject.Store(&fn)
}

// minApplied returns the minimum replication cursor across replicas —
// the fleet's truncation barrier input.
func (p *Pool) minApplied() uint64 {
	min := ^uint64(0)
	for _, st := range p.states {
		st.mu.Lock()
		if st.appliedLSN < min {
			min = st.appliedLSN
		}
		st.mu.Unlock()
	}
	return min
}

// Close stops the health prober. Queries issued after Close still
// route, but health state freezes.
func (p *Pool) Close() {
	p.once.Do(func() { close(p.stop) })
	p.wg.Wait()
}

// Replicas returns the replica count.
func (p *Pool) Replicas() int { return len(p.clients) }

// Client returns replica i's client (stats, broadcaster wiring).
func (p *Pool) Client(i int) *Client { return p.clients[i] }

// Live reports whether replica i is currently in rotation.
func (p *Pool) Live(i int) bool { return p.states[i].isLive() }

// probeLoop sweeps /healthz on every replica each interval.
func (p *Pool) probeLoop() {
	defer p.wg.Done()
	ticker := time.NewTicker(p.cfg.HealthInterval)
	defer ticker.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-ticker.C:
			p.probeAll()
		}
	}
}

func (p *Pool) probeAll() {
	var wg sync.WaitGroup
	for i := range p.clients {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), p.cfg.HealthTimeout)
			defer cancel()
			applied, err := p.clients[i].Healthz(ctx)
			st := p.states[i]
			st.mu.Lock()
			st.lastProbe = time.Now()
			st.mu.Unlock()
			if err != nil {
				st.fail(err)
			} else {
				st.setApplied(applied)
				if eject := p.lagEject.Load(); eject != nil && st.isLive() && (*eject)(i, applied) {
					st.eject(fmt.Errorf("fleet: replica cursor %d lags the replication log", applied))
				} else {
					st.ok()
				}
			}
		}(i)
	}
	wg.Wait()
}

// preference returns the seeker's replica order: the ring owner first,
// then ring successors. Failover walks it left to right.
func (p *Pool) preference(seeker string) []int {
	return p.ring.SuccessorsString(seeker)
}

// ReplicaFor returns the index of the replica that owns a seeker when
// every replica is healthy.
func (p *Pool) ReplicaFor(seeker string) int {
	return p.ring.OwnerString(seeker)
}

// Do answers one request with failover: the seeker's preference order
// is walked, skipping ejected replicas while any replica is live, and
// every ErrUnavailable attempt both feeds the owner's health state and
// moves on. Non-transport errors (validation, unknown names) return
// immediately — no replica will answer those differently. A shed
// (search.ErrOverloaded) also returns immediately and does NOT feed
// health state: the replica is alive and protecting itself, and failing
// over would dump its load onto the ring successors — the caller backs
// off and retries the same route instead.
func (p *Pool) Do(ctx context.Context, req search.Request) (search.Response, error) {
	ctx, sp := obs.StartSpan(ctx, "fleet.route")
	defer sp.End()
	sp.SetAttr("seeker", req.Seeker)
	pref := p.preference(req.Seeker)
	anyLive := p.anyLive()
	var lastErr error
	for rank, idx := range pref {
		if anyLive && !p.states[idx].isLive() {
			continue
		}
		if err := ctx.Err(); err != nil {
			return search.Response{}, err
		}
		c := p.clients[idx]
		c.Counters().Request()
		if rank > 0 {
			c.Counters().Failover()
		}
		resp, err := c.Do(ctx, req)
		if err == nil {
			p.states[idx].ok()
			return resp, nil
		}
		if !errors.Is(err, search.ErrUnavailable) {
			return search.Response{}, err
		}
		c.Counters().Failure()
		p.states[idx].fail(err)
		lastErr = err
	}
	if lastErr == nil {
		lastErr = unavailablef("no live replica for seeker %q", req.Seeker)
	}
	return search.Response{}, lastErr
}

func (p *Pool) anyLive() bool {
	for _, st := range p.states {
		if st.isLive() {
			return true
		}
	}
	return false
}

// DoBatch partitions the batch by each seeker's first live preference,
// runs the sub-batches concurrently, and re-routes entries that failed
// with ErrUnavailable to their next preference — up to one round per
// replica, so a replica dying mid-batch costs its entries one retry,
// not the whole batch. Entries a replica shed (search.ErrOverloaded)
// are returned as-is, never re-routed — see Do.
func (p *Pool) DoBatch(ctx context.Context, reqs []search.Request) []search.BatchResult {
	out := make([]search.BatchResult, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	ctx, sp := obs.StartSpan(ctx, "fleet.route")
	defer sp.End()
	sp.SetInt("queries", int64(len(reqs)))
	// rank[i] is how far down request i's preference list routing has
	// walked; pending holds the requests still needing an answer.
	rank := make([]int, len(reqs))
	pending := make([]int, len(reqs))
	for i := range reqs {
		pending[i] = i
	}
	for round := 0; round <= len(p.clients) && len(pending) > 0; round++ {
		// A dead caller context makes every further attempt futile (and,
		// worse, would count against replica health): fail what is left.
		if err := ctx.Err(); err != nil {
			for _, i := range pending {
				out[i] = search.BatchResult{Err: err}
			}
			return out
		}
		anyLive := p.anyLive()
		subs := make(map[int][]int) // replica -> request indices
		var exhausted []int
		for _, i := range pending {
			pref := p.preference(reqs[i].Seeker)
			// Advance past ejected replicas (while any replica is live)
			// and past preferences already tried.
			idx := -1
			for rank[i] < len(pref) {
				cand := pref[rank[i]]
				if !anyLive || p.states[cand].isLive() {
					idx = cand
					break
				}
				rank[i]++
			}
			if idx < 0 {
				exhausted = append(exhausted, i)
				continue
			}
			subs[idx] = append(subs[idx], i)
		}
		for _, i := range exhausted {
			out[i] = search.BatchResult{Err: unavailablef("no live replica for seeker %q", reqs[i].Seeker)}
		}
		var wg sync.WaitGroup
		var mu sync.Mutex
		var retry []int
		for idx, members := range subs {
			wg.Add(1)
			go func(idx int, members []int) {
				defer wg.Done()
				c := p.clients[idx]
				sub := make([]search.Request, len(members))
				for j, i := range members {
					sub[j] = reqs[i]
					c.Counters().Request()
					if rank[i] > 0 {
						c.Counters().Failover()
					}
				}
				res := c.DoBatch(ctx, sub)
				var failed []int
				for j, br := range res {
					i := members[j]
					if br.Err != nil && errors.Is(br.Err, search.ErrUnavailable) {
						c.Counters().Failure()
						failed = append(failed, i)
						out[i] = br // kept if retries run out
						continue
					}
					out[i] = br
				}
				if len(failed) > 0 {
					p.states[idx].fail(out[failed[0]].Err)
				} else {
					p.states[idx].ok()
				}
				mu.Lock()
				for _, i := range failed {
					rank[i]++
					retry = append(retry, i)
				}
				mu.Unlock()
			}(idx, members)
		}
		wg.Wait()
		pending = retry
	}
	return out
}

// ReplicaStats is one replica's observable pool state.
type ReplicaStats struct {
	URL       string
	Live      bool
	LastError string `json:",omitempty"`
	// CatchingUp reports an in-flight rejoin gate run: the replica is
	// probed-healthy but held out of the ring until it has applied the
	// replication log through the head.
	CatchingUp bool
	// AppliedLSN is the replica's replication cursor as last observed
	// (mutation acks and health probes); ReplogLag is how many records
	// it trails the replication log head by (both 0 without a replog).
	AppliedLSN uint64
	ReplogLag  uint64
	Counters   metrics.ReplicaSnapshot
}

// Stats returns each replica's health and counters, in registry order.
// ReplogLag is filled by the Frontend, which knows the log head.
func (p *Pool) Stats() []ReplicaStats {
	out := make([]ReplicaStats, len(p.clients))
	for i, c := range p.clients {
		st := p.states[i]
		st.mu.Lock()
		out[i] = ReplicaStats{
			URL:        c.URL(),
			Live:       st.live,
			LastError:  st.lastErr,
			CatchingUp: st.catchingUp,
			AppliedLSN: st.appliedLSN,
			Counters:   c.Counters().Snapshot(),
		}
		st.mu.Unlock()
	}
	return out
}
