package fleet

import (
	"errors"
	"fmt"

	"repro/internal/durable"
	"repro/internal/server"
	"repro/internal/wal"
)

// RepLog is the fleet's replication log: an LSN-stamped durable record
// of every mutation the front-end accepted, appended *before* the
// fan-out to replicas. It is the source a rejoining replica catches up
// from — the record of exactly the history an ejected replica missed —
// and reuses internal/wal's segmented CRC-protected format and
// internal/durable's record codec, so one framing and one payload
// encoding serve both single-process crash-safety and fleet
// replication.
//
// The log is opened with wal.SyncAlways: a front-end crash must never
// lose a record that was fanned out, or a restarted front-end would
// reissue its LSN for a different mutation and replicas would
// dedup-skip the new write. Reclamation is governed by the truncation
// barrier (SetBarrier at the fleet's minimum applied LSN + 1): sealed
// segments every replica has applied are removable, while the suffix
// any replica still needs is pinned — which also means a long-dead
// replica pins the log until it is removed from the fleet or the
// front-end restarts with a fresh replica set.
type RepLog struct {
	log *wal.Log
}

// OpenRepLog opens (creating if necessary) the replication log in dir.
func OpenRepLog(dir string) (*RepLog, error) {
	l, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		return nil, fmt.Errorf("fleet: opening replication log: %w", err)
	}
	return &RepLog{log: l}, nil
}

// Close syncs and closes the log.
func (r *RepLog) Close() error { return r.log.Close() }

// Head returns the LSN of the last appended record (0 for an empty log).
func (r *RepLog) Head() uint64 { return r.log.NextLSN() - 1 }

// Segments returns the number of live segment files.
func (r *RepLog) Segments() int { return r.log.Segments() }

// Barrier returns the current truncation barrier (0 = none).
func (r *RepLog) Barrier() uint64 { return r.log.Barrier() }

// AppendBefriend durably appends one friendship mutation and returns
// its LSN.
func (r *RepLog) AppendBefriend(a, b string, weight float64) (uint64, error) {
	return r.log.Append(durable.RecBefriend, durable.EncodeBefriend(a, b, weight))
}

// AppendTag durably appends one tagging mutation and returns its LSN.
func (r *RepLog) AppendTag(user, item, tag string) (uint64, error) {
	return r.log.Append(durable.RecTag, durable.EncodeTag(user, item, tag))
}

// ReadFrom streams records with LSN ≥ from through fn, up to the head
// captured at call time (returned). Damage anywhere in the
// acknowledged range — including an externally torn tail — fails with
// wal.ErrCorrupt instead of surfacing a torn prefix; catch-up treats
// that as a clean retryable error.
func (r *RepLog) ReadFrom(from uint64, fn func(wal.Record) error) (uint64, error) {
	return r.log.ReadFrom(from, fn)
}

// SetBarrier pins records with LSN ≥ lsn against truncation.
func (r *RepLog) SetBarrier(lsn uint64) { r.log.SetBarrier(lsn) }

// TruncateThrough reclaims sealed segments wholly at or below lsn,
// capped by the barrier.
func (r *RepLog) TruncateThrough(lsn uint64) error { return r.log.TruncateThrough(lsn) }

// Page reads one /v2/replog page: up to max records from LSN from.
func (r *RepLog) Page(from uint64, max int) (server.ReplogPage, error) {
	page := server.ReplogPage{From: from}
	head, err := r.ReadFrom(from, func(rec wal.Record) error {
		if len(page.Records) >= max {
			return errPageFull
		}
		page.Records = append(page.Records, server.ReplogRecord{
			LSN:  rec.LSN,
			Type: uint8(rec.Type),
			Data: append([]byte(nil), rec.Data...),
		})
		return nil
	})
	if err != nil && !errors.Is(err, errPageFull) {
		return server.ReplogPage{}, err
	}
	page.Head = head
	return page, nil
}

// errPageFull halts a Page read once max records are collected.
var errPageFull = errors.New("fleet: replog page full")
