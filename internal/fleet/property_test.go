package fleet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/search"
	"repro/internal/social"
)

// TestFleetMatchesSingleProcess is the fleet's acceptance property: a
// 3-replica fleet fed a random mutation stream through the front-end
// answers mode=exact queries bit-identically to one in-process service
// fed the same stream — including right after a batched Befriend
// invalidation broadcast — and killing a replica mid-stream loses no
// queries: they fail over and still match.
func TestFleetMatchesSingleProcess(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ctx := context.Background()

	// Reference: one in-process service. Its compaction cadence differs
	// from the fleet's (that is the point of batching), so answers are
	// compared at quiesce points where both sides have folded
	// everything in.
	ref, err := social.NewService(social.DefaultServiceConfig())
	if err != nil {
		t.Fatal(err)
	}

	// Fleet: 3 replicas in broadcast-heartbeat posture behind the real
	// HTTP server, one front-end.
	const nReplicas = 3
	var servers []*httptest.Server
	var clients []*Client
	for i := 0; i < nReplicas; i++ {
		_, ts := newReplica(t)
		servers = append(servers, ts)
		clients = append(clients, newTestClient(t, ts.URL, ClientConfig{}))
	}
	pool, err := NewPool(clients, PoolConfig{HealthInterval: 20 * time.Millisecond, FailAfter: 1})
	if err != nil {
		t.Fatal(err)
	}
	bcast := NewBroadcaster(clients, BroadcasterConfig{Window: 2 * time.Millisecond})
	front, err := NewFrontend(pool, bcast)
	if err != nil {
		t.Fatal(err)
	}
	defer front.Close()

	const nUsers, nItems, nTags = 24, 30, 5
	user := func(i int) string { return fmt.Sprintf("u%d", i) }
	befriend := func(a, b string, w float64) {
		t.Helper()
		if err := ref.Befriend(a, b, w); err != nil {
			t.Fatal(err)
		}
		if err := front.Befriend(a, b, w); err != nil {
			t.Fatal(err)
		}
	}
	tag := func(u, i, tg string) {
		t.Helper()
		if err := ref.Tag(u, i, tg); err != nil {
			t.Fatal(err)
		}
		if err := front.Tag(u, i, tg); err != nil {
			t.Fatal(err)
		}
	}
	mutate := func() {
		if rng.Intn(2) == 0 {
			a := rng.Intn(nUsers)
			b := (a + 1 + rng.Intn(nUsers-1)) % nUsers // never a self-edge
			befriend(user(a), user(b), 0.1+0.9*rng.Float64())
		} else {
			tag(user(rng.Intn(nUsers)), fmt.Sprintf("i%d", rng.Intn(nItems)), fmt.Sprintf("t%d", rng.Intn(nTags)))
		}
	}

	// quiesce folds everything on both sides: the reference compacts
	// locally, the fleet broadcasts pending dirty edges (which compacts
	// every replica).
	quiesce := func() {
		t.Helper()
		if err := ref.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := front.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	// compare checks every seeker × tag bit-identically (float64
	// equality: scores survive the JSON round trip exactly, and both
	// sides run the same engine over the same compacted state).
	compare := func(phase string) {
		t.Helper()
		for u := 0; u < nUsers; u++ {
			for tg := 0; tg < nTags; tg++ {
				req := search.Request{Seeker: user(u), Tags: []string{fmt.Sprintf("t%d", tg)}, K: 8, Mode: search.ModeExact}
				want, werr := ref.Do(ctx, req)
				got, gerr := front.Do(ctx, req)
				if (werr == nil) != (gerr == nil) {
					t.Fatalf("%s: seeker %s tag t%d: ref err %v, fleet err %v", phase, user(u), tg, werr, gerr)
				}
				if werr != nil {
					continue // both reject (unknown tag/seeker) — parity holds
				}
				if len(want.Results) != len(got.Results) {
					t.Fatalf("%s: seeker %s tag t%d: %d vs %d results", phase, user(u), tg, len(want.Results), len(got.Results))
				}
				for i := range want.Results {
					if want.Results[i] != got.Results[i] {
						t.Fatalf("%s: seeker %s tag t%d result %d: ref %+v, fleet %+v",
							phase, user(u), tg, i, want.Results[i], got.Results[i])
					}
				}
			}
		}
	}

	// Phase 1: seed corpus, quiesce, compare.
	for i := 0; i < nUsers; i++ {
		befriend(user(i), user((i+1)%nUsers), 0.5+0.4*rng.Float64())
	}
	for i := 0; i < 60; i++ {
		mutate()
	}
	quiesce()
	compare("seeded")

	// Phase 2: churn — the broadcast path must keep replica caches
	// consistent across many batched invalidations. Queries interleave
	// with writes to keep replica caches populated (and therefore
	// falsifiable: a missed invalidation would surface as a stale
	// horizon at the next compare).
	for round := 0; round < 5; round++ {
		for i := 0; i < 20; i++ {
			mutate()
			if i%4 == 0 {
				req := search.Request{Seeker: user(rng.Intn(nUsers)), Tags: []string{fmt.Sprintf("t%d", rng.Intn(nTags))}, K: 8, Mode: search.ModeExact}
				if _, err := front.Do(ctx, req); err != nil && !errors.Is(err, search.ErrInvalid) {
					t.Fatalf("churn query: %v", err)
				}
			}
		}
		quiesce()
		compare(fmt.Sprintf("churn round %d", round))
	}

	// Phase 3: kill one replica mid-stream. Every query must keep
	// succeeding (failing over), writes keep applying to the
	// survivors, and answers still match the reference.
	dead := pool.ReplicaFor(user(0))
	servers[dead].Close()
	for i := 0; i < 30; i++ {
		mutate()
		req := search.Request{Seeker: user(rng.Intn(nUsers)), Tags: []string{fmt.Sprintf("t%d", rng.Intn(nTags))}, K: 8, Mode: search.ModeExact}
		if _, err := front.Do(ctx, req); err != nil && !errors.Is(err, search.ErrInvalid) {
			t.Fatalf("query %d after replica kill: %v", i, err)
		}
	}
	quiesce()
	compare("after replica kill")

	// The ejection is observable in stats, and the dead replica's
	// broadcast misses were recorded.
	stats := front.StatsAny().(Stats)
	if stats.Replicas[dead].Live {
		t.Fatal("killed replica still live in stats")
	}
	if stats.Replicas[dead].Counters.Ejections < 1 {
		t.Fatalf("killed replica stats = %+v, want >=1 ejection", stats.Replicas[dead])
	}
	if stats.Broadcast.Counters.Failures < 1 {
		t.Fatalf("broadcast stats = %+v, want recorded failures for the dead replica", stats.Broadcast)
	}
	// A batch fans out across survivors and still answers everything.
	var reqs []search.Request
	for u := 0; u < nUsers; u++ {
		reqs = append(reqs, search.Request{Seeker: user(u), Tags: []string{"t0"}, K: 8, Mode: search.ModeExact})
	}
	for i, br := range front.DoBatch(ctx, reqs) {
		if br.Err != nil && !errors.Is(br.Err, search.ErrInvalid) {
			t.Fatalf("batch[%d] after replica kill: %v", i, br.Err)
		}
	}
}

// TestFleetReadmissionServesFreshData is the replication log's
// acceptance property, and the reproduction of the PR 4 correctness
// hole: eject a replica, keep mutating through the front-end, readmit
// it, and demand the READMITTED REPLICA ITSELF — queried directly over
// the wire, not through failover — answers every mode=exact query
// bit-identically to an in-process reference fed the same stream.
// Without the WAL-backed catch-up gate, the prober readmits the replica
// on probe successes alone and this test fails on the first seeker
// whose proximity the missed mutations changed; with it, readmission
// waits for the replica to stream and apply the records it missed, so
// the fleet is bit-identical again the moment the replica is back.
func TestFleetReadmissionServesFreshData(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	ctx := context.Background()

	ref, err := social.NewService(social.DefaultServiceConfig())
	if err != nil {
		t.Fatal(err)
	}
	front, pool, reps, clients := newCatchupFleet(t, 3, t.TempDir())

	const nUsers, nItems, nTags = 20, 24, 4
	user := func(i int) string { return fmt.Sprintf("u%d", i) }
	mutate := func() {
		t.Helper()
		if rng.Intn(2) == 0 {
			a := rng.Intn(nUsers)
			b := (a + 1 + rng.Intn(nUsers-1)) % nUsers
			w := 0.1 + 0.9*rng.Float64()
			if err := ref.Befriend(user(a), user(b), w); err != nil {
				t.Fatal(err)
			}
			if err := front.Befriend(user(a), user(b), w); err != nil {
				t.Fatalf("front befriend: %v; stats: %+v", err, front.StatsAny())
			}
		} else {
			u, it, tg := user(rng.Intn(nUsers)), fmt.Sprintf("i%d", rng.Intn(nItems)), fmt.Sprintf("t%d", rng.Intn(nTags))
			if err := ref.Tag(u, it, tg); err != nil {
				t.Fatal(err)
			}
			if err := front.Tag(u, it, tg); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Seed, quiesce, and warm the victim's seeker cache with queries —
	// so a missed invalidation would be falsifiable too.
	for i := 0; i < nUsers; i++ {
		if err := ref.Befriend(user(i), user((i+1)%nUsers), 0.6); err != nil {
			t.Fatal(err)
		}
		if err := front.Befriend(user(i), user((i+1)%nUsers), 0.6); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		mutate()
	}
	if err := ref.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := front.Flush(); err != nil {
		t.Fatal(err)
	}
	victim := pool.ReplicaFor(user(0))
	for u := 0; u < nUsers; u++ {
		req := search.Request{Seeker: user(u), Tags: []string{"t0"}, K: 8, Mode: search.ModeExact}
		if _, err := clients[victim].Do(ctx, req); err != nil && !errors.Is(err, search.ErrInvalid) {
			t.Fatalf("cache warm query u%d: %v", u, err)
		}
	}

	// Eject the victim and keep mutating: these are exactly the
	// mutations the PR 4 fleet silently lost on readmission.
	reps[victim].down.Store(true)
	waitFor(t, 5*time.Second, func() bool { return !pool.Live(victim) })
	for i := 0; i < 40; i++ {
		mutate()
	}

	// Readmit. The pool must gate on catch-up: when Live flips true the
	// replica has already streamed and applied everything it missed.
	reps[victim].down.Store(false)
	waitFor(t, 10*time.Second, func() bool { return pool.Live(victim) })
	if err := ref.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := front.Flush(); err != nil {
		t.Fatal(err)
	}

	// The headline assertion: the readmitted replica itself is
	// bit-identical to the reference.
	compareReplicaToReference(t, ctx, clients[victim], ref, nUsers, nTags)

	// And the rejoin is observable: the divergence was stats-visible
	// while it lasted, the catch-up that repaired it is counted, and the
	// replica sits at the replication log head.
	stats := front.StatsAny().(Stats)
	vs := stats.Replicas[victim]
	if vs.Counters.MissedMutations < 1 {
		t.Fatalf("victim counters = %+v, want >=1 stats-visible missed mutation", vs.Counters)
	}
	if vs.Counters.Catchups < 1 || vs.Counters.CatchupRecords < 1 {
		t.Fatalf("victim counters = %+v, want a completed catch-up with replayed records", vs.Counters)
	}
	if vs.Counters.Readmissions < 1 {
		t.Fatalf("victim counters = %+v, want >=1 readmission", vs.Counters)
	}
	if stats.Replog == nil || vs.AppliedLSN != stats.Replog.Head || vs.ReplogLag != 0 {
		t.Fatalf("victim applied=%d lag=%d, replog=%+v: want applied == head, lag 0",
			vs.AppliedLSN, vs.ReplogLag, stats.Replog)
	}
}
