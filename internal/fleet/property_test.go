package fleet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/search"
	"repro/internal/social"
)

// TestFleetMatchesSingleProcess is the fleet's acceptance property: a
// 3-replica fleet fed a random mutation stream through the front-end
// answers mode=exact queries bit-identically to one in-process service
// fed the same stream — including right after a batched Befriend
// invalidation broadcast — and killing a replica mid-stream loses no
// queries: they fail over and still match.
func TestFleetMatchesSingleProcess(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ctx := context.Background()

	// Reference: one in-process service. Its compaction cadence differs
	// from the fleet's (that is the point of batching), so answers are
	// compared at quiesce points where both sides have folded
	// everything in.
	ref, err := social.NewService(social.DefaultServiceConfig())
	if err != nil {
		t.Fatal(err)
	}

	// Fleet: 3 replicas in broadcast-heartbeat posture behind the real
	// HTTP server, one front-end.
	const nReplicas = 3
	var servers []*httptest.Server
	var clients []*Client
	for i := 0; i < nReplicas; i++ {
		_, ts := newReplica(t)
		servers = append(servers, ts)
		clients = append(clients, newTestClient(t, ts.URL, ClientConfig{}))
	}
	pool, err := NewPool(clients, PoolConfig{HealthInterval: 20 * time.Millisecond, FailAfter: 1})
	if err != nil {
		t.Fatal(err)
	}
	bcast := NewBroadcaster(clients, BroadcasterConfig{Window: 2 * time.Millisecond})
	front, err := NewFrontend(pool, bcast)
	if err != nil {
		t.Fatal(err)
	}
	defer front.Close()

	const nUsers, nItems, nTags = 24, 30, 5
	user := func(i int) string { return fmt.Sprintf("u%d", i) }
	befriend := func(a, b string, w float64) {
		t.Helper()
		if err := ref.Befriend(a, b, w); err != nil {
			t.Fatal(err)
		}
		if err := front.Befriend(a, b, w); err != nil {
			t.Fatal(err)
		}
	}
	tag := func(u, i, tg string) {
		t.Helper()
		if err := ref.Tag(u, i, tg); err != nil {
			t.Fatal(err)
		}
		if err := front.Tag(u, i, tg); err != nil {
			t.Fatal(err)
		}
	}
	mutate := func() {
		if rng.Intn(2) == 0 {
			a := rng.Intn(nUsers)
			b := (a + 1 + rng.Intn(nUsers-1)) % nUsers // never a self-edge
			befriend(user(a), user(b), 0.1+0.9*rng.Float64())
		} else {
			tag(user(rng.Intn(nUsers)), fmt.Sprintf("i%d", rng.Intn(nItems)), fmt.Sprintf("t%d", rng.Intn(nTags)))
		}
	}

	// quiesce folds everything on both sides: the reference compacts
	// locally, the fleet broadcasts pending dirty edges (which compacts
	// every replica).
	quiesce := func() {
		t.Helper()
		if err := ref.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := front.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	// compare checks every seeker × tag bit-identically (float64
	// equality: scores survive the JSON round trip exactly, and both
	// sides run the same engine over the same compacted state).
	compare := func(phase string) {
		t.Helper()
		for u := 0; u < nUsers; u++ {
			for tg := 0; tg < nTags; tg++ {
				req := search.Request{Seeker: user(u), Tags: []string{fmt.Sprintf("t%d", tg)}, K: 8, Mode: search.ModeExact}
				want, werr := ref.Do(ctx, req)
				got, gerr := front.Do(ctx, req)
				if (werr == nil) != (gerr == nil) {
					t.Fatalf("%s: seeker %s tag t%d: ref err %v, fleet err %v", phase, user(u), tg, werr, gerr)
				}
				if werr != nil {
					continue // both reject (unknown tag/seeker) — parity holds
				}
				if len(want.Results) != len(got.Results) {
					t.Fatalf("%s: seeker %s tag t%d: %d vs %d results", phase, user(u), tg, len(want.Results), len(got.Results))
				}
				for i := range want.Results {
					if want.Results[i] != got.Results[i] {
						t.Fatalf("%s: seeker %s tag t%d result %d: ref %+v, fleet %+v",
							phase, user(u), tg, i, want.Results[i], got.Results[i])
					}
				}
			}
		}
	}

	// Phase 1: seed corpus, quiesce, compare.
	for i := 0; i < nUsers; i++ {
		befriend(user(i), user((i+1)%nUsers), 0.5+0.4*rng.Float64())
	}
	for i := 0; i < 60; i++ {
		mutate()
	}
	quiesce()
	compare("seeded")

	// Phase 2: churn — the broadcast path must keep replica caches
	// consistent across many batched invalidations. Queries interleave
	// with writes to keep replica caches populated (and therefore
	// falsifiable: a missed invalidation would surface as a stale
	// horizon at the next compare).
	for round := 0; round < 5; round++ {
		for i := 0; i < 20; i++ {
			mutate()
			if i%4 == 0 {
				req := search.Request{Seeker: user(rng.Intn(nUsers)), Tags: []string{fmt.Sprintf("t%d", rng.Intn(nTags))}, K: 8, Mode: search.ModeExact}
				if _, err := front.Do(ctx, req); err != nil && !errors.Is(err, search.ErrInvalid) {
					t.Fatalf("churn query: %v", err)
				}
			}
		}
		quiesce()
		compare(fmt.Sprintf("churn round %d", round))
	}

	// Phase 3: kill one replica mid-stream. Every query must keep
	// succeeding (failing over), writes keep applying to the
	// survivors, and answers still match the reference.
	dead := pool.ReplicaFor(user(0))
	servers[dead].Close()
	for i := 0; i < 30; i++ {
		mutate()
		req := search.Request{Seeker: user(rng.Intn(nUsers)), Tags: []string{fmt.Sprintf("t%d", rng.Intn(nTags))}, K: 8, Mode: search.ModeExact}
		if _, err := front.Do(ctx, req); err != nil && !errors.Is(err, search.ErrInvalid) {
			t.Fatalf("query %d after replica kill: %v", i, err)
		}
	}
	quiesce()
	compare("after replica kill")

	// The ejection is observable in stats, and the dead replica's
	// broadcast misses were recorded.
	stats := front.StatsAny().(Stats)
	if stats.Replicas[dead].Live {
		t.Fatal("killed replica still live in stats")
	}
	if stats.Replicas[dead].Counters.Ejections < 1 {
		t.Fatalf("killed replica stats = %+v, want >=1 ejection", stats.Replicas[dead])
	}
	if stats.Broadcast.Counters.Failures < 1 {
		t.Fatalf("broadcast stats = %+v, want recorded failures for the dead replica", stats.Broadcast)
	}
	// A batch fans out across survivors and still answers everything.
	var reqs []search.Request
	for u := 0; u < nUsers; u++ {
		reqs = append(reqs, search.Request{Seeker: user(u), Tags: []string{"t0"}, K: 8, Mode: search.ModeExact})
	}
	for i, br := range front.DoBatch(ctx, reqs) {
		if br.Err != nil && !errors.Is(br.Err, search.ErrInvalid) {
			t.Fatalf("batch[%d] after replica kill: %v", i, br.Err)
		}
	}
}
