package fleet

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/search"
	"repro/internal/server"
	"repro/internal/social"
)

// newTracedReplica is newReplica with an observability plane: head
// sampling off, so the replica collects spans only when a request
// arrives carrying a sampled traceparent — the cross-process posture.
func newTracedReplica(t *testing.T, node string) (*obs.Tracer, *httptest.Server) {
	t.Helper()
	cfg := social.DefaultServiceConfig()
	cfg.AutoCompactEvery = 1 << 30
	svc, err := social.NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(svc)
	if err != nil {
		t.Fatal(err)
	}
	tracer := obs.NewTracer(obs.Config{Node: node, SampleEvery: -1})
	srv.SetTracer(tracer)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return tracer, ts
}

// TestTracePropagationUnderBatchStorm drives concurrent DoBatch storms
// through a pool of traced replicas (run under -race in CI): every
// storm request is a sampled trace at the front-end, propagates its
// traceparent to the replicas, and stitches the replicas' spans back
// into its own trace. Pins both thread safety of concurrent span
// collection and end-to-end span continuity.
func TestTracePropagationUnderBatchStorm(t *testing.T) {
	rt1, ts1 := newTracedReplica(t, "r1")
	rt2, ts2 := newTracedReplica(t, "r2")
	clients := []*Client{
		newTestClient(t, ts1.URL, ClientConfig{}),
		newTestClient(t, ts2.URL, ClientConfig{}),
	}
	// Seed both replicas directly (no front-end here: the pool is the
	// unit under test) and fold the writes in.
	ctx := context.Background()
	for _, c := range clients {
		if _, err := c.Befriend(ctx, "alice", "bob", 0.9, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Tag(ctx, "bob", "luigis", "pizza", 0); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Invalidate(ctx, [][2]string{{"alice", "bob"}}, false); err != nil {
			t.Fatal(err)
		}
	}
	pool, err := NewPool(clients, PoolConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pool.Close)

	feTracer := obs.NewTracer(obs.Config{Node: "fe", SampleEvery: 1, RecorderCapacity: 1024})
	batch := []search.Request{
		{Seeker: "alice", Tags: []string{"pizza"}, K: 3, Mode: search.ModeExact},
		{Seeker: "bob", Tags: []string{"pizza"}, K: 3, Mode: search.ModeExact},
	}

	// Phase 1: 8 goroutines, each running its own traced requests.
	const workers, iters = 8, 20
	var wg sync.WaitGroup
	var traceIDs sync.Map
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				rctx, rq := feTracer.StartRequest(context.Background(), "", http.MethodPost, "/v1/search/batch")
				out := pool.DoBatch(rctx, batch)
				for _, r := range out {
					if r.Err != nil {
						t.Errorf("batch query failed: %v", r.Err)
					}
				}
				info := rq.Finish(http.StatusOK)
				traceIDs.Store(info.TraceID, true)
			}
		}()
	}
	wg.Wait()

	// Every trace must have stitched at least one replica-side span.
	checked := 0
	traceIDs.Range(func(k, _ interface{}) bool {
		checked++
		rec, ok := feTracer.TraceByID(k.(string))
		if !ok {
			t.Fatalf("trace %s not recorded", k)
		}
		names := map[string]bool{}
		replicaSpans := 0
		for _, sp := range rec.Spans {
			names[sp.Name] = true
			if sp.Node == "r1" || sp.Node == "r2" {
				replicaSpans++
			}
		}
		if !names["fleet.route"] || !names["fleet.rpc"] {
			t.Fatalf("trace %s missing front-end spans: %v", k, names)
		}
		if !names["social.execute"] || replicaSpans == 0 {
			t.Fatalf("trace %s has no stitched replica spans: %+v", k, rec.Spans)
		}
		return true
	})
	if checked != workers*iters {
		t.Fatalf("checked %d traces, want %d", checked, workers*iters)
	}

	// Phase 2: one shared trace, all workers batching concurrently —
	// the span list takes concurrent appends and remote merges, and the
	// cap must hold without losing the trace.
	sctx, srq := feTracer.StartRequest(context.Background(), "", http.MethodPost, "/v1/search/batch")
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				pool.DoBatch(sctx, batch)
			}
		}()
	}
	wg.Wait()
	info := srq.Finish(http.StatusOK)
	rec, ok := feTracer.TraceByID(info.TraceID)
	if !ok {
		t.Fatal("shared storm trace not recorded")
	}
	if len(rec.Spans) == 0 {
		t.Fatal("shared storm trace recorded no spans")
	}

	// The replicas never head-sample on their own: with sampling off and
	// only wire-adopted traces, their recorders hold exactly the traced
	// storm requests, every one attributed to the front-end's trace ids.
	for name, rt := range map[string]*obs.Tracer{"r1": rt1, "r2": rt2} {
		for _, s := range rt.Traces() {
			if !s.Sampled {
				t.Fatalf("%s recorded an unsampled trace: %+v", name, s)
			}
			_, fromStorm := traceIDs.Load(s.ID)
			if !fromStorm && s.ID != info.TraceID {
				t.Fatalf("%s recorded foreign trace %s", name, s.ID)
			}
		}
	}
}
