package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/quorum"
	"repro/internal/search"
)

// haElectionBackoff is the pause between full passes over the
// front-end set when no leader is reachable — the width of an election
// window, so a client riding out a failover retries into the new term
// instead of burning its budget mid-election.
const haElectionBackoff = 150 * time.Millisecond

// haWritePasses bounds how many full passes over the front-end set one
// write may take before reporting unavailable.
const haWritePasses = 20

// HAClient aims the fleet wire protocol at a set of HA front-ends
// instead of a single one. Reads go to any reachable front-end
// (failing over on ErrUnavailable and remembering the last one that
// answered); writes track the leader: a follower's 307 redirect
// (surfaced as quorum.NotLeaderError) re-aims the write at the named
// leader, and elections are ridden out with a bounded retry budget
// rather than surfaced to the caller. Safe for concurrent use.
type HAClient struct {
	fronts []*Client

	mu    sync.Mutex
	read  int // last front-end that answered a read
	write int // believed leader
}

var _ search.Searcher = (*HAClient)(nil)

// NewHAClient builds a client over the given front-end base URLs.
func NewHAClient(urls []string, cfg ClientConfig) (*HAClient, error) {
	if len(urls) == 0 {
		return nil, errors.New("fleet: HA client needs at least one front-end URL")
	}
	h := &HAClient{}
	for _, u := range urls {
		c, err := NewClient(u, cfg)
		if err != nil {
			return nil, err
		}
		h.fronts = append(h.fronts, c)
	}
	return h, nil
}

// Fronts returns the per-front-end clients, in construction order
// (read-only; useful for stats probing and tests).
func (h *HAClient) Fronts() []*Client { return h.fronts }

func (h *HAClient) startRead() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.read
}

func (h *HAClient) noteRead(i int) {
	h.mu.Lock()
	h.read = i
	h.mu.Unlock()
}

// Do answers one query via any reachable front-end. Only
// ErrUnavailable fails over: invalid requests and sheds are decisive
// wherever they were answered.
func (h *HAClient) Do(ctx context.Context, req search.Request) (search.Response, error) {
	start := h.startRead()
	var lastErr error
	for k := 0; k < len(h.fronts); k++ {
		i := (start + k) % len(h.fronts)
		resp, err := h.fronts[i].Do(ctx, req)
		if err == nil {
			h.noteRead(i)
			return resp, nil
		}
		if !errors.Is(err, search.ErrUnavailable) {
			return search.Response{}, err
		}
		lastErr = err
	}
	return search.Response{}, lastErr
}

// DoBatch answers a batch via any reachable front-end; a whole-batch
// transport failure tries the next front-end.
func (h *HAClient) DoBatch(ctx context.Context, reqs []search.Request) []search.BatchResult {
	start := h.startRead()
	var last []search.BatchResult
	for k := 0; k < len(h.fronts); k++ {
		i := (start + k) % len(h.fronts)
		out := h.fronts[i].DoBatch(ctx, reqs)
		if !batchWhollyUnavailable(out) {
			h.noteRead(i)
			return out
		}
		last = out
	}
	return last
}

// batchWhollyUnavailable reports a batch whose every entry failed with
// the failover-eligible class — the only shape worth re-routing.
func batchWhollyUnavailable(out []search.BatchResult) bool {
	if len(out) == 0 {
		return false
	}
	for _, br := range out {
		if br.Err == nil || !errors.Is(br.Err, search.ErrUnavailable) {
			return false
		}
	}
	return true
}

// Befriend sends one friendship mutation to the current leader,
// following redirects and riding out elections.
func (h *HAClient) Befriend(ctx context.Context, a, b string, weight float64) error {
	return h.mutate(ctx, func(c *Client) error {
		_, err := c.Befriend(ctx, a, b, weight, 0)
		return err
	})
}

// Tag sends one tagging mutation to the current leader, following
// redirects and riding out elections.
func (h *HAClient) Tag(ctx context.Context, user, item, tag string) error {
	return h.mutate(ctx, func(c *Client) error {
		_, err := c.Tag(ctx, user, item, tag, 0)
		return err
	})
}

// Users asks any reachable front-end for the fleet's user set.
func (h *HAClient) Users(ctx context.Context) ([]string, error) {
	start := h.startRead()
	var lastErr error
	for k := 0; k < len(h.fronts); k++ {
		i := (start + k) % len(h.fronts)
		users, err := h.fronts[i].Users(ctx)
		if err == nil {
			h.noteRead(i)
			return users, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// mutate is the leader-tracking write loop: aim at the believed
// leader; a NotLeaderError with an address re-aims immediately, one
// without (mid-election) and an unreachable front-end advance
// round-robin after an election-width pause. Decisive answers —
// success, validation rejection, overload shed — return as-is.
func (h *HAClient) mutate(ctx context.Context, send func(*Client) error) error {
	h.mu.Lock()
	target := h.write
	h.mu.Unlock()
	var lastErr error
	for pass := 0; pass < haWritePasses; pass++ {
		for k := 0; k < len(h.fronts); k++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			err := send(h.fronts[target])
			if err == nil {
				h.mu.Lock()
				h.write = target
				h.mu.Unlock()
				return nil
			}
			lastErr = err
			var nle *quorum.NotLeaderError
			switch {
			case errors.As(err, &nle):
				if i, ok := h.frontByURL(nle.LeaderURL); ok && i != target {
					target = i
					continue // re-aim costs an attempt, not a pass
				}
				// Leader unknown (mid-election) or not in our set:
				// round-robin and let the pass backoff ride out the vote.
				target = (target + 1) % len(h.fronts)
			case errors.Is(err, search.ErrUnavailable):
				target = (target + 1) % len(h.fronts)
			default:
				// Validation rejection, shed, caller-context expiry:
				// decisive wherever it was answered.
				return err
			}
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(haElectionBackoff):
		}
	}
	return unavailablef("no front-end accepted the write after %d passes: %v", haWritePasses, lastErr)
}

// frontByURL maps a leader URL from a redirect to a front-end index.
func (h *HAClient) frontByURL(url string) (int, bool) {
	url = strings.TrimRight(strings.TrimSpace(url), "/")
	if url == "" {
		return 0, false
	}
	for i, c := range h.fronts {
		if c.URL() == url {
			return i, true
		}
	}
	return 0, false
}

// Stats fetches /quorum/status from every front-end (best effort):
// index-aligned with Fronts, nil entries for unreachable peers.
func (h *HAClient) Stats(ctx context.Context) []*quorum.Stats {
	out := make([]*quorum.Stats, len(h.fronts))
	for i, c := range h.fronts {
		var st quorum.Stats
		if err := c.getJSON(ctx, "/quorum/status", &st); err == nil {
			out[i] = &st
		}
	}
	return out
}

// getJSON is a small GET helper for JSON endpoints outside the search
// wire (quorum status).
func (c *Client) getJSON(parent context.Context, path string, out interface{}) error {
	ctx, cancel := context.WithTimeout(parent, c.cfg.Timeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return unavailablef("%s %s: %v", c.base, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return unavailablef("%s %s: status %d", c.base, path, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return unavailablef("%s %s: decoding response: %v", c.base, path, err)
	}
	return nil
}
