package fleet

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/search"
)

// shedServer answers 429 with a Retry-After header while shedding is
// on, and a minimal valid search response once turned off.
func shedServer(t *testing.T, retryAfter string) (*httptest.Server, *atomic.Bool, *atomic.Int64) {
	t.Helper()
	shedding := &atomic.Bool{}
	shedding.Store(true)
	calls := &atomic.Int64{}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if shedding.Load() {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			http.Error(w, `{"error":"search backend overloaded: admission queue full"}`, http.StatusTooManyRequests)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"results":[{"item":"x","score":1}]}`))
	}))
	t.Cleanup(ts.Close)
	return ts, shedding, calls
}

// TestClient429IsOverloadedWithRetryAfter pins the wire→error mapping
// the overload story depends on: 429 is search.ErrOverloaded — retry
// the same replica after the advertised backoff — and is NOT the
// failover class.
func TestClient429IsOverloadedWithRetryAfter(t *testing.T) {
	ts, _, _ := shedServer(t, "7")
	c := newTestClient(t, ts.URL, ClientConfig{})

	_, err := c.Do(context.Background(), search.Request{Seeker: "a", Tags: []string{"x"}})
	if !errors.Is(err, search.ErrOverloaded) {
		t.Fatalf("429 error = %v, want ErrOverloaded", err)
	}
	if errors.Is(err, search.ErrUnavailable) {
		t.Fatalf("429 error %v must not be failover-eligible", err)
	}
	var oe *search.OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("429 error %v does not carry an OverloadError", err)
	}
	if oe.RetryAfter != 7*time.Second {
		t.Fatalf("RetryAfter = %v, want 7s (parsed from header)", oe.RetryAfter)
	}
}

// TestClient429WithoutHeader still classifies as overloaded, with no
// backoff hint.
func TestClient429WithoutHeader(t *testing.T) {
	ts, _, _ := shedServer(t, "")
	c := newTestClient(t, ts.URL, ClientConfig{})
	_, err := c.Do(context.Background(), search.Request{Seeker: "a", Tags: []string{"x"}})
	if !errors.Is(err, search.ErrOverloaded) {
		t.Fatalf("headerless 429 error = %v, want ErrOverloaded", err)
	}
	var oe *search.OverloadError
	if errors.As(err, &oe) && oe.RetryAfter != 0 {
		t.Fatalf("RetryAfter = %v, want 0 without a header", oe.RetryAfter)
	}
}

// TestHedgeSuppressedOnShed: a shed verdict is decisive — launching a
// hedge against the sibling would turn one overloaded replica into a
// fleet-wide hedge storm.
func TestHedgeSuppressedOnShed(t *testing.T) {
	ts, _, calls := shedServer(t, "1")
	c := newTestClient(t, ts.URL, ClientConfig{HedgeDelay: 5 * time.Millisecond})
	_, err := c.Do(context.Background(), search.Request{Seeker: "a", Tags: []string{"x"}})
	if !errors.Is(err, search.ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if snap := c.Counters().Snapshot(); snap.HedgesLaunched != 0 {
		t.Fatalf("HedgesLaunched = %d, want 0 (shed is decisive)", snap.HedgesLaunched)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("replica saw %d calls, want exactly 1", n)
	}
}

// TestPoolNoFailoverOnShed: Pool.Do must return the shed verbatim
// rather than spill the query to a sibling (which is the unavailable
// class's cure, and under overload would only propagate the overload),
// and the shed must not poison the replica's health state.
func TestPoolNoFailoverOnShed(t *testing.T) {
	ctx := context.Background()
	tsA, sheddingA, callsA := shedServer(t, "1")
	tsB, sheddingB, callsB := shedServer(t, "1")
	pool, err := NewPool(
		[]*Client{newTestClient(t, tsA.URL, ClientConfig{}), newTestClient(t, tsB.URL, ClientConfig{})},
		PoolConfig{HealthInterval: -1, FailAfter: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	req := search.Request{Seeker: "alice", Tags: []string{"x"}, K: 3}
	_, err = pool.Do(ctx, req)
	if !errors.Is(err, search.ErrOverloaded) {
		t.Fatalf("pool err = %v, want ErrOverloaded", err)
	}
	if n := callsA.Load() + callsB.Load(); n != 1 {
		t.Fatalf("fleet saw %d calls for one shed query, want 1 (no failover)", n)
	}

	// The replica recovers; with FailAfter=1 a single unavailable-class
	// error would have ejected it, so an immediately successful retry
	// proves sheds never fed the health accounting.
	sheddingA.Store(false)
	sheddingB.Store(false)
	if _, err := pool.Do(ctx, req); err != nil {
		t.Fatalf("retry after shed failed: %v (was the replica ejected?)", err)
	}
}

// TestPoolBatchNoRerouteOnShed: shed batch entries keep their
// ErrOverloaded verdict instead of being re-routed to a sibling.
func TestPoolBatchNoRerouteOnShed(t *testing.T) {
	ctx := context.Background()
	tsA, _, callsA := shedServer(t, "1")
	tsB, _, callsB := shedServer(t, "1")
	pool, err := NewPool(
		[]*Client{newTestClient(t, tsA.URL, ClientConfig{}), newTestClient(t, tsB.URL, ClientConfig{})},
		PoolConfig{HealthInterval: -1, FailAfter: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	out := pool.DoBatch(ctx, []search.Request{
		{Seeker: "alice", Tags: []string{"x"}, K: 3},
		{Seeker: "bob", Tags: []string{"x"}, K: 3},
	})
	for i, r := range out {
		if !errors.Is(r.Err, search.ErrOverloaded) {
			t.Fatalf("batch[%d].Err = %v, want ErrOverloaded", i, r.Err)
		}
	}
	// Each seeker's owner saw its entry exactly once: no re-route.
	if n := callsA.Load() + callsB.Load(); n > 2 {
		t.Fatalf("fleet saw %d calls for a 2-entry shed batch, want <= 2 (no re-route)", n)
	}
}

// TestClientDeadlineShrinksAttempt: a caller deadline shorter than the
// configured per-attempt timeout must bound the attempt — the request
// fails with the context's error as soon as the deadline passes, not
// after the full client timeout.
func TestClientDeadlineShrinksAttempt(t *testing.T) {
	release := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer slow.Close()
	defer close(release) // unblock the handler before Close waits on it

	c := newTestClient(t, slow.URL, ClientConfig{Timeout: 30 * time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Do(ctx, search.Request{Seeker: "a", Tags: []string{"x"}})
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("attempt ran %v, caller deadline was 50ms: per-attempt timeout did not shrink", elapsed)
	}
}
