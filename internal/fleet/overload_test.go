package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/search"
	"repro/internal/server"
)

// shedServer answers 429 with a Retry-After header while shedding is
// on, and a minimal valid search response once turned off.
func shedServer(t *testing.T, retryAfter string) (*httptest.Server, *atomic.Bool, *atomic.Int64) {
	t.Helper()
	shedding := &atomic.Bool{}
	shedding.Store(true)
	calls := &atomic.Int64{}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if shedding.Load() {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			http.Error(w, `{"error":"search backend overloaded: admission queue full"}`, http.StatusTooManyRequests)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"results":[{"item":"x","score":1}]}`))
	}))
	t.Cleanup(ts.Close)
	return ts, shedding, calls
}

// TestClient429IsOverloadedWithRetryAfter pins the wire→error mapping
// the overload story depends on: 429 is search.ErrOverloaded — retry
// the same replica after the advertised backoff — and is NOT the
// failover class.
func TestClient429IsOverloadedWithRetryAfter(t *testing.T) {
	ts, _, _ := shedServer(t, "7")
	c := newTestClient(t, ts.URL, ClientConfig{})

	_, err := c.Do(context.Background(), search.Request{Seeker: "a", Tags: []string{"x"}})
	if !errors.Is(err, search.ErrOverloaded) {
		t.Fatalf("429 error = %v, want ErrOverloaded", err)
	}
	if errors.Is(err, search.ErrUnavailable) {
		t.Fatalf("429 error %v must not be failover-eligible", err)
	}
	var oe *search.OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("429 error %v does not carry an OverloadError", err)
	}
	if oe.RetryAfter != 7*time.Second {
		t.Fatalf("RetryAfter = %v, want 7s (parsed from header)", oe.RetryAfter)
	}
}

// TestClient429WithoutHeader still classifies as overloaded, with no
// backoff hint.
func TestClient429WithoutHeader(t *testing.T) {
	ts, _, _ := shedServer(t, "")
	c := newTestClient(t, ts.URL, ClientConfig{})
	_, err := c.Do(context.Background(), search.Request{Seeker: "a", Tags: []string{"x"}})
	if !errors.Is(err, search.ErrOverloaded) {
		t.Fatalf("headerless 429 error = %v, want ErrOverloaded", err)
	}
	var oe *search.OverloadError
	if errors.As(err, &oe) && oe.RetryAfter != 0 {
		t.Fatalf("RetryAfter = %v, want 0 without a header", oe.RetryAfter)
	}
}

// TestHedgeSuppressedOnShed: a shed verdict is decisive — launching a
// hedge against the sibling would turn one overloaded replica into a
// fleet-wide hedge storm.
func TestHedgeSuppressedOnShed(t *testing.T) {
	ts, _, calls := shedServer(t, "1")
	c := newTestClient(t, ts.URL, ClientConfig{HedgeDelay: 5 * time.Millisecond})
	_, err := c.Do(context.Background(), search.Request{Seeker: "a", Tags: []string{"x"}})
	if !errors.Is(err, search.ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if snap := c.Counters().Snapshot(); snap.HedgesLaunched != 0 {
		t.Fatalf("HedgesLaunched = %d, want 0 (shed is decisive)", snap.HedgesLaunched)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("replica saw %d calls, want exactly 1", n)
	}
}

// TestPoolNoFailoverOnShed: Pool.Do must return the shed verbatim
// rather than spill the query to a sibling (which is the unavailable
// class's cure, and under overload would only propagate the overload),
// and the shed must not poison the replica's health state.
func TestPoolNoFailoverOnShed(t *testing.T) {
	ctx := context.Background()
	tsA, sheddingA, callsA := shedServer(t, "1")
	tsB, sheddingB, callsB := shedServer(t, "1")
	pool, err := NewPool(
		[]*Client{newTestClient(t, tsA.URL, ClientConfig{}), newTestClient(t, tsB.URL, ClientConfig{})},
		PoolConfig{HealthInterval: -1, FailAfter: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	req := search.Request{Seeker: "alice", Tags: []string{"x"}, K: 3}
	_, err = pool.Do(ctx, req)
	if !errors.Is(err, search.ErrOverloaded) {
		t.Fatalf("pool err = %v, want ErrOverloaded", err)
	}
	if n := callsA.Load() + callsB.Load(); n != 1 {
		t.Fatalf("fleet saw %d calls for one shed query, want 1 (no failover)", n)
	}

	// The replica recovers; with FailAfter=1 a single unavailable-class
	// error would have ejected it, so an immediately successful retry
	// proves sheds never fed the health accounting.
	sheddingA.Store(false)
	sheddingB.Store(false)
	if _, err := pool.Do(ctx, req); err != nil {
		t.Fatalf("retry after shed failed: %v (was the replica ejected?)", err)
	}
}

// TestPoolBatchNoRerouteOnShed: shed batch entries keep their
// ErrOverloaded verdict instead of being re-routed to a sibling.
func TestPoolBatchNoRerouteOnShed(t *testing.T) {
	ctx := context.Background()
	tsA, _, callsA := shedServer(t, "1")
	tsB, _, callsB := shedServer(t, "1")
	pool, err := NewPool(
		[]*Client{newTestClient(t, tsA.URL, ClientConfig{}), newTestClient(t, tsB.URL, ClientConfig{})},
		PoolConfig{HealthInterval: -1, FailAfter: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	out := pool.DoBatch(ctx, []search.Request{
		{Seeker: "alice", Tags: []string{"x"}, K: 3},
		{Seeker: "bob", Tags: []string{"x"}, K: 3},
	})
	for i, r := range out {
		if !errors.Is(r.Err, search.ErrOverloaded) {
			t.Fatalf("batch[%d].Err = %v, want ErrOverloaded", i, r.Err)
		}
	}
	// Each seeker's owner saw its entry exactly once: no re-route.
	if n := callsA.Load() + callsB.Load(); n > 2 {
		t.Fatalf("fleet saw %d calls for a 2-entry shed batch, want <= 2 (no re-route)", n)
	}
}

// TestClientDeadlineShrinksAttempt: a caller deadline shorter than the
// configured per-attempt timeout must bound the attempt — the request
// fails with the context's error as soon as the deadline passes, not
// after the full client timeout.
func TestClientDeadlineShrinksAttempt(t *testing.T) {
	release := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer slow.Close()
	defer close(release) // unblock the handler before Close waits on it

	c := newTestClient(t, slow.URL, ClientConfig{Timeout: 30 * time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Do(ctx, search.Request{Seeker: "a", Tags: []string{"x"}})
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("attempt ran %v, caller deadline was 50ms: per-attempt timeout did not shrink", elapsed)
	}
}

// TestFrontendPropagatesRetryAfterOnFanout pins the shared-fate shed
// contract end to end: a replica shedding with 429 + Retry-After makes
// the FRONT-END answer the client 429 with the same hint — on the
// query path, on the unstamped mutation fan-out, and per entry in a
// batch (error_kind "overloaded" + retry_after_ms on the wire) — and
// never ejects the replica or fails over onto ring successors.
func TestFrontendPropagatesRetryAfterOnFanout(t *testing.T) {
	ts, _, _ := shedServer(t, "7")
	c := newTestClient(t, ts.URL, ClientConfig{})
	pool, err := NewPool([]*Client{c}, PoolConfig{HealthInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	bcast := NewBroadcaster([]*Client{c}, BroadcasterConfig{})
	front, err := NewFrontend(pool, bcast)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(front.Close)
	srv, err := server.New(front)
	if err != nil {
		t.Fatal(err)
	}
	door := httptest.NewServer(srv)
	t.Cleanup(door.Close)

	post := func(path, body string) *http.Response {
		t.Helper()
		resp, err := door.Client().Post(door.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	// Query path: the replica's shed surfaces as the front door's shed.
	resp := post("/v2/search", `{"seeker":"a","tags":["x"],"k":1}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("fan-out search status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Fatalf("search Retry-After = %q, want %q (the replica's hint)", got, "7")
	}

	// Unstamped mutation fan-out: shared fate, not ejection.
	resp = post("/v1/friend", `{"a":"alice","b":"bob","weight":0.9}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("fan-out friend status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Fatalf("friend Retry-After = %q, want %q", got, "7")
	}
	if !pool.Live(0) {
		t.Fatal("replica ejected for shedding — overload is not a health failure")
	}

	// Batch path: the shed survives per entry, typed, with its hint.
	resp = post("/v2/search/batch", `{"queries":[{"seeker":"a","tags":["x"],"k":1}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch envelope status = %d, want 200 (per-entry errors)", resp.StatusCode)
	}
	var batch struct {
		Results []struct {
			Error        string `json:"error"`
			ErrorKind    string `json:"error_kind"`
			RetryAfterMS int64  `json:"retry_after_ms"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != 1 {
		t.Fatalf("batch answers = %d, want 1", len(batch.Results))
	}
	e := batch.Results[0]
	if e.ErrorKind != server.ErrKindOverloaded || e.RetryAfterMS != 7000 {
		t.Fatalf("batch entry = %+v, want error_kind %q with retry_after_ms 7000", e, server.ErrKindOverloaded)
	}
}
