// Package fleet turns the in-process shard.Router prototype into a
// multi-process serving fleet: N replica processes each run the full
// engine over the same mutation stream, a front-end routes queries to
// the replica owning each seeker (consistent hashing, so exactly one
// replica pays a seeker's horizon expansion), health checking ejects
// dead replicas and spills their seekers across the survivors in ring
// order, and a write-path broadcaster batches compacted Befriend
// dirty-edge sets to every replica's /v2/invalidate endpoint so the
// per-replica seeker caches stay edge-scoped-consistent without global
// flushes.
//
// The pieces compose left to right:
//
//	Client      — search.Searcher over one replica's /v2 HTTP surface
//	              (pooled connections, per-attempt timeout, optional
//	              hedged requests for tail latency)
//	Pool        — replica registry + /healthz prober + failover router
//	              (itself a search.Searcher)
//	Broadcaster — coalesces dirty edges and fans /v2/invalidate out
//	Frontend    — server.Backend gluing Pool + Broadcaster together,
//	              so cmd/friendserve -replicas serves the same API as a
//	              single process
//
// Soundness of the invalidation broadcast is argued in docs/fleet.md:
// the front-end serializes mutations, every replica applies the same
// stream in the same order, and a broadcast both folds pending writes
// into each replica's snapshot and drops exactly the cached horizons
// whose member sets contain a dirty edge's endpoint — the same
// edge-scoped rule the single-process cache uses (docs/sharding.md),
// applied across processes.
package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/quorum"
	"repro/internal/search"
	"repro/internal/server"
)

// Client defaults, substituted for zero config fields.
const (
	DefaultTimeout      = 10 * time.Second
	DefaultMaxIdleConns = 32
)

// unavailablef wraps a transport- or server-side failure so
// errors.Is(err, search.ErrUnavailable) holds and routers treat it as
// failover-eligible.
func unavailablef(format string, args ...interface{}) error {
	return fmt.Errorf("%w: %s", search.ErrUnavailable, fmt.Sprintf(format, args...))
}

// ErrBehind reports a replica that refused an LSN-stamped mutation
// because it has not yet applied the preceding records (409 on the
// wire, social.ErrReplicationGap on the replica). The write path treats
// it as "deferred to catch-up" for a replica already rejoining, and as
// divergence evidence — fail the replica's health state so catch-up
// starts — for one that claims to be live.
var ErrBehind = errors.New("fleet: replica behind the replication log")

// ClientConfig tunes a replica client.
type ClientConfig struct {
	// Timeout bounds one HTTP attempt (0 = DefaultTimeout). The caller's
	// ctx can cut it shorter, never longer.
	Timeout time.Duration
	// HedgeDelay, when positive, issues a duplicate of a single-query
	// request that has not answered within the delay and takes whichever
	// attempt finishes first. Search is read-only and idempotent, so the
	// duplicate is safe; the cost is at most one extra request on the
	// slow tail. 0 disables hedging.
	HedgeDelay time.Duration
	// MaxIdleConns bounds the pooled idle connections kept to the
	// replica (0 = DefaultMaxIdleConns).
	MaxIdleConns int
	// Transport overrides the HTTP transport (tests). Nil builds a
	// pooled one from MaxIdleConns.
	Transport http.RoundTripper
}

// Client speaks the /v1 + /v2 wire format of one replica process and
// implements search.Searcher over it. Safe for concurrent use.
type Client struct {
	base     string
	hc       *http.Client
	cfg      ClientConfig
	counters *metrics.ReplicaCounters
}

var _ search.Searcher = (*Client)(nil)

// NewClient builds a client for the replica at baseURL
// (scheme://host:port, no trailing slash required).
func NewClient(baseURL string, cfg ClientConfig) (*Client, error) {
	baseURL = strings.TrimRight(strings.TrimSpace(baseURL), "/")
	if baseURL == "" {
		return nil, errors.New("fleet: empty replica URL")
	}
	if !strings.HasPrefix(baseURL, "http://") && !strings.HasPrefix(baseURL, "https://") {
		return nil, fmt.Errorf("fleet: replica URL %q lacks an http(s) scheme", baseURL)
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = DefaultTimeout
	}
	if cfg.Timeout < 0 || cfg.HedgeDelay < 0 || cfg.MaxIdleConns < 0 {
		return nil, fmt.Errorf("fleet: negative client config value")
	}
	if cfg.MaxIdleConns == 0 {
		cfg.MaxIdleConns = DefaultMaxIdleConns
	}
	rt := cfg.Transport
	if rt == nil {
		rt = &http.Transport{
			MaxIdleConns:        cfg.MaxIdleConns,
			MaxIdleConnsPerHost: cfg.MaxIdleConns,
			IdleConnTimeout:     90 * time.Second,
		}
	}
	return &Client{
		base: baseURL,
		// Redirects are protocol, not plumbing: an HA follower answers
		// writes with 307 + the leader's address, and the caller decides
		// whether to chase it (HAClient does, with its own retry budget).
		hc: &http.Client{Transport: rt, CheckRedirect: func(*http.Request, []*http.Request) error {
			return http.ErrUseLastResponse
		}},
		cfg:      cfg,
		counters: &metrics.ReplicaCounters{},
	}, nil
}

// URL returns the replica base URL.
func (c *Client) URL() string { return c.base }

// Counters returns the client's routing counters (shared with the Pool
// that owns the client).
func (c *Client) Counters() *metrics.ReplicaCounters { return c.counters }

// wireQuery mirrors the server's /v2 query object field for field.
type wireQuery struct {
	Seeker        string   `json:"seeker"`
	Tags          []string `json:"tags"`
	K             int      `json:"k"`
	Beta          *float64 `json:"beta,omitempty"`
	Mode          string   `json:"mode,omitempty"`
	AlgHint       string   `json:"alg_hint,omitempty"`
	MinScore      float64  `json:"min_score,omitempty"`
	Offset        int      `json:"offset,omitempty"`
	NoCache       bool     `json:"no_cache,omitempty"`
	MaxCacheAgeMS int64    `json:"max_cache_age_ms,omitempty"`
	Explain       bool     `json:"explain,omitempty"`
}

func toWire(req search.Request) wireQuery {
	return wireQuery{
		Seeker:        req.Seeker,
		Tags:          req.Tags,
		K:             req.K,
		Beta:          req.Beta,
		Mode:          req.Mode.String(),
		AlgHint:       req.AlgHint,
		MinScore:      req.MinScore,
		Offset:        req.Offset,
		NoCache:       req.NoCache,
		MaxCacheAgeMS: req.MaxCacheAgeMS,
		Explain:       req.Explain,
	}
}

// post sends one JSON request and decodes the response into out. Status
// and transport handling is the single place wire errors are
// classified: 2xx decodes, 400 becomes ErrInvalid (the replica rejected
// the request content — retrying elsewhere cannot help), everything
// else — connection failures, 5xx, unexpected statuses — becomes
// ErrUnavailable, the failover-eligible class. A failure owned by the
// CALLER's context — cancellation or an expired caller deadline —
// surfaces as that ctx error instead, so a client hanging up or asking
// for less time than the query needs never feeds replica health state
// or triggers failover. Only the per-attempt timeout this client adds
// on top counts against the replica.
func (c *Client) post(parent context.Context, path string, in, out interface{}) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("fleet: encoding %s request: %w", path, err)
	}
	// One span per RPC attempt (a hedged request shows both attempts);
	// on a sampled trace the replica stitches its own spans into ours
	// through the response (see the wire response types' Spans fields).
	parent, sp := obs.StartSpan(parent, "fleet.rpc")
	defer sp.End()
	sp.SetAttr("replica", c.base)
	sp.SetAttr("path", path)
	ctx, cancel := context.WithTimeout(parent, c.cfg.Timeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("fleet: building %s request: %w", path, err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	obs.Inject(parent, hreq.Header)
	resp, err := c.hc.Do(hreq)
	if err != nil {
		if perr := parent.Err(); perr != nil {
			return perr
		}
		return unavailablef("%s %s: %v", c.base, path, err)
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		if out == nil {
			io.Copy(io.Discard, resp.Body)
			return nil
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return unavailablef("%s %s: decoding response: %v", c.base, path, err)
		}
		return nil
	case resp.StatusCode == http.StatusBadRequest:
		return search.WrapInvalid(fmt.Errorf("%s %s: %s", c.base, path, wireErrMessage(resp.Body)))
	case resp.StatusCode == http.StatusConflict:
		return fmt.Errorf("%w: %s %s: %s", ErrBehind, c.base, path, wireErrMessage(resp.Body))
	case resp.StatusCode == http.StatusTemporaryRedirect:
		// An HA follower refusing a write: the Location header names the
		// leader's copy of this endpoint. Surface it as NotLeaderError so
		// leader-tracking callers re-aim instead of failing over.
		return &quorum.NotLeaderError{LeaderURL: strings.TrimSuffix(resp.Header.Get("Location"), path)}
	case resp.StatusCode == http.StatusTooManyRequests:
		// The replica shed the request: it is healthy but at capacity.
		// This class is deliberately NOT ErrUnavailable — failing over
		// would aim the overload at the ring successors — so routers
		// return it to the caller, who retries the same replica after
		// the advertised backoff.
		return search.Overloadedf(parseRetryAfter(resp.Header.Get("Retry-After")),
			"%s %s: %s", c.base, path, wireErrMessage(resp.Body))
	default:
		return unavailablef("%s %s: status %d: %s", c.base, path, resp.StatusCode, wireErrMessage(resp.Body))
	}
}

// parseRetryAfter reads a Retry-After header (delta-seconds form; the
// only form our servers emit) into a duration, 0 when absent or
// malformed.
func parseRetryAfter(h string) time.Duration {
	secs, err := strconv.Atoi(strings.TrimSpace(h))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// wireErrMessage extracts the {"error": ...} body the server sends with
// failure statuses, falling back to the raw (truncated) body.
func wireErrMessage(r io.Reader) string {
	raw, err := io.ReadAll(io.LimitReader(r, 4096))
	if err != nil || len(raw) == 0 {
		return "(no body)"
	}
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(raw))
}

// wireSearchResponse mirrors the server's /v2/search response. Spans
// is the replica's span data for a traced request; the client folds it
// into the live trace and strips it before the response surfaces.
type wireSearchResponse struct {
	Results    []search.Result `json:"results"`
	Explain    *search.Explain `json:"explain,omitempty"`
	Degraded   bool            `json:"degraded,omitempty"`
	ScoreBound float64         `json:"score_bound,omitempty"`
	Spans      []obs.SpanData  `json:"spans,omitempty"`
}

// Do answers one request over POST /v2/search. With hedging configured,
// a duplicate attempt launches after HedgeDelay and the first answer
// wins (the loser is cancelled).
func (c *Client) Do(ctx context.Context, req search.Request) (search.Response, error) {
	if c.cfg.HedgeDelay <= 0 {
		return c.searchOnce(ctx, req)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		resp   search.Response
		err    error
		hedged bool
	}
	ch := make(chan outcome, 2)
	run := func(hedged bool) {
		resp, err := c.searchOnce(ctx, req)
		ch <- outcome{resp: resp, err: err, hedged: hedged}
	}
	go run(false)
	timer := time.NewTimer(c.cfg.HedgeDelay)
	defer timer.Stop()
	pending := 1
	hedged := false
	var firstErr error
	for {
		select {
		case <-timer.C:
			if !hedged {
				hedged = true
				pending++
				c.counters.HedgeLaunched()
				go run(true)
			}
		case o := <-ch:
			pending--
			if o.err == nil {
				if o.hedged {
					c.counters.HedgeWon()
				}
				return o.resp, nil
			}
			if errors.Is(o.err, search.ErrOverloaded) {
				// A shed is decisive: the replica is alive and refusing
				// work, so a duplicate attempt would only add to the
				// overload. Return it without waiting for (or launching)
				// a hedge.
				return search.Response{}, o.err
			}
			if firstErr == nil {
				firstErr = o.err
			}
			if pending == 0 {
				return search.Response{}, firstErr
			}
			// One attempt failed but another is in flight: drain the
			// timer case by looping — the hedge may still answer.
		}
	}
}

func (c *Client) searchOnce(ctx context.Context, req search.Request) (search.Response, error) {
	var out wireSearchResponse
	if err := c.post(ctx, "/v2/search", toWire(req), &out); err != nil {
		return search.Response{}, err
	}
	obs.MergeRemote(ctx, out.Spans)
	if out.Results == nil {
		out.Results = []search.Result{}
	}
	return search.Response{
		Results: out.Results, Explain: out.Explain,
		Degraded: out.Degraded, ScoreBound: out.ScoreBound,
	}, nil
}

// wireBatch mirrors the server's /v2/search/batch envelope.
type wireBatch struct {
	Queries []wireQuery `json:"queries"`
}

type wireBatchEntry struct {
	Results      []search.Result `json:"results"`
	Explain      *search.Explain `json:"explain,omitempty"`
	Degraded     bool            `json:"degraded,omitempty"`
	ScoreBound   float64         `json:"score_bound,omitempty"`
	Error        string          `json:"error,omitempty"`
	ErrorKind    string          `json:"error_kind,omitempty"`
	RetryAfterMS int64           `json:"retry_after_ms,omitempty"`
}

// entryErr reconstructs the typed error a batch entry carried on the
// wire: the class decides failover (unavailable) vs return-to-caller
// (invalid, overloaded — a shed entry keeps its Retry-After hint so
// the front-end's own response can re-emit it). An unclassified error
// stays opaque: no failover, no special status.
func (e wireBatchEntry) entryErr() error {
	switch e.ErrorKind {
	case server.ErrKindInvalid:
		return search.WrapInvalid(errors.New(e.Error))
	case server.ErrKindOverloaded:
		return search.Overloadedf(time.Duration(e.RetryAfterMS)*time.Millisecond, "%s", e.Error)
	case server.ErrKindUnavailable:
		return unavailablef("%s", e.Error)
	default:
		return errors.New(e.Error)
	}
}

type wireBatchResponse struct {
	Results []wireBatchEntry `json:"results"`
	Spans   []obs.SpanData   `json:"spans,omitempty"`
}

// DoBatch answers many requests over POST /v2/search/batch. Per-query
// errors come back per entry; a whole-batch transport failure marks
// every entry ErrUnavailable so a pool can re-route the batch.
func (c *Client) DoBatch(ctx context.Context, reqs []search.Request) []search.BatchResult {
	out := make([]search.BatchResult, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	wire := wireBatch{Queries: make([]wireQuery, len(reqs))}
	for i, r := range reqs {
		wire.Queries[i] = toWire(r)
	}
	var resp wireBatchResponse
	if err := c.post(ctx, "/v2/search/batch", wire, &resp); err != nil {
		for i := range out {
			out[i] = search.BatchResult{Err: err}
		}
		return out
	}
	obs.MergeRemote(ctx, resp.Spans)
	if len(resp.Results) != len(reqs) {
		err := unavailablef("%s /v2/search/batch: %d answers for %d queries", c.base, len(resp.Results), len(reqs))
		for i := range out {
			out[i] = search.BatchResult{Err: err}
		}
		return out
	}
	for i, e := range resp.Results {
		if e.Error != "" {
			out[i] = search.BatchResult{Err: e.entryErr()}
			continue
		}
		results := e.Results
		if results == nil {
			results = []search.Result{}
		}
		out[i] = search.BatchResult{Response: search.Response{
			Results: results, Explain: e.Explain,
			Degraded: e.Degraded, ScoreBound: e.ScoreBound,
		}}
	}
	return out
}

// Healthz probes GET /healthz. A nil error means the replica process is
// alive; the returned LSN is the replica's self-reported replication
// cursor (the X-Applied-LSN header, 0 when the replica does not report
// one) — health probes double as replication lag probes.
func (c *Client) Healthz(ctx context.Context) (uint64, error) {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return 0, err
	}
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return 0, unavailablef("%s /healthz: %v", c.base, err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return 0, unavailablef("%s /healthz: status %d", c.base, resp.StatusCode)
	}
	applied, _ := strconv.ParseUint(resp.Header.Get("X-Applied-LSN"), 10, 64)
	return applied, nil
}

// Befriend forwards one friendship mutation to the replica. A positive
// lsn stamps it with its replication log sequence number; the replica
// applies it with idempotent dedup and strict ordering (out-of-order
// records fail with ErrBehind) and the returned LSN is the replica's
// cursor after the record was processed (0 for unstamped mutations).
func (c *Client) Befriend(ctx context.Context, a, b string, weight float64, lsn uint64) (uint64, error) {
	in := map[string]interface{}{"a": a, "b": b, "weight": weight}
	if lsn == 0 {
		return 0, c.post(ctx, "/v1/friend", in, nil)
	}
	in["lsn"] = lsn
	var out appliedAck
	if err := c.post(ctx, "/v1/friend", in, &out); err != nil {
		return 0, err
	}
	obs.MergeRemote(ctx, out.Spans)
	return out.AppliedLSN, nil
}

// Tag forwards one tagging mutation to the replica; lsn as in Befriend.
func (c *Client) Tag(ctx context.Context, user, item, tag string, lsn uint64) (uint64, error) {
	in := map[string]interface{}{"user": user, "item": item, "tag": tag}
	if lsn == 0 {
		return 0, c.post(ctx, "/v1/tag", in, nil)
	}
	in["lsn"] = lsn
	var out appliedAck
	if err := c.post(ctx, "/v1/tag", in, &out); err != nil {
		return 0, err
	}
	obs.MergeRemote(ctx, out.Spans)
	return out.AppliedLSN, nil
}

// appliedAck mirrors the server's LSN-stamped mutation response
// (Spans: the replica's span data for a traced replicated apply).
type appliedAck struct {
	AppliedLSN uint64         `json:"applied_lsn"`
	Spans      []obs.SpanData `json:"spans,omitempty"`
}

// Skip advances the replica's replication cursor past a record that is
// a no-op for it (POST /v1/skip): a quorum RecTerm leadership record,
// or a mutation every replica deterministically rejects. Same dedup
// and ordering contract as the stamped mutation calls; returns the
// replica's cursor after the skip.
func (c *Client) Skip(ctx context.Context, lsn uint64) (uint64, error) {
	var out appliedAck
	if err := c.post(ctx, "/v1/skip", map[string]interface{}{"lsn": lsn}, &out); err != nil {
		return 0, err
	}
	return out.AppliedLSN, nil
}

// Invalidate sends one invalidation batch to the replica's
// /v2/invalidate endpoint and returns the number of cached horizons it
// dropped.
func (c *Client) Invalidate(ctx context.Context, edges [][2]string, all bool) (int, error) {
	in := struct {
		Edges [][2]string `json:"edges"`
		All   bool        `json:"all"`
	}{Edges: edges, All: all}
	var out struct {
		Dropped int `json:"dropped"`
	}
	if err := c.post(ctx, "/v2/invalidate", in, &out); err != nil {
		return 0, err
	}
	return out.Dropped, nil
}

// SnapshotReader opens the replica's bootstrap export (GET
// /v2/snapshot): the returned reader streams the binary snapshot and
// the LSN is the replication cursor it is pinned at. The caller owns
// closing the reader. Unlike the query calls, no per-attempt timeout is
// layered on — a bootstrap transfer legitimately outlives the RPC
// budget — so the caller's ctx is the only bound.
func (c *Client) SnapshotReader(ctx context.Context) (io.ReadCloser, uint64, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v2/snapshot", nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return nil, 0, unavailablef("%s /v2/snapshot: %v", c.base, err)
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, 0, unavailablef("%s /v2/snapshot: status %d: %s", c.base, resp.StatusCode, wireErrMessage(resp.Body))
	}
	lsn, err := strconv.ParseUint(resp.Header.Get("X-Snapshot-LSN"), 10, 64)
	if err != nil {
		resp.Body.Close()
		return nil, 0, unavailablef("%s /v2/snapshot: bad X-Snapshot-LSN %q", c.base, resp.Header.Get("X-Snapshot-LSN"))
	}
	return resp.Body, lsn, nil
}

// ImportSnapshot streams a bootstrap snapshot into the replica (POST
// /v2/snapshot), replacing its entire state; returns the replica's
// cursor after the import (the stream's pinned LSN). Caller's ctx is
// the only time bound (see SnapshotReader).
func (c *Client) ImportSnapshot(ctx context.Context, r io.Reader) (uint64, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v2/snapshot", r)
	if err != nil {
		return 0, err
	}
	hreq.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return 0, unavailablef("%s /v2/snapshot: %v", c.base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, unavailablef("%s /v2/snapshot: status %d: %s", c.base, resp.StatusCode, wireErrMessage(resp.Body))
	}
	var out appliedAck
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, unavailablef("%s /v2/snapshot: decoding response: %v", c.base, err)
	}
	return out.AppliedLSN, nil
}

// CachedSeekers lists the replica's resident cached seekers (GET
// /v2/cache/seekers), hottest first per shard — the enumeration half
// of the resize pre-warm.
func (c *Client) CachedSeekers(ctx context.Context) ([]string, error) {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v2/cache/seekers", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return nil, unavailablef("%s /v2/cache/seekers: %v", c.base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, unavailablef("%s /v2/cache/seekers: status %d", c.base, resp.StatusCode)
	}
	var out struct {
		Seekers []string `json:"seekers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, unavailablef("%s /v2/cache/seekers: decoding response: %v", c.base, err)
	}
	return out.Seekers, nil
}

// WarmSeekers asks the replica to materialize the given seekers'
// horizons into its cache (POST /v2/cache/warm) and returns how many
// were installed. Caller's ctx is the only time bound — warming a large
// slice legitimately outlives one RPC budget.
func (c *Client) WarmSeekers(ctx context.Context, seekers []string) (int, error) {
	in := struct {
		Seekers []string `json:"seekers"`
	}{Seekers: seekers}
	body, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v2/cache/warm", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return 0, unavailablef("%s /v2/cache/warm: %v", c.base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, unavailablef("%s /v2/cache/warm: status %d: %s", c.base, resp.StatusCode, wireErrMessage(resp.Body))
	}
	var out struct {
		Warmed int `json:"warmed"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, unavailablef("%s /v2/cache/warm: decoding response: %v", c.base, err)
	}
	return out.Warmed, nil
}

// Users fetches the replica's known user names.
func (c *Client) Users(ctx context.Context) ([]string, error) {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/users", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return nil, unavailablef("%s /v1/users: %v", c.base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, unavailablef("%s /v1/users: status %d", c.base, resp.StatusCode)
	}
	var out struct {
		Users []string `json:"users"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, unavailablef("%s /v1/users: decoding response: %v", c.base, err)
	}
	return out.Users, nil
}
