package monitor

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/overlay"
	"repro/internal/proximity"
	"repro/internal/tagstore"
	"repro/internal/topk"
)

// world builds a 4-user chain (0-1-2, 3 isolated) with two tags and a
// monitor over it.
func world(t *testing.T) *Monitor {
	t.Helper()
	gb := graph.NewBuilder(4)
	gb.AddEdge(0, 1, 0.5)
	gb.AddEdge(1, 2, 0.5)
	g, err := gb.Build()
	if err != nil {
		t.Fatal(err)
	}
	tb := tagstore.NewBuilder(4, 6, 2)
	tb.Add(0, 0, 0)
	tb.AddCount(1, 1, 0, 2)
	tb.Add(2, 2, 1)
	store, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	o, err := overlay.New(g, store)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := overlay.NewEngine(o, core.Config{
		Proximity: proximity.Params{Alpha: 1, SelfWeight: 1},
		Beta:      1,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(eng)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSubscribeDeliversInitialAnswer(t *testing.T) {
	m := world(t)
	var got []Update
	id, err := m.Subscribe(core.Query{Seeker: 0, Tags: []tagstore.TagID{0}, K: 2}, core.Options{},
		func(u Update) { got = append(got, u) })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !got[0].First || got[0].SubID != id {
		t.Fatalf("initial updates = %+v", got)
	}
	// u0 sees i0 (σ=1, tf 1) and i1 (σ=0.5, tf 2): both score 1.
	if len(got[0].Results) != 2 {
		t.Fatalf("initial results = %+v", got[0].Results)
	}
}

func TestTaggingTriggersAffectedSubscriptionOnly(t *testing.T) {
	m := world(t)
	var updatesA, updatesB int
	// Sub A watches tag 0, sub B watches tag 1.
	_, err := m.Subscribe(core.Query{Seeker: 0, Tags: []tagstore.TagID{0}, K: 2}, core.Options{},
		func(u Update) { updatesA++ })
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Subscribe(core.Query{Seeker: 0, Tags: []tagstore.TagID{1}, K: 2}, core.Options{},
		func(u Update) { updatesB++ })
	if err != nil {
		t.Fatal(err)
	}
	evalsAfterInit := m.Evaluations()

	// u1 re-tags item 1 with tag 0 (tf 2 → 3, i1's score rises to 1.5,
	// reordering A's answer): affects A, not B.
	if err := m.Tag(1, 1, 0); err != nil {
		t.Fatal(err)
	}
	n, err := m.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("re-evaluated %d subscriptions, want 1 (tag-0 only)", n)
	}
	if m.Evaluations() != evalsAfterInit+1 {
		t.Fatalf("evaluations = %d, want %d", m.Evaluations(), evalsAfterInit+1)
	}
	if updatesA != 2 { // initial + changed answer
		t.Fatalf("sub A updates = %d, want 2", updatesA)
	}
	if updatesB != 1 { // initial only
		t.Fatalf("sub B updates = %d, want 1", updatesB)
	}
}

func TestRefreshWithoutChangeDeliversNothing(t *testing.T) {
	m := world(t)
	updates := 0
	if _, err := m.Subscribe(core.Query{Seeker: 0, Tags: []tagstore.TagID{0}, K: 2}, core.Options{},
		func(Update) { updates++ }); err != nil {
		t.Fatal(err)
	}
	// No mutations: refresh is a no-op.
	if n, err := m.Refresh(); err != nil || n != 0 {
		t.Fatalf("Refresh = %d,%v, want 0,nil", n, err)
	}
	// A mutation outside the subscription's scope (isolated user 3 tags
	// with tag 1): re-evaluates nothing.
	if err := m.Tag(3, 4, 1); err != nil {
		t.Fatal(err)
	}
	if n, err := m.Refresh(); err != nil || n != 0 {
		t.Fatalf("Refresh after unrelated tag = %d,%v, want 0,nil", n, err)
	}
	if updates != 1 {
		t.Fatalf("updates = %d, want only the initial one", updates)
	}
}

func TestUnchangedAnswerSuppressesCallback(t *testing.T) {
	m := world(t)
	updates := 0
	// Seeker 0, k=1: the single best item is i0 or i1 at score 1.
	if _, err := m.Subscribe(core.Query{Seeker: 0, Tags: []tagstore.TagID{0}, K: 1}, core.Options{},
		func(Update) { updates++ }); err != nil {
		t.Fatal(err)
	}
	// A tag-0 action far from seeker 0's reach (isolated user 3): the
	// subscription is re-evaluated (tag matches) but the answer is
	// unchanged, so no callback fires.
	if err := m.Tag(3, 5, 0); err != nil {
		t.Fatal(err)
	}
	n, err := m.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("re-evaluated %d, want 1", n)
	}
	if updates != 1 {
		t.Fatalf("updates = %d: callback fired for an unchanged answer", updates)
	}
}

func TestBefriendAffectsEverySubscription(t *testing.T) {
	m := world(t)
	var last []topk.Result
	if _, err := m.Subscribe(core.Query{Seeker: 3, Tags: []tagstore.TagID{0}, K: 2}, core.Options{},
		func(u Update) { last = u.Results }); err != nil {
		t.Fatal(err)
	}
	if len(last) != 0 {
		t.Fatalf("isolated seeker's initial answer = %+v, want empty", last)
	}
	// Connect user 3 to user 1: suddenly u1's taggings are reachable.
	if err := m.Befriend(3, 1, 1.0); err != nil {
		t.Fatal(err)
	}
	n, err := m.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("re-evaluated %d, want 1", n)
	}
	if len(last) == 0 || last[0].Item != 1 {
		t.Fatalf("post-befriend answer = %+v, want i1 first (σ=1, tf=2)", last)
	}
}

func TestUnsubscribeStopsUpdates(t *testing.T) {
	m := world(t)
	updates := 0
	id, err := m.Subscribe(core.Query{Seeker: 0, Tags: []tagstore.TagID{0}, K: 2}, core.Options{},
		func(Update) { updates++ })
	if err != nil {
		t.Fatal(err)
	}
	m.Unsubscribe(id)
	if m.Subscriptions() != 0 {
		t.Fatalf("subscriptions = %d", m.Subscriptions())
	}
	if err := m.Tag(1, 3, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Refresh(); err != nil {
		t.Fatal(err)
	}
	if updates != 1 {
		t.Fatalf("updates after unsubscribe = %d", updates)
	}
	m.Unsubscribe(999) // unknown id: no-op
}

func TestValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("nil engine accepted")
	}
	m := world(t)
	if _, err := m.Subscribe(core.Query{Seeker: 0, Tags: []tagstore.TagID{0}, K: 1}, core.Options{}, nil); err == nil {
		t.Fatal("nil callback accepted")
	}
	// Invalid query fails at initial evaluation and is not registered.
	if _, err := m.Subscribe(core.Query{Seeker: 99, Tags: []tagstore.TagID{0}, K: 1}, core.Options{},
		func(Update) {}); err == nil {
		t.Fatal("bad seeker accepted")
	}
	if m.Subscriptions() != 0 {
		t.Fatal("failed subscription was registered")
	}
}

// TestMonitorMatchesFreshQuery: after an arbitrary mutation sequence
// and refresh, every subscription's last delivered answer must equal a
// fresh SocialMerge of the same query.
func TestMonitorMatchesFreshQuery(t *testing.T) {
	m := world(t)
	results := map[int][]topk.Result{}
	queries := map[int]core.Query{}
	for _, q := range []core.Query{
		{Seeker: 0, Tags: []tagstore.TagID{0}, K: 3},
		{Seeker: 2, Tags: []tagstore.TagID{0, 1}, K: 2},
		{Seeker: 1, Tags: []tagstore.TagID{1}, K: 4},
	} {
		q := q
		id, err := m.Subscribe(q, core.Options{}, func(u Update) { results[u.SubID] = u.Results })
		if err != nil {
			t.Fatal(err)
		}
		queries[id] = q
	}
	mutations := []func() error{
		func() error { return m.Tag(0, 3, 1) },
		func() error { return m.Tag(2, 4, 0) },
		func() error { return m.Befriend(0, 2, 0.9) },
		func() error { return m.Tag(1, 5, 1) },
	}
	for i, mut := range mutations {
		if err := mut(); err != nil {
			t.Fatalf("mutation %d: %v", i, err)
		}
		if _, err := m.Refresh(); err != nil {
			t.Fatal(err)
		}
	}
	for id, q := range queries {
		ans, err := m.eng.SocialMerge(q, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(results[id], ans.Results) {
			t.Fatalf("sub %d: monitored answer %+v != fresh answer %+v", id, results[id], ans.Results)
		}
	}
}
