// Package monitor maintains standing (continuous) top-k queries over a
// mutable dataset: subscribe a seeker's query once and get notified
// whenever mutations change its answer. This is the
// incremental-view-maintenance extension of the evaluation's
// future-work discussion.
//
// Design. The monitor interposes on the mutation path (Tag/Befriend)
// and records which query tags were touched and whether the graph
// changed. Refresh folds pending mutations into the queryable snapshot
// and re-evaluates only the *affected* subscriptions: a tagging action
// affects subscriptions whose tag set contains the tag; a friendship
// mutation conservatively affects every subscription (proximity is a
// global property of the graph). Unaffected subscriptions are not
// re-run — the Ext-8 experiment measures the saving against
// re-evaluate-everything.
package monitor

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/overlay"
	"repro/internal/tagstore"
	"repro/internal/topk"
)

// Update describes a change to one subscription's answer.
type Update struct {
	// SubID identifies the subscription.
	SubID int
	// Results is the new certified top-k.
	Results []topk.Result
	// First reports whether this is the initial evaluation.
	First bool
}

// Callback receives updates. Callbacks run synchronously inside
// Refresh (and Subscribe, for the initial evaluation); keep them
// short and do not call back into the monitor from them.
type Callback func(Update)

type subscription struct {
	id      int
	query   core.Query
	opts    core.Options
	cb      Callback
	tags    map[tagstore.TagID]bool
	last    []topk.Result
	hasLast bool
}

// Monitor tracks subscriptions over an overlay-backed engine. It is
// safe for concurrent use.
type Monitor struct {
	mu   sync.Mutex
	eng  *overlay.Engine
	subs map[int]*subscription
	next int

	// pending damage since the last Refresh
	dirtyTags  map[tagstore.TagID]bool
	graphDirty bool

	// evaluations counts query re-executions (for the experiment).
	evaluations int64
}

// New builds a monitor over an overlay engine. Mutations must flow
// through the monitor's Tag/Befriend for damage tracking to see them.
func New(eng *overlay.Engine) (*Monitor, error) {
	if eng == nil {
		return nil, errors.New("monitor: nil engine")
	}
	return &Monitor{
		eng:       eng,
		subs:      make(map[int]*subscription),
		dirtyTags: make(map[tagstore.TagID]bool),
	}, nil
}

// Subscribe registers a standing query and synchronously delivers its
// initial answer (Update.First = true). It returns the subscription id.
func (m *Monitor) Subscribe(q core.Query, opts core.Options, cb Callback) (int, error) {
	if cb == nil {
		return 0, errors.New("monitor: nil callback")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	s := &subscription{
		id:    m.next,
		query: q,
		opts:  opts,
		cb:    cb,
		tags:  make(map[tagstore.TagID]bool, len(q.Tags)),
	}
	for _, t := range q.Tags {
		s.tags[t] = true
	}
	ans, err := m.evaluate(s)
	if err != nil {
		return 0, fmt.Errorf("monitor: initial evaluation: %w", err)
	}
	m.next++
	m.subs[s.id] = s
	s.last = ans
	s.hasLast = true
	cb(Update{SubID: s.id, Results: ans, First: true})
	return s.id, nil
}

// Unsubscribe removes a subscription; unknown ids are a no-op.
func (m *Monitor) Unsubscribe(id int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.subs, id)
}

// Subscriptions reports the number of live subscriptions.
func (m *Monitor) Subscriptions() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.subs)
}

// Evaluations reports the cumulative number of query executions the
// monitor has performed (initial + refresh re-evaluations).
func (m *Monitor) Evaluations() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.evaluations
}

// Tag records a tagging action and marks the tag dirty.
func (m *Monitor) Tag(user graph.UserID, item tagstore.ItemID, tag tagstore.TagID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.eng.Tag(user, item, tag); err != nil {
		return err
	}
	m.dirtyTags[tag] = true
	return nil
}

// Befriend records a friendship mutation; proximity may change for any
// seeker, so every subscription becomes dirty.
func (m *Monitor) Befriend(u, v graph.UserID, weight float64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.eng.Befriend(u, v, weight); err != nil {
		return err
	}
	m.graphDirty = true
	return nil
}

// evaluate runs one subscription's query. Caller holds m.mu.
func (m *Monitor) evaluate(s *subscription) ([]topk.Result, error) {
	m.evaluations++
	ans, err := m.eng.SocialMerge(s.query, s.opts)
	if err != nil {
		return nil, err
	}
	return ans.Results, nil
}

// affected reports whether pending damage can change s's answer.
// Caller holds m.mu.
func (m *Monitor) affected(s *subscription) bool {
	if m.graphDirty {
		return true
	}
	for t := range m.dirtyTags {
		if s.tags[t] {
			return true
		}
	}
	return false
}

// Query runs a one-shot query on the current snapshot, outside any
// subscription (ad-hoc reads through the same engine).
func (m *Monitor) Query(q core.Query) (core.Answer, error) {
	return m.eng.SocialMerge(q, core.Options{})
}

// Refresh folds pending mutations into the snapshot, re-evaluates the
// affected subscriptions, and invokes callbacks for those whose answer
// changed. It returns how many subscriptions were re-evaluated.
func (m *Monitor) Refresh() (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.dirtyTags) == 0 && !m.graphDirty {
		return 0, nil
	}
	if err := m.eng.Compact(); err != nil {
		return 0, err
	}
	reevaluated := 0
	for _, s := range m.subs {
		if !m.affected(s) {
			continue
		}
		reevaluated++
		ans, err := m.evaluate(s)
		if err != nil {
			return reevaluated, fmt.Errorf("monitor: refreshing sub %d: %w", s.id, err)
		}
		if !s.hasLast || !sameResults(s.last, ans) {
			s.last = ans
			s.hasLast = true
			s.cb(Update{SubID: s.id, Results: ans})
		}
	}
	m.dirtyTags = make(map[tagstore.TagID]bool)
	m.graphDirty = false
	return reevaluated, nil
}

// sameResults compares answers as ordered (item, score) sequences.
func sameResults(a, b []topk.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Item != b[i].Item || a[i].Score != b[i].Score {
			return false
		}
	}
	return true
}
