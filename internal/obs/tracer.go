package obs

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/search"
)

// Config tunes a Tracer. The zero value is usable: 1-in-16 head
// sampling, 250ms slow threshold, 256 recorded traces, 64 slow
// queries.
type Config struct {
	// Node names this process in spans, logs and trace records (e.g.
	// "fe1" or "replica@:8081").
	Node string
	// SampleEvery head-samples 1 in N locally-initiated requests with
	// full span collection (1 = every request, 0 = default 16, < 0
	// disables head sampling; tail capture stays on regardless).
	SampleEvery int
	// SlowThreshold tail-captures any request at least this slow and
	// feeds the slow-query log (0 = default 250ms, < 0 disables).
	SlowThreshold time.Duration
	// RecorderCapacity is the flight recorder ring size in traces
	// (0 = default 256).
	RecorderCapacity int
	// SlowLogCapacity is the slow-query ring size (0 = default 64).
	SlowLogCapacity int
}

// Defaults substituted for zero Config fields.
const (
	DefaultSampleEvery      = 16
	DefaultSlowThreshold    = 250 * time.Millisecond
	DefaultRecorderCapacity = 256
	DefaultSlowLogCapacity  = 64
)

func (c Config) withDefaults() Config {
	if c.SampleEvery == 0 {
		c.SampleEvery = DefaultSampleEvery
	}
	if c.SlowThreshold == 0 {
		c.SlowThreshold = DefaultSlowThreshold
	}
	if c.RecorderCapacity <= 0 {
		c.RecorderCapacity = DefaultRecorderCapacity
	}
	if c.SlowLogCapacity <= 0 {
		c.SlowLogCapacity = DefaultSlowLogCapacity
	}
	return c
}

// Tracer owns sampling policy, the flight recorder and the slow-query
// log for one process. Safe for concurrent use.
type Tracer struct {
	cfg Config
	seq atomic.Uint64

	rec  recorder
	slow slowLog

	started      atomic.Int64
	sampledCount atomic.Int64
	tailCaptured atomic.Int64
	recorded     atomic.Int64
	droppedSpans atomic.Int64
	slowLogged   atomic.Int64
}

// NewTracer builds a tracer (zero Config fields take defaults).
func NewTracer(cfg Config) *Tracer {
	cfg = cfg.withDefaults()
	t := &Tracer{cfg: cfg}
	t.rec.buf = make([]TraceRecord, cfg.RecorderCapacity)
	t.slow.buf = make([]SlowQuery, cfg.SlowLogCapacity)
	return t
}

// Node returns the tracer's process identity.
func (t *Tracer) Node() string {
	if t == nil {
		return ""
	}
	return t.cfg.Node
}

// SlowThreshold returns the effective slow-request threshold (0 when
// disabled).
func (t *Tracer) SlowThreshold() time.Duration {
	if t == nil || t.cfg.SlowThreshold < 0 {
		return 0
	}
	return t.cfg.SlowThreshold
}

// Request is one HTTP request's tracing handle: the sampled trace (if
// any) plus what tail capture needs either way. The HTTP layer creates
// one per request via StartRequest and completes it with Finish.
type Request struct {
	t      *Tracer
	id     TraceID
	tr     *Trace // nil when unsampled
	root   *Span
	start  time.Time
	method string
	name   string
	// degraded is set by MarkDegraded from handler code so tail capture
	// sees brownout-degraded answers even unsampled.
	degraded atomic.Bool
}

// Sampled reports whether the request is head-sampled (full span
// collection active).
func (rq *Request) Sampled() bool { return rq != nil && rq.tr != nil }

// TraceID returns the request's trace id string (set even when
// unsampled, so log lines always carry one).
func (rq *Request) TraceID() string {
	if rq == nil {
		return ""
	}
	return rq.id.String()
}

// StartRequest begins tracing one inbound request. A well-formed
// sampled traceparent header adopts the caller's trace (and marks the
// trace for wire export — see WireSpans); otherwise a fresh trace id
// is minted and head sampling decides whether spans are collected.
// The returned context carries the root span when sampled and the
// request handle always; the returned Request is nil only when the
// tracer is nil.
func (t *Tracer) StartRequest(ctx context.Context, traceparent, method, path string) (context.Context, *Request) {
	if t == nil {
		return ctx, nil
	}
	now := time.Now()
	rq := &Request{t: t, start: now, method: method, name: path}
	var parent SpanID
	var sampled bool
	if tid, pspan, psampled, ok := ParseTraceparent(traceparent); ok {
		rq.id = tid
		parent = pspan
		sampled = psampled
		if sampled {
			rq.tr = &Trace{tracer: t, id: tid, wire: true, start: now}
		}
	} else {
		rq.id = NewTraceID()
		if n := t.cfg.SampleEvery; n > 0 && (t.seq.Add(1)-1)%uint64(n) == 0 {
			sampled = true
			rq.tr = &Trace{tracer: t, id: rq.id, start: now}
		}
	}
	t.started.Add(1)
	if rq.tr != nil {
		t.sampledCount.Add(1)
		rq.root = rq.tr.newSpan(path, parent)
		rq.root.SetAttr("method", method)
		ctx = context.WithValue(ctx, spanKey{}, rq.root)
	}
	return context.WithValue(ctx, reqKey{}, rq), rq
}

// FinishInfo summarizes one finished request for the access log.
type FinishInfo struct {
	TraceID    string
	Status     int
	DurationMS float64
	Sampled    bool
	Tail       bool // tail-captured: slow, error/shed status, or degraded
	Degraded   bool
}

// Finish completes the request: a sampled trace is exported into the
// flight recorder (and its spans recycled); an unsampled request that
// tripped tail capture — slow, degraded, or an error/shed/cancel
// status — is recorded as a synthesized single-span trace.
func (rq *Request) Finish(status int) FinishInfo {
	if rq == nil {
		return FinishInfo{}
	}
	t := rq.t
	now := time.Now()
	dur := now.Sub(rq.start)
	slow := t.cfg.SlowThreshold > 0 && dur >= t.cfg.SlowThreshold
	degraded := rq.degraded.Load()
	tail := slow || degraded || status >= 500 ||
		status == http.StatusTooManyRequests || status == 499
	info := FinishInfo{
		TraceID:    rq.id.String(),
		Status:     status,
		DurationMS: durationMS(dur),
		Sampled:    rq.tr != nil,
		Tail:       tail,
		Degraded:   degraded,
	}
	rec := TraceRecord{
		ID:         info.TraceID,
		Name:       rq.name,
		Node:       t.cfg.Node,
		Start:      rq.start,
		DurationMS: info.DurationMS,
		Status:     status,
		Sampled:    info.Sampled,
		Slow:       slow,
		Degraded:   degraded,
	}
	switch {
	case rq.tr != nil:
		rq.root.SetInt("status", int64(status))
		rq.root.End()
		rec.Spans, rec.DroppedSpans = rq.tr.finish(t.cfg.Node, now)
	case tail:
		// Synthesized single span: tail capture still answers "when,
		// how long, what status" for requests head sampling skipped.
		t.tailCaptured.Add(1)
		rec.Spans = []SpanData{{
			SpanID:     NewSpanID().String(),
			Name:       rq.name,
			Node:       t.cfg.Node,
			Start:      rq.start,
			DurationMS: info.DurationMS,
			Attrs: []Attr{
				{Key: "method", Value: rq.method},
				{Key: "tail_capture", Value: "true"},
			},
		}}
	default:
		return info
	}
	t.recorded.Add(1)
	t.rec.add(rec)
	return info
}

// RecordSlow appends one query to the slow-query log.
func (t *Tracer) RecordSlow(q SlowQuery) {
	if t == nil {
		return
	}
	t.slowLogged.Add(1)
	t.slow.add(q)
}

// Stats is the tracer's self-accounting, surfaced under /v1/stats and
// /metrics.
type Stats struct {
	Started      int64
	SampledCount int64
	TailCaptured int64
	Recorded     int64
	DroppedSpans int64
	SlowLogged   int64
	SampleEvery  int
	RecorderCap  int
}

// Stats snapshots the tracer's counters.
func (t *Tracer) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	return Stats{
		Started:      t.started.Load(),
		SampledCount: t.sampledCount.Load(),
		TailCaptured: t.tailCaptured.Load(),
		Recorded:     t.recorded.Load(),
		DroppedSpans: t.droppedSpans.Load(),
		SlowLogged:   t.slowLogged.Load(),
		SampleEvery:  t.cfg.SampleEvery,
		RecorderCap:  t.cfg.RecorderCapacity,
	}
}

// SpanData is one exported span: what the flight recorder stores,
// /debug/traces serves, and traced responses attach for cross-process
// stitching.
type SpanData struct {
	SpanID     string    `json:"span_id"`
	ParentID   string    `json:"parent_id,omitempty"`
	Name       string    `json:"name"`
	Node       string    `json:"node,omitempty"`
	Start      time.Time `json:"start"`
	DurationMS float64   `json:"duration_ms"`
	Attrs      []Attr    `json:"attrs,omitempty"`
}

// TraceRecord is one completed trace in the flight recorder.
type TraceRecord struct {
	ID           string     `json:"trace_id"`
	Name         string     `json:"name"`
	Node         string     `json:"node,omitempty"`
	Start        time.Time  `json:"start"`
	DurationMS   float64    `json:"duration_ms"`
	Status       int        `json:"status"`
	Sampled      bool       `json:"sampled"`
	Slow         bool       `json:"slow,omitempty"`
	Degraded     bool       `json:"degraded,omitempty"`
	DroppedSpans int        `json:"dropped_spans,omitempty"`
	Spans        []SpanData `json:"spans"`
}

// TraceSummary is one /debug/traces listing entry.
type TraceSummary struct {
	ID         string    `json:"trace_id"`
	Name       string    `json:"name"`
	Start      time.Time `json:"start"`
	DurationMS float64   `json:"duration_ms"`
	Status     int       `json:"status"`
	Sampled    bool      `json:"sampled"`
	Slow       bool      `json:"slow,omitempty"`
	Degraded   bool      `json:"degraded,omitempty"`
	Spans      int       `json:"spans"`
}

// recorder is the flight recorder ring: fixed capacity, newest
// overwrites oldest.
type recorder struct {
	mu   sync.Mutex
	buf  []TraceRecord
	next int
	n    int
}

func (r *recorder) add(rec TraceRecord) {
	r.mu.Lock()
	r.buf[r.next] = rec
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// list returns summaries newest-first.
func (r *recorder) list() []TraceSummary {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TraceSummary, 0, r.n)
	for i := 0; i < r.n; i++ {
		rec := &r.buf[(r.next-1-i+2*len(r.buf))%len(r.buf)]
		out = append(out, TraceSummary{
			ID: rec.ID, Name: rec.Name, Start: rec.Start,
			DurationMS: rec.DurationMS, Status: rec.Status,
			Sampled: rec.Sampled, Slow: rec.Slow, Degraded: rec.Degraded,
			Spans: len(rec.Spans),
		})
	}
	return out
}

// get returns the newest record with the given trace id.
func (r *recorder) get(id string) (TraceRecord, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := 0; i < r.n; i++ {
		rec := r.buf[(r.next-1-i+2*len(r.buf))%len(r.buf)]
		if rec.ID == id {
			return rec, true
		}
	}
	return TraceRecord{}, false
}

// SlowQuery is one slow-query log entry: the query's shape, its
// duration, and the engine's Explain payload when one was available
// (the client asked for it, or sampling forced it).
type SlowQuery struct {
	Time       time.Time       `json:"time"`
	TraceID    string          `json:"trace_id,omitempty"`
	Seeker     string          `json:"seeker"`
	Tags       []string        `json:"tags"`
	K          int             `json:"k"`
	Mode       string          `json:"mode"`
	DurationMS float64         `json:"duration_ms"`
	Explain    *search.Explain `json:"explain,omitempty"`
}

type slowLog struct {
	mu   sync.Mutex
	buf  []SlowQuery
	next int
	n    int
}

func (l *slowLog) add(q SlowQuery) {
	l.mu.Lock()
	l.buf[l.next] = q
	l.next = (l.next + 1) % len(l.buf)
	if l.n < len(l.buf) {
		l.n++
	}
	l.mu.Unlock()
}

func (l *slowLog) list() []SlowQuery {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowQuery, 0, l.n)
	for i := 0; i < l.n; i++ {
		out = append(out, l.buf[(l.next-1-i+2*len(l.buf))%len(l.buf)])
	}
	return out
}

// SlowQueries returns the slow-query log, newest first.
func (t *Tracer) SlowQueries() []SlowQuery {
	if t == nil {
		return nil
	}
	return t.slow.list()
}

// Traces returns flight-recorder summaries, newest first.
func (t *Tracer) Traces() []TraceSummary {
	if t == nil {
		return nil
	}
	return t.rec.list()
}

// TraceByID returns the newest recorded trace with the given id.
func (t *Tracer) TraceByID(id string) (TraceRecord, bool) {
	if t == nil {
		return TraceRecord{}, false
	}
	return t.rec.get(id)
}

// TracesHandler serves GET /debug/traces (the listing) and
// GET /debug/traces/{id} (one full trace). Mount it at /debug/traces
// and /debug/traces/ on the same mux.
func (t *Tracer) TracesHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		id := strings.Trim(strings.TrimPrefix(r.URL.Path, "/debug/traces"), "/")
		w.Header().Set("Content-Type", "application/json")
		if id == "" {
			json.NewEncoder(w).Encode(map[string]interface{}{"traces": t.rec.list()})
			return
		}
		rec, ok := t.rec.get(id)
		if !ok {
			w.WriteHeader(http.StatusNotFound)
			json.NewEncoder(w).Encode(map[string]string{"error": "no recorded trace " + id})
			return
		}
		json.NewEncoder(w).Encode(rec)
	})
}

// SlowLogHandler serves GET /debug/slowlog.
func (t *Tracer) SlowLogHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]interface{}{
			"threshold_ms": durationMS(t.SlowThreshold()),
			"queries":      t.slow.list(),
		})
	})
}
