// Package obs is the serving stack's observability plane: W3C
// traceparent-style request tracing with pooled, sampling-gated spans;
// an in-process flight recorder (a fixed-size ring of completed
// traces, head-sampled plus tail-captured slow/shed/degraded/error
// requests); a slow-query log that keeps the engine's Explain payload
// for offending queries; a Prometheus text-format exposition writer
// over the existing stats structs; structured (text or JSON) logging;
// and build/runtime identification.
//
// The package is engineered around the repo's allocation discipline:
// when no trace rides the context — tracing disabled, or the request
// not sampled — every tracing call is a nil-safe no-op that performs
// zero heap allocations, so the warm cached read path keeps its
// 0 allocs/op guarantee. Span storage is pooled and recycled when a
// trace leaves the flight recorder's export path.
//
// Identifiers follow the W3C trace-context shape (a 16-byte trace id,
// 8-byte span ids, a sampled flag) carried in the "traceparent"
// header:
//
//	traceparent: 00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01
//
// Only version 00 and the sampled flag are implemented — enough to
// stitch one request's spans across the front-end, the quorum
// transport and the replica fleet, while staying dependency-free.
package obs

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync/atomic"
)

// TraceID identifies one end-to-end request across processes.
type TraceID [16]byte

// SpanID identifies one span within a trace.
type SpanID [8]byte

// IsZero reports whether the id is the invalid all-zero id.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the id is the invalid all-zero id.
func (s SpanID) IsZero() bool { return s == SpanID{} }

func (t TraceID) String() string { return hex.EncodeToString(t[:]) }
func (s SpanID) String() string  { return hex.EncodeToString(s[:]) }

// Id generation: a per-process random base mixed with an atomic
// counter through splitmix64. Collision resistance across a small
// fleet is what matters here, not unpredictability, and the counter
// keeps generation to one atomic add on the hot path.
var (
	idBase    [2]uint64
	idCounter atomic.Uint64
)

func init() {
	var seed [16]byte
	if _, err := rand.Read(seed[:]); err == nil {
		idBase[0] = binary.LittleEndian.Uint64(seed[0:8])
		idBase[1] = binary.LittleEndian.Uint64(seed[8:16])
	} else {
		// No entropy source: ids stay unique within the process, which
		// is all the flight recorder itself needs.
		idBase[0], idBase[1] = 0x9e3779b97f4a7c15, 0xbf58476d1ce4e5b9
	}
}

// splitmix64 is the SplitMix64 output function: a cheap bijective
// mixer whose consecutive-counter outputs look independent.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewTraceID mints a process-unique, fleet-collision-resistant trace
// id (never zero).
func NewTraceID() TraceID {
	n := idCounter.Add(1)
	var t TraceID
	binary.BigEndian.PutUint64(t[0:8], splitmix64(idBase[0]^n))
	binary.BigEndian.PutUint64(t[8:16], splitmix64(idBase[1]+n))
	if t.IsZero() {
		t[0] = 1
	}
	return t
}

// NewSpanID mints a span id (never zero).
func NewSpanID() SpanID {
	n := idCounter.Add(1)
	var s SpanID
	binary.BigEndian.PutUint64(s[:], splitmix64(idBase[1]^(n<<1)))
	if s.IsZero() {
		s[0] = 1
	}
	return s
}

// TraceparentHeader is the propagation header name (lower-case, the
// W3C spelling; net/http canonicalizes on the wire either way).
const TraceparentHeader = "traceparent"

// FormatTraceparent renders the header value: version 00, the trace
// id, the caller's current span id, and flag 01 when sampled.
func FormatTraceparent(t TraceID, s SpanID, sampled bool) string {
	buf := make([]byte, 0, 55)
	buf = append(buf, '0', '0', '-')
	buf = hex.AppendEncode(buf, t[:])
	buf = append(buf, '-')
	buf = hex.AppendEncode(buf, s[:])
	if sampled {
		buf = append(buf, '-', '0', '1')
	} else {
		buf = append(buf, '-', '0', '0')
	}
	return string(buf)
}

// ParseTraceparent reads a traceparent header value. ok reports a
// well-formed version-00 header with a non-zero trace id; sampled is
// bit 0 of the flags octet. Malformed or foreign-version headers are
// ignored (ok=false) — the receiver then mints a fresh trace, which is
// the W3C-prescribed recovery.
func ParseTraceparent(h string) (t TraceID, parent SpanID, sampled, ok bool) {
	// 00-<32 hex>-<16 hex>-<2 hex>
	if len(h) != 55 || h[0] != '0' || h[1] != '0' || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return TraceID{}, SpanID{}, false, false
	}
	if _, err := hex.Decode(t[:], []byte(h[3:35])); err != nil {
		return TraceID{}, SpanID{}, false, false
	}
	if _, err := hex.Decode(parent[:], []byte(h[36:52])); err != nil {
		return TraceID{}, SpanID{}, false, false
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(h[53:55])); err != nil {
		return TraceID{}, SpanID{}, false, false
	}
	if t.IsZero() {
		return TraceID{}, SpanID{}, false, false
	}
	return t, parent, flags[0]&1 != 0, true
}
