package obs

import (
	"context"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Attr is one span annotation. Values are strings on purpose: the
// flight recorder serves JSON to humans, and string-only attrs keep
// the span type flat and poolable.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed operation within a trace. Spans are created only
// on sampled requests, come from a pool, and are recycled when their
// trace is exported — callers must not retain a *Span past the
// request. Every method is nil-safe: the unsampled path hands callers
// a nil span and all annotation calls vanish without allocating.
type Span struct {
	tr     *Trace
	id     SpanID
	parent SpanID
	name   string
	start  time.Time
	end    time.Time // zero while open
	attrs  []Attr    // backing array reused across pool cycles
}

var spanPool = sync.Pool{New: func() interface{} { return new(Span) }}

// End closes the span. Calling End twice keeps the first end time.
func (s *Span) End() {
	if s == nil || !s.end.IsZero() {
		return
	}
	s.end = time.Now()
}

// SetAttr annotates the span. Only the goroutine that started the
// span may annotate it.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// SetInt annotates the span with an integer value.
func (s *Span) SetInt(key string, value int64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: strconv.FormatInt(value, 10)})
}

// SetBool annotates the span with a boolean value.
func (s *Span) SetBool(key string, value bool) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: strconv.FormatBool(value)})
}

// ID returns the span id (zero for a nil span).
func (s *Span) ID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.id
}

// maxTraceSpans bounds one trace's span count (local + merged remote)
// so a pathological request cannot balloon the recorder; overflow is
// counted, not silently dropped.
const maxTraceSpans = 512

// Trace collects one sampled request's spans. Spans may be started
// from many goroutines (batch workers, mutation fan-out), so the span
// list is mutex-guarded; individual span fields are only touched by
// the starting goroutine, with the request's final export ordered
// after every worker by the caller's own joins.
type Trace struct {
	tracer *Tracer
	id     TraceID
	// wire: the request arrived with a sampled traceparent, i.e. this
	// process is a participant in someone else's trace — its handlers
	// attach their span data to the response so the caller can stitch
	// the full cross-process picture.
	wire  bool
	start time.Time

	mu      sync.Mutex
	done    bool
	spans   []*Span
	remote  []SpanData
	dropped int
}

// newSpan starts a pooled span under the trace (nil when the trace is
// finished or at its span cap).
func (tr *Trace) newSpan(name string, parent SpanID) *Span {
	tr.mu.Lock()
	if tr.done || len(tr.spans)+len(tr.remote) >= maxTraceSpans {
		tr.dropped++
		tr.mu.Unlock()
		if tr.tracer != nil {
			tr.tracer.droppedSpans.Add(1)
		}
		return nil
	}
	sp := spanPool.Get().(*Span)
	sp.tr = tr
	sp.id = NewSpanID()
	sp.parent = parent
	sp.name = name
	sp.start = time.Now()
	sp.end = time.Time{}
	sp.attrs = sp.attrs[:0]
	tr.spans = append(tr.spans, sp)
	tr.mu.Unlock()
	return sp
}

// exportLocked renders the trace's spans (local first, then merged
// remote ones) into wire/recorder form. Open spans — typically the
// root, exported before the response is written — get their duration
// as of now. Caller holds tr.mu.
func (tr *Trace) exportLocked(node string, now time.Time) []SpanData {
	out := make([]SpanData, 0, len(tr.spans)+len(tr.remote))
	for _, sp := range tr.spans {
		end := sp.end
		if end.IsZero() {
			end = now
		}
		var attrs []Attr
		if len(sp.attrs) > 0 {
			attrs = append([]Attr(nil), sp.attrs...)
		}
		out = append(out, SpanData{
			SpanID:     sp.id.String(),
			ParentID:   parentString(sp.parent),
			Name:       sp.name,
			Node:       node,
			Start:      sp.start,
			DurationMS: durationMS(end.Sub(sp.start)),
			Attrs:      attrs,
		})
	}
	out = append(out, tr.remote...)
	return out
}

func parentString(p SpanID) string {
	if p.IsZero() {
		return ""
	}
	return p.String()
}

func durationMS(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}

// finish exports the trace one final time and recycles its spans.
func (tr *Trace) finish(node string, now time.Time) (spans []SpanData, dropped int) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.done {
		return nil, tr.dropped
	}
	spans = tr.exportLocked(node, now)
	dropped = tr.dropped
	tr.done = true
	for i, sp := range tr.spans {
		sp.tr = nil
		spanPool.Put(sp)
		tr.spans[i] = nil
	}
	tr.spans = nil
	tr.remote = nil
	return spans, dropped
}

// Context plumbing. Two typed keys ride the request context:
// spanKey holds the current span of a SAMPLED request (the whole
// tracing fast path keys off its absence), reqKey holds the
// per-request handle the HTTP layer uses for tail capture even when
// the request is not sampled. Both lookups are allocation-free.
type (
	spanKey struct{}
	reqKey  struct{}
)

// CurrentSpan returns the context's active span, nil when the request
// is untraced or unsampled.
func CurrentSpan(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// FromContext returns the context's active trace (nil when unsampled
// or untraced).
func FromContext(ctx context.Context) *Trace {
	if sp := CurrentSpan(ctx); sp != nil {
		return sp.tr
	}
	return nil
}

// StartSpan starts a child of the context's current span and returns
// a derived context carrying it. Without an active sampled trace it
// returns ctx unchanged and a nil span — zero allocations — so
// engine-level callers thread tracing unconditionally.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent, _ := ctx.Value(spanKey{}).(*Span)
	if parent == nil || parent.tr == nil {
		return ctx, nil
	}
	sp := parent.tr.newSpan(name, parent.id)
	if sp == nil {
		return ctx, nil
	}
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// Traceparent renders the outgoing propagation header for the
// context's current position in its trace ("" when unsampled — an
// unsampled request deliberately propagates nothing, keeping the
// downstream wire byte-identical to an untraced deployment).
func Traceparent(ctx context.Context) string {
	sp := CurrentSpan(ctx)
	if sp == nil || sp.tr == nil {
		return ""
	}
	return FormatTraceparent(sp.tr.id, sp.id, true)
}

// Inject adds the traceparent header to an outgoing request's headers
// when the context carries a sampled trace.
func Inject(ctx context.Context, h http.Header) {
	if tp := Traceparent(ctx); tp != "" {
		h.Set(TraceparentHeader, tp)
	}
}

// MergeRemote folds span data returned by a downstream process (a
// replica answering a traced request) into the context's trace. Safe
// to call from hedged or raced attempts: merges into a finished trace
// are dropped, and the span cap applies. Callers that outlive the
// request (detached replication pushes) must capture the *Trace with
// FromContext while the request is live and use Trace.Merge instead —
// the context's span is recycled when the trace finishes.
func MergeRemote(ctx context.Context, spans []SpanData) {
	FromContext(ctx).Merge(spans)
}

// Merge folds downstream span data into the trace. Nil-safe, and safe
// to call after the trace finished (the merge is dropped) — unlike a
// context lookup, a retained *Trace stays valid past the request.
func (tr *Trace) Merge(spans []SpanData) {
	if tr == nil || len(spans) == 0 {
		return
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.done {
		return
	}
	for _, sd := range spans {
		if len(tr.spans)+len(tr.remote) >= maxTraceSpans {
			tr.dropped++
			if tr.tracer != nil {
				tr.tracer.droppedSpans.Add(1)
			}
			continue
		}
		tr.remote = append(tr.remote, sd)
	}
}

// WireSpans exports the trace's span data for attaching to a response
// body — but only when the request arrived as part of a distributed
// trace (a sampled traceparent header). Locally-initiated requests
// return nil, keeping client-facing response bytes identical whether
// or not head sampling picked the request.
func WireSpans(ctx context.Context) []SpanData {
	tr := FromContext(ctx)
	if tr == nil || !tr.wire {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.done {
		return nil
	}
	return tr.exportLocked(tr.nodeLocked(), time.Now())
}

// nodeLocked names the process for exported spans.
func (tr *Trace) nodeLocked() string {
	if tr.tracer != nil {
		return tr.tracer.cfg.Node
	}
	return ""
}

// MarkDegraded records that the request's answer was served degraded
// (brownout), so tail capture picks it up even when unsampled.
func MarkDegraded(ctx context.Context) {
	if rq, _ := ctx.Value(reqKey{}).(*Request); rq != nil {
		rq.degraded.Store(true)
	}
}

// RequestFromContext returns the per-request tracing handle installed
// by Tracer.StartRequest (nil when the server has no tracer).
func RequestFromContext(ctx context.Context) *Request {
	rq, _ := ctx.Value(reqKey{}).(*Request)
	return rq
}
