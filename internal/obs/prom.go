package obs

import (
	"fmt"
	"io"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/metrics"
)

// WriteProm renders an arbitrary stats value — the same structs
// /v1/stats serves — in the Prometheus text exposition format (one
// `name{labels} value` sample per line). It walks the value by
// reflection so every existing and future counter surfaces without a
// hand-maintained registry:
//
//   - struct fields extend the metric name with their snake_cased
//     field name; numeric fields become samples, bools become 0/1
//   - time.Duration fields become <name>_seconds
//   - metrics.HistogramSnapshot becomes quantile-labeled
//     <name>_seconds samples plus <name>_count and <name>_max_seconds
//   - slice elements are labeled (replicas → {replica="3"}), maps by
//     sorted key ({key="..."})
//   - a struct with string fields additionally emits one
//     <name>_info{field="value",...} 1 sample, so identity strings
//     (URLs, roles, states) surface as labels, the Prometheus idiom
//
// Output is deterministic for a fixed input: field order is source
// order, map keys are sorted.
func WriteProm(w io.Writer, prefix string, v interface{}) {
	p := promWriter{w: w}
	p.walk(reflect.ValueOf(v), sanitizeMetricName(prefix), nil)
}

// PromContentType is the exposition content type.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

type promLabel struct{ key, value string }

type promWriter struct {
	w io.Writer
}

var (
	durationType = reflect.TypeOf(time.Duration(0))
	timeType     = reflect.TypeOf(time.Time{})
	histType     = reflect.TypeOf(metrics.HistogramSnapshot{})
)

func (p *promWriter) walk(v reflect.Value, name string, labels []promLabel) {
	if !v.IsValid() {
		return
	}
	switch v.Kind() {
	case reflect.Ptr, reflect.Interface:
		if v.IsNil() {
			return
		}
		p.walk(v.Elem(), name, labels)
	case reflect.Struct:
		switch v.Type() {
		case timeType:
			return // point-in-time fields are not gauges
		case histType:
			p.histogram(v.Interface().(metrics.HistogramSnapshot), name, labels)
			return
		}
		p.structInfo(v, name, labels)
		for i := 0; i < v.NumField(); i++ {
			f := v.Type().Field(i)
			if !f.IsExported() {
				continue
			}
			p.walk(v.Field(i), name+"_"+sanitizeMetricName(snakeCase(f.Name)), labels)
		}
	case reflect.Slice, reflect.Array:
		if v.Kind() == reflect.Slice && v.IsNil() {
			return
		}
		lk := elementLabel(name)
		for i := 0; i < v.Len(); i++ {
			p.walk(v.Index(i), name, append(labels[:len(labels):len(labels)],
				promLabel{key: lk, value: strconv.Itoa(i)}))
		}
	case reflect.Map:
		if v.IsNil() || v.Type().Key().Kind() != reflect.String {
			return
		}
		keys := make([]string, 0, v.Len())
		for _, k := range v.MapKeys() {
			keys = append(keys, k.String())
		}
		sort.Strings(keys)
		for _, k := range keys {
			p.walk(v.MapIndex(reflect.ValueOf(k)), name, append(labels[:len(labels):len(labels)],
				promLabel{key: "key", value: k}))
		}
	case reflect.Bool:
		val := 0.0
		if v.Bool() {
			val = 1
		}
		p.sample(name, labels, val)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		if v.Type() == durationType {
			p.sample(name+"_seconds", labels, time.Duration(v.Int()).Seconds())
			return
		}
		p.sample(name, labels, float64(v.Int()))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		p.sample(name, labels, float64(v.Uint()))
	case reflect.Float32, reflect.Float64:
		p.sample(name, labels, v.Float())
	}
	// Strings are handled by structInfo; everything else is skipped.
}

// structInfo emits one <name>_info sample labeling the struct's
// immediate string fields, when it has any.
func (p *promWriter) structInfo(v reflect.Value, name string, labels []promLabel) {
	var info []promLabel
	for i := 0; i < v.NumField(); i++ {
		f := v.Type().Field(i)
		if !f.IsExported() || v.Field(i).Kind() != reflect.String {
			continue
		}
		if s := v.Field(i).String(); s != "" {
			info = append(info, promLabel{key: sanitizeLabelName(snakeCase(f.Name)), value: s})
		}
	}
	if len(info) == 0 {
		return
	}
	p.sample(name+"_info", append(labels[:len(labels):len(labels)], info...), 1)
}

func (p *promWriter) histogram(h metrics.HistogramSnapshot, name string, labels []promLabel) {
	base := len(labels)
	q := func(quantile string, d time.Duration) {
		p.sample(name+"_seconds", append(labels[:base:base],
			promLabel{key: "quantile", value: quantile}), d.Seconds())
	}
	q("0.5", h.P50)
	q("0.95", h.P95)
	q("0.99", h.P99)
	q("0.999", h.P999)
	p.sample(name+"_count", labels, float64(h.Count))
	p.sample(name+"_max_seconds", labels, h.Max.Seconds())
}

func (p *promWriter) sample(name string, labels []promLabel, value float64) {
	var sb strings.Builder
	sb.WriteString(name)
	if len(labels) > 0 {
		sb.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(l.key)
			sb.WriteString(`="`)
			sb.WriteString(escapeLabelValue(l.value))
			sb.WriteByte('"')
		}
		sb.WriteByte('}')
	}
	fmt.Fprintf(p.w, "%s %s\n", sb.String(), strconv.FormatFloat(value, 'g', -1, 64))
}

func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// elementLabel names the index label of a slice metric: "replicas"
// elements get replica="i", anything else idx="i".
func elementLabel(name string) string {
	if i := strings.LastIndexByte(name, '_'); i >= 0 {
		name = name[i+1:]
	}
	if strings.HasSuffix(name, "s") && len(name) > 1 {
		return name[:len(name)-1]
	}
	return "idx"
}

// snakeCase converts a Go exported name to snake_case, keeping
// acronym runs intact: OKOnDeadline → ok_on_deadline, AppliedLSN →
// applied_lsn, P99 → p99.
func snakeCase(s string) string {
	var sb strings.Builder
	rs := []rune(s)
	for i, r := range rs {
		if r >= 'A' && r <= 'Z' {
			// Word boundary: previous is lower/digit, or this upper run
			// ends here (next rune is lower).
			if i > 0 {
				prevLower := rs[i-1] >= 'a' && rs[i-1] <= 'z' || rs[i-1] >= '0' && rs[i-1] <= '9'
				nextLower := i+1 < len(rs) && rs[i+1] >= 'a' && rs[i+1] <= 'z'
				if prevLower || (nextLower && rs[i-1] >= 'A' && rs[i-1] <= 'Z') {
					sb.WriteByte('_')
				}
			}
			sb.WriteRune(r - 'A' + 'a')
			continue
		}
		sb.WriteRune(r)
	}
	return sb.String()
}

func sanitizeMetricName(s string) string {
	return sanitize(s, func(r rune, first bool) bool {
		return r == '_' || r == ':' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' ||
			(!first && r >= '0' && r <= '9')
	})
}

func sanitizeLabelName(s string) string {
	return sanitize(s, func(r rune, first bool) bool {
		return r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' ||
			(!first && r >= '0' && r <= '9')
	})
}

func sanitize(s string, valid func(r rune, first bool) bool) string {
	var sb strings.Builder
	for i, r := range s {
		if valid(r, i == 0) {
			sb.WriteRune(r)
		} else {
			sb.WriteByte('_')
		}
	}
	if sb.Len() == 0 {
		return "_"
	}
	return sb.String()
}
