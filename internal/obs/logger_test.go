package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestLoggerJSON(t *testing.T) {
	var sb strings.Builder
	l := NewLogger(&sb, "json", "fe1")
	l.SetRole(func() string { return "leader" })
	l.Log("request", "trace_id", "abc", "status", 200, "duration_ms", 1.5, "sampled", true)

	line := strings.TrimSuffix(sb.String(), "\n")
	var m map[string]interface{}
	if err := json.Unmarshal([]byte(line), &m); err != nil {
		t.Fatalf("log line is not valid JSON: %v\n%s", err, line)
	}
	for k, want := range map[string]interface{}{
		"node": "fe1", "role": "leader", "msg": "request",
		"trace_id": "abc", "status": float64(200), "duration_ms": 1.5, "sampled": true,
	} {
		if m[k] != want {
			t.Errorf("field %q = %v (%T), want %v", k, m[k], m[k], want)
		}
	}
	if _, ok := m["ts"]; !ok {
		t.Error("JSON line missing ts")
	}
}

func TestLoggerText(t *testing.T) {
	var sb strings.Builder
	l := NewLogger(&sb, "text", "r1")
	l.Log("request", "trace_id", "abc", "path", "/v1/search?a b")
	line := sb.String()
	for _, want := range []string{"node=r1", "msg=request", "trace_id=abc", `path="/v1/search?a b"`} {
		if !strings.Contains(line, want) {
			t.Errorf("text line missing %q: %s", want, line)
		}
	}
	if strings.Contains(line, "role=") {
		t.Errorf("role emitted with no role callback: %s", line)
	}
}

func TestLoggerPrintfAndNil(t *testing.T) {
	var sb strings.Builder
	l := NewLogger(&sb, "json", "n")
	l.Printf("quorum: term %d: %s\n", 7, "became leader")
	var m map[string]interface{}
	if err := json.Unmarshal([]byte(sb.String()), &m); err != nil {
		t.Fatalf("Printf line not JSON: %v", err)
	}
	if m["msg"] != "quorum: term 7: became leader" {
		t.Fatalf("msg = %q", m["msg"])
	}

	var nilL *Logger
	nilL.Log("ignored")    // must not panic
	nilL.Printf("x %d", 1) // must not panic
	nilL.SetRole(nil)
}

func TestBuildInfo(t *testing.T) {
	b := NewBuild("fe1")
	info := b.Info()
	if info.Version == "" || info.GoVersion == "" || info.Node != "fe1" || info.PID == 0 {
		t.Fatalf("incomplete build info: %+v", info)
	}
	if info.GOMAXPROCS <= 0 {
		t.Fatalf("GOMAXPROCS = %d", info.GOMAXPROCS)
	}
	var nilB *Build
	if nilB.Info() != nil {
		t.Fatal("nil build must yield nil info")
	}
	nilB.SetHeaders(nil) // must not panic
}
