package obs

import (
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

func TestWriteProm(t *testing.T) {
	type inner struct {
		URL      string
		Healthy  bool
		Requests int64
	}
	type stats struct {
		Hits         int64
		HitRate      float64
		OKOnDeadline int64
		Wait         time.Duration
		Latency      metrics.HistogramSnapshot
		Replicas     []inner
		PerClass     map[string]int64
		Since        time.Time // must be skipped
	}
	v := stats{
		Hits:         42,
		HitRate:      0.75,
		OKOnDeadline: 7,
		Wait:         1500 * time.Millisecond,
		Latency: metrics.HistogramSnapshot{
			Count: 3, P50: 10 * time.Millisecond, P95: 20 * time.Millisecond,
			P99: 30 * time.Millisecond, P999: 40 * time.Millisecond, Max: 50 * time.Millisecond,
		},
		Replicas: []inner{{URL: "http://r0", Healthy: true, Requests: 5}},
		PerClass: map[string]int64{"b": 2, "a\"x": 1},
		Since:    time.Now(),
	}
	var sb strings.Builder
	WriteProm(&sb, "friendserve", v)
	out := sb.String()

	for _, want := range []string{
		"friendserve_hits 42\n",
		"friendserve_hit_rate 0.75\n",
		"friendserve_ok_on_deadline 7\n",
		"friendserve_wait_seconds 1.5\n",
		`friendserve_latency_seconds{quantile="0.5"} 0.01` + "\n",
		`friendserve_latency_seconds{quantile="0.999"} 0.04` + "\n",
		"friendserve_latency_count 3\n",
		"friendserve_latency_max_seconds 0.05\n",
		`friendserve_replicas_info{replica="0",url="http://r0"} 1` + "\n",
		`friendserve_replicas_healthy{replica="0"} 1` + "\n",
		`friendserve_replicas_requests{replica="0"} 5` + "\n",
		`friendserve_per_class{key="a\"x"} 1` + "\n",
		`friendserve_per_class{key="b"} 2` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\ngot:\n%s", want, out)
		}
	}
	if strings.Contains(out, "since") {
		t.Errorf("time.Time field leaked into exposition:\n%s", out)
	}
	// Sorted map keys ⇒ deterministic output.
	var sb2 strings.Builder
	WriteProm(&sb2, "friendserve", v)
	if sb2.String() != out {
		t.Fatal("exposition not deterministic across calls")
	}
	// Every line must be name{labels} value.
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if !promLineRE(line) {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

// promLineRE validates one exposition line without regexp: metric name,
// optional {labels}, space, float.
func promLineRE(line string) bool {
	name, rest, ok := cutAny(line)
	if !ok || name == "" {
		return false
	}
	for i, r := range name {
		alpha := r == '_' || r == ':' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z'
		if !(alpha || i > 0 && r >= '0' && r <= '9') {
			return false
		}
	}
	return rest != ""
}

// cutAny splits a sample line at the brace or the space preceding its
// value.
func cutAny(line string) (name, rest string, ok bool) {
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.LastIndexByte(line, '}')
		if j < i || j+2 > len(line) || line[j+1] != ' ' {
			return "", "", false
		}
		return line[:i], line[j+2:], true
	}
	name, rest, found := strings.Cut(line, " ")
	return name, rest, found
}

func TestSnakeCase(t *testing.T) {
	cases := map[string]string{
		"Hits":         "hits",
		"HitRate":      "hit_rate",
		"OKOnDeadline": "ok_on_deadline",
		"AppliedLSN":   "applied_lsn",
		"P99":          "p99",
		"HTTPStatus":   "http_status",
		"URL":          "url",
	}
	for in, want := range cases {
		if got := snakeCase(in); got != want {
			t.Errorf("snakeCase(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestEscapeLabelValue(t *testing.T) {
	if got := escapeLabelValue("a\"b\\c\nd"); got != `a\"b\\c\nd` {
		t.Fatalf("escapeLabelValue = %q", got)
	}
}
