package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Logger is the serving stack's structured logger: one line per event
// in logfmt-style text or JSON, every line stamped with the node id
// and (when known) the node's current quorum role. A nil *Logger is
// safe to use and logs nothing.
type Logger struct {
	mu     sync.Mutex
	w      io.Writer
	json   bool
	node   string
	roleFn func() string
	buf    []byte
}

// NewLogger builds a logger writing to w. format is "json" for
// one-object-per-line JSON, anything else for key=value text. node
// identifies this process (replica id, front-end id) on every line.
func NewLogger(w io.Writer, format, node string) *Logger {
	return &Logger{w: w, json: format == "json", node: node}
}

// SetRole installs a callback reporting the node's current quorum
// role ("leader", "follower", ...); called per log line, must be
// cheap and concurrency-safe.
func (l *Logger) SetRole(fn func() string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.roleFn = fn
	l.mu.Unlock()
}

// Node returns the logger's node id ("" for nil).
func (l *Logger) Node() string {
	if l == nil {
		return ""
	}
	return l.node
}

// Log emits one structured line. kv is alternating key, value pairs;
// values are rendered with %v (a trailing odd key gets an empty
// value).
func (l *Logger) Log(msg string, kv ...interface{}) {
	if l == nil {
		return
	}
	now := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	role := ""
	if l.roleFn != nil {
		role = l.roleFn()
	}
	b := l.buf[:0]
	if l.json {
		b = l.appendJSONLine(b, now, role, msg, kv)
	} else {
		b = l.appendTextLine(b, now, role, msg, kv)
	}
	b = append(b, '\n')
	l.buf = b
	l.w.Write(b)
}

// Printf adapts the logger to the log.Printf-shaped hooks the server
// and quorum layers already take; the formatted message lands in the
// msg field of one structured line.
func (l *Logger) Printf(format string, args ...interface{}) {
	if l == nil {
		return
	}
	l.Log(strings.TrimSuffix(fmt.Sprintf(format, args...), "\n"))
}

func (l *Logger) appendJSONLine(b []byte, now time.Time, role, msg string, kv []interface{}) []byte {
	b = append(b, `{"ts":`...)
	b = appendJSONString(b, now.Format(time.RFC3339Nano))
	b = append(b, `,"node":`...)
	b = appendJSONString(b, l.node)
	if role != "" {
		b = append(b, `,"role":`...)
		b = appendJSONString(b, role)
	}
	b = append(b, `,"msg":`...)
	b = appendJSONString(b, msg)
	for i := 0; i < len(kv); i += 2 {
		b = append(b, ',')
		b = appendJSONString(b, fmt.Sprint(kv[i]))
		b = append(b, ':')
		b = appendJSONValue(b, kvValue(kv, i))
	}
	return append(b, '}')
}

func (l *Logger) appendTextLine(b []byte, now time.Time, role, msg string, kv []interface{}) []byte {
	b = now.AppendFormat(b, "2006/01/02 15:04:05.000000")
	b = append(b, " node="...)
	b = appendTextValue(b, l.node)
	if role != "" {
		b = append(b, " role="...)
		b = appendTextValue(b, role)
	}
	b = append(b, " msg="...)
	b = appendTextValue(b, msg)
	for i := 0; i < len(kv); i += 2 {
		b = append(b, ' ')
		b = append(b, fmt.Sprint(kv[i])...)
		b = append(b, '=')
		b = appendTextValue(b, fmt.Sprint(kvValue(kv, i)))
	}
	return b
}

func kvValue(kv []interface{}, i int) interface{} {
	if i+1 < len(kv) {
		return kv[i+1]
	}
	return ""
}

func appendJSONString(b []byte, s string) []byte {
	enc, err := json.Marshal(s)
	if err != nil {
		return append(b, `""`...)
	}
	return append(b, enc...)
}

// appendJSONValue keeps numbers and bools as JSON scalars and renders
// everything else as a string.
func appendJSONValue(b []byte, v interface{}) []byte {
	switch x := v.(type) {
	case int, int8, int16, int32, int64, uint, uint8, uint16, uint32, uint64, bool:
		return append(b, fmt.Sprint(x)...)
	case float64:
		return strconv.AppendFloat(b, x, 'g', -1, 64)
	case float32:
		return strconv.AppendFloat(b, float64(x), 'g', -1, 32)
	default:
		return appendJSONString(b, fmt.Sprint(v))
	}
}

func appendTextValue(b []byte, s string) []byte {
	if strings.ContainsAny(s, " \t\n\"=") {
		return strconv.AppendQuote(b, s)
	}
	return append(b, s...)
}
