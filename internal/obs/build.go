package obs

import (
	"net/http"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"time"
)

// Build identifies the running binary for /healthz headers, the
// /v1/stats Build block and the Prometheus _info line — so operators
// can tell binaries apart during rolling experiments.
type Build struct {
	Version   string    `json:"version"`
	GoVersion string    `json:"go_version"`
	Node      string    `json:"node,omitempty"`
	PID       int       `json:"pid"`
	Started   time.Time `json:"started"`
}

// NewBuild captures the binary's identity at startup. Version comes
// from the module build info (VCS revision when stamped, module
// version otherwise, "devel" as the fallback).
func NewBuild(node string) *Build {
	b := &Build{
		Version:   "devel",
		GoVersion: runtime.Version(),
		Node:      node,
		PID:       os.Getpid(),
		Started:   time.Now(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		rev, modified := "", false
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				modified = s.Value == "true"
			}
		}
		switch {
		case rev != "":
			if len(rev) > 12 {
				rev = rev[:12]
			}
			if modified {
				rev += "-dirty"
			}
			b.Version = rev
		case bi.Main.Version != "" && bi.Main.Version != "(devel)":
			b.Version = bi.Main.Version
		}
	}
	return b
}

// BuildInfo is the serializable runtime snapshot derived from Build;
// uptime and GOMAXPROCS are sampled at call time.
type BuildInfo struct {
	Version       string  `json:"version"`
	GoVersion     string  `json:"go_version"`
	Node          string  `json:"node,omitempty"`
	PID           int     `json:"pid"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
}

// Info samples the current runtime state (nil-safe: returns nil).
func (b *Build) Info() *BuildInfo {
	if b == nil {
		return nil
	}
	return &BuildInfo{
		Version:       b.Version,
		GoVersion:     b.GoVersion,
		Node:          b.Node,
		PID:           b.PID,
		UptimeSeconds: time.Since(b.Started).Seconds(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
	}
}

// SetHeaders stamps the build identity onto a response (used by
// /healthz), nil-safe.
func (b *Build) SetHeaders(h http.Header) {
	if b == nil {
		return
	}
	h.Set("X-Build-Version", b.Version)
	h.Set("X-Go-Version", b.GoVersion)
	h.Set("X-Uptime-Seconds", strconv.FormatFloat(time.Since(b.Started).Seconds(), 'f', 1, 64))
	h.Set("X-Gomaxprocs", strconv.Itoa(runtime.GOMAXPROCS(0)))
}
