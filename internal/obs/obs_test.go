package obs

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tid, sid := NewTraceID(), NewSpanID()
	for _, sampled := range []bool{true, false} {
		h := FormatTraceparent(tid, sid, sampled)
		if len(h) != 55 {
			t.Fatalf("FormatTraceparent length = %d, want 55 (%q)", len(h), h)
		}
		gt, gs, gsampled, ok := ParseTraceparent(h)
		if !ok || gt != tid || gs != sid || gsampled != sampled {
			t.Fatalf("round trip of %q = (%v %v %v %v), want (%v %v %v true)",
				h, gt, gs, gsampled, ok, tid, sid, sampled)
		}
	}
}

func TestParseTraceparentMalformed(t *testing.T) {
	valid := FormatTraceparent(NewTraceID(), NewSpanID(), true)
	cases := map[string]string{
		"empty":         "",
		"truncated":     valid[:54],
		"too long":      valid + "0",
		"version 01":    "01" + valid[2:],
		"bad separator": valid[:35] + "_" + valid[36:],
		"non-hex trace": "00-zz" + valid[5:],
		"non-hex flags": valid[:53] + "zz",
		"zero trace id": "00-00000000000000000000000000000000-" + valid[36:],
	}
	for name, h := range cases {
		if _, _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("%s: ParseTraceparent(%q) ok, want rejection", name, h)
		}
	}
	// An unsampled flag octet is well-formed, just not sampled.
	if _, _, sampled, ok := ParseTraceparent(valid[:53] + "00"); !ok || sampled {
		t.Fatalf("flags 00: ok=%v sampled=%v, want ok and unsampled", ok, sampled)
	}
}

func TestIDsNeverZeroAndDistinct(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		tid, sid := NewTraceID(), NewSpanID()
		if tid.IsZero() || sid.IsZero() {
			t.Fatal("minted a zero id")
		}
		if seen[tid.String()] || seen[sid.String()] {
			t.Fatal("minted a duplicate id")
		}
		seen[tid.String()], seen[sid.String()] = true, true
	}
}

func TestHeadSamplingCadence(t *testing.T) {
	tr := NewTracer(Config{Node: "n1", SampleEvery: 4})
	sampled := 0
	for i := 0; i < 16; i++ {
		ctx, rq := tr.StartRequest(context.Background(), "", http.MethodGet, "/v1/search")
		if rq.TraceID() == "" {
			t.Fatal("every request must carry a trace id, sampled or not")
		}
		if rq.Sampled() {
			sampled++
			if CurrentSpan(ctx) == nil {
				t.Fatal("sampled request has no root span in context")
			}
		} else if CurrentSpan(ctx) != nil {
			t.Fatal("unsampled request has a span in context")
		}
		rq.Finish(http.StatusOK)
	}
	if sampled != 4 {
		t.Fatalf("sampled %d of 16 at 1-in-4, want 4", sampled)
	}
	if s := tr.Stats(); s.Started != 16 || s.SampledCount != 4 || s.Recorded != 4 {
		t.Fatalf("stats = %+v, want Started 16 SampledCount 4 Recorded 4", s)
	}

	off := NewTracer(Config{SampleEvery: -1})
	for i := 0; i < 8; i++ {
		_, rq := off.StartRequest(context.Background(), "", http.MethodGet, "/x")
		if rq.Sampled() {
			t.Fatal("negative SampleEvery must disable head sampling")
		}
		rq.Finish(http.StatusOK)
	}
}

func TestAdoptIncomingTraceparent(t *testing.T) {
	tr := NewTracer(Config{Node: "replica", SampleEvery: -1}) // head sampling off
	tid, psid := NewTraceID(), NewSpanID()

	// Sampled incoming header: adopt the trace, collect spans, export
	// them on the wire for the caller to stitch.
	ctx, rq := tr.StartRequest(context.Background(),
		FormatTraceparent(tid, psid, true), http.MethodPost, "/v2/search")
	if !rq.Sampled() || rq.TraceID() != tid.String() {
		t.Fatalf("sampled traceparent not adopted: sampled=%v id=%s", rq.Sampled(), rq.TraceID())
	}
	_, child := StartSpan(ctx, "social.execute")
	child.End()
	wire := WireSpans(ctx)
	if len(wire) != 2 {
		t.Fatalf("WireSpans returned %d spans, want 2 (root + child)", len(wire))
	}
	if wire[0].ParentID != psid.String() {
		t.Fatalf("adopted root's parent = %q, want caller's span %s", wire[0].ParentID, psid)
	}
	if wire[0].Node != "replica" {
		t.Fatalf("exported span node = %q, want replica", wire[0].Node)
	}
	rq.Finish(http.StatusOK)

	// Unsampled incoming header: keep the trace id for logs, no spans.
	ctx2, rq2 := tr.StartRequest(context.Background(),
		FormatTraceparent(tid, psid, false), http.MethodGet, "/v1/search")
	if rq2.Sampled() || rq2.TraceID() != tid.String() {
		t.Fatalf("flags-00 traceparent: sampled=%v id=%s, want unsampled with caller's id",
			rq2.Sampled(), rq2.TraceID())
	}
	if WireSpans(ctx2) != nil {
		t.Fatal("unsampled request exported wire spans")
	}
	rq2.Finish(http.StatusOK)
}

// TestWireSpansGatedOnIncoming: a locally-initiated sampled request
// must NOT attach spans to its response — clients see byte-identical
// bodies whether or not head sampling picked their request.
func TestWireSpansGatedOnIncoming(t *testing.T) {
	tr := NewTracer(Config{SampleEvery: 1})
	ctx, rq := tr.StartRequest(context.Background(), "", http.MethodGet, "/v1/search")
	if !rq.Sampled() {
		t.Fatal("SampleEvery 1 must sample every request")
	}
	if WireSpans(ctx) != nil {
		t.Fatal("locally-initiated trace exported wire spans")
	}
	rq.Finish(http.StatusOK)
}

func TestSpanTreeAndPropagation(t *testing.T) {
	tr := NewTracer(Config{Node: "fe1", SampleEvery: 1})
	ctx, rq := tr.StartRequest(context.Background(), "", http.MethodPost, "/v2/search")
	root := CurrentSpan(ctx)

	tp := Traceparent(ctx)
	gt, gs, sampled, ok := ParseTraceparent(tp)
	if !ok || !sampled || gt.String() != rq.TraceID() || gs != root.ID() {
		t.Fatalf("Traceparent(ctx) = %q, want sampled header for trace %s span %s", tp, rq.TraceID(), root.ID())
	}
	h := http.Header{}
	Inject(ctx, h)
	if h.Get(TraceparentHeader) != tp {
		t.Fatalf("Inject set %q, want %q", h.Get(TraceparentHeader), tp)
	}

	cctx, child := StartSpan(ctx, "fleet.rpc")
	child.SetAttr("replica", "http://r1")
	child.SetInt("attempt", 1)
	child.SetBool("hedged", false)
	MergeRemote(cctx, []SpanData{{SpanID: "aaaa", Name: "social.execute", Node: "r1"}})
	child.End()
	rq.Finish(http.StatusOK)

	rec, ok := tr.TraceByID(rq.TraceID())
	if !ok {
		t.Fatal("finished sampled trace not in the flight recorder")
	}
	if len(rec.Spans) != 3 {
		t.Fatalf("recorded %d spans, want 3 (root, child, remote)", len(rec.Spans))
	}
	if rec.Spans[1].ParentID != root.ID().String() {
		t.Fatalf("child parent = %q, want root %s", rec.Spans[1].ParentID, root.ID())
	}
	var attrs = map[string]string{}
	for _, a := range rec.Spans[1].Attrs {
		attrs[a.Key] = a.Value
	}
	if attrs["replica"] != "http://r1" || attrs["attempt"] != "1" || attrs["hedged"] != "false" {
		t.Fatalf("child attrs = %v", rec.Spans[1].Attrs)
	}
	if rec.Spans[2].Node != "r1" || rec.Spans[2].Name != "social.execute" {
		t.Fatalf("remote span not exported last: %+v", rec.Spans[2])
	}

	// A finished trace must drop late merges (hedge losers).
	MergeRemote(cctx, []SpanData{{SpanID: "bbbb"}})
	if rec2, _ := tr.TraceByID(rq.TraceID()); len(rec2.Spans) != 3 {
		t.Fatal("MergeRemote after finish mutated the recorded trace")
	}
}

func TestRecorderRingWraparound(t *testing.T) {
	tr := NewTracer(Config{SampleEvery: 1, RecorderCapacity: 4})
	var ids []string
	for i := 0; i < 6; i++ {
		_, rq := tr.StartRequest(context.Background(), "", http.MethodGet, "/v1/search")
		ids = append(ids, rq.TraceID())
		rq.Finish(http.StatusOK)
	}
	got := tr.Traces()
	if len(got) != 4 {
		t.Fatalf("recorder holds %d traces, want capacity 4", len(got))
	}
	for i, s := range got { // newest first
		if want := ids[5-i]; s.ID != want {
			t.Fatalf("traces[%d] = %s, want %s (newest-first)", i, s.ID, want)
		}
	}
	if _, ok := tr.TraceByID(ids[0]); ok {
		t.Fatal("evicted trace still retrievable")
	}
	if _, ok := tr.TraceByID(ids[5]); !ok {
		t.Fatal("newest trace not retrievable")
	}
}

func TestTailCaptureUnsampled(t *testing.T) {
	tr := NewTracer(Config{Node: "n", SampleEvery: -1})
	cases := []struct {
		status int
		mark   bool
		tail   bool
	}{
		{http.StatusOK, false, false},
		{http.StatusInternalServerError, false, true},
		{http.StatusTooManyRequests, false, true},
		{499, false, true},
		{http.StatusOK, true, true}, // degraded via MarkDegraded
	}
	want := 0
	for _, c := range cases {
		ctx, rq := tr.StartRequest(context.Background(), "", http.MethodGet, "/v2/search")
		if c.mark {
			MarkDegraded(ctx)
		}
		info := rq.Finish(c.status)
		if info.Tail != c.tail {
			t.Fatalf("status %d mark=%v: Tail = %v, want %v", c.status, c.mark, info.Tail, c.tail)
		}
		if c.tail {
			want++
			rec, ok := tr.TraceByID(info.TraceID)
			if !ok {
				t.Fatalf("status %d: tail-captured trace not recorded", c.status)
			}
			if len(rec.Spans) != 1 || rec.Sampled {
				t.Fatalf("synthesized record = %+v, want one span, unsampled", rec)
			}
			if c.mark && !rec.Degraded {
				t.Fatal("degraded mark lost in tail capture")
			}
		}
	}
	if got := len(tr.Traces()); got != want {
		t.Fatalf("recorded %d traces, want %d (only tail captures)", got, want)
	}
	if s := tr.Stats(); s.TailCaptured != int64(want) {
		t.Fatalf("TailCaptured = %d, want %d", s.TailCaptured, want)
	}
}

func TestSlowLogRing(t *testing.T) {
	tr := NewTracer(Config{SlowLogCapacity: 2})
	for i, seeker := range []string{"a", "b", "c"} {
		tr.RecordSlow(SlowQuery{Time: time.Now(), Seeker: seeker, DurationMS: float64(i)})
	}
	got := tr.SlowQueries()
	if len(got) != 2 || got[0].Seeker != "c" || got[1].Seeker != "b" {
		t.Fatalf("slow log = %+v, want [c b] (capacity 2, newest first)", got)
	}
}

func TestDebugHandlers(t *testing.T) {
	tr := NewTracer(Config{SampleEvery: 1})
	_, rq := tr.StartRequest(context.Background(), "", http.MethodGet, "/v1/search")
	rq.Finish(http.StatusOK)

	mux := http.NewServeMux()
	mux.Handle("/debug/traces", tr.TracesHandler())
	mux.Handle("/debug/traces/", tr.TracesHandler())
	mux.Handle("/debug/slowlog", tr.SlowLogHandler())
	ts := httptest.NewServer(mux)
	defer ts.Close()

	var listing struct {
		Traces []TraceSummary `json:"traces"`
	}
	getJSON(t, ts.URL+"/debug/traces", &listing)
	if len(listing.Traces) != 1 || listing.Traces[0].ID != rq.TraceID() {
		t.Fatalf("listing = %+v, want the one finished trace", listing)
	}
	var rec TraceRecord
	getJSON(t, ts.URL+"/debug/traces/"+rq.TraceID(), &rec)
	if rec.ID != rq.TraceID() || len(rec.Spans) != 1 {
		t.Fatalf("trace fetch = %+v", rec)
	}
	resp, err := http.Get(ts.URL + "/debug/traces/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace id: status %d, want 404", resp.StatusCode)
	}
	var slow struct {
		ThresholdMS float64     `json:"threshold_ms"`
		Queries     []SlowQuery `json:"queries"`
	}
	getJSON(t, ts.URL+"/debug/slowlog", &slow)
	if slow.ThresholdMS != 250 {
		t.Fatalf("slowlog threshold_ms = %v, want default 250", slow.ThresholdMS)
	}
}

func getJSON(t *testing.T, url string, into interface{}) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}

// TestUntracedPathZeroAlloc pins the tentpole's allocation guarantee:
// with no sampled trace on the context, the whole span API — StartSpan,
// annotation, End, Traceparent, WireSpans, MergeRemote — must not
// allocate. This is what keeps the warm cached read path at 0 allocs/op
// with tracing off or the request unsampled.
func TestUntracedPathZeroAlloc(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		c, sp := StartSpan(ctx, "social.execute")
		sp.SetAttr("seeker", "alice")
		sp.SetInt("k", 10)
		sp.SetBool("hit", true)
		sp.End()
		if Traceparent(c) != "" {
			t.Fatal("traceparent on untraced ctx")
		}
		if WireSpans(c) != nil {
			t.Fatal("wire spans on untraced ctx")
		}
		MergeRemote(c, nil)
		MarkDegraded(c)
	})
	if allocs != 0 {
		t.Fatalf("untraced span path allocates %v per op, want 0", allocs)
	}

	// Same guarantee through a context that carries an unsampled
	// request handle (tracer installed, head sampling skipped this one).
	tr := NewTracer(Config{SampleEvery: -1})
	uctx, rq := tr.StartRequest(context.Background(), "", http.MethodGet, "/v1/search")
	allocs = testing.AllocsPerRun(1000, func() {
		c, sp := StartSpan(uctx, "social.execute")
		sp.SetAttr("seeker", "alice")
		sp.End()
		if Traceparent(c) != "" {
			t.Fatal("traceparent on unsampled ctx")
		}
	})
	rq.Finish(http.StatusOK)
	if allocs != 0 {
		t.Fatalf("unsampled span path allocates %v per op, want 0", allocs)
	}
}

func TestSpanCapCountsDrops(t *testing.T) {
	tr := NewTracer(Config{SampleEvery: 1})
	ctx, rq := tr.StartRequest(context.Background(), "", http.MethodGet, "/x")
	for i := 0; i < maxTraceSpans+10; i++ {
		_, sp := StartSpan(ctx, "s")
		sp.End()
	}
	rq.Finish(http.StatusOK)
	rec, ok := tr.TraceByID(rq.TraceID())
	if !ok {
		t.Fatal("trace not recorded")
	}
	if len(rec.Spans) != maxTraceSpans {
		t.Fatalf("recorded %d spans, want cap %d", len(rec.Spans), maxTraceSpans)
	}
	if rec.DroppedSpans != 11 { // 10 over cap + root displaced one child
		t.Fatalf("DroppedSpans = %d, want 11", rec.DroppedSpans)
	}
}
