// Package proximity computes social proximity σ(s, v) between a seeker s
// and every other user v of the social network.
//
// The central abstraction is Iterator: an *incremental* best-first
// expansion of the network around the seeker that yields users in
// non-increasing proximity order, one at a time, with a certified upper
// bound on the proximity of every not-yet-yielded user. The core search
// algorithm (internal/core.SocialMerge) interleaves this iterator with
// posting-list accesses and uses the bound for early termination — this
// is what lets it answer personalized top-k queries after touching only a
// small neighbourhood of the seeker.
//
// The proximity function is the hop-damped maximum path product
//
//	σ(s, v) = max over paths p: s⇝v of  α^{|p|} · Π_{e∈p} w(e)
//
// with σ(s, s) = selfWeight. All factors lie in (0, 1], so σ is
// non-increasing along the frontier and the lazy Dijkstra expansion is
// correct and instance-optimal in the number of users settled.
//
// The package also provides batch computation, random-walk-with-restart
// proximity (an alternative σ used in ablations), and landmark sketches
// that give cheap upper bounds used by the pruned approximate variants.
package proximity

import (
	"fmt"
	"sync"

	"repro/internal/graph"
)

// Params configures the proximity function.
type Params struct {
	// Alpha is the per-hop damping factor in (0, 1]. 1 disables damping.
	Alpha float64
	// SelfWeight is σ(s, s), the seeker's own contribution weight,
	// normally 1.
	SelfWeight float64
	// MinSigma is the proximity support floor: users with σ < MinSigma
	// are defined to have σ = 0 (they are outside the seeker's social
	// horizon and contribute nothing to scores). This is part of the
	// scoring *model*, not an approximation: every algorithm — exact
	// materialization included — computes the same floored function.
	// Because path products only shrink, no user beyond a below-floor
	// frontier can re-enter, so the floor equals truncating the
	// expansion. 0 disables the floor (unbounded horizon).
	MinSigma float64
}

// DefaultParams returns the standard configuration: no hop damping,
// self weight 1, unbounded horizon.
func DefaultParams() Params { return Params{Alpha: 1.0, SelfWeight: 1.0} }

// Validate checks parameter ranges.
func (p Params) Validate() error {
	if !(p.Alpha > 0 && p.Alpha <= 1) {
		return fmt.Errorf("proximity: Alpha %g outside (0,1]", p.Alpha)
	}
	if !(p.SelfWeight > 0 && p.SelfWeight <= 1) {
		return fmt.Errorf("proximity: SelfWeight %g outside (0,1]", p.SelfWeight)
	}
	if p.MinSigma < 0 || p.MinSigma > p.SelfWeight {
		return fmt.Errorf("proximity: MinSigma %g outside [0, SelfWeight=%g]", p.MinSigma, p.SelfWeight)
	}
	return nil
}

// Entry is one settled user with its proximity to the seeker and the hop
// count of the best path.
type Entry struct {
	User graph.UserID
	Prox float64
	Hops int
}

// Iterator incrementally enumerates users by non-increasing proximity.
// It implements lazy Dijkstra over the max-product semiring: each Next
// call settles exactly one user and relaxes its out-edges.
//
// Per-user state is epoch-stamped rather than cleared: touched[v] ==
// epoch marks best[v] valid for the current expansion, and a settled
// user is encoded as best[v] < 0. Re-initializing an iterator for a new
// seeker therefore costs O(1), which is what makes pooling
// (AcquireIterator/Release) allocation-free and cheap.
type Iterator struct {
	g        *graph.Graph
	params   Params
	epoch    uint32
	touched  []uint32  // stamp: best[v] is valid for this expansion
	best     []float64 // tentative proximity; < 0 once settled
	pq       frontierHeap
	expanded int
}

// settledMark is the best[] sentinel for a settled user: every real
// proximity is positive, so a negative value is unambiguous.
const settledMark = -1.0

// reset prepares the iterator for a fresh expansion, reusing all
// retained storage.
func (it *Iterator) reset(g *graph.Graph, seeker graph.UserID, params Params) error {
	if err := params.Validate(); err != nil {
		return err
	}
	n := g.NumUsers()
	if seeker < 0 || int(seeker) >= n {
		return fmt.Errorf("proximity: seeker %d outside [0,%d)", seeker, n)
	}
	it.g = g
	it.params = params
	if len(it.touched) < n {
		it.touched = make([]uint32, n)
		it.best = make([]float64, n)
		it.epoch = 0 // fresh zeroed stamps: any epoch ≥ 1 is valid
	}
	it.epoch++
	if it.epoch == 0 { // uint32 wraparound: stale stamps could collide
		clear(it.touched)
		it.epoch = 1
	}
	it.pq.items = it.pq.items[:0]
	it.expanded = 0
	it.touched[seeker] = it.epoch
	it.best[seeker] = params.SelfWeight
	it.pq.push(frontierItem{u: seeker, p: params.SelfWeight, h: 0})
	return nil
}

// NewIterator starts an expansion around seeker. It performs O(1) work
// besides allocating the per-user state arrays; prefer AcquireIterator
// on hot paths, which recycles those arrays through a pool.
func NewIterator(g *graph.Graph, seeker graph.UserID, params Params) (*Iterator, error) {
	it := &Iterator{}
	if err := it.reset(g, seeker, params); err != nil {
		return nil, err
	}
	return it, nil
}

// iterPool recycles iterators (and their per-user state arrays, sized
// to the largest graph seen) across expansions.
var iterPool = sync.Pool{New: func() interface{} { return new(Iterator) }}

// AcquireIterator is NewIterator backed by a package pool: the per-user
// state arrays and the frontier heap are recycled, so a warm expansion
// performs no allocation. Callers must Release the iterator when done
// (and must not use it afterwards).
func AcquireIterator(g *graph.Graph, seeker graph.UserID, params Params) (*Iterator, error) {
	it := iterPool.Get().(*Iterator)
	if err := it.reset(g, seeker, params); err != nil {
		iterPool.Put(it)
		return nil, err
	}
	return it, nil
}

// Release returns the iterator to the pool. The iterator must not be
// used afterwards; the graph reference is dropped so a pooled iterator
// never pins a superseded snapshot.
func (it *Iterator) Release() {
	it.g = nil
	iterPool.Put(it)
}

func (it *Iterator) isSettled(u graph.UserID) bool {
	return it.touched[u] == it.epoch && it.best[u] < 0
}

// Next settles and returns the next-closest user. ok is false when the
// region inside the horizon (σ ≥ MinSigma) is exhausted. The first call
// always yields the seeker itself (with proximity SelfWeight).
func (it *Iterator) Next() (e Entry, ok bool) {
	for it.pq.len() > 0 {
		item := it.pq.pop()
		if it.isSettled(item.u) {
			continue
		}
		if item.p < it.params.MinSigma {
			// Everything left is below the floor: σ is defined 0 there.
			it.pq.items = it.pq.items[:0]
			return Entry{}, false
		}
		it.best[item.u] = settledMark
		it.expanded++
		nbrs, wts := it.g.Neighbors(item.u)
		for i, v := range nbrs {
			cand := item.p * wts[i] * it.params.Alpha
			if cand < it.params.MinSigma {
				// Below the horizon floor: σ is defined 0 there, and path
				// products only shrink, so the frontier never needs it.
				// Filtering at push time keeps the heap small.
				continue
			}
			if it.touched[v] == it.epoch {
				if it.best[v] < 0 || cand <= it.best[v] {
					continue // settled, or no improvement
				}
			} else {
				it.touched[v] = it.epoch
			}
			it.best[v] = cand
			it.pq.push(frontierItem{u: v, p: cand, h: item.h + 1})
		}
		return Entry{User: item.u, Prox: item.p, Hops: int(item.h)}, true
	}
	return Entry{}, false
}

// PeekBound returns a certified upper bound on the proximity of every
// user not yet returned by Next. When the frontier is empty or entirely
// below the horizon floor the bound is 0 (σ is defined 0 there).
func (it *Iterator) PeekBound() float64 {
	for it.pq.len() > 0 {
		top := it.pq.peek()
		if it.isSettled(top.u) {
			it.pq.pop() // drop stale entry lazily
			continue
		}
		if top.p < it.params.MinSigma {
			return 0
		}
		return top.p
	}
	return 0
}

// Expanded reports how many users have been settled so far; experiments
// use it as a hardware-independent cost measure.
func (it *Iterator) Expanded() int { return it.expanded }

type frontierItem struct {
	u graph.UserID
	p float64
	h int32
}

// frontierHeap is an allocation-light max-heap on proximity with id
// tie-breaking for determinism. A hand-rolled heap avoids the
// per-operation interface boxing of container/heap, which matters on
// the query hot path.
type frontierHeap struct {
	items []frontierItem
}

func (f *frontierHeap) len() int           { return len(f.items) }
func (f *frontierHeap) peek() frontierItem { return f.items[0] }

func (f *frontierHeap) less(i, j int) bool {
	a, b := f.items[i], f.items[j]
	if a.p != b.p {
		return a.p > b.p
	}
	return a.u < b.u
}

func (f *frontierHeap) push(it frontierItem) {
	f.items = append(f.items, it)
	i := len(f.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !f.less(i, parent) {
			break
		}
		f.items[i], f.items[parent] = f.items[parent], f.items[i]
		i = parent
	}
}

func (f *frontierHeap) pop() frontierItem {
	top := f.items[0]
	last := len(f.items) - 1
	f.items[0] = f.items[last]
	f.items = f.items[:last]
	n := last
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && f.less(l, best) {
			best = l
		}
		if r < n && f.less(r, best) {
			best = r
		}
		if best == i {
			return top
		}
		f.items[i], f.items[best] = f.items[best], f.items[i]
		i = best
	}
}

// All computes σ(seeker, v) for every user in one batch. It is the
// reference implementation the iterator is validated against and the
// workhorse of the exact baseline.
func All(g *graph.Graph, seeker graph.UserID, params Params) ([]float64, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if seeker < 0 || int(seeker) >= g.NumUsers() {
		return nil, fmt.Errorf("proximity: seeker %d outside [0,%d)", seeker, g.NumUsers())
	}
	prox := g.MaxProductDistances(seeker, params.Alpha, params.SelfWeight)
	if params.MinSigma > 0 {
		for i, p := range prox {
			if p < params.MinSigma {
				prox[i] = 0
			}
		}
	}
	return prox, nil
}
