// Package proximity computes social proximity σ(s, v) between a seeker s
// and every other user v of the social network.
//
// The central abstraction is Iterator: an *incremental* best-first
// expansion of the network around the seeker that yields users in
// non-increasing proximity order, one at a time, with a certified upper
// bound on the proximity of every not-yet-yielded user. The core search
// algorithm (internal/core.SocialMerge) interleaves this iterator with
// posting-list accesses and uses the bound for early termination — this
// is what lets it answer personalized top-k queries after touching only a
// small neighbourhood of the seeker.
//
// The proximity function is the hop-damped maximum path product
//
//	σ(s, v) = max over paths p: s⇝v of  α^{|p|} · Π_{e∈p} w(e)
//
// with σ(s, s) = selfWeight. All factors lie in (0, 1], so σ is
// non-increasing along the frontier and the lazy Dijkstra expansion is
// correct and instance-optimal in the number of users settled.
//
// The package also provides batch computation, random-walk-with-restart
// proximity (an alternative σ used in ablations), and landmark sketches
// that give cheap upper bounds used by the pruned approximate variants.
package proximity

import (
	"fmt"

	"repro/internal/graph"
)

// Params configures the proximity function.
type Params struct {
	// Alpha is the per-hop damping factor in (0, 1]. 1 disables damping.
	Alpha float64
	// SelfWeight is σ(s, s), the seeker's own contribution weight,
	// normally 1.
	SelfWeight float64
	// MinSigma is the proximity support floor: users with σ < MinSigma
	// are defined to have σ = 0 (they are outside the seeker's social
	// horizon and contribute nothing to scores). This is part of the
	// scoring *model*, not an approximation: every algorithm — exact
	// materialization included — computes the same floored function.
	// Because path products only shrink, no user beyond a below-floor
	// frontier can re-enter, so the floor equals truncating the
	// expansion. 0 disables the floor (unbounded horizon).
	MinSigma float64
}

// DefaultParams returns the standard configuration: no hop damping,
// self weight 1, unbounded horizon.
func DefaultParams() Params { return Params{Alpha: 1.0, SelfWeight: 1.0} }

// Validate checks parameter ranges.
func (p Params) Validate() error {
	if !(p.Alpha > 0 && p.Alpha <= 1) {
		return fmt.Errorf("proximity: Alpha %g outside (0,1]", p.Alpha)
	}
	if !(p.SelfWeight > 0 && p.SelfWeight <= 1) {
		return fmt.Errorf("proximity: SelfWeight %g outside (0,1]", p.SelfWeight)
	}
	if p.MinSigma < 0 || p.MinSigma > p.SelfWeight {
		return fmt.Errorf("proximity: MinSigma %g outside [0, SelfWeight=%g]", p.MinSigma, p.SelfWeight)
	}
	return nil
}

// Entry is one settled user with its proximity to the seeker and the hop
// count of the best path.
type Entry struct {
	User graph.UserID
	Prox float64
	Hops int
}

// Iterator incrementally enumerates users by non-increasing proximity.
// It implements lazy Dijkstra over the max-product semiring: each Next
// call settles exactly one user and relaxes its out-edges.
type Iterator struct {
	g        *graph.Graph
	params   Params
	settled  []bool
	best     []float64
	hops     []int32
	pq       frontierHeap
	expanded int
}

// NewIterator starts an expansion around seeker. It performs O(1) work
// besides allocating the per-user state arrays.
func NewIterator(g *graph.Graph, seeker graph.UserID, params Params) (*Iterator, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	n := g.NumUsers()
	if seeker < 0 || int(seeker) >= n {
		return nil, fmt.Errorf("proximity: seeker %d outside [0,%d)", seeker, n)
	}
	it := &Iterator{
		g:       g,
		params:  params,
		settled: make([]bool, n),
		best:    make([]float64, n),
		hops:    make([]int32, n),
	}
	it.best[seeker] = params.SelfWeight
	it.pq.push(frontierItem{u: seeker, p: params.SelfWeight, h: 0})
	return it, nil
}

// Next settles and returns the next-closest user. ok is false when the
// region inside the horizon (σ ≥ MinSigma) is exhausted. The first call
// always yields the seeker itself (with proximity SelfWeight).
func (it *Iterator) Next() (e Entry, ok bool) {
	for it.pq.len() > 0 {
		item := it.pq.pop()
		if it.settled[item.u] {
			continue
		}
		if item.p < it.params.MinSigma {
			// Everything left is below the floor: σ is defined 0 there.
			it.pq.items = it.pq.items[:0]
			return Entry{}, false
		}
		it.settled[item.u] = true
		it.hops[item.u] = item.h
		it.expanded++
		nbrs, wts := it.g.Neighbors(item.u)
		for i, v := range nbrs {
			if it.settled[v] {
				continue
			}
			cand := item.p * wts[i] * it.params.Alpha
			if cand > it.best[v] {
				it.best[v] = cand
				it.pq.push(frontierItem{u: v, p: cand, h: item.h + 1})
			}
		}
		return Entry{User: item.u, Prox: item.p, Hops: int(item.h)}, true
	}
	return Entry{}, false
}

// PeekBound returns a certified upper bound on the proximity of every
// user not yet returned by Next. When the frontier is empty or entirely
// below the horizon floor the bound is 0 (σ is defined 0 there).
func (it *Iterator) PeekBound() float64 {
	for it.pq.len() > 0 {
		top := it.pq.peek()
		if it.settled[top.u] {
			it.pq.pop() // drop stale entry lazily
			continue
		}
		if top.p < it.params.MinSigma {
			return 0
		}
		return top.p
	}
	return 0
}

// Expanded reports how many users have been settled so far; experiments
// use it as a hardware-independent cost measure.
func (it *Iterator) Expanded() int { return it.expanded }

type frontierItem struct {
	u graph.UserID
	p float64
	h int32
}

// frontierHeap is an allocation-light max-heap on proximity with id
// tie-breaking for determinism. A hand-rolled heap avoids the
// per-operation interface boxing of container/heap, which matters on
// the query hot path.
type frontierHeap struct {
	items []frontierItem
}

func (f *frontierHeap) len() int           { return len(f.items) }
func (f *frontierHeap) peek() frontierItem { return f.items[0] }

func (f *frontierHeap) less(i, j int) bool {
	a, b := f.items[i], f.items[j]
	if a.p != b.p {
		return a.p > b.p
	}
	return a.u < b.u
}

func (f *frontierHeap) push(it frontierItem) {
	f.items = append(f.items, it)
	i := len(f.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !f.less(i, parent) {
			break
		}
		f.items[i], f.items[parent] = f.items[parent], f.items[i]
		i = parent
	}
}

func (f *frontierHeap) pop() frontierItem {
	top := f.items[0]
	last := len(f.items) - 1
	f.items[0] = f.items[last]
	f.items = f.items[:last]
	n := last
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && f.less(l, best) {
			best = l
		}
		if r < n && f.less(r, best) {
			best = r
		}
		if best == i {
			return top
		}
		f.items[i], f.items[best] = f.items[best], f.items[i]
		i = best
	}
}

// All computes σ(seeker, v) for every user in one batch. It is the
// reference implementation the iterator is validated against and the
// workhorse of the exact baseline.
func All(g *graph.Graph, seeker graph.UserID, params Params) ([]float64, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if seeker < 0 || int(seeker) >= g.NumUsers() {
		return nil, fmt.Errorf("proximity: seeker %d outside [0,%d)", seeker, g.NumUsers())
	}
	prox := g.MaxProductDistances(seeker, params.Alpha, params.SelfWeight)
	if params.MinSigma > 0 {
		for i, p := range prox {
			if p < params.MinSigma {
				prox[i] = 0
			}
		}
	}
	return prox, nil
}
