package proximity

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// LandmarkIndex precomputes max-product proximities from a small set of
// landmark vertices. Because the max-product measure satisfies the
// multiplicative triangle inequality
//
//	σ(s, v) ≥ σ(s, L) · σ(L, v)        (path through L)
//	σ(s, v) ≤ min_L σ(s, L) / σ(L, v)  — NOT valid in general,
//
// only the *lower* bound is sound for max-product, so the index exposes
// LowerBound. The engine's landmark-pruned approximate variant uses an
// *upper-bound heuristic* UpperBoundHeuristic (min over landmarks of
// σ(L,v) scaled by the best σ(s,L)); it may prune users that would have
// contributed, which is exactly why that variant is approximate and its
// quality is measured in Fig 10.
type LandmarkIndex struct {
	landmarks []graph.UserID
	// prox[l][v] = σ(landmark_l, v)
	prox [][]float64
}

// BuildLandmarks selects count landmarks by descending degree (the
// standard heuristic: hubs cover many shortest paths) and runs one batch
// proximity computation per landmark.
func BuildLandmarks(g *graph.Graph, count int, params Params) (*LandmarkIndex, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	n := g.NumUsers()
	if count <= 0 {
		return nil, fmt.Errorf("proximity: landmark count %d must be positive", count)
	}
	if count > n {
		count = n
	}
	type du struct {
		d int
		u graph.UserID
	}
	all := make([]du, n)
	for u := 0; u < n; u++ {
		all[u] = du{g.Degree(graph.UserID(u)), graph.UserID(u)}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].d != all[j].d {
			return all[i].d > all[j].d
		}
		return all[i].u < all[j].u
	})
	idx := &LandmarkIndex{}
	for i := 0; i < count; i++ {
		l := all[i].u
		idx.landmarks = append(idx.landmarks, l)
		idx.prox = append(idx.prox, g.MaxProductDistances(l, params.Alpha, params.SelfWeight))
	}
	return idx, nil
}

// Landmarks returns the selected landmark vertices.
func (idx *LandmarkIndex) Landmarks() []graph.UserID { return idx.landmarks }

// NumLandmarks reports how many landmarks the index holds.
func (idx *LandmarkIndex) NumLandmarks() int { return len(idx.landmarks) }

// LowerBound returns a sound lower bound on σ(s, v): the best landmark
// relay path max_L σ(s,L)·σ(L,v).
func (idx *LandmarkIndex) LowerBound(s, v graph.UserID) float64 {
	var best float64
	for l := range idx.landmarks {
		if p := idx.prox[l][s] * idx.prox[l][v]; p > best {
			best = p
		}
	}
	return best
}

// UpperBoundHeuristic returns a heuristic (unsound) upper estimate of
// σ(s, v): min over landmarks of σ(L,v) when σ(s,L) is high, otherwise 1.
// The approximate engine prunes users whose estimate falls below its
// pruning threshold; EXPERIMENTS.md quantifies the recall cost.
func (idx *LandmarkIndex) UpperBoundHeuristic(s, v graph.UserID) float64 {
	est := 1.0
	for l := range idx.landmarks {
		sl := idx.prox[l][s]
		lv := idx.prox[l][v]
		if sl <= 0 {
			continue
		}
		// If the seeker is close to L, v can't be much closer to the
		// seeker than it is to L (heuristically, within factor 1/sl).
		cand := lv / sl
		if cand > 1 {
			cand = 1
		}
		if cand < est {
			est = cand
		}
	}
	return est
}

// MemoryBytes estimates the resident size of the index (for Table 2).
func (idx *LandmarkIndex) MemoryBytes() int {
	bytes := len(idx.landmarks) * 4
	for _, row := range idx.prox {
		bytes += len(row) * 8
	}
	return bytes
}
