package proximity

import (
	"fmt"

	"repro/internal/graph"
)

// RWRParams configures random-walk-with-restart proximity.
type RWRParams struct {
	// Restart is the restart probability c ∈ (0, 1): at each step the
	// walker returns to the seeker with probability c.
	Restart float64
	// Iterations bounds the power iterations; <= 0 means 50.
	Iterations int
	// Epsilon is the L1 convergence threshold; <= 0 means 1e-9.
	Epsilon float64
}

// DefaultRWRParams returns the conventional configuration (c = 0.15).
func DefaultRWRParams() RWRParams {
	return RWRParams{Restart: 0.15, Iterations: 50, Epsilon: 1e-9}
}

// RWR computes random-walk-with-restart proximity from the seeker by
// power iteration over the weight-normalized transition matrix:
//
//	π ← c·e_s + (1-c)·Pᵀπ
//
// where P(u,v) = w(u,v) / Σ_x w(u,x). RWR is the alternative proximity
// measure evaluated in the ablation experiments; unlike the max-product
// measure it diffuses mass across all paths, so it has no certified
// frontier bound and cannot drive early termination directly — the
// engine uses it only in materialized form.
//
// The returned vector sums to ~1 over the seeker's connected component.
func RWR(g *graph.Graph, seeker graph.UserID, params RWRParams) ([]float64, error) {
	n := g.NumUsers()
	if seeker < 0 || int(seeker) >= n {
		return nil, fmt.Errorf("proximity: seeker %d outside [0,%d)", seeker, n)
	}
	c := params.Restart
	if !(c > 0 && c < 1) {
		return nil, fmt.Errorf("proximity: restart %g outside (0,1)", c)
	}
	iters := params.Iterations
	if iters <= 0 {
		iters = 50
	}
	eps := params.Epsilon
	if eps <= 0 {
		eps = 1e-9
	}

	// Precompute out-weight sums for normalization.
	wsum := make([]float64, n)
	for u := 0; u < n; u++ {
		_, wts := g.Neighbors(graph.UserID(u))
		for _, w := range wts {
			wsum[u] += w
		}
	}

	pi := make([]float64, n)
	next := make([]float64, n)
	pi[seeker] = 1
	for iter := 0; iter < iters; iter++ {
		for i := range next {
			next[i] = 0
		}
		next[seeker] = c
		for u := 0; u < n; u++ {
			if pi[u] == 0 || wsum[u] == 0 {
				// dangling mass restarts
				if pi[u] != 0 {
					next[seeker] += (1 - c) * pi[u]
				}
				continue
			}
			spread := (1 - c) * pi[u] / wsum[u]
			nbrs, wts := g.Neighbors(graph.UserID(u))
			for i, v := range nbrs {
				next[v] += spread * wts[i]
			}
		}
		var delta float64
		for i := range pi {
			d := next[i] - pi[i]
			if d < 0 {
				d = -d
			}
			delta += d
		}
		pi, next = next, pi
		if delta < eps {
			break
		}
	}
	return pi, nil
}
