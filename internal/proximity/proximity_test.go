package proximity

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func buildGraph(t testing.TB, n int, edges []graph.Edge) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e.U, e.V, e.Weight)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func pathGraph(t testing.TB, n int, w float64) *graph.Graph {
	t.Helper()
	edges := make([]graph.Edge, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, graph.Edge{U: graph.UserID(i), V: graph.UserID(i + 1), Weight: w})
	}
	return buildGraph(t, n, edges)
}

func randomGraph(rng *rand.Rand, n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(graph.UserID(i), graph.UserID(rng.Intn(i)), 0.1+0.9*rng.Float64())
	}
	for e := 0; e < n; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.AddEdge(graph.UserID(u), graph.UserID(v), 0.1+0.9*rng.Float64())
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func TestParamsValidate(t *testing.T) {
	good := []Params{DefaultParams(), {Alpha: 0.5, SelfWeight: 0.9}}
	for _, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("%+v rejected: %v", p, err)
		}
	}
	bad := []Params{
		{Alpha: 0, SelfWeight: 1},
		{Alpha: 1.5, SelfWeight: 1},
		{Alpha: 1, SelfWeight: 0},
		{Alpha: 1, SelfWeight: 2},
		{Alpha: -1, SelfWeight: 1},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("%+v accepted", p)
		}
	}
}

func TestIteratorYieldsSeekerFirst(t *testing.T) {
	g := pathGraph(t, 4, 0.5)
	it, err := NewIterator(g, 2, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	e, ok := it.Next()
	if !ok || e.User != 2 || e.Prox != 1.0 || e.Hops != 0 {
		t.Fatalf("first entry = %+v, %v", e, ok)
	}
}

func TestIteratorMonotoneAndComplete(t *testing.T) {
	g := pathGraph(t, 6, 0.7)
	it, err := NewIterator(g, 0, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	var entries []Entry
	prev := math.Inf(1)
	for {
		e, ok := it.Next()
		if !ok {
			break
		}
		if e.Prox > prev+1e-15 {
			t.Fatalf("non-monotone: %g after %g", e.Prox, prev)
		}
		prev = e.Prox
		entries = append(entries, e)
	}
	if len(entries) != 6 {
		t.Fatalf("settled %d users, want 6", len(entries))
	}
}

func TestIteratorMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 60)
	params := Params{Alpha: 0.9, SelfWeight: 1.0}
	want, err := All(g, 3, params)
	if err != nil {
		t.Fatal(err)
	}
	it, err := NewIterator(g, 3, params)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]float64, g.NumUsers())
	for {
		e, ok := it.Next()
		if !ok {
			break
		}
		got[e.User] = e.Prox
	}
	for u := range want {
		if math.Abs(got[u]-want[u]) > 1e-12 {
			t.Fatalf("user %d: iterator %g, batch %g", u, got[u], want[u])
		}
	}
}

func TestIteratorPeekBoundIsSound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomGraph(rng, 50)
	it, err := NewIterator(g, 0, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for {
		bound := it.PeekBound()
		e, ok := it.Next()
		if !ok {
			if bound != 0 {
				t.Fatalf("exhausted iterator has bound %g", bound)
			}
			break
		}
		if e.Prox > bound+1e-12 {
			t.Fatalf("bound %g < next proximity %g", bound, e.Prox)
		}
	}
}

func TestIteratorSeekerOutOfRange(t *testing.T) {
	g := pathGraph(t, 3, 0.5)
	if _, err := NewIterator(g, 7, DefaultParams()); err == nil {
		t.Fatal("out-of-range seeker accepted")
	}
	if _, err := NewIterator(g, -1, DefaultParams()); err == nil {
		t.Fatal("negative seeker accepted")
	}
	if _, err := All(g, 9, DefaultParams()); err == nil {
		t.Fatal("All accepted out-of-range seeker")
	}
}

func TestIteratorDisconnected(t *testing.T) {
	g := buildGraph(t, 4, []graph.Edge{{U: 0, V: 1, Weight: 0.5}})
	it, err := NewIterator(g, 0, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for {
		if _, ok := it.Next(); !ok {
			break
		}
		count++
	}
	if count != 2 {
		t.Fatalf("settled %d users in a 2-user component", count)
	}
	if it.Expanded() != 2 {
		t.Fatalf("Expanded() = %d, want 2", it.Expanded())
	}
}

func TestAlphaDampingOrdersByHops(t *testing.T) {
	// Strong far edge vs weak near edge: with heavy damping the near,
	// weak friend wins.
	g := buildGraph(t, 4, []graph.Edge{
		{U: 0, V: 1, Weight: 0.4}, // 1 hop, weak
		{U: 0, V: 2, Weight: 1.0},
		{U: 2, V: 3, Weight: 1.0}, // user 3: 2 hops, strong
	})
	weak := Params{Alpha: 0.3, SelfWeight: 1}
	prox, err := All(g, 0, weak)
	if err != nil {
		t.Fatal(err)
	}
	// σ(1) = 0.3*0.4 = 0.12; σ(3) = 0.3^2 = 0.09 < 0.12
	if prox[1] <= prox[3] {
		t.Fatalf("damping failed: σ(1)=%g σ(3)=%g", prox[1], prox[3])
	}
	strong := Params{Alpha: 1.0, SelfWeight: 1}
	prox2, err := All(g, 0, strong)
	if err != nil {
		t.Fatal(err)
	}
	// undamped: σ(1) = 0.4 < σ(3) = 1.0
	if prox2[1] >= prox2[3] {
		t.Fatalf("undamped order wrong: σ(1)=%g σ(3)=%g", prox2[1], prox2[3])
	}
}

func TestRWRBasics(t *testing.T) {
	g := pathGraph(t, 5, 1.0)
	pi, err := RWR(g, 0, DefaultRWRParams())
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for u, p := range pi {
		if p < 0 {
			t.Fatalf("negative mass at %d", u)
		}
		sum += p
	}
	// Beyond the seeker's immediate neighbourhood, mass decays with
	// distance (degree effects may elevate node 1 above node 0).
	if !(pi[1] > pi[2] && pi[2] > pi[3] && pi[3] > pi[4]) {
		t.Fatalf("RWR tail not decaying: pi=%v", pi)
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("mass sum = %g, want 1", sum)
	}
	if pi[0] < pi[4]*2 {
		t.Fatalf("seeker mass %g not dominant over far vertex %g", pi[0], pi[4])
	}
}

func TestRWRValidation(t *testing.T) {
	g := pathGraph(t, 3, 0.5)
	if _, err := RWR(g, 9, DefaultRWRParams()); err == nil {
		t.Fatal("out-of-range seeker accepted")
	}
	if _, err := RWR(g, 0, RWRParams{Restart: 0}); err == nil {
		t.Fatal("restart 0 accepted")
	}
	if _, err := RWR(g, 0, RWRParams{Restart: 1}); err == nil {
		t.Fatal("restart 1 accepted")
	}
}

func TestRWRIsolatedSeeker(t *testing.T) {
	g := buildGraph(t, 3, []graph.Edge{{U: 1, V: 2, Weight: 0.5}})
	pi, err := RWR(g, 0, DefaultRWRParams())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pi[0]-1) > 1e-9 || pi[1] != 0 || pi[2] != 0 {
		t.Fatalf("isolated seeker mass = %v", pi)
	}
}

func TestLandmarkLowerBoundSound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 50)
	params := DefaultParams()
	idx, err := BuildLandmarks(g, 5, params)
	if err != nil {
		t.Fatal(err)
	}
	if idx.NumLandmarks() != 5 {
		t.Fatalf("NumLandmarks = %d", idx.NumLandmarks())
	}
	for trial := 0; trial < 10; trial++ {
		s := graph.UserID(rng.Intn(50))
		exact, err := All(g, s, params)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < 50; v++ {
			lb := idx.LowerBound(s, graph.UserID(v))
			if lb > exact[v]+1e-12 {
				t.Fatalf("landmark lower bound %g exceeds σ(%d,%d)=%g", lb, s, v, exact[v])
			}
		}
	}
}

func TestLandmarkCountClamped(t *testing.T) {
	g := pathGraph(t, 4, 0.5)
	idx, err := BuildLandmarks(g, 100, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if idx.NumLandmarks() != 4 {
		t.Fatalf("NumLandmarks = %d, want clamp to 4", idx.NumLandmarks())
	}
	if _, err := BuildLandmarks(g, 0, DefaultParams()); err == nil {
		t.Fatal("zero landmarks accepted")
	}
	if idx.MemoryBytes() <= 0 {
		t.Fatal("MemoryBytes not positive")
	}
}

func TestLandmarkHeuristicRange(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 30)
	idx, err := BuildLandmarks(g, 3, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 30; s++ {
		for v := 0; v < 30; v++ {
			est := idx.UpperBoundHeuristic(graph.UserID(s), graph.UserID(v))
			if est < 0 || est > 1 {
				t.Fatalf("heuristic estimate %g outside [0,1]", est)
			}
		}
	}
}

func TestPropertyIteratorEqualsBatch(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g := randomGraph(rng, n)
		s := graph.UserID(rng.Intn(n))
		params := Params{Alpha: 0.5 + rng.Float64()/2, SelfWeight: 1}
		want, err := All(g, s, params)
		if err != nil {
			return false
		}
		it, err := NewIterator(g, s, params)
		if err != nil {
			return false
		}
		got := make([]float64, n)
		for {
			e, ok := it.Next()
			if !ok {
				break
			}
			got[e.User] = e.Prox
		}
		for u := range want {
			if math.Abs(got[u]-want[u]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyRWRMassConserved(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := randomGraph(rng, n)
		s := graph.UserID(rng.Intn(n))
		pi, err := RWR(g, s, DefaultRWRParams())
		if err != nil {
			return false
		}
		var sum float64
		for _, p := range pi {
			if p < -1e-12 {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
