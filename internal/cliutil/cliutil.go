// Package cliutil holds the small parsing and formatting helpers shared
// by the command-line tools, kept out of the mains so they are testable.
package cliutil

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/tagstore"
	"repro/internal/topk"
)

// ParseTags parses a comma-separated list of tag ids ("3,9, 12").
func ParseTags(s string) ([]tagstore.TagID, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("cliutil: empty tag list")
	}
	parts := strings.Split(s, ",")
	out := make([]tagstore.TagID, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("cliutil: bad tag %q: %v", p, err)
		}
		if n < 0 {
			return nil, fmt.Errorf("cliutil: negative tag %d", n)
		}
		out = append(out, tagstore.TagID(n))
	}
	return out, nil
}

// FormatResults renders a result list as numbered lines.
func FormatResults(rs []topk.Result) string {
	if len(rs) == 0 {
		return "(no matching items)\n"
	}
	var b strings.Builder
	for i, r := range rs {
		fmt.Fprintf(&b, "%2d. item %-8d score %.4f\n", i+1, r.Item, r.Score)
	}
	return b.String()
}
