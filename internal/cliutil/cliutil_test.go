package cliutil

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/tagstore"
	"repro/internal/topk"
)

func TestParseTags(t *testing.T) {
	got, err := ParseTags("3,9, 12")
	if err != nil {
		t.Fatal(err)
	}
	want := []tagstore.TagID{3, 9, 12}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ParseTags = %v, want %v", got, want)
	}
	single, err := ParseTags("0")
	if err != nil || len(single) != 1 || single[0] != 0 {
		t.Fatalf("ParseTags single = %v, %v", single, err)
	}
}

func TestParseTagsErrors(t *testing.T) {
	for _, s := range []string{"", "  ", "a,b", "3,", "3,-1", "3.5"} {
		if _, err := ParseTags(s); err == nil {
			t.Errorf("ParseTags(%q) accepted", s)
		}
	}
}

func TestFormatResults(t *testing.T) {
	out := FormatResults([]topk.Result{{Item: 7, Score: 1.5}, {Item: 2, Score: 0.25}})
	if !strings.Contains(out, "1. item 7") || !strings.Contains(out, "1.5000") {
		t.Fatalf("unexpected formatting:\n%s", out)
	}
	if !strings.Contains(out, "2. item 2") {
		t.Fatalf("second row missing:\n%s", out)
	}
	if got := FormatResults(nil); !strings.Contains(got, "no matching items") {
		t.Fatalf("empty formatting = %q", got)
	}
}
