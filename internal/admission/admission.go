// Package admission implements per-replica adaptive overload control:
// an AIMD concurrency window, a bounded FIFO admission queue with
// per-request deadline budgets, and a brownout ladder that degrades
// work gracefully before shedding it.
//
// The control loop is TCP-shaped (modeled on congestion-window fetchers
// like ndn-dpdk's fetch-algo): every completion that lands within its
// deadline grows the in-flight window additively (+1 per window's worth
// of acks), while every congestion signal — a completion past deadline,
// a context deadline exceeded during service, or a queued request whose
// wait would consume its budget — shrinks the window multiplicatively,
// at most once per recovery interval so a single burst of timeouts is
// one signal, not many.
//
// Requests that do not fit the window wait in a bounded FIFO queue.
// Each carries a deadline (its context's, tightened by the configured
// QueueDeadline cap); a request is shed with search.ErrOverloaded —
// retryable on the same replica, never failover — as soon as its
// estimated queue wait would consume its remaining budget. Writes are
// never shed before reads of the same deadline class: a write arriving
// at a full queue displaces the newest queued read instead of being
// rejected.
//
// Brownout is driven by measured queue state, not configuration guesses:
// as the queue deepens past thresholds, first Explain work is shed
// (level 1), then mode:auto queries are degraded to approx (level 2) —
// answers stay honest because the engine certifies a score bound for
// every approximate execution. See docs/overload.md.
package admission

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/search"
)

// Class is the deadline class of a request. Writes are privileged over
// reads of the same class when the queue must shed.
type Class int

const (
	// Read is a query (search, batch search).
	Read Class = iota
	// Write is a mutation (befriend, tag).
	Write
)

// Level is a rung of the brownout ladder.
type Level int

const (
	// LevelNormal serves requests exactly as asked.
	LevelNormal Level = iota
	// LevelShedExplain strips Explain from requests: under pressure the
	// observability garnish goes first, answers stay untouched.
	LevelShedExplain
	// LevelDegrade additionally rewrites mode:auto to approx — the
	// cheapest execution path, with a certified score bound keeping the
	// degraded answer honest. Explicit mode:exact is always honoured.
	LevelDegrade
)

// Config tunes a Controller. The zero value of every field means "use
// the default"; set a threshold negative to disable that rung.
type Config struct {
	// MinWindow / MaxWindow bound the AIMD concurrency window
	// (defaults 1 and 256). InitialWindow is the starting window
	// (default 8).
	MinWindow     int
	MaxWindow     int
	InitialWindow int
	// QueueLimit bounds the FIFO admission queue (default 128).
	QueueLimit int
	// QueueDeadline caps every request's queueing+service budget. A
	// request's effective deadline is min(ctx deadline, now+QueueDeadline),
	// so a client with a lax timeout still gets shed instead of queued
	// past the replica's SLO. Default 500ms.
	QueueDeadline time.Duration
	// DecreaseFactor is the multiplicative window shrink on congestion
	// (default 0.5); RecoveryInterval is the minimum gap between shrinks
	// (default 100ms) so one burst counts once.
	DecreaseFactor   float64
	RecoveryInterval time.Duration
	// ExplainShedAt / DegradeAt are the queue depths (not fractions) at
	// which the brownout ladder engages (defaults QueueLimit/8 and
	// QueueLimit/4, each at least 1 resp. 2; negative disables the rung).
	// LevelHold is how long an engaged rung stays sticky after the
	// trigger condition clears (default 1s) — hysteresis, so the ladder
	// does not flap per request.
	ExplainShedAt int
	DegradeAt     int
	LevelHold     time.Duration
	// LatencyWindow sizes the rotating latency histogram backing the
	// wait estimator and /v1/stats quantiles (default 10s).
	LatencyWindow time.Duration
	// Clock overrides time.Now in tests.
	Clock func() time.Time
}

func (c Config) withDefaults() Config {
	if c.MinWindow == 0 {
		c.MinWindow = 1
	}
	if c.MaxWindow == 0 {
		c.MaxWindow = 256
	}
	if c.MaxWindow < c.MinWindow {
		c.MaxWindow = c.MinWindow
	}
	if c.InitialWindow == 0 {
		c.InitialWindow = 8
	}
	if c.InitialWindow < c.MinWindow {
		c.InitialWindow = c.MinWindow
	}
	if c.InitialWindow > c.MaxWindow {
		c.InitialWindow = c.MaxWindow
	}
	if c.QueueLimit == 0 {
		c.QueueLimit = 128
	}
	if c.QueueDeadline == 0 {
		c.QueueDeadline = 500 * time.Millisecond
	}
	if c.DecreaseFactor == 0 {
		c.DecreaseFactor = 0.5
	}
	if c.RecoveryInterval == 0 {
		c.RecoveryInterval = 100 * time.Millisecond
	}
	if c.ExplainShedAt == 0 {
		c.ExplainShedAt = max(1, c.QueueLimit/8)
	}
	if c.DegradeAt == 0 {
		c.DegradeAt = max(2, c.QueueLimit/4)
	}
	if c.LevelHold == 0 {
		c.LevelHold = time.Second
	}
	if c.LatencyWindow == 0 {
		c.LatencyWindow = 10 * time.Second
	}
	return c
}

// waiter is one queued request. All fields are guarded by Controller.mu
// except ch, which is written exactly once (under mu) and read by the
// waiting goroutine.
type waiter struct {
	ch       chan error // admit (nil) or shed error; buffered
	class    Class
	deadline time.Time
	canceled bool // owner gave up (ctx done); skip on pop
	decided  bool // delivered or canceled; mutually exclusive with queue membership effects
}

// Controller is one replica's admission controller. Create with New;
// the zero value is not usable.
type Controller struct {
	cfg Config

	mu           sync.Mutex
	window       float64
	inflight     int
	queue        []*waiter
	ewmaLatency  float64 // seconds; 0 until the first completion
	lastDecrease time.Time
	level        Level
	levelSince   time.Time

	latency *metrics.Histogram

	admitted       atomic.Int64
	shedQueueFull  atomic.Int64
	shedBudget     atomic.Int64
	shedDeadline   atomic.Int64 // queue-deadline expiry discovered at pop
	canceledQueued atomic.Int64
	// canceledInflight counts requests whose client hung up after
	// admission, while the work was running (the in-flight half of the
	// 499 class; canceledQueued is the still-queued half).
	canceledInflight atomic.Int64
	okOnDeadline     atomic.Int64
	lateDone         atomic.Int64
	timeouts         atomic.Int64
	errored          atomic.Int64
	explainShed      atomic.Int64
	degraded         atomic.Int64
}

// New builds a controller from cfg (zero fields take defaults).
func New(cfg Config) *Controller {
	cfg = cfg.withDefaults()
	c := &Controller{
		cfg:     cfg,
		window:  float64(cfg.InitialWindow),
		latency: metrics.NewHistogram(cfg.LatencyWindow),
	}
	return c
}

func (c *Controller) clock() time.Time {
	if c.cfg.Clock != nil {
		return c.cfg.Clock()
	}
	return time.Now()
}

// Ticket is one admitted request's permit. Release it exactly once with
// the outcome error (nil on success); the zero Ticket is a no-op.
type Ticket struct {
	c        *Controller
	start    time.Time
	deadline time.Time
	active   bool
	// Level is the brownout level at admission time; callers apply the
	// ladder with Apply.
	Level Level
}

// Acquire admits one request, queueing it when the AIMD window is full.
// It returns ctx.Err() if ctx expires while queued (the request never
// started any engine work), or a search.ErrOverloaded-class error when
// the request is shed: the queue is full, or the estimated queue wait
// would consume the request's deadline budget.
func (c *Controller) Acquire(ctx context.Context, class Class) (Ticket, error) {
	if err := ctx.Err(); err != nil {
		return Ticket{}, err
	}
	now := c.clock()
	deadline := now.Add(c.cfg.QueueDeadline)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}

	c.mu.Lock()
	lvl := c.levelLocked(now)
	if c.inflight < c.windowLocked() && len(c.queue) == 0 {
		c.inflight++
		c.mu.Unlock()
		c.admitted.Add(1)
		return Ticket{c: c, start: now, deadline: deadline, active: true, Level: lvl}, nil
	}

	// The window is full: this request must queue. Shed it now if its
	// expected wait already exceeds its budget — better a cheap early
	// 429 than a slot wasted on an answer nobody is waiting for.
	pos := len(c.queue)
	if wait := c.estWaitLocked(pos); now.Add(wait).After(deadline) {
		c.congestionLocked(now)
		retry := c.retryAfterLocked()
		c.mu.Unlock()
		c.shedBudget.Add(1)
		return Ticket{}, search.Overloadedf(retry, "queue wait %v exceeds request budget", wait.Round(time.Millisecond))
	}
	if pos >= c.cfg.QueueLimit {
		// Queue full. Writes are never shed before reads of the same
		// deadline class: a write displaces the newest queued read.
		var victim *waiter
		if class == Write {
			victim = c.popNewestLocked(Read)
		}
		if victim == nil {
			c.congestionLocked(now)
			retry := c.retryAfterLocked()
			c.mu.Unlock()
			c.shedQueueFull.Add(1)
			return Ticket{}, search.Overloadedf(retry, "admission queue full (%d)", c.cfg.QueueLimit)
		}
		retry := c.retryAfterLocked()
		victim.decided = true
		victim.ch <- search.Overloadedf(retry, "admission queue full (%d), displaced by write", c.cfg.QueueLimit)
		c.shedQueueFull.Add(1)
	}
	w := &waiter{ch: make(chan error, 1), class: class, deadline: deadline}
	c.queue = append(c.queue, w)
	if lv := c.levelLocked(now); lv > lvl {
		lvl = lv
	}
	c.mu.Unlock()

	select {
	case err := <-w.ch:
		if err != nil {
			return Ticket{}, err
		}
		c.admitted.Add(1)
		return Ticket{c: c, start: c.clock(), deadline: deadline, active: true, Level: lvl}, nil
	case <-ctx.Done():
		c.mu.Lock()
		if w.decided {
			// Lost the race: the pop already delivered a verdict. Honour
			// it so an admitted slot is not leaked.
			c.mu.Unlock()
			if err := <-w.ch; err == nil {
				c.admitted.Add(1)
				t := Ticket{c: c, start: c.clock(), deadline: deadline, active: true, Level: lvl}
				t.Release(ctx.Err())
			}
			return Ticket{}, ctx.Err()
		}
		w.canceled = true
		w.decided = true
		c.mu.Unlock()
		c.canceledQueued.Add(1)
		return Ticket{}, ctx.Err()
	}
}

// Release completes a ticket: err is the outcome the request finished
// with (nil for success). It feeds the AIMD loop — on-deadline success
// grows the window, deadline overrun shrinks it — and wakes queued
// waiters that now fit.
func (t *Ticket) Release(err error) {
	if !t.active || t.c == nil {
		return
	}
	t.active = false
	c := t.c
	now := c.clock()
	lat := now.Sub(t.start)
	c.latency.Observe(lat)

	onDeadline := now.Before(t.deadline) || now.Equal(t.deadline)
	congested := false
	switch {
	case err == nil && onDeadline:
		c.okOnDeadline.Add(1)
	case err == nil:
		// Finished, but past its budget: the caller has likely given up.
		// That is a congestion signal exactly like a timeout.
		c.lateDone.Add(1)
		congested = true
	case errors.Is(err, context.DeadlineExceeded):
		c.timeouts.Add(1)
		congested = true
	case errors.Is(err, context.Canceled):
		// The client hung up mid-execution (499 in flight). Neutral for
		// the AIMD loop — it says nothing about replica load — but
		// counted in its own class so cancellations are not invisible.
		c.canceledInflight.Add(1)
	default:
		// Engine errors are neutral: they say nothing about replica load.
		c.errored.Add(1)
	}

	c.mu.Lock()
	if lats := lat.Seconds(); c.ewmaLatency == 0 {
		c.ewmaLatency = lats
	} else {
		c.ewmaLatency = 0.8*c.ewmaLatency + 0.2*lats
	}
	if err == nil && onDeadline {
		c.window += 1 / c.window
		if maxW := float64(c.cfg.MaxWindow); c.window > maxW {
			c.window = maxW
		}
	} else if congested {
		c.congestionLocked(now)
	}
	c.inflight--
	c.popWaitersLocked(now)
	c.mu.Unlock()
}

// windowLocked is the integer window (floor, at least MinWindow).
func (c *Controller) windowLocked() int {
	w := int(c.window)
	if w < c.cfg.MinWindow {
		w = c.cfg.MinWindow
	}
	return w
}

// estWaitLocked estimates the queue wait at position pos: pos+1 requests
// must drain ahead, the window drains one per ewmaLatency/window.
func (c *Controller) estWaitLocked(pos int) time.Duration {
	if c.ewmaLatency == 0 {
		return 0 // no signal yet: admit optimistically
	}
	perSlot := c.ewmaLatency / float64(c.windowLocked())
	return time.Duration(float64(pos+1) * perSlot * float64(time.Second))
}

// retryAfterLocked suggests a backoff: the time for the current queue to
// drain, at least 50ms.
func (c *Controller) retryAfterLocked() time.Duration {
	d := c.estWaitLocked(len(c.queue))
	if d < 50*time.Millisecond {
		d = 50 * time.Millisecond
	}
	return d
}

// congestionLocked applies the multiplicative decrease, rate-limited to
// once per recovery interval.
func (c *Controller) congestionLocked(now time.Time) {
	if !c.lastDecrease.IsZero() && now.Sub(c.lastDecrease) < c.cfg.RecoveryInterval {
		return
	}
	c.lastDecrease = now
	c.window *= c.cfg.DecreaseFactor
	if minW := float64(c.cfg.MinWindow); c.window < minW {
		c.window = minW
	}
}

// popWaitersLocked admits queued requests that now fit the window,
// shedding any whose deadline passed while queued.
func (c *Controller) popWaitersLocked(now time.Time) {
	for len(c.queue) > 0 && c.inflight < c.windowLocked() {
		w := c.queue[0]
		c.queue = c.queue[1:]
		if w.decided {
			continue
		}
		if now.After(w.deadline) {
			w.decided = true
			w.ch <- search.Overloadedf(c.retryAfterLocked(), "queue deadline expired while waiting")
			c.shedDeadline.Add(1)
			c.congestionLocked(now)
			continue
		}
		w.decided = true
		c.inflight++
		w.ch <- nil
	}
}

// popNewestLocked removes and returns the newest queued waiter of the
// given class (nil if none).
func (c *Controller) popNewestLocked(class Class) *waiter {
	for i := len(c.queue) - 1; i >= 0; i-- {
		w := c.queue[i]
		if w.decided || w.class != class {
			continue
		}
		c.queue = append(c.queue[:i], c.queue[i+1:]...)
		return w
	}
	return nil
}

// levelLocked computes the brownout level with sticky-down hysteresis:
// rungs engage instantly when the queue deepens and release only after
// LevelHold of calm.
func (c *Controller) levelLocked(now time.Time) Level {
	depth := len(c.queue)
	inst := LevelNormal
	if c.cfg.DegradeAt >= 0 && depth >= c.cfg.DegradeAt {
		inst = LevelDegrade
	} else if c.cfg.ExplainShedAt >= 0 && depth >= c.cfg.ExplainShedAt {
		inst = LevelShedExplain
	}
	switch {
	case inst >= c.level:
		c.level = inst
		c.levelSince = now
	case now.Sub(c.levelSince) > c.cfg.LevelHold:
		c.level = inst
		c.levelSince = now
	}
	return c.level
}

// Level reports the current brownout level.
func (c *Controller) Level() Level {
	now := c.clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.levelLocked(now)
}

// Apply applies the brownout ladder for level lvl to req in place:
// at LevelShedExplain the Explain flag is stripped, at LevelDegrade
// mode:auto is additionally rewritten to approx. It returns true when
// the execution mode was degraded (the response must then carry
// Degraded plus a certified score bound). Counters are recorded on the
// controller.
func (c *Controller) Apply(lvl Level, req *search.Request) bool {
	if lvl >= LevelShedExplain && req.Explain {
		req.Explain = false
		c.explainShed.Add(1)
	}
	if lvl >= LevelDegrade && req.Mode == search.ModeAuto {
		req.Mode = search.ModeApprox
		c.degraded.Add(1)
		return true
	}
	return false
}

// DegradeRequest is the embedder-facing hook (social.SetDegradeHook /
// exec.SetDegradeHook): it consults the current level and applies the
// ladder.
func (c *Controller) DegradeRequest(req *search.Request) bool {
	return c.Apply(c.Level(), req)
}

// Snapshot is a point-in-time view of the controller for /v1/stats.
type Snapshot struct {
	Window   float64
	InFlight int
	Queued   int
	Level    int

	Admitted      int64
	ShedQueueFull int64
	ShedBudget    int64
	ShedDeadline  int64
	// CanceledQueued / CanceledInFlight split the 499 client-cancel
	// class: hung up while still queued vs. after admission with the
	// work already running.
	CanceledQueued   int64
	CanceledInFlight int64
	OKOnDeadline     int64
	LateDone         int64
	Timeouts         int64
	Errors           int64
	ExplainShed      int64
	Degraded         int64

	Latency metrics.HistogramSnapshot
}

// Shed is the total of all shed classes.
func (s Snapshot) Shed() int64 { return s.ShedQueueFull + s.ShedBudget + s.ShedDeadline }

// Snapshot reports the controller's current state.
func (c *Controller) Snapshot() Snapshot {
	now := c.clock()
	c.mu.Lock()
	s := Snapshot{
		Window:   c.window,
		InFlight: c.inflight,
		Queued:   len(c.queue),
		Level:    int(c.levelLocked(now)),
	}
	c.mu.Unlock()
	s.Admitted = c.admitted.Load()
	s.ShedQueueFull = c.shedQueueFull.Load()
	s.ShedBudget = c.shedBudget.Load()
	s.ShedDeadline = c.shedDeadline.Load()
	s.CanceledQueued = c.canceledQueued.Load()
	s.CanceledInFlight = c.canceledInflight.Load()
	s.OKOnDeadline = c.okOnDeadline.Load()
	s.LateDone = c.lateDone.Load()
	s.Timeouts = c.timeouts.Load()
	s.Errors = c.errored.Load()
	s.ExplainShed = c.explainShed.Load()
	s.Degraded = c.degraded.Load()
	s.Latency = c.latency.Snapshot()
	return s
}
