package admission

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/search"
)

// fakeClock is a monotonically advancing test clock safe for concurrent
// readers.
type fakeClock struct{ ns atomic.Int64 }

func newFakeClock() *fakeClock {
	c := &fakeClock{}
	c.ns.Store(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC).UnixNano())
	return c
}

func (c *fakeClock) now() time.Time          { return time.Unix(0, c.ns.Load()) }
func (c *fakeClock) advance(d time.Duration) { c.ns.Add(int64(d)) }

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAIMDGrowsAdditivelyShrinksMultiplicatively(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{InitialWindow: 8, Clock: clk.now})

	// On-deadline success: +1/window.
	tk, err := c.Acquire(context.Background(), Read)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	clk.advance(10 * time.Millisecond)
	tk.Release(nil)
	if w := c.Snapshot().Window; w <= 8 || w > 8.2 {
		t.Fatalf("window after on-deadline success = %v, want 8 < w <= 8.125", w)
	}

	// Timeout: multiplicative shrink.
	tk, _ = c.Acquire(context.Background(), Read)
	clk.advance(10 * time.Millisecond)
	tk.Release(context.DeadlineExceeded)
	w1 := c.Snapshot().Window
	if w1 > 4.1 {
		t.Fatalf("window after timeout = %v, want ~4", w1)
	}

	// A second congestion signal inside RecoveryInterval must not shrink
	// again (one burst = one signal).
	tk, _ = c.Acquire(context.Background(), Read)
	clk.advance(10 * time.Millisecond)
	tk.Release(context.DeadlineExceeded)
	if w2 := c.Snapshot().Window; w2 != w1 {
		t.Fatalf("window shrank twice within RecoveryInterval: %v -> %v", w1, w2)
	}

	// After the interval passes, congestion bites again.
	clk.advance(200 * time.Millisecond)
	tk, _ = c.Acquire(context.Background(), Read)
	clk.advance(10 * time.Millisecond)
	tk.Release(context.DeadlineExceeded)
	if w3 := c.Snapshot().Window; w3 >= w1 {
		t.Fatalf("window did not shrink after RecoveryInterval: %v -> %v", w1, w3)
	}
}

func TestBudgetShedWhenQueueWaitExceedsDeadline(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{MinWindow: 1, MaxWindow: 1, InitialWindow: 1, QueueDeadline: 500 * time.Millisecond, Clock: clk.now})

	// Seed the latency estimate: one request that took a full second.
	tk, err := c.Acquire(context.Background(), Read)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	clk.advance(time.Second)
	tk.Release(nil) // late — also a congestion signal, window already min

	// Occupy the (single-slot) window…
	tk2, err := c.Acquire(context.Background(), Read)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	// …so the next request must queue; with ~1s estimated wait against a
	// 500ms budget it is shed immediately.
	_, err = c.Acquire(context.Background(), Read)
	if !errors.Is(err, search.ErrOverloaded) {
		t.Fatalf("queued-over-budget err = %v, want ErrOverloaded", err)
	}
	var oe *search.OverloadError
	if !errors.As(err, &oe) || oe.RetryAfter <= 0 {
		t.Fatalf("shed error carries no retry-after hint: %v", err)
	}
	if s := c.Snapshot(); s.ShedBudget != 1 {
		t.Fatalf("ShedBudget = %d, want 1", s.ShedBudget)
	}
	tk2.Release(nil)
}

func TestQueueFullWriteDisplacesNewestRead(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{MinWindow: 1, MaxWindow: 1, InitialWindow: 1, QueueLimit: 1, Clock: clk.now})

	tk, err := c.Acquire(context.Background(), Read)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}

	// Queue one read (fills the queue).
	readErr := make(chan error, 1)
	go func() {
		_, err := c.Acquire(context.Background(), Read)
		readErr <- err
	}()
	waitFor(t, "read to queue", func() bool { return c.Snapshot().Queued == 1 })

	// A write arriving at the full queue displaces the read instead of
	// being shed itself.
	writeRes := make(chan error, 1)
	var writeTk Ticket
	go func() {
		tk, err := c.Acquire(context.Background(), Write)
		writeTk = tk
		writeRes <- err
	}()

	if err := <-readErr; !errors.Is(err, search.ErrOverloaded) {
		t.Fatalf("displaced read err = %v, want ErrOverloaded", err)
	}
	waitFor(t, "write to queue", func() bool { return c.Snapshot().Queued == 1 })

	// Releasing the in-flight slot admits the queued write.
	tk.Release(nil)
	if err := <-writeRes; err != nil {
		t.Fatalf("queued write err = %v, want admitted", err)
	}
	writeTk.Release(nil)

	if s := c.Snapshot(); s.ShedQueueFull != 1 {
		t.Fatalf("ShedQueueFull = %d, want 1 (the displaced read)", s.ShedQueueFull)
	}
}

func TestCtxCancelWhileQueuedReturnsCtxErr(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{MinWindow: 1, MaxWindow: 1, InitialWindow: 1, Clock: clk.now})

	tk, err := c.Acquire(context.Background(), Read)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	admittedBefore := c.Snapshot().Admitted

	ctx, cancel := context.WithCancel(context.Background())
	res := make(chan error, 1)
	go func() {
		_, err := c.Acquire(ctx, Read)
		res <- err
	}()
	waitFor(t, "request to queue", func() bool { return c.Snapshot().Queued == 1 })
	cancel()
	if err := <-res; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled-while-queued err = %v, want context.Canceled", err)
	}

	s := c.Snapshot()
	if s.Admitted != admittedBefore {
		t.Fatalf("canceled request was admitted (%d -> %d): engine work would have started", admittedBefore, s.Admitted)
	}
	if s.CanceledQueued != 1 {
		t.Fatalf("CanceledQueued = %d, want 1", s.CanceledQueued)
	}

	// The abandoned waiter must not wedge the queue: release the slot and
	// admit a fresh request.
	tk.Release(nil)
	tk2, err := c.Acquire(context.Background(), Read)
	if err != nil {
		t.Fatalf("Acquire after canceled waiter: %v", err)
	}
	tk2.Release(nil)
}

func TestExpiredDeadlineShedAtPop(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{MinWindow: 1, MaxWindow: 1, InitialWindow: 1, QueueDeadline: 100 * time.Millisecond, Clock: clk.now})

	tk, err := c.Acquire(context.Background(), Read)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	res := make(chan error, 1)
	go func() {
		_, err := c.Acquire(context.Background(), Read)
		res <- err
	}()
	waitFor(t, "request to queue", func() bool { return c.Snapshot().Queued == 1 })

	// The slot frees only after the queued request's budget is gone.
	clk.advance(time.Second)
	tk.Release(nil)
	if err := <-res; !errors.Is(err, search.ErrOverloaded) {
		t.Fatalf("expired-at-pop err = %v, want ErrOverloaded", err)
	}
	if s := c.Snapshot(); s.ShedDeadline != 1 {
		t.Fatalf("ShedDeadline = %d, want 1", s.ShedDeadline)
	}
}

func TestBrownoutLadderAndHysteresis(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{
		MinWindow: 1, MaxWindow: 1, InitialWindow: 1,
		QueueLimit: 8, ExplainShedAt: 1, DegradeAt: 2,
		LevelHold: time.Second, Clock: clk.now,
	})

	tk, err := c.Acquire(context.Background(), Read)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if lvl := c.Level(); lvl != LevelNormal {
		t.Fatalf("idle level = %v, want LevelNormal", lvl)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	results := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := c.Acquire(ctx, Read)
			results <- err
		}()
		want := i + 1
		waitFor(t, "queue to deepen", func() bool { return c.Snapshot().Queued == want })
	}
	if lvl := c.Level(); lvl != LevelDegrade {
		t.Fatalf("level at depth 2 = %v, want LevelDegrade", lvl)
	}

	// Apply: Explain stripped, auto downgraded to approx; exact honoured.
	req := search.Request{Seeker: "u", Mode: search.ModeAuto, Explain: true}
	if !c.Apply(LevelDegrade, &req) {
		t.Fatal("Apply(LevelDegrade) on mode:auto should report degradation")
	}
	if req.Explain || req.Mode != search.ModeApprox {
		t.Fatalf("Apply left req = %+v, want explain stripped, mode approx", req)
	}
	exact := search.Request{Seeker: "u", Mode: search.ModeExact}
	if c.Apply(LevelDegrade, &exact) || exact.Mode != search.ModeExact {
		t.Fatal("Apply must honour explicit mode:exact")
	}

	// Drain the queue; the level stays sticky for LevelHold, then decays.
	cancel()
	for i := 0; i < 2; i++ {
		<-results
	}
	tk.Release(nil)
	if lvl := c.Level(); lvl != LevelDegrade {
		t.Fatalf("level immediately after calm = %v, want sticky LevelDegrade", lvl)
	}
	clk.advance(2 * time.Second)
	if lvl := c.Level(); lvl != LevelNormal {
		t.Fatalf("level after LevelHold of calm = %v, want LevelNormal", lvl)
	}
}

func TestFastPathAdmitsWithinWindow(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{InitialWindow: 4, Clock: clk.now})
	var tks []Ticket
	for i := 0; i < 4; i++ {
		tk, err := c.Acquire(context.Background(), Read)
		if err != nil {
			t.Fatalf("Acquire %d: %v", i, err)
		}
		tks = append(tks, tk)
	}
	s := c.Snapshot()
	if s.InFlight != 4 || s.Queued != 0 || s.Admitted != 4 {
		t.Fatalf("snapshot = %+v, want 4 in flight, none queued", s)
	}
	for i := range tks {
		tks[i].Release(nil)
	}
	if s := c.Snapshot(); s.InFlight != 0 {
		t.Fatalf("InFlight after release = %d, want 0", s.InFlight)
	}
}

func TestReleaseIsIdempotentAndZeroTicketSafe(t *testing.T) {
	c := New(Config{})
	tk, err := c.Acquire(context.Background(), Read)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	tk.Release(nil)
	tk.Release(nil) // second release is a no-op
	var zero Ticket
	zero.Release(nil)
	if s := c.Snapshot(); s.InFlight != 0 {
		t.Fatalf("InFlight = %d after double release, want 0", s.InFlight)
	}
}
