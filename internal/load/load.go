// Package load imports and exports corpora in a plain text-separated
// format, so real friendship/tagging datasets (the del.icio.us-style
// crawls the paper evaluates on, or any application's export) can be
// fed to the engine without touching the binary index format.
//
// Two files describe a corpus:
//
//	friends.tsv:  userA <TAB> userB <TAB> weight
//	tags.tsv:     user  <TAB> item  <TAB> tag [<TAB> count]
//
// Lines starting with '#' and blank lines are skipped. Names may be
// arbitrary UTF-8 without tabs or line breaks; ids are assigned in
// first-appearance order through the vocab layer, so round-trips are
// stable.
package load

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/graph"
	"repro/internal/tagstore"
	"repro/internal/vocab"
)

// Corpus is a fully loaded dataset plus its name dictionaries.
type Corpus struct {
	Graph *graph.Graph
	Store *tagstore.Store
	Names *vocab.Set
}

// reader tracks position for error messages.
type reader struct {
	sc   *bufio.Scanner
	name string
	line int
}

func newReader(r io.Reader, name string) *reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return &reader{sc: sc, name: name}
}

// next returns the following non-comment, non-blank line.
func (r *reader) next() (string, bool, error) {
	for r.sc.Scan() {
		r.line++
		line := strings.TrimRight(r.sc.Text(), "\r")
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		return line, true, nil
	}
	return "", false, r.sc.Err()
}

func (r *reader) errf(format string, args ...interface{}) error {
	return fmt.Errorf("%s:%d: %s", r.name, r.line, fmt.Sprintf(format, args...))
}

// Read parses the two streams into a corpus. Either stream may be nil
// for an empty relation (e.g. tagging data without a social graph).
func Read(friends, tags io.Reader) (*Corpus, error) {
	names := vocab.NewSet()

	type edge struct {
		a, b int32
		w    float64
	}
	var edges []edge
	if friends != nil {
		r := newReader(friends, "friends.tsv")
		for {
			line, ok, err := r.next()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			fields := strings.Split(line, "\t")
			if len(fields) != 3 {
				return nil, r.errf("want 3 tab-separated fields, got %d", len(fields))
			}
			a, err := names.Users.Add(strings.TrimSpace(fields[0]))
			if err != nil {
				return nil, r.errf("user A: %v", err)
			}
			b, err := names.Users.Add(strings.TrimSpace(fields[1]))
			if err != nil {
				return nil, r.errf("user B: %v", err)
			}
			if a == b {
				return nil, r.errf("self-edge for user %q", fields[0])
			}
			w, err := strconv.ParseFloat(strings.TrimSpace(fields[2]), 64)
			if err != nil {
				return nil, r.errf("weight: %v", err)
			}
			if w <= 0 || w > 1 {
				return nil, r.errf("weight %g outside (0,1]", w)
			}
			edges = append(edges, edge{a, b, w})
		}
	}

	type triple struct {
		u    int32
		i, t int32
		c    int32
	}
	var triples []triple
	if tags != nil {
		r := newReader(tags, "tags.tsv")
		for {
			line, ok, err := r.next()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			fields := strings.Split(line, "\t")
			if len(fields) != 3 && len(fields) != 4 {
				return nil, r.errf("want 3 or 4 tab-separated fields, got %d", len(fields))
			}
			u, err := names.Users.Add(strings.TrimSpace(fields[0]))
			if err != nil {
				return nil, r.errf("user: %v", err)
			}
			it, err := names.Items.Add(strings.TrimSpace(fields[1]))
			if err != nil {
				return nil, r.errf("item: %v", err)
			}
			tg, err := names.Tags.Add(strings.TrimSpace(fields[2]))
			if err != nil {
				return nil, r.errf("tag: %v", err)
			}
			count := int32(1)
			if len(fields) == 4 {
				c, err := strconv.Atoi(strings.TrimSpace(fields[3]))
				if err != nil {
					return nil, r.errf("count: %v", err)
				}
				if c < 1 {
					return nil, r.errf("count %d < 1", c)
				}
				count = int32(c)
			}
			triples = append(triples, triple{u, it, tg, count})
		}
	}

	gb := graph.NewBuilder(names.Users.Len())
	for _, e := range edges {
		gb.AddEdge(e.a, e.b, e.w)
	}
	g, err := gb.Build()
	if err != nil {
		return nil, fmt.Errorf("load: building graph: %w", err)
	}
	tb := tagstore.NewBuilder(names.Users.Len(), names.Items.Len(), names.Tags.Len())
	for _, tr := range triples {
		tb.AddCount(tr.u, tr.i, tr.t, tr.c)
	}
	store, err := tb.Build()
	if err != nil {
		return nil, fmt.Errorf("load: building store: %w", err)
	}
	return &Corpus{Graph: g, Store: store, Names: names}, nil
}

// ReadFiles loads a corpus from friends/tags TSV paths. Either path
// may be empty for an empty relation.
func ReadFiles(friendsPath, tagsPath string) (*Corpus, error) {
	var fr, tr io.Reader
	if friendsPath != "" {
		f, err := os.Open(friendsPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		fr = f
	}
	if tagsPath != "" {
		f, err := os.Open(tagsPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		tr = f
	}
	return Read(fr, tr)
}

// Write exports a corpus back to the TSV format, in id order, with
// counts preserved. Round-trips through Read preserve the *named*
// relations exactly; dense ids may be permuted, because Read assigns
// ids in first-appearance order. Users with neither friendships nor
// taggings are not representable in the format and are dropped.
func Write(c *Corpus, friends, tags io.Writer) error {
	fw := bufio.NewWriter(friends)
	fmt.Fprintln(fw, "# userA\tuserB\tweight")
	for _, e := range c.Graph.Edges() {
		na, _ := c.Names.Users.Name(e.U)
		nb, _ := c.Names.Users.Name(e.V)
		if na == "" || nb == "" {
			return fmt.Errorf("load: edge (%d,%d) has unnamed endpoint", e.U, e.V)
		}
		fmt.Fprintf(fw, "%s\t%s\t%g\n", na, nb, e.Weight)
	}
	if err := fw.Flush(); err != nil {
		return err
	}
	tw := bufio.NewWriter(tags)
	fmt.Fprintln(tw, "# user\titem\ttag\tcount")
	for _, tr := range c.Store.Triples() {
		nu, _ := c.Names.Users.Name(tr.User)
		ni, _ := c.Names.Items.Name(tr.Item)
		nt, _ := c.Names.Tags.Name(tr.Tag)
		if nu == "" || ni == "" || nt == "" {
			return fmt.Errorf("load: triple (%d,%d,%d) has unnamed member", tr.User, tr.Item, tr.Tag)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\n", nu, ni, nt, tr.Count)
	}
	return tw.Flush()
}

// WriteFiles exports to paths.
func WriteFiles(c *Corpus, friendsPath, tagsPath string) error {
	ff, err := os.Create(friendsPath)
	if err != nil {
		return err
	}
	tf, err := os.Create(tagsPath)
	if err != nil {
		ff.Close()
		return err
	}
	if err := Write(c, ff, tf); err != nil {
		ff.Close()
		tf.Close()
		return err
	}
	if err := ff.Close(); err != nil {
		tf.Close()
		return err
	}
	return tf.Close()
}
