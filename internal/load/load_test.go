package load

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/tagstore"
	"repro/internal/vocab"
)

const friendsTSV = `# comment line
alice	bob	0.9

bob	carol	0.8
alice	dave	0.5
`

const tagsTSV = `bob	luigis	pizza	2
carol	marios	pizza
dave	marios	pizza
dave	sushiko	sushi
# trailing comment
`

func TestReadParsesNamesAndStructure(t *testing.T) {
	c, err := Read(strings.NewReader(friendsTSV), strings.NewReader(tagsTSV))
	if err != nil {
		t.Fatal(err)
	}
	if c.Graph.NumUsers() != 4 || c.Graph.NumEdges() != 3 {
		t.Fatalf("graph: %d users %d edges", c.Graph.NumUsers(), c.Graph.NumEdges())
	}
	if c.Store.NumItems() != 3 || c.Store.NumTags() != 2 || c.Store.NumTriples() != 4 {
		t.Fatalf("store: %d items %d tags %d triples",
			c.Store.NumItems(), c.Store.NumTags(), c.Store.NumTriples())
	}
	// First-appearance id assignment: alice=0, bob=1, carol=2, dave=3.
	for i, want := range []string{"alice", "bob", "carol", "dave"} {
		if got, _ := c.Names.Users.Name(int32(i)); got != want {
			t.Fatalf("user %d = %q, want %q", i, got, want)
		}
	}
	// Count column honoured: bob→luigis→pizza has tf 2.
	bob, _ := c.Names.Users.ID("bob")
	luigis, _ := c.Names.Items.ID("luigis")
	pizza, _ := c.Names.Tags.ID("pizza")
	if tf := c.Store.TF(bob, luigis, pizza); tf != 2 {
		t.Fatalf("tf(bob,luigis,pizza) = %d, want 2", tf)
	}
}

func TestLoadedCorpusIsQueryable(t *testing.T) {
	c, err := Read(strings.NewReader(friendsTSV), strings.NewReader(tagsTSV))
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEngine(c.Graph, c.Store, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	alice, _ := c.Names.Users.ID("alice")
	pizza, _ := c.Names.Tags.ID("pizza")
	ans, err := e.SocialMerge(core.Query{Seeker: alice, Tags: []tagstore.TagID{pizza}, K: 2}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Results) != 2 || !ans.Exact {
		t.Fatalf("answer = %+v", ans)
	}
	name, _ := c.Names.Items.Name(ans.Results[0].Item)
	// luigis: σ(alice,bob)=0.9 · tf 2 = 1.8; marios: 0.72·1 + 0.5·1 = 1.22.
	if name != "luigis" {
		t.Fatalf("top item = %s, want luigis", name)
	}
}

// namedEdges canonicalizes a corpus' graph as name-keyed strings; ids
// may be permuted by a round trip, names may not.
func namedEdges(t *testing.T, c *Corpus) map[string]bool {
	t.Helper()
	out := make(map[string]bool)
	for _, e := range c.Graph.Edges() {
		a, _ := c.Names.Users.Name(e.U)
		b, _ := c.Names.Users.Name(e.V)
		if b < a {
			a, b = b, a
		}
		out[a+"|"+b+"|"+strconv.FormatFloat(e.Weight, 'g', -1, 64)] = true
	}
	return out
}

func namedTriples(t *testing.T, c *Corpus) map[string]int32 {
	t.Helper()
	out := make(map[string]int32)
	for _, tr := range c.Store.Triples() {
		u, _ := c.Names.Users.Name(tr.User)
		i, _ := c.Names.Items.Name(tr.Item)
		tg, _ := c.Names.Tags.Name(tr.Tag)
		out[u+"|"+i+"|"+tg] += tr.Count
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	orig, err := Read(strings.NewReader(friendsTSV), strings.NewReader(tagsTSV))
	if err != nil {
		t.Fatal(err)
	}
	var fb, tb bytes.Buffer
	if err := Write(orig, &fb, &tb); err != nil {
		t.Fatal(err)
	}
	back, err := Read(bytes.NewReader(fb.Bytes()), bytes.NewReader(tb.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(namedEdges(t, orig), namedEdges(t, back)) {
		t.Fatal("named edges changed across round trip")
	}
	if !reflect.DeepEqual(namedTriples(t, orig), namedTriples(t, back)) {
		t.Fatal("named triples changed across round trip")
	}
}

func TestRoundTripSyntheticCorpus(t *testing.T) {
	ds, err := gen.Generate(gen.DeliciousParams().Scale(0.05), 13)
	if err != nil {
		t.Fatal(err)
	}
	// Synthesize names for the dense ids, export, reimport.
	names := vocab.NewSet()
	for i := 0; i < ds.Graph.NumUsers(); i++ {
		names.Users.MustAdd(userName(i))
	}
	for i := 0; i < ds.Store.NumItems(); i++ {
		names.Items.MustAdd(itemName(i))
	}
	for i := 0; i < ds.Store.NumTags(); i++ {
		names.Tags.MustAdd(tagName(i))
	}
	c := &Corpus{Graph: ds.Graph, Store: ds.Store, Names: names}

	dir := t.TempDir()
	fp, tp := filepath.Join(dir, "friends.tsv"), filepath.Join(dir, "tags.tsv")
	if err := WriteFiles(c, fp, tp); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFiles(fp, tp)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(namedEdges(t, c), namedEdges(t, back)) {
		t.Fatal("named edges changed across file round trip")
	}
	if !reflect.DeepEqual(namedTriples(t, c), namedTriples(t, back)) {
		t.Fatal("named triples changed across file round trip")
	}
	if back.Graph.NumEdges() != ds.Graph.NumEdges() || back.Store.NumTriples() != ds.Store.NumTriples() {
		t.Fatalf("cardinalities changed: %d/%d edges, %d/%d triples",
			back.Graph.NumEdges(), ds.Graph.NumEdges(),
			back.Store.NumTriples(), ds.Store.NumTriples())
	}
}

// Name synthesis helpers; zero-padded so lexicographic == numeric.
func userName(i int) string { return "user" + pad(i) }
func itemName(i int) string { return "item" + pad(i) }
func tagName(i int) string  { return "tag" + pad(i) }
func pad(i int) string {
	s := "00000" + itoa(i)
	return s[len(s)-6:]
}
func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [12]byte
	pos := len(b)
	for i > 0 {
		pos--
		b[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(b[pos:])
}

func TestMalformedInputs(t *testing.T) {
	cases := []struct {
		name            string
		friends, tagsIn string
	}{
		{"friend fields", "alice\tbob\n", ""},
		{"friend weight", "alice\tbob\theavy\n", ""},
		{"friend weight range", "alice\tbob\t1.5\n", ""},
		{"friend weight zero", "alice\tbob\t0\n", ""},
		{"self edge", "alice\talice\t0.5\n", ""},
		{"tag fields", "", "bob\tluigis\n"},
		{"tag count", "", "bob\tluigis\tpizza\tmany\n"},
		{"tag count zero", "", "bob\tluigis\tpizza\t0\n"},
		{"empty user name", "\tbob\t0.5\n", ""},
	}
	for _, tc := range cases {
		var fr, tr *strings.Reader
		if tc.friends != "" {
			fr = strings.NewReader(tc.friends)
		}
		if tc.tagsIn != "" {
			tr = strings.NewReader(tc.tagsIn)
		}
		var frr, trr = ioReader(fr), ioReader(tr)
		if _, err := Read(frr, trr); err == nil {
			t.Errorf("%s: accepted", tc.name)
		} else if !strings.Contains(err.Error(), ":1:") && !strings.Contains(err.Error(), "load:") {
			t.Errorf("%s: error lacks location: %v", tc.name, err)
		}
	}
}

// ioReader converts a possibly nil *strings.Reader into an io.Reader
// interface that is genuinely nil when absent.
func ioReader(r *strings.Reader) interface {
	Read([]byte) (int, error)
} {
	if r == nil {
		return nil
	}
	return r
}

func TestNilStreamsGiveEmptyCorpus(t *testing.T) {
	c, err := Read(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.Graph.NumUsers() != 0 || c.Store.NumTriples() != 0 {
		t.Fatalf("empty corpus: %d users %d triples", c.Graph.NumUsers(), c.Store.NumTriples())
	}
}

func TestCRLFAndWhitespaceTolerance(t *testing.T) {
	c, err := Read(strings.NewReader("alice\tbob\t0.5\r\n"), strings.NewReader(" bob \t luigis \t pizza \r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if c.Graph.NumEdges() != 1 || c.Store.NumTriples() != 1 {
		t.Fatalf("CRLF corpus: %d edges %d triples", c.Graph.NumEdges(), c.Store.NumTriples())
	}
	if _, ok := c.Names.Items.ID("luigis"); !ok {
		t.Fatal("whitespace not trimmed from names")
	}
}
