package core

import (
	"context"

	"repro/internal/proximity"
	"repro/internal/tagstore"
	"repro/internal/topk"
)

// ExactSocial answers the query by materializing σ(seeker, ·) over the
// entire network and scoring every item touched by any user with
// positive proximity. It is exact by construction and serves as the
// correctness oracle and the expensive baseline of Figs 4–9.
func (e *Engine) ExactSocial(q Query) (Answer, error) {
	return e.ExactSocialCtx(nil, q)
}

// ExactSocialCtx is ExactSocial with cancellation checkpoints in the
// network-wide scoring sweep.
func (e *Engine) ExactSocialCtx(ctx context.Context, q Query) (Answer, error) {
	if err := e.validateQuery(q); err != nil {
		return Answer{}, err
	}
	tags := dedupTags(q.Tags)

	var acc topk.Access
	if err := ctxErr(ctx); err != nil {
		return Answer{}, err
	}
	prox, err := proximity.All(e.g, q.Seeker, e.prox)
	if err != nil {
		return Answer{}, err
	}
	acc.UsersExpanded = int64(e.g.NumUsers())

	scores := make(map[tagstore.ItemID]float64)
	if e.beta > 0 {
		for u, p := range prox {
			if u%1024 == 0 {
				if err := ctxErr(ctx); err != nil {
					return Answer{}, err
				}
			}
			if p == 0 {
				continue
			}
			for _, t := range tags {
				for _, up := range e.store.UserList(int32(u), t) {
					scores[up.Item] += e.beta * p * float64(up.TF)
					acc.Sequential++
				}
			}
		}
	}
	if e.beta < 1 {
		for _, t := range tags {
			for _, gp := range e.store.GlobalList(t) {
				scores[gp.Item] += (1 - e.beta) * float64(gp.TF)
				acc.Sequential++
			}
		}
	}

	h := topk.NewHeap(q.K)
	for item, s := range scores {
		if s > 0 {
			h.Offer(item, s)
		}
	}
	settled := 0
	for _, p := range prox {
		if p > 0 {
			settled++
		}
	}
	return Answer{Results: h.Results(), Exact: true, Access: acc, UsersSettled: settled}, nil
}

// Score computes the exact score of a single item for a seeker and tag
// set. It exists for spot verification and for the example programs; it
// costs a full proximity computation.
func (e *Engine) Score(seeker int32, tags []tagstore.TagID, item tagstore.ItemID) (float64, error) {
	q := Query{Seeker: seeker, Tags: tags, K: 1}
	if err := e.validateQuery(q); err != nil {
		return 0, err
	}
	tags = dedupTags(tags)
	prox, err := proximity.All(e.g, seeker, e.prox)
	if err != nil {
		return 0, err
	}
	var s float64
	for u, p := range prox {
		if p == 0 {
			continue
		}
		for _, t := range tags {
			if tf := e.store.TF(int32(u), item, t); tf > 0 {
				s += e.beta * p * float64(tf)
			}
		}
	}
	for _, t := range tags {
		s += (1 - e.beta) * float64(e.store.GlobalTF(item, t))
	}
	return s, nil
}
