package core

import (
	"sync"

	"repro/internal/graph"
	"repro/internal/tagstore"
	"repro/internal/topk"
)

// SocialMerge answers the query with the paper's incremental
// network-aware algorithm. It maintains:
//
//   - a best-first frontier over the social graph yielding users in
//     non-increasing proximity order with a certified bound σnext on all
//     unvisited users;
//   - per-candidate NRA intervals: lower(i) = mass already confirmed;
//     upper(i) = lower(i) + β·σnext·rem(i), where rem(i) is the tag
//     frequency mass of i not yet seen from settled users
//     (rem(i) = Σ_t gtf(i,t) − Σ_t seen_tf(i,t), never negative);
//   - per-query-tag cursors into the global posting lists whose frontier
//     frequencies bar(t) bound every completely unseen item by
//     (β·σnext + (1−β))·Σ_t bar(t).
//
// The loop settles one user at a time (consuming their per-tag posting
// lists and completing each newly seen item's global score by random
// access) and stops as soon as the k-th best confirmed lower bound
// dominates both the best non-top-k candidate upper bound and the
// unseen-item bound. At that point the returned item set is provably the
// exact top-k set; reported scores are the certified lower bounds (equal
// to exact scores whenever the remaining uncertainty is zero, e.g. when
// the frontier was exhausted).
//
// Options activate the approximate variants; any triggered cutoff or
// prune clears Answer.Exact.
func (e *Engine) SocialMerge(q Query, opts Options) (Answer, error) {
	var ans Answer
	if err := e.SocialMergeInto(q, opts, &ans); err != nil {
		return Answer{}, err
	}
	return ans, nil
}

// SocialMergeInto is SocialMerge writing into a caller-owned Answer:
// ans.Results is reused (truncated and appended to), so a caller that
// recycles the Answer across queries runs the whole read path without
// allocating. This is the single validation point for graph-expansion
// execution — the internal merge entry assumes a validated query.
func (e *Engine) SocialMergeInto(q Query, opts Options, ans *Answer) error {
	if opts.LandmarkPrune && e.landmarks == nil {
		return errNoLandmarks
	}
	if opts.UseNeighborhoods && e.neighbors == nil {
		return errNoNeighborhoods
	}
	if err := e.validateQuery(q); err != nil {
		return err
	}
	src, err := e.newUserSource(q.Seeker, opts)
	if err != nil {
		return err
	}
	defer releaseSource(src)
	return e.socialMergeRun(q, src, nil, opts, ans)
}

// socialMergeRun runs the merge loop over an explicit user source (a
// live graph expansion, a global neighbourhood index entry, or — when h
// is non-nil — a cached per-seeker horizon adapted through the pooled
// run's inline source, avoiding a per-query adapter allocation). The
// query must already be validated: each external entry point validates
// exactly once.
func (e *Engine) socialMergeRun(q Query, src userSource, h *SeekerHorizon, opts Options, ans *Answer) error {
	run := e.acquireRun(q, opts)
	defer e.releaseRun(run)
	if h != nil {
		run.msrc = materializedSource{list: h.list, residual: h.residual}
		src = &run.msrc
	}

	certified, err := run.mainLoop(src, q.Seeker, opts)
	if err != nil {
		return err
	}

	// Certified termination with approximation knobs enabled is still
	// exact as long as no cutoff or prune actually fired.
	ans.Results = run.table.AppendTopResults(ans.Results[:0])
	ans.Exact = certified && !run.cutoffFired && !run.prunedAny
	ans.Access = run.acc
	ans.UsersSettled = run.settled
	return nil
}

// mergeRun is the per-query working state of SocialMerge: the candidate
// table with its incremental top-k, the per-tag cursors, and the access
// accounting. Runs are recycled through the engine's pool so the warm
// read path performs no allocation; everything here is either reset or
// overwritten by acquireRun.
type mergeRun struct {
	e    *Engine
	k    int
	beta float64
	tags []tagstore.TagID // deduped query tags (reused buffer)

	table topk.Table // candidates + incremental top-k/τ

	lists [][]tagstore.Posting // global lists per query tag
	pos   []int                // cursor per query tag

	acc         topk.Access
	settled     int
	cutoffFired bool
	prunedAny   bool

	// refineFast marks the β = 1 exact-refine execution: the (1−β)
	// global component is identically zero, so candidate creation skips
	// the per-tag global random accesses and the sorted-access rounds —
	// they only matter if a truncated horizon forces a certification
	// attempt, at which point repairRems reconstructs the state the slow
	// path would have had.
	refineFast bool

	// Amortized certification: the O(|candidates|) canStop test runs
	// only when the frontier bound has decayed materially since the
	// last test (or periodically), since the bounds it evaluates are
	// monotone in that bound.
	lastCheckBound float64
	sinceLastCheck int
	// cachedTau is the threshold as of the most recent canStop. The
	// incremental τ only grows, so it is a valid (conservative) stand-in
	// wherever a stale-but-sound threshold suffices, e.g. the landmark
	// prune test.
	cachedTau float64

	// msrc is the inline horizon adapter used by socialMergeRun.
	msrc materializedSource
}

// acquireRun checks a recycled run out of the engine pool and resets it
// for the query. All retained storage (tag buffer, cursor slices, the
// candidate table's arrays) is reused.
func (e *Engine) acquireRun(q Query, opts Options) *mergeRun {
	r, _ := e.runs.Get().(*mergeRun)
	if r == nil {
		r = &mergeRun{}
	}
	r.e = e
	r.k = q.K
	r.beta = e.beta
	// Dedup tags preserving first-occurrence order. Query tag sets are
	// tiny, so the quadratic scan beats a map and allocates nothing.
	r.tags = r.tags[:0]
	for _, t := range q.Tags {
		dup := false
		for _, u := range r.tags {
			if u == t {
				dup = true
				break
			}
		}
		if !dup {
			r.tags = append(r.tags, t)
		}
	}
	if cap(r.lists) < len(r.tags) {
		r.lists = make([][]tagstore.Posting, len(r.tags))
		r.pos = make([]int, len(r.tags))
	}
	r.lists = r.lists[:len(r.tags)]
	r.pos = r.pos[:len(r.tags)]
	for i, t := range r.tags {
		r.lists[i] = e.store.GlobalList(t)
		r.pos[i] = 0
	}
	r.table.Reset(e.store.NumItems(), q.K)
	r.acc = topk.Access{}
	r.settled = 0
	r.cutoffFired = false
	r.prunedAny = false
	r.refineFast = opts.RefineScores && r.beta == 1
	r.lastCheckBound = 0
	r.sinceLastCheck = 0
	r.cachedTau = 0
	return r
}

func (e *Engine) releaseRun(r *mergeRun) {
	for i := range r.lists {
		r.lists[i] = nil // do not pin posting lists while pooled
	}
	r.msrc = materializedSource{}
	e.runs.Put(r)
}

// runPool is the engine-scoped mergeRun pool type; a dedicated type
// keeps the Engine declaration readable.
type runPool = sync.Pool

// barSum returns Σ_t bar(t): the sum over query tags of the frequency at
// the current global-list cursor (0 for exhausted lists). Any item never
// seen in list t has gtf(i,t) ≤ bar(t).
func (r *mergeRun) barSum() float64 {
	var sum float64
	for i := range r.lists {
		if r.pos[i] < len(r.lists[i]) {
			sum += float64(r.lists[i][r.pos[i]].TF)
		}
	}
	return sum
}

// advanceCursors performs one round of sorted access on every non-
// exhausted global list, discovering candidates. It reports whether any
// cursor moved.
func (r *mergeRun) advanceCursors() bool {
	moved := false
	for i := range r.lists {
		if r.pos[i] >= len(r.lists[i]) {
			continue
		}
		p := r.lists[i][r.pos[i]]
		r.pos[i]++
		r.acc.Sequential++
		moved = true
		r.ensureCandidate(p.Item)
	}
	return moved
}

// ensureCandidate returns the table index for an item, creating the
// candidate on first sight: the creation random-accesses the item's
// global frequency under every query tag, initializing rem and the
// exact (1−β)-weighted global score part. The β = 1 fast path defers
// that work (see refineFast / repairRems).
func (r *mergeRun) ensureCandidate(item tagstore.ItemID) int32 {
	idx, created := r.table.Ensure(item)
	if !created || r.refineFast {
		return idx
	}
	var gsum int64
	for _, t := range r.tags {
		g := r.e.store.GlobalTF(item, t)
		r.acc.Random++
		gsum += int64(g)
	}
	c := r.table.At(idx)
	c.Rem = gsum
	c.Lower = (1 - r.beta) * float64(gsum)
	if c.Lower > 0 {
		r.table.Promote(idx)
	}
	return idx
}

// settleUser consumes the per-tag posting lists of user v at proximity σ.
func (r *mergeRun) settleUser(v int32, sigma float64) {
	r.settled++
	r.acc.UsersExpanded++
	if r.beta == 0 {
		return // pure-global scoring: user lists contribute nothing
	}
	for _, t := range r.tags {
		for _, up := range r.e.store.UserList(v, t) {
			r.acc.Sequential++
			idx := r.ensureCandidate(up.Item)
			c := r.table.At(idx)
			c.Lower += r.beta * sigma * float64(up.TF)
			c.Rem -= int64(up.TF)
			// σ, β and tf are all positive here, so Lower > 0 and the
			// candidate is promotable.
			r.table.Promote(idx)
		}
	}
}

// repairRems switches a β = 1 fast-path run back to fully initialized
// candidates: every tracked candidate gains its deferred Σ_t gtf(i,t)
// remainder mass (with the same random-access accounting the slow path
// would have paid at creation). Lower bounds need no repair — the
// (1−β) global component is zero. After the call, newly discovered
// candidates initialize fully again.
func (r *mergeRun) repairRems() {
	r.refineFast = false
	all := r.table.All()
	for i := range all {
		c := &all[i]
		var gsum int64
		for _, t := range r.tags {
			g := r.e.store.GlobalTF(c.Item, t)
			r.acc.Random++
			gsum += int64(g)
		}
		c.Rem += gsum
	}
}

const certEps = 1e-12

// canStop reports whether, given the frontier bound σnext, the current
// top-k set is certified exact: its threshold dominates every other
// candidate's upper bound and the bound on completely unseen items. τ
// and the member set are maintained incrementally by the table, so the
// test is one contiguous scan with no rebuild and no allocation.
func (r *mergeRun) canStop(sigmaNext float64) bool {
	tau := r.table.Tau()
	r.cachedTau = tau
	unseen := (r.beta*sigmaNext + (1 - r.beta)) * r.barSum()
	if tau < unseen-certEps {
		return false
	}
	all := r.table.All()
	for i := range all {
		c := &all[i]
		if c.InTopK() {
			continue
		}
		upper := c.Lower + r.beta*sigmaNext*float64(c.Rem)
		if tau < upper-certEps {
			return false
		}
	}
	return true
}

// shouldCheck gates the full certification test: it fires when the
// frontier bound fell by ≥10% since the last test, periodically as a
// backstop, and always at a zero bound. Skipping a test can only delay
// termination, never produce an unsound stop.
func (r *mergeRun) shouldCheck(sigmaNext float64) bool {
	r.sinceLastCheck++
	if sigmaNext == 0 || sigmaNext <= 0.9*r.lastCheckBound || r.sinceLastCheck >= 32 {
		r.lastCheckBound = sigmaNext
		r.sinceLastCheck = 0
		return true
	}
	return false
}

// mainLoop drives the merge until certified termination, an
// approximation cutoff, source exhaustion, or context cancellation. It
// reports whether the final state is certified (canStop held at exit).
func (r *mergeRun) mainLoop(src userSource, seeker graph.UserID, opts Options) (bool, error) {
	r.lastCheckBound = 1
	for iter := 0; ; iter++ {
		// Poll the context sparsely (first iteration, then every 64): a
		// select per settled user would tax the hottest serving loop for
		// no added responsiveness.
		if iter%64 == 0 {
			if err := ctxErr(opts.Ctx); err != nil {
				return false, err
			}
		}
		sigmaNext := src.Bound()
		if !opts.RefineScores && r.shouldCheck(sigmaNext) && r.canStop(sigmaNext) {
			return true, nil
		}
		entry, ok := src.Next()
		if !ok {
			break
		}
		if opts.Theta > 0 && entry.Prox < opts.Theta {
			r.cutoffFired = true
			break
		}
		if opts.MaxHops > 0 && entry.Hops > opts.MaxHops {
			r.cutoffFired = true
			break
		}
		if opts.LandmarkPrune && entry.User != seeker {
			// Use the cached (stale, hence smaller, hence conservative)
			// threshold: recomputing it per user would cost O(|candidates|)
			// on every settle and defeat the prune's purpose.
			est := r.e.landmarks.UpperBoundHeuristic(seeker, entry.User)
			if r.cachedTau > 0 && r.beta*est*r.barSum() < r.cachedTau {
				r.prunedAny = true
				continue
			}
		}
		r.settleUser(entry.User, entry.Prox)
		// One round of sorted access per settle: discovers globally hot
		// candidates early and walks the unseen-item bar down the Zipf
		// tail, which is what lets the unseen bound release. The β = 1
		// refine path skips this — it terminates by exhaustion, not by
		// the bound, and a zero-σ certification needs no bar.
		if !r.refineFast {
			r.advanceCursors()
		}
		if opts.MaxUsers > 0 && r.settled >= opts.MaxUsers {
			r.cutoffFired = true
			break
		}
	}
	// Source exhausted or cutoff: the residual bound still applies to
	// all unvisited users (0 for a fully drained graph frontier).
	residual := src.Bound()
	if r.refineFast {
		// β = 1 exact refine. With a zero residual (full horizon drained)
		// the stop test holds vacuously: the unseen bound and every
		// remainder term carry a σ·β factor of zero. Only a truncated
		// horizon needs the real test — rebuild exactly the state the
		// slow path would have had (remainders and the settled-many
		// sorted-access rounds), then certify against the residual.
		if residual > 0 && !r.cutoffFired {
			r.repairRems()
			for i := 0; i < r.settled; i++ {
				r.advanceCursors()
			}
			if r.canStop(residual) {
				return true, nil
			}
			// Draining the global lists cannot shrink the residual term,
			// so the answer is inherently approximate.
			r.cutoffFired = true
		}
		return true, nil
	}
	if residual > 0 && !r.cutoffFired {
		// A truncated materialized source ran out with users possibly
		// remaining beyond its horizon. Attempt one certification with
		// the residual bound; if it fails, the answer is inherently
		// approximate — draining the global lists cannot shrink the
		// residual term, so treat it as a cutoff rather than scanning
		// everything for nothing.
		if r.canStop(residual) {
			return true, nil
		}
		r.cutoffFired = true
	}
	if r.cutoffFired {
		// The approximation pretends unvisited users do not exist.
		residual = 0
	}
	// Keep scanning the global lists: every round grows confirmed lower
	// bounds (for β < 1) and shrinks the unseen bar. Check termination
	// periodically; the final check decides certification.
	for i := 0; ; i++ {
		if i%8 == 0 {
			if err := ctxErr(opts.Ctx); err != nil {
				return false, err
			}
			if r.canStop(residual) {
				return true, nil
			}
		}
		if !r.advanceCursors() {
			return r.canStop(residual), nil
		}
	}
}
