package core

import (
	"repro/internal/graph"
	"repro/internal/tagstore"
	"repro/internal/topk"
)

// SocialMerge answers the query with the paper's incremental
// network-aware algorithm. It maintains:
//
//   - a best-first frontier over the social graph yielding users in
//     non-increasing proximity order with a certified bound σnext on all
//     unvisited users;
//   - per-candidate NRA intervals: lower(i) = mass already confirmed;
//     upper(i) = lower(i) + β·σnext·rem(i), where rem(i) is the tag
//     frequency mass of i not yet seen from settled users
//     (rem(i) = Σ_t gtf(i,t) − Σ_t seen_tf(i,t), never negative);
//   - per-query-tag cursors into the global posting lists whose frontier
//     frequencies bar(t) bound every completely unseen item by
//     (β·σnext + (1−β))·Σ_t bar(t).
//
// The loop settles one user at a time (consuming their per-tag posting
// lists and completing each newly seen item's global score by random
// access) and stops as soon as the k-th best confirmed lower bound
// dominates both the best non-top-k candidate upper bound and the
// unseen-item bound. At that point the returned item set is provably the
// exact top-k set; reported scores are the certified lower bounds (equal
// to exact scores whenever the remaining uncertainty is zero, e.g. when
// the frontier was exhausted).
//
// Options activate the approximate variants; any triggered cutoff or
// prune clears Answer.Exact.
func (e *Engine) SocialMerge(q Query, opts Options) (Answer, error) {
	if opts.LandmarkPrune && e.landmarks == nil {
		return Answer{}, errNoLandmarks
	}
	if opts.UseNeighborhoods && e.neighbors == nil {
		return Answer{}, errNoNeighborhoods
	}
	if err := e.validateQuery(q); err != nil {
		return Answer{}, err
	}
	src, err := e.newUserSource(q.Seeker, opts)
	if err != nil {
		return Answer{}, err
	}
	return e.socialMergeFrom(q, src, opts)
}

// socialMergeFrom runs the merge loop over an explicit user source (a
// live graph expansion, a global neighbourhood index entry, or a cached
// per-seeker horizon). The query must already be validated by callers
// or is validated here for external entry points.
func (e *Engine) socialMergeFrom(q Query, src userSource, opts Options) (Answer, error) {
	if err := e.validateQuery(q); err != nil {
		return Answer{}, err
	}
	tags := dedupTags(q.Tags)

	run := &mergeRun{
		e:     e,
		k:     q.K,
		beta:  e.beta,
		tags:  tags,
		cands: make(map[tagstore.ItemID]*candidate),
		lists: make([][]tagstore.Posting, len(tags)),
		pos:   make([]int, len(tags)),
	}
	for i, t := range tags {
		run.lists[i] = e.store.GlobalList(t)
	}

	certified, err := run.mainLoop(src, q.Seeker, opts)
	if err != nil {
		return Answer{}, err
	}

	h := topk.NewHeap(q.K)
	for item, c := range run.cands {
		if c.lower > 0 {
			h.Offer(item, c.lower)
		}
	}
	// Certified termination with approximation knobs enabled is still
	// exact as long as no cutoff or prune actually fired.
	exact := certified && !run.cutoffFired && !run.prunedAny
	return Answer{
		Results:      h.Results(),
		Exact:        exact,
		Access:       run.acc,
		UsersSettled: run.settled,
	}, nil
}

type candidate struct {
	lower float64 // confirmed score mass (social seen + exact global part)
	rem   int64   // Σ_t gtf(i,t) − Σ_t seen social tf(i,t)
}

type mergeRun struct {
	e     *Engine
	k     int
	beta  float64
	tags  []tagstore.TagID
	cands map[tagstore.ItemID]*candidate

	lists [][]tagstore.Posting // global lists per query tag
	pos   []int                // cursor per query tag

	acc         topk.Access
	settled     int
	cutoffFired bool
	prunedAny   bool

	// Amortized certification: the O(|candidates|) canStop test runs
	// only when the frontier bound has decayed materially since the
	// last test (or periodically), since the bounds it evaluates are
	// monotone in that bound.
	lastCheckBound float64
	sinceLastCheck int
	// cachedTau is the threshold from the most recent currentTopK call.
	// Lower bounds only grow, so it is a valid (conservative) stand-in
	// wherever a stale-but-sound threshold suffices, e.g. the landmark
	// prune test.
	cachedTau float64
}

// barSum returns Σ_t bar(t): the sum over query tags of the frequency at
// the current global-list cursor (0 for exhausted lists). Any item never
// seen in list t has gtf(i,t) ≤ bar(t).
func (r *mergeRun) barSum() float64 {
	var sum float64
	for i := range r.lists {
		if r.pos[i] < len(r.lists[i]) {
			sum += float64(r.lists[i][r.pos[i]].TF)
		}
	}
	return sum
}

// advanceCursors performs one round of sorted access on every non-
// exhausted global list, discovering candidates. It reports whether any
// cursor moved.
func (r *mergeRun) advanceCursors() bool {
	moved := false
	for i := range r.lists {
		if r.pos[i] >= len(r.lists[i]) {
			continue
		}
		p := r.lists[i][r.pos[i]]
		r.pos[i]++
		r.acc.Sequential++
		moved = true
		r.ensureCandidate(p.Item)
	}
	return moved
}

// ensureCandidate returns the candidate entry for an item, creating it
// on first sight: the creation random-accesses the item's global
// frequency under every query tag, initializing rem and the exact
// (1−β)-weighted global score part.
func (r *mergeRun) ensureCandidate(item tagstore.ItemID) *candidate {
	if c, ok := r.cands[item]; ok {
		return c
	}
	c := &candidate{}
	var gsum int64
	for _, t := range r.tags {
		g := r.e.store.GlobalTF(item, t)
		r.acc.Random++
		gsum += int64(g)
	}
	c.rem = gsum
	c.lower = (1 - r.beta) * float64(gsum)
	r.cands[item] = c
	return c
}

// settleUser consumes the per-tag posting lists of user v at proximity σ.
func (r *mergeRun) settleUser(v int32, sigma float64) {
	r.settled++
	r.acc.UsersExpanded++
	if r.beta == 0 {
		return // pure-global scoring: user lists contribute nothing
	}
	for _, t := range r.tags {
		for _, up := range r.e.store.UserList(v, t) {
			r.acc.Sequential++
			c := r.ensureCandidate(up.Item)
			c.lower += r.beta * sigma * float64(up.TF)
			c.rem -= int64(up.TF)
		}
	}
}

// currentTopK selects the k best candidates by confirmed lower bound and
// returns the threshold (k-th best lower, 0 when fewer than k positive
// candidates exist) and the member set.
func (r *mergeRun) currentTopK() (float64, map[tagstore.ItemID]bool) {
	h := topk.NewHeap(r.k)
	for item, c := range r.cands {
		if c.lower > 0 {
			h.Offer(item, c.lower)
		}
	}
	members := make(map[tagstore.ItemID]bool, r.k)
	for _, res := range h.Results() {
		members[res.Item] = true
	}
	r.cachedTau = h.Threshold()
	return r.cachedTau, members
}

const certEps = 1e-12

// canStop reports whether, given the frontier bound σnext, the current
// top-k set is certified exact: its threshold dominates every other
// candidate's upper bound and the bound on completely unseen items.
func (r *mergeRun) canStop(sigmaNext float64) bool {
	tau, members := r.currentTopK()
	unseen := (r.beta*sigmaNext + (1 - r.beta)) * r.barSum()
	if tau < unseen-certEps {
		return false
	}
	for item, c := range r.cands {
		if members[item] {
			continue
		}
		upper := c.lower + r.beta*sigmaNext*float64(c.rem)
		if tau < upper-certEps {
			return false
		}
	}
	return true
}

// shouldCheck gates the full certification test: it fires when the
// frontier bound fell by ≥10% since the last test, periodically as a
// backstop, and always at a zero bound. Skipping a test can only delay
// termination, never produce an unsound stop.
func (r *mergeRun) shouldCheck(sigmaNext float64) bool {
	r.sinceLastCheck++
	if sigmaNext == 0 || sigmaNext <= 0.9*r.lastCheckBound || r.sinceLastCheck >= 32 {
		r.lastCheckBound = sigmaNext
		r.sinceLastCheck = 0
		return true
	}
	return false
}

// mainLoop drives the merge until certified termination, an
// approximation cutoff, source exhaustion, or context cancellation. It
// reports whether the final state is certified (canStop held at exit).
func (r *mergeRun) mainLoop(src userSource, seeker graph.UserID, opts Options) (bool, error) {
	r.lastCheckBound = 1
	for iter := 0; ; iter++ {
		// Poll the context sparsely (first iteration, then every 64): a
		// select per settled user would tax the hottest serving loop for
		// no added responsiveness.
		if iter%64 == 0 {
			if err := ctxErr(opts.Ctx); err != nil {
				return false, err
			}
		}
		sigmaNext := src.Bound()
		if !opts.RefineScores && r.shouldCheck(sigmaNext) && r.canStop(sigmaNext) {
			return true, nil
		}
		entry, ok := src.Next()
		if !ok {
			break
		}
		if opts.Theta > 0 && entry.Prox < opts.Theta {
			r.cutoffFired = true
			break
		}
		if opts.MaxHops > 0 && entry.Hops > opts.MaxHops {
			r.cutoffFired = true
			break
		}
		if opts.LandmarkPrune && entry.User != seeker {
			// Use the cached (stale, hence smaller, hence conservative)
			// threshold: recomputing it per user would cost O(|candidates|)
			// on every settle and defeat the prune's purpose.
			est := r.e.landmarks.UpperBoundHeuristic(seeker, entry.User)
			if r.cachedTau > 0 && r.beta*est*r.barSum() < r.cachedTau {
				r.prunedAny = true
				continue
			}
		}
		r.settleUser(entry.User, entry.Prox)
		// One round of sorted access per settle: discovers globally hot
		// candidates early and walks the unseen-item bar down the Zipf
		// tail, which is what lets the unseen bound release.
		r.advanceCursors()
		if opts.MaxUsers > 0 && r.settled >= opts.MaxUsers {
			r.cutoffFired = true
			break
		}
	}
	// Source exhausted or cutoff: the residual bound still applies to
	// all unvisited users (0 for a fully drained graph frontier).
	residual := src.Bound()
	if residual > 0 && !r.cutoffFired {
		// A truncated materialized source ran out with users possibly
		// remaining beyond its horizon. Attempt one certification with
		// the residual bound; if it fails, the answer is inherently
		// approximate — draining the global lists cannot shrink the
		// residual term, so treat it as a cutoff rather than scanning
		// everything for nothing.
		if r.canStop(residual) {
			return true, nil
		}
		r.cutoffFired = true
	}
	if r.cutoffFired {
		// The approximation pretends unvisited users do not exist.
		residual = 0
	}
	// Keep scanning the global lists: every round grows confirmed lower
	// bounds (for β < 1) and shrinks the unseen bar. Check termination
	// periodically; the final check decides certification.
	for i := 0; ; i++ {
		if i%8 == 0 {
			if err := ctxErr(opts.Ctx); err != nil {
				return false, err
			}
			if r.canStop(residual) {
				return true, nil
			}
		}
		if !r.advanceCursors() {
			return r.canStop(residual), nil
		}
	}
}
