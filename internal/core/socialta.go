package core

import (
	"repro/internal/proximity"
	"repro/internal/tagstore"
	"repro/internal/topk"
)

// SocialTA answers the query with a Fagin-style threshold algorithm
// enriched with social random access: it materializes the seeker's
// proximity vector, then walks the global per-tag posting lists in
// sorted order, completing every newly seen item's *exact* score
// immediately by probing the item-pivoted index (who tagged this item,
// at what proximity). It stops when the k-th exact score dominates the
// sorted-access frontier: any unseen item has per-tag frequency at most
// bar(t), and social proximity at most σmax, so its score is bounded by
// (β·σmax + (1−β))·Σ_t bar(t).
//
// Trade-off measured in Fig 12: SocialTA's random accesses are
// item-proportional (every candidate costs its full tagger list), and
// it must pay the whole proximity materialization like ExactSocial —
// but its scores are exact immediately and its threshold uses the
// steep global frequency decay, so on Zipf-shaped corpora with small k
// it terminates after very few sorted rounds.
//
// Requires AttachItemIndex. Options: Theta/MaxHops/MaxUsers bound the
// proximity materialization (approximate answers); RefineScores is a
// no-op (scores are always exact); LandmarkPrune and UseNeighborhoods
// are rejected.
func (e *Engine) SocialTA(q Query, opts Options) (Answer, error) {
	if e.items == nil {
		return Answer{}, errNoItemIndex
	}
	if opts.LandmarkPrune || opts.UseNeighborhoods {
		return Answer{}, errUnsupportedOption
	}
	if err := e.validateQuery(q); err != nil {
		return Answer{}, err
	}
	tags := dedupTags(q.Tags)

	var acc topk.Access
	// Materialize σ. The iterator honours the approximation bounds; an
	// unbounded run is equivalent to proximity.All.
	prox := make([]float64, e.g.NumUsers())
	it, err := proximity.AcquireIterator(e.g, q.Seeker, e.prox)
	if err != nil {
		return Answer{}, err
	}
	defer it.Release()
	settled := 0
	sigmaMax := 0.0
	cutoff := false
	for {
		if settled%256 == 0 {
			if err := ctxErr(opts.Ctx); err != nil {
				return Answer{}, err
			}
		}
		entry, ok := it.Next()
		if !ok {
			break
		}
		if opts.Theta > 0 && entry.Prox < opts.Theta {
			cutoff = true
			break
		}
		if opts.MaxHops > 0 && entry.Hops > opts.MaxHops {
			cutoff = true
			break
		}
		prox[entry.User] = entry.Prox
		if entry.Prox > sigmaMax {
			sigmaMax = entry.Prox
		}
		settled++
		acc.UsersExpanded++
		if opts.MaxUsers > 0 && settled >= opts.MaxUsers {
			cutoff = true
			break
		}
	}

	lists := make([][]tagstore.Posting, len(tags))
	pos := make([]int, len(tags))
	for i, t := range tags {
		lists[i] = e.store.GlobalList(t)
	}
	scored := make(map[tagstore.ItemID]bool)
	h := topk.NewHeap(q.K)

	barSum := func() float64 {
		var s float64
		for i := range lists {
			if pos[i] < len(lists[i]) {
				s += float64(lists[i][pos[i]].TF)
			}
		}
		return s
	}

	// scoreItem completes item's exact score by random access.
	scoreItem := func(item tagstore.ItemID) {
		if scored[item] {
			return
		}
		scored[item] = true
		var social float64
		var global int64
		for _, t := range tags {
			global += int64(e.store.GlobalTF(item, t))
			acc.Random++
			for _, tp := range e.items.Taggers(item, t) {
				acc.Random++
				if p := prox[tp.User]; p > 0 {
					social += p * float64(tp.TF)
				}
			}
		}
		score := e.beta*social + (1-e.beta)*float64(global)
		if score > 0 {
			h.Offer(item, score)
		}
	}

	certified := false
	for round := 0; ; round++ {
		if round%64 == 0 {
			if err := ctxErr(opts.Ctx); err != nil {
				return Answer{}, err
			}
		}
		// Unseen-item bound at the current frontier.
		bound := (e.beta*sigmaMax + (1 - e.beta)) * barSum()
		if h.Full() && h.Threshold() >= bound-certEps {
			certified = true
			break
		}
		if bound == 0 {
			// Lists drained: every item with positive score was seen.
			certified = true
			break
		}
		moved := false
		for i := range lists {
			if pos[i] >= len(lists[i]) {
				continue
			}
			p := lists[i][pos[i]]
			pos[i]++
			acc.Sequential++
			moved = true
			scoreItem(p.Item)
		}
		if !moved {
			certified = true
			break
		}
	}

	return Answer{
		Results:      h.Results(),
		Exact:        certified && !cutoff,
		Access:       acc,
		UsersSettled: settled,
	}, nil
}
