package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/proximity"
	"repro/internal/tagstore"
)

// withItemIndex attaches a freshly built item index.
func withItemIndex(e *Engine) *Engine {
	e.AttachItemIndex(BuildItemIndex(e.Store()))
	return e
}

func TestItemIndexTaggers(t *testing.T) {
	e := tinyEngine(t, DefaultConfig())
	idx := BuildItemIndex(e.Store())
	if idx.Entries() != e.Store().NumTriples() {
		t.Fatalf("entries = %d, want %d", idx.Entries(), e.Store().NumTriples())
	}
	// u1 tagged i1 with t0, count 2.
	tps := idx.Taggers(1, 0)
	if len(tps) != 1 || tps[0].User != 1 || tps[0].TF != 2 {
		t.Fatalf("Taggers(i1,t0) = %+v", tps)
	}
	// i2 carries both tags, each from u2.
	if tps := idx.Taggers(2, 1); len(tps) != 1 || tps[0].User != 2 {
		t.Fatalf("Taggers(i2,t1) = %+v", tps)
	}
	if tps := idx.Taggers(0, 1); len(tps) != 0 {
		t.Fatalf("Taggers(i0,t1) = %+v, want empty", tps)
	}
}

func TestContextMergeTiny(t *testing.T) {
	e := tinyEngine(t, DefaultConfig())
	q := Query{Seeker: 0, Tags: []tagstore.TagID{0}, K: 2}
	ans, err := e.ContextMerge(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Exact {
		t.Fatal("unbounded ContextMerge not certified")
	}
	// Same world as TestSocialMergeTiny: σ(0,0)=1 → i0 = 1;
	// σ(0,1)=0.5 → i1 = 0.5·2 = 1; σ(0,2)=0.25 → i2 = 0.25; u3 unreachable.
	if len(ans.Results) != 2 {
		t.Fatalf("results = %+v", ans.Results)
	}
	for _, r := range ans.Results {
		if r.Item != 0 && r.Item != 1 {
			t.Fatalf("unexpected item %d in top-2 %+v", r.Item, ans.Results)
		}
		if math.Abs(r.Score-1.0) > 1e-12 {
			t.Fatalf("item %d score %g, want 1.0", r.Item, r.Score)
		}
	}
}

func TestSocialTATiny(t *testing.T) {
	e := withItemIndex(tinyEngine(t, DefaultConfig()))
	q := Query{Seeker: 0, Tags: []tagstore.TagID{0}, K: 2}
	ans, err := e.SocialTA(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Exact {
		t.Fatal("unbounded SocialTA not certified")
	}
	if len(ans.Results) != 2 {
		t.Fatalf("results = %+v", ans.Results)
	}
	for _, r := range ans.Results {
		if math.Abs(r.Score-1.0) > 1e-12 {
			t.Fatalf("item %d score %g, want exact 1.0", r.Item, r.Score)
		}
	}
}

func TestSocialTARequiresItemIndex(t *testing.T) {
	e := tinyEngine(t, DefaultConfig())
	_, err := e.SocialTA(Query{Seeker: 0, Tags: []tagstore.TagID{0}, K: 1}, Options{})
	if err != errNoItemIndex {
		t.Fatalf("err = %v, want errNoItemIndex", err)
	}
}

func TestVariantsRejectUnsupportedOptions(t *testing.T) {
	e := withItemIndex(tinyEngine(t, DefaultConfig()))
	q := Query{Seeker: 0, Tags: []tagstore.TagID{0}, K: 1}
	for _, opts := range []Options{{LandmarkPrune: true}, {UseNeighborhoods: true}} {
		if _, err := e.ContextMerge(q, opts); err != errUnsupportedOption {
			t.Errorf("ContextMerge(%+v): err = %v", opts, err)
		}
		if _, err := e.SocialTA(q, opts); err != errUnsupportedOption {
			t.Errorf("SocialTA(%+v): err = %v", opts, err)
		}
	}
	// Invalid queries still rejected.
	if _, err := e.ContextMerge(Query{Seeker: 0, Tags: nil, K: 1}, Options{}); err == nil {
		t.Error("ContextMerge accepted empty tags")
	}
	if _, err := e.SocialTA(Query{Seeker: 99, Tags: []tagstore.TagID{0}, K: 1}, Options{}); err == nil {
		t.Error("SocialTA accepted bad seeker")
	}
}

// TestPropertyVariantsEqualExact: ContextMerge and SocialTA certified
// answers must be exact top-k sets across random corpora and
// parameters — the same property SocialMerge is held to.
func TestPropertyVariantsEqualExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		betas := []float64{1, 0.7, 0.3, 0}
		alphas := []float64{1, 0.8, 0.5}
		cfg := Config{
			Proximity: proximity.Params{Alpha: alphas[rng.Intn(len(alphas))], SelfWeight: 1},
			Beta:      betas[rng.Intn(len(betas))],
		}
		e, ds := randomCorpusEngine(t, seed, cfg)
		withItemIndex(e)
		for trial := 0; trial < 3; trial++ {
			q := Query{
				Seeker: graph.UserID(rng.Intn(ds.Graph.NumUsers())),
				Tags:   []tagstore.TagID{tagstore.TagID(rng.Intn(20)), tagstore.TagID(rng.Intn(20))},
				K:      1 + rng.Intn(12),
			}
			cm, err := e.ContextMerge(q, Options{})
			if err != nil {
				t.Logf("seed %d: ContextMerge: %v", seed, err)
				return false
			}
			if !cm.Exact {
				t.Logf("seed %d: ContextMerge not certified", seed)
				return false
			}
			if !topKEquivalent(t, e, q, cm) {
				t.Logf("seed %d trial %d: ContextMerge mismatch (seeker %d tags %v k %d beta %g)",
					seed, trial, q.Seeker, q.Tags, q.K, cfg.Beta)
				return false
			}
			ta, err := e.SocialTA(q, Options{})
			if err != nil {
				t.Logf("seed %d: SocialTA: %v", seed, err)
				return false
			}
			if !ta.Exact {
				t.Logf("seed %d: SocialTA not certified", seed)
				return false
			}
			if !topKEquivalent(t, e, q, ta) {
				t.Logf("seed %d trial %d: SocialTA mismatch (seeker %d tags %v k %d beta %g)",
					seed, trial, q.Seeker, q.Tags, q.K, cfg.Beta)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestSocialTAScoresAreExact: unlike the merge algorithms (which report
// certified lower bounds), SocialTA reports exact scores. Verify
// against ExactSocial scores item by item.
func TestSocialTAScoresAreExact(t *testing.T) {
	cfg := Config{Proximity: proximity.Params{Alpha: 0.7, SelfWeight: 1}, Beta: 0.8}
	e, ds := randomCorpusEngine(t, 99, cfg)
	withItemIndex(e)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		q := Query{
			Seeker: graph.UserID(rng.Intn(ds.Graph.NumUsers())),
			Tags:   []tagstore.TagID{tagstore.TagID(rng.Intn(20))},
			K:      5,
		}
		ta, err := e.SocialTA(q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		full, err := e.ExactSocial(Query{Seeker: q.Seeker, Tags: q.Tags, K: e.Store().NumItems()})
		if err != nil {
			t.Fatal(err)
		}
		exact := make(map[int32]float64, len(full.Results))
		for _, r := range full.Results {
			exact[r.Item] = r.Score
		}
		for _, r := range ta.Results {
			if math.Abs(r.Score-exact[r.Item]) > 1e-9 {
				t.Fatalf("trial %d: item %d score %g, exact %g", trial, r.Item, r.Score, exact[r.Item])
			}
		}
	}
}

func TestVariantCutoffsClearExact(t *testing.T) {
	cfg := DefaultConfig()
	e, _ := randomCorpusEngine(t, 3, cfg)
	withItemIndex(e)
	q := Query{Seeker: 0, Tags: []tagstore.TagID{0, 1}, K: 5}
	for name, opts := range map[string]Options{
		"theta":    {Theta: 0.9},
		"hops":     {MaxHops: 1},
		"maxusers": {MaxUsers: 2},
	} {
		cm, err := e.ContextMerge(q, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if cm.Exact {
			t.Errorf("%s: ContextMerge with cutoff claims exactness", name)
		}
		ta, err := e.SocialTA(q, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ta.Exact {
			t.Errorf("%s: SocialTA with cutoff claims exactness", name)
		}
	}
}

// TestContextMergeRefineScores: RefineScores drains the social mass, so
// reported scores equal exact scores (not just certified lower bounds).
func TestContextMergeRefineScores(t *testing.T) {
	cfg := Config{Proximity: proximity.Params{Alpha: 0.8, SelfWeight: 1}, Beta: 1}
	e, ds := randomCorpusEngine(t, 17, cfg)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 5; trial++ {
		q := Query{
			Seeker: graph.UserID(rng.Intn(ds.Graph.NumUsers())),
			Tags:   []tagstore.TagID{tagstore.TagID(rng.Intn(20))},
			K:      4,
		}
		got, err := e.ContextMerge(q, Options{RefineScores: true})
		if err != nil {
			t.Fatal(err)
		}
		full, err := e.ExactSocial(Query{Seeker: q.Seeker, Tags: q.Tags, K: e.Store().NumItems()})
		if err != nil {
			t.Fatal(err)
		}
		exact := make(map[int32]float64, len(full.Results))
		for _, r := range full.Results {
			exact[r.Item] = r.Score
		}
		for _, r := range got.Results {
			if math.Abs(r.Score-exact[r.Item]) > 1e-9 {
				t.Fatalf("trial %d: refined score %g != exact %g for item %d",
					trial, r.Score, exact[r.Item], r.Item)
			}
		}
	}
}

// TestVariantAccessProfiles documents the qualitative cost contrast the
// Fig-12 experiment quantifies: SocialMerge settles fewer users than
// ContextMerge (which expands the whole ball), and SocialTA performs
// more random accesses than either merge algorithm.
func TestVariantAccessProfiles(t *testing.T) {
	e, ds := randomCorpusEngine(t, 11, DefaultConfig())
	withItemIndex(e)
	rng := rand.New(rand.NewSource(4))
	var smUsers, cmUsers, smRand, taRand int64
	for trial := 0; trial < 8; trial++ {
		q := Query{
			Seeker: graph.UserID(rng.Intn(ds.Graph.NumUsers())),
			Tags:   []tagstore.TagID{tagstore.TagID(rng.Intn(20))},
			K:      5,
		}
		sm, err := e.SocialMerge(q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		cm, err := e.ContextMerge(q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		ta, err := e.SocialTA(q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		smUsers += int64(sm.UsersSettled)
		cmUsers += int64(cm.UsersSettled)
		smRand += sm.Access.Random
		taRand += ta.Access.Random
	}
	if smUsers > cmUsers {
		t.Errorf("SocialMerge settled %d users vs ContextMerge %d; frontier laziness lost", smUsers, cmUsers)
	}
	if taRand <= smRand {
		t.Errorf("SocialTA random accesses %d <= SocialMerge %d; random-access trade missing", taRand, smRand)
	}
}

// TestVariantsEmptyAndOversizedQueries: a tag nobody used yields an
// empty exact answer; k beyond the item universe returns everything
// with positive score — for every portfolio member.
func TestVariantsEmptyAndOversizedQueries(t *testing.T) {
	gb := graphBuilderWithEdge(t)
	tb := tagstore.NewBuilder(2, 3, 2)
	tb.Add(0, 0, 0)
	tb.Add(1, 1, 0)
	store, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	g, err := gb.Build()
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(g, store, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	withItemIndex(e)

	algos := map[string]func(Query) (Answer, error){
		"SocialMerge":  func(q Query) (Answer, error) { return e.SocialMerge(q, Options{}) },
		"ContextMerge": func(q Query) (Answer, error) { return e.ContextMerge(q, Options{}) },
		"SocialTA":     func(q Query) (Answer, error) { return e.SocialTA(q, Options{}) },
	}
	for name, run := range algos {
		// Tag 1 has no postings anywhere.
		ans, err := run(Query{Seeker: 0, Tags: []tagstore.TagID{1}, K: 5})
		if err != nil {
			t.Fatalf("%s empty tag: %v", name, err)
		}
		if len(ans.Results) != 0 || !ans.Exact {
			t.Fatalf("%s empty tag: %+v", name, ans)
		}
		// k = 100 ≫ universe; duplicate tags in the query are deduped.
		ans, err = run(Query{Seeker: 0, Tags: []tagstore.TagID{0, 0, 0}, K: 100})
		if err != nil {
			t.Fatalf("%s oversized k: %v", name, err)
		}
		if len(ans.Results) != 2 || !ans.Exact {
			t.Fatalf("%s oversized k: %+v", name, ans)
		}
		// Duplicate tags must not double-count: i0 scored once.
		if ans.Results[0].Score > 1.0+1e-9 {
			t.Fatalf("%s duplicate tags double-counted: %+v", name, ans.Results)
		}
	}
}

func graphBuilderWithEdge(t *testing.T) *graph.Builder {
	t.Helper()
	gb := graph.NewBuilder(2)
	gb.AddEdge(0, 1, 1.0)
	return gb
}

// TestQuickItemIndexCompleteness: summing tagger frequencies for any
// (item, tag) must reproduce the store's global frequency.
func TestQuickItemIndexCompleteness(t *testing.T) {
	e, _ := randomCorpusEngine(t, 23, DefaultConfig())
	idx := BuildItemIndex(e.Store())
	prop := func(itemSeed, tagSeed uint16) bool {
		item := tagstore.ItemID(int(itemSeed) % e.Store().NumItems())
		tag := tagstore.TagID(int(tagSeed) % e.Store().NumTags())
		var sum int64
		for _, tp := range idx.Taggers(item, tag) {
			sum += int64(tp.TF)
		}
		return sum == int64(e.Store().GlobalTF(item, tag))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
