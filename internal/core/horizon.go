package core

import (
	"context"
	"fmt"

	"repro/internal/graph"
	"repro/internal/proximity"
)

// SeekerHorizon is the materialized social neighbourhood of one seeker:
// the proximity-ordered users inside the horizon plus the residual
// bound beyond the materialized prefix. It is the single-seeker
// counterpart of NeighborhoodIndex, intended for query-time caching
// (see internal/exec): one expansion, many queries.
type SeekerHorizon struct {
	seeker   graph.UserID
	list     []proximity.Entry
	residual float64
}

// MaterializeHorizon expands the seeker's neighbourhood once and
// returns it in reusable form. maxUsers bounds the materialized prefix
// (0 means no bound: materialize the full horizon, which the proximity
// params' MinSigma floor keeps finite on connected graphs).
func (e *Engine) MaterializeHorizon(seeker graph.UserID, maxUsers int) (*SeekerHorizon, error) {
	return e.MaterializeHorizonCtx(nil, seeker, maxUsers)
}

// MaterializeHorizonCtx is MaterializeHorizon with cancellation
// checkpoints: a non-nil ctx that is cancelled mid-expansion aborts the
// (potentially graph-wide) walk promptly with ctx.Err().
func (e *Engine) MaterializeHorizonCtx(ctx context.Context, seeker graph.UserID, maxUsers int) (*SeekerHorizon, error) {
	it, err := proximity.AcquireIterator(e.g, seeker, e.prox)
	if err != nil {
		return nil, err
	}
	defer it.Release()
	h := &SeekerHorizon{seeker: seeker}
	for maxUsers <= 0 || len(h.list) < maxUsers {
		if len(h.list)%256 == 0 {
			if err := ctxErr(ctx); err != nil {
				return nil, err
			}
		}
		entry, ok := it.Next()
		if !ok {
			break
		}
		h.list = append(h.list, entry)
	}
	h.residual = it.PeekBound()
	return h, nil
}

// Seeker returns the user this horizon was materialized for.
func (h *SeekerHorizon) Seeker() graph.UserID { return h.seeker }

// Size returns the number of materialized users.
func (h *SeekerHorizon) Size() int { return len(h.list) }

// Residual returns the proximity bound on users beyond the prefix
// (0 when the full horizon was materialized).
func (h *SeekerHorizon) Residual() float64 { return h.residual }

// Users returns the ids of the materialized users, proximity-descending
// (the seeker itself first). The slice is shared with the horizon; do
// not mutate it. Serving caches use it as the entry's member set for
// edge-scoped invalidation: because proximity is a hop-damped max path
// product, a friendship mutation on edge (u, v) can only change this
// horizon if u or v is among these members — any path from the seeker
// through the mutated edge reaches u or v first, at a proximity the
// materialized prefix (or its residual bound) already dominates.
func (h *SeekerHorizon) Users(buf []graph.UserID) []graph.UserID {
	users := buf[:0]
	for _, e := range h.list {
		users = append(users, e.User)
	}
	return users
}

// MemoryBytes estimates the resident size of the horizon.
func (h *SeekerHorizon) MemoryBytes() int { return 16 + len(h.list)*24 }

// SocialMergeWithHorizon answers the query using a previously
// materialized horizon instead of expanding the graph. The horizon must
// belong to the query's seeker and must have been materialized with the
// engine's proximity parameters; certification semantics match
// Options.UseNeighborhoods (a truncated horizon can make the answer
// approximate).
func (e *Engine) SocialMergeWithHorizon(q Query, h *SeekerHorizon, opts Options) (Answer, error) {
	var ans Answer
	if err := e.SocialMergeWithHorizonInto(q, h, opts, &ans); err != nil {
		return Answer{}, err
	}
	return ans, nil
}

// SocialMergeWithHorizonInto is SocialMergeWithHorizon writing into a
// caller-owned Answer (see SocialMergeInto): with a recycled Answer the
// whole cached read path — horizon adapter, candidate table, result
// assembly — runs without allocating. This is the single validation
// point for horizon-backed execution.
func (e *Engine) SocialMergeWithHorizonInto(q Query, h *SeekerHorizon, opts Options, ans *Answer) error {
	if h == nil {
		return fmt.Errorf("core: nil horizon")
	}
	if h.seeker != q.Seeker {
		return fmt.Errorf("core: horizon belongs to seeker %d, query is for %d", h.seeker, q.Seeker)
	}
	if opts.UseNeighborhoods || opts.LandmarkPrune {
		return fmt.Errorf("core: horizon execution excludes UseNeighborhoods/LandmarkPrune")
	}
	if err := e.validateQuery(q); err != nil {
		return err
	}
	return e.socialMergeRun(q, nil, h, opts, ans)
}
