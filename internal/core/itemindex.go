package core

import (
	"repro/internal/tagstore"
)

// TaggerPosting is one entry of an item-pivoted posting list: a user
// and the frequency with which they applied the list's tag to the
// list's item.
type TaggerPosting struct {
	User int32
	TF   int32
}

// ItemIndex pivots the tagging store by item: for every (item, tag)
// pair it lists the users who applied that tag to that item. This is
// the random-access structure the SocialTA algorithm probes to
// complete an item's exact social score the moment the item is first
// seen on a global list, instead of waiting for its taggers to be
// reached by the frontier.
//
// The index costs O(numTriples) space — the same order as the store
// itself — and is immutable after construction.
type ItemIndex struct {
	byTagItem map[uint64][]TaggerPosting
	entries   int
}

// BuildItemIndex constructs the item-pivoted index from a store.
func BuildItemIndex(store *tagstore.Store) *ItemIndex {
	trs := store.Triples()
	idx := &ItemIndex{
		byTagItem: make(map[uint64][]TaggerPosting),
		entries:   len(trs),
	}
	for _, tr := range trs {
		key := packTagItem(tr.Tag, tr.Item)
		idx.byTagItem[key] = append(idx.byTagItem[key], TaggerPosting{User: tr.User, TF: tr.Count})
	}
	return idx
}

// Taggers returns the users who applied tag to item, with frequencies.
// The returned slice is shared and must not be modified.
func (x *ItemIndex) Taggers(item tagstore.ItemID, tag tagstore.TagID) []TaggerPosting {
	return x.byTagItem[packTagItem(tag, item)]
}

// Entries reports the total number of index entries (== triples).
func (x *ItemIndex) Entries() int { return x.entries }

func packTagItem(tag tagstore.TagID, item tagstore.ItemID) uint64 {
	return uint64(uint32(tag))<<32 | uint64(uint32(item))
}

// AttachItemIndex installs the item-pivoted index used by SocialTA.
func (e *Engine) AttachItemIndex(idx *ItemIndex) { e.items = idx }

// HasItemIndex reports whether SocialTA can run on this engine.
func (e *Engine) HasItemIndex() bool { return e.items != nil }
