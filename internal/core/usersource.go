package core

import (
	"errors"

	"repro/internal/graph"
	"repro/internal/proximity"
)

var (
	errNoLandmarks       = errors.New("core: Options.LandmarkPrune requires AttachLandmarks")
	errNoNeighborhoods   = errors.New("core: Options.UseNeighborhoods requires AttachNeighborhoods")
	errNoItemIndex       = errors.New("core: SocialTA requires AttachItemIndex")
	errUnsupportedOption = errors.New("core: option not supported by this algorithm")
)

// userSource abstracts where SocialMerge gets its proximity-ordered user
// stream from: a live graph expansion (exact) or a materialized
// neighbourhood list (accelerated, possibly truncated).
type userSource interface {
	// Next yields the next user in non-increasing proximity order.
	Next() (proximity.Entry, bool)
	// Bound returns a certified upper bound on the proximity of every
	// user not yet yielded. After exhaustion it returns the residual
	// bound (0 for a complete expansion, the truncation level for a
	// materialized list).
	Bound() float64
}

func (e *Engine) newUserSource(seeker graph.UserID, opts Options) (userSource, error) {
	if opts.UseNeighborhoods {
		return e.neighbors.source(seeker), nil
	}
	it, err := proximity.AcquireIterator(e.g, seeker, e.prox)
	if err != nil {
		return nil, err
	}
	return (*iteratorSource)(it), nil
}

// releaseSource returns a pooled live-expansion source; materialized
// sources own no recyclable state and pass through.
func releaseSource(src userSource) {
	if s, ok := src.(*iteratorSource); ok {
		(*proximity.Iterator)(s).Release()
	}
}

// iteratorSource adapts proximity.Iterator to userSource. The named-type
// pointer conversion keeps the adapter allocation-free.
type iteratorSource proximity.Iterator

func (s *iteratorSource) Next() (proximity.Entry, bool) {
	return (*proximity.Iterator)(s).Next()
}

func (s *iteratorSource) Bound() float64 {
	return (*proximity.Iterator)(s).PeekBound()
}
