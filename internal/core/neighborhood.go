package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/proximity"
)

// NeighborhoodIndex materializes, for every user, the L closest users by
// social proximity together with the residual frontier bound at
// truncation. SocialMerge can then consume the precomputed list instead
// of expanding the graph at query time (Options.UseNeighborhoods) —
// trading index space and build time for per-query latency, the Fig 10
// ablation. Queries remain certified-exact whenever the algorithm
// terminates before the materialized horizon; beyond it, the residual
// bound either still certifies the answer or the result is flagged
// approximate.
type NeighborhoodIndex struct {
	lists    [][]proximity.Entry
	residual []float64
}

// BuildNeighborhoods materializes the top-L proximity entries per user.
// L must be ≥ 1; the seeker itself occupies the first slot of each list.
func BuildNeighborhoods(g *graph.Graph, l int, params proximity.Params) (*NeighborhoodIndex, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if l < 1 {
		return nil, fmt.Errorf("core: neighbourhood size %d must be >= 1", l)
	}
	n := g.NumUsers()
	idx := &NeighborhoodIndex{
		lists:    make([][]proximity.Entry, n),
		residual: make([]float64, n),
	}
	for u := 0; u < n; u++ {
		it, err := proximity.NewIterator(g, graph.UserID(u), params)
		if err != nil {
			return nil, err
		}
		list := make([]proximity.Entry, 0, l)
		for len(list) < l {
			e, ok := it.Next()
			if !ok {
				break
			}
			list = append(list, e)
		}
		idx.lists[u] = list
		idx.residual[u] = it.PeekBound()
	}
	return idx, nil
}

// Horizon returns the materialized list of seeker s (aliases internal
// storage) and the residual proximity bound beyond it.
func (idx *NeighborhoodIndex) Horizon(s graph.UserID) ([]proximity.Entry, float64) {
	return idx.lists[s], idx.residual[s]
}

// MemoryBytes estimates the resident size of the index (for Table 2).
func (idx *NeighborhoodIndex) MemoryBytes() int {
	bytes := len(idx.residual) * 8
	for _, l := range idx.lists {
		bytes += len(l) * 24 // UserID + Prox + Hops
	}
	return bytes
}

func (idx *NeighborhoodIndex) source(s graph.UserID) userSource {
	return &materializedSource{list: idx.lists[s], residual: idx.residual[s]}
}

type materializedSource struct {
	list     []proximity.Entry
	residual float64
	pos      int
}

func (m *materializedSource) Next() (proximity.Entry, bool) {
	if m.pos >= len(m.list) {
		return proximity.Entry{}, false
	}
	e := m.list[m.pos]
	m.pos++
	return e, true
}

func (m *materializedSource) Bound() float64 {
	if m.pos >= len(m.list) {
		return m.residual
	}
	return m.list[m.pos].Prox
}
