package core

import (
	"container/heap"

	"repro/internal/proximity"
	"repro/internal/tagstore"
	"repro/internal/topk"
)

// ContextMerge answers the query with the literature's
// materialize-then-merge baseline: it first expands the seeker's whole
// social ball (every user with σ above the proximity floor), then
// consumes the per-(friend, tag) posting lists through a priority queue
// ordered by σ·tf — always the globally largest undelivered score
// contribution first — while tracking the total undelivered mass for
// early termination.
//
// Contrast with SocialMerge: ContextMerge pays the full network
// expansion up front and orders individual postings perfectly, but its
// termination bound (the remaining-mass sum) is much weaker than
// SocialMerge's frontier bound, so it usually consumes far more
// postings. The Fig-12 experiment measures exactly this trade.
//
// Options: Theta, MaxHops and MaxUsers bound the up-front expansion
// (marking the answer approximate); RefineScores drains every list;
// LandmarkPrune and UseNeighborhoods are not meaningful here and are
// rejected.
func (e *Engine) ContextMerge(q Query, opts Options) (Answer, error) {
	if opts.LandmarkPrune || opts.UseNeighborhoods {
		return Answer{}, errUnsupportedOption
	}
	if err := e.validateQuery(q); err != nil {
		return Answer{}, err
	}
	tags := dedupTags(q.Tags)

	run := &cmRun{
		e:     e,
		k:     q.K,
		beta:  e.beta,
		tags:  tags,
		cands: make(map[tagstore.ItemID]*candidate),
		lists: make([][]tagstore.Posting, len(tags)),
		pos:   make([]int, len(tags)),
	}
	for i, t := range tags {
		run.lists[i] = e.store.GlobalList(t)
	}

	// Phase 1: materialize the ball.
	it, err := proximity.AcquireIterator(e.g, q.Seeker, e.prox)
	if err != nil {
		return Answer{}, err
	}
	defer it.Release()
	for iter := 0; ; iter++ {
		if iter%64 == 0 {
			if err := ctxErr(opts.Ctx); err != nil {
				return Answer{}, err
			}
		}
		entry, ok := it.Next()
		if !ok {
			break
		}
		if opts.Theta > 0 && entry.Prox < opts.Theta {
			run.cutoffFired = true
			break
		}
		if opts.MaxHops > 0 && entry.Hops > opts.MaxHops {
			run.cutoffFired = true
			break
		}
		run.addUserCursors(entry.User, entry.Prox)
		run.settled++
		run.acc.UsersExpanded++
		if opts.MaxUsers > 0 && run.settled >= opts.MaxUsers {
			run.cutoffFired = true
			break
		}
	}

	// Phase 2: merge.
	certified, err := run.merge(opts)
	if err != nil {
		return Answer{}, err
	}

	h := topk.NewHeap(q.K)
	for item, c := range run.cands {
		if c.lower > 0 {
			h.Offer(item, c.lower)
		}
	}
	return Answer{
		Results:      h.Results(),
		Exact:        certified && !run.cutoffFired,
		Access:       run.acc,
		UsersSettled: run.settled,
	}, nil
}

// candidate is the map-backed NRA interval used by the baseline
// algorithms (the SocialMerge hot path uses topk.Table instead).
type candidate struct {
	lower float64 // confirmed score mass (social seen + exact global part)
	rem   int64   // Σ_t gtf(i,t) − Σ_t seen social tf(i,t)
}

// cmCursor is one live per-(user,tag) posting list.
type cmCursor struct {
	sigma float64
	list  []tagstore.UserPosting
	pos   int
	tag   int // index into run.tags
}

// priority is the score contribution of the cursor's head posting.
func (c *cmCursor) priority() float64 { return c.sigma * float64(c.list[c.pos].TF) }

// remaining is the σ-weighted mass still undelivered by this cursor.
func (c *cmCursor) remaining() float64 {
	var tf int64
	for _, p := range c.list[c.pos:] {
		tf += int64(p.TF)
	}
	return c.sigma * float64(tf)
}

type cmHeap []*cmCursor

func (h cmHeap) Len() int            { return len(h) }
func (h cmHeap) Less(i, j int) bool  { return h[i].priority() > h[j].priority() }
func (h cmHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *cmHeap) Push(x interface{}) { *h = append(*h, x.(*cmCursor)) }
func (h *cmHeap) Pop() interface{} {
	old := *h
	n := len(old)
	c := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return c
}

type cmRun struct {
	e     *Engine
	k     int
	beta  float64
	tags  []tagstore.TagID
	cands map[tagstore.ItemID]*candidate

	lists [][]tagstore.Posting // global lists (candidate discovery + β<1 mass)
	pos   []int

	cursors  cmHeap
	remTotal float64 // Σ over live cursors of σ·(undelivered tf): social uncertainty
	sigmaMax float64 // max σ in the ball (static; bounds per-item remainders)

	acc         topk.Access
	settled     int
	cutoffFired bool
}

// addUserCursors registers user v's non-empty lists for the query tags.
func (r *cmRun) addUserCursors(v int32, sigma float64) {
	if sigma > r.sigmaMax {
		r.sigmaMax = sigma
	}
	if r.beta == 0 {
		return
	}
	for ti, t := range r.tags {
		list := r.e.store.UserList(v, t)
		if len(list) == 0 {
			continue
		}
		c := &cmCursor{sigma: sigma, list: list, tag: ti}
		r.remTotal += c.remaining()
		heap.Push(&r.cursors, c)
	}
}

// ensureCandidate mirrors mergeRun.ensureCandidate: random-accesses the
// global frequencies on first sight to seed rem and the (1−β) part.
func (r *cmRun) ensureCandidate(item tagstore.ItemID) *candidate {
	if c, ok := r.cands[item]; ok {
		return c
	}
	c := &candidate{}
	var gsum int64
	for _, t := range r.tags {
		gsum += int64(r.e.store.GlobalTF(item, t))
		r.acc.Random++
	}
	c.rem = gsum
	c.lower = (1 - r.beta) * float64(gsum)
	r.cands[item] = c
	return c
}

func (r *cmRun) barSum() float64 {
	var sum float64
	for i := range r.lists {
		if r.pos[i] < len(r.lists[i]) {
			sum += float64(r.lists[i][r.pos[i]].TF)
		}
	}
	return sum
}

func (r *cmRun) advanceGlobalCursors() bool {
	moved := false
	for i := range r.lists {
		if r.pos[i] >= len(r.lists[i]) {
			continue
		}
		p := r.lists[i][r.pos[i]]
		r.pos[i]++
		r.acc.Sequential++
		moved = true
		r.ensureCandidate(p.Item)
	}
	return moved
}

// canStop certifies the current top-k set: social uncertainty of any
// item is bounded by min(remTotal, σmax·rem(i)); completely unseen
// items additionally by the global-list bar.
func (r *cmRun) canStop() bool {
	h := topk.NewHeap(r.k)
	for item, c := range r.cands {
		if c.lower > 0 {
			h.Offer(item, c.lower)
		}
	}
	tau := h.Threshold()
	members := make(map[tagstore.ItemID]bool, r.k)
	for _, res := range h.Results() {
		members[res.Item] = true
	}
	bar := r.barSum()
	unseenSocial := r.remTotal
	if s := r.sigmaMax * bar; s < unseenSocial {
		unseenSocial = s
	}
	if tau < r.beta*unseenSocial+(1-r.beta)*bar-certEps {
		return false
	}
	for item, c := range r.cands {
		if members[item] {
			continue
		}
		rem := r.remTotal
		if s := r.sigmaMax * float64(c.rem); s < rem {
			rem = s
		}
		if tau < c.lower+r.beta*rem-certEps {
			return false
		}
	}
	return true
}

// merge drains the cursor queue in σ·tf order, interleaving global-list
// rounds, until certified, exhausted, or cancelled. Reports
// certification.
func (r *cmRun) merge(opts Options) (bool, error) {
	const checkEvery = 64
	sinceCheck := 0
	sincePoll := 0
	for r.cursors.Len() > 0 {
		if sincePoll++; sincePoll >= checkEvery {
			sincePoll = 0
			if err := ctxErr(opts.Ctx); err != nil {
				return false, err
			}
		}
		if !opts.RefineScores {
			sinceCheck++
			if sinceCheck >= checkEvery {
				sinceCheck = 0
				if r.canStop() {
					return true, nil
				}
			}
		}
		c := r.cursors[0]
		p := c.list[c.pos]
		contribution := c.priority()
		c.pos++
		r.acc.Sequential++
		r.remTotal -= contribution
		if r.remTotal < 0 { // float drift; the true remainder is ≥ 0
			r.remTotal = 0
		}
		if c.pos < len(c.list) {
			heap.Fix(&r.cursors, 0)
		} else {
			heap.Pop(&r.cursors)
		}

		cand := r.ensureCandidate(p.Item)
		cand.lower += r.beta * contribution
		cand.rem -= int64(p.TF)

		// One global round every few pops keeps the unseen-item bar
		// decaying at a rate comparable to SocialMerge's.
		if sinceCheck%4 == 0 {
			r.advanceGlobalCursors()
		}
	}
	r.remTotal = 0
	// Social mass fully delivered; finish the global walk for the
	// (1−β) component and the unseen bound.
	for i := 0; ; i++ {
		if i%8 == 0 {
			if err := ctxErr(opts.Ctx); err != nil {
				return false, err
			}
			if r.canStop() {
				return true, nil
			}
		}
		if !r.advanceGlobalCursors() {
			return r.canStop(), nil
		}
	}
}
