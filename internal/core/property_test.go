package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/proximity"
	"repro/internal/tagstore"
)

// randomCorpusEngine builds an engine over a random small corpus.
func randomCorpusEngine(t testing.TB, seed int64, cfg Config) (*Engine, *gen.Dataset) {
	t.Helper()
	p := gen.CorpusParams{
		Name: "prop",
		Graph: gen.GraphParams{
			Kind: gen.BarabasiAlbert, NumUsers: 60, M: 2,
			MinWeight: 0.2, MaxWeight: 1,
		},
		NumItems:       120,
		NumTags:        20,
		TriplesPerUser: 15,
		TagZipfS:       1.2,
		ItemZipfS:      1.2,
		Homophily:      0.4,
	}
	ds, err := gen.Generate(p, seed)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(ds.Graph, ds.Store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, ds
}

// TestPropertySocialMergeEqualsExact is the repository's central
// correctness property: across random corpora, seekers, ks, betas and
// damping factors, SocialMerge's certified answer is a valid exact top-k
// set.
func TestPropertySocialMergeEqualsExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		betas := []float64{1, 0.7, 0.3, 0}
		alphas := []float64{1, 0.8, 0.5}
		cfg := Config{
			Proximity: proximity.Params{Alpha: alphas[rng.Intn(len(alphas))], SelfWeight: 1},
			Beta:      betas[rng.Intn(len(betas))],
		}
		e, ds := randomCorpusEngine(t, seed, cfg)
		for trial := 0; trial < 4; trial++ {
			q := Query{
				Seeker: graph.UserID(rng.Intn(ds.Graph.NumUsers())),
				Tags:   []tagstore.TagID{tagstore.TagID(rng.Intn(20)), tagstore.TagID(rng.Intn(20))},
				K:      1 + rng.Intn(12),
			}
			ans, err := e.SocialMerge(q, Options{})
			if err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
			if !ans.Exact {
				t.Logf("seed %d: exact run not certified", seed)
				return false
			}
			if !topKEquivalent(t, e, q, ans) {
				t.Logf("seed %d trial %d: mismatch (seeker %d tags %v k %d beta %g alpha %g)",
					seed, trial, q.Seeker, q.Tags, q.K, cfg.Beta, cfg.Proximity.Alpha)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// topKEquivalent is the non-fatal counterpart of assertTopKEquivalent.
func topKEquivalent(t testing.TB, e *Engine, q Query, got Answer) bool {
	t.Helper()
	full, err := e.ExactSocial(Query{Seeker: q.Seeker, Tags: q.Tags, K: e.Store().NumItems()})
	if err != nil {
		return false
	}
	exactScore := make(map[int32]float64, len(full.Results))
	for _, r := range full.Results {
		exactScore[r.Item] = r.Score
	}
	wantLen := q.K
	if len(full.Results) < wantLen {
		wantLen = len(full.Results)
	}
	if len(got.Results) != wantLen {
		t.Logf("got %d results, want %d", len(got.Results), wantLen)
		return false
	}
	// The certification is set-level: the multiset of exact scores of the
	// returned items must equal the exact top-k score multiset. Internal
	// order follows certified lower bounds and may differ under near-ties,
	// so compare sorted exact scores, not positions.
	gotExact := make([]float64, 0, wantLen)
	for i, r := range got.Results {
		es, ok := exactScore[r.Item]
		if !ok {
			t.Logf("rank %d: item %d not in exact answer", i, r.Item)
			return false
		}
		if r.Score > es+1e-9 {
			t.Logf("rank %d: reported %g > exact %g", i, r.Score, es)
			return false
		}
		gotExact = append(gotExact, es)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(gotExact)))
	for i, es := range gotExact {
		if diff := es - full.Results[i].Score; diff > 1e-9 || diff < -1e-9 {
			t.Logf("sorted rank %d: exact %g vs expected %g", i, es, full.Results[i].Score)
			return false
		}
	}
	return true
}

// TestPropertyNeighborhoodFullHorizonEqualsExact: a materialized index
// covering the whole network must behave exactly like live expansion.
func TestPropertyNeighborhoodFullHorizonEqualsExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e, ds := randomCorpusEngine(t, seed, DefaultConfig())
		idx, err := BuildNeighborhoods(e.Graph(), ds.Graph.NumUsers(), e.ProximityParams())
		if err != nil {
			return false
		}
		e.AttachNeighborhoods(idx)
		for trial := 0; trial < 3; trial++ {
			q := Query{
				Seeker: graph.UserID(rng.Intn(ds.Graph.NumUsers())),
				Tags:   []tagstore.TagID{tagstore.TagID(rng.Intn(20))},
				K:      1 + rng.Intn(8),
			}
			ans, err := e.SocialMerge(q, Options{UseNeighborhoods: true})
			if err != nil || !ans.Exact {
				return false
			}
			if !topKEquivalent(t, e, q, ans) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyApproxScoresAreLowerBounds: every approximate variant
// reports only items with genuinely positive scores, never overstating
// them.
func TestPropertyApproxScoresAreLowerBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e, ds := randomCorpusEngine(t, seed, DefaultConfig())
		full, err := e.ExactSocial(Query{
			Seeker: 0, Tags: []tagstore.TagID{0, 1}, K: e.Store().NumItems(),
		})
		if err != nil {
			return false
		}
		exactScore := make(map[int32]float64)
		for _, r := range full.Results {
			exactScore[r.Item] = r.Score
		}
		optsList := []Options{
			{Theta: 0.05},
			{MaxHops: 2},
			{MaxUsers: 5},
			{Theta: 0.01, MaxUsers: 10},
		}
		opts := optsList[rng.Intn(len(optsList))]
		ans, err := e.SocialMerge(Query{Seeker: 0, Tags: []tagstore.TagID{0, 1}, K: 10}, opts)
		if err != nil {
			return false
		}
		for _, r := range ans.Results {
			if r.Score > exactScore[r.Item]+1e-9 {
				return false
			}
			if r.Score <= 0 {
				return false
			}
		}
		_ = ds
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyGlobalTopKMatchesOracle: TA over global lists equals the
// brute-force global score ranking.
func TestPropertyGlobalTopKMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e, ds := randomCorpusEngine(t, seed, DefaultConfig())
		for trial := 0; trial < 3; trial++ {
			tags := []tagstore.TagID{
				tagstore.TagID(rng.Intn(20)),
				tagstore.TagID(rng.Intn(20)),
			}
			k := 1 + rng.Intn(10)
			ans, err := e.GlobalTopK(Query{Seeker: 0, Tags: tags, K: k})
			if err != nil {
				return false
			}
			oracle := e.GlobalScoreAll(tags)
			// верify: multiset of top-k oracle scores equals answer's.
			scores := make([]float64, 0, len(oracle))
			for _, s := range oracle {
				scores = append(scores, s)
			}
			// selection: k best
			for i := 0; i < len(ans.Results); i++ {
				best := -1.0
				bi := -1
				for j, s := range scores {
					if s > best {
						best, bi = s, j
					}
				}
				if bi == -1 {
					return false
				}
				scores[bi] = -1
				if diff := ans.Results[i].Score - best; diff > 1e-9 || diff < -1e-9 {
					return false
				}
				if oracle[ans.Results[i].Item] != ans.Results[i].Score {
					return false
				}
			}
			wantLen := k
			if positives := countPositives(oracle); positives < wantLen {
				wantLen = positives
			}
			if len(ans.Results) != wantLen {
				return false
			}
		}
		_ = ds
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func countPositives(m map[tagstore.ItemID]float64) int {
	n := 0
	for _, s := range m {
		if s > 0 {
			n++
		}
	}
	return n
}
