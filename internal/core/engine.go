// Package core implements the paper's primary contribution: socially
// personalized top-k query answering over a collaborative tagging
// network — answering a seeker's query "with a little help from my
// friends".
//
// Scoring model. For seeker s, query Q (a set of tags) and item i:
//
//	score(s, Q, i) = β · Σ_{t∈Q} Σ_{v} σ(s,v)·tf(v,i,t)
//	              + (1-β) · Σ_{t∈Q} gtf(i,t)
//
// where σ is the social proximity of package proximity, tf(v,i,t) the
// per-user tag frequency, gtf the global tag frequency, and β ∈ [0,1]
// blends personalized and global relevance (β = 1 is pure social).
//
// Algorithms. The Engine exposes:
//
//   - ExactSocial: materializes σ(s,·) over the whole network, scores
//     every item, and sorts — the exact but expensive baseline.
//   - GlobalTopK: Fagin-style TA over the global per-tag posting lists;
//     ignores the network entirely (the non-personalized baseline).
//   - SocialMerge: the contribution. It interleaves an incremental
//     best-first expansion of the social network with posting-list
//     processing, maintaining NRA-style [lower, upper] intervals per
//     candidate item, and terminates as soon as the k-th best confirmed
//     lower bound provably dominates every other item — typically after
//     exploring only a small neighbourhood of the seeker.
//   - ContextMerge: the materialize-then-merge baseline. It expands the
//     whole social ball first, then consumes per-(friend, tag) posting
//     lists in perfect σ·tf order through a priority queue.
//   - SocialTA: a threshold algorithm with social random access. It
//     walks global lists in sorted order and completes each candidate's
//     exact score immediately via the item-pivoted ItemIndex.
//
// All four are exact; their cost profiles differ (Fig 12), which is
// what internal/planner arbitrates per query. SocialMerge also powers
// the approximate variants (σ-horizon, hop bound, expansion budget,
// landmark pruning, materialized-neighbourhood acceleration) whose
// quality/latency trade-offs the experiment suite measures.
package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/graph"
	"repro/internal/proximity"
	"repro/internal/tagstore"
	"repro/internal/topk"
)

// ctxErr is the shared cancellation checkpoint: it reports the
// context's error once it is done, nil otherwise (and always nil for a
// nil context, so zero-value Options cost one branch).
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// Engine binds a social graph and a tagging store with scoring
// parameters. An Engine is immutable and safe for concurrent use.
type Engine struct {
	g     *graph.Graph
	store *tagstore.Store
	prox  proximity.Params
	beta  float64

	landmarks *proximity.LandmarkIndex
	neighbors *NeighborhoodIndex
	items     *ItemIndex

	// runs recycles SocialMerge working state (candidate table, cursor
	// slices, tag buffers) so the warm read path allocates nothing.
	runs runPool
}

// Config configures engine construction.
type Config struct {
	// Proximity configures the social proximity function; the zero value
	// means proximity.DefaultParams().
	Proximity proximity.Params
	// Beta blends social (β) and global (1-β) score components. The
	// conventional default is 1 (pure social). Negative values are
	// invalid; exactly zero degenerates to global scoring.
	Beta float64
}

// DefaultConfig returns the standard configuration: undamped proximity,
// pure social scoring.
func DefaultConfig() Config {
	return Config{Proximity: proximity.DefaultParams(), Beta: 1.0}
}

// NewEngine validates the configuration and builds an engine. The graph
// and store must agree on the user universe.
func NewEngine(g *graph.Graph, store *tagstore.Store, cfg Config) (*Engine, error) {
	if g == nil || store == nil {
		return nil, errors.New("core: nil graph or store")
	}
	if g.NumUsers() != store.NumUsers() {
		return nil, fmt.Errorf("core: graph has %d users, store has %d", g.NumUsers(), store.NumUsers())
	}
	if cfg.Proximity == (proximity.Params{}) {
		cfg.Proximity = proximity.DefaultParams()
	}
	if err := cfg.Proximity.Validate(); err != nil {
		return nil, err
	}
	if cfg.Beta < 0 || cfg.Beta > 1 {
		return nil, fmt.Errorf("core: beta %g outside [0,1]", cfg.Beta)
	}
	return &Engine{g: g, store: store, prox: cfg.Proximity, beta: cfg.Beta}, nil
}

// Graph returns the underlying social graph.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Store returns the underlying tagging store.
func (e *Engine) Store() *tagstore.Store { return e.store }

// Beta returns the social/global blend factor.
func (e *Engine) Beta() float64 { return e.beta }

// ProximityParams returns the proximity configuration.
func (e *Engine) ProximityParams() proximity.Params { return e.prox }

// AttachLandmarks installs a landmark index used by the landmark-pruned
// approximate variant (Options.LandmarkPrune).
func (e *Engine) AttachLandmarks(idx *proximity.LandmarkIndex) { e.landmarks = idx }

// AttachNeighborhoods installs a materialized neighbourhood index used
// by the accelerated variant (Options.UseNeighborhoods).
func (e *Engine) AttachNeighborhoods(idx *NeighborhoodIndex) { e.neighbors = idx }

// Query is one top-k request.
type Query struct {
	// Seeker is the querying user.
	Seeker graph.UserID
	// Tags is the set of query tags (duplicates are ignored).
	Tags []tagstore.TagID
	// K is the number of results requested (≥ 1).
	K int
}

// Validate checks the query against the engine's universe.
func (e *Engine) validateQuery(q Query) error {
	if q.K < 1 {
		return fmt.Errorf("core: k = %d, must be >= 1", q.K)
	}
	if q.Seeker < 0 || int(q.Seeker) >= e.g.NumUsers() {
		return fmt.Errorf("core: seeker %d outside [0,%d)", q.Seeker, e.g.NumUsers())
	}
	if len(q.Tags) == 0 {
		return errors.New("core: empty tag set")
	}
	for _, t := range q.Tags {
		if t < 0 || int(t) >= e.store.NumTags() {
			return fmt.Errorf("core: tag %d outside [0,%d)", t, e.store.NumTags())
		}
	}
	return nil
}

// dedupTags returns the query tags with duplicates removed, preserving
// first-occurrence order.
func dedupTags(tags []tagstore.TagID) []tagstore.TagID {
	seen := make(map[tagstore.TagID]bool, len(tags))
	out := tags[:0:0]
	for _, t := range tags {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}

// Options tunes SocialMerge. The zero value requests the exact
// algorithm.
type Options struct {
	// Ctx, when non-nil, is polled at cancellation checkpoints inside
	// the query loops: a cancelled (or deadline-expired) context aborts
	// the execution promptly with ctx.Err() instead of burning CPU on an
	// answer nobody is waiting for. nil disables the checkpoints.
	Ctx context.Context
	// Theta stops network expansion once the frontier proximity falls
	// below this value (σ-horizon). 0 disables.
	Theta float64
	// MaxHops stops expansion beyond this hop distance. 0 disables.
	MaxHops int
	// MaxUsers bounds the number of users settled. 0 disables.
	MaxUsers int
	// LandmarkPrune skips users whose landmark-estimated proximity
	// cannot beat the current termination threshold. Requires
	// AttachLandmarks; it is a heuristic and may reduce recall.
	LandmarkPrune bool
	// UseNeighborhoods reads σ from the materialized neighbourhood
	// index instead of expanding the graph. Requires
	// AttachNeighborhoods. Users beyond the materialized horizon are
	// treated as having the index's residual bound.
	UseNeighborhoods bool
	// RefineScores disables early termination and consumes the entire
	// (horizon-bounded) user source, so reported scores are the exact
	// scores rather than certified lower bounds. Costs the full horizon
	// expansion; the answer set is unchanged when the run certifies.
	RefineScores bool
}

// Answer is the outcome of one query execution.
type Answer struct {
	// Results are the top-k items ordered by (reported score desc, item
	// asc). For SocialMerge the reported scores are certified lower
	// bounds: the item *set* is exact when Exact is true, but under
	// near-ties the internal order may differ from the exact-score
	// order (completing exact scores would force settling every tagger
	// of every winner, defeating early termination). May hold fewer
	// than k entries when fewer items match.
	Results []topk.Result
	// Exact reports whether the result set is certified identical to
	// the exact answer (always true for ExactSocial; true for
	// SocialMerge when it terminated via its threshold test with no
	// approximation cutoffs triggered).
	Exact bool
	// Access aggregates the hardware-independent cost counters.
	Access topk.Access
	// UsersSettled is the number of users whose lists were consumed.
	UsersSettled int
}
