package core

import (
	"context"

	"repro/internal/tagstore"
	"repro/internal/topk"
)

// GlobalTopK answers the query without any personalization:
//
//	gscore(Q, i) = Σ_{t∈Q} gtf(i, t)
//
// using Fagin's Threshold Algorithm over the per-tag global posting
// lists (sorted access in round-robin, random access to complete each
// newly seen item, termination when the k-th best score reaches the sum
// of current list frontiers). It is the fast-but-unpersonalized baseline
// of Figs 4–5 and the quality reference point of Fig 11.
func (e *Engine) GlobalTopK(q Query) (Answer, error) {
	return e.GlobalTopKCtx(nil, q)
}

// GlobalTopKCtx is GlobalTopK with cancellation checkpoints in the
// sorted-access rounds.
func (e *Engine) GlobalTopKCtx(ctx context.Context, q Query) (Answer, error) {
	if err := e.validateQuery(q); err != nil {
		return Answer{}, err
	}
	tags := dedupTags(q.Tags)

	var acc topk.Access
	lists := make([][]tagstore.Posting, len(tags))
	pos := make([]int, len(tags))
	for i, t := range tags {
		lists[i] = e.store.GlobalList(t)
	}
	h := topk.NewHeap(q.K)
	seen := make(map[tagstore.ItemID]bool)

	frontierSum := func() (float64, bool) {
		var sum float64
		active := false
		for i := range lists {
			if pos[i] < len(lists[i]) {
				sum += float64(lists[i][pos[i]].TF)
				active = true
			}
		}
		return sum, active
	}

	for round := 0; ; round++ {
		if round%64 == 0 {
			if err := ctxErr(ctx); err != nil {
				return Answer{}, err
			}
		}
		threshold, active := frontierSum()
		if !active {
			break
		}
		if h.Full() && h.Threshold() >= threshold {
			break
		}
		// One round of sorted access across all lists.
		for i := range lists {
			if pos[i] >= len(lists[i]) {
				continue
			}
			p := lists[i][pos[i]]
			pos[i]++
			acc.Sequential++
			if seen[p.Item] {
				continue
			}
			seen[p.Item] = true
			// Random-access the remaining dimensions to complete the
			// item's score (TA completes each item on first sight).
			score := 0.0
			for j, t := range tags {
				if j == i {
					score += float64(p.TF)
					continue
				}
				score += float64(e.store.GlobalTF(p.Item, t))
				acc.Random++
			}
			h.Offer(p.Item, score)
		}
	}
	return Answer{Results: h.Results(), Exact: true, Access: acc}, nil
}

// GlobalScoreAll computes the full non-personalized score vector; it is
// the oracle GlobalTopK is tested against.
func (e *Engine) GlobalScoreAll(tags []tagstore.TagID) map[tagstore.ItemID]float64 {
	tags = dedupTags(tags)
	scores := make(map[tagstore.ItemID]float64)
	for _, t := range tags {
		for _, p := range e.store.GlobalList(t) {
			scores[p.Item] += float64(p.TF)
		}
	}
	return scores
}
