package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/graph"
	"repro/internal/tagstore"
)

// cancelWorld builds a small engine for the cancellation tests.
func cancelWorld(t *testing.T) *Engine {
	t.Helper()
	const users = 40
	gb := graph.NewBuilder(users)
	for i := 0; i < users-1; i++ {
		gb.AddEdge(graph.UserID(i), graph.UserID(i+1), 0.9)
	}
	g, err := gb.Build()
	if err != nil {
		t.Fatal(err)
	}
	tb := tagstore.NewBuilder(users, users, 2)
	for i := 0; i < users; i++ {
		tb.Add(graph.UserID(i), tagstore.ItemID(i), 0)
		tb.Add(graph.UserID(i), tagstore.ItemID(i), 1)
	}
	store, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(g, store, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	e.AttachItemIndex(BuildItemIndex(store))
	return e
}

// TestCancelledContextAbortsQueries: every query loop honours a context
// that is already cancelled, returning ctx.Err() instead of an answer.
func TestCancelledContextAbortsQueries(t *testing.T) {
	e := cancelWorld(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := Query{Seeker: 0, Tags: []tagstore.TagID{0, 1}, K: 5}
	opts := Options{Ctx: ctx}

	if _, err := e.SocialMerge(q, opts); !errors.Is(err, context.Canceled) {
		t.Errorf("SocialMerge: err = %v, want context.Canceled", err)
	}
	if _, err := e.ContextMerge(q, opts); !errors.Is(err, context.Canceled) {
		t.Errorf("ContextMerge: err = %v, want context.Canceled", err)
	}
	if _, err := e.SocialTA(q, opts); !errors.Is(err, context.Canceled) {
		t.Errorf("SocialTA: err = %v, want context.Canceled", err)
	}
	if _, err := e.ExactSocialCtx(ctx, q); !errors.Is(err, context.Canceled) {
		t.Errorf("ExactSocialCtx: err = %v, want context.Canceled", err)
	}
	if _, err := e.GlobalTopKCtx(ctx, q); !errors.Is(err, context.Canceled) {
		t.Errorf("GlobalTopKCtx: err = %v, want context.Canceled", err)
	}
	if _, err := e.MaterializeHorizonCtx(ctx, 0, 0); !errors.Is(err, context.Canceled) {
		t.Errorf("MaterializeHorizonCtx: err = %v, want context.Canceled", err)
	}
	h, err := e.MaterializeHorizon(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.SocialMergeWithHorizon(q, h, opts); !errors.Is(err, context.Canceled) {
		t.Errorf("SocialMergeWithHorizon: err = %v, want context.Canceled", err)
	}
}

// TestNilContextStillWorks: zero-value Options remain valid — the
// checkpoints must be no-ops without a context.
func TestNilContextStillWorks(t *testing.T) {
	e := cancelWorld(t)
	q := Query{Seeker: 0, Tags: []tagstore.TagID{0}, K: 3}
	ans, err := e.SocialMerge(q, Options{})
	if err != nil || len(ans.Results) == 0 {
		t.Fatalf("SocialMerge without ctx: %v (results %v)", err, ans.Results)
	}
	// An un-cancelled context changes nothing about the answer.
	ans2, err := e.SocialMerge(q, Options{Ctx: context.Background()})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans2.Results) != len(ans.Results) {
		t.Fatalf("ctx-carrying run returned %d results, want %d", len(ans2.Results), len(ans.Results))
	}
}
