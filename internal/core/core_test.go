package core

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/proximity"
	"repro/internal/tagstore"
	"repro/internal/topk"
)

// tinyEngine builds a hand-checkable world:
//
//	users: 0-1 (w=0.5), 1-2 (w=0.5), 3 isolated
//	tags:  t0, t1
//	items: i0..i3
//	u0: (i0,t0)
//	u1: (i1,t0)x2
//	u2: (i2,t0), (i2,t1)
//	u3: (i3,t0)x5          ← globally hot but socially unreachable from 0
func tinyEngine(t testing.TB, cfg Config) *Engine {
	t.Helper()
	gb := graph.NewBuilder(4)
	gb.AddEdge(0, 1, 0.5)
	gb.AddEdge(1, 2, 0.5)
	g, err := gb.Build()
	if err != nil {
		t.Fatal(err)
	}
	tb := tagstore.NewBuilder(4, 4, 2)
	tb.Add(0, 0, 0)
	tb.AddCount(1, 1, 0, 2)
	tb.Add(2, 2, 0)
	tb.Add(2, 2, 1)
	tb.AddCount(3, 3, 0, 5)
	store, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(g, store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewEngineValidation(t *testing.T) {
	g, _ := graph.NewBuilder(2).Build()
	s, _ := tagstore.NewBuilder(2, 1, 1).Build()
	if _, err := NewEngine(nil, s, DefaultConfig()); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := NewEngine(g, nil, DefaultConfig()); err == nil {
		t.Fatal("nil store accepted")
	}
	s3, _ := tagstore.NewBuilder(3, 1, 1).Build()
	if _, err := NewEngine(g, s3, DefaultConfig()); err == nil {
		t.Fatal("mismatched universes accepted")
	}
	cfg := DefaultConfig()
	cfg.Beta = 1.5
	if _, err := NewEngine(g, s, cfg); err == nil {
		t.Fatal("beta 1.5 accepted")
	}
	cfg = DefaultConfig()
	cfg.Proximity = proximity.Params{Alpha: 2, SelfWeight: 1}
	if _, err := NewEngine(g, s, cfg); err == nil {
		t.Fatal("alpha 2 accepted")
	}
	// zero-value proximity params default rather than fail
	e, err := NewEngine(g, s, Config{Beta: 1})
	if err != nil {
		t.Fatal(err)
	}
	if e.ProximityParams() != proximity.DefaultParams() {
		t.Fatal("zero proximity params not defaulted")
	}
}

func TestQueryValidation(t *testing.T) {
	e := tinyEngine(t, DefaultConfig())
	cases := []Query{
		{Seeker: 0, Tags: []tagstore.TagID{0}, K: 0},
		{Seeker: -1, Tags: []tagstore.TagID{0}, K: 1},
		{Seeker: 9, Tags: []tagstore.TagID{0}, K: 1},
		{Seeker: 0, Tags: nil, K: 1},
		{Seeker: 0, Tags: []tagstore.TagID{7}, K: 1},
	}
	for i, q := range cases {
		if _, err := e.ExactSocial(q); err == nil {
			t.Errorf("case %d: ExactSocial accepted %+v", i, q)
		}
		if _, err := e.GlobalTopK(q); err == nil {
			t.Errorf("case %d: GlobalTopK accepted %+v", i, q)
		}
		if _, err := e.SocialMerge(q, Options{}); err == nil {
			t.Errorf("case %d: SocialMerge accepted %+v", i, q)
		}
	}
}

func TestExactSocialHandExample(t *testing.T) {
	e := tinyEngine(t, DefaultConfig())
	// seeker 0, tag t0, pure social, no damping:
	//   σ(0,0)=1, σ(0,1)=0.5, σ(0,2)=0.25, σ(0,3)=0
	//   i0: 1·1 = 1;  i1: 0.5·2 = 1;  i2: 0.25·1 = 0.25;  i3: 0
	ans, err := e.ExactSocial(Query{Seeker: 0, Tags: []tagstore.TagID{0}, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Exact {
		t.Fatal("ExactSocial not exact")
	}
	want := []topk.Result{{Item: 0, Score: 1}, {Item: 1, Score: 1}, {Item: 2, Score: 0.25}}
	if len(ans.Results) != len(want) {
		t.Fatalf("results = %v, want %v", ans.Results, want)
	}
	for i := range want {
		if ans.Results[i].Item != want[i].Item || math.Abs(ans.Results[i].Score-want[i].Score) > 1e-12 {
			t.Fatalf("results = %v, want %v", ans.Results, want)
		}
	}
}

func TestExactSocialBetaBlend(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Beta = 0.5
	e := tinyEngine(t, cfg)
	// seeker 0, tag t0: social part as above ×0.5; global part ×0.5:
	//   gtf: i0=1, i1=2, i2=1, i3=5
	//   i0: .5·1 + .5·1 = 1;  i1: .5·1 + .5·2 = 1.5
	//   i2: .5·.25 + .5·1 = .625;  i3: 0 + .5·5 = 2.5  ← hot item wins
	ans, err := e.ExactSocial(Query{Seeker: 0, Tags: []tagstore.TagID{0}, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Results) != 1 || ans.Results[0].Item != 3 || math.Abs(ans.Results[0].Score-2.5) > 1e-12 {
		t.Fatalf("beta blend top-1 = %v, want item 3 score 2.5", ans.Results)
	}
}

func TestExactSocialMultiTag(t *testing.T) {
	e := tinyEngine(t, DefaultConfig())
	// seeker 2, tags {t0, t1}: σ(2,2)=1, σ(2,1)=0.5, σ(2,0)=0.25
	//   i2: 1·(1+1) = 2;  i1: .5·2 = 1;  i0: .25·1 = .25
	ans, err := e.ExactSocial(Query{Seeker: 2, Tags: []tagstore.TagID{0, 1}, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Results[0].Item != 2 || math.Abs(ans.Results[0].Score-2) > 1e-12 {
		t.Fatalf("multi-tag top = %v", ans.Results)
	}
	// duplicate tags are ignored
	ans2, err := e.ExactSocial(Query{Seeker: 2, Tags: []tagstore.TagID{0, 0, 1, 1}, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ans2.Results[0].Score != ans.Results[0].Score {
		t.Fatal("duplicate tags changed the score")
	}
}

func TestScoreSpotCheck(t *testing.T) {
	e := tinyEngine(t, DefaultConfig())
	s, err := e.Score(0, []tagstore.TagID{0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-1.0) > 1e-12 {
		t.Fatalf("Score = %g, want 1", s)
	}
	if _, err := e.Score(0, []tagstore.TagID{9}, 1); err == nil {
		t.Fatal("bad tag accepted")
	}
}

func TestGlobalTopKMatchesOracle(t *testing.T) {
	e := tinyEngine(t, DefaultConfig())
	q := Query{Seeker: 0, Tags: []tagstore.TagID{0}, K: 2}
	ans, err := e.GlobalTopK(q)
	if err != nil {
		t.Fatal(err)
	}
	// global tf under t0: i3=5, i1=2, i0=1, i2=1
	want := []topk.Result{{Item: 3, Score: 5}, {Item: 1, Score: 2}}
	if len(ans.Results) != 2 || ans.Results[0] != want[0] || ans.Results[1] != want[1] {
		t.Fatalf("GlobalTopK = %v, want %v", ans.Results, want)
	}
	if !ans.Exact {
		t.Fatal("GlobalTopK should be exact")
	}
}

func TestGlobalTopKEarlyTermination(t *testing.T) {
	// With k=1 on a long list, TA must not read the whole list.
	nItems := 500
	tb := tagstore.NewBuilder(1, nItems, 1)
	for i := 0; i < nItems; i++ {
		tb.AddCount(0, int32(i), 0, int32(nItems-i))
	}
	store, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	g, _ := graph.NewBuilder(1).Build()
	e, err := NewEngine(g, store, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ans, err := e.GlobalTopK(Query{Seeker: 0, Tags: []tagstore.TagID{0}, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Results[0].Item != 0 {
		t.Fatalf("top item = %d, want 0", ans.Results[0].Item)
	}
	if ans.Access.Sequential > 10 {
		t.Fatalf("TA read %d postings for k=1, expected early stop", ans.Access.Sequential)
	}
}

// assertTopKEquivalent certifies that got is a valid top-k answer for q:
// the multiset of exact scores of the returned items must equal the
// multiset of the exact top-k scores (the correct comparison under
// score ties and lower-bound internal ordering), and every reported
// score must be a lower bound on the item's exact score.
func assertTopKEquivalent(t *testing.T, e *Engine, q Query, got Answer) {
	t.Helper()
	if !topKEquivalent(t, e, q, got) {
		t.Fatalf("answer not equivalent to exact top-%d (seeker %d, tags %v): %v",
			q.K, q.Seeker, q.Tags, got.Results)
	}
}

func TestSocialMergeTinyExact(t *testing.T) {
	e := tinyEngine(t, DefaultConfig())
	for _, k := range []int{1, 2, 3, 10} {
		q := Query{Seeker: 0, Tags: []tagstore.TagID{0}, K: k}
		ans, err := e.SocialMerge(q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !ans.Exact {
			t.Fatalf("k=%d: not certified exact", k)
		}
		assertTopKEquivalent(t, e, q, ans)
	}
}

func TestSocialMergeEmptyAnswer(t *testing.T) {
	e := tinyEngine(t, DefaultConfig())
	// seeker 3 is isolated and tagged only item 3 under t0; query t1:
	// σ only reaches u3 itself, who never used t1 → empty answer.
	ans, err := e.SocialMerge(Query{Seeker: 3, Tags: []tagstore.TagID{1}, K: 5}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Results) != 0 {
		t.Fatalf("results = %v, want empty", ans.Results)
	}
	if !ans.Exact {
		t.Fatal("empty answer should still be certified")
	}
}

func TestSocialMergeIsolatedSeekerOwnTags(t *testing.T) {
	e := tinyEngine(t, DefaultConfig())
	ans, err := e.SocialMerge(Query{Seeker: 3, Tags: []tagstore.TagID{0}, K: 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Results) != 1 || ans.Results[0].Item != 3 || math.Abs(ans.Results[0].Score-5) > 1e-12 {
		t.Fatalf("isolated seeker answer = %v, want item 3 score 5", ans.Results)
	}
	assertTopKEquivalent(t, e, Query{Seeker: 3, Tags: []tagstore.TagID{0}, K: 2}, ans)
}

func TestSocialMergeBetaZeroEqualsGlobal(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Beta = 0
	e := tinyEngine(t, cfg)
	q := Query{Seeker: 0, Tags: []tagstore.TagID{0}, K: 2}
	ans, err := e.SocialMerge(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Exact {
		t.Fatal("beta=0 merge not exact")
	}
	// with β=0 the exact scores are the global tfs
	if ans.Results[0].Item != 3 || math.Abs(ans.Results[0].Score-5) > 1e-12 {
		t.Fatalf("beta=0 top = %v, want item 3 score 5", ans.Results)
	}
	assertTopKEquivalent(t, e, q, ans)
}

func TestSocialMergeEarlyTerminationSavesWork(t *testing.T) {
	// Long path: seeker at one end; friends near the seeker hold the
	// answers. SocialMerge must settle far fewer users than the graph
	// holds.
	n := 400
	gb := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		gb.AddEdge(int32(i), int32(i+1), 0.5)
	}
	g, err := gb.Build()
	if err != nil {
		t.Fatal(err)
	}
	tb := tagstore.NewBuilder(n, n, 1)
	for i := 0; i < n; i++ {
		tb.Add(int32(i), int32(i), 0)
	}
	store, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(g, store, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Seeker: 0, Tags: []tagstore.TagID{0}, K: 3}
	ans, err := e.SocialMerge(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Exact {
		t.Fatal("not exact")
	}
	assertTopKEquivalent(t, e, q, ans)
	if ans.UsersSettled > n/4 {
		t.Fatalf("settled %d of %d users; early termination failed", ans.UsersSettled, n)
	}
}

func TestSocialMergeThetaCutoff(t *testing.T) {
	e := tinyEngine(t, DefaultConfig())
	// θ=0.3 stops before u2 (σ=0.25) is consumed.
	q := Query{Seeker: 0, Tags: []tagstore.TagID{0}, K: 3}
	ans, err := e.SocialMerge(q, Options{Theta: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Exact {
		t.Fatal("theta cutoff should clear Exact")
	}
	for _, r := range ans.Results {
		if r.Item == 2 {
			t.Fatalf("item 2 visible despite horizon: %v", ans.Results)
		}
	}
}

func TestSocialMergeMaxUsersCutoff(t *testing.T) {
	e := tinyEngine(t, DefaultConfig())
	ans, err := e.SocialMerge(Query{Seeker: 0, Tags: []tagstore.TagID{0}, K: 3}, Options{MaxUsers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Exact {
		t.Fatal("MaxUsers cutoff should clear Exact")
	}
	if ans.UsersSettled != 1 {
		t.Fatalf("settled %d users, want 1", ans.UsersSettled)
	}
}

func TestSocialMergeMaxHopsCutoff(t *testing.T) {
	e := tinyEngine(t, DefaultConfig())
	ans, err := e.SocialMerge(Query{Seeker: 0, Tags: []tagstore.TagID{0}, K: 3}, Options{MaxHops: 1})
	if err != nil {
		t.Fatal(err)
	}
	// u2 is 2 hops away; its item must be absent.
	for _, r := range ans.Results {
		if r.Item == 2 {
			t.Fatalf("hop-bounded answer contains 2-hop item: %v", ans.Results)
		}
	}
}

func TestSocialMergeOptionsRequireIndexes(t *testing.T) {
	e := tinyEngine(t, DefaultConfig())
	q := Query{Seeker: 0, Tags: []tagstore.TagID{0}, K: 1}
	if _, err := e.SocialMerge(q, Options{LandmarkPrune: true}); err == nil {
		t.Fatal("LandmarkPrune without index accepted")
	}
	if _, err := e.SocialMerge(q, Options{UseNeighborhoods: true}); err == nil {
		t.Fatal("UseNeighborhoods without index accepted")
	}
}

func TestSocialMergeNeighborhoodFullHorizonExact(t *testing.T) {
	e := tinyEngine(t, DefaultConfig())
	idx, err := BuildNeighborhoods(e.Graph(), 4, e.ProximityParams())
	if err != nil {
		t.Fatal(err)
	}
	e.AttachNeighborhoods(idx)
	q := Query{Seeker: 0, Tags: []tagstore.TagID{0}, K: 3}
	ans, err := e.SocialMerge(q, Options{UseNeighborhoods: true})
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Exact {
		t.Fatal("full-horizon materialized run should be certified exact")
	}
	assertTopKEquivalent(t, e, q, ans)
}

func TestSocialMergeNeighborhoodTruncated(t *testing.T) {
	e := tinyEngine(t, DefaultConfig())
	idx, err := BuildNeighborhoods(e.Graph(), 1, e.ProximityParams())
	if err != nil {
		t.Fatal(err)
	}
	e.AttachNeighborhoods(idx)
	// Horizon of 1 covers only the seeker; residual bound 0.5 remains,
	// so with k=3 the answer cannot be certified.
	ans, err := e.SocialMerge(Query{Seeker: 0, Tags: []tagstore.TagID{0}, K: 3}, Options{UseNeighborhoods: true})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Exact {
		t.Fatal("truncated horizon should not certify a k=3 answer here")
	}
}

func TestBuildNeighborhoodsValidation(t *testing.T) {
	e := tinyEngine(t, DefaultConfig())
	if _, err := BuildNeighborhoods(e.Graph(), 0, e.ProximityParams()); err == nil {
		t.Fatal("L=0 accepted")
	}
	if _, err := BuildNeighborhoods(e.Graph(), 2, proximity.Params{Alpha: 5, SelfWeight: 1}); err == nil {
		t.Fatal("bad params accepted")
	}
	idx, err := BuildNeighborhoods(e.Graph(), 2, e.ProximityParams())
	if err != nil {
		t.Fatal(err)
	}
	list, residual := idx.Horizon(0)
	if len(list) != 2 || list[0].User != 0 {
		t.Fatalf("Horizon(0) list = %v", list)
	}
	if residual <= 0 {
		t.Fatalf("residual = %g, want positive (graph extends beyond L=2)", residual)
	}
	if idx.MemoryBytes() <= 0 {
		t.Fatal("MemoryBytes not positive")
	}
}

func TestSocialMergeLandmarkPruneRuns(t *testing.T) {
	e := tinyEngine(t, DefaultConfig())
	lm, err := proximity.BuildLandmarks(e.Graph(), 2, e.ProximityParams())
	if err != nil {
		t.Fatal(err)
	}
	e.AttachLandmarks(lm)
	ans, err := e.SocialMerge(Query{Seeker: 0, Tags: []tagstore.TagID{0}, K: 2}, Options{LandmarkPrune: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Results) == 0 {
		t.Fatal("landmark-pruned run returned nothing")
	}
}

func TestAnswerAccessCountsPopulated(t *testing.T) {
	e := tinyEngine(t, DefaultConfig())
	ans, err := e.SocialMerge(Query{Seeker: 0, Tags: []tagstore.TagID{0}, K: 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Access.Sequential == 0 || ans.Access.UsersExpanded == 0 {
		t.Fatalf("access counters empty: %+v", ans.Access)
	}
}
