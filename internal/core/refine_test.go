package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/proximity"
	"repro/internal/tagstore"
)

// TestRefineScoresMatchExact: with RefineScores the reported scores are
// the exact (floored-model) scores, not just lower bounds.
func TestRefineScoresMatchExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{
			Proximity: proximity.Params{Alpha: 0.7, SelfWeight: 1, MinSigma: 0.05},
			Beta:      1,
		}
		e, ds := randomCorpusEngine(t, seed, cfg)
		for trial := 0; trial < 3; trial++ {
			q := Query{
				Seeker: graph.UserID(rng.Intn(ds.Graph.NumUsers())),
				Tags:   []tagstore.TagID{tagstore.TagID(rng.Intn(20))},
				K:      1 + rng.Intn(8),
			}
			refined, err := e.SocialMerge(q, Options{RefineScores: true})
			if err != nil || !refined.Exact {
				return false
			}
			full, err := e.ExactSocial(Query{Seeker: q.Seeker, Tags: q.Tags, K: e.Store().NumItems()})
			if err != nil {
				return false
			}
			exactScore := map[int32]float64{}
			for _, r := range full.Results {
				exactScore[r.Item] = r.Score
			}
			for _, r := range refined.Results {
				if math.Abs(r.Score-exactScore[r.Item]) > 1e-9 {
					t.Logf("seed %d: item %d refined %g exact %g", seed, r.Item, r.Score, exactScore[r.Item])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestRefineScoresStillRespectsCutoffs: refinement is orthogonal to the
// approximation knobs.
func TestRefineScoresStillRespectsCutoffs(t *testing.T) {
	e := tinyEngine(t, DefaultConfig())
	ans, err := e.SocialMerge(Query{Seeker: 0, Tags: []tagstore.TagID{0}, K: 3},
		Options{RefineScores: true, MaxUsers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Exact {
		t.Fatal("cutoff with refinement still certified")
	}
	if ans.UsersSettled != 1 {
		t.Fatalf("settled %d users, want 1", ans.UsersSettled)
	}
}

// TestRefineScoresSettlesWholeHorizon: without a floor, refinement
// consumes the connected component.
func TestRefineScoresSettlesWholeHorizon(t *testing.T) {
	e := tinyEngine(t, DefaultConfig())
	ans, err := e.SocialMerge(Query{Seeker: 0, Tags: []tagstore.TagID{0}, K: 1},
		Options{RefineScores: true})
	if err != nil {
		t.Fatal(err)
	}
	// seeker 0's component is {0,1,2}
	if ans.UsersSettled != 3 {
		t.Fatalf("settled %d users, want full component of 3", ans.UsersSettled)
	}
	if !ans.Exact {
		t.Fatal("refined full run not certified")
	}
	// exact score of item 0 is 1.0
	if len(ans.Results) == 0 || math.Abs(ans.Results[0].Score-1.0) > 1e-12 {
		t.Fatalf("refined top = %v, want exact score 1.0", ans.Results)
	}
}
