package core

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/proximity"
	"repro/internal/tagstore"
	"repro/internal/topk"
)

// TestGlobalDiscoveryWithBlend: an item tagged only by a socially
// unreachable user must still surface when β < 1 — it can only be
// discovered through the global posting lists, exercising the cursor
// path end to end.
func TestGlobalDiscoveryWithBlend(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Beta = 0.5
	e := tinyEngine(t, cfg)
	// Item 3 is tagged (count 5, tag 0) only by isolated user 3.
	// For seeker 0: social part 0, global part 0.5·5 = 2.5 — the top item.
	ans, err := e.SocialMerge(Query{Seeker: 0, Tags: []tagstore.TagID{0}, K: 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Exact {
		t.Fatal("not certified")
	}
	if len(ans.Results) != 1 || ans.Results[0].Item != 3 {
		t.Fatalf("blend top-1 = %v, want globally hot item 3", ans.Results)
	}
	if math.Abs(ans.Results[0].Score-2.5) > 1e-12 {
		t.Fatalf("score = %g, want 2.5", ans.Results[0].Score)
	}
}

// TestGlobalTopKDuplicateTags: duplicate tags must not double-count.
func TestGlobalTopKDuplicateTags(t *testing.T) {
	e := tinyEngine(t, DefaultConfig())
	a, err := e.GlobalTopK(Query{Seeker: 0, Tags: []tagstore.TagID{0}, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.GlobalTopK(Query{Seeker: 0, Tags: []tagstore.TagID{0, 0, 0}, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Results) != len(b.Results) {
		t.Fatalf("duplicate tags changed result count")
	}
	for i := range a.Results {
		if a.Results[i] != b.Results[i] {
			t.Fatalf("duplicate tags changed results: %v vs %v", a.Results, b.Results)
		}
	}
}

// TestKExceedsMatchingItems: all algorithms return only items with
// positive scores, even for huge k.
func TestKExceedsMatchingItems(t *testing.T) {
	e := tinyEngine(t, DefaultConfig())
	q := Query{Seeker: 0, Tags: []tagstore.TagID{1}, K: 1000}
	// tag 1 was used only by u2 on item 2.
	merge, err := e.SocialMerge(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(merge.Results) != 1 || merge.Results[0].Item != 2 {
		t.Fatalf("merge results = %v", merge.Results)
	}
	exact, err := e.ExactSocial(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(exact.Results) != 1 {
		t.Fatalf("exact results = %v", exact.Results)
	}
	global, err := e.GlobalTopK(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(global.Results) != 1 {
		t.Fatalf("global results = %v", global.Results)
	}
}

// TestMinSigmaFloorConsistency: ExactSocial and SocialMerge agree under
// a σ-floor — the floor is part of the model, not an approximation.
func TestMinSigmaFloorConsistency(t *testing.T) {
	cfg := Config{
		Proximity: proximity.Params{Alpha: 1, SelfWeight: 1, MinSigma: 0.3},
		Beta:      1,
	}
	e := tinyEngine(t, cfg)
	// σ(0,1) = 0.5 ≥ 0.3; σ(0,2) = 0.25 < 0.3 → u2 outside the model.
	q := Query{Seeker: 0, Tags: []tagstore.TagID{0}, K: 10}
	merge, err := e.SocialMerge(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !merge.Exact {
		t.Fatal("floored run not certified")
	}
	exact, err := e.ExactSocial(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(merge.Results) != len(exact.Results) {
		t.Fatalf("floored results differ: %v vs %v", merge.Results, exact.Results)
	}
	for _, r := range merge.Results {
		if r.Item == 2 {
			t.Fatal("item beyond the σ-floor leaked into the answer")
		}
	}
	// u2's item is absent from both
	for _, r := range exact.Results {
		if r.Item == 2 {
			t.Fatal("exact baseline ignored the floor")
		}
	}
}

// TestSelfWeightSeedsExpansion: SelfWeight is σ(s,s), the seed of the
// expansion, so it scales the seeker's own contribution AND everything
// downstream proportionally — relative order within the network is
// preserved, absolute scores shrink.
func TestSelfWeightSeedsExpansion(t *testing.T) {
	full := tinyEngine(t, DefaultConfig())
	cfg := Config{
		Proximity: proximity.Params{Alpha: 1, SelfWeight: 0.1},
		Beta:      1,
	}
	scaled := tinyEngine(t, cfg)
	q := Query{Seeker: 0, Tags: []tagstore.TagID{0}, K: 10}
	a, err := full.ExactSocial(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := scaled.ExactSocial(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Results) != len(b.Results) {
		t.Fatalf("self weight changed the result set: %v vs %v", a.Results, b.Results)
	}
	// every score scales by exactly 0.1
	bScore := map[int32]float64{}
	for _, r := range b.Results {
		bScore[r.Item] = r.Score
	}
	for _, r := range a.Results {
		if math.Abs(bScore[r.Item]-0.1*r.Score) > 1e-12 {
			t.Fatalf("item %d: scaled %g, want %g", r.Item, bScore[r.Item], 0.1*r.Score)
		}
	}
	// and SocialMerge agrees under the scaled seed
	m, err := scaled.SocialMerge(q, Options{})
	if err != nil || !m.Exact {
		t.Fatalf("scaled merge: %v exact=%v", err, m.Exact)
	}
	assertTopKEquivalent(t, scaled, q, m)
}

// TestAnswerDeterminism: repeated executions produce identical answers.
func TestAnswerDeterminism(t *testing.T) {
	e, ds := randomCorpusEngine(t, 99, DefaultConfig())
	q := Query{Seeker: ds.Graph.DegreePercentileUser(80), Tags: []tagstore.TagID{0, 1}, K: 10}
	first, err := e.SocialMerge(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := e.SocialMerge(q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(again.Results) != len(first.Results) {
			t.Fatal("non-deterministic result count")
		}
		for j := range again.Results {
			if again.Results[j] != first.Results[j] {
				t.Fatalf("non-deterministic results at rank %d", j)
			}
		}
		if again.Access != first.Access {
			t.Fatalf("non-deterministic access counts: %+v vs %+v", again.Access, first.Access)
		}
	}
}

// TestEngineOnEmptyCorpus: a universe with users but no edges and no
// triples answers emptily everywhere.
func TestEngineOnEmptyCorpus(t *testing.T) {
	g, err := graph.NewBuilder(3).Build()
	if err != nil {
		t.Fatal(err)
	}
	s, err := tagstore.NewBuilder(3, 2, 1).Build()
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(g, s, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Seeker: 1, Tags: []tagstore.TagID{0}, K: 5}
	for name, algo := range map[string]func(Query) (Answer, error){
		"merge":  func(q Query) (Answer, error) { return e.SocialMerge(q, Options{}) },
		"exact":  e.ExactSocial,
		"global": e.GlobalTopK,
	} {
		ans, err := algo(q)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(ans.Results) != 0 {
			t.Fatalf("%s returned results on empty corpus: %v", name, ans.Results)
		}
	}
}

// TestResultsSortedInvariant: every algorithm returns (score desc,
// item asc) ordering.
func TestResultsSortedInvariant(t *testing.T) {
	e, ds := randomCorpusEngine(t, 7, DefaultConfig())
	for trial := 0; trial < 5; trial++ {
		q := Query{
			Seeker: graph.UserID(trial * 7 % ds.Graph.NumUsers()),
			Tags:   []tagstore.TagID{0, 1, 2},
			K:      15,
		}
		for name, algo := range map[string]func(Query) (Answer, error){
			"merge":  func(q Query) (Answer, error) { return e.SocialMerge(q, Options{}) },
			"exact":  e.ExactSocial,
			"global": e.GlobalTopK,
		} {
			ans, err := algo(q)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			assertSorted(t, name, ans.Results)
		}
	}
}

func assertSorted(t *testing.T, name string, rs []topk.Result) {
	t.Helper()
	for i := 1; i < len(rs); i++ {
		a, b := rs[i-1], rs[i]
		if a.Score < b.Score || (a.Score == b.Score && a.Item > b.Item) {
			t.Fatalf("%s: results out of order at %d: %v", name, i, rs)
		}
	}
}
