package quorum

import (
	"fmt"
	"sync"

	"repro/internal/durable"
	"repro/internal/wal"
)

// qlog is the consensus log: the same segmented, fsync-per-append
// wal.Log the PR 5 replication log uses, plus the term index consensus
// needs. Terms are not stored per frame — the framing is unchanged, so
// a single-front-end replication log can be promoted to a quorum log in
// place. Instead, RecTerm records mark leadership changes, and every
// record's term is the term of the nearest RecTerm at or before it
// (records from a pre-quorum log, before the first RecTerm, carry
// term 0).
type qlog struct {
	wal *wal.Log

	mu sync.Mutex
	// spans is the term index, ascending by start LSN: spans[i] covers
	// [spans[i].start, spans[i+1].start). Rebuilt from RecTerm records
	// at open, extended on append, pruned on conflict truncation.
	spans []termSpan
	head  uint64
}

type termSpan struct {
	start uint64
	term  uint64
}

// openQLog opens (creating if necessary) the consensus log in dir and
// rebuilds the term index from its RecTerm records.
func openQLog(dir string) (*qlog, error) {
	l, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		return nil, fmt.Errorf("quorum: opening consensus log: %w", err)
	}
	q := &qlog{wal: l}
	head, err := l.ReadFrom(1, func(rec wal.Record) error {
		if rec.Type != durable.RecTerm {
			return nil
		}
		term, _, derr := durable.DecodeTerm(rec.Data)
		if derr != nil {
			return fmt.Errorf("quorum: lsn %d: %w", rec.LSN, derr)
		}
		q.spans = append(q.spans, termSpan{start: rec.LSN, term: term})
		return nil
	})
	if err != nil {
		l.Close()
		return nil, err
	}
	q.head = head
	return q, nil
}

func (q *qlog) close() error { return q.wal.Close() }

// headLSN returns the LSN of the last appended record (0 when empty).
func (q *qlog) headLSN() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.head
}

// lastTerm returns the term of the head record (0 for an empty or
// wholly pre-quorum log).
func (q *qlog) lastTerm() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.termOfLocked(q.head)
}

// termOf returns the term a record was appended under (0 for LSN 0 and
// for pre-quorum records).
func (q *qlog) termOf(lsn uint64) uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.termOfLocked(lsn)
}

func (q *qlog) termOfLocked(lsn uint64) uint64 {
	if lsn == 0 {
		return 0
	}
	for i := len(q.spans) - 1; i >= 0; i-- {
		if q.spans[i].start <= lsn {
			return q.spans[i].term
		}
	}
	return 0
}

// append writes one record carrying the given term and returns its
// LSN. The leader appends under its current term; a follower appends
// entries copied from the leader under the entry's original term.
func (q *qlog) append(term uint64, t wal.Type, data []byte) (uint64, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	lsn, err := q.wal.Append(t, data)
	if err != nil {
		return 0, err
	}
	q.head = lsn
	if n := len(q.spans); n == 0 || q.spans[n-1].term != term {
		q.spans = append(q.spans, termSpan{start: lsn, term: term})
	}
	return lsn, nil
}

// truncateFrom discards every record with LSN ≥ lsn (conflict
// resolution: the suffix disagrees with the elected leader) and prunes
// the term index to match.
func (q *qlog) truncateFrom(lsn uint64) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if err := q.wal.TruncateFrom(lsn); err != nil {
		return err
	}
	if lsn-1 < q.head {
		q.head = lsn - 1
	}
	for len(q.spans) > 0 && q.spans[len(q.spans)-1].start >= lsn {
		q.spans = q.spans[:len(q.spans)-1]
	}
	return nil
}

// readRange streams records with from ≤ LSN ≤ through (term-stamped
// from the index) into fn.
func (q *qlog) readRange(from, through uint64, fn func(rec wal.Record, term uint64) error) error {
	_, err := q.wal.ReadThrough(from, through, func(rec wal.Record) error {
		return fn(rec, q.termOf(rec.LSN))
	})
	return err
}

// segments reports the number of live segment files (observability).
func (q *qlog) segments() int { return q.wal.Segments() }
