// Package quorum replicates the fleet's replication log across a small
// set of front-ends with leader election and majority-acknowledged
// appends, removing the single-front-end write SPOF left by the PR 5
// design.
//
// The protocol is a deliberately small Raft subset over the existing
// wal.Log framing: term-stamped leadership (RecTerm records mark
// leadership changes in the log itself), randomized election timeouts,
// a log-up-to-dateness vote rule, an AppendEntries-style consistency
// check with conflict-suffix truncation, and the current-term commit
// rule. A mutation is acknowledged to the client only once its record
// is durable on a majority of front-ends; the committed prefix is
// therefore stable across any single-node failure, and an elected
// successor resumes exactly from it — no acknowledged LSN is ever
// lost or reordered.
//
// What it is not: there is no snapshot/install-log path (the quorum
// log is never prefix-truncated while peers lag), no membership
// change protocol (the peer set is fixed at process start), and no
// read leases (reads are served by every front-end from the replica
// ring, which PR 5's invalidation protocol already keeps sound).
package quorum

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/durable"
	"repro/internal/obs"
	"repro/internal/wal"
)

// Role is a node's current position in the election cycle.
type Role int

const (
	Follower Role = iota
	Candidate
	Leader
)

func (r Role) String() string {
	switch r {
	case Leader:
		return "leader"
	case Candidate:
		return "candidate"
	default:
		return "follower"
	}
}

// NotLeaderError reports that a write was addressed to a non-leader
// node. When the leader is known its id/URL are carried so the server
// layer can answer with a 307 redirect and clients can re-aim.
type NotLeaderError struct {
	LeaderID  string
	LeaderURL string
}

func (e *NotLeaderError) Error() string {
	if e.LeaderURL == "" {
		return "quorum: not the leader (no leader known)"
	}
	return fmt.Sprintf("quorum: not the leader (leader is %s at %s)", e.LeaderID, e.LeaderURL)
}

// ErrShutdown is returned by Append once the node has been closed.
var ErrShutdown = errors.New("quorum: node closed")

// Config wires a Node into its cluster.
type Config struct {
	// ID is this node's stable identity; it must be a key of Peers.
	ID string
	// Peers maps node id → base URL for every cluster member,
	// including this node. The set is fixed for the process lifetime.
	Peers map[string]string
	// Dir holds the consensus log segments and the term/vote state
	// file. Promoting a PR 5 single-front-end replication log is
	// supported: point Dir at its directory and the existing records
	// become the term-0 committed prefix.
	Dir string

	// ElectionTimeout is the base follower patience; each wait is
	// randomized in [ElectionTimeout, 2·ElectionTimeout). Default 300ms.
	ElectionTimeout time.Duration
	// Heartbeat is the leader's idle append cadence. Default 60ms.
	Heartbeat time.Duration
	// RPCTimeout bounds a single vote or append RPC. Default 1s.
	RPCTimeout time.Duration

	// Logf, when set, receives one-line protocol events (elections,
	// step-downs, conflict truncations).
	Logf func(format string, args ...any)
}

func (c *Config) fill() error {
	if c.ID == "" {
		return errors.New("quorum: config needs an ID")
	}
	if _, ok := c.Peers[c.ID]; !ok {
		return fmt.Errorf("quorum: own id %q missing from peer set", c.ID)
	}
	if c.Dir == "" {
		return errors.New("quorum: config needs a log Dir")
	}
	if c.ElectionTimeout <= 0 {
		c.ElectionTimeout = 300 * time.Millisecond
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = 60 * time.Millisecond
	}
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return nil
}

// peer is the leader's view of one other cluster member.
type peer struct {
	id  string
	url string

	sendMu sync.Mutex // serializes append sessions to this peer

	mu    sync.Mutex
	next  uint64 // next LSN to send
	match uint64 // highest LSN known replicated on the peer

	notify chan struct{}
}

func (p *peer) poke() {
	select {
	case p.notify <- struct{}{}:
	default:
	}
}

// Node is one quorum member. Open it, mount Handler() on the node's
// HTTP server, then Start() the timers.
type Node struct {
	cfg  Config
	log  *qlog
	rand *rand.Rand

	mu         sync.Mutex
	term       uint64
	votedFor   string
	role       Role
	leaderID   string
	leaderURL  string
	commit     uint64
	termRecLSN uint64 // LSN of our own term's RecTerm record while leader
	lastHeard  time.Time
	closed     bool

	commitCond *sync.Cond // signals commit advance, step-down, close

	// traced maps an in-flight traced Append's LSN to its trace
	// context while the leader awaits commit, so the detached per-peer
	// replication pushes can tag that entry on the wire and merge the
	// followers' spans back into the right trace. Guarded by mu;
	// entries are removed when Append returns, so the map stays
	// bounded by the number of concurrently blocked traced appends.
	traced map[uint64]tracedAppend

	peers map[string]*peer // every member except self

	roleMu    sync.Mutex
	roleHooks []func(leader bool, term uint64)

	stop chan struct{}
	wg   sync.WaitGroup
}

// Open loads (or creates) the consensus log and persisted term/vote
// state. The node is passive until Start.
func Open(cfg Config) (*Node, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	log, err := openQLog(cfg.Dir)
	if err != nil {
		return nil, err
	}
	ps, err := loadState(cfg.Dir)
	if err != nil {
		log.close()
		return nil, err
	}
	n := &Node{
		cfg:       cfg,
		log:       log,
		rand:      rand.New(rand.NewSource(time.Now().UnixNano() ^ int64(len(cfg.ID)))),
		term:      ps.Term,
		votedFor:  ps.VotedFor,
		role:      Follower,
		lastHeard: time.Now(),
		peers:     make(map[string]*peer),
		traced:    make(map[uint64]tracedAppend),
		stop:      make(chan struct{}),
	}
	n.commitCond = sync.NewCond(&n.mu)
	for id, url := range cfg.Peers {
		if id == n.cfg.ID {
			continue
		}
		n.peers[id] = &peer{id: id, url: url, notify: make(chan struct{}, 1)}
	}
	return n, nil
}

// Start launches the election timer and, per peer, a replication
// loop. Call after the node's HTTP listener is accepting, so peers'
// RPCs can land.
func (n *Node) Start() {
	n.wg.Add(1)
	go n.run()
	for _, p := range n.peers {
		n.wg.Add(1)
		go n.replicate(p)
	}
}

// Close stops timers and replication and closes the log. In-flight
// Append calls fail with ErrShutdown.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	close(n.stop)
	n.commitCond.Broadcast()
	n.mu.Unlock()
	n.wg.Wait()
	return n.log.close()
}

// OnRoleChange registers fn to run (in its own goroutine) whenever
// this node wins or loses leadership. Registration must happen before
// Start.
func (n *Node) OnRoleChange(fn func(leader bool, term uint64)) {
	n.roleMu.Lock()
	defer n.roleMu.Unlock()
	n.roleHooks = append(n.roleHooks, fn)
}

func (n *Node) fireRoleChange(leader bool, term uint64) {
	n.roleMu.Lock()
	hooks := append([]func(bool, uint64){}, n.roleHooks...)
	n.roleMu.Unlock()
	for _, fn := range hooks {
		go fn(leader, term)
	}
}

// IsLeader reports whether this node currently holds leadership.
func (n *Node) IsLeader() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role == Leader
}

// Leader returns the believed current leader's id and URL ("" when
// unknown, e.g. mid-election).
func (n *Node) Leader() (id, url string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.leaderID, n.leaderURL
}

// Term returns the node's current term.
func (n *Node) Term() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.term
}

// CommitLSN returns the highest majority-acknowledged LSN.
func (n *Node) CommitLSN() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.commit
}

// Head returns the local log head, which may run ahead of CommitLSN.
func (n *Node) Head() uint64 { return n.log.headLSN() }

// NotLeader builds the redirect error for the currently believed
// leader; used by write paths outside this package.
func (n *Node) NotLeader() error {
	id, url := n.Leader()
	return &NotLeaderError{LeaderID: id, LeaderURL: url}
}

// ReadCommitted streams committed records with LSN ≥ from into fn and
// returns the commit LSN the read was bounded by. Uncommitted suffix
// records are never surfaced — consumers (replica catch-up, log
// audits) only ever observe the stable prefix.
func (n *Node) ReadCommitted(from uint64, fn func(rec wal.Record) error) (uint64, error) {
	commit := n.CommitLSN()
	if from > commit {
		return commit, nil
	}
	err := n.log.readRange(from, commit, func(rec wal.Record, _ uint64) error { return fn(rec) })
	return commit, err
}

// Append, on the leader, appends one record under the current term,
// replicates it, and returns once a majority has acknowledged it
// (commit ≥ its LSN). On any other node it fails with NotLeaderError.
// An error after the local append (timeout, leadership lost) leaves
// the record's fate indeterminate: a successor may still commit it.
func (n *Node) Append(ctx context.Context, t wal.Type, data []byte) (uint64, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return 0, ErrShutdown
	}
	if n.role != Leader {
		id, url := n.leaderID, n.leaderURL
		n.mu.Unlock()
		return 0, &NotLeaderError{LeaderID: id, LeaderURL: url}
	}
	term := n.term
	lsn, err := n.log.append(term, t, data)
	if err != nil {
		n.mu.Unlock()
		return 0, fmt.Errorf("quorum: local append: %w", err)
	}
	// A traced mutation's replication happens on detached per-peer
	// goroutines; park its trace context keyed by LSN so pushPeer can
	// carry it on the wire and merge follower spans back. Untraced
	// appends (the common case) skip the map entirely.
	if tp := obs.Traceparent(ctx); tp != "" {
		n.traced[lsn] = tracedAppend{tp: tp, tr: obs.FromContext(ctx)}
		defer func() {
			n.mu.Lock()
			delete(n.traced, lsn)
			n.mu.Unlock()
		}()
	}
	n.maybeCommitLocked()
	n.mu.Unlock()
	for _, p := range n.peers {
		p.poke()
	}
	return lsn, n.waitCommitted(ctx, lsn, term)
}

// tracedAppend is one blocked traced Append: the wire form of its
// trace position plus the trace the followers' spans merge back into.
// The *Trace (not the context) is retained because a slow peer's push
// can outlive the request — Trace.Merge stays safe after finish, while
// the context's span is recycled.
type tracedAppend struct {
	tp string
	tr *obs.Trace
}

// waitCommitted blocks until commit ≥ lsn while we remain leader of
// term, or fails on ctx expiry / step-down / close.
func (n *Node) waitCommitted(ctx context.Context, lsn, term uint64) error {
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			n.commitCond.Broadcast()
		case <-done:
		}
	}()
	n.mu.Lock()
	defer n.mu.Unlock()
	for {
		if n.commit >= lsn {
			return nil
		}
		if n.closed {
			return ErrShutdown
		}
		if n.role != Leader || n.term != term {
			return fmt.Errorf("quorum: leadership lost before lsn %d committed (fate indeterminate)", lsn)
		}
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("quorum: waiting for lsn %d to commit: %w", lsn, err)
		}
		n.commitCond.Wait()
	}
}

// run is the timer loop: election patience as follower/candidate,
// heartbeat cadence as leader.
func (n *Node) run() {
	defer n.wg.Done()
	tick := n.cfg.Heartbeat / 2
	if tick <= 0 {
		tick = 10 * time.Millisecond
	}
	timeout := n.randTimeout()
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-ticker.C:
		}
		n.mu.Lock()
		role := n.role
		idle := time.Since(n.lastHeard)
		n.mu.Unlock()
		switch role {
		case Leader:
			for _, p := range n.peers {
				p.poke()
			}
		default:
			if idle >= timeout {
				timeout = n.randTimeout()
				n.campaign()
			}
		}
	}
}

func (n *Node) randTimeout() time.Duration {
	base := n.cfg.ElectionTimeout
	return base + time.Duration(n.rand.Int63n(int64(base)))
}

// campaign runs one election round: bump term, vote for self, solicit
// the cluster, and take leadership on a majority.
func (n *Node) campaign() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.role = Candidate
	n.term++
	n.votedFor = n.cfg.ID
	n.leaderID, n.leaderURL = "", ""
	n.lastHeard = time.Now()
	term := n.term
	if err := saveState(n.cfg.Dir, persistentState{Term: n.term, VotedFor: n.votedFor}); err != nil {
		n.cfg.Logf("quorum[%s]: persisting candidate state: %v", n.cfg.ID, err)
		n.role = Follower
		n.mu.Unlock()
		return
	}
	n.mu.Unlock()

	lastLSN := n.log.headLSN()
	lastTerm := n.log.lastTerm()
	n.cfg.Logf("quorum[%s]: campaigning for term %d (log %d@t%d)", n.cfg.ID, term, lastLSN, lastTerm)

	votes := 1 // self
	needed := n.majority()
	if votes >= needed {
		n.takeOffice(term)
		return
	}
	results := make(chan voteResponse, len(n.peers))
	for _, p := range n.peers {
		go func(p *peer) {
			ctx, cancel := context.WithTimeout(context.Background(), n.cfg.RPCTimeout)
			defer cancel()
			resp, err := sendVote(ctx, p.url, voteRequest{
				Term: term, Candidate: n.cfg.ID, LastLSN: lastLSN, LastTerm: lastTerm,
			})
			if err != nil {
				resp = voteResponse{}
			}
			results <- resp
		}(p)
	}
	deadline := time.After(n.cfg.ElectionTimeout)
	for range n.peers {
		select {
		case resp := <-results:
			if resp.Term > term {
				n.stepDown(resp.Term, "", "")
				return
			}
			if resp.Granted {
				votes++
				if votes >= needed {
					n.takeOffice(term)
					return
				}
			}
		case <-deadline:
			return // let the timer fire a fresh round
		case <-n.stop:
			return
		}
	}
}

func (n *Node) majority() int { return len(n.cfg.Peers)/2 + 1 }

// takeOffice installs this node as leader of term and stamps the log
// with the term record. Committing that record (which happens as soon
// as a majority matches it) commits the entire prefix beneath it.
func (n *Node) takeOffice(term uint64) {
	n.mu.Lock()
	if n.closed || n.term != term || n.role != Candidate {
		n.mu.Unlock()
		return
	}
	n.role = Leader
	n.leaderID = n.cfg.ID
	n.leaderURL = n.cfg.Peers[n.cfg.ID]
	lsn, err := n.log.append(term, durable.RecTerm, durable.EncodeTerm(term, n.cfg.ID))
	if err != nil {
		n.cfg.Logf("quorum[%s]: term record append failed, abdicating: %v", n.cfg.ID, err)
		n.role = Follower
		n.mu.Unlock()
		return
	}
	n.termRecLSN = lsn
	head := n.log.headLSN()
	for _, p := range n.peers {
		p.mu.Lock()
		p.next = head + 1
		p.match = 0
		p.mu.Unlock()
	}
	n.maybeCommitLocked()
	n.mu.Unlock()
	n.cfg.Logf("quorum[%s]: leader of term %d (term record at lsn %d)", n.cfg.ID, term, lsn)
	for _, p := range n.peers {
		p.poke()
	}
	n.fireRoleChange(true, term)
}

// stepDown demotes to follower of newTerm (recording the new leader if
// known). Any blocked Append calls are woken to fail.
func (n *Node) stepDown(newTerm uint64, leaderID, leaderURL string) {
	n.mu.Lock()
	if n.closed || newTerm < n.term {
		n.mu.Unlock()
		return
	}
	wasLeader := n.role == Leader
	if newTerm > n.term {
		n.term = newTerm
		n.votedFor = ""
		if err := saveState(n.cfg.Dir, persistentState{Term: n.term, VotedFor: n.votedFor}); err != nil {
			n.cfg.Logf("quorum[%s]: persisting step-down state: %v", n.cfg.ID, err)
		}
	}
	n.role = Follower
	if leaderID != "" {
		n.leaderID, n.leaderURL = leaderID, leaderURL
	} else if wasLeader {
		n.leaderID, n.leaderURL = "", ""
	}
	n.lastHeard = time.Now()
	term := n.term
	n.commitCond.Broadcast()
	n.mu.Unlock()
	if wasLeader {
		n.cfg.Logf("quorum[%s]: stepping down at term %d", n.cfg.ID, term)
		n.fireRoleChange(false, term)
	}
}

// replicate is the per-peer leader loop: on pokes (new appends or
// heartbeat ticks) it pushes the peer's missing suffix, walking back
// on consistency rejections.
func (n *Node) replicate(p *peer) {
	defer n.wg.Done()
	for {
		select {
		case <-n.stop:
			return
		case <-p.notify:
		}
		n.pushPeer(p)
	}
}

// pushPeer runs one append session: batches of the peer's missing
// records until it is caught up, or a single empty heartbeat when it
// already is.
func (n *Node) pushPeer(p *peer) {
	p.sendMu.Lock()
	defer p.sendMu.Unlock()
	for {
		n.mu.Lock()
		if n.closed || n.role != Leader {
			n.mu.Unlock()
			return
		}
		term := n.term
		commit := n.commit
		n.mu.Unlock()
		p.mu.Lock()
		next := p.next
		p.mu.Unlock()

		head := n.log.headLSN()
		prev := next - 1
		prevTerm := n.log.termOf(prev)
		var entries []logEntry
		if next <= head {
			through := next + maxEntriesPerAppend - 1
			if through > head {
				through = head
			}
			err := n.log.readRange(next, through, func(rec wal.Record, term uint64) error {
				entries = append(entries, logEntry{
					LSN: rec.LSN, Term: term, Type: uint8(rec.Type),
					// rec.Data aliases the reader's scratch buffer;
					// copy before it is overwritten by the next frame.
					Data: append([]byte(nil), rec.Data...),
				})
				return nil
			})
			if err != nil {
				n.cfg.Logf("quorum[%s]: reading log for %s: %v", n.cfg.ID, p.id, err)
				return
			}
		}

		// Tag entries whose Append is still blocked in a traced request,
		// and remember where each one's follower spans should merge.
		var mergeInto map[uint64]*obs.Trace
		if len(entries) > 0 {
			n.mu.Lock()
			if len(n.traced) > 0 {
				for i := range entries {
					if ta, ok := n.traced[entries[i].LSN]; ok {
						entries[i].Traceparent = ta.tp
						if mergeInto == nil {
							mergeInto = make(map[uint64]*obs.Trace)
						}
						mergeInto[entries[i].LSN] = ta.tr
					}
				}
			}
			n.mu.Unlock()
		}

		ctx, cancel := context.WithTimeout(context.Background(), n.cfg.RPCTimeout)
		resp, err := sendAppend(ctx, p.url, appendRequest{
			Term: term, LeaderID: n.cfg.ID, LeaderURL: n.cfg.Peers[n.cfg.ID],
			PrevLSN: prev, PrevTerm: prevTerm, Entries: entries, Commit: commit,
		})
		cancel()
		if err != nil {
			return // peer unreachable; next poke retries
		}
		if resp.Term > term {
			n.stepDown(resp.Term, "", "")
			return
		}
		if resp.OK {
			// Stitch the follower's replication spans into each entry's
			// originating trace. Only LSNs this push tagged are merged:
			// a response cannot inject spans into unrelated traces.
			for lsn, spans := range resp.Spans {
				if tr, ok := mergeInto[lsn]; ok {
					tr.Merge(spans)
				}
			}
			matched := prev + uint64(len(entries))
			p.mu.Lock()
			if matched > p.match {
				p.match = matched
			}
			p.next = matched + 1
			p.mu.Unlock()
			n.mu.Lock()
			n.maybeCommitLocked()
			n.mu.Unlock()
			if matched >= n.log.headLSN() {
				return // caught up
			}
			continue
		}
		// Consistency rejection: back off using the peer's head hint.
		p.mu.Lock()
		if resp.Hint < prev {
			p.next = resp.Hint + 1
		} else {
			p.next = prev
		}
		if p.next == 0 {
			p.next = 1
		}
		p.mu.Unlock()
	}
}

// maybeCommitLocked advances commit to the highest LSN replicated on a
// majority whose record belongs to the current term (the Raft commit
// rule: older-term records commit only transitively, via a
// current-term record above them — the takeOffice term record
// guarantees one exists). Callers hold n.mu.
func (n *Node) maybeCommitLocked() {
	if n.role != Leader {
		return
	}
	matches := make([]uint64, 0, len(n.peers)+1)
	matches = append(matches, n.log.headLSN())
	for _, p := range n.peers {
		p.mu.Lock()
		matches = append(matches, p.match)
		p.mu.Unlock()
	}
	sort.Slice(matches, func(i, j int) bool { return matches[i] > matches[j] })
	candidate := matches[n.majority()-1]
	if candidate > n.commit && n.log.termOf(candidate) == n.term {
		n.commit = candidate
		n.commitCond.Broadcast()
	}
}

// handleVote answers a peer's vote solicitation.
func (n *Node) handleVote(req voteRequest) voteResponse {
	n.mu.Lock()
	defer n.mu.Unlock()
	if req.Term > n.term {
		n.term = req.Term
		n.votedFor = ""
		if n.role == Leader {
			// Demote inline; hooks fire from the caller-side stepDown
			// path only, so just flip state and wake waiters.
			n.role = Follower
			n.leaderID, n.leaderURL = "", ""
			n.commitCond.Broadcast()
			defer n.fireRoleChange(false, req.Term)
		} else {
			n.role = Follower
		}
		if err := saveState(n.cfg.Dir, persistentState{Term: n.term, VotedFor: n.votedFor}); err != nil {
			n.cfg.Logf("quorum[%s]: persisting term bump: %v", n.cfg.ID, err)
			return voteResponse{Term: n.term}
		}
	}
	if req.Term < n.term {
		return voteResponse{Term: n.term}
	}
	lastLSN := n.log.headLSN()
	lastTerm := n.log.lastTerm()
	upToDate := req.LastTerm > lastTerm || (req.LastTerm == lastTerm && req.LastLSN >= lastLSN)
	if (n.votedFor == "" || n.votedFor == req.Candidate) && upToDate {
		n.votedFor = req.Candidate
		if err := saveState(n.cfg.Dir, persistentState{Term: n.term, VotedFor: n.votedFor}); err != nil {
			n.cfg.Logf("quorum[%s]: persisting vote: %v", n.cfg.ID, err)
			return voteResponse{Term: n.term}
		}
		n.lastHeard = time.Now()
		return voteResponse{Term: n.term, Granted: true}
	}
	return voteResponse{Term: n.term}
}

// handleAppend answers a leader's replication push (possibly an empty
// heartbeat): consistency-check at PrevLSN, truncate any conflicting
// suffix, append the new entries, and advance the local commit.
func (n *Node) handleAppend(req appendRequest) appendResponse {
	n.mu.Lock()
	if req.Term < n.term {
		resp := appendResponse{Term: n.term}
		n.mu.Unlock()
		return resp
	}
	wasLeader := n.role == Leader
	if req.Term > n.term {
		n.term = req.Term
		n.votedFor = ""
		if err := saveState(n.cfg.Dir, persistentState{Term: n.term, VotedFor: n.votedFor}); err != nil {
			n.cfg.Logf("quorum[%s]: persisting term bump: %v", n.cfg.ID, err)
		}
	}
	n.role = Follower
	n.leaderID, n.leaderURL = req.LeaderID, req.LeaderURL
	n.lastHeard = time.Now()
	term := n.term
	if wasLeader {
		n.commitCond.Broadcast()
	}
	n.mu.Unlock()
	if wasLeader {
		n.cfg.Logf("quorum[%s]: deposed by %s at term %d", n.cfg.ID, req.LeaderID, term)
		n.fireRoleChange(false, term)
	}

	head := n.log.headLSN()
	if req.PrevLSN > head {
		return appendResponse{Term: term, Hint: head}
	}
	if got := n.log.termOf(req.PrevLSN); req.PrevLSN > 0 && got != req.PrevTerm {
		// Our copy of PrevLSN disagrees with the leader's: it is
		// uncommitted detritus from a dead term. Drop it and have the
		// leader walk back.
		n.cfg.Logf("quorum[%s]: conflict at lsn %d (have t%d, leader says t%d), truncating",
			n.cfg.ID, req.PrevLSN, got, req.PrevTerm)
		if err := n.log.truncateFrom(req.PrevLSN); err != nil {
			n.cfg.Logf("quorum[%s]: conflict truncation: %v", n.cfg.ID, err)
			return appendResponse{Term: term, Hint: 0}
		}
		return appendResponse{Term: term, Hint: req.PrevLSN - 1}
	}
	var spans map[uint64][]obs.SpanData
	for _, e := range req.Entries {
		head = n.log.headLSN()
		if e.LSN <= head {
			if n.log.termOf(e.LSN) == e.Term {
				continue // already replicated
			}
			n.cfg.Logf("quorum[%s]: conflict at lsn %d, truncating suffix", n.cfg.ID, e.LSN)
			if err := n.log.truncateFrom(e.LSN); err != nil {
				n.cfg.Logf("quorum[%s]: conflict truncation: %v", n.cfg.ID, err)
				return appendResponse{Term: term, Hint: 0}
			}
		}
		if e.LSN != n.log.headLSN()+1 {
			return appendResponse{Term: term, Hint: n.log.headLSN()}
		}
		start := time.Now()
		if _, err := n.log.append(e.Term, wal.Type(e.Type), e.Data); err != nil {
			n.cfg.Logf("quorum[%s]: follower append: %v", n.cfg.ID, err)
			return appendResponse{Term: term, Hint: n.log.headLSN()}
		}
		// A traced entry gets its durable-append leg reported back to
		// the leader, parented under the originating mutation's span.
		// Re-delivered entries (the `continue` above) emit nothing: the
		// first delivery already reported the real work.
		if e.Traceparent != "" {
			if _, parent, sampled, ok := obs.ParseTraceparent(e.Traceparent); ok && sampled {
				if spans == nil {
					spans = make(map[uint64][]obs.SpanData)
				}
				spans[e.LSN] = append(spans[e.LSN], obs.SpanData{
					SpanID:     obs.NewSpanID().String(),
					ParentID:   parent.String(),
					Name:       "quorum.follower.append",
					Node:       n.cfg.ID,
					Start:      start,
					DurationMS: float64(time.Since(start)) / float64(time.Millisecond),
					Attrs: []obs.Attr{
						{Key: "lsn", Value: strconv.FormatUint(e.LSN, 10)},
						{Key: "term", Value: strconv.FormatUint(e.Term, 10)},
					},
				})
			}
		}
	}
	// Only records we have verified against the leader may commit.
	matched := req.PrevLSN + uint64(len(req.Entries))
	limit := req.Commit
	if matched < limit {
		limit = matched
	}
	n.mu.Lock()
	if limit > n.commit {
		n.commit = limit
		n.commitCond.Broadcast()
	}
	n.mu.Unlock()
	return appendResponse{Term: term, OK: true, Match: matched, Spans: spans}
}

// PeerStats is one row of Stats.Peers.
type PeerStats struct {
	ID    string `json:"id"`
	URL   string `json:"url"`
	Match uint64 `json:"match_lsn"`
}

// Stats is the quorum block surfaced under /v1/stats.
type Stats struct {
	ID        string      `json:"id"`
	Role      string      `json:"role"`
	Term      uint64      `json:"term"`
	LeaderID  string      `json:"leader_id,omitempty"`
	LeaderURL string      `json:"leader_url,omitempty"`
	CommitLSN uint64      `json:"commit_lsn"`
	Head      uint64      `json:"head_lsn"`
	Members   int         `json:"members"`
	Segments  int         `json:"segments"`
	Peers     []PeerStats `json:"peers,omitempty"`
}

// Stats snapshots the node for observability endpoints.
func (n *Node) Stats() Stats {
	n.mu.Lock()
	st := Stats{
		ID:        n.cfg.ID,
		Role:      n.role.String(),
		Term:      n.term,
		LeaderID:  n.leaderID,
		LeaderURL: n.leaderURL,
		CommitLSN: n.commit,
		Members:   len(n.cfg.Peers),
	}
	isLeader := n.role == Leader
	n.mu.Unlock()
	st.Head = n.log.headLSN()
	st.Segments = n.log.segments()
	if isLeader {
		ids := make([]string, 0, len(n.peers))
		for id := range n.peers {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			p := n.peers[id]
			p.mu.Lock()
			st.Peers = append(st.Peers, PeerStats{ID: p.id, URL: p.url, Match: p.match})
			p.mu.Unlock()
		}
	}
	return st
}
