package quorum

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"

	"repro/internal/obs"
)

// maxEntriesPerAppend caps one replication push; a lagging peer is
// drained in successive batches rather than one giant RPC.
const maxEntriesPerAppend = 512

// persistentState is the term/vote pair Raft requires to survive
// restarts: forgetting a vote could hand out two votes in one term and
// elect two leaders.
type persistentState struct {
	Term     uint64 `json:"term"`
	VotedFor string `json:"voted_for"`
}

const stateFile = "quorum-state.json"

func loadState(dir string) (persistentState, error) {
	var ps persistentState
	buf, err := os.ReadFile(filepath.Join(dir, stateFile))
	if errors.Is(err, os.ErrNotExist) {
		return ps, nil
	}
	if err != nil {
		return ps, fmt.Errorf("quorum: reading state file: %w", err)
	}
	if err := json.Unmarshal(buf, &ps); err != nil {
		return ps, fmt.Errorf("quorum: corrupt state file: %w", err)
	}
	return ps, nil
}

// saveState durably replaces the state file (write temp, fsync,
// rename) before the vote or term bump it records takes effect.
func saveState(dir string, ps persistentState) error {
	buf, err := json.Marshal(ps)
	if err != nil {
		return err
	}
	f, err := os.CreateTemp(dir, stateFile+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, stateFile)); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Wire messages. JSON over plain POSTs keeps the transport debuggable
// with curl and reuses the fleet's HTTP plumbing; entry payloads are
// small (the Rec* codec) so base64 overhead is immaterial.

type voteRequest struct {
	Term      uint64 `json:"term"`
	Candidate string `json:"candidate"`
	LastLSN   uint64 `json:"last_lsn"`
	LastTerm  uint64 `json:"last_term"`
}

type voteResponse struct {
	Term    uint64 `json:"term"`
	Granted bool   `json:"granted"`
}

type logEntry struct {
	LSN  uint64 `json:"lsn"`
	Term uint64 `json:"term"`
	Type uint8  `json:"type"`
	Data []byte `json:"data"`
	// Traceparent carries the originating mutation's trace context.
	// Replication is detached from the mutation's request (pushPeer
	// batches entries from its own goroutine), so the usual
	// header-level obs.Inject never sees the mutation's span — the
	// trace rides per entry instead, letting followers report their
	// replication spans back for /debug/traces stitching.
	Traceparent string `json:"traceparent,omitempty"`
}

type appendRequest struct {
	Term      uint64     `json:"term"`
	LeaderID  string     `json:"leader_id"`
	LeaderURL string     `json:"leader_url"`
	PrevLSN   uint64     `json:"prev_lsn"`
	PrevTerm  uint64     `json:"prev_term"`
	Entries   []logEntry `json:"entries,omitempty"`
	Commit    uint64     `json:"commit"`
}

type appendResponse struct {
	Term  uint64 `json:"term"`
	OK    bool   `json:"ok"`
	Match uint64 `json:"match_lsn"`
	Hint  uint64 `json:"hint_lsn"`
	// Spans reports the follower's replication spans for entries that
	// carried a Traceparent, keyed by LSN so the leader can merge each
	// into the right originating trace (one batch may carry entries
	// from several concurrent traced mutations).
	Spans map[uint64][]obs.SpanData `json:"spans,omitempty"`
}

var transport = &http.Client{}

func postJSON(ctx context.Context, url string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	// A traced mutation's quorum append carries its traceparent, so the
	// followers' flight recorders capture the replicate leg too.
	obs.Inject(ctx, req.Header)
	resp, err := transport.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("quorum: %s: unexpected status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func sendVote(ctx context.Context, baseURL string, req voteRequest) (voteResponse, error) {
	var resp voteResponse
	err := postJSON(ctx, baseURL+"/quorum/vote", req, &resp)
	return resp, err
}

func sendAppend(ctx context.Context, baseURL string, req appendRequest) (appendResponse, error) {
	var resp appendResponse
	err := postJSON(ctx, baseURL+"/quorum/append", req, &resp)
	return resp, err
}

// Handler exposes the consensus transport: POST /quorum/vote,
// POST /quorum/append, and GET /quorum/status for operators. Mount it
// on the same server that serves the node's peer URL.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/quorum/vote", func(w http.ResponseWriter, r *http.Request) {
		var req voteRequest
		if !decodeRPC(w, r, &req) {
			return
		}
		writeJSON(w, n.handleVote(req))
	})
	mux.HandleFunc("/quorum/append", func(w http.ResponseWriter, r *http.Request) {
		var req appendRequest
		if !decodeRPC(w, r, &req) {
			return
		}
		writeJSON(w, n.handleAppend(req))
	})
	mux.HandleFunc("/quorum/status", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, n.Stats())
	})
	return mux
}

func decodeRPC(w http.ResponseWriter, r *http.Request, into any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return false
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 16<<20)).Decode(into); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
