package quorum

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/durable"
	"repro/internal/obs"
	"repro/internal/wal"
)

// swapHandler lets the httptest server exist before the node it
// serves (peer URLs must be known to build the node's config).
type swapHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (s *swapHandler) set(h http.Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.h = h
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	h := s.h
	s.mu.RUnlock()
	if h == nil {
		http.Error(w, "node not up", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

type cluster struct {
	t       *testing.T
	ids     []string
	peers   map[string]string
	dirs    map[string]string
	servers map[string]*httptest.Server
	swaps   map[string]*swapHandler

	mu    sync.Mutex
	nodes map[string]*Node
}

func newCluster(t *testing.T, n int) *cluster {
	t.Helper()
	c := &cluster{
		t:       t,
		peers:   make(map[string]string),
		dirs:    make(map[string]string),
		servers: make(map[string]*httptest.Server),
		swaps:   make(map[string]*swapHandler),
		nodes:   make(map[string]*Node),
	}
	root := t.TempDir()
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("fe%d", i+1)
		c.ids = append(c.ids, id)
		sw := &swapHandler{}
		srv := httptest.NewServer(sw)
		t.Cleanup(srv.Close)
		c.swaps[id] = sw
		c.servers[id] = srv
		c.peers[id] = srv.URL
		c.dirs[id] = filepath.Join(root, id)
	}
	for _, id := range c.ids {
		c.start(id)
	}
	t.Cleanup(func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		for _, nd := range c.nodes {
			nd.Close()
		}
	})
	return c
}

func (c *cluster) config(id string) Config {
	return Config{
		ID:              id,
		Peers:           c.peers,
		Dir:             c.dirs[id],
		ElectionTimeout: 60 * time.Millisecond,
		Heartbeat:       15 * time.Millisecond,
		RPCTimeout:      250 * time.Millisecond,
		Logf:            c.t.Logf,
	}
}

// start opens and starts the node for id (initial boot or restart).
func (c *cluster) start(id string) *Node {
	c.t.Helper()
	nd, err := Open(c.config(id))
	if err != nil {
		c.t.Fatalf("Open(%s): %v", id, err)
	}
	c.swaps[id].set(nd.Handler())
	nd.Start()
	c.mu.Lock()
	c.nodes[id] = nd
	c.mu.Unlock()
	return nd
}

// kill simulates a process SIGKILL: the HTTP surface goes dark and the
// node stops participating. The on-disk state survives for a restart.
func (c *cluster) kill(id string) {
	c.t.Helper()
	c.swaps[id].set(nil)
	c.mu.Lock()
	nd := c.nodes[id]
	delete(c.nodes, id)
	c.mu.Unlock()
	if nd != nil {
		nd.Close()
	}
}

func (c *cluster) node(id string) *Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nodes[id]
}

// waitLeader blocks until exactly one live node is leader and every
// live node agrees on it, returning its id.
func (c *cluster) waitLeader() string {
	c.t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		c.mu.Lock()
		var leaders []string
		agreed := true
		var want string
		for id, nd := range c.nodes {
			if nd.IsLeader() {
				leaders = append(leaders, id)
			}
			lid, _ := nd.Leader()
			if want == "" {
				want = lid
			}
			if lid == "" || lid != want {
				agreed = false
			}
		}
		c.mu.Unlock()
		if len(leaders) == 1 && agreed && want == leaders[0] {
			return leaders[0]
		}
		time.Sleep(10 * time.Millisecond)
	}
	c.t.Fatal("no stable leader elected within 5s")
	return ""
}

// committedPayloads reads the node's committed prefix as strings,
// skipping term records.
func committedPayloads(t *testing.T, nd *Node) []string {
	t.Helper()
	var out []string
	_, err := nd.ReadCommitted(1, func(rec wal.Record) error {
		if rec.Type != durable.RecTerm {
			out = append(out, string(rec.Data))
		}
		return nil
	})
	if err != nil {
		t.Fatalf("ReadCommitted: %v", err)
	}
	return out
}

func appendN(t *testing.T, nd *Node, prefix string, n int) []string {
	t.Helper()
	var out []string
	for i := 0; i < n; i++ {
		payload := fmt.Sprintf("%s-%d", prefix, i)
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		_, err := nd.Append(ctx, 1, []byte(payload))
		cancel()
		if err != nil {
			t.Fatalf("Append(%s): %v", payload, err)
		}
		out = append(out, payload)
	}
	return out
}

func wantPayloads(t *testing.T, nd *Node, id string, want []string) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		got := committedPayloads(t, nd)
		if len(got) == len(want) {
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s: committed record %d = %q, want %q", id, i, got[i], want[i])
				}
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: %d committed records, want %d", id, len(got), len(want))
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestSingleNodeElectsAndCommits(t *testing.T) {
	c := newCluster(t, 1)
	id := c.waitLeader()
	nd := c.node(id)
	want := appendN(t, nd, "solo", 5)
	wantPayloads(t, nd, id, want)
	if commit, head := nd.CommitLSN(), nd.Head(); commit != head {
		t.Fatalf("commit %d != head %d on single node", commit, head)
	}
}

func TestThreeNodeReplicationConverges(t *testing.T) {
	c := newCluster(t, 3)
	leader := c.waitLeader()
	want := appendN(t, c.node(leader), "rec", 20)
	for _, id := range c.ids {
		wantPayloads(t, c.node(id), id, want)
	}
	// A write addressed to a follower must redirect to the leader.
	for _, id := range c.ids {
		if id == leader {
			continue
		}
		_, err := c.node(id).Append(context.Background(), 1, []byte("x"))
		nle, ok := err.(*NotLeaderError)
		if !ok {
			t.Fatalf("follower append: got %v, want NotLeaderError", err)
		}
		if nle.LeaderURL != c.peers[leader] {
			t.Fatalf("redirect points at %q, want %q", nle.LeaderURL, c.peers[leader])
		}
	}
}

func TestLeaderDeathFailsOver(t *testing.T) {
	c := newCluster(t, 3)
	first := c.waitLeader()
	want := appendN(t, c.node(first), "pre", 10)
	c.kill(first)
	second := c.waitLeader()
	if second == first {
		t.Fatalf("dead node %s re-elected", first)
	}
	want = append(want, appendN(t, c.node(second), "post", 10)...)
	for _, id := range c.ids {
		if id == first {
			continue
		}
		wantPayloads(t, c.node(id), id, want)
	}
	// The dead node restarts, rejoins as follower, and converges.
	restarted := c.start(first)
	deadline := time.Now().Add(3 * time.Second)
	for restarted.CommitLSN() < c.node(second).CommitLSN() {
		if time.Now().After(deadline) {
			t.Fatalf("restarted %s stuck at commit %d < %d", first, restarted.CommitLSN(), c.node(second).CommitLSN())
		}
		time.Sleep(10 * time.Millisecond)
	}
	wantPayloads(t, restarted, first, want)
}

func TestUncommittedSuffixIsTruncated(t *testing.T) {
	c := newCluster(t, 3)
	leader := c.waitLeader()
	want := appendN(t, c.node(leader), "base", 5)
	for _, id := range c.ids {
		wantPayloads(t, c.node(id), id, want)
	}
	oldTerm := c.node(leader).Term()

	// The leader dies with unreplicated appends in its tail: fabricate
	// them straight into its log on disk under its own term, exactly
	// what a crash between local append and majority ack leaves
	// behind.
	c.kill(leader)
	orphan, err := openQLog(c.dirs[leader])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := orphan.append(oldTerm, 1, []byte("orphan-1")); err != nil {
		t.Fatal(err)
	}
	if _, err := orphan.append(oldTerm, 1, []byte("orphan-2")); err != nil {
		t.Fatal(err)
	}
	if err := orphan.close(); err != nil {
		t.Fatal(err)
	}

	// The survivors elect a successor (higher term) and move on.
	successor := c.waitLeader()
	if successor == leader {
		t.Fatalf("dead node %s re-elected", leader)
	}
	want = append(want, appendN(t, c.node(successor), "live", 5)...)

	// The old leader rejoins: its orphan suffix conflicts with the
	// successor's history and must be truncated away, never served.
	restarted := c.start(leader)
	wantPayloads(t, restarted, leader, want)
	for _, p := range committedPayloads(t, restarted) {
		if p == "orphan-1" || p == "orphan-2" {
			t.Fatal("orphaned uncommitted record survived rejoin")
		}
	}
}

// TestTracedAppendCarriesFollowerSpans pins the satellite contract for
// distributed tracing across replication: a mutation appended under a
// sampled trace gets its followers' durable-append legs merged back
// into the originating trace — even though the replication pushes run
// on detached per-peer goroutines that never see the request context —
// so /debug/traces/{id} shows the full quorum picture.
func TestTracedAppendCarriesFollowerSpans(t *testing.T) {
	c := newCluster(t, 3)
	lead := c.node(c.waitLeader())

	tr := obs.NewTracer(obs.Config{Node: "front", SampleEvery: 1})
	ctx, rq := tr.StartRequest(context.Background(), "", "POST", "/v1/friend")
	if !rq.Sampled() {
		t.Fatal("SampleEvery=1 request not sampled")
	}
	appendCtx, cancel := context.WithTimeout(ctx, 3*time.Second)
	defer cancel()
	if _, err := lead.Append(appendCtx, 1, []byte("edge alice bob")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	// Commit requires a majority, and the leader merges a follower's
	// spans before it counts that follower's ack toward commit — so by
	// the time Append returns, at least one follower span is merged.
	info := rq.Finish(200)
	if info.TraceID == "" {
		t.Fatal("finished request has no trace id")
	}

	rec, ok := tr.TraceByID(info.TraceID)
	if !ok {
		t.Fatalf("trace %s not in the flight recorder", info.TraceID)
	}
	var followerNodes []string
	for _, sp := range rec.Spans {
		if sp.Name != "quorum.follower.append" {
			continue
		}
		followerNodes = append(followerNodes, sp.Node)
		if sp.ParentID == "" {
			t.Fatalf("follower span %+v not parented under the mutation's span", sp)
		}
		var hasLSN bool
		for _, a := range sp.Attrs {
			if a.Key == "lsn" && a.Value != "" && a.Value != "0" {
				hasLSN = true
			}
		}
		if !hasLSN {
			t.Fatalf("follower span %+v carries no lsn attr", sp)
		}
	}
	if len(followerNodes) == 0 {
		t.Fatalf("no follower replication spans in the trace (spans: %+v)", rec.Spans)
	}
	for _, node := range followerNodes {
		if node == "" || c.node(node) == nil {
			t.Fatalf("follower span from unknown node %q", node)
		}
		if nd := c.node(node); nd.IsLeader() {
			t.Fatalf("replication span attributed to the leader %q", node)
		}
	}

	// An untraced append stays off the traced plumbing: nothing is
	// parked in the pending map once it returns.
	plainCtx, cancel2 := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel2()
	if _, err := lead.Append(plainCtx, 1, []byte("edge bob carol")); err != nil {
		t.Fatalf("untraced Append: %v", err)
	}
	lead.mu.Lock()
	pending := len(lead.traced)
	lead.mu.Unlock()
	if pending != 0 {
		t.Fatalf("traced-append map holds %d entries after appends returned", pending)
	}
}
