package metrics

import (
	"math/bits"
	"sync"
	"time"
)

// Histogram is an HDR-style log-linear latency histogram: durations land
// in buckets whose width grows geometrically (8 sub-buckets per octave,
// ≈12% relative error), so memory stays constant no matter how many
// observations arrive — the property an open-loop load harness needs at
// high QPS, where collecting raw samples would allocate per request.
//
// A Histogram built with a non-zero window is *windowed*: it keeps two
// half-window epochs and rotates them as time passes, so Snapshot always
// describes roughly the last window-to-2×window of observations instead
// of the whole process lifetime. That is what a stats endpoint wants —
// "p99 right now", not "p99 since boot". With window 0 the histogram is
// cumulative and never forgets.
//
// All methods are safe for concurrent use.
type Histogram struct {
	mu     sync.Mutex
	window time.Duration
	now    func() time.Time // test clock; time.Now when nil

	epoch    time.Time // start of the current half-window
	cur      [histBuckets]int64
	prev     [histBuckets]int64
	curCount int64
	prvCount int64
	curMax   int64 // ns
	prvMax   int64 // ns
}

// Bucket layout: values are clamped to ≥8 ns so the leading-bit exponent
// is always ≥3, then split into (exponent, top-3-mantissa-bits). 64
// octaves × 8 sub-buckets covers 8 ns to ~580 years.
const (
	histSubBits = 3
	histSub     = 1 << histSubBits
	histBuckets = 64 * histSub
)

func histIndex(ns int64) int {
	if ns < histSub {
		ns = histSub
	}
	major := bits.Len64(uint64(ns)) - 1 // ≥ histSubBits after the clamp
	sub := int((uint64(ns) >> (uint(major) - histSubBits)) & (histSub - 1))
	return major*histSub + sub
}

// histUpper is the inclusive upper bound of a bucket — quantiles report
// it so a bucketed p99 is conservative (never below the true p99 by more
// than one bucket width).
func histUpper(idx int) int64 {
	major := idx / histSub
	sub := int64(idx % histSub)
	if major < histSubBits {
		return int64(idx)
	}
	shift := uint(major - histSubBits)
	return ((histSub + sub + 1) << shift) - 1
}

// NewHistogram returns a histogram that summarizes roughly the trailing
// window of observations; window 0 makes it cumulative.
func NewHistogram(window time.Duration) *Histogram {
	return &Histogram{window: window}
}

func (h *Histogram) clock() time.Time {
	if h.now != nil {
		return h.now()
	}
	return time.Now()
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	idx := histIndex(ns)
	h.mu.Lock()
	h.rotateLocked()
	h.cur[idx]++
	h.curCount++
	if ns > h.curMax {
		h.curMax = ns
	}
	h.mu.Unlock()
}

// rotateLocked ages out old epochs of a windowed histogram. Each epoch
// spans half the window; Snapshot merges the current and previous epoch,
// so reported data is between one and two half-windows old at the edges.
func (h *Histogram) rotateLocked() {
	if h.window <= 0 {
		return
	}
	now := h.clock()
	if h.epoch.IsZero() {
		h.epoch = now
		return
	}
	half := h.window / 2
	if half <= 0 {
		half = time.Nanosecond
	}
	elapsed := now.Sub(h.epoch)
	switch {
	case elapsed < half:
		return
	case elapsed < 2*half:
		h.prev, h.cur = h.cur, [histBuckets]int64{}
		h.prvCount, h.curCount = h.curCount, 0
		h.prvMax, h.curMax = h.curMax, 0
		h.epoch = h.epoch.Add(half)
	default: // idle long enough that both epochs expired
		h.prev = [histBuckets]int64{}
		h.cur = [histBuckets]int64{}
		h.prvCount, h.curCount = 0, 0
		h.prvMax, h.curMax = 0, 0
		h.epoch = now
	}
}

// HistogramSnapshot is a point-in-time quantile summary, shaped for JSON
// stats endpoints.
type HistogramSnapshot struct {
	Count int64
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	P999  time.Duration
	Max   time.Duration
}

// Snapshot summarizes the histogram's current contents (for a windowed
// histogram: the trailing window).
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.rotateLocked()
	total := h.curCount + h.prvCount
	if total == 0 {
		return HistogramSnapshot{}
	}
	max := h.curMax
	if h.prvMax > max {
		max = h.prvMax
	}
	snap := HistogramSnapshot{
		Count: total,
		Max:   time.Duration(max),
	}
	// One ascending walk serves all quantiles.
	targets := [4]int64{
		quantileRank(total, 0.50),
		quantileRank(total, 0.95),
		quantileRank(total, 0.99),
		quantileRank(total, 0.999),
	}
	out := [4]*time.Duration{&snap.P50, &snap.P95, &snap.P99, &snap.P999}
	var seen int64
	next := 0
	for idx := 0; idx < histBuckets && next < len(targets); idx++ {
		seen += h.cur[idx] + h.prev[idx]
		for next < len(targets) && seen >= targets[next] {
			v := time.Duration(histUpper(idx))
			if v > time.Duration(max) {
				v = time.Duration(max)
			}
			*out[next] = v
			next++
		}
	}
	return snap
}

// quantileRank is the 1-based rank of the q-quantile under the same
// nearest-rank convention Percentile uses.
func quantileRank(total int64, q float64) int64 {
	r := int64(q*float64(total-1)) + 1
	if r < 1 {
		r = 1
	}
	if r > total {
		r = total
	}
	return r
}
