// Package metrics implements the result-quality measures the evaluation
// reports when comparing approximate answers against the exact ones:
// precision@k, recall@k, NDCG@k, Kendall's tau and mean reciprocal rank,
// plus small aggregation helpers for latency distributions and the
// serving-path counters /v1/stats exposes: cache effectiveness (hits,
// misses, invalidations, evictions), per-replica fleet routing
// (requests, failovers, hedges, health transitions) and invalidation
// broadcast progress.
package metrics

import (
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/topk"
)

// CacheCounters accumulates cache-effectiveness events. All methods are
// safe for concurrent use; the zero value is ready.
type CacheCounters struct {
	hits            atomic.Int64
	misses          atomic.Int64
	invalidations   atomic.Int64
	evictions       atomic.Int64
	expirations     atomic.Int64
	admissionDenied atomic.Int64
}

// Hit records a cache hit.
func (c *CacheCounters) Hit() { c.hits.Add(1) }

// Miss records a cache miss.
func (c *CacheCounters) Miss() { c.misses.Add(1) }

// Invalidation records n entries dropped because the cached state went
// stale (generation mismatch or explicit invalidation).
func (c *CacheCounters) Invalidation(n int) { c.invalidations.Add(int64(n)) }

// Eviction records n entries dropped by the capacity policy.
func (c *CacheCounters) Eviction(n int) { c.evictions.Add(int64(n)) }

// Expiration records n entries dropped by the TTL policy.
func (c *CacheCounters) Expiration(n int) { c.expirations.Add(int64(n)) }

// AdmissionDenied records an insert refused by the admission policy
// (entry too small, or the key not yet hot enough to cache).
func (c *CacheCounters) AdmissionDenied() { c.admissionDenied.Add(1) }

// Snapshot returns a consistent-enough copy for reporting. Counters are
// read individually; a concurrent writer may land between reads, which
// is acceptable for observability.
func (c *CacheCounters) Snapshot() CacheSnapshot {
	return CacheSnapshot{
		Hits:            c.hits.Load(),
		Misses:          c.misses.Load(),
		Invalidations:   c.invalidations.Load(),
		Evictions:       c.evictions.Load(),
		Expirations:     c.expirations.Load(),
		AdmissionDenied: c.admissionDenied.Load(),
	}
}

// CacheSnapshot is a point-in-time view of CacheCounters, shaped for
// JSON stats endpoints.
type CacheSnapshot struct {
	Hits            int64
	Misses          int64
	Invalidations   int64
	Evictions       int64
	Expirations     int64
	AdmissionDenied int64
}

// Add returns the element-wise sum of two snapshots; shard fleets use it
// to aggregate per-shard counters into one fleet-wide view.
func (s CacheSnapshot) Add(o CacheSnapshot) CacheSnapshot {
	return CacheSnapshot{
		Hits:            s.Hits + o.Hits,
		Misses:          s.Misses + o.Misses,
		Invalidations:   s.Invalidations + o.Invalidations,
		Evictions:       s.Evictions + o.Evictions,
		Expirations:     s.Expirations + o.Expirations,
		AdmissionDenied: s.AdmissionDenied + o.AdmissionDenied,
	}
}

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (s CacheSnapshot) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// ReplicaCounters accumulates one fleet replica's serving events on the
// front-end side: routed requests, transport failures, failovers served
// for other replicas' seekers, hedged attempts, and health transitions.
// All methods are safe for concurrent use; the zero value is ready.
type ReplicaCounters struct {
	requests        atomic.Int64
	failures        atomic.Int64
	failovers       atomic.Int64
	hedgesLaunched  atomic.Int64
	hedgesWon       atomic.Int64
	ejections       atomic.Int64
	readmissions    atomic.Int64
	missedMutations atomic.Int64
	catchups        atomic.Int64
	catchupRecords  atomic.Int64
}

// Request records one request routed to the replica.
func (c *ReplicaCounters) Request() { c.requests.Add(1) }

// Failure records a transport-level failure (the request did not get a
// usable answer from this replica).
func (c *ReplicaCounters) Failure() { c.failures.Add(1) }

// Failover records a request this replica served because the seeker's
// primary owner was unavailable.
func (c *ReplicaCounters) Failover() { c.failovers.Add(1) }

// HedgeLaunched records a duplicate request issued against the tail.
func (c *ReplicaCounters) HedgeLaunched() { c.hedgesLaunched.Add(1) }

// HedgeWon records a hedged duplicate that answered first.
func (c *ReplicaCounters) HedgeWon() { c.hedgesWon.Add(1) }

// Ejection records the health checker removing the replica from rotation.
func (c *ReplicaCounters) Ejection() { c.ejections.Add(1) }

// Readmission records the health checker restoring the replica.
func (c *ReplicaCounters) Readmission() { c.readmissions.Add(1) }

// MissedMutation records a forwarded mutation this replica did not
// apply (unreachable, or skipped while out of rotation) — the
// divergence the replication log's catch-up repairs, made visible so
// operators can see it building before it is repaired.
func (c *ReplicaCounters) MissedMutation() { c.missedMutations.Add(1) }

// Catchup records one completed replication-log catch-up that replayed
// n missed records into the replica before readmission.
func (c *ReplicaCounters) Catchup(n int) {
	c.catchups.Add(1)
	c.catchupRecords.Add(int64(n))
}

// Snapshot returns a point-in-time copy for reporting.
func (c *ReplicaCounters) Snapshot() ReplicaSnapshot {
	return ReplicaSnapshot{
		Requests:        c.requests.Load(),
		Failures:        c.failures.Load(),
		Failovers:       c.failovers.Load(),
		HedgesLaunched:  c.hedgesLaunched.Load(),
		HedgesWon:       c.hedgesWon.Load(),
		Ejections:       c.ejections.Load(),
		Readmissions:    c.readmissions.Load(),
		MissedMutations: c.missedMutations.Load(),
		Catchups:        c.catchups.Load(),
		CatchupRecords:  c.catchupRecords.Load(),
	}
}

// ReplicaSnapshot is a point-in-time view of ReplicaCounters, shaped
// for JSON stats endpoints.
type ReplicaSnapshot struct {
	Requests        int64
	Failures        int64
	Failovers       int64
	HedgesLaunched  int64
	HedgesWon       int64
	Ejections       int64
	Readmissions    int64
	MissedMutations int64
	Catchups        int64
	CatchupRecords  int64
}

// BroadcastCounters accumulates write-path invalidation broadcast
// events (see internal/fleet.Broadcaster). Safe for concurrent use;
// the zero value is ready.
type BroadcastCounters struct {
	batches     atomic.Int64
	edges       atomic.Int64
	failures    atomic.Int64
	escalations atomic.Int64
}

// Batch records one coalesced batch fanned out to the fleet carrying n
// dirty edges.
func (c *BroadcastCounters) Batch(n int) {
	c.batches.Add(1)
	c.edges.Add(int64(n))
}

// Failure records a replica that did not acknowledge a batch.
func (c *BroadcastCounters) Failure() { c.failures.Add(1) }

// Escalation records a per-replica batch promoted to a global
// invalidation because the replica previously missed one.
func (c *BroadcastCounters) Escalation() { c.escalations.Add(1) }

// Snapshot returns a point-in-time copy for reporting.
func (c *BroadcastCounters) Snapshot() BroadcastSnapshot {
	return BroadcastSnapshot{
		Batches:     c.batches.Load(),
		Edges:       c.edges.Load(),
		Failures:    c.failures.Load(),
		Escalations: c.escalations.Load(),
	}
}

// BroadcastSnapshot is a point-in-time view of BroadcastCounters.
type BroadcastSnapshot struct {
	Batches     int64
	Edges       int64
	Failures    int64
	Escalations int64
}

// PrecisionAtK is the fraction of returned items that belong to the
// reference top-k set. Both lists should already be truncated to k; the
// reference defines the relevant set.
func PrecisionAtK(got, want []topk.Result) float64 {
	if len(got) == 0 {
		if len(want) == 0 {
			return 1
		}
		return 0
	}
	rel := make(map[int32]bool, len(want))
	for _, r := range want {
		rel[r.Item] = true
	}
	hit := 0
	for _, r := range got {
		if rel[r.Item] {
			hit++
		}
	}
	return float64(hit) / float64(len(got))
}

// RecallAtK is the fraction of the reference top-k found in the answer.
func RecallAtK(got, want []topk.Result) float64 {
	if len(want) == 0 {
		return 1
	}
	rel := make(map[int32]bool, len(want))
	for _, r := range want {
		rel[r.Item] = true
	}
	hit := 0
	for _, r := range got {
		if rel[r.Item] {
			hit++
		}
	}
	return float64(hit) / float64(len(want))
}

// NDCGAtK computes normalized discounted cumulative gain of the answer
// against graded relevance equal to the reference scores. Items outside
// the reference contribute zero gain. Returns 1 for a perfect ranking.
func NDCGAtK(got, want []topk.Result) float64 {
	if len(want) == 0 {
		return 1
	}
	gain := make(map[int32]float64, len(want))
	for _, r := range want {
		gain[r.Item] = r.Score
	}
	dcg := 0.0
	for i, r := range got {
		if g, ok := gain[r.Item]; ok {
			dcg += g / math.Log2(float64(i)+2)
		}
	}
	idcg := 0.0
	for i, r := range want {
		idcg += r.Score / math.Log2(float64(i)+2)
	}
	if idcg == 0 {
		return 1
	}
	return dcg / idcg
}

// KendallTau computes the rank-correlation τ between two orderings of
// the same item set, counting a discordant pair whenever the relative
// order differs. Items present in only one list are ignored. Returns a
// value in [-1, 1]; 1 means identical order. Returns 1 when fewer than
// two common items exist.
func KendallTau(a, b []topk.Result) float64 {
	posB := make(map[int32]int, len(b))
	for i, r := range b {
		posB[r.Item] = i
	}
	var common []int // positions in b of items shared, in a's order
	for _, r := range a {
		if p, ok := posB[r.Item]; ok {
			common = append(common, p)
		}
	}
	n := len(common)
	if n < 2 {
		return 1
	}
	concordant, discordant := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if common[i] < common[j] {
				concordant++
			} else {
				discordant++
			}
		}
	}
	return float64(concordant-discordant) / float64(n*(n-1)/2)
}

// MRR returns the mean reciprocal rank of the reference's best item in
// the answer (1 if first, 0.5 if second, 0 when absent).
func MRR(got, want []topk.Result) float64 {
	if len(want) == 0 {
		return 1
	}
	best := want[0].Item
	for i, r := range got {
		if r.Item == best {
			return 1 / float64(i+1)
		}
	}
	return 0
}

// Summary aggregates a sample of float64 observations.
type Summary struct {
	Count  int
	Mean   float64
	P50    float64
	P95    float64
	P99    float64
	P999   float64
	Max    float64
	StdDev float64
}

// Summarize computes mean/median/p95/p99/p999/max/stddev of the sample.
// An empty sample yields the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	var sum float64
	for _, x := range s {
		sum += x
	}
	mean := sum / float64(len(s))
	var varSum float64
	for _, x := range s {
		d := x - mean
		varSum += d * d
	}
	return Summary{
		Count:  len(s),
		Mean:   mean,
		P50:    Percentile(s, 0.50),
		P95:    Percentile(s, 0.95),
		P99:    Percentile(s, 0.99),
		P999:   Percentile(s, 0.999),
		Max:    s[len(s)-1],
		StdDev: math.Sqrt(varSum / float64(len(s))),
	}
}

// Percentile returns the q-quantile (q in [0,1]) of an ascending-sorted
// sample using nearest-rank on the lower side — the same convention the
// old internal percentile helper used, now exported so the load harness
// shares one definition of "p99" with the stats endpoints.
func Percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}
