package metrics

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/topk"
)

func rs(items ...int32) []topk.Result {
	out := make([]topk.Result, len(items))
	for i, it := range items {
		out[i] = topk.Result{Item: it, Score: float64(len(items) - i)}
	}
	return out
}

func TestPrecisionAtK(t *testing.T) {
	want := rs(1, 2, 3)
	if p := PrecisionAtK(rs(1, 2, 3), want); p != 1 {
		t.Fatalf("perfect precision = %g", p)
	}
	if p := PrecisionAtK(rs(1, 9, 8), want); math.Abs(p-1.0/3) > 1e-12 {
		t.Fatalf("precision = %g, want 1/3", p)
	}
	if p := PrecisionAtK(nil, want); p != 0 {
		t.Fatalf("empty-answer precision = %g", p)
	}
	if p := PrecisionAtK(nil, nil); p != 1 {
		t.Fatalf("both-empty precision = %g", p)
	}
}

func TestRecallAtK(t *testing.T) {
	want := rs(1, 2, 3, 4)
	if r := RecallAtK(rs(1, 2), want); r != 0.5 {
		t.Fatalf("recall = %g, want 0.5", r)
	}
	if r := RecallAtK(rs(7), want); r != 0 {
		t.Fatalf("recall = %g, want 0", r)
	}
	if r := RecallAtK(nil, nil); r != 1 {
		t.Fatalf("empty recall = %g, want 1", r)
	}
}

func TestNDCG(t *testing.T) {
	want := rs(1, 2, 3)
	if n := NDCGAtK(rs(1, 2, 3), want); math.Abs(n-1) > 1e-12 {
		t.Fatalf("perfect NDCG = %g", n)
	}
	// reversing the order must strictly reduce NDCG
	if n := NDCGAtK(rs(3, 2, 1), want); n >= 1 || n <= 0 {
		t.Fatalf("reversed NDCG = %g, want in (0,1)", n)
	}
	if n := NDCGAtK(nil, nil); n != 1 {
		t.Fatalf("empty NDCG = %g", n)
	}
	if n := NDCGAtK(rs(9, 8), want); n != 0 {
		t.Fatalf("irrelevant NDCG = %g, want 0", n)
	}
}

func TestKendallTau(t *testing.T) {
	a := rs(1, 2, 3, 4)
	if tau := KendallTau(a, rs(1, 2, 3, 4)); tau != 1 {
		t.Fatalf("identical tau = %g", tau)
	}
	if tau := KendallTau(a, rs(4, 3, 2, 1)); tau != -1 {
		t.Fatalf("reversed tau = %g", tau)
	}
	if tau := KendallTau(a, rs(9)); tau != 1 {
		t.Fatalf("degenerate tau = %g, want 1", tau)
	}
	// swap one adjacent pair: τ = 1 - 2·(1)/(C(4,2)) = 1 - 2/6
	if tau := KendallTau(a, rs(2, 1, 3, 4)); math.Abs(tau-(1-2.0/6)) > 1e-12 {
		t.Fatalf("one-swap tau = %g", tau)
	}
}

func TestMRR(t *testing.T) {
	want := rs(5, 6)
	if m := MRR(rs(5, 1, 2), want); m != 1 {
		t.Fatalf("MRR = %g, want 1", m)
	}
	if m := MRR(rs(1, 5), want); m != 0.5 {
		t.Fatalf("MRR = %g, want 0.5", m)
	}
	if m := MRR(rs(1, 2), want); m != 0 {
		t.Fatalf("MRR = %g, want 0", m)
	}
	if m := MRR(nil, nil); m != 1 {
		t.Fatalf("empty MRR = %g, want 1", m)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 100})
	if s.Count != 5 || s.Max != 100 || s.P50 != 3 {
		t.Fatalf("summary wrong: %+v", s)
	}
	if math.Abs(s.Mean-22) > 1e-12 {
		t.Fatalf("mean = %g, want 22", s.Mean)
	}
	if s.StdDev <= 0 {
		t.Fatalf("stddev = %g", s.StdDev)
	}
	z := Summarize(nil)
	if z.Count != 0 || z.Mean != 0 {
		t.Fatalf("empty summary = %+v", z)
	}
}

func TestPropertyMetricRanges(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() []topk.Result {
			n := rng.Intn(10)
			out := make([]topk.Result, 0, n)
			used := map[int32]bool{}
			for len(out) < n {
				it := int32(rng.Intn(20))
				if used[it] {
					continue
				}
				used[it] = true
				out = append(out, topk.Result{Item: it, Score: float64(rng.Intn(10) + 1)})
			}
			topk.SortResults(out)
			return out
		}
		got, want := mk(), mk()
		if p := PrecisionAtK(got, want); p < 0 || p > 1 {
			return false
		}
		if r := RecallAtK(got, want); r < 0 || r > 1 {
			return false
		}
		if n := NDCGAtK(got, want); n < 0 || n > 1+1e-12 {
			return false
		}
		if tau := KendallTau(got, want); tau < -1-1e-12 || tau > 1+1e-12 {
			return false
		}
		if m := MRR(got, want); m < 0 || m > 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySelfComparisonPerfect(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		out := make([]topk.Result, 0, n)
		used := map[int32]bool{}
		for len(out) < n {
			it := int32(rng.Intn(50))
			if used[it] {
				continue
			}
			used[it] = true
			out = append(out, topk.Result{Item: it, Score: float64(rng.Intn(9) + 1)})
		}
		topk.SortResults(out)
		return PrecisionAtK(out, out) == 1 &&
			RecallAtK(out, out) == 1 &&
			math.Abs(NDCGAtK(out, out)-1) < 1e-12 &&
			KendallTau(out, out) == 1 &&
			MRR(out, out) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCacheCounters(t *testing.T) {
	var c CacheCounters
	if s := c.Snapshot(); s != (CacheSnapshot{}) || s.HitRate() != 0 {
		t.Fatalf("zero counters snapshot = %+v", s)
	}
	c.Hit()
	c.Hit()
	c.Hit()
	c.Miss()
	c.Invalidation(2)
	c.Eviction(1)
	s := c.Snapshot()
	want := CacheSnapshot{Hits: 3, Misses: 1, Invalidations: 2, Evictions: 1}
	if s != want {
		t.Fatalf("snapshot = %+v, want %+v", s, want)
	}
	if r := s.HitRate(); math.Abs(r-0.75) > 1e-12 {
		t.Fatalf("hit rate = %g, want 0.75", r)
	}
}

func TestCacheCountersConcurrent(t *testing.T) {
	var c CacheCounters
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Hit()
				c.Miss()
				c.Invalidation(1)
				c.Eviction(1)
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.Hits != 8000 || s.Misses != 8000 || s.Invalidations != 8000 || s.Evictions != 8000 {
		t.Fatalf("snapshot = %+v", s)
	}
}
