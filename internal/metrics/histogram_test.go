package metrics

import (
	"testing"
	"time"
)

func TestHistogramQuantilesConservative(t *testing.T) {
	h := NewHistogram(0) // cumulative
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("Count = %d, want 1000", s.Count)
	}
	// Bucketed quantiles report bucket upper bounds: never below the true
	// quantile, within ~12% above it.
	checks := []struct {
		name string
		got  time.Duration
		true time.Duration
	}{
		{"p50", s.P50, 500 * time.Millisecond},
		{"p95", s.P95, 950 * time.Millisecond},
		{"p99", s.P99, 990 * time.Millisecond},
		{"p999", s.P999, 999 * time.Millisecond},
	}
	for _, c := range checks {
		if c.got < c.true {
			t.Errorf("%s = %v below true quantile %v (must be conservative)", c.name, c.got, c.true)
		}
		if c.got > c.true+c.true/6 {
			t.Errorf("%s = %v more than ~17%% above true quantile %v", c.name, c.got, c.true)
		}
	}
	if s.P50 > s.P95 || s.P95 > s.P99 || s.P99 > s.P999 || s.P999 > s.Max {
		t.Fatalf("quantiles not monotone: %+v", s)
	}
	if s.Max != 1000*time.Millisecond {
		t.Fatalf("Max = %v, want exactly 1s (max is tracked exactly)", s.Max)
	}
}

func TestHistogramWindowRotation(t *testing.T) {
	now := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	h := NewHistogram(10 * time.Second)
	h.now = func() time.Time { return now }

	h.Observe(time.Millisecond)
	if s := h.Snapshot(); s.Count != 1 {
		t.Fatalf("Count = %d, want 1", s.Count)
	}
	// Within one half-window: still visible.
	now = now.Add(4 * time.Second)
	h.Observe(2 * time.Millisecond)
	if s := h.Snapshot(); s.Count != 2 {
		t.Fatalf("Count after 4s = %d, want 2", s.Count)
	}
	// One half-window later the first epoch becomes "previous" — both
	// observations still counted.
	now = now.Add(3 * time.Second)
	if s := h.Snapshot(); s.Count != 2 {
		t.Fatalf("Count after rotation = %d, want 2 (prev epoch merged)", s.Count)
	}
	// Idle past two half-windows: everything expires.
	now = now.Add(30 * time.Second)
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatalf("Count after idle = %d, want 0", s.Count)
	}
}

// TestHistogramWindowTwoEpochBoundary pins the exact edges of epoch
// aging: an observation must survive through 2×half-window minus a
// nanosecond and vanish exactly at the two-epoch boundary, in both the
// stepped-rotation path (snapshots keep the clock moving) and the
// idle path (no calls between observation and the boundary, which
// takes rotateLocked's both-epochs-expired branch).
func TestHistogramWindowTwoEpochBoundary(t *testing.T) {
	const window = 10 * time.Second
	const half = window / 2
	t0 := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

	// Stepped: rotate at exactly one half-window (cur → prev), stay
	// visible until just before the next boundary, drop exactly on it.
	now := t0
	h := NewHistogram(window)
	h.now = func() time.Time { return now }
	h.Observe(time.Millisecond)
	now = t0.Add(half)
	if s := h.Snapshot(); s.Count != 1 {
		t.Fatalf("Count at exactly one half-window = %d, want 1 (prev epoch merges)", s.Count)
	}
	now = t0.Add(2*half - time.Nanosecond)
	if s := h.Snapshot(); s.Count != 1 {
		t.Fatalf("Count just before two half-windows = %d, want 1", s.Count)
	}
	now = t0.Add(2 * half)
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatalf("Count at exactly two half-windows = %d, want 0 (observation aged out)", s.Count)
	}

	// Idle: no intermediate snapshots (a snapshot would itself rotate
	// the epoch), so the single rotateLocked call at the boundary must
	// clear both epochs in one step.
	now = t0
	h2 := NewHistogram(window)
	h2.now = func() time.Time { return now }
	h2.Observe(time.Millisecond)
	now = t0.Add(2 * half)
	if s := h2.Snapshot(); s.Count != 0 {
		t.Fatalf("idle Count at the boundary = %d, want 0 (both epochs expired)", s.Count)
	}
	// The idle branch re-anchors the epoch at "now": a fresh observation
	// must then live a full half-window from that point.
	h2.Observe(2 * time.Millisecond)
	now = now.Add(half - time.Nanosecond)
	if s := h2.Snapshot(); s.Count != 1 {
		t.Fatalf("Count after re-anchor = %d, want 1 (epoch must restart at the idle boundary)", s.Count)
	}
}

func TestHistogramZeroAndNegative(t *testing.T) {
	h := NewHistogram(0)
	h.Observe(0)
	h.Observe(-5 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 2 {
		t.Fatalf("Count = %d, want 2", s.Count)
	}
	if s.Max != 0 {
		t.Fatalf("Max = %v, want 0 (negative clamped)", s.Max)
	}
}

func TestHistIndexUpperRoundTrip(t *testing.T) {
	for _, ns := range []int64{1, 8, 9, 100, 1023, 1024, 1025, 1 << 20, 1<<40 + 12345} {
		idx := histIndex(ns)
		upper := histUpper(idx)
		clamped := ns
		if clamped < histSub {
			clamped = histSub
		}
		if upper < clamped {
			t.Errorf("histUpper(histIndex(%d)) = %d < %d: bucket bound not conservative", ns, upper, clamped)
		}
		// Buckets below the 8ns clamp are unreachable; only reachable
		// neighbours need increasing bounds.
		if idx > histSubBits*histSub && histUpper(idx-1) >= upper {
			t.Errorf("bucket bounds not increasing at idx %d", idx)
		}
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Percentile(sorted, 0.5); got != 5 {
		t.Fatalf("Percentile(0.5) = %v, want 5", got)
	}
	if got := Percentile(sorted, 0.99); got != 9 {
		t.Fatalf("Percentile(0.99) = %v, want 9 (nearest-rank floor)", got)
	}
	if got := Percentile(sorted, 1); got != 10 {
		t.Fatalf("Percentile(1) = %v, want 10", got)
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Fatalf("Percentile(nil) = %v, want 0", got)
	}
}
