package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/search"
	"repro/internal/social"
)

// countingBackend wraps a Backend and counts Do calls, so tests can
// assert that refused requests never reached the engine.
type countingBackend struct {
	Backend
	dos atomic.Int64
}

func (c *countingBackend) Do(ctx context.Context, req search.Request) (search.Response, error) {
	c.dos.Add(1)
	return c.Backend.Do(ctx, req)
}

// Forward the optional surfaces the embedded interface hides.
func (c *countingBackend) Stats() social.Stats { return c.Backend.(*social.Service).Stats() }
func (c *countingBackend) BefriendAt(lsn uint64, a, b string, w float64) error {
	return c.Backend.(*social.Service).BefriendAt(lsn, a, b, w)
}
func (c *countingBackend) TagAt(lsn uint64, user, item, tag string) error {
	return c.Backend.(*social.Service).TagAt(lsn, user, item, tag)
}
func (c *countingBackend) AppliedLSN() uint64 { return c.Backend.(*social.Service).AppliedLSN() }

func newAdmissionServer(t *testing.T, cfg admission.Config) (*Server, *countingBackend, *admission.Controller) {
	t.Helper()
	scfg := social.DefaultServiceConfig()
	scfg.AutoCompactEvery = 0
	svc, err := social.NewService(scfg)
	if err != nil {
		t.Fatal(err)
	}
	cb := &countingBackend{Backend: svc}
	s, err := New(cb)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := admission.New(cfg)
	s.SetAdmission(ctrl)
	seedHTTP(t, s)
	return s, cb, ctrl
}

func waitQueued(t *testing.T, ctrl *admission.Controller, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for ctrl.Snapshot().Queued < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for queue depth %d", n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestShedAnswers429WithRetryAfter(t *testing.T) {
	s, cb, ctrl := newAdmissionServer(t, admission.Config{
		MinWindow: 1, MaxWindow: 1, InitialWindow: 1, QueueLimit: 1,
	})

	// Occupy the single window slot and fill the queue.
	tk, err := ctrl.Acquire(context.Background(), admission.Read)
	if err != nil {
		t.Fatal(err)
	}
	defer tk.Release(nil)
	queued := make(chan error, 1)
	go func() {
		tk, err := ctrl.Acquire(context.Background(), admission.Read)
		if err == nil {
			tk.Release(nil)
		}
		queued <- err
	}()
	waitQueued(t, ctrl, 1)

	before := cb.dos.Load()
	rec := doJSON(t, s, http.MethodGet, "/v1/search?seeker=alice&tags=pizza&k=3", nil)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("shed status = %d body %s, want 429", rec.Code, rec.Body)
	}
	ra := rec.Header().Get("Retry-After")
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want whole seconds >= 1", ra)
	}
	if !strings.Contains(rec.Body.String(), "overloaded") {
		t.Fatalf("shed body %s does not name the overload", rec.Body)
	}
	if cb.dos.Load() != before {
		t.Fatal("shed request reached the backend")
	}

	// Free the slot so the queued acquire resolves.
	tk.Release(nil)
	<-queued
}

func TestDeadlineExpiredWhileQueuedIs499NoEngineWork(t *testing.T) {
	s, cb, ctrl := newAdmissionServer(t, admission.Config{
		MinWindow: 1, MaxWindow: 1, InitialWindow: 1, QueueLimit: 8,
	})
	tk, err := ctrl.Acquire(context.Background(), admission.Read)
	if err != nil {
		t.Fatal(err)
	}

	before := cb.dos.Load()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req := httptest.NewRequest(http.MethodGet, "/v1/search?seeker=alice&tags=pizza&k=3", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req) // queues behind tk, then the ctx deadline fires

	if rec.Code != StatusClientClosedRequest {
		t.Fatalf("expired-while-queued status = %d body %s, want %d", rec.Code, rec.Body, StatusClientClosedRequest)
	}
	if cb.dos.Load() != before {
		t.Fatal("expired request reached the backend: engine work was wasted")
	}
	if got := ctrl.Snapshot().CanceledQueued; got != 1 {
		t.Fatalf("CanceledQueued = %d, want 1", got)
	}
	tk.Release(nil)
}

func TestWriteAdmittedWhileReadsQueueFull(t *testing.T) {
	s, _, ctrl := newAdmissionServer(t, admission.Config{
		MinWindow: 1, MaxWindow: 1, InitialWindow: 1, QueueLimit: 1,
	})
	tk, err := ctrl.Acquire(context.Background(), admission.Read)
	if err != nil {
		t.Fatal(err)
	}
	readShed := make(chan error, 1)
	go func() {
		_, err := ctrl.Acquire(context.Background(), admission.Read)
		readShed <- err
	}()
	waitQueued(t, ctrl, 1)

	// The write displaces the queued read instead of being refused.
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		done <- doJSON(t, s, http.MethodPost, "/v1/friend", friendRequest{A: "alice", B: "dave", Weight: 0.5})
	}()
	if err := <-readShed; err == nil {
		t.Fatal("queued read survived a write at a full queue")
	}
	tk.Release(nil) // free the slot: the queued write proceeds
	if rec := <-done; rec.Code != http.StatusNoContent {
		t.Fatalf("write at full queue: status %d body %s, want 204", rec.Code, rec.Body)
	}
}

func TestStatsEnvelopeWithAdmission(t *testing.T) {
	s, _, ctrl := newAdmissionServer(t, admission.Config{})
	// Produce some traffic so the counters are nonzero.
	if rec := doJSON(t, s, http.MethodGet, "/v1/search?seeker=alice&tags=pizza&k=3", nil); rec.Code != http.StatusOK {
		t.Fatalf("search: %d %s", rec.Code, rec.Body)
	}
	rec := doJSON(t, s, http.MethodGet, "/v1/stats", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: %d %s", rec.Code, rec.Body)
	}
	var env struct {
		Admission admission.Snapshot     `json:"Admission"`
		Backend   map[string]interface{} `json:"Backend"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatalf("stats body is not an admission envelope: %v\n%s", err, rec.Body)
	}
	if env.Admission.Admitted < 1 {
		t.Fatalf("Admitted = %d, want >= 1", env.Admission.Admitted)
	}
	if env.Admission.Window <= 0 {
		t.Fatalf("Window = %v, want > 0", env.Admission.Window)
	}
	if _, ok := env.Backend["Users"]; !ok {
		t.Fatalf("backend stats missing under envelope: %s", rec.Body)
	}
	_ = ctrl
}

func TestStatsUnchangedWithoutAdmission(t *testing.T) {
	s, _ := newTestServer(t)
	seedHTTP(t, s)
	rec := doJSON(t, s, http.MethodGet, "/v1/stats", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: %d %s", rec.Code, rec.Body)
	}
	var raw map[string]interface{}
	if err := json.Unmarshal(rec.Body.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["Admission"]; ok {
		t.Fatalf("stats wire changed without admission installed: %s", rec.Body)
	}
	if _, ok := raw["Users"]; !ok {
		t.Fatalf("backend stats not top-level: %s", rec.Body)
	}
}

func TestMarkDegradedFillsScoreBound(t *testing.T) {
	resp := search.Response{Results: []search.Result{{Item: "a", Score: 0.9}, {Item: "b", Score: 0.4}}}
	markDegraded(&resp, false)
	if resp.Degraded || resp.ScoreBound != 0 {
		t.Fatalf("non-degraded response mutated: %+v", resp)
	}
	markDegraded(&resp, true)
	if !resp.Degraded || resp.ScoreBound != 0.4 {
		t.Fatalf("degraded marking = %+v, want Degraded with bound 0.4 (last score)", resp)
	}

	withEx := search.Response{
		Results: []search.Result{{Item: "a", Score: 0.9}},
		Explain: &search.Explain{ScoreBound: 0.7},
	}
	markDegraded(&withEx, true)
	if withEx.ScoreBound != 0.7 || !withEx.Explain.Degraded {
		t.Fatalf("explain-backed marking = %+v, want bound 0.7 and Explain.Degraded", withEx)
	}
}

func TestReplicatedApplyBypassesAdmission(t *testing.T) {
	s, _, ctrl := newAdmissionServer(t, admission.Config{
		MinWindow: 1, MaxWindow: 1, InitialWindow: 1, QueueLimit: 1,
	})
	// Saturate the controller completely.
	tk, err := ctrl.Acquire(context.Background(), admission.Read)
	if err != nil {
		t.Fatal(err)
	}
	defer tk.Release(nil)

	// An LSN-stamped mutation (the fleet replication path) must apply
	// even with the window and queue full — shedding it would eject the
	// replica as divergent.
	lsn := uint64(1)
	rec := doJSON(t, s, http.MethodPost, "/v1/friend", friendRequest{A: "alice", B: "erin", Weight: 0.5, LSN: lsn})
	if rec.Code != http.StatusOK {
		t.Fatalf("stamped mutation under overload: status %d body %s, want 200 with cursor", rec.Code, rec.Body)
	}
	if shed := ctrl.Snapshot().Shed(); shed != 0 {
		t.Fatalf("stamped mutation shed (%d), must bypass admission", shed)
	}
}
