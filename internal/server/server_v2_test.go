package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/search"
)

func TestV2SearchExplain(t *testing.T) {
	s, _ := newTestServer(t)
	seedHTTP(t, s)

	body := map[string]interface{}{
		"seeker": "alice", "tags": []string{"pizza"}, "k": 3, "explain": true,
	}
	// Twice: the second answer must come from a cached horizon.
	var resp V2SearchResponse
	for rep := 0; rep < 2; rep++ {
		rec := doJSON(t, s, http.MethodPost, "/v2/search", body)
		if rec.Code != http.StatusOK {
			t.Fatalf("rep %d: status %d body %s", rep, rec.Code, rec.Body)
		}
		resp = V2SearchResponse{}
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
	}
	if len(resp.Results) == 0 || resp.Results[0].Item != "luigis" {
		t.Fatalf("results = %+v", resp.Results)
	}
	ex := resp.Explain
	if ex == nil {
		t.Fatal("explain requested but absent")
	}
	if ex.Algorithm == "" {
		t.Error("explain names no algorithm")
	}
	if ex.Mode != "auto" {
		t.Errorf("mode = %q, want auto", ex.Mode)
	}
	if !ex.Planned || len(ex.Estimates) == 0 {
		t.Errorf("auto mode not planned: planned=%v estimates=%v", ex.Planned, ex.Estimates)
	}
	if ex.HorizonUsers == 0 {
		t.Error("explain reports no horizon size")
	}
	if !ex.CacheHit {
		t.Error("second identical query missed the seeker cache")
	}
	if ex.ScoreBound <= 0 {
		t.Errorf("score bound = %g, want > 0", ex.ScoreBound)
	}
	if ex.UsersSettled == 0 {
		t.Error("explain reports no settled users")
	}

	// Without explain the field is omitted entirely.
	rec := doJSON(t, s, http.MethodPost, "/v2/search",
		map[string]interface{}{"seeker": "alice", "tags": []string{"pizza"}})
	if strings.Contains(rec.Body.String(), "explain") {
		t.Fatalf("unexplained response leaks explain: %s", rec.Body)
	}
}

func TestV2SearchKnobs(t *testing.T) {
	s, _ := newTestServer(t)
	seedHTTP(t, s)

	// offset pages past the first result.
	full := doJSON(t, s, http.MethodPost, "/v2/search",
		map[string]interface{}{"seeker": "alice", "tags": []string{"pizza"}, "k": 2})
	paged := doJSON(t, s, http.MethodPost, "/v2/search",
		map[string]interface{}{"seeker": "alice", "tags": []string{"pizza"}, "k": 1, "offset": 1})
	var fr, pr V2SearchResponse
	json.Unmarshal(full.Body.Bytes(), &fr)
	json.Unmarshal(paged.Body.Bytes(), &pr)
	if len(fr.Results) != 2 || len(pr.Results) != 1 || pr.Results[0] != fr.Results[1] {
		t.Fatalf("offset paging: full %+v paged %+v", fr.Results, pr.Results)
	}

	// min_score filters the weak tail.
	minned := doJSON(t, s, http.MethodPost, "/v2/search", map[string]interface{}{
		"seeker": "alice", "tags": []string{"pizza"}, "k": 5,
		"min_score": fr.Results[0].Score,
	})
	var mr V2SearchResponse
	json.Unmarshal(minned.Body.Bytes(), &mr)
	if len(mr.Results) != 1 || mr.Results[0] != fr.Results[0] {
		t.Fatalf("min_score filter: %+v", mr.Results)
	}

	// Per-query beta: β=0 is pure-global scoring, so a stranger's spam
	// ranks by volume, and mode/alg_hint are honoured.
	rec := doJSON(t, s, http.MethodPost, "/v2/search", map[string]interface{}{
		"seeker": "alice", "tags": []string{"pizza"}, "k": 3,
		"beta": 0.0, "alg_hint": "GlobalTopK", "explain": true,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("beta=0: %d %s", rec.Code, rec.Body)
	}
	var gr V2SearchResponse
	json.Unmarshal(rec.Body.Bytes(), &gr)
	if gr.Explain == nil || gr.Explain.Algorithm != "GlobalTopK" || gr.Explain.Beta != 0 {
		t.Fatalf("beta=0 explain: %+v", gr.Explain)
	}

	// A hint whose requirements the engine cannot meet is a 400.
	rec = doJSON(t, s, http.MethodPost, "/v2/search", map[string]interface{}{
		"seeker": "alice", "tags": []string{"pizza"}, "alg_hint": "GlobalTopK",
	})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("GlobalTopK with beta=1: %d %s", rec.Code, rec.Body)
	}
}

func TestV2ClientErrors(t *testing.T) {
	s, _ := newTestServer(t)
	seedHTTP(t, s)
	cases := []struct {
		name string
		body string
	}{
		{"bad json", "{"},
		{"unknown field", `{"seeker":"alice","tags":["pizza"],"bogus":1}`},
		{"missing seeker", `{"tags":["pizza"]}`},
		{"missing tags", `{"seeker":"alice"}`},
		{"negative k", `{"seeker":"alice","tags":["pizza"],"k":-1}`},
		{"bad mode", `{"seeker":"alice","tags":["pizza"],"mode":"fast"}`},
		{"bad hint", `{"seeker":"alice","tags":["pizza"],"alg_hint":"Quantum"}`},
		{"bad beta", `{"seeker":"alice","tags":["pizza"],"beta":1.5}`},
		{"negative offset", `{"seeker":"alice","tags":["pizza"],"offset":-1}`},
		{"unknown seeker", `{"seeker":"nobody","tags":["pizza"]}`},
	}
	for _, tc := range cases {
		req := httptest.NewRequest(http.MethodPost, "/v2/search", strings.NewReader(tc.body))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", tc.name, rec.Code, rec.Body)
		}
	}
	// k=0 is not an error on v2 either: the central default applies.
	rec := doJSON(t, s, http.MethodPost, "/v2/search",
		map[string]interface{}{"seeker": "alice", "tags": []string{"pizza"}, "k": 0})
	if rec.Code != http.StatusOK {
		t.Fatalf("k=0: status %d body %s", rec.Code, rec.Body)
	}
}

func TestV2Batch(t *testing.T) {
	s, _ := newTestServer(t)
	seedHTTP(t, s)
	body := map[string]interface{}{
		"queries": []map[string]interface{}{
			{"seeker": "alice", "tags": []string{"pizza"}, "k": 2, "explain": true},
			{"seeker": "nobody", "tags": []string{"pizza"}},
			{"seeker": "alice", "tags": []string{"pizza"}, "mode": "nonsense"},
			{"seeker": "bob", "tags": []string{"italian"}, "mode": "exact"},
		},
	}
	rec := doJSON(t, s, http.MethodPost, "/v2/search/batch", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d body %s", rec.Code, rec.Body)
	}
	var resp V2BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 4 {
		t.Fatalf("entries = %d", len(resp.Results))
	}
	if len(resp.Results[0].Results) == 0 || resp.Results[0].Explain == nil {
		t.Fatalf("entry 0: %+v", resp.Results[0])
	}
	if resp.Results[1].Error == "" || resp.Results[2].Error == "" {
		t.Fatalf("entries 1/2 should fail: %+v / %+v", resp.Results[1], resp.Results[2])
	}
	if resp.Results[3].Error != "" {
		t.Fatalf("entry 3: %+v", resp.Results[3])
	}
	// Envelope checks mirror v1.
	for _, tc := range []struct {
		name, body string
	}{
		{"empty", `{"queries":[]}`},
		{"missing", `{}`},
	} {
		req := httptest.NewRequest(http.MethodPost, "/v2/search/batch", strings.NewReader(tc.body))
		rr := httptest.NewRecorder()
		s.ServeHTTP(rr, req)
		if rr.Code != http.StatusBadRequest {
			t.Errorf("%s envelope: %d", tc.name, rr.Code)
		}
	}
}

// TestV1V2Agree: the v1 adapter and a ModeExact v2 request answer
// identically (modulo wire casing), since both build the same
// search.Request underneath.
func TestV1V2Agree(t *testing.T) {
	s, _ := newTestServer(t)
	seedHTTP(t, s)
	rec1 := doJSON(t, s, http.MethodGet, "/v1/search?seeker=alice&tags=pizza,italian&k=3", nil)
	rec2 := doJSON(t, s, http.MethodPost, "/v2/search",
		map[string]interface{}{"seeker": "alice", "tags": []string{"pizza,italian"}, "k": 3, "mode": "exact"})
	var v1 SearchResponse
	var v2 V2SearchResponse
	if err := json.Unmarshal(rec1.Body.Bytes(), &v1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(rec2.Body.Bytes(), &v2); err != nil {
		t.Fatal(err)
	}
	if len(v1.Results) != len(v2.Results) || len(v1.Results) == 0 {
		t.Fatalf("v1 %+v vs v2 %+v", v1.Results, v2.Results)
	}
	for i := range v1.Results {
		if v1.Results[i].Item != v2.Results[i].Item || v1.Results[i].Score != v2.Results[i].Score {
			t.Fatalf("rank %d: v1 %+v vs v2 %+v", i, v1.Results[i], v2.Results[i])
		}
	}
}

// TestCancelledRequestAborts: a request whose context is already
// cancelled is answered with 499 and no JSON body.
func TestCancelledRequestAborts(t *testing.T) {
	s, _ := newTestServer(t)
	seedHTTP(t, s)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodGet, "/v1/search?seeker=alice&tags=pizza", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != StatusClientClosedRequest {
		t.Fatalf("status %d, want %d (body %s)", rec.Code, StatusClientClosedRequest, rec.Body)
	}

	req = httptest.NewRequest(http.MethodPost, "/v2/search",
		strings.NewReader(`{"seeker":"alice","tags":["pizza"]}`)).WithContext(ctx)
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != StatusClientClosedRequest {
		t.Fatalf("v2 status %d, want %d (body %s)", rec.Code, StatusClientClosedRequest, rec.Body)
	}
}

// TestBackendIsCanonicalSearcher: the server accepts any
// search.Searcher-based backend; a stub proves the interface is the
// whole query contract (no legacy positional methods required).
func TestBackendIsCanonicalSearcher(t *testing.T) {
	var b Backend = stubBackend{}
	s, err := New(b)
	if err != nil {
		t.Fatal(err)
	}
	rec := doJSON(t, s, http.MethodGet, "/v1/search?seeker=x&tags=y", nil)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "stub-item") {
		t.Fatalf("stub backend: %d %s", rec.Code, rec.Body)
	}
}

type stubBackend struct{}

func (stubBackend) Do(ctx context.Context, req search.Request) (search.Response, error) {
	if err := req.Normalize(); err != nil {
		return search.Response{}, err
	}
	return search.Response{Results: []search.Result{{Item: "stub-item", Score: 1}}}, nil
}

func (s stubBackend) DoBatch(ctx context.Context, reqs []search.Request) []search.BatchResult {
	out := make([]search.BatchResult, len(reqs))
	for i := range reqs {
		resp, err := s.Do(ctx, reqs[i])
		out[i] = search.BatchResult{Response: resp, Err: err}
	}
	return out
}

func (stubBackend) Befriend(a, b string, weight float64) error { return nil }
func (stubBackend) Tag(user, item, tag string) error           { return nil }
func (stubBackend) Users() []string                            { return nil }

// TestBackendFailureIs500: an error the backend reports that is neither
// a request-content problem nor a cancellation — a disk failure, an
// internal inconsistency — maps to 500, not 400.
func TestBackendFailureIs500(t *testing.T) {
	s, err := New(brokenBackend{})
	if err != nil {
		t.Fatal(err)
	}
	rec := doJSON(t, s, http.MethodGet, "/v1/search?seeker=x&tags=y", nil)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("backend failure: status %d, want 500 (body %s)", rec.Code, rec.Body)
	}
}

type brokenBackend struct{ stubBackend }

func (brokenBackend) Do(ctx context.Context, req search.Request) (search.Response, error) {
	return search.Response{}, errors.New("wal: disk on fire")
}

// TestV2CacheKnobs covers the per-query cache controls: no_cache
// bypasses the seeker cache (never a hit, never warms it) and a bad
// max_cache_age_ms is a client error.
func TestV2CacheKnobs(t *testing.T) {
	s, _ := newTestServer(t)
	seedHTTP(t, s)

	body := map[string]interface{}{
		"seeker": "alice", "tags": []string{"pizza"}, "k": 3,
		"no_cache": true, "explain": true,
	}
	var resp V2SearchResponse
	for rep := 0; rep < 2; rep++ {
		rec := doJSON(t, s, http.MethodPost, "/v2/search", body)
		if rec.Code != http.StatusOK {
			t.Fatalf("rep %d: status %d body %s", rep, rec.Code, rec.Body)
		}
		resp = V2SearchResponse{}
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Explain == nil || resp.Explain.CacheHit {
			t.Fatalf("rep %d: no_cache query hit the cache: %+v", rep, resp.Explain)
		}
	}
	if len(resp.Results) == 0 || resp.Results[0].Item != "luigis" {
		t.Fatalf("results = %+v", resp.Results)
	}

	// An age-bounded query is accepted and still answers correctly.
	rec := doJSON(t, s, http.MethodPost, "/v2/search", map[string]interface{}{
		"seeker": "alice", "tags": []string{"pizza"}, "k": 3, "max_cache_age_ms": 60000,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("max_cache_age_ms request: status %d body %s", rec.Code, rec.Body)
	}

	rec = doJSON(t, s, http.MethodPost, "/v2/search", map[string]interface{}{
		"seeker": "alice", "tags": []string{"pizza"}, "k": 3, "max_cache_age_ms": -1,
	})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("negative max_cache_age_ms: status %d, want 400", rec.Code)
	}
}
