package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"encoding/json"

	"repro/internal/search"
	"repro/internal/social"
)

func decode(t *testing.T, rec *httptest.ResponseRecorder, v interface{}) {
	t.Helper()
	if err := json.Unmarshal(rec.Body.Bytes(), v); err != nil {
		t.Fatalf("decoding %s: %v", rec.Body, err)
	}
}

// TestReadyz pins the readiness endpoint: 200 while ready, 503 once
// readiness is withdrawn, and liveness (/healthz) stays 200 throughout.
func TestReadyz(t *testing.T) {
	s, _ := newTestServer(t)
	if rec := doJSON(t, s, http.MethodGet, "/readyz", nil); rec.Code != http.StatusOK {
		t.Fatalf("/readyz before drain: status %d", rec.Code)
	}
	s.SetReady(false)
	if rec := doJSON(t, s, http.MethodGet, "/readyz", nil); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining: status %d, want 503", rec.Code)
	}
	if rec := doJSON(t, s, http.MethodGet, "/healthz", nil); rec.Code != http.StatusOK {
		t.Fatalf("/healthz while draining: status %d, want 200 (liveness != readiness)", rec.Code)
	}
	s.SetReady(true)
	if rec := doJSON(t, s, http.MethodGet, "/readyz", nil); rec.Code != http.StatusOK {
		t.Fatalf("/readyz after recovery: status %d", rec.Code)
	}
}

// TestInvalidateEndpoint drives the broadcast-receiving side: pending
// writes become queryable, edge-scoped entries drop, the cache survives
// unrelated edges, and all=true drops everything.
func TestInvalidateEndpoint(t *testing.T) {
	cfg := social.DefaultServiceConfig()
	cfg.AutoCompactEvery = 1 << 30 // fleet replica posture: manual compaction
	svc, err := social.NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(svc)
	if err != nil {
		t.Fatal(err)
	}
	seedHTTP(t, s)

	// The seed is pending: a search cannot succeed until an
	// invalidation broadcast folds it into the snapshot.
	if rec := doJSON(t, s, http.MethodGet, "/v1/search?seeker=alice&tags=pizza&k=3", nil); rec.Code == http.StatusOK {
		t.Fatalf("pre-broadcast search succeeded; replica posture must defer visibility to the broadcast")
	}
	rec := doJSON(t, s, http.MethodPost, "/v2/invalidate", map[string]interface{}{"edges": [][2]string{{"alice", "bob"}}})
	if rec.Code != http.StatusOK {
		t.Fatalf("/v2/invalidate: status %d body %s", rec.Code, rec.Body)
	}
	if rec := doJSON(t, s, http.MethodGet, "/v1/search?seeker=alice&tags=pizza&k=3", nil); rec.Code != http.StatusOK {
		t.Fatalf("post-broadcast search: status %d body %s", rec.Code, rec.Body)
	}

	// Warm a cached horizon, then check an edge-scoped drop: an edge
	// touching the seeker's horizon drops it, a disjoint edge does not.
	warm := func() {
		t.Helper()
		if rec := doJSON(t, s, http.MethodGet, "/v1/search?seeker=alice&tags=pizza&k=3", nil); rec.Code != http.StatusOK {
			t.Fatalf("warm search: status %d", rec.Code)
		}
	}
	warm()
	before := svc.Stats().SeekerCache.Invalidations
	rec = doJSON(t, s, http.MethodPost, "/v2/invalidate", map[string]interface{}{"edges": [][2]string{{"nobody1", "nobody2"}}})
	if rec.Code != http.StatusOK {
		t.Fatalf("disjoint invalidate: status %d", rec.Code)
	}
	if got := svc.Stats().SeekerCache.Invalidations; got != before {
		t.Fatalf("disjoint edge invalidated %d entries, want 0", got-before)
	}
	rec = doJSON(t, s, http.MethodPost, "/v2/invalidate", map[string]interface{}{"edges": [][2]string{{"bob", "carol"}}})
	if rec.Code != http.StatusOK {
		t.Fatalf("scoped invalidate: status %d", rec.Code)
	}
	var dropped InvalidateResponse
	decode(t, rec, &dropped)
	if dropped.Dropped < 1 {
		t.Fatalf("scoped invalidate dropped %d, want >=1 (alice's horizon contains bob)", dropped.Dropped)
	}

	// all=true: everything goes.
	warm()
	rec = doJSON(t, s, http.MethodPost, "/v2/invalidate", map[string]interface{}{"all": true})
	if rec.Code != http.StatusOK {
		t.Fatalf("global invalidate: status %d", rec.Code)
	}
	decode(t, rec, &dropped)
	if dropped.Dropped < 1 {
		t.Fatalf("global invalidate dropped %d, want >=1", dropped.Dropped)
	}

	// Malformed body and wrong method are client errors.
	if rec := doJSON(t, s, http.MethodPost, "/v2/invalidate", "not an object"); rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed invalidate: status %d", rec.Code)
	}
	if rec := doJSON(t, s, http.MethodGet, "/v2/invalidate", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET invalidate: status %d", rec.Code)
	}
}

// statsAnyBackend is a minimal backend exposing only the generic stats
// surface (like the fleet front door).
type statsAnyBackend struct{ unavailable bool }

func (b *statsAnyBackend) Do(ctx context.Context, req search.Request) (search.Response, error) {
	if b.unavailable {
		return search.Response{}, fmt.Errorf("%w: every replica down", search.ErrUnavailable)
	}
	return search.Response{Results: []search.Result{}}, nil
}

func (b *statsAnyBackend) DoBatch(ctx context.Context, reqs []search.Request) []search.BatchResult {
	return make([]search.BatchResult, len(reqs))
}

func (b *statsAnyBackend) Befriend(a, c string, w float64) error { return nil }
func (b *statsAnyBackend) Tag(u, i, tg string) error             { return nil }
func (b *statsAnyBackend) Users() []string                       { return nil }
func (b *statsAnyBackend) StatsAny() interface{} {
	return map[string]int{"replicas": 3}
}

// TestStatsAnyAndUnavailable pins the two server behaviours the fleet
// front door depends on: /v1/stats serves the generic StatsAny payload,
// and an ErrUnavailable answer maps to 503.
func TestStatsAnyAndUnavailable(t *testing.T) {
	b := &statsAnyBackend{}
	s, err := New(b)
	if err != nil {
		t.Fatal(err)
	}
	rec := doJSON(t, s, http.MethodGet, "/v1/stats", nil)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"replicas":3`) {
		t.Fatalf("/v1/stats: status %d body %s", rec.Code, rec.Body)
	}

	b.unavailable = true
	rec = doJSON(t, s, http.MethodPost, "/v2/search", map[string]interface{}{"seeker": "a", "tags": []string{"x"}})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("unavailable search: status %d, want 503", rec.Code)
	}
}

// TestGracefulDrain runs a real listener through a SIGTERM-equivalent
// shutdown: readiness flips to 503 while the drain window is open, an
// in-flight request finishes with 200, and ListenAndServe returns
// cleanly.
func TestGracefulDrain(t *testing.T) {
	s, svc := newTestServer(t)
	if err := svc.Befriend("alice", "bob", 0.9); err != nil {
		t.Fatal(err)
	}
	if err := svc.Tag("bob", "luigis", "pizza"); err != nil {
		t.Fatal(err)
	}
	s.SetDrainDelay(300 * time.Millisecond)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // free the port for ListenAndServe (tiny race, test-only)

	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.ListenAndServe(ctx, addr, 5*time.Second) }()

	base := "http://" + addr
	waitOK := func(path string) {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			resp, err := http.Get(base + path)
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return
				}
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("%s never answered 200", path)
	}
	waitOK("/readyz")

	// Fire the in-flight request, then trigger shutdown while it runs.
	inflight := make(chan error, 1)
	go func() {
		resp, err := http.Get(base + "/v1/search?seeker=alice&tags=pizza&k=3")
		if err != nil {
			inflight <- err
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			inflight <- fmt.Errorf("in-flight search: status %d", resp.StatusCode)
			return
		}
		inflight <- nil
	}()
	cancel()

	// During the drain window the process still serves, but /readyz
	// reports 503 so balancers stop routing to it.
	sawDraining := false
	for i := 0; i < 20; i++ {
		resp, err := http.Get(base + "/readyz")
		if err != nil {
			break // listener closed: drain window over
		}
		code := resp.StatusCode
		resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			sawDraining = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !sawDraining {
		t.Fatal("/readyz never reported draining during the drain window")
	}
	if err := <-inflight; err != nil {
		t.Fatalf("in-flight request lost during drain: %v", err)
	}
	if err := <-served; err != nil && !errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("ListenAndServe: %v", err)
	}
}
