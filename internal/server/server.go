// Package server exposes a social tagging service over HTTP/JSON: the
// thin deployment layer a downstream application runs in front of the
// library. It serves both the in-memory service (internal/social) and
// the crash-safe one (internal/durable) through a small backend
// interface built around the canonical search.Searcher surface.
//
// Endpoints (all JSON):
//
//	POST /v1/friend        {"a":"alice","b":"bob","weight":0.9}     → 204
//	POST /v1/tag           {"user":"bob","item":"x","tag":"pizza"}  → 204
//	POST /v1/skip          {"lsn":7}                                → {"applied_lsn":7}
//	GET  /v1/search?seeker=alice&tags=pizza,italian&k=5             → {"results":[...]}
//	POST /v1/search/batch  {"queries":[{"seeker":"alice","tags":["pizza"],"k":5},...]}
//	                                                                → {"results":[{"results":[...]},{"error":"..."},...]}
//	POST /v2/search        {"seeker":"alice","tags":["pizza"],"k":5,
//	                        "beta":0.7,"mode":"auto","alg_hint":"",
//	                        "min_score":0,"offset":0,"no_cache":false,
//	                        "max_cache_age_ms":0,"explain":true}
//	                                                                → {"results":[{"item":"x","score":1.2}],"explain":{...}}
//	POST /v2/search/batch  {"queries":[{...v2 query...},...]}       → {"results":[{"results":[...],"explain":{...}},{"error":"..."},...]}
//	POST /v2/invalidate    {"edges":[["alice","bob"],...],"all":false}
//	                                                                → {"dropped":2}
//	GET  /v2/replog?from=7                                          → {"from":7,"head":42,"records":[...]}
//	GET  /v2/snapshot                                               → binary snapshot stream pinned at the
//	                                                                  replication cursor (X-Snapshot-LSN)
//	POST /v2/snapshot      binary snapshot stream                   → {"applied_lsn":7} (replaces all state)
//	GET  /v2/cache/seekers                                          → {"seekers":["alice",...]} (resident horizons)
//	POST /v2/cache/warm    {"seekers":["alice",...]}                → {"warmed":N} (pre-warm, admission bypassed)
//	POST /v2/fleet/resize  {"join":["http://host:port"],"retire":[2]}
//	                                                                → {"epoch":4,"joined":[3],"retired":[2]}
//	                                                                  (fleet front-ends only: elastic resize)
//	GET  /v1/users                                                  → {"users":[...]}
//	GET  /v1/stats                                                  → backend counters (wrapped in a
//	                                                                  {"Build","Admission","Trace","Backend"}
//	                                                                  envelope when the obs plane is installed)
//	GET  /metrics                                                   → Prometheus text exposition of the
//	                                                                  same counters
//	GET  /debug/traces[/{id}]                                       → flight-recorder listing / one trace
//	GET  /debug/slowlog                                             → slow-query log with Explain payloads
//	GET  /debug/pprof/                                              → net/http/pprof (only with EnablePprof)
//	GET  /healthz                                                   → 200 "ok" (liveness; X-Applied-LSN
//	                                                                  header on replication-aware backends,
//	                                                                  X-Build-Version/X-Go-Version identity)
//	GET  /readyz                                                    → 200 "ok" | 503 "draining"
//
// Replication (fleet replicas): the /v1 mutation bodies accept an
// optional "lsn" stamping the mutation with its fleet replication log
// sequence number; stamped mutations are applied with idempotent dedup
// and strict ordering (an out-of-order record answers 409 and the
// front-end streams the gap first), and answer the replica's cursor as
// {"applied_lsn":N}. Unstamped mutations are byte-compatible with v1.
//
// The v2 surface exposes the full search.Request: per-query β blending,
// execution mode (auto: cost-based planner; exact: refined scores;
// approx: early termination), an algorithm hint, score filtering,
// offset paging, and explainable answers (chosen algorithm, horizon
// size, seeker-cache hit/generation, certified score bound). The v1
// endpoints are thin adapters that build a search.Request internally
// (ModeExact — their historical semantics); their wire format is
// unchanged.
//
// Batch endpoints execute up to MaxBatchQueries queries on the
// backend's bounded worker pool and report errors per query: the i-th
// entry of "results" answers the i-th query, so one bad query never
// voids the rest of the batch. Malformed envelopes (bad JSON, no
// queries, too many queries, oversized bodies) are rejected with 400
// before anything executes. Backends serve searches through a
// mutation-aware, sharded per-seeker horizon cache (see internal/qcache
// and internal/shard) with edge-scoped invalidation: a compacted
// friendship mutation drops only the cached horizons that could contain
// its endpoints. Aggregated hit/miss/invalidation/eviction/expiration
// counters appear under SeekerCache in /v1/stats, with per-shard
// breakdowns under SeekerCacheShards; the v2 per-query knobs "no_cache"
// and "max_cache_age_ms" bypass or age-bound the cache for one query.
//
// Client errors (validation, unknown names, malformed JSON) map to
// 400; wrong methods to 405; a request whose context is cancelled —
// the client hung up — aborts with 499 (the nginx convention); all
// other failures map to 500.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/admission"
	"repro/internal/durable"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/quorum"
	"repro/internal/search"
	"repro/internal/social"
	"repro/internal/tagstore"
	"repro/internal/vocab"
)

// Backend is the mutation/query surface the server needs. Both
// *social.Service and *durable.Service satisfy it; queries go through
// the canonical request/response interface (see internal/search).
type Backend interface {
	search.Searcher
	Befriend(a, b string, weight float64) error
	Tag(user, item, tag string) error
	Users() []string
}

// Invalidator is the optional backend surface behind POST
// /v2/invalidate: fold pending writes into the queryable snapshot and
// drop the cached seeker horizons the given friendship edges could
// affect (all = drop everything). Replica deployments expose it so a
// fleet front-end's write path can batch invalidation across
// processes; backends without it answer 404.
type Invalidator interface {
	ApplyInvalidation(edges [][2]string, all bool) (int, error)
}

// Statser is the optional generic stats surface for backends whose
// concrete stats type the server does not know (the fleet front door).
// The typed Stats() cases are checked first, so existing backends are
// unaffected.
type Statser interface {
	StatsAny() interface{}
}

// CtxMutator is the optional context-aware mutation surface. A fleet
// front-end implements it so the request context — carrying the trace
// — reaches the quorum append and replica fan-out path; cancellation
// is stripped there (a client hang-up must never abort a replication
// fan-out half-way). The handlers prefer it over Befriend/Tag when
// present.
type CtxMutator interface {
	BefriendCtx(ctx context.Context, a, b string, weight float64) error
	TagCtx(ctx context.Context, user, item, tag string) error
}

// LSNApplier is the optional backend surface for LSN-stamped replicated
// mutations: a fleet front-end stamps every forwarded Befriend/Tag with
// its replication log LSN ("lsn" on the /v1 mutation wire), and a
// replica backend applies it with idempotent dedup (at or below the
// cursor: no-op) and strict ordering (ahead of cursor+1: refused with
// social.ErrReplicationGap, 409 on the wire). Both *social.Service and
// *durable.Service implement it. Backends without it reject stamped
// mutations with 400.
type LSNApplier interface {
	BefriendAt(lsn uint64, a, b string, weight float64) error
	TagAt(lsn uint64, user, item, tag string) error
	AppliedLSN() uint64
}

// lsnReporter is the read-only half of LSNApplier: /healthz attaches
// the cursor (header X-Applied-LSN) for any backend that can report it,
// so fleet health probes double as replication lag probes.
type lsnReporter interface {
	AppliedLSN() uint64
}

// LSNSkipper is the optional backend surface behind POST /v1/skip: mark
// a replication record processed without applying anything, under the
// same cursor discipline as LSNApplier. A quorum-mode front-end uses it
// to stream records that are fleet-wide no-ops on a replica — RecTerm
// leadership records and deterministically rejected mutations — so
// replica cursors advance in lockstep with the log. Both service types
// implement it; backends without it answer 400.
type LSNSkipper interface {
	SkipLSN(lsn uint64) error
	AppliedLSN() uint64
}

// RoleReporter is the optional backend surface for HA front-ends:
// /healthz attaches the node's quorum role, believed leader URL, and
// term (headers X-Quorum-Role / X-Quorum-Leader / X-Quorum-Term) so
// operators and smoke tests can find the leader without parsing stats.
type RoleReporter interface {
	QuorumRole() (role, leaderURL string, term uint64)
}

// ReplogRecord is one replication log record on the /v2/replog wire
// (Data is base64 in JSON, the durable/wal record payload verbatim).
type ReplogRecord struct {
	LSN  uint64 `json:"lsn"`
	Type uint8  `json:"type"`
	Data []byte `json:"data"`
}

// ReplogPage is the GET /v2/replog response body: the records from the
// requested LSN (capped at MaxReplogPageRecords per page) and the log
// head at read time. A caller has the full stream once it has paged
// through lsn == head.
type ReplogPage struct {
	From    uint64         `json:"from"`
	Head    uint64         `json:"head"`
	Records []ReplogRecord `json:"records"`
}

// ReplogSource is the optional backend surface behind GET /v2/replog:
// page through the fleet replication log from a given LSN. The fleet
// front-end implements it; backends without a replication log answer
// 404 (an implementation may also return ErrNoReplog when the log is
// disabled by configuration).
type ReplogSource interface {
	ReplogPage(from uint64, max int) (ReplogPage, error)
}

// ErrNoReplog is returned by ReplogSource implementations whose
// replication log is disabled; the handler maps it to 404.
var ErrNoReplog = errors.New("server: no replication log configured")

// SnapshotSource is the optional backend surface behind GET
// /v2/snapshot: export the compacted state pinned at the replication
// cursor, for bootstrapping a joining replica. Both *social.Service and
// *durable.Service implement it; backends without it answer 404.
type SnapshotSource interface {
	SnapshotWithCursor() (*graph.Graph, *tagstore.Store, *vocab.Set, uint64, error)
}

// SnapshotImporter is the optional backend surface behind POST
// /v2/snapshot: replace the backend's entire state with a snapshot
// stream pinned at an LSN. A joining replica imports a peer's snapshot
// and then replays the fleet log suffix after the pinned LSN.
type SnapshotImporter interface {
	ImportSnapshot(g *graph.Graph, st *tagstore.Store, names *vocab.Set, lsn uint64) error
}

// CacheWarmer is the optional backend surface behind the cache
// pre-warm plane (GET /v2/cache/seekers + POST /v2/cache/warm): list
// the seekers with resident cached horizons, and materialize a given
// slice of seekers into the cache ahead of a traffic flip. Both service
// types implement it; backends without it answer 404.
type CacheWarmer interface {
	CachedSeekers() []string
	WarmSeekers(ctx context.Context, seekers []string) (int, error)
}

// MaxWarmSeekers bounds one POST /v2/cache/warm request.
const MaxWarmSeekers = 65536

// FleetResizer is the optional backend surface behind POST
// /v2/fleet/resize: elastic membership on a fleet front-end. Joining
// adopts a running replica by URL (admit → snapshot bootstrap →
// log catch-up → cache pre-warm → ring activation under a new
// topology epoch); retiring drains a slot's cached working set to its
// ring successors and removes it. Replica backends answer 404.
type FleetResizer interface {
	JoinReplica(ctx context.Context, url string) (slot int, err error)
	RetireReplica(ctx context.Context, slot int) error
	FleetEpoch() uint64
}

// FleetResizeRequest is the POST /v2/fleet/resize body: replica base
// URLs to join and member slots to retire. Joins run first (in order),
// then retires — so one request can grow-then-shrink atomically from
// the caller's point of view.
type FleetResizeRequest struct {
	Join   []string `json:"join,omitempty"`
	Retire []int    `json:"retire,omitempty"`
}

// FleetResizeResponse reports the slots joined and retired and the
// topology epoch after the resize.
type FleetResizeResponse struct {
	Epoch   uint64 `json:"epoch"`
	Joined  []int  `json:"joined"`
	Retired []int  `json:"retired"`
}

// MaxResizeOps bounds one resize request's combined join+retire count.
const MaxResizeOps = 64

// SnapshotLSNHeader carries the pinned replication cursor of a
// /v2/snapshot export (it also rides inside the stream; the header
// lets an orchestrator log the pin without parsing the body).
const SnapshotLSNHeader = "X-Snapshot-LSN"

// maxSnapshotBodyBytes bounds POST /v2/snapshot import bodies.
const maxSnapshotBodyBytes = 4 << 30

// MaxReplogPageRecords caps one /v2/replog page.
const MaxReplogPageRecords = 1024

// maxBodyBytes bounds mutation request bodies.
const maxBodyBytes = 1 << 20

// MaxBatchQueries bounds the number of queries accepted by one batch
// request (v1 and v2 alike).
const MaxBatchQueries = 256

// StatusClientClosedRequest is the non-standard status (nginx's 499)
// reported when the client cancelled the request before a response
// could be written.
const StatusClientClosedRequest = 499

// Server is an http.Handler serving the API.
type Server struct {
	backend Backend
	mux     *http.ServeMux
	logf    func(format string, args ...interface{})
	// admission, when set, fronts every search (read class) and every
	// unstamped mutation (write class) with the AIMD admission
	// controller: shed requests answer 429 with Retry-After, and the
	// brownout ladder degrades admitted queries under pressure.
	// LSN-stamped replicated mutations bypass admission — the fleet
	// replication apply path must never be shed, or a loaded replica
	// would be ejected as divergent instead of merely slow.
	admission *admission.Controller
	// tracer, when set, fronts every serving request with the obs plane:
	// trace adoption/minting, span collection on sampled requests, tail
	// capture, the flight recorder and the slow-query log. Nil (the
	// default) keeps ServeHTTP a straight mux dispatch with zero tracing
	// overhead.
	tracer *obs.Tracer
	// build, when set, identifies the binary on /healthz headers, the
	// /v1/stats Build block and /metrics.
	build *obs.Build
	// accessLog, when set, receives one structured line per sampled or
	// tail-captured request (never every request — the serving path must
	// not be throttled by its own logging).
	accessLog *obs.Logger
	// ready gates /readyz: true once the backend is loaded (New), false
	// while draining for shutdown. Liveness (/healthz) stays 200 either
	// way — a draining process is alive, just not accepting new work.
	ready atomic.Bool
	// drainDelay is how long ListenAndServe keeps serving after flipping
	// /readyz to 503, so load balancers observe the transition before
	// in-flight shutdown begins.
	drainDelay time.Duration
}

// New builds a server over a backend. The server starts ready: the
// backend a caller hands in is already loaded and queryable.
func New(b Backend) (*Server, error) {
	if b == nil {
		return nil, errors.New("server: nil backend")
	}
	s := &Server{backend: b, mux: http.NewServeMux(), logf: log.Printf}
	s.ready.Store(true)
	s.mux.HandleFunc("/v1/friend", s.handleFriend)
	s.mux.HandleFunc("/v1/tag", s.handleTag)
	s.mux.HandleFunc("/v1/skip", s.handleSkip)
	s.mux.HandleFunc("/v1/search", s.handleSearchV1)
	s.mux.HandleFunc("/v1/search/batch", s.handleSearchBatchV1)
	s.mux.HandleFunc("/v2/search", s.handleSearchV2)
	s.mux.HandleFunc("/v2/search/batch", s.handleSearchBatchV2)
	s.mux.HandleFunc("/v2/invalidate", s.handleInvalidate)
	s.mux.HandleFunc("/v2/replog", s.handleReplog)
	s.mux.HandleFunc("/v2/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("/v2/cache/seekers", s.handleCacheSeekers)
	s.mux.HandleFunc("/v2/cache/warm", s.handleCacheWarm)
	s.mux.HandleFunc("/v2/fleet/resize", s.handleFleetResize)
	s.mux.HandleFunc("/v1/users", s.handleUsers)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		// Liveness doubles as the replication lag probe: a fleet prober
		// reads the replica's applied LSN off every health check.
		if lr, ok := s.backend.(lsnReporter); ok {
			w.Header().Set("X-Applied-LSN", strconv.FormatUint(lr.AppliedLSN(), 10))
		}
		// HA front-ends also report their quorum role, so finding the
		// leader is one HEAD request, not a stats parse.
		if rr, ok := s.backend.(RoleReporter); ok {
			if role, leader, term := rr.QuorumRole(); role != "" {
				w.Header().Set("X-Quorum-Role", role)
				w.Header().Set("X-Quorum-Leader", leader)
				w.Header().Set("X-Quorum-Term", strconv.FormatUint(term, 10))
			}
		}
		// Build identity rides liveness too, so operators can tell
		// binaries apart during rolling experiments with one HEAD request.
		s.build.SetHeaders(w.Header())
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	return s, nil
}

// SetTracer installs the obs tracing plane (nil disables, the
// default) and mounts its debug endpoints: GET /debug/traces,
// GET /debug/traces/{id} and GET /debug/slowlog. Call before the
// server starts listening.
func (s *Server) SetTracer(t *obs.Tracer) {
	s.tracer = t
	if t != nil {
		s.mux.Handle("/debug/traces", t.TracesHandler())
		s.mux.Handle("/debug/traces/", t.TracesHandler())
		s.mux.Handle("/debug/slowlog", t.SlowLogHandler())
	}
}

// SetBuild installs the binary's build identity: /healthz headers,
// the /v1/stats Build block, and friendserve_build_info on /metrics.
func (s *Server) SetBuild(b *obs.Build) { s.build = b }

// SetAccessLogger installs the structured request logger (one line
// per sampled or tail-captured request; needs a tracer to classify).
func (s *Server) SetAccessLogger(l *obs.Logger) { s.accessLog = l }

// SetLogf replaces the server's internal error logger (log.Printf by
// default) — friendserve points it at the structured logger.
func (s *Server) SetLogf(logf func(format string, args ...interface{})) {
	if logf != nil {
		s.logf = logf
	}
}

// EnablePprof mounts net/http/pprof under /debug/pprof/ (off by
// default: profiling endpoints are a diagnosis tool, not part of the
// serving surface). Call before the server starts listening.
func (s *Server) EnablePprof() {
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// SetAdmission installs an admission controller in front of the search
// and unstamped-mutation handlers (nil disables, the default). See the
// admission field for what is and is not gated.
func (s *Server) SetAdmission(c *admission.Controller) { s.admission = c }

// MountQuorum mounts the consensus transport of an HA front-end's
// quorum node under /quorum/ (vote, append, status). Call before the
// server starts listening.
func (s *Server) MountQuorum(h http.Handler) { s.mux.Handle("/quorum/", h) }

// admit acquires an admission ticket for one request, or writes the
// refusal response (429 + Retry-After on shed, 499 when the client's
// context expired while queued) and reports false. With no controller
// installed it admits everything with a zero (no-op) ticket.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, class admission.Class) (admission.Ticket, bool) {
	if s.admission == nil {
		return admission.Ticket{}, true
	}
	ctx, sp := obs.StartSpan(r.Context(), "admission.acquire")
	tk, err := s.admission.Acquire(ctx, class)
	if sp != nil {
		sp.SetBool("shed", err != nil)
		if err == nil {
			sp.SetInt("level", int64(tk.Level))
		}
		sp.End()
	}
	if err != nil {
		s.writeErr(w, searchErrStatus(err), err)
		return admission.Ticket{}, false
	}
	return tk, true
}

// SetReady flips readiness: /readyz answers 200 while ready, 503 while
// not. ListenAndServe flips it false itself when shutting down;
// embedders can also gate readiness on their own warmup.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// SetDrainDelay sets how long ListenAndServe keeps serving between
// flipping /readyz to 503 and starting the in-flight shutdown.
func (s *Server) SetDrainDelay(d time.Duration) { s.drainDelay = d }

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

// ServeHTTP implements http.Handler. With a tracer installed, serving
// requests run under the obs plane: a sampled traceparent header is
// adopted (this node becomes a participant in the caller's trace),
// otherwise a fresh trace id is minted and head sampling decides
// whether spans are collected. Health probes, metrics scrapes and the
// debug endpoints themselves are never traced, and quorum RPCs only
// when they arrive carrying a sampled trace — heartbeats fire far too
// often to head-sample.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.tracer == nil || untracedPath(r.URL.Path) {
		s.mux.ServeHTTP(w, r)
		return
	}
	tp := r.Header.Get(obs.TraceparentHeader)
	if strings.HasPrefix(r.URL.Path, "/quorum/") && tp == "" {
		s.mux.ServeHTTP(w, r)
		return
	}
	ctx, rq := s.tracer.StartRequest(r.Context(), tp, r.Method, r.URL.Path)
	sw := statusWriter{ResponseWriter: w, status: http.StatusOK}
	s.mux.ServeHTTP(&sw, r.WithContext(ctx))
	info := rq.Finish(sw.status)
	if s.accessLog != nil && (info.Sampled || info.Tail) {
		s.accessLog.Log("request",
			"trace", info.TraceID, "method", r.Method, "path", r.URL.Path,
			"status", info.Status, "dur_ms", info.DurationMS,
			"sampled", info.Sampled, "degraded", info.Degraded)
	}
}

// untracedPath lists the endpoints the obs plane itself ignores.
func untracedPath(p string) bool {
	return p == "/healthz" || p == "/readyz" || p == "/metrics" ||
		strings.HasPrefix(p, "/debug/")
}

// statusWriter captures the response status for trace finishing.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(status int) {
	sw.status = status
	sw.ResponseWriter.WriteHeader(status)
}

// Flush keeps pprof's streaming endpoints working through the wrapper
// (quorum and serving responses never flush explicitly).
func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// writeErr sends a JSON error body with the given status. Shed
// responses (429) carry a Retry-After header — whole seconds, rounded
// up from the admission controller's backoff hint — so well-behaved
// clients back off the right amount instead of guessing.
func (s *Server) writeErr(w http.ResponseWriter, status int, err error) {
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(err)))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if eerr := json.NewEncoder(w).Encode(map[string]string{"error": err.Error()}); eerr != nil {
		s.logf("server: encoding error response: %v", eerr)
	}
}

// writeJSON sends a 200 JSON response — unless the request context is
// already cancelled, in which case it aborts with 499 instead of
// encoding a body nobody will read. The Content-Type header is set
// before the status line, and encode failures (a client that hung up
// mid-body, an unencodable value) are logged, never swallowed.
func (s *Server) writeJSON(w http.ResponseWriter, r *http.Request, v interface{}) {
	if err := r.Context().Err(); err != nil {
		w.WriteHeader(StatusClientClosedRequest)
		s.logf("server: %s %s aborted: %v", r.Method, r.URL.Path, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.logf("server: encoding %s %s response: %v", r.Method, r.URL.Path, err)
	}
}

// searchErrStatus maps a Searcher error to an HTTP status: context
// cancellation means the client is gone (499); request-content errors —
// validation failures and lookups of names the client sent, all tagged
// search.ErrInvalid — are the client's fault (400); an admission shed
// (search.ErrOverloaded — the replica is healthy but at capacity) is
// 429, the retry-here-after-backoff class; a serving-substrate failure
// (search.ErrUnavailable — every fleet replica that could own the
// request is down) is 503, the failover/retry-later class; anything
// else is a backend failure (500).
func searchErrStatus(err error) int {
	switch {
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return StatusClientClosedRequest
	case errors.Is(err, search.ErrInvalid):
		return http.StatusBadRequest
	case errors.Is(err, search.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, search.ErrUnavailable):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// retryAfterSeconds extracts the backoff hint from a shed error for the
// Retry-After header (at least 1, since the header counts whole
// seconds).
func retryAfterSeconds(err error) int {
	var oe *search.OverloadError
	if errors.As(err, &oe) && oe.RetryAfter > 0 {
		if secs := int((oe.RetryAfter + time.Second - 1) / time.Second); secs > 1 {
			return secs
		}
	}
	return 1
}

// decodeBody strictly decodes a JSON request body into v.
func decodeBody(w http.ResponseWriter, r *http.Request, v interface{}) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decoding request body: %w", err)
	}
	// Reject trailing garbage after the JSON value.
	if dec.More() {
		return errors.New("request body holds more than one JSON value")
	}
	return nil
}

func (s *Server) requireMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method != method {
		w.Header().Set("Allow", method)
		s.writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return false
	}
	return true
}

type friendRequest struct {
	A      string  `json:"a"`
	B      string  `json:"b"`
	Weight float64 `json:"weight"`
	// LSN, when positive, stamps the mutation with its fleet replication
	// log sequence number: the backend applies it through the LSNApplier
	// surface (idempotent dedup + strict ordering) and the response
	// reports the replica's cursor. 0 (or absent) is a plain mutation —
	// the wire format unchanged since v1.
	LSN uint64 `json:"lsn"`
}

// AppliedResponse answers an LSN-stamped mutation: the replica's
// replication cursor after processing the record. Spans carries this
// process's span data when the mutation arrived as part of a sampled
// distributed trace (see obs.WireSpans); plain mutations never see it.
type AppliedResponse struct {
	AppliedLSN uint64         `json:"applied_lsn"`
	Spans      []obs.SpanData `json:"spans,omitempty"`
}

// applyStamped routes an LSN-stamped mutation through the backend's
// LSNApplier surface and writes the response: 409 for a replication
// gap (the sender must stream the missing records first), and on any
// other failure the CURSOR decides the class — a cursor that advanced
// to the record's LSN means a deterministic rejection every replica
// repeats identically (400, the sender counts the record processed),
// while a cursor left behind means an internal failure (a full disk, a
// broken log) that retrying may fix (500, never counted processed).
// Success answers the post-apply cursor.
func (s *Server) applyStamped(w http.ResponseWriter, r *http.Request, lsn uint64, apply func(la LSNApplier) error) {
	la, ok := s.backend.(LSNApplier)
	if !ok {
		s.writeErr(w, http.StatusBadRequest, errors.New("backend does not track replication LSNs"))
		return
	}
	if err := apply(la); err != nil {
		switch {
		case errors.Is(err, social.ErrReplicationGap):
			s.writeErr(w, http.StatusConflict, err)
		case la.AppliedLSN() >= lsn:
			s.writeErr(w, http.StatusBadRequest, err)
		default:
			s.writeErr(w, http.StatusInternalServerError, err)
		}
		return
	}
	s.writeJSON(w, r, AppliedResponse{AppliedLSN: la.AppliedLSN(), Spans: obs.WireSpans(r.Context())})
}

func (s *Server) handleFriend(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodPost) {
		return
	}
	var req friendRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.LSN > 0 {
		// Replicated apply path: never shed (see the admission field).
		s.applyStamped(w, r, req.LSN, func(la LSNApplier) error {
			return la.BefriendAt(req.LSN, req.A, req.B, req.Weight)
		})
		return
	}
	tk, ok := s.admit(w, r, admission.Write)
	if !ok {
		return
	}
	var err error
	if cm, isCtx := s.backend.(CtxMutator); isCtx {
		err = cm.BefriendCtx(r.Context(), req.A, req.B, req.Weight)
	} else {
		err = s.backend.Befriend(req.A, req.B, req.Weight)
	}
	tk.Release(err)
	if err != nil {
		s.writeMutationErr(w, r, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// writeMutationErr answers a failed unstamped mutation. A quorum
// follower's refusal becomes a 307 redirect at the elected leader
// (same path, method and body preserved by the 307 semantics) when the
// leader is known, and a 503 mid-election when it is not; everything
// else goes through mutationErrStatus.
func (s *Server) writeMutationErr(w http.ResponseWriter, r *http.Request, err error) {
	var nle *quorum.NotLeaderError
	if errors.As(err, &nle) {
		if nle.LeaderURL == "" {
			s.writeErr(w, http.StatusServiceUnavailable, err)
			return
		}
		w.Header().Set("Location", nle.LeaderURL+r.URL.Path)
		s.writeErr(w, http.StatusTemporaryRedirect, err)
		return
	}
	s.writeErr(w, mutationErrStatus(err), err)
}

// mutationErrStatus maps an unstamped mutation error to its HTTP
// status: an admission shed is 429 (retry the same endpoint after
// backoff); a serving-substrate failure (search.ErrUnavailable — a
// fleet front-end with no live replica, or none reachable) is 503, the
// retry-later class a load balancer must not confuse with a validation
// rejection; everything else keeps v1's historical 400.
func mutationErrStatus(err error) int {
	switch {
	case errors.Is(err, search.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, search.ErrUnavailable):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

type tagRequest struct {
	User string `json:"user"`
	Item string `json:"item"`
	Tag  string `json:"tag"`
	// LSN: see friendRequest.LSN.
	LSN uint64 `json:"lsn"`
}

func (s *Server) handleTag(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodPost) {
		return
	}
	var req tagRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.LSN > 0 {
		// Replicated apply path: never shed (see the admission field).
		s.applyStamped(w, r, req.LSN, func(la LSNApplier) error {
			return la.TagAt(req.LSN, req.User, req.Item, req.Tag)
		})
		return
	}
	tk, ok := s.admit(w, r, admission.Write)
	if !ok {
		return
	}
	var err error
	if cm, isCtx := s.backend.(CtxMutator); isCtx {
		err = cm.TagCtx(r.Context(), req.User, req.Item, req.Tag)
	} else {
		err = s.backend.Tag(req.User, req.Item, req.Tag)
	}
	tk.Release(err)
	if err != nil {
		s.writeMutationErr(w, r, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// skipRequest is the /v1/skip body: the replication LSN to mark
// processed without applying anything.
type skipRequest struct {
	LSN uint64 `json:"lsn"`
}

// handleSkip advances a replica's replication cursor past a record
// that is a no-op for it (a RecTerm leadership record, or a mutation
// every replica deterministically rejects). Same cursor discipline as
// the stamped mutation path: dedup at or below the cursor, 409 on a
// gap. Never shed — it is part of the replication apply path.
func (s *Server) handleSkip(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodPost) {
		return
	}
	sk, ok := s.backend.(LSNSkipper)
	if !ok {
		s.writeErr(w, http.StatusBadRequest, errors.New("backend does not track replication LSNs"))
		return
	}
	var req skipRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.LSN == 0 {
		s.writeErr(w, http.StatusBadRequest, errors.New("skip needs a positive lsn"))
		return
	}
	if err := sk.SkipLSN(req.LSN); err != nil {
		if errors.Is(err, social.ErrReplicationGap) {
			s.writeErr(w, http.StatusConflict, err)
			return
		}
		s.writeErr(w, http.StatusInternalServerError, err)
		return
	}
	s.writeJSON(w, r, AppliedResponse{AppliedLSN: sk.AppliedLSN()})
}

// SearchResponse is the /v1/search response body.
type SearchResponse struct {
	Results []social.Result `json:"results"`
}

// handleSearchV1 is the v1 single-query endpoint: a thin adapter that
// builds a ModeExact search.Request (the v1 semantics) from the query
// string. Wire format is unchanged from v1's introduction.
func (s *Server) handleSearchV1(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodGet) {
		return
	}
	q := r.URL.Query()
	seeker := q.Get("seeker")
	if seeker == "" {
		s.writeErr(w, http.StatusBadRequest, errors.New("missing seeker parameter"))
		return
	}
	tags := search.NormalizeTags(q["tags"])
	if len(tags) == 0 {
		s.writeErr(w, http.StatusBadRequest, errors.New("missing tags parameter"))
		return
	}
	k := 0 // Normalize substitutes the default
	if ks := q.Get("k"); ks != "" {
		var err error
		if k, err = strconv.Atoi(ks); err != nil || k < 0 {
			s.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad k %q", ks))
			return
		}
	}
	tk, ok := s.admit(w, r, admission.Read)
	if !ok {
		return
	}
	req := search.Request{Seeker: seeker, Tags: tags, K: k, Mode: search.ModeExact}
	s.forceExplain(r.Context(), &req)
	start := time.Now()
	resp, err := s.backend.Do(r.Context(), req)
	tk.Release(err)
	if err != nil {
		s.writeErr(w, searchErrStatus(err), err)
		return
	}
	s.noteSlowQuery(r.Context(), req, &resp, time.Since(start))
	s.writeJSON(w, r, SearchResponse{Results: v1Results(resp.Results)})
}

// forceExplain turns on Explain for a sampled traced query the client
// did not ask to explain, so the trace and the slow-query log capture
// the engine's decision record. The caller strips the payload from the
// response when the client did not request it (noteSlowQuery does both
// jobs), keeping client-visible bytes independent of sampling.
func (s *Server) forceExplain(ctx context.Context, req *search.Request) {
	if s.tracer != nil && !req.Explain && obs.CurrentSpan(ctx) != nil {
		req.Explain = true
	}
}

// noteSlowQuery feeds the slow-query log when the query crossed the
// tracer's slow threshold, annotates the current span with the explain
// decision record, and strips a force-injected Explain payload off the
// response.
func (s *Server) noteSlowQuery(ctx context.Context, req search.Request, resp *search.Response, dur time.Duration) {
	if s.tracer == nil {
		return
	}
	if ex := resp.Explain; ex != nil {
		if sp := obs.CurrentSpan(ctx); sp != nil {
			sp.SetAttr("algorithm", ex.Algorithm)
			sp.SetInt("horizon_users", int64(ex.HorizonUsers))
			sp.SetBool("cache_hit", ex.CacheHit)
		}
	}
	if th := s.tracer.SlowThreshold(); th > 0 && dur >= th {
		s.tracer.RecordSlow(obs.SlowQuery{
			Time:       time.Now().Add(-dur),
			TraceID:    obs.RequestFromContext(ctx).TraceID(),
			Seeker:     req.Seeker,
			Tags:       req.Tags,
			K:          req.K,
			Mode:       req.Mode.String(),
			DurationMS: float64(dur) / float64(time.Millisecond),
			Explain:    resp.Explain,
		})
	}
}

// v1Results converts canonical results to the v1 wire type (whose JSON
// keys are capitalized, as they have been since v1 shipped).
func v1Results(rs []search.Result) []social.Result {
	out := make([]social.Result, len(rs))
	for i, r := range rs {
		out[i] = social.Result{Item: r.Item, Score: r.Score}
	}
	return out
}

// batchQuery is one query of a v1 batch request. K is a pointer so an
// absent k (defaulted) is distinguishable from an explicit value.
type batchQuery struct {
	Seeker string   `json:"seeker"`
	Tags   []string `json:"tags"`
	K      *int     `json:"k"`
}

// batchRequest is the /v1/search/batch request body.
type batchRequest struct {
	Queries []batchQuery `json:"queries"`
}

// BatchEntry answers one v1 batch query: on success Results is the
// answer (an empty array when nothing matched, never null); on failure
// Error is set and Results is null.
type BatchEntry struct {
	Results []social.Result `json:"results"`
	Error   string          `json:"error,omitempty"`
}

// BatchResponse is the /v1/search/batch response body; entry i answers
// query i.
type BatchResponse struct {
	Results []BatchEntry `json:"results"`
}

// decodeBatchEnvelope decodes a batch request body into v and
// bounds-checks the query count (read via count, since v1 and v2 use
// different envelope types). It reports whether the envelope was
// accepted; on rejection the 400 response has already been written.
func (s *Server) decodeBatchEnvelope(w http.ResponseWriter, r *http.Request, v interface{}, count func() int) bool {
	if err := decodeBody(w, r, v); err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return false
	}
	n := count()
	if n == 0 {
		s.writeErr(w, http.StatusBadRequest, errors.New("batch holds no queries"))
		return false
	}
	if n > MaxBatchQueries {
		s.writeErr(w, http.StatusBadRequest,
			fmt.Errorf("batch holds %d queries, limit is %d", n, MaxBatchQueries))
		return false
	}
	return true
}

func (s *Server) handleSearchBatchV1(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodPost) {
		return
	}
	var req batchRequest
	if !s.decodeBatchEnvelope(w, r, &req, func() int { return len(req.Queries) }) {
		return
	}
	// Adapt each query to a ModeExact search.Request, keeping v1's
	// per-query error messages. Per-query validation failures become
	// per-query errors, not batch failures.
	reqs := make([]search.Request, len(req.Queries))
	errs := make([]error, len(req.Queries))
	for i, q := range req.Queries {
		tags := search.NormalizeTags(q.Tags)
		k := 0 // Normalize substitutes the default
		if q.K != nil {
			k = *q.K
		}
		switch {
		case q.Seeker == "":
			errs[i] = fmt.Errorf("query %d: missing seeker", i)
		case len(tags) == 0:
			errs[i] = fmt.Errorf("query %d: missing tags", i)
		case k < 0:
			errs[i] = fmt.Errorf("query %d: bad k %d", i, k)
		}
		reqs[i] = search.Request{Seeker: q.Seeker, Tags: tags, K: k, Mode: search.ModeExact}
	}
	// Execute only the well-formed queries, preserving input positions.
	var runnable []search.Request
	var positions []int
	for i := range reqs {
		if errs[i] == nil {
			runnable = append(runnable, reqs[i])
			positions = append(positions, i)
		}
	}
	// Skip the backend entirely when nothing survived validation (a
	// durable backend folds pending writes even for an empty batch).
	var batch []search.BatchResult
	if len(runnable) > 0 {
		tk, ok := s.admit(w, r, admission.Read)
		if !ok {
			return
		}
		batch = s.backend.DoBatch(r.Context(), runnable)
		tk.Release(batchOutcome(batch))
	}
	resp := BatchResponse{Results: make([]BatchEntry, len(reqs))}
	for i, err := range errs {
		if err != nil {
			resp.Results[i] = BatchEntry{Error: err.Error()}
		}
	}
	for j, br := range batch {
		i := positions[j]
		if br.Err != nil {
			resp.Results[i] = BatchEntry{Error: br.Err.Error()}
			continue
		}
		resp.Results[i] = BatchEntry{Results: v1Results(br.Response.Results)}
	}
	s.writeJSON(w, r, resp)
}

// v2Query is the wire form of one search.Request.
type v2Query struct {
	Seeker        string   `json:"seeker"`
	Tags          []string `json:"tags"`
	K             int      `json:"k"`
	Beta          *float64 `json:"beta"`
	Mode          string   `json:"mode"`
	AlgHint       string   `json:"alg_hint"`
	MinScore      float64  `json:"min_score"`
	Offset        int      `json:"offset"`
	NoCache       bool     `json:"no_cache"`
	MaxCacheAgeMS int64    `json:"max_cache_age_ms"`
	Explain       bool     `json:"explain"`
}

// request converts the wire query to a search.Request (mode parse
// errors surface as ErrInvalid, like every other validation failure).
func (q v2Query) request() (search.Request, error) {
	mode, err := search.ParseMode(q.Mode)
	if err != nil {
		return search.Request{}, err
	}
	return search.Request{
		Seeker:        q.Seeker,
		Tags:          q.Tags,
		K:             q.K,
		Beta:          q.Beta,
		Mode:          mode,
		AlgHint:       q.AlgHint,
		MinScore:      q.MinScore,
		Offset:        q.Offset,
		NoCache:       q.NoCache,
		MaxCacheAgeMS: q.MaxCacheAgeMS,
		Explain:       q.Explain,
	}, nil
}

// V2SearchResponse is the /v2/search response body. Spans carries
// this process's span data when the query arrived as part of a sampled
// distributed trace — a front-end stitching a replica's work into its
// own trace (see obs.WireSpans); client-initiated queries never see it.
type V2SearchResponse struct {
	Results []search.Result `json:"results"`
	Explain *search.Explain `json:"explain,omitempty"`
	// Degraded marks answers the overload brownout served on a cheaper
	// path than requested; ScoreBound is the certified honesty bound of
	// such an answer (see search.Response).
	Degraded   bool           `json:"degraded,omitempty"`
	ScoreBound float64        `json:"score_bound,omitempty"`
	Spans      []obs.SpanData `json:"spans,omitempty"`
}

func (s *Server) handleSearchV2(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodPost) {
		return
	}
	var q v2Query
	if err := decodeBody(w, r, &q); err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	req, err := q.request()
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	tk, ok := s.admit(w, r, admission.Read)
	if !ok {
		return
	}
	degraded := s.applyBrownout(tk.Level, &req)
	if degraded {
		obs.MarkDegraded(r.Context())
	}
	wantExplain := req.Explain
	s.forceExplain(r.Context(), &req)
	start := time.Now()
	resp, err := s.backend.Do(r.Context(), req)
	tk.Release(err)
	if err != nil {
		s.writeErr(w, searchErrStatus(err), err)
		return
	}
	// Capture (and on a force-injected Explain, strip) the decision
	// record before markDegraded consults resp.Explain for the honesty
	// bound — client-visible bytes must not depend on sampling.
	s.noteSlowQuery(r.Context(), req, &resp, time.Since(start))
	if !wantExplain {
		resp.Explain = nil
	}
	markDegraded(&resp, degraded)
	s.writeJSON(w, r, V2SearchResponse{
		Results: resp.Results, Explain: resp.Explain,
		Degraded: resp.Degraded, ScoreBound: resp.ScoreBound,
		Spans: obs.WireSpans(r.Context()),
	})
}

// applyBrownout applies the admission brownout ladder to a request (a
// no-op without a controller). It reports whether the execution mode
// was degraded; the caller must then mark the response with markDegraded
// so the client sees Degraded plus the certified bound.
func (s *Server) applyBrownout(lvl admission.Level, req *search.Request) bool {
	if s.admission == nil {
		return false
	}
	return s.admission.Apply(lvl, req)
}

// markDegraded stamps a response whose request this server degraded.
// The certified bound comes from the engine when it reported one (every
// approx execution does); otherwise the last returned score — an upper
// bound on the certification threshold — stands in, so a degraded
// response never goes out without its honesty certificate.
func markDegraded(resp *search.Response, degraded bool) {
	if !degraded {
		return
	}
	resp.Degraded = true
	if resp.ScoreBound == 0 {
		if resp.Explain != nil {
			resp.ScoreBound = resp.Explain.ScoreBound
		} else if n := len(resp.Results); n > 0 {
			resp.ScoreBound = resp.Results[n-1].Score
		}
	}
	if resp.Explain != nil {
		resp.Explain.Degraded = true
	}
}

// v2BatchRequest is the /v2/search/batch request body.
type v2BatchRequest struct {
	Queries []v2Query `json:"queries"`
}

// V2BatchEntry answers one v2 batch query.
type V2BatchEntry struct {
	Results    []search.Result `json:"results"`
	Explain    *search.Explain `json:"explain,omitempty"`
	Degraded   bool            `json:"degraded,omitempty"`
	ScoreBound float64         `json:"score_bound,omitempty"`
	Error      string          `json:"error,omitempty"`
	// ErrorKind carries the error's class across the wire ("invalid",
	// "overloaded", "unavailable"; empty for unclassified failures) so a
	// fleet front-end relaying this entry can reconstruct the typed
	// error — a replica's shed (429) must stay a shed at the front door,
	// never be flattened into a generic failure.
	ErrorKind string `json:"error_kind,omitempty"`
	// RetryAfterMS is the shed entry's backoff hint in milliseconds
	// (only with ErrorKind "overloaded") — the per-entry form of the
	// Retry-After header.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// Wire error classes for V2BatchEntry.ErrorKind.
const (
	ErrKindInvalid     = "invalid"
	ErrKindOverloaded  = "overloaded"
	ErrKindUnavailable = "unavailable"
)

// classifyWireErr reduces a per-entry error to its wire class and
// backoff hint.
func classifyWireErr(err error) (kind string, retryAfterMS int64) {
	switch {
	case errors.Is(err, search.ErrInvalid):
		return ErrKindInvalid, 0
	case errors.Is(err, search.ErrOverloaded):
		var oe *search.OverloadError
		if errors.As(err, &oe) {
			retryAfterMS = oe.RetryAfter.Milliseconds()
		}
		return ErrKindOverloaded, retryAfterMS
	case errors.Is(err, search.ErrUnavailable):
		return ErrKindUnavailable, 0
	default:
		return "", 0
	}
}

// batchOutcome reduces a batch's per-entry errors to one admission
// outcome: success if anything succeeded, else the first error — so one
// slow-but-served batch is an ack, not a congestion signal.
func batchOutcome(batch []search.BatchResult) error {
	var firstErr error
	for _, br := range batch {
		if br.Err == nil {
			return nil
		}
		if firstErr == nil {
			firstErr = br.Err
		}
	}
	return firstErr
}

// V2BatchResponse is the /v2/search/batch response body; entry i
// answers query i. Spans: see V2SearchResponse.
type V2BatchResponse struct {
	Results []V2BatchEntry `json:"results"`
	Spans   []obs.SpanData `json:"spans,omitempty"`
}

func (s *Server) handleSearchBatchV2(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodPost) {
		return
	}
	var body v2BatchRequest
	if !s.decodeBatchEnvelope(w, r, &body, func() int { return len(body.Queries) }) {
		return
	}
	reqs := make([]search.Request, len(body.Queries))
	errs := make([]error, len(body.Queries))
	for i, q := range body.Queries {
		reqs[i], errs[i] = q.request()
	}
	var runnable []search.Request
	var positions []int
	for i := range reqs {
		if errs[i] == nil {
			runnable = append(runnable, reqs[i])
			positions = append(positions, i)
		}
	}
	var batch []search.BatchResult
	degraded := make([]bool, len(runnable))
	if len(runnable) > 0 {
		tk, ok := s.admit(w, r, admission.Read)
		if !ok {
			return
		}
		// One ticket covers the whole envelope (the batch is one unit of
		// admitted work); the brownout decision applies per query.
		for i := range runnable {
			degraded[i] = s.applyBrownout(tk.Level, &runnable[i])
			if degraded[i] {
				obs.MarkDegraded(r.Context())
			}
		}
		batch = s.backend.DoBatch(r.Context(), runnable)
		tk.Release(batchOutcome(batch))
	}
	resp := V2BatchResponse{Results: make([]V2BatchEntry, len(reqs)), Spans: obs.WireSpans(r.Context())}
	for i, err := range errs {
		if err != nil {
			resp.Results[i] = V2BatchEntry{Error: fmt.Sprintf("query %d: %v", i, err), ErrorKind: ErrKindInvalid}
		}
	}
	for j, br := range batch {
		i := positions[j]
		if br.Err != nil {
			kind, retryMS := classifyWireErr(br.Err)
			resp.Results[i] = V2BatchEntry{Error: br.Err.Error(), ErrorKind: kind, RetryAfterMS: retryMS}
			continue
		}
		markDegraded(&br.Response, degraded[j])
		resp.Results[i] = V2BatchEntry{
			Results: br.Response.Results, Explain: br.Response.Explain,
			Degraded: br.Response.Degraded, ScoreBound: br.Response.ScoreBound,
		}
	}
	s.writeJSON(w, r, resp)
}

// invalidateRequest is the /v2/invalidate body: a batch of friendship
// edges (by user name) whose cached horizons must drop, or all=true to
// drop everything. Pending writes are folded into the snapshot first
// either way, so a broadcast is also the fleet's compaction heartbeat.
type invalidateRequest struct {
	Edges [][2]string `json:"edges"`
	All   bool        `json:"all"`
}

// InvalidateResponse is the /v2/invalidate response body.
type InvalidateResponse struct {
	// Dropped is the number of cached horizons invalidated.
	Dropped int `json:"dropped"`
}

func (s *Server) handleInvalidate(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodPost) {
		return
	}
	inv, ok := s.backend.(Invalidator)
	if !ok {
		s.writeErr(w, http.StatusNotFound, errors.New("backend does not support invalidation broadcast"))
		return
	}
	var req invalidateRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	dropped, err := inv.ApplyInvalidation(req.Edges, req.All)
	if err != nil {
		s.writeErr(w, http.StatusInternalServerError, err)
		return
	}
	s.writeJSON(w, r, InvalidateResponse{Dropped: dropped})
}

// handleReplog pages through the fleet replication log:
// GET /v2/replog?from=LSN returns the records from that LSN (default 1,
// at most MaxReplogPageRecords) plus the log head, so a reader streams
// the log by paging until it has seen lsn == head.
func (s *Server) handleReplog(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodGet) {
		return
	}
	src, ok := s.backend.(ReplogSource)
	if !ok {
		s.writeErr(w, http.StatusNotFound, errors.New("backend has no replication log"))
		return
	}
	from := uint64(1)
	if fs := r.URL.Query().Get("from"); fs != "" {
		v, err := strconv.ParseUint(fs, 10, 64)
		if err != nil || v == 0 {
			s.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad from %q", fs))
			return
		}
		from = v
	}
	page, err := src.ReplogPage(from, MaxReplogPageRecords)
	if err != nil {
		if errors.Is(err, ErrNoReplog) {
			s.writeErr(w, http.StatusNotFound, err)
			return
		}
		s.writeErr(w, http.StatusInternalServerError, err)
		return
	}
	if page.Records == nil {
		page.Records = []ReplogRecord{}
	}
	s.writeJSON(w, r, page)
}

// handleSnapshot serves the replica bootstrap plane. GET exports the
// backend's compacted state as a binary stream pinned at the
// replication cursor (social.WriteSnapshotStream form, cursor echoed in
// X-Snapshot-LSN); POST replaces the backend's entire state with such a
// stream. Mutations racing an export simply land after the pinned
// cursor and reach the importer through the replication log suffix.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		src, ok := s.backend.(SnapshotSource)
		if !ok {
			s.writeErr(w, http.StatusNotFound, errors.New("backend does not export snapshots"))
			return
		}
		g, st, names, lsn, err := src.SnapshotWithCursor()
		if err != nil {
			s.writeErr(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set(SnapshotLSNHeader, strconv.FormatUint(lsn, 10))
		if err := social.WriteSnapshotStream(w, g, st, names, lsn); err != nil && s.logf != nil {
			s.logf("server: streaming snapshot: %v", err)
		}
	case http.MethodPost:
		imp, ok := s.backend.(SnapshotImporter)
		if !ok {
			s.writeErr(w, http.StatusNotFound, errors.New("backend does not import snapshots"))
			return
		}
		g, st, names, lsn, err := social.ReadSnapshotStream(io.LimitReader(r.Body, maxSnapshotBodyBytes))
		if err != nil {
			s.writeErr(w, http.StatusBadRequest, err)
			return
		}
		if err := imp.ImportSnapshot(g, st, names, lsn); err != nil {
			s.writeErr(w, http.StatusInternalServerError, err)
			return
		}
		s.writeJSON(w, r, AppliedResponse{AppliedLSN: lsn})
	default:
		w.Header().Set("Allow", "GET, POST")
		s.writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
	}
}

// handleCacheSeekers lists the seekers with resident cached horizons
// (hottest first per shard) — the enumeration half of the pre-warm
// plane a resize orchestrator drives.
func (s *Server) handleCacheSeekers(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodGet) {
		return
	}
	cw, ok := s.backend.(CacheWarmer)
	if !ok {
		s.writeErr(w, http.StatusNotFound, errors.New("backend has no seeker cache plane"))
		return
	}
	seekers := cw.CachedSeekers()
	if seekers == nil {
		seekers = []string{}
	}
	s.writeJSON(w, r, struct {
		Seekers []string `json:"seekers"`
	}{Seekers: seekers})
}

// handleCacheWarm materializes the given seekers' horizons into the
// cache, bypassing cold-start admission — the install half of the
// pre-warm plane. Unknown seekers are skipped, not errors.
func (s *Server) handleCacheWarm(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodPost) {
		return
	}
	cw, ok := s.backend.(CacheWarmer)
	if !ok {
		s.writeErr(w, http.StatusNotFound, errors.New("backend has no seeker cache plane"))
		return
	}
	var req struct {
		Seekers []string `json:"seekers"`
	}
	if err := decodeBody(w, r, &req); err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Seekers) > MaxWarmSeekers {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("%d seekers exceeds limit %d", len(req.Seekers), MaxWarmSeekers))
		return
	}
	warmed, err := cw.WarmSeekers(r.Context(), req.Seekers)
	if err != nil {
		s.writeErr(w, http.StatusInternalServerError, err)
		return
	}
	s.writeJSON(w, r, struct {
		Warmed int `json:"warmed"`
	}{Warmed: warmed})
}

// handleFleetResize drives elastic membership on a fleet front-end:
// joins run first (each is admit → snapshot bootstrap → catch-up →
// pre-warm → activate), then retires (drain → remove). The first
// failing operation aborts the rest; the response reports what
// completed, so a retried request — joins are idempotent by URL,
// retires by slot — finishes the remainder.
func (s *Server) handleFleetResize(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodPost) {
		return
	}
	fr, ok := s.backend.(FleetResizer)
	if !ok {
		s.writeErr(w, http.StatusNotFound, errors.New("backend is not a resizable fleet front-end"))
		return
	}
	var req FleetResizeRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Join)+len(req.Retire) == 0 {
		s.writeErr(w, http.StatusBadRequest, errors.New("resize request names no joins or retires"))
		return
	}
	if len(req.Join)+len(req.Retire) > MaxResizeOps {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("%d operations exceeds limit %d", len(req.Join)+len(req.Retire), MaxResizeOps))
		return
	}
	resp := FleetResizeResponse{Joined: []int{}, Retired: []int{}}
	fail := func(err error) {
		resp.Epoch = fr.FleetEpoch()
		status := http.StatusInternalServerError
		if errors.Is(err, search.ErrUnavailable) {
			status = http.StatusServiceUnavailable
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		_ = json.NewEncoder(w).Encode(struct {
			Error string `json:"error"`
			FleetResizeResponse
		}{Error: err.Error(), FleetResizeResponse: resp})
	}
	for _, url := range req.Join {
		slot, err := fr.JoinReplica(r.Context(), url)
		if err != nil {
			fail(fmt.Errorf("join %s: %w", url, err))
			return
		}
		resp.Joined = append(resp.Joined, slot)
	}
	for _, slot := range req.Retire {
		if err := fr.RetireReplica(r.Context(), slot); err != nil {
			fail(fmt.Errorf("retire slot %d: %w", slot, err))
			return
		}
		resp.Retired = append(resp.Retired, slot)
	}
	resp.Epoch = fr.FleetEpoch()
	s.writeJSON(w, r, resp)
}

func (s *Server) handleUsers(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodGet) {
		return
	}
	users := s.backend.Users()
	if users == nil {
		users = []string{}
	}
	s.writeJSON(w, r, map[string][]string{"users": users})
}

// StatsEnvelope is the /v1/stats body when the server has more than
// backend counters to report — an admission controller, build info, a
// tracer: each present block plus the backend's own counters under
// Backend. With none of them the backend stats remain the top-level
// body, so existing deployments see an unchanged wire.
type StatsEnvelope struct {
	Build     *obs.BuildInfo      `json:"Build,omitempty"`
	Admission *admission.Snapshot `json:"Admission,omitempty"`
	Trace     *obs.Stats          `json:"Trace,omitempty"`
	Backend   interface{}         `json:"Backend"`
}

// backendStats resolves the backend's counters. The two service types
// return different concrete stats structs, so match on the method
// signature.
func (s *Server) backendStats() (interface{}, bool) {
	switch b := s.backend.(type) {
	case interface{ Stats() social.Stats }:
		return b.Stats(), true
	case interface{ Stats() durable.Stats }:
		return b.Stats(), true
	case Statser:
		return b.StatsAny(), true
	default:
		return nil, false
	}
}

// handleStats reports whatever counters the backend exposes, wrapped
// in a StatsEnvelope when admission, build info or tracing add blocks
// of their own.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodGet) {
		return
	}
	payload, ok := s.backendStats()
	if !ok {
		s.writeErr(w, http.StatusNotFound, errors.New("backend exposes no stats"))
		return
	}
	if s.admission != nil || s.build != nil || s.tracer != nil {
		env := StatsEnvelope{Build: s.build.Info(), Backend: payload}
		if s.admission != nil {
			snap := s.admission.Snapshot()
			env.Admission = &snap
		}
		if s.tracer != nil {
			ts := s.tracer.Stats()
			env.Trace = &ts
		}
		payload = env
	}
	s.writeJSON(w, r, payload)
}

// handleMetrics serves the Prometheus text exposition: the same
// counters as /v1/stats — admission, tracing, and the backend's stats
// struct — rendered as friendserve_* samples by obs.WriteProm, plus
// the build _info line. Registered unconditionally: the stats structs
// exist with or without the obs plane.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodGet) {
		return
	}
	w.Header().Set("Content-Type", obs.PromContentType)
	if s.build != nil {
		obs.WriteProm(w, "friendserve_build", s.build.Info())
	}
	if s.admission != nil {
		snap := s.admission.Snapshot()
		obs.WriteProm(w, "friendserve_admission", &snap)
	}
	if s.tracer != nil {
		obs.WriteProm(w, "friendserve_trace", s.tracer.Stats())
	}
	if payload, ok := s.backendStats(); ok {
		obs.WriteProm(w, "friendserve", payload)
	}
}

// ListenAndServe runs the server on addr until ctx is cancelled, then
// drains gracefully: /readyz flips to 503 immediately (so load
// balancers and fleet health checkers stop sending new work), the
// server keeps answering for the configured drain delay, and finally
// http.Server.Shutdown waits — up to shutdownTimeout — for in-flight
// requests to finish before the listener closes.
func (s *Server) ListenAndServe(ctx context.Context, addr string, shutdownTimeout time.Duration) error {
	hs := &http.Server{
		Addr:              addr,
		Handler:           s,
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		s.SetReady(false)
		if s.drainDelay > 0 {
			time.Sleep(s.drainDelay)
		}
		sctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
		defer cancel()
		return hs.Shutdown(sctx)
	}
}
