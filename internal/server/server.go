// Package server exposes a social tagging service over HTTP/JSON: the
// thin deployment layer a downstream application runs in front of the
// library. It serves both the in-memory service (internal/social) and
// the crash-safe one (internal/durable) through a small backend
// interface.
//
// Endpoints (all JSON):
//
//	POST /v1/friend        {"a":"alice","b":"bob","weight":0.9}     → 204
//	POST /v1/tag           {"user":"bob","item":"x","tag":"pizza"}  → 204
//	GET  /v1/search?seeker=alice&tags=pizza,italian&k=5             → {"results":[...]}
//	POST /v1/search/batch  {"queries":[{"seeker":"alice","tags":["pizza"],"k":5},...]}
//	                                                                → {"results":[{"results":[...]},{"error":"..."},...]}
//	GET  /v1/users                                                  → {"users":[...]}
//	GET  /v1/stats                                                  → backend counters
//	GET  /healthz                                                   → 200 "ok"
//
// The batch endpoint executes up to MaxBatchQueries queries on the
// backend's bounded worker pool and reports errors per query: the i-th
// entry of "results" answers the i-th query, carrying either its
// results or its error, so one bad query never voids the rest of the
// batch. Malformed envelopes (bad JSON, no queries, too many queries,
// oversized bodies) are rejected with 400 before anything executes.
// Backends serve searches through a mutation-aware per-seeker horizon
// cache (see internal/qcache); its hit/miss/invalidation/eviction
// counters appear under SeekerCache in /v1/stats.
//
// Client errors (validation, unknown names, malformed JSON) map to
// 400; wrong methods to 405; everything else to 500.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/durable"
	"repro/internal/social"
)

// Backend is the mutation/query surface the server needs. Both
// *social.Service and *durable.Service satisfy it.
type Backend interface {
	Befriend(a, b string, weight float64) error
	Tag(user, item, tag string) error
	Search(seeker string, tags []string, k int) ([]social.Result, error)
	// SearchBatch answers many queries concurrently, in input order,
	// with per-query error reporting; it never fails as a whole.
	SearchBatch(queries []social.BatchQuery) []social.BatchResult
	Users() []string
}

// maxBodyBytes bounds mutation request bodies.
const maxBodyBytes = 1 << 20

// defaultK is the result count when a query names none.
const defaultK = 10

// MaxBatchQueries bounds the number of queries accepted by one
// /v1/search/batch request.
const MaxBatchQueries = 256

// Server is an http.Handler serving the API.
type Server struct {
	backend Backend
	mux     *http.ServeMux
}

// New builds a server over a backend.
func New(b Backend) (*Server, error) {
	if b == nil {
		return nil, errors.New("server: nil backend")
	}
	s := &Server{backend: b, mux: http.NewServeMux()}
	s.mux.HandleFunc("/v1/friend", s.handleFriend)
	s.mux.HandleFunc("/v1/tag", s.handleTag)
	s.mux.HandleFunc("/v1/search", s.handleSearch)
	s.mux.HandleFunc("/v1/search/batch", s.handleSearchBatch)
	s.mux.HandleFunc("/v1/users", s.handleUsers)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// writeErr sends a JSON error body with the given status.
func writeErr(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// writeJSON sends a 200 JSON response.
func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// decodeBody strictly decodes a JSON request body into v.
func decodeBody(w http.ResponseWriter, r *http.Request, v interface{}) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decoding request body: %w", err)
	}
	// Reject trailing garbage after the JSON value.
	if dec.More() {
		return errors.New("request body holds more than one JSON value")
	}
	return nil
}

func requireMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method != method {
		w.Header().Set("Allow", method)
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return false
	}
	return true
}

type friendRequest struct {
	A      string  `json:"a"`
	B      string  `json:"b"`
	Weight float64 `json:"weight"`
}

func (s *Server) handleFriend(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req friendRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := s.backend.Befriend(req.A, req.B, req.Weight); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

type tagRequest struct {
	User string `json:"user"`
	Item string `json:"item"`
	Tag  string `json:"tag"`
}

func (s *Server) handleTag(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req tagRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := s.backend.Tag(req.User, req.Item, req.Tag); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// SearchResponse is the /v1/search response body.
type SearchResponse struct {
	Results []social.Result `json:"results"`
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	q := r.URL.Query()
	seeker := q.Get("seeker")
	if seeker == "" {
		writeErr(w, http.StatusBadRequest, errors.New("missing seeker parameter"))
		return
	}
	tags := normalizeTags(q["tags"])
	if len(tags) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("missing tags parameter"))
		return
	}
	k := defaultK
	if ks := q.Get("k"); ks != "" {
		var err error
		if k, err = strconv.Atoi(ks); err != nil || k < 1 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad k %q", ks))
			return
		}
	}
	res, err := s.backend.Search(seeker, tags, k)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if res == nil {
		res = []social.Result{}
	}
	writeJSON(w, SearchResponse{Results: res})
}

// normalizeTags splits comma-separated chunks, trims whitespace, and
// drops blanks — the tag normalization shared by both search endpoints.
func normalizeTags(chunks []string) []string {
	var tags []string
	for _, chunk := range chunks {
		for _, t := range strings.Split(chunk, ",") {
			if t = strings.TrimSpace(t); t != "" {
				tags = append(tags, t)
			}
		}
	}
	return tags
}

// batchQuery is one query of a batch request. K is a pointer so an
// absent k (defaulted) is distinguishable from an explicit invalid 0.
type batchQuery struct {
	Seeker string   `json:"seeker"`
	Tags   []string `json:"tags"`
	K      *int     `json:"k"`
}

// batchRequest is the /v1/search/batch request body.
type batchRequest struct {
	Queries []batchQuery `json:"queries"`
}

// BatchEntry answers one batch query: on success Results is the answer
// (an empty array when nothing matched, never null); on failure Error
// is set and Results is null.
type BatchEntry struct {
	Results []social.Result `json:"results"`
	Error   string          `json:"error,omitempty"`
}

// BatchResponse is the /v1/search/batch response body; entry i answers
// query i.
type BatchResponse struct {
	Results []BatchEntry `json:"results"`
}

func (s *Server) handleSearchBatch(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req batchRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Queries) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("batch holds no queries"))
		return
	}
	if len(req.Queries) > MaxBatchQueries {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("batch holds %d queries, limit is %d", len(req.Queries), MaxBatchQueries))
		return
	}
	// Normalize like the single-query endpoint: comma-split and trim
	// tags, drop blanks, default an absent k. Per-query validation
	// failures become per-query errors, not batch failures.
	queries := make([]social.BatchQuery, len(req.Queries))
	errs := make([]error, len(req.Queries))
	for i, q := range req.Queries {
		tags := normalizeTags(q.Tags)
		k := defaultK
		if q.K != nil {
			k = *q.K
		}
		switch {
		case q.Seeker == "":
			errs[i] = fmt.Errorf("query %d: missing seeker", i)
		case len(tags) == 0:
			errs[i] = fmt.Errorf("query %d: missing tags", i)
		case k < 1:
			errs[i] = fmt.Errorf("query %d: bad k %d", i, k)
		}
		queries[i] = social.BatchQuery{Seeker: q.Seeker, Tags: tags, K: k}
	}
	// Execute only the well-formed queries, preserving input positions.
	var runnable []social.BatchQuery
	var positions []int
	for i := range queries {
		if errs[i] == nil {
			runnable = append(runnable, queries[i])
			positions = append(positions, i)
		}
	}
	// Skip the backend entirely when nothing survived validation (a
	// durable backend folds pending writes even for an empty batch).
	var batch []social.BatchResult
	if len(runnable) > 0 {
		batch = s.backend.SearchBatch(runnable)
	}
	resp := BatchResponse{Results: make([]BatchEntry, len(queries))}
	for i, err := range errs {
		if err != nil {
			resp.Results[i] = BatchEntry{Error: err.Error()}
		}
	}
	for j, br := range batch {
		i := positions[j]
		if br.Err != nil {
			resp.Results[i] = BatchEntry{Error: br.Err.Error()}
			continue
		}
		res := br.Results
		if res == nil {
			res = []social.Result{}
		}
		resp.Results[i] = BatchEntry{Results: res}
	}
	writeJSON(w, resp)
}

func (s *Server) handleUsers(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	users := s.backend.Users()
	if users == nil {
		users = []string{}
	}
	writeJSON(w, map[string][]string{"users": users})
}

// handleStats reports whatever counters the backend exposes. The two
// service types return different concrete stats structs, so match on
// the method signature.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	switch b := s.backend.(type) {
	case interface{ Stats() social.Stats }:
		writeJSON(w, b.Stats())
	case interface{ Stats() durable.Stats }:
		writeJSON(w, b.Stats())
	default:
		writeErr(w, http.StatusNotFound, errors.New("backend exposes no stats"))
	}
}

// ListenAndServe runs the server on addr until ctx is cancelled, then
// shuts down gracefully with the given timeout.
func (s *Server) ListenAndServe(ctx context.Context, addr string, shutdownTimeout time.Duration) error {
	hs := &http.Server{
		Addr:              addr,
		Handler:           s,
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
		defer cancel()
		return hs.Shutdown(sctx)
	}
}
