package server

import (
	"net/http"
	"testing"

	"repro/internal/quorum"
)

// followerBackend refuses unstamped mutations the way an HA follower
// front-end does: with the leader's address when one is known.
type followerBackend struct {
	brokenLSNBackend
	leaderURL string
}

func (b followerBackend) Befriend(a, b2 string, weight float64) error {
	return &quorum.NotLeaderError{LeaderID: "fe2", LeaderURL: b.leaderURL}
}
func (b followerBackend) Tag(user, item, tag string) error {
	return &quorum.NotLeaderError{LeaderID: "fe2", LeaderURL: b.leaderURL}
}
func (b followerBackend) QuorumRole() (string, string, uint64) {
	return "follower", b.leaderURL, 7
}

// TestFollowerWriteRedirects pins the HA write-routing wire: a
// follower answers unstamped mutations with 307 and the leader's copy
// of the same endpoint, so clients that chase the redirect replay
// method and body against the leader.
func TestFollowerWriteRedirects(t *testing.T) {
	s, err := New(followerBackend{leaderURL: "http://leader:7777"})
	if err != nil {
		t.Fatal(err)
	}
	rec := doJSON(t, s, http.MethodPost, "/v1/friend", friendRequest{A: "a", B: "b", Weight: 0.5})
	if rec.Code != http.StatusTemporaryRedirect {
		t.Fatalf("follower friend: status %d, want 307; body %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("Location"); got != "http://leader:7777/v1/friend" {
		t.Fatalf("Location = %q, want the leader's /v1/friend", got)
	}
	rec = doJSON(t, s, http.MethodPost, "/v1/tag", tagRequest{User: "u", Item: "i", Tag: "t"})
	if rec.Code != http.StatusTemporaryRedirect {
		t.Fatalf("follower tag: status %d, want 307; body %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("Location"); got != "http://leader:7777/v1/tag" {
		t.Fatalf("Location = %q, want the leader's /v1/tag", got)
	}
}

// TestFollowerWriteMidElectionIs503 pins the no-leader case: with no
// address to redirect to, the refusal is a plain retry-later 503.
func TestFollowerWriteMidElectionIs503(t *testing.T) {
	s, err := New(followerBackend{})
	if err != nil {
		t.Fatal(err)
	}
	rec := doJSON(t, s, http.MethodPost, "/v1/friend", friendRequest{A: "a", B: "b", Weight: 0.5})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("mid-election friend: status %d, want 503; body %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("Location"); got != "" {
		t.Fatalf("Location = %q, want none", got)
	}
}

// TestHealthzQuorumHeaders pins the role surface health probes use: a
// RoleReporter backend stamps /healthz with its role, leader and term;
// a plain backend leaves the headers off entirely.
func TestHealthzQuorumHeaders(t *testing.T) {
	s, err := New(followerBackend{leaderURL: "http://leader:7777"})
	if err != nil {
		t.Fatal(err)
	}
	rec := doJSON(t, s, http.MethodGet, "/healthz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz: status %d", rec.Code)
	}
	if got := rec.Header().Get("X-Quorum-Role"); got != "follower" {
		t.Fatalf("X-Quorum-Role = %q, want follower", got)
	}
	if got := rec.Header().Get("X-Quorum-Leader"); got != "http://leader:7777" {
		t.Fatalf("X-Quorum-Leader = %q", got)
	}
	if got := rec.Header().Get("X-Quorum-Term"); got != "7" {
		t.Fatalf("X-Quorum-Term = %q, want 7", got)
	}

	plain, _ := newTestServer(t)
	rec = doJSON(t, plain, http.MethodGet, "/healthz", nil)
	if got := rec.Header().Get("X-Quorum-Role"); got != "" {
		t.Fatalf("plain backend X-Quorum-Role = %q, want unset", got)
	}
}

// TestSkipEndpoint drives /v1/skip: in-order skips advance the cursor
// like stamped mutations, duplicates are idempotent, gaps answer 409,
// zero and non-LSN backends answer 400, GET answers 405.
func TestSkipEndpoint(t *testing.T) {
	s, svc := newTestServer(t)

	rec := doJSON(t, s, http.MethodPost, "/v1/skip", skipRequest{LSN: 1})
	if rec.Code != http.StatusOK {
		t.Fatalf("skip 1: status %d body %s", rec.Code, rec.Body)
	}
	var ack AppliedResponse
	decode(t, rec, &ack)
	if ack.AppliedLSN != 1 {
		t.Fatalf("applied_lsn = %d, want 1", ack.AppliedLSN)
	}

	// Idempotent redelivery.
	rec = doJSON(t, s, http.MethodPost, "/v1/skip", skipRequest{LSN: 1})
	if rec.Code != http.StatusOK {
		t.Fatalf("skip 1 redelivered: status %d body %s", rec.Code, rec.Body)
	}

	// A skipped record interleaves with stamped applies on one cursor.
	rec = doJSON(t, s, http.MethodPost, "/v1/friend",
		friendRequest{A: "alice", B: "bob", Weight: 0.9, LSN: 2})
	if rec.Code != http.StatusOK {
		t.Fatalf("stamped friend after skip: status %d body %s", rec.Code, rec.Body)
	}
	if got := svc.AppliedLSN(); got != 2 {
		t.Fatalf("cursor = %d, want 2", got)
	}

	// Gap.
	rec = doJSON(t, s, http.MethodPost, "/v1/skip", skipRequest{LSN: 9})
	if rec.Code != http.StatusConflict {
		t.Fatalf("gap skip: status %d, want 409; body %s", rec.Code, rec.Body)
	}

	// Zero LSN, wrong method, LSN-less backend.
	rec = doJSON(t, s, http.MethodPost, "/v1/skip", skipRequest{})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("skip 0: status %d, want 400", rec.Code)
	}
	rec = doJSON(t, s, http.MethodGet, "/v1/skip", nil)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET skip: status %d, want 405", rec.Code)
	}
	bare, err := New(unavailableBackend{})
	if err != nil {
		t.Fatal(err)
	}
	rec = doJSON(t, bare, http.MethodPost, "/v1/skip", skipRequest{LSN: 1})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("skip on LSN-less backend: status %d, want 400", rec.Code)
	}
}
