package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"testing"

	"repro/internal/search"
)

// TestStampedMutations drives the LSN-stamped mutation wire: in-order
// records apply and answer the cursor, duplicates are idempotent, gaps
// answer 409, and /healthz reports the cursor in X-Applied-LSN.
func TestStampedMutations(t *testing.T) {
	s, svc := newTestServer(t)

	rec := doJSON(t, s, http.MethodPost, "/v1/friend",
		friendRequest{A: "alice", B: "bob", Weight: 0.9, LSN: 1})
	if rec.Code != http.StatusOK {
		t.Fatalf("stamped friend: status %d body %s", rec.Code, rec.Body)
	}
	var ack AppliedResponse
	decode(t, rec, &ack)
	if ack.AppliedLSN != 1 {
		t.Fatalf("applied_lsn = %d, want 1", ack.AppliedLSN)
	}

	// Duplicate delivery: idempotent, same cursor, no duplicate state.
	rec = doJSON(t, s, http.MethodPost, "/v1/friend",
		friendRequest{A: "alice", B: "bob", Weight: 0.9, LSN: 1})
	if rec.Code != http.StatusOK {
		t.Fatalf("redelivered friend: status %d body %s", rec.Code, rec.Body)
	}
	decode(t, rec, &ack)
	if ack.AppliedLSN != 1 {
		t.Fatalf("applied_lsn after redelivery = %d, want 1", ack.AppliedLSN)
	}

	rec = doJSON(t, s, http.MethodPost, "/v1/tag",
		tagRequest{User: "bob", Item: "luigis", Tag: "pizza", LSN: 2})
	if rec.Code != http.StatusOK {
		t.Fatalf("stamped tag: status %d body %s", rec.Code, rec.Body)
	}
	decode(t, rec, &ack)
	if ack.AppliedLSN != 2 {
		t.Fatalf("applied_lsn = %d, want 2", ack.AppliedLSN)
	}

	// Gap: record 9 at cursor 2 answers 409 and changes nothing.
	rec = doJSON(t, s, http.MethodPost, "/v1/friend",
		friendRequest{A: "x", B: "y", Weight: 0.5, LSN: 9})
	if rec.Code != http.StatusConflict {
		t.Fatalf("gap record: status %d, want 409; body %s", rec.Code, rec.Body)
	}
	if got := svc.AppliedLSN(); got != 2 {
		t.Fatalf("cursor after gap = %d, want 2", got)
	}

	// /healthz carries the cursor for replication-aware backends.
	rec = doJSON(t, s, http.MethodGet, "/healthz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz: status %d", rec.Code)
	}
	if got := rec.Header().Get("X-Applied-LSN"); got != "2" {
		t.Fatalf("X-Applied-LSN = %q, want \"2\"", got)
	}

	// Unstamped mutations keep the v1 wire byte-for-byte: 204, no body.
	rec = doJSON(t, s, http.MethodPost, "/v1/friend",
		friendRequest{A: "carol", B: "dave", Weight: 0.7})
	if rec.Code != http.StatusNoContent || rec.Body.Len() != 0 {
		t.Fatalf("plain friend: status %d body %q, want bare 204", rec.Code, rec.Body)
	}
	if got := svc.AppliedLSN(); got != 2 {
		t.Fatalf("cursor after plain mutation = %d, want 2 (untouched)", got)
	}
}

// brokenLSNBackend deterministically rejects nothing: its stamped
// applies fail WITHOUT advancing the cursor — the shape of an internal
// failure (full disk, broken log), not a validation rejection.
type brokenLSNBackend struct{}

func (brokenLSNBackend) Do(ctx context.Context, req search.Request) (search.Response, error) {
	return search.Response{}, errors.New("unused")
}
func (brokenLSNBackend) DoBatch(ctx context.Context, reqs []search.Request) []search.BatchResult {
	return nil
}
func (brokenLSNBackend) Befriend(a, b string, weight float64) error { return nil }
func (brokenLSNBackend) Tag(user, item, tag string) error           { return nil }
func (brokenLSNBackend) Users() []string                            { return nil }
func (brokenLSNBackend) BefriendAt(lsn uint64, a, b string, weight float64) error {
	return errors.New("disk full")
}
func (brokenLSNBackend) TagAt(lsn uint64, user, item, tag string) error {
	return errors.New("disk full")
}
func (brokenLSNBackend) AppliedLSN() uint64 { return 0 }

// TestStampedMutationInternalFailureIs500 pins the error split the
// replication protocol depends on: a stamped apply that fails while
// the cursor stays behind is an internal failure (500 — the sender
// must NOT count the record processed and will retry via catch-up),
// not a deterministic 400 rejection.
func TestStampedMutationInternalFailureIs500(t *testing.T) {
	s, err := New(brokenLSNBackend{})
	if err != nil {
		t.Fatal(err)
	}
	rec := doJSON(t, s, http.MethodPost, "/v1/friend",
		friendRequest{A: "a", B: "b", Weight: 0.5, LSN: 1})
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("internal apply failure: status %d, want 500; body %s", rec.Code, rec.Body)
	}
	rec = doJSON(t, s, http.MethodPost, "/v1/tag",
		tagRequest{User: "u", Item: "i", Tag: "t", LSN: 1})
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("internal apply failure: status %d, want 500; body %s", rec.Code, rec.Body)
	}
}

// TestStampedMutationDeterministicRejectionIs400 pins the other half:
// a rejection that advanced the cursor (a record every replica skips
// identically — here a self-edge on a real social backend) stays 400.
func TestStampedMutationDeterministicRejectionIs400(t *testing.T) {
	s, svc := newTestServer(t)
	rec := doJSON(t, s, http.MethodPost, "/v1/friend",
		friendRequest{A: "x", B: "x", Weight: 0.5, LSN: 1})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("self-edge record: status %d, want 400; body %s", rec.Code, rec.Body)
	}
	if got := svc.AppliedLSN(); got != 1 {
		t.Fatalf("cursor = %d, want 1 (processed in lockstep)", got)
	}
}

// unavailableBackend fails every mutation with the unavailable class —
// the shape of a fleet front-end with no live replica.
type unavailableBackend struct{ brokenLSNBackend }

func (unavailableBackend) Befriend(a, b string, weight float64) error {
	return fmt.Errorf("%w: no live replica", search.ErrUnavailable)
}
func (unavailableBackend) Tag(user, item, tag string) error {
	return fmt.Errorf("%w: no live replica", search.ErrUnavailable)
}

// TestUnstampedMutationUnavailableIs503 pins the retry-later class on
// the plain mutation wire: a serving-substrate failure must not be
// answered as a 400 validation rejection.
func TestUnstampedMutationUnavailableIs503(t *testing.T) {
	s, err := New(unavailableBackend{})
	if err != nil {
		t.Fatal(err)
	}
	rec := doJSON(t, s, http.MethodPost, "/v1/friend", friendRequest{A: "a", B: "b", Weight: 0.5})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("unavailable friend: status %d, want 503; body %s", rec.Code, rec.Body)
	}
	rec = doJSON(t, s, http.MethodPost, "/v1/tag", tagRequest{User: "u", Item: "i", Tag: "t"})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("unavailable tag: status %d, want 503; body %s", rec.Code, rec.Body)
	}
}

// TestReplogEndpointWithoutSource pins the 404 for backends that have
// no replication log (every non-front-end backend).
func TestReplogEndpointWithoutSource(t *testing.T) {
	s, _ := newTestServer(t)
	if rec := doJSON(t, s, http.MethodGet, "/v2/replog", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("/v2/replog on a replica backend: status %d, want 404", rec.Code)
	}
	if rec := doJSON(t, s, http.MethodPost, "/v2/replog", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v2/replog: status %d, want 405", rec.Code)
	}
}
