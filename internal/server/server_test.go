package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/durable"
	"repro/internal/social"
)

func newTestServer(t *testing.T) (*Server, *social.Service) {
	t.Helper()
	cfg := social.DefaultServiceConfig()
	cfg.AutoCompactEvery = 0 // compact on every write: reads always current
	svc, err := social.NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(svc)
	if err != nil {
		t.Fatal(err)
	}
	return s, svc
}

func doJSON(t *testing.T, h http.Handler, method, path string, body interface{}) *httptest.ResponseRecorder {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func seedHTTP(t *testing.T, s *Server) {
	t.Helper()
	for _, m := range []friendRequest{
		{A: "alice", B: "bob", Weight: 0.9},
		{A: "bob", B: "carol", Weight: 0.8},
	} {
		if rec := doJSON(t, s, http.MethodPost, "/v1/friend", m); rec.Code != http.StatusNoContent {
			t.Fatalf("friend %+v: status %d body %s", m, rec.Code, rec.Body)
		}
	}
	for _, m := range []tagRequest{
		{User: "bob", Item: "luigis", Tag: "pizza"},
		{User: "bob", Item: "luigis", Tag: "italian"},
		{User: "carol", Item: "marios", Tag: "pizza"},
	} {
		if rec := doJSON(t, s, http.MethodPost, "/v1/tag", m); rec.Code != http.StatusNoContent {
			t.Fatalf("tag %+v: status %d body %s", m, rec.Code, rec.Body)
		}
	}
}

func TestNewRejectsNilBackend(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("nil backend accepted")
	}
}

func TestEndToEndFlow(t *testing.T) {
	s, _ := newTestServer(t)
	seedHTTP(t, s)

	rec := doJSON(t, s, http.MethodGet, "/v1/search?seeker=alice&tags=pizza&k=2", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("search: status %d body %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var resp SearchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 2 || resp.Results[0].Item != "luigis" {
		t.Fatalf("results = %+v, want luigis first", resp.Results)
	}

	rec = doJSON(t, s, http.MethodGet, "/v1/users", nil)
	var users map[string][]string
	if err := json.Unmarshal(rec.Body.Bytes(), &users); err != nil {
		t.Fatal(err)
	}
	if len(users["users"]) != 3 {
		t.Fatalf("users = %v", users)
	}

	rec = doJSON(t, s, http.MethodGet, "/v1/stats", nil)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "\"Users\":3") {
		t.Fatalf("stats: %d %s", rec.Code, rec.Body)
	}

	rec = doJSON(t, s, http.MethodGet, "/healthz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz: %d", rec.Code)
	}
}

func TestSearchMultiTagAndRepeatedParams(t *testing.T) {
	s, _ := newTestServer(t)
	seedHTTP(t, s)
	// Comma-separated and repeated tags params both work, whitespace is
	// trimmed, and the default k applies.
	rec := doJSON(t, s, http.MethodGet, "/v1/search?seeker=alice&tags=pizza,%20italian", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d body %s", rec.Code, rec.Body)
	}
	var a SearchResponse
	json.Unmarshal(rec.Body.Bytes(), &a)
	rec = doJSON(t, s, http.MethodGet, "/v1/search?seeker=alice&tags=pizza&tags=italian", nil)
	var b SearchResponse
	json.Unmarshal(rec.Body.Bytes(), &b)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("comma form %+v != repeated form %+v", a, b)
	}
	if len(a.Results) == 0 || a.Results[0].Item != "luigis" {
		t.Fatalf("multi-tag results = %+v", a.Results)
	}
}

func TestClientErrors(t *testing.T) {
	s, _ := newTestServer(t)
	seedHTTP(t, s)
	cases := []struct {
		name   string
		method string
		path   string
		body   string
		want   int
	}{
		{"friend wrong method", http.MethodGet, "/v1/friend", "", http.StatusMethodNotAllowed},
		{"tag wrong method", http.MethodGet, "/v1/tag", "", http.StatusMethodNotAllowed},
		{"search wrong method", http.MethodPost, "/v1/search?seeker=a&tags=b", "", http.StatusMethodNotAllowed},
		{"friend bad json", http.MethodPost, "/v1/friend", "{", http.StatusBadRequest},
		{"friend unknown field", http.MethodPost, "/v1/friend", `{"a":"x","b":"y","weight":0.5,"extra":1}`, http.StatusBadRequest},
		{"friend trailing garbage", http.MethodPost, "/v1/friend", `{"a":"x","b":"y","weight":0.5}{}`, http.StatusBadRequest},
		{"friend bad weight", http.MethodPost, "/v1/friend", `{"a":"x","b":"y","weight":7}`, http.StatusBadRequest},
		{"tag empty name", http.MethodPost, "/v1/tag", `{"user":"","item":"i","tag":"t"}`, http.StatusBadRequest},
		{"search missing seeker", http.MethodGet, "/v1/search?tags=pizza", "", http.StatusBadRequest},
		{"search missing tags", http.MethodGet, "/v1/search?seeker=alice", "", http.StatusBadRequest},
		{"search blank tags", http.MethodGet, "/v1/search?seeker=alice&tags=,%20,", "", http.StatusBadRequest},
		{"search bad k", http.MethodGet, "/v1/search?seeker=alice&tags=pizza&k=zero", "", http.StatusBadRequest},
		{"search negative k", http.MethodGet, "/v1/search?seeker=alice&tags=pizza&k=-1", "", http.StatusBadRequest},
		{"search unknown seeker", http.MethodGet, "/v1/search?seeker=nobody&tags=pizza", "", http.StatusBadRequest},
		{"search unknown tag", http.MethodGet, "/v1/search?seeker=alice&tags=quantum", "", http.StatusBadRequest},
	}
	for _, tc := range cases {
		req := httptest.NewRequest(tc.method, tc.path, strings.NewReader(tc.body))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != tc.want {
			t.Errorf("%s: status %d, want %d (body %s)", tc.name, rec.Code, tc.want, rec.Body)
		}
		if tc.want == http.StatusBadRequest && !strings.Contains(rec.Body.String(), "error") {
			t.Errorf("%s: no error body: %s", tc.name, rec.Body)
		}
	}
}

func TestDurableBackend(t *testing.T) {
	svc, err := durable.Open(t.TempDir(), durable.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	s, err := New(svc)
	if err != nil {
		t.Fatal(err)
	}
	seedHTTP(t, s)
	rec := doJSON(t, s, http.MethodGet, "/v1/search?seeker=alice&tags=pizza&k=1", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("search on durable backend: %d %s", rec.Code, rec.Body)
	}
	// Durable stats include the durability counters.
	rec = doJSON(t, s, http.MethodGet, "/v1/stats", nil)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "LogSegments") {
		t.Fatalf("durable stats: %d %s", rec.Code, rec.Body)
	}
}

func TestEmptySearchReturnsEmptyArrayNotNull(t *testing.T) {
	s, _ := newTestServer(t)
	seedHTTP(t, s)
	// dave exists after this tag but has no friends: result may be empty
	// once none of his ball tagged anything.
	doJSON(t, s, http.MethodPost, "/v1/tag", tagRequest{User: "dave", Item: "thing", Tag: "pizza"})
	rec := doJSON(t, s, http.MethodGet, "/v1/search?seeker=dave&tags=italian&k=3", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `"results":[]`) {
		t.Fatalf("empty search body = %s, want empty array", rec.Body)
	}
}

func TestConcurrentRequests(t *testing.T) {
	s, _ := newTestServer(t)
	seedHTTP(t, s)
	var wg sync.WaitGroup
	errs := make(chan string, 32)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if i%3 == 0 {
					rec := doJSON(t, s, http.MethodPost, "/v1/tag",
						tagRequest{User: fmt.Sprintf("w%d", id), Item: fmt.Sprintf("item%d-%d", id, i), Tag: "pizza"})
					if rec.Code != http.StatusNoContent {
						errs <- fmt.Sprintf("tag: %d %s", rec.Code, rec.Body)
						return
					}
				} else {
					rec := doJSON(t, s, http.MethodGet, "/v1/search?seeker=alice&tags=pizza&k=3", nil)
					if rec.Code != http.StatusOK {
						errs <- fmt.Sprintf("search: %d %s", rec.Code, rec.Body)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func TestListenAndServeGracefulShutdown(t *testing.T) {
	s, _ := newTestServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.ListenAndServe(ctx, "127.0.0.1:0", time.Second) }()
	// Give the listener a moment, then cancel; shutdown must complete
	// promptly and without error.
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down")
	}
}

func TestSearchBatchEndpoint(t *testing.T) {
	s, _ := newTestServer(t)
	seedHTTP(t, s)
	body := map[string]interface{}{
		"queries": []map[string]interface{}{
			{"seeker": "alice", "tags": []string{"pizza"}, "k": 2},
			{"seeker": "nobody", "tags": []string{"pizza"}},
			{"seeker": "alice", "tags": []string{" pizza ", ""}},     // normalized like GET
			{"seeker": "carol", "tags": []string{"italian"}, "k": 3}, // empty but valid answer
		},
	}
	rec := doJSON(t, s, http.MethodPost, "/v1/search/batch", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d body %s", rec.Code, rec.Body)
	}
	var resp BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 4 {
		t.Fatalf("results = %+v", resp.Results)
	}
	if len(resp.Results[0].Results) != 2 || resp.Results[0].Results[0].Item != "luigis" {
		t.Fatalf("query 0: %+v", resp.Results[0])
	}
	if resp.Results[1].Error == "" || resp.Results[1].Results != nil {
		t.Fatalf("query 1 (unknown seeker): %+v", resp.Results[1])
	}
	if resp.Results[2].Error != "" || len(resp.Results[2].Results) == 0 {
		t.Fatalf("query 2 (tag normalization): %+v", resp.Results[2])
	}
	if resp.Results[3].Error != "" {
		t.Fatalf("query 3: %+v", resp.Results[3])
	}
	// Batch answer 0 must match the single-query endpoint.
	rec = doJSON(t, s, http.MethodGet, "/v1/search?seeker=alice&tags=pizza&k=2", nil)
	var single SearchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &single); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(single.Results) != fmt.Sprint(resp.Results[0].Results) {
		t.Fatalf("batch %+v != single %+v", resp.Results[0].Results, single.Results)
	}
	// A success entry with no matches encodes as an empty array, never
	// null (dave is isolated, so his italian search matches nothing).
	doJSON(t, s, http.MethodPost, "/v1/tag", tagRequest{User: "dave", Item: "thing", Tag: "pizza"})
	rec = doJSON(t, s, http.MethodPost, "/v1/search/batch", map[string]interface{}{
		"queries": []map[string]interface{}{{"seeker": "dave", "tags": []string{"italian"}}},
	})
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"results":[]`) {
		t.Fatalf("empty batch entry: %d %s", rec.Code, rec.Body)
	}
}

func TestSearchBatchCacheCountersOnStats(t *testing.T) {
	s, _ := newTestServer(t)
	seedHTTP(t, s)
	body := map[string]interface{}{
		"queries": []map[string]interface{}{
			{"seeker": "alice", "tags": []string{"pizza"}},
			{"seeker": "alice", "tags": []string{"italian"}},
			{"seeker": "alice", "tags": []string{"pizza"}, "k": 1},
		},
	}
	if rec := doJSON(t, s, http.MethodPost, "/v1/search/batch", body); rec.Code != http.StatusOK {
		t.Fatalf("batch: %d %s", rec.Code, rec.Body)
	}
	rec := doJSON(t, s, http.MethodGet, "/v1/stats", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: %d", rec.Code)
	}
	var stats struct {
		SeekerCache struct {
			Hits, Misses, Invalidations, Evictions int64
		}
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.SeekerCache.Misses == 0 || stats.SeekerCache.Hits == 0 {
		t.Fatalf("cache counters not exposed: %s", rec.Body)
	}
}

func TestBatchClientErrors(t *testing.T) {
	s, _ := newTestServer(t)
	seedHTTP(t, s)
	tooMany := `{"queries":[` + strings.Repeat(`{"seeker":"alice","tags":["pizza"]},`, MaxBatchQueries) +
		`{"seeker":"alice","tags":["pizza"]}]}`
	oversized := `{"queries":[{"seeker":"` + strings.Repeat("x", maxBodyBytes+1) + `","tags":["pizza"]}]}`
	cases := []struct {
		name   string
		method string
		body   string
		want   int
	}{
		{"wrong method", http.MethodGet, "", http.StatusMethodNotAllowed},
		{"bad json", http.MethodPost, "{", http.StatusBadRequest},
		{"unknown field", http.MethodPost, `{"queries":[],"extra":1}`, http.StatusBadRequest},
		{"trailing garbage", http.MethodPost, `{"queries":[{"seeker":"alice","tags":["pizza"]}]}{}`, http.StatusBadRequest},
		{"no queries key", http.MethodPost, `{}`, http.StatusBadRequest},
		{"empty queries", http.MethodPost, `{"queries":[]}`, http.StatusBadRequest},
		{"too many queries", http.MethodPost, tooMany, http.StatusBadRequest},
		{"oversized body", http.MethodPost, oversized, http.StatusBadRequest},
		{"queries wrong type", http.MethodPost, `{"queries":"alice"}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		req := httptest.NewRequest(tc.method, "/v1/search/batch", strings.NewReader(tc.body))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != tc.want {
			t.Errorf("%s: status %d, want %d (body %.120s)", tc.name, rec.Code, tc.want, rec.Body)
		}
	}
	// Per-query validation failures are NOT batch failures: the envelope
	// is fine, so the response is 200 with per-entry errors. An explicit
	// k of 0 is NOT an error: search.Request.Normalize substitutes the
	// default, the same policy as an absent k (negative k stays a
	// per-query error everywhere).
	rec := doJSON(t, s, http.MethodPost, "/v1/search/batch", map[string]interface{}{
		"queries": []map[string]interface{}{
			{"seeker": "", "tags": []string{"pizza"}},
			{"seeker": "alice"},
			{"seeker": "alice", "tags": []string{"pizza"}, "k": -1},
			{"seeker": "alice", "tags": []string{"pizza"}, "k": 0}, // defaulted, not rejected
			{"seeker": "alice", "tags": []string{"pizza"}},
		},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("mixed batch: status %d body %s", rec.Code, rec.Body)
	}
	var resp BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if resp.Results[i].Error == "" {
			t.Errorf("query %d: expected per-query error, got %+v", i, resp.Results[i])
		}
	}
	for i := 3; i < 5; i++ {
		if resp.Results[i].Error != "" || len(resp.Results[i].Results) == 0 {
			t.Errorf("query %d: %+v", i, resp.Results[i])
		}
	}
}
