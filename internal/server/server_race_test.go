package server

// Concurrency tests for the HTTP layer: searches (single and batch)
// racing friend/tag mutations against both backends. They assert only
// invariants that hold under interleaving (status codes, well-formed
// bodies); the -race run in CI is the real check.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"

	"repro/internal/durable"
	"repro/internal/social"
)

func hammer(t *testing.T, s *Server) {
	t.Helper()
	seedHTTP(t, s)
	const workers, iters = 8, 25
	var wg sync.WaitGroup
	errs := make(chan string, workers*iters)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch i % 4 {
				case 0:
					rec := doJSON(t, s, http.MethodPost, "/v1/friend",
						friendRequest{A: fmt.Sprintf("w%d", id), B: "alice", Weight: 0.6})
					if rec.Code != http.StatusNoContent {
						errs <- fmt.Sprintf("friend: %d %s", rec.Code, rec.Body)
						return
					}
				case 1:
					rec := doJSON(t, s, http.MethodPost, "/v1/tag",
						tagRequest{User: fmt.Sprintf("w%d", id), Item: fmt.Sprintf("item%d-%d", id, i), Tag: "pizza"})
					if rec.Code != http.StatusNoContent {
						errs <- fmt.Sprintf("tag: %d %s", rec.Code, rec.Body)
						return
					}
				case 2:
					rec := doJSON(t, s, http.MethodGet, "/v1/search?seeker=alice&tags=pizza&k=3", nil)
					if rec.Code != http.StatusOK {
						errs <- fmt.Sprintf("search: %d %s", rec.Code, rec.Body)
						return
					}
					var resp SearchResponse
					if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
						errs <- fmt.Sprintf("search body: %v", err)
						return
					}
				default:
					rec := doJSON(t, s, http.MethodPost, "/v1/search/batch", map[string]interface{}{
						"queries": []map[string]interface{}{
							{"seeker": "alice", "tags": []string{"pizza"}, "k": 3},
							{"seeker": "bob", "tags": []string{"pizza", "italian"}, "k": 2},
						},
					})
					if rec.Code != http.StatusOK {
						errs <- fmt.Sprintf("batch: %d %s", rec.Code, rec.Body)
						return
					}
					var resp BatchResponse
					if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
						errs <- fmt.Sprintf("batch body: %v", err)
						return
					}
					if len(resp.Results) != 2 {
						errs <- fmt.Sprintf("batch results: %+v", resp.Results)
						return
					}
					for j, e := range resp.Results {
						if e.Error != "" {
							errs <- fmt.Sprintf("batch entry %d: %s", j, e.Error)
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func TestConcurrentMixedTrafficSocialBackend(t *testing.T) {
	s, _ := newTestServer(t)
	hammer(t, s)
}

func TestConcurrentMixedTrafficSocialBackendLazyCompaction(t *testing.T) {
	cfg := social.DefaultServiceConfig()
	cfg.AutoCompactEvery = 5 // mutations and invalidations race searches
	cfg.SeekerCacheSize = 4  // force evictions too
	svc, err := social.NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(svc)
	if err != nil {
		t.Fatal(err)
	}
	hammer(t, s)
}

func TestConcurrentMixedTrafficDurableBackend(t *testing.T) {
	if testing.Short() {
		t.Skip("durable backend fsyncs per mutation")
	}
	cfg := durable.DefaultConfig()
	cfg.CheckpointEvery = 50 // checkpoints race traffic
	svc, err := durable.Open(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	s, err := New(svc)
	if err != nil {
		t.Fatal(err)
	}
	hammer(t, s)
}
