package social

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/proximity"
	"repro/internal/search"
)

// communityWorld builds a service over `communities` disjoint chains of
// `size` users each (user c<i>u<j>), every user tagging one item with
// the shared tag "pizza". Horizons never cross communities, which is
// what makes edge-scoped invalidation measurable.
func communityWorld(t testing.TB, cfg ServiceConfig, communities, size int) *Service {
	t.Helper()
	cfg.Proximity = proximity.Params{Alpha: 0.8, SelfWeight: 1, MinSigma: 0.01}
	svc, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < communities; c++ {
		for u := 0; u < size-1; u++ {
			if err := svc.Befriend(comUser(c, u), comUser(c, u+1), 0.9); err != nil {
				t.Fatal(err)
			}
		}
		for u := 0; u < size; u++ {
			if err := svc.Tag(comUser(c, u), fmt.Sprintf("c%di%d", c, u), "pizza"); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := svc.Flush(); err != nil {
		t.Fatal(err)
	}
	return svc
}

func comUser(c, u int) string { return fmt.Sprintf("c%du%d", c, u) }

func queryAll(t testing.TB, svc *Service, communities, size int) {
	t.Helper()
	ctx := context.Background()
	for c := 0; c < communities; c++ {
		for u := 0; u < size; u++ {
			if _, err := svc.Do(ctx, search.Request{Seeker: comUser(c, u), Tags: []string{"pizza"}, K: 5}); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestEdgeScopedInvalidationRetainsHitRate is the acceptance test for
// the sharded serving spine: under a mixed workload where one community
// mutates while every community queries, edge-scoped invalidation must
// retain a ≥ 80% hit rate while the old global-generation behaviour
// (EdgeScopeLimit < 0) falls below 20%.
func TestEdgeScopedInvalidationRetainsHitRate(t *testing.T) {
	const communities, size, rounds = 32, 6, 10
	run := func(edgeScopeLimit int) float64 {
		cfg := DefaultServiceConfig()
		cfg.AutoCompactEvery = 0 // compact (and invalidate) on every write
		cfg.SeekerCacheSize = 1024
		cfg.EdgeScopeLimit = edgeScopeLimit
		svc := communityWorld(t, cfg, communities, size)
		queryAll(t, svc, communities, size) // warm every seeker
		for r := 0; r < rounds; r++ {
			// The mutation churn is confined to community 0.
			if err := svc.Befriend(comUser(0, r%(size-1)), comUser(0, r%(size-1)+1), 0.9); err != nil {
				t.Fatal(err)
			}
			queryAll(t, svc, communities, size)
		}
		return svc.Stats().SeekerCache.HitRate()
	}
	scoped := run(0)  // default: edge-scoped
	global := run(-1) // pre-sharding behaviour: every friend compaction is global
	t.Logf("hit rate: edge-scoped %.3f, global-generation %.3f", scoped, global)
	if scoped < 0.8 {
		t.Errorf("edge-scoped hit rate %.3f under mutation churn, want >= 0.8", scoped)
	}
	if global >= 0.2 {
		t.Errorf("global-generation hit rate %.3f, expected < 0.2 (is the control broken?)", global)
	}
	if scoped <= global {
		t.Errorf("edge scoping (%.3f) did not beat global invalidation (%.3f)", scoped, global)
	}
}

// TestEdgeScopedInvalidationSparesUnrelatedSeekers checks the scoping
// mechanics end to end: a mutation in one community must cold-start
// only that community's seekers.
func TestEdgeScopedInvalidationSparesUnrelatedSeekers(t *testing.T) {
	cfg := DefaultServiceConfig()
	cfg.AutoCompactEvery = 0
	svc := communityWorld(t, cfg, 2, 4)
	ctx := context.Background()
	do := func(seeker string) *search.Explain {
		resp, err := svc.Do(ctx, search.Request{Seeker: seeker, Tags: []string{"pizza"}, K: 5, Explain: true})
		if err != nil {
			t.Fatal(err)
		}
		return resp.Explain
	}
	do(comUser(0, 0))
	do(comUser(1, 0))
	if err := svc.Befriend(comUser(0, 2), comUser(0, 3), 0.95); err != nil {
		t.Fatal(err)
	}
	if ex := do(comUser(1, 0)); !ex.CacheHit {
		t.Errorf("unrelated community cold-started by the mutation: %+v", ex)
	}
	if ex := do(comUser(0, 0)); ex.CacheHit {
		t.Errorf("mutated community served a stale horizon: %+v", ex)
	}
	// Per-shard stats must account for every resident entry.
	st := svc.Stats()
	if len(st.SeekerCacheShards) != DefaultCacheShards {
		t.Fatalf("%d shard snapshots, want %d", len(st.SeekerCacheShards), DefaultCacheShards)
	}
	total := 0
	for _, sh := range st.SeekerCacheShards {
		total += sh.Entries
	}
	if total != st.SeekerCacheEntries {
		t.Fatalf("shard entries sum %d != fleet entries %d", total, st.SeekerCacheEntries)
	}
}

// TestNoCacheBypassesSeekerCache: a NoCache request must neither read
// nor warm the cache.
func TestNoCacheBypassesSeekerCache(t *testing.T) {
	svc := pizzaWorld(t, 0)
	ctx := context.Background()
	req := search.Request{Seeker: "alice", Tags: []string{"pizza"}, K: 5, NoCache: true, Explain: true}
	for i := 0; i < 2; i++ {
		resp, err := svc.Do(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Explain.CacheHit {
			t.Fatal("NoCache request reported a cache hit")
		}
	}
	st := svc.Stats()
	if st.SeekerCache.Hits != 0 || st.SeekerCache.Misses != 0 || st.SeekerCacheEntries != 0 {
		t.Fatalf("NoCache requests touched the cache: %+v", st.SeekerCache)
	}
	// The answers themselves must match the cached path.
	cold, err := svc.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := svc.Do(ctx, search.Request{Seeker: "alice", Tags: []string{"pizza"}, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold.Results, warm.Results) {
		t.Fatalf("NoCache answer %+v != cached answer %+v", cold.Results, warm.Results)
	}
}

// TestCachedPathMatchesColdExactAfterMutations is the edge-scoped
// correctness property test: after ANY sequence of friend/tag
// mutations, the cached-path ModeExact answer must equal a cold
// ModeExact answer (NoCache: independently re-expanded horizon) for
// EVERY seeker — i.e. edge-scoped invalidation never leaves a stale
// horizon behind.
func TestCachedPathMatchesColdExactAfterMutations(t *testing.T) {
	const users, steps = 18, 300
	cfg := DefaultServiceConfig()
	cfg.Proximity = proximity.Params{Alpha: 0.6, SelfWeight: 1, MinSigma: 0.01}
	cfg.AutoCompactEvery = 3 // non-trivial compaction cadence
	cfg.SeekerCacheSize = 64
	cfg.CacheShards = 3
	svc, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rng := rand.New(rand.NewSource(11))
	user := func() string { return fmt.Sprintf("u%d", rng.Intn(users)) }
	for step := 0; step < steps; step++ {
		switch rng.Intn(3) {
		case 0:
			a, b := user(), user()
			if a == b {
				continue
			}
			if err := svc.Befriend(a, b, 0.1+0.9*rng.Float64()); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		case 1:
			if err := svc.Tag(user(), fmt.Sprintf("i%d", rng.Intn(30)), fmt.Sprintf("t%d", rng.Intn(4))); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		default:
			// Query a random seeker through the cache — this both checks
			// and warms it, so later mutations have entries to invalidate.
			seeker, tag := user(), fmt.Sprintf("t%d", rng.Intn(4))
			base := search.Request{Seeker: seeker, Tags: []string{tag}, K: 1 + rng.Intn(8), Mode: search.ModeExact}
			cachedReq, coldReq := base, base
			coldReq.NoCache = true
			cached, e1 := svc.Do(ctx, cachedReq)
			cold, e2 := svc.Do(ctx, coldReq)
			if (e1 == nil) != (e2 == nil) {
				t.Fatalf("step %d: error divergence: %v vs %v", step, e1, e2)
			}
			if e1 == nil && !reflect.DeepEqual(cached.Results, cold.Results) {
				t.Fatalf("step %d seeker %s: cached %+v != cold %+v", step, seeker, cached.Results, cold.Results)
			}
		}
	}
	// Final sweep: every known seeker, cached vs cold.
	if err := svc.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, seeker := range svc.Users() {
		for tg := 0; tg < 4; tg++ {
			base := search.Request{Seeker: seeker, Tags: []string{fmt.Sprintf("t%d", tg)}, K: 10, Mode: search.ModeExact}
			cold := base
			cold.NoCache = true
			r1, e1 := svc.Do(ctx, base)
			r2, e2 := svc.Do(ctx, cold)
			if (e1 == nil) != (e2 == nil) {
				t.Fatalf("final sweep %s/t%d: %v vs %v", seeker, tg, e1, e2)
			}
			if e1 == nil && !reflect.DeepEqual(r1.Results, r2.Results) {
				t.Fatalf("final sweep %s/t%d: cached %+v != cold %+v", seeker, tg, r1.Results, r2.Results)
			}
		}
	}
	if st := svc.Stats(); st.SeekerCache.Hits == 0 || st.SeekerCache.Invalidations == 0 {
		t.Fatalf("stream did not exercise the sharded cache: %+v", st.SeekerCache)
	}
}

// TestShardedCacheConcurrentMutations is the -race stress test across
// shards: concurrent Befriends, tag writes and cached lookups
// interleave, then — once writers quiesce — every seeker's cached-path
// answer must equal a cold ModeExact answer (no stale horizon is ever
// left serveable).
func TestShardedCacheConcurrentMutations(t *testing.T) {
	const users = 16
	cfg := DefaultServiceConfig()
	cfg.Proximity = proximity.Params{Alpha: 0.6, SelfWeight: 1, MinSigma: 0.01}
	cfg.AutoCompactEvery = 2
	cfg.SeekerCacheSize = 64
	cfg.CacheShards = 4
	svc, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Seed the universe so queries have names to resolve.
	for u := 0; u < users-1; u++ {
		if err := svc.Befriend(fmt.Sprintf("u%d", u), fmt.Sprintf("u%d", u+1), 0.8); err != nil {
			t.Fatal(err)
		}
	}
	for u := 0; u < users; u++ {
		if err := svc.Tag(fmt.Sprintf("u%d", u), fmt.Sprintf("i%d", u), "t"); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Flush(); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ { // mutators
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < 150; i++ {
				a, b := rng.Intn(users), rng.Intn(users)
				if a == b {
					continue
				}
				if i%3 == 0 {
					if err := svc.Tag(fmt.Sprintf("u%d", a), fmt.Sprintf("i%d", rng.Intn(30)), "t"); err != nil {
						t.Error(err)
						return
					}
				} else if err := svc.Befriend(fmt.Sprintf("u%d", a), fmt.Sprintf("u%d", b), 0.1+0.9*rng.Float64()); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for w := 0; w < 4; w++ { // readers across all shards
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				seeker := fmt.Sprintf("u%d", (w*7+i)%users)
				if _, err := svc.Do(ctx, search.Request{Seeker: seeker, Tags: []string{"t"}, K: 5}); err != nil {
					t.Errorf("reader %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// Quiesced: the cached path must agree with a cold re-expansion for
	// every seeker — the "no stale horizon is ever served" assertion.
	if err := svc.Flush(); err != nil {
		t.Fatal(err)
	}
	for u := 0; u < users; u++ {
		seeker := fmt.Sprintf("u%d", u)
		base := search.Request{Seeker: seeker, Tags: []string{"t"}, K: 10, Mode: search.ModeExact}
		cold := base
		cold.NoCache = true
		r1, e1 := svc.Do(ctx, base)
		r2, e2 := svc.Do(ctx, cold)
		if e1 != nil || e2 != nil {
			t.Fatalf("seeker %s: %v / %v", seeker, e1, e2)
		}
		if !reflect.DeepEqual(r1.Results, r2.Results) {
			t.Fatalf("seeker %s: cached %+v != cold %+v (stale horizon survived)", seeker, r1.Results, r2.Results)
		}
	}
}

// TestDuplicateBefriendsDoNotOverflowEdgeScope: re-declaring the same
// edge many times within one compaction window must not count against
// EdgeScopeLimit (which caps DISTINCT edges) and so must not force a
// global invalidation.
func TestDuplicateBefriendsDoNotOverflowEdgeScope(t *testing.T) {
	cfg := DefaultServiceConfig()
	cfg.AutoCompactEvery = 500 // one wide compaction window
	cfg.EdgeScopeLimit = 4
	svc := communityWorld(t, cfg, 2, 4)
	ctx := context.Background()
	do := func(seeker string) *search.Explain {
		resp, err := svc.Do(ctx, search.Request{Seeker: seeker, Tags: []string{"pizza"}, K: 5, Explain: true})
		if err != nil {
			t.Fatal(err)
		}
		return resp.Explain
	}
	do(comUser(1, 0)) // warm an unrelated community's seeker
	// 20 re-declarations of one community-0 edge (both orders): one
	// distinct edge, far below the limit of 4.
	for i := 0; i < 10; i++ {
		if err := svc.Befriend(comUser(0, 0), comUser(0, 1), 0.9); err != nil {
			t.Fatal(err)
		}
		if err := svc.Befriend(comUser(0, 1), comUser(0, 0), 0.9); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Flush(); err != nil {
		t.Fatal(err)
	}
	if ex := do(comUser(1, 0)); !ex.CacheHit {
		t.Fatal("duplicate edge declarations overflowed the edge scope and invalidated globally")
	}
}
