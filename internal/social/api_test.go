package social

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"testing"
	"time"

	"repro/internal/search"
)

// apiWorld builds the standard small test corpus.
func apiWorld(t *testing.T, cfg ServiceConfig) *Service {
	t.Helper()
	svc, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	friends := []struct {
		a, b string
		w    float64
	}{
		{"alice", "bob", 0.9}, {"bob", "carol", 0.8}, {"alice", "dave", 0.5},
	}
	for _, f := range friends {
		if err := svc.Befriend(f.a, f.b, f.w); err != nil {
			t.Fatal(err)
		}
	}
	tags := []struct{ u, i, tg string }{
		{"bob", "luigis", "pizza"}, {"bob", "luigis", "italian"},
		{"carol", "marios", "pizza"}, {"dave", "marios", "pizza"},
	}
	for _, tg := range tags {
		if err := svc.Tag(tg.u, tg.i, tg.tg); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Flush(); err != nil {
		t.Fatal(err)
	}
	return svc
}

func TestDoMatchesSearch(t *testing.T) {
	cfg := DefaultServiceConfig()
	cfg.AutoCompactEvery = 0
	svc := apiWorld(t, cfg)

	want, err := svc.Search("alice", []string{"pizza"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := svc.Do(context.Background(), search.Request{
		Seeker: "alice", Tags: []string{"pizza"}, K: 5, Mode: search.ModeExact,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != len(want) {
		t.Fatalf("Do %d results, Search %d", len(resp.Results), len(want))
	}
	for i := range want {
		if want[i].Item != resp.Results[i].Item || want[i].Score != resp.Results[i].Score {
			t.Fatalf("rank %d: Do %+v, Search %+v", i, resp.Results[i], want[i])
		}
	}
}

func TestDoModesAgreeOnItemSets(t *testing.T) {
	cfg := DefaultServiceConfig()
	cfg.AutoCompactEvery = 0
	svc := apiWorld(t, cfg)
	ctx := context.Background()

	// All modes answer the same item *set*; order may differ under
	// near-ties because auto/approx report certified lower bounds.
	sets := map[string][]string{}
	for _, mode := range []search.Mode{search.ModeAuto, search.ModeExact, search.ModeApprox} {
		resp, err := svc.Do(ctx, search.Request{
			Seeker: "alice", Tags: []string{"pizza"}, K: 2, Mode: mode, Explain: true,
		})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		items := make([]string, len(resp.Results))
		for i, r := range resp.Results {
			items[i] = r.Item
		}
		sort.Strings(items)
		sets[mode.String()] = items
		if resp.Explain == nil || resp.Explain.Mode != mode.String() {
			t.Fatalf("%v: explain %+v", mode, resp.Explain)
		}
	}
	for mode, items := range sets {
		if fmt.Sprint(items) != fmt.Sprint(sets["exact"]) {
			t.Fatalf("mode %s item set %v != exact %v", mode, items, sets["exact"])
		}
	}
}

func TestDoExplainAndCacheProvenance(t *testing.T) {
	cfg := DefaultServiceConfig()
	cfg.AutoCompactEvery = 0
	svc := apiWorld(t, cfg)
	ctx := context.Background()
	req := search.Request{Seeker: "alice", Tags: []string{"pizza"}, K: 2, Explain: true}

	first, err := svc.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	second, err := svc.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Explain.CacheHit {
		t.Error("first query claims a cache hit")
	}
	if !second.Explain.CacheHit {
		t.Error("repeated query missed the cache")
	}
	if second.Explain.HorizonUsers == 0 || second.Explain.Algorithm == "" {
		t.Errorf("explain incomplete: %+v", second.Explain)
	}
	// A friendship mutation reaching the snapshot invalidates horizons:
	// the next query must miss and carry a newer generation.
	if err := svc.Befriend("alice", "erin", 0.4); err != nil {
		t.Fatal(err)
	}
	if err := svc.Flush(); err != nil {
		t.Fatal(err)
	}
	third, err := svc.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if third.Explain.CacheHit {
		t.Error("query after graph mutation still hit the cache")
	}
	if third.Explain.CacheGeneration <= second.Explain.CacheGeneration {
		t.Errorf("generation did not advance: %d -> %d",
			second.Explain.CacheGeneration, third.Explain.CacheGeneration)
	}
}

func TestDoPerQueryBeta(t *testing.T) {
	cfg := DefaultServiceConfig()
	cfg.AutoCompactEvery = 0
	svc := apiWorld(t, cfg)
	ctx := context.Background()

	// Against the service default (β=1, pure social), a β=0 override
	// must rank purely by global popularity: marios has 2 taggers vs
	// luigis' 1 under "pizza".
	zero := 0.0
	resp, err := svc.Do(ctx, search.Request{
		Seeker: "alice", Tags: []string{"pizza"}, K: 2, Beta: &zero, Explain: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Explain.Beta != 0 {
		t.Fatalf("explain beta = %g", resp.Explain.Beta)
	}
	if len(resp.Results) != 2 || resp.Results[0].Item != "marios" || resp.Results[0].Score != 2 {
		t.Fatalf("beta=0 results %+v, want marios with global score 2 first", resp.Results)
	}
	// The override is per-query: the next default query scores socially
	// again (proximity-weighted fractions, not integer tag counts).
	def, err := svc.Do(ctx, search.Request{
		Seeker: "alice", Tags: []string{"pizza"}, K: 1, Mode: search.ModeExact, Explain: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if def.Explain.Beta != 1 || def.Results[0].Score >= 2 {
		t.Fatalf("default query after override: %+v (beta %g)", def.Results, def.Explain.Beta)
	}
}

func TestDoWindowing(t *testing.T) {
	cfg := DefaultServiceConfig()
	cfg.AutoCompactEvery = 0
	svc := apiWorld(t, cfg)
	ctx := context.Background()

	full, err := svc.Do(ctx, search.Request{Seeker: "alice", Tags: []string{"pizza"}, K: 2, Mode: search.ModeExact})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Results) != 2 {
		t.Fatalf("full results %+v", full.Results)
	}
	paged, err := svc.Do(ctx, search.Request{
		Seeker: "alice", Tags: []string{"pizza"}, K: 1, Offset: 1, Mode: search.ModeExact,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(paged.Results) != 1 || paged.Results[0] != full.Results[1] {
		t.Fatalf("offset window %+v, want %+v", paged.Results, full.Results[1])
	}
	minned, err := svc.Do(ctx, search.Request{
		Seeker: "alice", Tags: []string{"pizza"}, K: 5,
		MinScore: full.Results[0].Score, Mode: search.ModeExact,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(minned.Results) != 1 || minned.Results[0] != full.Results[0] {
		t.Fatalf("min-score window %+v", minned.Results)
	}
}

func TestDoValidationErrors(t *testing.T) {
	svc := apiWorld(t, DefaultServiceConfig())
	ctx := context.Background()
	for name, req := range map[string]search.Request{
		"missing seeker": {Tags: []string{"pizza"}},
		"missing tags":   {Seeker: "alice"},
		"negative k":     {Seeker: "alice", Tags: []string{"pizza"}, K: -1},
	} {
		if _, err := svc.Do(ctx, req); !errors.Is(err, search.ErrInvalid) {
			t.Errorf("%s: err = %v, want ErrInvalid", name, err)
		}
	}
	// Unknown names are request-content errors too (the client sent
	// them), tagged ErrInvalid with the legacy message preserved.
	_, err := svc.Do(ctx, search.Request{Seeker: "nobody", Tags: []string{"pizza"}})
	if !errors.Is(err, search.ErrInvalid) || err.Error() != `social: unknown user "nobody"` {
		t.Errorf("unknown seeker: %v", err)
	}
}

// slowWorld builds a corpus large enough that a single cold query costs
// real work: a long weight-heavy chain with per-user tags, distinct
// seekers so the horizon cache cannot help.
func slowWorld(t *testing.T, users int) *Service {
	t.Helper()
	cfg := DefaultServiceConfig()
	cfg.AutoCompactEvery = 1 << 20 // compact once, at the final Flush
	cfg.BatchWorkers = 1
	cfg.Proximity.MinSigma = 1e-9 // deep horizons: expansion visits ~everyone
	svc, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < users-1; i++ {
		if err := svc.Befriend(fmt.Sprintf("u%d", i), fmt.Sprintf("u%d", i+1), 0.99); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < users; i++ {
		if err := svc.Tag(fmt.Sprintf("u%d", i), fmt.Sprintf("i%d", i%50), "t"); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Flush(); err != nil {
		t.Fatal(err)
	}
	return svc
}

// TestDoBatchPreCancelled: a batch against an already-cancelled context
// returns promptly with ctx.Err() for every query, having executed
// nothing.
func TestDoBatchPreCancelled(t *testing.T) {
	svc := slowWorld(t, 200)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	reqs := make([]search.Request, 64)
	for i := range reqs {
		reqs[i] = search.Request{Seeker: fmt.Sprintf("u%d", i), Tags: []string{"t"}, K: 3}
	}
	start := time.Now()
	out := svc.DoBatch(ctx, reqs)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("pre-cancelled batch took %s", elapsed)
	}
	for i, br := range out {
		if !errors.Is(br.Err, context.Canceled) {
			t.Fatalf("query %d: err = %v, want context.Canceled", i, br.Err)
		}
	}
	if hits, misses := svc.Stats().SeekerCache.Hits, svc.Stats().SeekerCache.Misses; hits+misses != 0 {
		t.Fatalf("cancelled batch still executed queries (hits %d, misses %d)", hits, misses)
	}
}

// TestDoBatchMidFlightCancel: cancelling while a single-worker batch of
// slow queries is in flight fails the unstarted queries with ctx.Err()
// and returns promptly.
func TestDoBatchMidFlightCancel(t *testing.T) {
	svc := slowWorld(t, 3000)
	ctx, cancel := context.WithCancel(context.Background())
	const n = 256
	reqs := make([]search.Request, n)
	for i := range reqs {
		// Distinct seekers: every query pays a full horizon expansion.
		reqs[i] = search.Request{Seeker: fmt.Sprintf("u%d", i), Tags: []string{"t"}, K: 3}
	}
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	out := svc.DoBatch(ctx, reqs)

	cancelled := 0
	for i, br := range out {
		switch {
		case br.Err == nil:
			if len(br.Response.Results) == 0 {
				t.Fatalf("query %d: success with no results", i)
			}
		case errors.Is(br.Err, context.Canceled):
			cancelled++
		default:
			t.Fatalf("query %d: unexpected error %v", i, br.Err)
		}
	}
	if cancelled == 0 {
		t.Skip("batch finished before cancellation landed (machine too fast for the timing window)")
	}
	t.Logf("%d/%d queries cancelled", cancelled, n)
}
