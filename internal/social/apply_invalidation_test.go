package social

import (
	"context"
	"testing"

	"repro/internal/search"
)

// newReplicaPostureService builds a service whose compaction is driven
// by ApplyInvalidation alone, like a fleet replica.
func newReplicaPostureService(t *testing.T, cacheSize int) *Service {
	t.Helper()
	cfg := DefaultServiceConfig()
	cfg.AutoCompactEvery = 1 << 30
	cfg.SeekerCacheSize = cacheSize
	svc, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func TestApplyInvalidationFoldsAndScopes(t *testing.T) {
	svc := newReplicaPostureService(t, 0)
	ctx := context.Background()
	seed := func() {
		t.Helper()
		if err := svc.Befriend("alice", "bob", 0.9); err != nil {
			t.Fatal(err)
		}
		if err := svc.Tag("bob", "luigis", "pizza"); err != nil {
			t.Fatal(err)
		}
	}
	seed()
	if st := svc.Stats(); st.PendingWrites == 0 {
		t.Fatal("replica posture compacted on its own")
	}

	// The broadcast folds pending writes: the query works afterwards.
	if _, err := svc.ApplyInvalidation([][2]string{{"alice", "bob"}}, false); err != nil {
		t.Fatal(err)
	}
	if st := svc.Stats(); st.PendingWrites != 0 {
		t.Fatalf("pending writes after broadcast: %d", st.PendingWrites)
	}
	req := search.Request{Seeker: "alice", Tags: []string{"pizza"}, K: 3, Mode: search.ModeExact}
	if _, err := svc.Do(ctx, req); err != nil {
		t.Fatal(err)
	}

	// Warm alice's horizon, then: a broadcast of edges whose names are
	// unknown locally (or disjoint from the horizon) drops nothing; an
	// edge containing a horizon member drops it.
	if _, err := svc.Do(ctx, req); err != nil {
		t.Fatal(err)
	}
	dropped, err := svc.ApplyInvalidation([][2]string{{"ghost1", "ghost2"}}, false)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 {
		t.Fatalf("unknown-name broadcast dropped %d entries", dropped)
	}
	dropped, err = svc.ApplyInvalidation([][2]string{{"bob", "ghost1"}}, false)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 {
		t.Fatalf("half-unknown edge dropped %d entries (unknown endpoint cannot scope)", dropped)
	}
	dropped, err = svc.ApplyInvalidation([][2]string{{"alice", "bob"}}, false)
	if err != nil {
		t.Fatal(err)
	}
	if dropped < 1 {
		t.Fatalf("edge-scoped broadcast dropped %d, want >=1 (alice's horizon contains bob)", dropped)
	}

	// Global escalation drops every resident entry.
	if _, err := svc.Do(ctx, req); err != nil {
		t.Fatal(err)
	}
	dropped, err = svc.ApplyInvalidation(nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if dropped < 1 {
		t.Fatalf("global broadcast dropped %d, want >=1", dropped)
	}
}

func TestApplyInvalidationWithoutCache(t *testing.T) {
	svc := newReplicaPostureService(t, -1) // caching disabled
	if err := svc.Befriend("alice", "bob", 0.9); err != nil {
		t.Fatal(err)
	}
	dropped, err := svc.ApplyInvalidation([][2]string{{"alice", "bob"}}, false)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 {
		t.Fatalf("cacheless service dropped %d", dropped)
	}
	if st := svc.Stats(); st.PendingWrites != 0 {
		t.Fatalf("pending writes after broadcast: %d", st.PendingWrites)
	}
}
