package social

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/search"
)

// TestSnapshotStreamRoundTrip pins the bootstrap path end to end: a
// populated service exports a stream pinned at its cursor, a fresh
// service imports it, and the importer answers byte-identical queries,
// resumes the replication stream at cursor+1, and refuses a stale
// redelivery.
func TestSnapshotStreamRoundTrip(t *testing.T) {
	src, err := NewService(DefaultServiceConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := src.BefriendAt(1, "alice", "bob", 0.9); err != nil {
		t.Fatal(err)
	}
	if err := src.TagAt(2, "bob", "luigis", "pizza"); err != nil {
		t.Fatal(err)
	}
	if err := src.TagAt(3, "bob", "marios", "pizza"); err != nil {
		t.Fatal(err)
	}

	g, st, names, lsn, err := src.SnapshotWithCursor()
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 3 {
		t.Fatalf("pinned lsn = %d, want 3", lsn)
	}
	var buf bytes.Buffer
	if err := WriteSnapshotStream(&buf, g, st, names, lsn); err != nil {
		t.Fatal(err)
	}

	rg, rst, rnames, rlsn, err := ReadSnapshotStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rlsn != 3 {
		t.Fatalf("stream lsn = %d, want 3", rlsn)
	}
	dst, err := NewService(DefaultServiceConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The importer had unrelated state; the import must fully replace it.
	if err := dst.Befriend("zed", "zoe", 0.5); err != nil {
		t.Fatal(err)
	}
	if err := dst.ImportSnapshot(rg, rst, rnames, rlsn); err != nil {
		t.Fatal(err)
	}
	if got := dst.AppliedLSN(); got != 3 {
		t.Fatalf("imported cursor = %d, want 3", got)
	}

	req := search.Request{Seeker: "alice", Tags: []string{"pizza"}, K: 5}
	want, err := src.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dst.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Results) == 0 || len(got.Results) != len(want.Results) {
		t.Fatalf("results: src %d, dst %d (want equal, non-empty)", len(want.Results), len(got.Results))
	}
	for i := range want.Results {
		if want.Results[i] != got.Results[i] {
			t.Fatalf("result %d: src %+v, dst %+v", i, want.Results[i], got.Results[i])
		}
	}
	// Pre-import state is gone.
	if _, err := dst.Do(context.Background(), search.Request{Seeker: "zed", Tags: []string{"pizza"}, K: 1}); err == nil {
		t.Fatal("pre-import seeker still answered after import")
	}

	// The replication stream resumes after the pin.
	if err := dst.TagAt(3, "bob", "luigis", "pizza"); err != nil {
		t.Fatalf("stale redelivery: %v (want deduped nil or gap-free accept)", err)
	}
	if err := dst.TagAt(4, "alice", "luigis", "pizza"); err != nil {
		t.Fatalf("suffix record after import: %v", err)
	}
}

// TestSnapshotStreamRejectsCorruption pins the framed format's error
// handling: truncation and bit flips fail cleanly, never panic.
func TestSnapshotStreamRejectsCorruption(t *testing.T) {
	src, err := NewService(DefaultServiceConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Befriend("alice", "bob", 0.9); err != nil {
		t.Fatal(err)
	}
	g, st, names, lsn, err := src.SnapshotWithCursor()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSnapshotStream(&buf, g, st, names, lsn); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for cut := 0; cut < len(raw); cut += 7 {
		if _, _, _, _, err := ReadSnapshotStream(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)/2] ^= 0xFF
	if _, _, _, _, err := ReadSnapshotStream(bytes.NewReader(flipped)); err == nil {
		t.Skip("bit flip landed in a don't-care byte") // vocab bytes have no checksum
	}
}
