package social

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/proximity"
)

// pizzaWorld builds the README scenario through the public API.
func pizzaWorld(t testing.TB, autoCompact int) *Service {
	t.Helper()
	cfg := DefaultServiceConfig()
	cfg.Proximity = proximity.Params{Alpha: 1, SelfWeight: 1} // undamped: hand-checkable
	cfg.AutoCompactEvery = autoCompact
	svc, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	steps := []error{
		svc.Befriend("alice", "bob", 0.9),
		svc.Befriend("alice", "carol", 0.7),
		svc.Befriend("bob", "dave", 0.8),
		svc.Tag("bob", "luigis", "pizza"),
		svc.Tag("carol", "luigis", "pizza"),
		svc.Tag("carol", "luigis", "pizza"),
		svc.Tag("dave", "marios", "pizza"),
		svc.Tag("frank", "chain", "pizza"),
	}
	for i, err := range steps {
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if err := svc.Flush(); err != nil {
		t.Fatal(err)
	}
	return svc
}

func TestSearchPersonalized(t *testing.T) {
	svc := pizzaWorld(t, 0)
	res, err := svc.Search("alice", []string{"pizza"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	// luigis: 0.9·1 (bob) + 0.7·2 (carol) = 2.3; marios: 0.72·1;
	// chain: unreachable → absent.
	if len(res) != 2 {
		t.Fatalf("results = %v, want 2", res)
	}
	if res[0].Item != "luigis" || math.Abs(res[0].Score-2.3) > 1e-12 {
		t.Fatalf("top = %+v, want luigis 2.3", res[0])
	}
	if res[1].Item != "marios" || math.Abs(res[1].Score-0.72) > 1e-12 {
		t.Fatalf("second = %+v, want marios 0.72", res[1])
	}
	// frank's own view: only his item
	res, err = svc.Search("frank", []string{"pizza"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Item != "chain" {
		t.Fatalf("frank's results = %v", res)
	}
}

func TestSearchValidation(t *testing.T) {
	svc := pizzaWorld(t, 0)
	if _, err := svc.Search("nobody", []string{"pizza"}, 3); err == nil {
		t.Fatal("unknown seeker accepted")
	}
	if _, err := svc.Search("alice", []string{"sushi"}, 3); err == nil {
		t.Fatal("unknown tag accepted")
	}
	if _, err := svc.Search("alice", []string{"pizza"}, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestWritesVisibleAfterAutoCompaction(t *testing.T) {
	svc := pizzaWorld(t, 3)
	// two writes pending: invisible
	if err := svc.Befriend("alice", "erin", 0.9); err != nil {
		t.Fatal(err)
	}
	if err := svc.Tag("erin", "sliceplace", "pizza"); err != nil {
		t.Fatal(err)
	}
	res, err := svc.Search("alice", []string{"pizza"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Item == "sliceplace" {
			t.Fatal("pending write visible before compaction")
		}
	}
	// third write triggers auto-compaction
	if err := svc.Tag("erin", "sliceplace", "pizza"); err != nil {
		t.Fatal(err)
	}
	res, err = svc.Search("alice", []string{"pizza"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range res {
		if r.Item == "sliceplace" {
			found = true
			// erin at weight 0.9, two taggings → 1.8
			if math.Abs(r.Score-1.8) > 1e-12 {
				t.Fatalf("sliceplace score = %g, want 1.8", r.Score)
			}
		}
	}
	if !found {
		t.Fatalf("auto-compacted write invisible: %v", res)
	}
}

func TestServiceConfigValidation(t *testing.T) {
	cfg := DefaultServiceConfig()
	cfg.Beta = 2
	if _, err := NewService(cfg); err == nil {
		t.Fatal("beta 2 accepted")
	}
	cfg = DefaultServiceConfig()
	cfg.AutoCompactEvery = -1
	if _, err := NewService(cfg); err == nil {
		t.Fatal("negative compaction accepted")
	}
	cfg = DefaultServiceConfig()
	cfg.Proximity = proximity.Params{Alpha: 7, SelfWeight: 1}
	if _, err := NewService(cfg); err == nil {
		t.Fatal("bad proximity accepted")
	}
	// zero proximity params default
	cfg = DefaultServiceConfig()
	cfg.Proximity = proximity.Params{}
	if _, err := NewService(cfg); err != nil {
		t.Fatal("zero proximity params rejected")
	}
}

func TestBadNamesRejected(t *testing.T) {
	svc := pizzaWorld(t, 0)
	if err := svc.Tag("a\nb", "item", "tag"); err == nil {
		t.Fatal("newline user accepted")
	}
	if err := svc.Tag("user", "", "tag"); err == nil {
		t.Fatal("empty item accepted")
	}
	if err := svc.Befriend("alice", "alice", 0.5); err == nil {
		t.Fatal("self-friendship accepted")
	}
	if err := svc.Befriend("alice", "bob", 0); err == nil {
		t.Fatal("zero weight accepted")
	}
}

func TestStatsAndUsers(t *testing.T) {
	svc := pizzaWorld(t, 0)
	st := svc.Stats()
	if st.Users != 5 { // alice bob carol dave frank
		t.Fatalf("users = %d, want 5", st.Users)
	}
	if st.Items != 3 || st.Tags != 1 {
		t.Fatalf("items/tags = %d/%d", st.Items, st.Tags)
	}
	if st.PendingWrites != 0 {
		t.Fatalf("pending = %d after flush", st.PendingWrites)
	}
	users := svc.Users()
	if len(users) != 5 || users[0] != "alice" {
		t.Fatalf("Users() = %v", users)
	}
}

func TestConcurrentServiceUse(t *testing.T) {
	svc := pizzaWorld(t, 5)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				if w%2 == 0 {
					item := fmt.Sprintf("item-%d-%d", w, i)
					if err := svc.Tag("bob", item, "pizza"); err != nil {
						errs <- err
						return
					}
				} else {
					if _, err := svc.Search("alice", []string{"pizza"}, 3); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
