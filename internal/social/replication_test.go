package social

import (
	"context"
	"errors"
	"testing"

	"repro/internal/search"
)

// TestReplicationCursorDiscipline pins the BefriendAt/TagAt contract:
// in-order records apply and advance the cursor, duplicates are
// idempotent no-ops, and a record ahead of cursor+1 is refused with
// ErrReplicationGap without touching state.
func TestReplicationCursorDiscipline(t *testing.T) {
	svc, err := NewService(DefaultServiceConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := svc.AppliedLSN(); got != 0 {
		t.Fatalf("fresh cursor = %d, want 0", got)
	}
	if err := svc.BefriendAt(1, "alice", "bob", 0.9); err != nil {
		t.Fatal(err)
	}
	if err := svc.TagAt(2, "bob", "luigis", "pizza"); err != nil {
		t.Fatal(err)
	}
	if got := svc.AppliedLSN(); got != 2 {
		t.Fatalf("cursor = %d, want 2", got)
	}

	// Gap: record 5 cannot apply at cursor 2, and nothing changes.
	if err := svc.BefriendAt(5, "carol", "dave", 0.5); !errors.Is(err, ErrReplicationGap) {
		t.Fatalf("gap err = %v, want ErrReplicationGap", err)
	}
	if got := svc.AppliedLSN(); got != 2 {
		t.Fatalf("cursor after gap = %d, want 2", got)
	}
	if users := svc.Users(); len(users) != 2 {
		t.Fatalf("users after refused record = %v, want alice+bob only", users)
	}

	// Duplicate: re-delivering record 2 (or 1) is a silent no-op.
	if err := svc.TagAt(2, "bob", "luigis", "pizza"); err != nil {
		t.Fatalf("duplicate record err = %v, want nil", err)
	}
	if err := svc.BefriendAt(1, "alice", "bob", 0.9); err != nil {
		t.Fatalf("duplicate record err = %v, want nil", err)
	}
	if err := svc.Flush(); err != nil {
		t.Fatal(err)
	}
	resp, err := svc.Do(context.Background(), search.Request{
		Seeker: "alice", Tags: []string{"pizza"}, K: 3, Mode: search.ModeExact,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || resp.Results[0].Item != "luigis" {
		t.Fatalf("results = %+v, want luigis once (dedup must not re-apply)", resp.Results)
	}

	// lsn 0 is a plain mutation: applies, cursor untouched.
	if err := svc.BefriendAt(0, "erin", "frank", 0.4); err != nil {
		t.Fatal(err)
	}
	if got := svc.AppliedLSN(); got != 2 {
		t.Fatalf("cursor after lsn-0 mutation = %d, want 2", got)
	}
}

// TestReplicationCursorAdvancesOnDeterministicRejection pins the
// lockstep rule: a record every replica rejects identically (here a
// self-edge) still advances the cursor — skipping it in lockstep is
// what keeps the fleet bit-identical — and the next record applies
// cleanly.
func TestReplicationCursorAdvancesOnDeterministicRejection(t *testing.T) {
	svc, err := NewService(DefaultServiceConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.BefriendAt(1, "alice", "alice", 0.5); err == nil {
		t.Fatal("self-edge record accepted")
	}
	if got := svc.AppliedLSN(); got != 1 {
		t.Fatalf("cursor after rejected record = %d, want 1 (processed)", got)
	}
	if err := svc.BefriendAt(2, "alice", "bob", 0.5); err != nil {
		t.Fatalf("record after rejected one: %v", err)
	}
	if got := svc.AppliedLSN(); got != 2 {
		t.Fatalf("cursor = %d, want 2", got)
	}
}

// TestReplicatedStreamMatchesDirect feeds the same mutation stream once
// through the plain entry points and once through the LSN-stamped ones
// (with duplicates injected) and demands bit-identical answers.
func TestReplicatedStreamMatchesDirect(t *testing.T) {
	direct, err := NewService(DefaultServiceConfig())
	if err != nil {
		t.Fatal(err)
	}
	replicated, err := NewService(DefaultServiceConfig())
	if err != nil {
		t.Fatal(err)
	}
	type mut struct {
		friend  bool
		a, b, c string
		w       float64
	}
	muts := []mut{
		{friend: true, a: "u0", b: "u1", w: 0.9},
		{friend: true, a: "u1", b: "u2", w: 0.7},
		{friend: false, a: "u1", b: "it0", c: "pizza"},
		{friend: true, a: "u2", b: "u3", w: 0.8},
		{friend: false, a: "u2", b: "it1", c: "pizza"},
		{friend: true, a: "u0", b: "u3", w: 0.3},
		{friend: false, a: "u3", b: "it1", c: "sushi"},
	}
	for i, m := range muts {
		lsn := uint64(i + 1)
		if m.friend {
			if err := direct.Befriend(m.a, m.b, m.w); err != nil {
				t.Fatal(err)
			}
			if err := replicated.BefriendAt(lsn, m.a, m.b, m.w); err != nil {
				t.Fatal(err)
			}
			// Redelivery (an at-least-once transport) must be harmless.
			if err := replicated.BefriendAt(lsn, m.a, m.b, m.w); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := direct.Tag(m.a, m.b, m.c); err != nil {
				t.Fatal(err)
			}
			if err := replicated.TagAt(lsn, m.a, m.b, m.c); err != nil {
				t.Fatal(err)
			}
			if err := replicated.TagAt(lsn, m.a, m.b, m.c); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := direct.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := replicated.Flush(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, seeker := range []string{"u0", "u1", "u2", "u3"} {
		for _, tag := range []string{"pizza", "sushi"} {
			req := search.Request{Seeker: seeker, Tags: []string{tag}, K: 5, Mode: search.ModeExact}
			want, werr := direct.Do(ctx, req)
			got, gerr := replicated.Do(ctx, req)
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("%s/%s: direct err %v, replicated err %v", seeker, tag, werr, gerr)
			}
			if werr != nil {
				continue
			}
			if len(want.Results) != len(got.Results) {
				t.Fatalf("%s/%s: %d vs %d results", seeker, tag, len(want.Results), len(got.Results))
			}
			for i := range want.Results {
				if want.Results[i] != got.Results[i] {
					t.Fatalf("%s/%s result %d: direct %+v, replicated %+v",
						seeker, tag, i, want.Results[i], got.Results[i])
				}
			}
		}
	}
}
