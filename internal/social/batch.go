package social

import "sync"

// BatchQuery is one named query of a SearchBatch call.
type BatchQuery struct {
	Seeker string
	Tags   []string
	K      int
}

// BatchResult is the outcome of one batch query: Results on success, a
// non-nil Err otherwise. A failed query never fails the batch.
type BatchResult struct {
	Results []Result
	Err     error
}

// SearchBatch answers many queries concurrently on a pool of
// cfg.BatchWorkers workers, returning results in input order with
// per-query error reporting. Batching amortizes the per-request setup a
// deployment pays on /v1/search — and, combined with the seeker cache,
// repeated seekers inside one batch (or across batches) reuse a single
// neighbourhood expansion. Each query sees the snapshot current when
// its worker picks it up, exactly as if issued via Search.
//
// Deprecated: use DoBatch, which carries a context (cancellation fails
// unstarted queries promptly) and the full per-query option set.
func (s *Service) SearchBatch(queries []BatchQuery) []BatchResult {
	out := make([]BatchResult, len(queries))
	if len(queries) == 0 {
		return out
	}
	workers := s.cfg.BatchWorkers
	if workers > len(queries) {
		workers = len(queries)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				res, err := s.Search(queries[i].Seeker, queries[i].Tags, queries[i].K)
				out[i] = BatchResult{Results: res, Err: err}
			}
		}()
	}
	for i := range queries {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}
