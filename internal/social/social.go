// Package social is the batteries-included facade of the library: a
// mutable social tagging service addressed by names instead of dense
// ids. It wires together the vocabulary layer (string ↔ id), the
// overlay (dynamic updates + compaction), the core engine (certified
// top-k), and the serving cache — the API a downstream application
// embeds.
//
//	svc, _ := social.NewService(social.DefaultServiceConfig())
//	svc.Befriend("alice", "bob", 0.9)
//	svc.Tag("bob", "luigis", "pizza")
//	res, _ := svc.Do(ctx, search.Request{Seeker: "alice", Tags: []string{"pizza"}, K: 5})
//	// res.Results[0].Item == "luigis"
//
// Do (with its DoBatch sibling) is the canonical request/response query
// surface — per-query β, execution mode, paging, explainable answers,
// context cancellation; see internal/search. The positional Search /
// SearchBatch methods are deprecated wrappers over it.
package social

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/overlay"
	"repro/internal/proximity"
	"repro/internal/qcache"
	"repro/internal/search"
	"repro/internal/shard"
	"repro/internal/vocab"
)

// Default sizes for the serving-path knobs (applied when the config
// leaves them zero).
const (
	DefaultSeekerCacheSize = 256
	DefaultBatchWorkers    = 4
	// DefaultCacheShards partitions the seeker cache: each shard is
	// independently locked and owns its seekers' horizons, so lookup
	// contention and invalidation work shrink with the shard count
	// (the fleet-wide default from internal/shard).
	DefaultCacheShards = shard.DefaultShards
	// DefaultEdgeScopeLimit caps the number of distinct mutated friend
	// edges one compaction invalidates by scope; past it the service
	// falls back to one global invalidation (cheaper than enumerating).
	DefaultEdgeScopeLimit = 256
)

// ServiceConfig tunes a Service.
type ServiceConfig struct {
	// Proximity configures the social proximity model; zero value means
	// α=0.6, self-weight 1, σ-floor 0.05 (a practical horizon).
	Proximity proximity.Params
	// Beta blends social and global scoring (default 1: pure social).
	Beta float64
	// AutoCompactEvery folds mutations into the queryable snapshot
	// after this many writes (default 64; 0 compacts on every write —
	// simplest semantics, highest write cost).
	AutoCompactEvery int
	// SeekerCacheSize bounds the per-seeker horizon cache (see
	// internal/qcache): 0 means DefaultSeekerCacheSize, negative
	// disables caching entirely (every search re-expands the graph).
	// Caching trades eager full-horizon expansion on a miss for reuse
	// on hits; workloads dominated by one-shot seekers should disable
	// it or set MaxHorizonUsers.
	SeekerCacheSize int
	// CacheShards partitions the seeker cache into this many
	// independently locked shards by consistent hashing over the seeker
	// id (0 = DefaultCacheShards). SeekerCacheSize is the TOTAL budget
	// across shards.
	CacheShards int
	// CachePolicy tunes cache admission and expiry (TTL, minimum
	// horizon size, miss-streak admission; see qcache.Policy). The zero
	// value admits everything and never expires.
	CachePolicy qcache.Policy
	// EdgeScopeLimit caps how many distinct mutated friend edges one
	// compaction invalidates by scope (dropping only cached horizons
	// that contain an endpoint) before falling back to a global
	// invalidation. 0 = DefaultEdgeScopeLimit; negative disables edge
	// scoping entirely (every friend compaction invalidates globally —
	// the pre-sharding behaviour).
	EdgeScopeLimit int
	// MaxHorizonUsers truncates materialized horizons to this many
	// users (0 = full horizon, exact answers). A positive bound caps
	// cache-miss cost and entry size; answers for seekers whose
	// neighbourhood exceeds the bound may become approximate.
	MaxHorizonUsers int
	// BatchWorkers bounds the worker pool SearchBatch runs queries on
	// (0 means DefaultBatchWorkers).
	BatchWorkers int
}

// IsZero reports whether the config is entirely unset, so embedders
// (internal/durable) can substitute defaults. ServiceConfig stopped
// being ==-comparable when the cache policy gained a clock field.
func (c ServiceConfig) IsZero() bool {
	return reflect.ValueOf(c).IsZero()
}

// DefaultServiceConfig returns the practical defaults described above.
func DefaultServiceConfig() ServiceConfig {
	return ServiceConfig{
		Proximity:        proximity.Params{Alpha: 0.6, SelfWeight: 1, MinSigma: 0.05},
		Beta:             1.0,
		AutoCompactEvery: 64,
		SeekerCacheSize:  DefaultSeekerCacheSize,
		BatchWorkers:     DefaultBatchWorkers,
	}
}

// Result is one named search result.
type Result struct {
	Item  string
	Score float64
}

// Service is a mutable, name-addressed social tagging search service.
// It is safe for concurrent use; reads see the last compacted snapshot.
// Searches reuse cached seeker horizons (internal/qcache) that are
// invalidated whenever friendship edges reach the snapshot.
type Service struct {
	cfg    ServiceConfig
	caches *shard.Caches // nil when caching is disabled

	// scratch recycles per-query working storage (see doScratch) so the
	// warm read path allocates nothing.
	scratch sync.Pool

	// view is the lock-free read-path snapshot: frozen name
	// dictionaries, the engine snapshot they describe, and the cache
	// shard generations pinned with it — everything doIntoScratch used
	// to take s.mu for. It is republished (atomically swapped) by every
	// compaction; queries that miss a name in the (possibly slightly
	// stale) frozen dictionaries fall back to the locked path. See
	// publishLocked.
	view atomic.Pointer[queryView]

	// degradeHook, when set, is consulted with every normalized request
	// before execution — the overload brownout's entry point for
	// embedders driving the service directly (the HTTP server applies
	// its ladder itself). Returning true marks the response Degraded
	// with its certified score bound.
	degradeHook atomic.Value // func(*search.Request) bool

	mu           sync.Mutex
	names        *vocab.Set
	overlay      *overlay.Overlay
	engine       *overlay.Engine
	writes       int
	friendsDirty bool // friend edges written since the last compaction
	// appliedLSN is the replication cursor: the highest fleet replication
	// log LSN this service has processed (see BefriendAt/TagAt). 0 until
	// the first LSN-stamped mutation arrives; untouched by plain writes.
	appliedLSN uint64
	// dirtyEdges accumulates the distinct friend edges written since
	// the last compaction, for edge-scoped cache invalidation (dirtySet
	// dedups re-declarations of the same edge); edgeOverflow is set
	// when more than EdgeScopeLimit distinct edges accumulated and the
	// next compaction must invalidate globally instead.
	dirtyEdges   [][2]graph.UserID
	dirtySet     map[[2]graph.UserID]struct{}
	edgeOverflow bool
}

// normalizeConfig validates cfg and fills serving-path defaults.
func normalizeConfig(cfg ServiceConfig) (ServiceConfig, error) {
	if cfg.Proximity == (proximity.Params{}) {
		cfg.Proximity = DefaultServiceConfig().Proximity
	}
	if err := cfg.Proximity.Validate(); err != nil {
		return cfg, err
	}
	if cfg.Beta < 0 || cfg.Beta > 1 {
		return cfg, fmt.Errorf("social: beta %g outside [0,1]", cfg.Beta)
	}
	if cfg.AutoCompactEvery < 0 {
		return cfg, fmt.Errorf("social: negative AutoCompactEvery")
	}
	if cfg.SeekerCacheSize == 0 {
		cfg.SeekerCacheSize = DefaultSeekerCacheSize
	}
	if cfg.CacheShards == 0 {
		cfg.CacheShards = DefaultCacheShards
	}
	if cfg.CacheShards < 0 {
		return cfg, fmt.Errorf("social: negative CacheShards")
	}
	if err := cfg.CachePolicy.Validate(); err != nil {
		return cfg, err
	}
	if cfg.EdgeScopeLimit == 0 {
		cfg.EdgeScopeLimit = DefaultEdgeScopeLimit
	}
	if cfg.BatchWorkers == 0 {
		cfg.BatchWorkers = DefaultBatchWorkers
	}
	if cfg.BatchWorkers < 0 {
		return cfg, fmt.Errorf("social: negative BatchWorkers")
	}
	if cfg.MaxHorizonUsers < 0 {
		return cfg, fmt.Errorf("social: negative MaxHorizonUsers")
	}
	return cfg, nil
}

// newSeekerCaches builds the sharded horizon cache the config asks for
// (nil when disabled).
func newSeekerCaches(cfg ServiceConfig) (*shard.Caches, error) {
	if cfg.SeekerCacheSize < 0 {
		return nil, nil
	}
	return shard.NewCaches(shard.CacheConfig{
		Shards:   cfg.CacheShards,
		Capacity: cfg.SeekerCacheSize,
		Policy:   cfg.CachePolicy,
	})
}

// NewService builds an empty service.
func NewService(cfg ServiceConfig) (*Service, error) {
	cfg, err := normalizeConfig(cfg)
	if err != nil {
		return nil, err
	}
	caches, err := newSeekerCaches(cfg)
	if err != nil {
		return nil, err
	}
	s := &Service{cfg: cfg, caches: caches, names: vocab.NewSet()}
	if err := s.initEmpty(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Service) initEmpty() error {
	// Start from empty immutable bases; universes grow via the overlay.
	gb := newEmptyGraph()
	st := newEmptyStore()
	o, err := overlay.New(gb, st)
	if err != nil {
		return err
	}
	eng, err := overlay.NewEngine(o, core.Config{Proximity: s.cfg.Proximity, Beta: s.cfg.Beta}, 0)
	if err != nil {
		return err
	}
	s.overlay = o
	s.engine = eng
	s.publishLocked()
	return nil
}

// queryView is the immutable snapshot the lock-free read path works
// against: frozen name dictionaries consistent with (or trailing) eng,
// the engine snapshot itself, and the cache generation observed per
// shard when the view was published. The generations are what make
// pinning safe without s.mu: qcache.Lookup/Put demand an exact
// generation match, so a view published before an invalidation simply
// misses (and its Puts are refused) instead of serving a stale horizon.
type queryView struct {
	users *vocab.Dict
	items *vocab.Dict
	tags  *vocab.Dict
	eng   *core.Engine
	gens  []uint64 // per cache shard; nil when caching is disabled
}

// publishLocked snapshots the current queryable state into an
// atomically swapped view. Called at the end of every compaction (and
// of ApplyInvalidation, which bumps cache generations after
// compacting). Callers hold s.mu — or, in initEmpty, have exclusive
// access.
//
// The frozen dictionaries are reused across publishes until the live
// dictionary outgrows them by ~12.5% (plus a small absolute slack), so
// the total cloning cost stays linear in the vocabulary size even when
// every write compacts. A reader that misses a recently added name in
// a trailing frozen dictionary falls back to the locked path.
func (s *Service) publishLocked() {
	eng, err := s.engine.Current()
	if err != nil {
		// No queryable snapshot; readers take the locked path.
		s.view.Store(nil)
		return
	}
	old := s.view.Load()
	v := &queryView{eng: eng}
	if old != nil {
		v.users = refreshFrozen(old.users, s.names.Users)
		v.items = refreshFrozen(old.items, s.names.Items)
		v.tags = refreshFrozen(old.tags, s.names.Tags)
	} else {
		v.users = s.names.Users.Clone()
		v.items = s.names.Items.Clone()
		v.tags = s.names.Tags.Clone()
	}
	if s.caches != nil {
		n := s.caches.NumShards()
		v.gens = make([]uint64, n)
		for i := 0; i < n; i++ {
			v.gens[i] = s.caches.Shard(i).Generation()
		}
	}
	s.view.Store(v)
}

// refreshFrozen returns frozen when it still covers enough of live
// (dictionaries are append-only, so a prefix clone never goes wrong —
// only stale), and a fresh clone once live has outgrown it.
func refreshFrozen(frozen, live *vocab.Dict) *vocab.Dict {
	if frozen != nil && live.Len() <= frozen.Len()+frozen.Len()/8+64 {
		return frozen
	}
	return live.Clone()
}

// SetDegradeHook installs (or, with nil, clears) the brownout hook
// consulted once per query after normalization. The hook may rewrite
// the request in place (the admission controller downgrades ModeAuto
// to ModeApprox); returning true marks the response Degraded and
// stamps its certified ScoreBound. Safe for concurrent use with Do.
func (s *Service) SetDegradeHook(h func(*search.Request) bool) {
	s.degradeHook.Store(h)
}

// ensureUser interns a user name, growing the universe when new.
// Callers hold s.mu.
func (s *Service) ensureUser(name string) (int32, error) {
	if id, ok := s.names.Users.ID(name); ok {
		return id, nil
	}
	id, err := s.names.Users.Add(name)
	if err != nil {
		return 0, err
	}
	if got := s.overlay.AddUser(); got != id {
		return 0, fmt.Errorf("social: user id drift (%d vs %d)", got, id)
	}
	return id, nil
}

func (s *Service) ensureItem(name string) (int32, error) {
	if id, ok := s.names.Items.ID(name); ok {
		return id, nil
	}
	id, err := s.names.Items.Add(name)
	if err != nil {
		return 0, err
	}
	if got := s.overlay.AddItem(); got != id {
		return 0, fmt.Errorf("social: item id drift (%d vs %d)", got, id)
	}
	return id, nil
}

func (s *Service) ensureTag(name string) (int32, error) {
	if id, ok := s.names.Tags.ID(name); ok {
		return id, nil
	}
	id, err := s.names.Tags.Add(name)
	if err != nil {
		return 0, err
	}
	if got := s.overlay.AddTag(); got != id {
		return 0, fmt.Errorf("social: tag id drift (%d vs %d)", got, id)
	}
	return id, nil
}

// noteWrite applies the auto-compaction policy. Callers hold s.mu.
func (s *Service) noteWrite() error {
	s.writes++
	if s.cfg.AutoCompactEvery == 0 || s.writes >= s.cfg.AutoCompactEvery {
		s.writes = 0
		return s.compactLocked()
	}
	return nil
}

// compactLocked folds pending writes into the queryable snapshot and,
// when friendship edges were among them, invalidates the cached seeker
// horizons those edges could affect: a horizon is dropped only when its
// member set contains a mutated edge's endpoint (edge-scoped
// invalidation; see qcache.InvalidateEdges for why that is sufficient
// under the max-path-product proximity). When more than EdgeScopeLimit
// edges accumulated — or edge scoping is disabled — the service falls
// back to one global invalidation. Tag-only compactions leave the
// cache untouched — tags live in the store, not the graph, so horizons
// stay exact. Callers hold s.mu.
func (s *Service) compactLocked() error {
	if err := s.engine.Compact(); err != nil {
		return err
	}
	if s.friendsDirty {
		s.friendsDirty = false
		edges := s.dirtyEdges
		overflow := s.edgeOverflow
		s.dirtyEdges = nil
		s.dirtySet = nil
		s.edgeOverflow = false
		if s.caches != nil {
			if overflow || len(edges) == 0 {
				s.caches.Invalidate()
			} else {
				s.caches.InvalidateEdges(edges)
			}
		}
	}
	s.publishLocked()
	return nil
}

// noteFriendEdge records a mutated friend edge for the next
// compaction's scoped invalidation. Callers hold s.mu.
func (s *Service) noteFriendEdge(a, b graph.UserID) {
	s.friendsDirty = true
	if s.caches == nil {
		return // nothing to invalidate
	}
	if s.edgeOverflow || s.cfg.EdgeScopeLimit < 0 {
		s.edgeOverflow = true
		return
	}
	// Dedup: re-declaring an edge (in either direction) must not count
	// against the distinct-edge cap.
	key := [2]graph.UserID{a, b}
	if b < a {
		key = [2]graph.UserID{b, a}
	}
	if _, seen := s.dirtySet[key]; seen {
		return
	}
	if len(s.dirtyEdges) >= s.cfg.EdgeScopeLimit {
		s.dirtyEdges = nil
		s.dirtySet = nil
		s.edgeOverflow = true
		return
	}
	if s.dirtySet == nil {
		s.dirtySet = make(map[[2]graph.UserID]struct{})
	}
	s.dirtySet[key] = struct{}{}
	s.dirtyEdges = append(s.dirtyEdges, key)
}

// Befriend declares (or strengthens) a friendship between two users,
// creating them as needed. Weight ∈ (0, 1].
func (s *Service) Befriend(a, b string, weight float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.befriendLocked(a, b, weight)
}

func (s *Service) befriendLocked(a, b string, weight float64) error {
	ua, err := s.ensureUser(a)
	if err != nil {
		return err
	}
	ub, err := s.ensureUser(b)
	if err != nil {
		return err
	}
	if err := s.overlay.Befriend(ua, ub, weight); err != nil {
		return err
	}
	s.noteFriendEdge(ua, ub)
	return s.noteWrite()
}

// Tag records that a user annotated an item with a tag, creating any of
// the three as needed.
func (s *Service) Tag(user, item, tag string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tagLocked(user, item, tag)
}

func (s *Service) tagLocked(user, item, tag string) error {
	u, err := s.ensureUser(user)
	if err != nil {
		return err
	}
	i, err := s.ensureItem(item)
	if err != nil {
		return err
	}
	tg, err := s.ensureTag(tag)
	if err != nil {
		return err
	}
	if err := s.overlay.Tag(u, i, tg); err != nil {
		return err
	}
	return s.noteWrite()
}

// ErrReplicationGap reports an LSN-stamped mutation that arrived out of
// order: the record's LSN is more than one ahead of the service's
// replication cursor, so applying it would silently skip history. The
// sender must stream the missing records first (the fleet's catch-up
// path); transports map the class to 409.
var ErrReplicationGap = errors.New("social: replication gap")

// advanceCursor applies the replication-cursor discipline shared by
// BefriendAt and TagAt. Callers hold s.mu. It returns (true, nil) when
// the record was already processed (idempotent dedup), (true, err) when
// the record cannot be accepted yet (gap), and (false, nil) when the
// caller should apply it — the cursor has already advanced, so a
// deterministic validation rejection still counts as processed: every
// replica rejects the identical record identically, and skipping it in
// lockstep is what keeps the fleet bit-identical.
func (s *Service) advanceCursor(lsn uint64) (done bool, err error) {
	switch {
	case lsn <= s.appliedLSN:
		return true, nil
	case lsn != s.appliedLSN+1:
		return true, fmt.Errorf("%w: record lsn %d, applied %d", ErrReplicationGap, lsn, s.appliedLSN)
	}
	s.appliedLSN = lsn
	return false, nil
}

// BefriendAt is the apply-from-replication-log entry point: it applies
// the friendship mutation stamped with fleet replication log LSN lsn,
// with idempotent dedup (a record at or below the cursor is a no-op)
// and strict ordering (a record further ahead than cursor+1 is refused
// with ErrReplicationGap). lsn 0 means "not replicated" and behaves
// exactly like Befriend.
func (s *Service) BefriendAt(lsn uint64, a, b string, weight float64) error {
	if lsn == 0 {
		return s.Befriend(a, b, weight)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if done, err := s.advanceCursor(lsn); done {
		return err
	}
	return s.befriendLocked(a, b, weight)
}

// TagAt is BefriendAt's tagging sibling: apply the tagging mutation
// stamped with replication log LSN lsn, deduplicated and
// order-checked against the replication cursor.
func (s *Service) TagAt(lsn uint64, user, item, tag string) error {
	if lsn == 0 {
		return s.Tag(user, item, tag)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if done, err := s.advanceCursor(lsn); done {
		return err
	}
	return s.tagLocked(user, item, tag)
}

// SkipLSN marks a record as processed without applying anything, under
// the same cursor discipline as BefriendAt (dedup below the cursor,
// ErrReplicationGap ahead of it). The durable wrapper uses it when it
// deterministically rejects a record before logging: every replica
// skips the identical record identically, so the cursors stay in
// lockstep without a no-op record in the local log.
func (s *Service) SkipLSN(lsn uint64) error {
	if lsn == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.advanceCursor(lsn)
	return err
}

// AppliedLSN returns the replication cursor: the highest replication
// log LSN this service has processed (0 before any).
func (s *Service) AppliedLSN() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appliedLSN
}

// SetReplicationCursor restores the replication cursor to lsn without
// applying anything, advance-only: a value at or below the current
// cursor is a no-op. Recovery paths use it — a durable replica
// replaying its own WAL applies stamped records as plain mutations and
// then restores the cursor from the record's embedded LSN, and a
// snapshot import stamps the restored state with the LSN it was
// exported at — so a restarted or bootstrapped replica resumes the
// fleet stream from its cursor instead of restreaming history. It must
// never be used on the live apply path, where advanceCursor enforces
// the gap discipline.
func (s *Service) SetReplicationCursor(lsn uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if lsn > s.appliedLSN {
		s.appliedLSN = lsn
	}
}

// Flush forces pending writes into the queryable snapshot.
func (s *Service) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.writes = 0
	return s.compactLocked()
}

// ApplyInvalidation is the replica-side half of the fleet's write-path
// invalidation broadcast (see internal/fleet.Broadcaster and the
// server's /v2/invalidate endpoint): it folds pending writes into the
// queryable snapshot — which already performs edge-scoped invalidation
// for the dirty edges this process tracked itself — and then drops, by
// name, the cached horizons the broadcast edges could affect. The
// explicit edge list matters when this process did not observe the
// mutations (a replica fed by an out-of-band channel, or one that was
// ejected while the fleet kept writing); names unknown locally are
// skipped, since no id — and therefore no cached horizon member set —
// can reference them. With all set the whole cache is logically
// dropped instead (the escalation path for a replica that missed a
// broadcast). Returns the number of entries invalidated.
func (s *Service) ApplyInvalidation(edges [][2]string, all bool) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.writes = 0
	if err := s.compactLocked(); err != nil {
		return 0, err
	}
	if s.caches == nil {
		return 0, nil
	}
	if all {
		n := s.caches.Len()
		s.caches.Invalidate()
		s.publishLocked()
		return n, nil
	}
	ids := make([][2]graph.UserID, 0, len(edges))
	for _, e := range edges {
		ua, ok := s.names.Users.ID(e[0])
		if !ok {
			continue
		}
		ub, ok := s.names.Users.ID(e[1])
		if !ok {
			continue
		}
		ids = append(ids, [2]graph.UserID{ua, ub})
	}
	if len(ids) == 0 {
		return 0, nil
	}
	n := s.caches.InvalidateEdges(ids)
	s.publishLocked()
	return n, nil
}

// Search answers seeker's top-k query over tag names with exact scores
// (the ModeExact refine path). Unknown tags are an error (a deployment
// would typically treat them as empty); unknown seekers are an error.
// Answers are exact unless MaxHorizonUsers is set: a truncated horizon
// makes answers for seekers whose neighbourhood exceeds the bound
// approximate.
//
// When the seeker cache is enabled, the expensive half of the query —
// expanding the seeker's social neighbourhood — is reused across that
// seeker's searches until a friendship mutation reaches the snapshot.
//
// Deprecated: use Do, which carries a context, per-query options and an
// explainable answer. Search keeps the v1 positional signature and its
// strict rejection of k < 1 (where Do defaults k = 0), but now routes
// through Do's central normalization: tag names are comma-split and
// whitespace-trimmed, and k is capped at search.MaxK — embedders that
// stored tag names containing commas or padding, or asked for more
// than search.MaxK results, see different answers than under v1.
func (s *Service) Search(seeker string, tags []string, k int) ([]Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("social: k = %d, must be >= 1 (Do defaults k = 0)", k)
	}
	resp, err := s.Do(context.Background(), search.Request{
		Seeker: seeker, Tags: tags, K: k, Mode: search.ModeExact,
	})
	if err != nil {
		return nil, err
	}
	out := make([]Result, 0, len(resp.Results))
	for _, r := range resp.Results {
		out = append(out, Result{Item: r.Item, Score: r.Score})
	}
	return out, nil
}

// Users returns all known user names in id order.
func (s *Service) Users() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.names.Users.Names()...)
}

// Stats summarizes the service state.
type Stats struct {
	Users, Items, Tags int
	PendingWrites      int
	Compactions        int
	// AppliedLSN is the replication cursor (0 outside fleet-replica
	// posture): the highest replication log LSN processed.
	AppliedLSN uint64
	// SeekerCache reports the horizon cache fleet's aggregated
	// effectiveness counters (all zero when caching is disabled).
	SeekerCache metrics.CacheSnapshot
	// SeekerCacheEntries is the number of resident cache entries across
	// all shards.
	SeekerCacheEntries int
	// SeekerCacheShards reports each cache shard's entry count and
	// counters (nil when caching is disabled), so hot and cold shards
	// are observable per shard.
	SeekerCacheShards []shard.Snapshot
}

// Stats returns current counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	pe, pt := s.overlay.Pending()
	st := Stats{
		Users:         s.names.Users.Len(),
		Items:         s.names.Items.Len(),
		Tags:          s.names.Tags.Len(),
		PendingWrites: pe + pt,
		Compactions:   s.overlay.Compactions(),
		AppliedLSN:    s.appliedLSN,
	}
	if s.caches != nil {
		st.SeekerCache = s.caches.Counters()
		st.SeekerCacheEntries = s.caches.Len()
		st.SeekerCacheShards = s.caches.PerShard()
	}
	return st
}
