// Package social is the batteries-included facade of the library: a
// mutable social tagging service addressed by names instead of dense
// ids. It wires together the vocabulary layer (string ↔ id), the
// overlay (dynamic updates + compaction), the core engine (certified
// top-k), and the serving cache — the API a downstream application
// embeds.
//
//	svc, _ := social.NewService(social.DefaultServiceConfig())
//	svc.Befriend("alice", "bob", 0.9)
//	svc.Tag("bob", "luigis", "pizza")
//	res, _ := svc.Search("alice", []string{"pizza"}, 5)
//	// res[0].Item == "luigis"
package social

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/overlay"
	"repro/internal/proximity"
	"repro/internal/vocab"
)

// ServiceConfig tunes a Service.
type ServiceConfig struct {
	// Proximity configures the social proximity model; zero value means
	// α=0.6, self-weight 1, σ-floor 0.05 (a practical horizon).
	Proximity proximity.Params
	// Beta blends social and global scoring (default 1: pure social).
	Beta float64
	// AutoCompactEvery folds mutations into the queryable snapshot
	// after this many writes (default 64; 0 compacts on every write —
	// simplest semantics, highest write cost).
	AutoCompactEvery int
}

// DefaultServiceConfig returns the practical defaults described above.
func DefaultServiceConfig() ServiceConfig {
	return ServiceConfig{
		Proximity:        proximity.Params{Alpha: 0.6, SelfWeight: 1, MinSigma: 0.05},
		Beta:             1.0,
		AutoCompactEvery: 64,
	}
}

// Result is one named search result.
type Result struct {
	Item  string
	Score float64
}

// Service is a mutable, name-addressed social tagging search service.
// It is safe for concurrent use; reads see the last compacted snapshot.
type Service struct {
	cfg ServiceConfig

	mu      sync.Mutex
	names   *vocab.Set
	overlay *overlay.Overlay
	engine  *overlay.Engine
	writes  int
}

// NewService builds an empty service.
func NewService(cfg ServiceConfig) (*Service, error) {
	if cfg.Proximity == (proximity.Params{}) {
		cfg.Proximity = DefaultServiceConfig().Proximity
	}
	if err := cfg.Proximity.Validate(); err != nil {
		return nil, err
	}
	if cfg.Beta < 0 || cfg.Beta > 1 {
		return nil, fmt.Errorf("social: beta %g outside [0,1]", cfg.Beta)
	}
	if cfg.AutoCompactEvery < 0 {
		return nil, fmt.Errorf("social: negative AutoCompactEvery")
	}
	s := &Service{cfg: cfg, names: vocab.NewSet()}
	if err := s.initEmpty(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Service) initEmpty() error {
	// Start from empty immutable bases; universes grow via the overlay.
	gb := newEmptyGraph()
	st := newEmptyStore()
	o, err := overlay.New(gb, st)
	if err != nil {
		return err
	}
	eng, err := overlay.NewEngine(o, core.Config{Proximity: s.cfg.Proximity, Beta: s.cfg.Beta}, 0)
	if err != nil {
		return err
	}
	s.overlay = o
	s.engine = eng
	return nil
}

// ensureUser interns a user name, growing the universe when new.
// Callers hold s.mu.
func (s *Service) ensureUser(name string) (int32, error) {
	if id, ok := s.names.Users.ID(name); ok {
		return id, nil
	}
	id, err := s.names.Users.Add(name)
	if err != nil {
		return 0, err
	}
	if got := s.overlay.AddUser(); got != id {
		return 0, fmt.Errorf("social: user id drift (%d vs %d)", got, id)
	}
	return id, nil
}

func (s *Service) ensureItem(name string) (int32, error) {
	if id, ok := s.names.Items.ID(name); ok {
		return id, nil
	}
	id, err := s.names.Items.Add(name)
	if err != nil {
		return 0, err
	}
	if got := s.overlay.AddItem(); got != id {
		return 0, fmt.Errorf("social: item id drift (%d vs %d)", got, id)
	}
	return id, nil
}

func (s *Service) ensureTag(name string) (int32, error) {
	if id, ok := s.names.Tags.ID(name); ok {
		return id, nil
	}
	id, err := s.names.Tags.Add(name)
	if err != nil {
		return 0, err
	}
	if got := s.overlay.AddTag(); got != id {
		return 0, fmt.Errorf("social: tag id drift (%d vs %d)", got, id)
	}
	return id, nil
}

// noteWrite applies the auto-compaction policy. Callers hold s.mu.
func (s *Service) noteWrite() error {
	s.writes++
	if s.cfg.AutoCompactEvery == 0 || s.writes >= s.cfg.AutoCompactEvery {
		s.writes = 0
		return s.engine.Compact()
	}
	return nil
}

// Befriend declares (or strengthens) a friendship between two users,
// creating them as needed. Weight ∈ (0, 1].
func (s *Service) Befriend(a, b string, weight float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ua, err := s.ensureUser(a)
	if err != nil {
		return err
	}
	ub, err := s.ensureUser(b)
	if err != nil {
		return err
	}
	if err := s.overlay.Befriend(ua, ub, weight); err != nil {
		return err
	}
	return s.noteWrite()
}

// Tag records that a user annotated an item with a tag, creating any of
// the three as needed.
func (s *Service) Tag(user, item, tag string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	u, err := s.ensureUser(user)
	if err != nil {
		return err
	}
	i, err := s.ensureItem(item)
	if err != nil {
		return err
	}
	tg, err := s.ensureTag(tag)
	if err != nil {
		return err
	}
	if err := s.overlay.Tag(u, i, tg); err != nil {
		return err
	}
	return s.noteWrite()
}

// Flush forces pending writes into the queryable snapshot.
func (s *Service) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.writes = 0
	return s.engine.Compact()
}

// Search answers seeker's top-k query over tag names. Unknown tags are
// an error (a deployment would typically treat them as empty); unknown
// seekers are an error. Scores are exact (RefineScores execution).
func (s *Service) Search(seeker string, tags []string, k int) ([]Result, error) {
	s.mu.Lock()
	uid, ok := s.names.Users.ID(seeker)
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("social: unknown user %q", seeker)
	}
	tagIDs := make([]int32, 0, len(tags))
	for _, t := range tags {
		id, ok := s.names.Tags.ID(t)
		if !ok {
			s.mu.Unlock()
			return nil, fmt.Errorf("social: unknown tag %q", t)
		}
		tagIDs = append(tagIDs, id)
	}
	eng := s.engine
	s.mu.Unlock()

	// Run the query outside the lock: it reads only the immutable
	// compacted snapshot.
	ans, err := eng.SocialMerge(core.Query{Seeker: uid, Tags: tagIDs, K: k},
		core.Options{RefineScores: true})
	if err != nil {
		return nil, err
	}

	// Translate ids back to names under the lock — the dictionaries are
	// append-only, so every id in the snapshot already has a name, but
	// concurrent writers may be appending.
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Result, 0, len(ans.Results))
	for _, r := range ans.Results {
		name, ok := s.names.Items.Name(r.Item)
		if !ok {
			return nil, fmt.Errorf("social: unnamed item id %d", r.Item)
		}
		out = append(out, Result{Item: name, Score: r.Score})
	}
	return out, nil
}

// Users returns all known user names in id order.
func (s *Service) Users() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.names.Users.Names()...)
}

// Stats summarizes the service state.
type Stats struct {
	Users, Items, Tags int
	PendingWrites      int
	Compactions        int
}

// Stats returns current counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	pe, pt := s.overlay.Pending()
	return Stats{
		Users:         s.names.Users.Len(),
		Items:         s.names.Items.Len(),
		Tags:          s.names.Tags.Len(),
		PendingWrites: pe + pt,
		Compactions:   s.overlay.Compactions(),
	}
}
