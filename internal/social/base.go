package social

import (
	"repro/internal/graph"
	"repro/internal/tagstore"
)

// newEmptyGraph returns the zero-user immutable base the overlay grows
// from. Construction cannot fail on empty input; a failure would be a
// programming error, so it panics rather than returning an error.
func newEmptyGraph() *graph.Graph {
	g, err := graph.NewBuilder(0).Build()
	if err != nil {
		panic(err)
	}
	return g
}

// newEmptyStore is the tagging-store counterpart of newEmptyGraph.
func newEmptyStore() *tagstore.Store {
	s, err := tagstore.NewBuilder(0, 0, 0).Build()
	if err != nil {
		panic(err)
	}
	return s
}
