package social

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/overlay"
	"repro/internal/tagstore"
	"repro/internal/vocab"
)

// Snapshot flushes pending writes and returns the compacted immutable
// state: the (graph, store) pair the engine queries, plus an
// independent copy of the vocabularies. The graph and store are
// immutable by construction; the vocabulary copy is safe to persist
// while writers keep appending to the live service. This is the export
// half of the persistence contract (see Restore and internal/durable).
func (s *Service) Snapshot() (*graph.Graph, *tagstore.Store, *vocab.Set, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.writes = 0
	if err := s.compactLocked(); err != nil {
		return nil, nil, nil, err
	}
	g, st := s.overlay.Snapshot()
	names := &vocab.Set{
		Users: s.names.Users.Clone(),
		Items: s.names.Items.Clone(),
		Tags:  s.names.Tags.Clone(),
	}
	return g, st, names, nil
}

// Restore rebuilds a service from a state previously exported by
// Snapshot. The vocabularies must agree with the structural universes
// (same user/item/tag counts); ownership of all four arguments passes
// to the service.
func Restore(cfg ServiceConfig, g *graph.Graph, st *tagstore.Store, names *vocab.Set) (*Service, error) {
	if g == nil || st == nil || names == nil || names.Users == nil || names.Items == nil || names.Tags == nil {
		return nil, fmt.Errorf("social: Restore with nil state")
	}
	if names.Users.Len() != g.NumUsers() {
		return nil, fmt.Errorf("social: %d user names for %d graph users", names.Users.Len(), g.NumUsers())
	}
	if names.Items.Len() != st.NumItems() {
		return nil, fmt.Errorf("social: %d item names for %d store items", names.Items.Len(), st.NumItems())
	}
	if names.Tags.Len() != st.NumTags() {
		return nil, fmt.Errorf("social: %d tag names for %d store tags", names.Tags.Len(), st.NumTags())
	}
	cfg, err := normalizeConfig(cfg)
	if err != nil {
		return nil, err
	}
	caches, err := newSeekerCaches(cfg)
	if err != nil {
		return nil, err
	}
	o, err := overlay.New(g, st)
	if err != nil {
		return nil, err
	}
	eng, err := overlay.NewEngine(o, core.Config{Proximity: cfg.Proximity, Beta: cfg.Beta}, 0)
	if err != nil {
		return nil, err
	}
	return &Service{cfg: cfg, caches: caches, names: names, overlay: o, engine: eng}, nil
}
