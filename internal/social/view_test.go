package social

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/search"
)

// TestViewConcurrentWritersAndReaders hammers the lock-free read path
// while writers keep growing the vocabulary, verifying (under -race)
// that queries never see torn state and that new names become visible
// once flushed.
func TestViewConcurrentWritersAndReaders(t *testing.T) {
	cfg := DefaultServiceConfig()
	cfg.AutoCompactEvery = 4 // compact (and republish the view) often
	svc, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Befriend("alice", "bob", 0.9); err != nil {
		t.Fatal(err)
	}
	if err := svc.Tag("bob", "luigis", "pizza"); err != nil {
		t.Fatal(err)
	}
	if err := svc.Flush(); err != nil {
		t.Fatal(err)
	}

	const writers, readers, iters = 2, 4, 300
	var wg sync.WaitGroup
	errc := make(chan error, writers+readers)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				u := fmt.Sprintf("user-%d-%d", w, i)
				if err := svc.Befriend("alice", u, 0.5); err != nil {
					errc <- err
					return
				}
				if err := svc.Tag(u, fmt.Sprintf("item-%d-%d", w, i), "pizza"); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var resp search.Response
			for i := 0; i < iters; i++ {
				err := svc.DoInto(context.Background(), search.Request{
					Seeker: "alice", Tags: []string{"pizza"}, K: 5,
				}, &resp)
				if err != nil && !errors.Is(err, search.ErrInvalid) {
					errc <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// After a flush every written name answers through the (refreshed)
	// fast path.
	if err := svc.Flush(); err != nil {
		t.Fatal(err)
	}
	resp, err := svc.Do(context.Background(), search.Request{
		Seeker: fmt.Sprintf("user-%d-%d", writers-1, iters-1), Tags: []string{"pizza"}, K: 3,
	})
	if err != nil {
		t.Fatalf("late-added seeker not resolvable: %v", err)
	}
	if len(resp.Results) == 0 {
		t.Fatal("late-added seeker got no results for its own tag")
	}
}

// TestViewFallbackSeesUnflushedNames: a name interned but absent from
// the published view's frozen dictionaries must still be resolved by
// the locked fallback (it is not "unknown"), while a genuinely unknown
// name keeps erroring with ErrInvalid.
func TestViewFallbackSeesUnflushedNames(t *testing.T) {
	cfg := DefaultServiceConfig()
	cfg.AutoCompactEvery = 1 << 30 // no auto-compaction: views refresh only on Flush
	svc, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Befriend("alice", "bob", 0.9); err != nil {
		t.Fatal(err)
	}
	if err := svc.Tag("bob", "luigis", "pizza"); err != nil {
		t.Fatal(err)
	}
	if err := svc.Flush(); err != nil {
		t.Fatal(err)
	}

	// carol is interned after the view was published: the frozen
	// dictionary misses her, the live one resolves her. The engine
	// snapshot predates her, so the query errors — but NOT with the
	// unknown-user ErrInvalid, which is what proves the fallback ran.
	if err := svc.Befriend("alice", "carol", 0.5); err != nil {
		t.Fatal(err)
	}
	_, err = svc.Do(context.Background(), search.Request{Seeker: "carol", Tags: []string{"pizza"}, K: 3})
	if err == nil || errors.Is(err, search.ErrInvalid) {
		t.Fatalf("uncompacted seeker err = %v, want non-ErrInvalid engine error (fallback must resolve the name)", err)
	}

	// A flushed seeker keeps answering, and an unknown one keeps failing.
	if _, err := svc.Do(context.Background(), search.Request{Seeker: "alice", Tags: []string{"pizza"}, K: 3}); err != nil {
		t.Fatalf("flushed seeker: %v", err)
	}
	if _, err := svc.Do(context.Background(), search.Request{Seeker: "nobody", K: 3}); !errors.Is(err, search.ErrInvalid) {
		t.Fatalf("unknown seeker err = %v, want ErrInvalid", err)
	}
}

// TestDegradeHook: the hook fires per query, can rewrite the mode, and
// its verdict is reflected as Degraded plus a certified score bound.
func TestDegradeHook(t *testing.T) {
	svc, err := NewService(DefaultServiceConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Befriend("alice", "bob", 0.9); err != nil {
		t.Fatal(err)
	}
	if err := svc.Tag("bob", "luigis", "pizza"); err != nil {
		t.Fatal(err)
	}
	if err := svc.Flush(); err != nil {
		t.Fatal(err)
	}

	svc.SetDegradeHook(func(req *search.Request) bool {
		if req.Mode == search.ModeAuto {
			req.Mode = search.ModeApprox
			return true
		}
		return false
	})
	resp, err := svc.Do(context.Background(), search.Request{Seeker: "alice", Tags: []string{"pizza"}, K: 3, Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded {
		t.Fatal("degraded query not marked Degraded")
	}
	if resp.ScoreBound == 0 {
		t.Fatal("degraded response missing certified ScoreBound")
	}
	if resp.Explain == nil || !resp.Explain.Degraded {
		t.Fatalf("explain not marked degraded: %+v", resp.Explain)
	}

	// Explicit exact mode is not degraded; the response flags reset.
	resp, err = svc.Do(context.Background(), search.Request{Seeker: "alice", Tags: []string{"pizza"}, K: 3, Mode: search.ModeExact})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Degraded || resp.ScoreBound != 0 {
		t.Fatalf("exact-mode response wrongly degraded: %+v", resp)
	}

	svc.SetDegradeHook(nil)
	resp, err = svc.Do(context.Background(), search.Request{Seeker: "alice", Tags: []string{"pizza"}, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Degraded {
		t.Fatal("cleared hook still degrading")
	}
}
