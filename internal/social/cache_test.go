package social

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/proximity"
)

func TestSeekerCacheHitsAccumulate(t *testing.T) {
	svc := pizzaWorld(t, 0)
	for i := 0; i < 3; i++ {
		if _, err := svc.Search("alice", []string{"pizza"}, 5); err != nil {
			t.Fatal(err)
		}
	}
	st := svc.Stats()
	if st.SeekerCache.Misses != 1 || st.SeekerCache.Hits != 2 {
		t.Fatalf("cache counters = %+v, want 1 miss then 2 hits", st.SeekerCache)
	}
	if st.SeekerCacheEntries != 1 {
		t.Fatalf("entries = %d, want 1", st.SeekerCacheEntries)
	}
}

func TestSeekerCacheInvalidatedByBefriend(t *testing.T) {
	svc := pizzaWorld(t, 0) // compact on every write: mutations visible immediately
	res, err := svc.Search("alice", []string{"pizza"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Item == "chain" {
			t.Fatalf("frank's item visible before befriending: %+v", res)
		}
	}
	// A new edge must invalidate alice's cached horizon so the next
	// search sees frank's world.
	if err := svc.Befriend("alice", "frank", 0.9); err != nil {
		t.Fatal(err)
	}
	res, err = svc.Search("alice", []string{"pizza"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range res {
		found = found || r.Item == "chain"
	}
	if !found {
		t.Fatalf("cached search missed post-mutation item: %+v", res)
	}
	if st := svc.Stats(); st.SeekerCache.Invalidations == 0 {
		t.Fatalf("no invalidations recorded: %+v", st.SeekerCache)
	}
}

func TestSeekerCacheSurvivesTagOnlyWrites(t *testing.T) {
	svc := pizzaWorld(t, 0)
	if _, err := svc.Search("alice", []string{"pizza"}, 5); err != nil {
		t.Fatal(err)
	}
	// Tags touch the store, not the graph: the cached horizon stays
	// valid AND the new tagging action must still be visible (the tag
	// data flows from the engine snapshot, not the horizon).
	if err := svc.Tag("bob", "dominos", "pizza"); err != nil {
		t.Fatal(err)
	}
	res, err := svc.Search("alice", []string{"pizza"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range res {
		found = found || r.Item == "dominos"
	}
	if !found {
		t.Fatalf("tag write invisible through cached horizon: %+v", res)
	}
	st := svc.Stats()
	if st.SeekerCache.Hits == 0 {
		t.Fatalf("tag-only write evicted the horizon: %+v", st.SeekerCache)
	}
	if st.SeekerCache.Invalidations != 0 {
		t.Fatalf("tag-only write invalidated the cache: %+v", st.SeekerCache)
	}
}

func TestSeekerCacheDisabled(t *testing.T) {
	cfg := DefaultServiceConfig()
	cfg.AutoCompactEvery = 0
	cfg.SeekerCacheSize = -1
	svc, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Befriend("a", "b", 0.5); err != nil {
		t.Fatal(err)
	}
	if err := svc.Tag("b", "i", "t"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := svc.Search("a", []string{"t"}, 3); err != nil {
			t.Fatal(err)
		}
	}
	if st := svc.Stats(); st.SeekerCache.Hits != 0 || st.SeekerCache.Misses != 0 {
		t.Fatalf("disabled cache recorded traffic: %+v", st.SeekerCache)
	}
}

func TestServingConfigValidation(t *testing.T) {
	cfg := DefaultServiceConfig()
	cfg.BatchWorkers = -1
	if _, err := NewService(cfg); err == nil {
		t.Fatal("negative BatchWorkers accepted")
	}
	// Zero values mean defaults.
	svc, err := NewService(ServiceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if svc.cfg.SeekerCacheSize != DefaultSeekerCacheSize || svc.cfg.BatchWorkers != DefaultBatchWorkers {
		t.Fatalf("defaults not applied: %+v", svc.cfg)
	}
}

// TestCachedMatchesUncachedUnderMutations drives a cached and an
// uncached service through an identical randomized stream of
// interleaved mutations and searches; every answer must agree.
func TestCachedMatchesUncachedUnderMutations(t *testing.T) {
	mk := func(cacheSize int) *Service {
		cfg := DefaultServiceConfig()
		cfg.Proximity = proximity.Params{Alpha: 0.6, SelfWeight: 1, MinSigma: 0.01}
		cfg.AutoCompactEvery = 3 // non-trivial compaction cadence
		cfg.SeekerCacheSize = cacheSize
		svc, err := NewService(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return svc
	}
	cached, uncached := mk(8), mk(-1)
	rng := rand.New(rand.NewSource(7))
	user := func() string { return fmt.Sprintf("u%d", rng.Intn(12)) }
	for step := 0; step < 400; step++ {
		switch rng.Intn(4) {
		case 0:
			a, b := user(), user()
			if a == b {
				continue
			}
			w := 0.1 + 0.9*rng.Float64()
			e1, e2 := cached.Befriend(a, b, w), uncached.Befriend(a, b, w)
			if (e1 == nil) != (e2 == nil) {
				t.Fatalf("step %d: befriend divergence: %v vs %v", step, e1, e2)
			}
		case 1:
			u, i, tg := user(), fmt.Sprintf("i%d", rng.Intn(20)), fmt.Sprintf("t%d", rng.Intn(4))
			e1, e2 := cached.Tag(u, i, tg), uncached.Tag(u, i, tg)
			if (e1 == nil) != (e2 == nil) {
				t.Fatalf("step %d: tag divergence: %v vs %v", step, e1, e2)
			}
		default:
			seeker := user()
			tags := []string{fmt.Sprintf("t%d", rng.Intn(4))}
			k := 1 + rng.Intn(6)
			r1, e1 := cached.Search(seeker, tags, k)
			r2, e2 := uncached.Search(seeker, tags, k)
			if (e1 == nil) != (e2 == nil) {
				t.Fatalf("step %d: search divergence: %v vs %v", step, e1, e2)
			}
			if e1 != nil {
				continue
			}
			if !reflect.DeepEqual(r1, r2) {
				t.Fatalf("step %d: cached %+v != uncached %+v", step, r1, r2)
			}
		}
	}
	if st := cached.Stats(); st.SeekerCache.Hits == 0 || st.SeekerCache.Invalidations == 0 {
		t.Fatalf("stream did not exercise the cache: %+v", st.SeekerCache)
	}
}

func TestSearchBatch(t *testing.T) {
	svc := pizzaWorld(t, 0)
	queries := []BatchQuery{
		{Seeker: "alice", Tags: []string{"pizza"}, K: 3},
		{Seeker: "nobody", Tags: []string{"pizza"}, K: 3},
		{Seeker: "bob", Tags: []string{"pizza"}, K: 2},
		{Seeker: "alice", Tags: []string{"quantum"}, K: 1},
		{Seeker: "alice", Tags: []string{"pizza"}, K: 3},
	}
	out := svc.SearchBatch(queries)
	if len(out) != len(queries) {
		t.Fatalf("got %d results for %d queries", len(out), len(queries))
	}
	if out[1].Err == nil || out[3].Err == nil {
		t.Fatalf("bad queries did not fail: %+v", out)
	}
	if out[0].Err != nil || out[2].Err != nil || out[4].Err != nil {
		t.Fatalf("good queries failed: %+v", out)
	}
	// Batch answers must equal sequential answers, in input order.
	for _, i := range []int{0, 2, 4} {
		want, err := svc.Search(queries[i].Seeker, queries[i].Tags, queries[i].K)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(out[i].Results, want) {
			t.Fatalf("query %d: batch %+v != sequential %+v", i, out[i].Results, want)
		}
	}
	if got := svc.SearchBatch(nil); len(got) != 0 {
		t.Fatalf("nil batch returned %+v", got)
	}
}

// TestSearchBatchConcurrentWithMutations hammers SearchBatch against
// concurrent writers; run with -race.
func TestSearchBatchConcurrentWithMutations(t *testing.T) {
	svc := pizzaWorld(t, 2)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			svc.Befriend(fmt.Sprintf("w%d", i%5), "alice", 0.5)
			svc.Tag(fmt.Sprintf("w%d", i%5), fmt.Sprintf("wi%d", i%7), "pizza")
		}
	}()
	for round := 0; round < 20; round++ {
		out := svc.SearchBatch([]BatchQuery{
			{Seeker: "alice", Tags: []string{"pizza"}, K: 5},
			{Seeker: "bob", Tags: []string{"pizza"}, K: 5},
			{Seeker: "dave", Tags: []string{"pizza"}, K: 5},
		})
		for i, r := range out {
			if r.Err != nil {
				t.Errorf("round %d query %d: %v", round, i, r.Err)
			}
		}
	}
	close(stop)
	wg.Wait()
}
