package social

import (
	"context"
)

// Cache warming: the fleet's elastic-resize pre-warm plane. Before a
// topology change flips traffic onto a replica, the orchestrator asks
// the current owners which seekers have resident horizons
// (CachedSeekers) and tells the new owner to materialize exactly those
// (WarmSeekers) — so the first real query after the flip hits a warm
// cache instead of paying the horizon expansion that was already paid
// elsewhere.

// CachedSeekers returns the names of every seeker with a resident
// cached horizon, hottest first within each cache shard. Nil when
// caching is disabled.
func (s *Service) CachedSeekers() []string {
	if s.caches == nil {
		return nil
	}
	ids := s.caches.Seekers()
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(ids))
	for _, id := range ids {
		if n, ok := s.names.Users.Name(id); ok {
			names = append(names, n)
		}
	}
	return names
}

// WarmSeekers materializes and caches the horizons of the named
// seekers, bypassing cold-start admission (qcache.Cache.Warm): the
// entries earned residency on the replica that previously owned them.
// Unknown names are skipped — the joiner may trail the source by a few
// records; those seekers simply warm on first query. Returns how many
// horizons were installed; stops early (with the count so far) when ctx
// is cancelled.
func (s *Service) WarmSeekers(ctx context.Context, seekers []string) (int, error) {
	if s.caches == nil || len(seekers) == 0 {
		return 0, nil
	}
	// Pin the engine snapshot AND the per-shard generations under one
	// lock hold (the same pairing publishLocked gives the read path):
	// generations only move under s.mu, so a horizon materialized from
	// this engine is consistent with these generations, and any later
	// invalidation bumps the generation and makes Warm refuse it.
	s.mu.Lock()
	eng, err := s.engine.Current()
	if err != nil {
		s.mu.Unlock()
		return 0, err
	}
	gens := make([]uint64, s.caches.NumShards())
	for i := range gens {
		gens[i] = s.caches.Shard(i).Generation()
	}
	ids := make([]int32, 0, len(seekers))
	for _, name := range seekers {
		if id, ok := s.names.Users.ID(name); ok {
			ids = append(ids, id)
		}
	}
	s.mu.Unlock()

	warmed := 0
	for _, id := range ids {
		if err := ctx.Err(); err != nil {
			return warmed, err
		}
		shard := s.caches.ShardFor(id)
		cache := s.caches.Shard(shard)
		gen := gens[shard]
		if _, hit := cache.Get(id, gen); hit {
			continue
		}
		h, err := s.materializeSpan(ctx, eng, id)
		if err != nil {
			return warmed, err
		}
		if cache.Warm(id, gen, h) {
			warmed++
		}
	}
	return warmed, nil
}
