package social

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/overlay"
	"repro/internal/tagstore"
	"repro/internal/vocab"
)

// Snapshot streaming: the wire form a joining replica bootstraps from.
// A snapshot is the compacted immutable state (index blob + the three
// vocabularies) pinned at the replication cursor observed under the
// same lock — the joiner imports it and then replays the fleet log
// suffix strictly after that LSN, so no mutation is lost or doubled.
//
// Layout (all lengths are unsigned varints):
//
//	magic   "SNPS"          4 bytes
//	version u8              currently 1
//	lsn     uvarint         replication cursor pinned with the state
//	4 × { len uvarint, bytes }:
//	    index.Write blob (graph + tagstore, self-checksummed)
//	    users, items, tags dictionaries (vocab.Dict.Write form)

var snapshotMagic = [4]byte{'S', 'N', 'P', 'S'}

// SnapshotStreamVersion is the current snapshot wire format version.
const SnapshotStreamVersion = 1

// SnapshotWithCursor is Snapshot plus the replication cursor pinned
// under the same critical section: the returned LSN is exactly the
// last fleet-log record folded into the returned state.
func (s *Service) SnapshotWithCursor() (*graph.Graph, *tagstore.Store, *vocab.Set, uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.writes = 0
	if err := s.compactLocked(); err != nil {
		return nil, nil, nil, 0, err
	}
	g, st := s.overlay.Snapshot()
	names := &vocab.Set{
		Users: s.names.Users.Clone(),
		Items: s.names.Items.Clone(),
		Tags:  s.names.Tags.Clone(),
	}
	return g, st, names, s.appliedLSN, nil
}

// ImportSnapshot hot-swaps the service's entire state for a snapshot
// exported elsewhere, setting the replication cursor to the LSN the
// snapshot was pinned at. All cached horizons are invalidated (they
// describe the old universe) and the read-path view is republished, so
// in-flight queries cut over atomically. Ownership of the arguments
// passes to the service.
func (s *Service) ImportSnapshot(g *graph.Graph, st *tagstore.Store, names *vocab.Set, lsn uint64) error {
	if g == nil || st == nil || names == nil || names.Users == nil || names.Items == nil || names.Tags == nil {
		return fmt.Errorf("social: ImportSnapshot with nil state")
	}
	if names.Users.Len() != g.NumUsers() {
		return fmt.Errorf("social: %d user names for %d graph users", names.Users.Len(), g.NumUsers())
	}
	if names.Items.Len() != st.NumItems() {
		return fmt.Errorf("social: %d item names for %d store items", names.Items.Len(), st.NumItems())
	}
	if names.Tags.Len() != st.NumTags() {
		return fmt.Errorf("social: %d tag names for %d store tags", names.Tags.Len(), st.NumTags())
	}
	o, err := overlay.New(g, st)
	if err != nil {
		return err
	}
	eng, err := overlay.NewEngine(o, core.Config{Proximity: s.cfg.Proximity, Beta: s.cfg.Beta}, 0)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.names = names
	s.overlay = o
	s.engine = eng
	s.writes = 0
	s.friendsDirty = false
	s.dirtyEdges = nil
	s.dirtySet = nil
	s.edgeOverflow = false
	s.appliedLSN = lsn
	if s.caches != nil {
		s.caches.Invalidate()
	}
	s.publishLocked()
	return nil
}

// WriteSnapshotStream serializes a snapshot (as returned by
// SnapshotWithCursor) to w in the framed wire form documented above.
func WriteSnapshotStream(w io.Writer, g *graph.Graph, st *tagstore.Store, names *vocab.Set, lsn uint64) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snapshotMagic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(SnapshotStreamVersion); err != nil {
		return err
	}
	var lb [binary.MaxVarintLen64]byte
	bw.Write(lb[:binary.PutUvarint(lb[:], lsn)])

	var blob bytes.Buffer
	if err := index.Write(&blob, g, st); err != nil {
		return err
	}
	if err := writeSection(bw, blob.Bytes()); err != nil {
		return err
	}
	for _, d := range []*vocab.Dict{names.Users, names.Items, names.Tags} {
		var buf bytes.Buffer
		if err := d.Write(&buf); err != nil {
			return err
		}
		if err := writeSection(bw, buf.Bytes()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSnapshotStream deserializes a stream written by
// WriteSnapshotStream, returning the state and its pinned cursor.
func ReadSnapshotStream(r io.Reader) (*graph.Graph, *tagstore.Store, *vocab.Set, uint64, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, nil, nil, 0, fmt.Errorf("social: reading snapshot magic: %w", err)
	}
	if m != snapshotMagic {
		return nil, nil, nil, 0, fmt.Errorf("social: bad snapshot magic %q", m)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, nil, nil, 0, err
	}
	if ver != SnapshotStreamVersion {
		return nil, nil, nil, 0, fmt.Errorf("social: unsupported snapshot version %d", ver)
	}
	lsn, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, nil, nil, 0, fmt.Errorf("social: reading snapshot lsn: %w", err)
	}
	blob, err := readSection(br)
	if err != nil {
		return nil, nil, nil, 0, fmt.Errorf("social: reading index section: %w", err)
	}
	g, st, err := index.Read(bytes.NewReader(blob))
	if err != nil {
		return nil, nil, nil, 0, err
	}
	names := &vocab.Set{}
	for _, slot := range []**vocab.Dict{&names.Users, &names.Items, &names.Tags} {
		sec, err := readSection(br)
		if err != nil {
			return nil, nil, nil, 0, fmt.Errorf("social: reading vocab section: %w", err)
		}
		d, err := vocab.Read(bytes.NewReader(sec))
		if err != nil {
			return nil, nil, nil, 0, err
		}
		*slot = d
	}
	return g, st, names, lsn, nil
}

func writeSection(bw *bufio.Writer, b []byte) error {
	var lb [binary.MaxVarintLen64]byte
	if _, err := bw.Write(lb[:binary.PutUvarint(lb[:], uint64(len(b)))]); err != nil {
		return err
	}
	_, err := bw.Write(b)
	return err
}

func readSection(br *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	const maxSection = 1 << 32 // 4 GiB: far above any realistic snapshot
	if n > maxSection {
		return nil, fmt.Errorf("social: snapshot section of %d bytes exceeds limit", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(br, b); err != nil {
		return nil, err
	}
	return b, nil
}
