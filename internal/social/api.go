package social

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/planner"
	"repro/internal/qcache"
	"repro/internal/search"
)

// Service implements search.Searcher: Do is the canonical query entry
// point; Search and SearchBatch are thin positional wrappers kept for
// embedders of the v1 surface.
var _ search.Searcher = (*Service)(nil)

// Do answers one request. The request is validated and canonicalized by
// search.Request.Normalize — the single place k defaulting, tag
// normalization and knob range checks live. Execution depends on
// req.Mode:
//
//   - ModeExact: the refine path — exact scores via the seeker-horizon
//     cache; with unbounded horizons the answer equals the ExactSocial
//     oracle's. This is what the v1 Search surface always ran.
//   - ModeAuto: the cost-based planner picks the cheapest exact
//     algorithm (or req.AlgHint forces one); a SocialMerge plan runs
//     through the horizon cache. Scores are certified lower bounds.
//   - ModeApprox: horizon-cached SocialMerge with early termination —
//     the cheapest serving path.
//
// A non-nil req.Beta re-blends social and global scoring for this query
// only. Cancellation: ctx is checked before name resolution and at the
// engine's checkpoints inside horizon expansion and the merge loops.
func (s *Service) Do(ctx context.Context, req search.Request) (search.Response, error) {
	if err := req.Normalize(); err != nil {
		return search.Response{}, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return search.Response{}, err
	}

	// Resolve names and pin the engine snapshot and cache generation
	// together under the lock: compaction (which may swap both) also
	// holds it, so the pair is consistent and the query below is a pure
	// function of it.
	s.mu.Lock()
	uid, ok := s.names.Users.ID(req.Seeker)
	if !ok {
		s.mu.Unlock()
		return search.Response{}, search.WrapInvalid(fmt.Errorf("social: unknown user %q", req.Seeker))
	}
	tagIDs := make([]int32, 0, len(req.Tags))
	for _, t := range req.Tags {
		id, ok := s.names.Tags.ID(t)
		if !ok {
			s.mu.Unlock()
			return search.Response{}, search.WrapInvalid(fmt.Errorf("social: unknown tag %q", t))
		}
		tagIDs = append(tagIDs, id)
	}
	eng, err := s.engine.Current()
	if err != nil {
		s.mu.Unlock()
		return search.Response{}, err
	}
	// Pin the seeker's owning cache shard and its generation together
	// with the snapshot: compaction (which may swap both) also holds
	// s.mu, so the triple is consistent.
	var cache *qcache.Cache
	var cacheShard int
	var gen uint64
	if s.caches != nil && !req.NoCache {
		cacheShard = s.caches.ShardFor(uid)
		cache = s.caches.Shard(cacheShard)
		gen = cache.Generation()
	}
	s.mu.Unlock()

	// Per-query β override: rebuild the (cheap, index-free) engine view
	// over the same immutable snapshot. Horizons depend only on the
	// proximity parameters, which are unchanged, so the seeker cache
	// stays valid for the overridden engine.
	qeng := eng
	if req.Beta != nil && *req.Beta != eng.Beta() {
		qeng, err = core.NewEngine(eng.Graph(), eng.Store(), core.Config{
			Proximity: eng.ProximityParams(),
			Beta:      *req.Beta,
		})
		if err != nil {
			return search.Response{}, err
		}
	}

	ex := &search.Explain{Mode: req.Mode.String(), Beta: qeng.Beta(), CacheShard: cacheShard}
	q := core.Query{Seeker: uid, Tags: tagIDs, K: req.K + req.Offset}
	ans, err := s.execute(ctx, qeng, q, req, cache, gen, ex)
	if err != nil {
		return search.Response{}, err
	}
	ex.Exact = ans.Exact
	ex.UsersSettled = ans.UsersSettled
	ex.SequentialAccesses = ans.Access.Sequential
	ex.RandomAccesses = ans.Access.Random

	// Translate ids back to names under the lock — the dictionaries are
	// append-only, so every id in the snapshot already has a name, but
	// concurrent writers may be appending.
	s.mu.Lock()
	named := make([]search.Result, 0, len(ans.Results))
	for _, r := range ans.Results {
		name, ok := s.names.Items.Name(r.Item)
		if !ok {
			s.mu.Unlock()
			return search.Response{}, fmt.Errorf("social: unnamed item id %d", r.Item)
		}
		named = append(named, search.Result{Item: name, Score: r.Score})
	}
	s.mu.Unlock()

	results := req.Window(named)
	if results == nil {
		results = []search.Result{}
	}
	if n := len(results); n > 0 {
		ex.ScoreBound = results[n-1].Score
	}
	resp := search.Response{Results: results}
	if req.Explain {
		resp.Explain = ex
	}
	return resp, nil
}

// execute runs the id-space query against the pinned snapshot in the
// requested mode, filling the execution half of ex as it goes. cache is
// the seeker's owning cache shard (nil when caching is disabled or the
// request opted out).
func (s *Service) execute(ctx context.Context, eng *core.Engine, q core.Query, req search.Request, cache *qcache.Cache, gen uint64, ex *search.Explain) (core.Answer, error) {
	maxAge := time.Duration(req.MaxCacheAgeMS) * time.Millisecond
	switch req.Mode {
	case search.ModeExact:
		ex.Algorithm = planner.SocialMerge.String()
		return s.horizonAnswer(ctx, eng, q, cache, gen, maxAge, core.Options{RefineScores: true, Ctx: ctx}, ex)
	case search.ModeApprox:
		ex.Algorithm = planner.SocialMerge.String()
		return s.horizonAnswer(ctx, eng, q, cache, gen, maxAge, core.Options{Ctx: ctx}, ex)
	}
	// ModeAuto: plan (or obey the hint), then run — SocialMerge plans go
	// through the horizon cache, everything else runs directly.
	p, err := planner.New(eng)
	if err != nil {
		return core.Answer{}, err
	}
	var alg planner.Algorithm
	if req.AlgHint != "" {
		alg, _ = planner.ParseAlgorithm(req.AlgHint) // Normalize vetted the spelling
		if !p.Available(alg) {
			return core.Answer{}, search.WrapInvalid(fmt.Errorf("social: algorithm %s unavailable on this engine (SocialTA needs an item index, GlobalTopK needs beta = 0)", alg))
		}
	} else {
		plan := p.Plan(q)
		alg = plan.Alg
		ex.Planned = true
		ex.Estimates = make(map[string]float64, len(plan.Est))
		for a, est := range plan.Est {
			ex.Estimates[a.String()] = est
		}
	}
	ex.Algorithm = alg.String()
	if alg == planner.SocialMerge {
		return s.horizonAnswer(ctx, eng, q, cache, gen, maxAge, core.Options{Ctx: ctx}, ex)
	}
	return p.Run(ctx, alg, q)
}

// horizonAnswer executes a SocialMerge-family query through the
// seeker's cache shard when one was pinned. gen is the shard generation
// captured with the snapshot: a cached horizon is used only when valid
// under that generation (and younger than maxAge, when positive), and a
// freshly materialized one is offered back under the same stamp
// (refused if the graph moved meanwhile).
func (s *Service) horizonAnswer(ctx context.Context, eng *core.Engine, q core.Query, cache *qcache.Cache, gen uint64, maxAge time.Duration, opts core.Options, ex *search.Explain) (core.Answer, error) {
	if cache == nil {
		// No cache (disabled, or the request opted out): run the lazy
		// incremental expansion — cheaper than materializing a full
		// horizon nobody will reuse.
		return eng.SocialMerge(q, opts)
	}
	h, hit := cache.Lookup(q.Seeker, gen, maxAge)
	if !hit {
		var err error
		if h, err = eng.MaterializeHorizonCtx(ctx, q.Seeker, s.cfg.MaxHorizonUsers); err != nil {
			return core.Answer{}, err
		}
		cache.Put(q.Seeker, gen, h)
	}
	ex.CacheHit = hit
	ex.CacheGeneration = gen
	ex.HorizonUsers = h.Size()
	ex.HorizonResidual = h.Residual()
	return eng.SocialMergeWithHorizon(q, h, opts)
}

// DoBatch answers many requests concurrently on a pool of
// cfg.BatchWorkers workers, returning outcomes in input order with
// per-request error reporting. Cancellation is honoured at three
// levels: requests not yet handed to a worker fail immediately with
// ctx.Err(), workers skip queued requests once the context is done, and
// in-flight executions abort at the engine's next checkpoint.
func (s *Service) DoBatch(ctx context.Context, reqs []search.Request) []search.BatchResult {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]search.BatchResult, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	workers := s.cfg.BatchWorkers
	if workers > len(reqs) {
		workers = len(reqs)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if err := ctx.Err(); err != nil {
					out[i] = search.BatchResult{Err: err}
					continue
				}
				resp, err := s.Do(ctx, reqs[i])
				out[i] = search.BatchResult{Response: resp, Err: err}
			}
		}()
	}
dispatch:
	for i := range reqs {
		select {
		case jobs <- i:
		case <-ctx.Done():
			// Everything not yet dispatched fails without executing.
			for j := i; j < len(reqs); j++ {
				out[j] = search.BatchResult{Err: ctx.Err()}
			}
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	return out
}
