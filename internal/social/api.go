package social

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/planner"
	"repro/internal/qcache"
	"repro/internal/search"
)

// Service implements search.Searcher: Do is the canonical query entry
// point; Search and SearchBatch are thin positional wrappers kept for
// embedders of the v1 surface.
var _ search.Searcher = (*Service)(nil)

// doScratch is the per-query working storage Do recycles through the
// service pool: id buffers, the engine answer, the name-translated
// result buffer and the explain record. With it, a warm cached query
// touches the allocator only if the caller asked for an Explain copy.
type doScratch struct {
	tagIDs []int32
	ans    core.Answer
	named  []search.Result
	ex     search.Explain
	req    search.Request // hook staging: &req here must not escape doInto's frame
}

// burst carries one worker's horizon across a same-seeker run of batch
// requests when caching is off: the first request materializes, the
// rest reuse — one graph pass amortized over the burst.
type burst struct {
	eng    *core.Engine
	seeker graph.UserID
	h      *core.SeekerHorizon
}

// Do answers one request. The request is validated and canonicalized by
// search.Request.Normalize — the single place k defaulting, tag
// normalization and knob range checks live. Execution depends on
// req.Mode:
//
//   - ModeExact: the refine path — exact scores via the seeker-horizon
//     cache; with unbounded horizons the answer equals the ExactSocial
//     oracle's. This is what the v1 Search surface always ran.
//   - ModeAuto: the cost-based planner picks the cheapest exact
//     algorithm (or req.AlgHint forces one); a SocialMerge plan runs
//     through the horizon cache. Scores are certified lower bounds.
//   - ModeApprox: horizon-cached SocialMerge with early termination —
//     the cheapest serving path.
//
// A non-nil req.Beta re-blends social and global scoring for this query
// only. Cancellation: ctx is checked before name resolution and at the
// engine's checkpoints inside horizon expansion and the merge loops.
func (s *Service) Do(ctx context.Context, req search.Request) (search.Response, error) {
	var resp search.Response
	if err := s.DoInto(ctx, req, &resp); err != nil {
		return search.Response{}, err
	}
	return resp, nil
}

// DoInto is Do writing into a caller-owned Response: resp.Results is
// reused (truncated and appended to) and resp.Explain is cleared unless
// the request asks for one. A caller that recycles the Response across
// queries runs the whole warm cached read path without allocating —
// the engine working state, the horizon adapter and the result
// translation all come from pools or the response itself.
func (s *Service) DoInto(ctx context.Context, req search.Request, resp *search.Response) error {
	return s.doInto(ctx, req, resp, nil)
}

func (s *Service) doInto(ctx context.Context, req search.Request, resp *search.Response, bst *burst) error {
	if err := req.Normalize(); err != nil {
		return err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}

	sc, _ := s.scratch.Get().(*doScratch)
	if sc == nil {
		sc = &doScratch{}
	}

	// Brownout hook (see SetDegradeHook): consulted after normalization
	// so the ladder sees the canonical request; it may downgrade the
	// execution mode in place. The request is staged in the pooled
	// scratch for the call — handing the hook &req directly would make
	// every request escape to the heap, hook installed or not, breaking
	// the zero-allocation warm path.
	degraded := false
	if h, _ := s.degradeHook.Load().(func(*search.Request) bool); h != nil {
		sc.req = req
		degraded = h(&sc.req)
		req = sc.req
		sc.req = search.Request{}
	}
	// One span per executed query on a sampled trace; the nil-span fast
	// path keeps the warm read path allocation-free when untraced.
	ctx, sp := obs.StartSpan(ctx, "social.execute")
	err := s.doIntoScratch(ctx, req, resp, bst, sc, degraded)
	if sp != nil {
		sp.SetAttr("seeker", req.Seeker)
		sp.SetAttr("algorithm", sc.ex.Algorithm)
		sp.SetBool("cache_hit", sc.ex.CacheHit)
		sp.SetInt("horizon_users", int64(sc.ex.HorizonUsers))
		if err != nil {
			sp.SetAttr("error", err.Error())
		}
		sp.End()
	}
	s.scratch.Put(sc)
	return err
}

func (s *Service) doIntoScratch(ctx context.Context, req search.Request, resp *search.Response, bst *burst, sc *doScratch, degraded bool) error {
	// Resolve names and pin the engine snapshot and cache generation
	// together, preferably from the atomically published view — the
	// lock-free fast path. The view's frozen dictionaries may trail the
	// live ones, so any miss (name added since the last clone, or no
	// view yet) falls back wholesale to the locked path, which sees
	// every name. Consistency without the lock comes from the view
	// being immutable: its dictionaries, engine snapshot and cache
	// generations were captured together, and qcache's exact-generation
	// matching turns a stale pinned generation into a clean miss rather
	// than a stale answer.
	var (
		uid        int32
		eng        *core.Engine
		cache      *qcache.Cache
		cacheShard int
		gen        uint64
		v          *queryView
		viewOK     bool
	)
	if v = s.view.Load(); v != nil {
		if id, ok := v.users.ID(req.Seeker); ok {
			sc.tagIDs = sc.tagIDs[:0]
			resolved := true
			for _, t := range req.Tags {
				tid, ok := v.tags.ID(t)
				if !ok {
					resolved = false
					break
				}
				sc.tagIDs = append(sc.tagIDs, tid)
			}
			if resolved {
				uid = id
				eng = v.eng
				if v.gens != nil && !req.NoCache {
					cacheShard = s.caches.ShardFor(uid)
					cache = s.caches.Shard(cacheShard)
					gen = v.gens[cacheShard]
				}
				viewOK = true
			}
		}
	}
	if !viewOK {
		// Slow path: resolve against the live dictionaries and pin the
		// snapshot triple under the lock, exactly as before the view
		// existed. This is also where genuinely unknown names become
		// errors.
		s.mu.Lock()
		id, ok := s.names.Users.ID(req.Seeker)
		if !ok {
			s.mu.Unlock()
			return search.WrapInvalid(fmt.Errorf("social: unknown user %q", req.Seeker))
		}
		uid = id
		sc.tagIDs = sc.tagIDs[:0]
		for _, t := range req.Tags {
			tid, ok := s.names.Tags.ID(t)
			if !ok {
				s.mu.Unlock()
				return search.WrapInvalid(fmt.Errorf("social: unknown tag %q", t))
			}
			sc.tagIDs = append(sc.tagIDs, tid)
		}
		var err error
		eng, err = s.engine.Current()
		if err != nil {
			s.mu.Unlock()
			return err
		}
		if s.caches != nil && !req.NoCache {
			cacheShard = s.caches.ShardFor(uid)
			cache = s.caches.Shard(cacheShard)
			gen = cache.Generation()
		}
		s.mu.Unlock()
	}

	// Per-query β override: rebuild the (cheap, index-free) engine view
	// over the same immutable snapshot. Horizons depend only on the
	// proximity parameters, which are unchanged, so the seeker cache
	// stays valid for the overridden engine.
	qeng := eng
	if req.Beta != nil && *req.Beta != eng.Beta() {
		var err error
		qeng, err = core.NewEngine(eng.Graph(), eng.Store(), core.Config{
			Proximity: eng.ProximityParams(),
			Beta:      *req.Beta,
		})
		if err != nil {
			return err
		}
	}
	if req.NoCache {
		bst = nil // NoCache promises a fresh horizon; no burst reuse
	}

	sc.ex = search.Explain{Mode: req.Mode.String(), Beta: qeng.Beta(), CacheShard: cacheShard}
	q := core.Query{Seeker: uid, Tags: sc.tagIDs, K: req.K + req.Offset}
	if err := s.execute(ctx, qeng, q, req, cache, gen, bst, &sc.ex, &sc.ans); err != nil {
		return err
	}
	sc.ex.Exact = sc.ans.Exact
	sc.ex.UsersSettled = sc.ans.UsersSettled
	sc.ex.SequentialAccesses = sc.ans.Access.Sequential
	sc.ex.RandomAccesses = sc.ans.Access.Random

	// Translate ids back to names. The dictionaries are append-only, so
	// every id in the snapshot already has a name; on the fast path the
	// frozen items dictionary covers all but ids minted after its clone,
	// and those few retry against the live dictionary under the lock.
	sc.named = sc.named[:0]
	if viewOK {
		for _, r := range sc.ans.Results {
			name, ok := v.items.Name(r.Item)
			if !ok {
				if name, ok = s.lockedItemName(r.Item); !ok {
					return fmt.Errorf("social: unnamed item id %d", r.Item)
				}
			}
			sc.named = append(sc.named, search.Result{Item: name, Score: r.Score})
		}
	} else {
		s.mu.Lock()
		for _, r := range sc.ans.Results {
			name, ok := s.names.Items.Name(r.Item)
			if !ok {
				s.mu.Unlock()
				return fmt.Errorf("social: unnamed item id %d", r.Item)
			}
			sc.named = append(sc.named, search.Result{Item: name, Score: r.Score})
		}
		s.mu.Unlock()
	}

	results := req.Window(sc.named)
	// The windowed view aliases scratch storage; copy into the caller's
	// (reused) buffer. A zero-length make hits the runtime's zero-size
	// slot, keeping the non-nil Results invariant allocation-free.
	if resp.Results == nil {
		resp.Results = make([]search.Result, 0, len(results))
	}
	resp.Results = append(resp.Results[:0], results...)
	if n := len(results); n > 0 {
		sc.ex.ScoreBound = results[n-1].Score
	}
	// Degraded responses carry the certified bound (the k-th returned
	// score — see ScoreBound's contract); clear both on reuse otherwise.
	resp.Degraded, resp.ScoreBound = false, 0
	if degraded {
		sc.ex.Degraded = true
		resp.Degraded = true
		resp.ScoreBound = sc.ex.ScoreBound
	}
	resp.Explain = nil
	if req.Explain {
		ex := sc.ex
		resp.Explain = &ex
	}
	return nil
}

// lockedItemName resolves one item id against the live dictionary —
// the fast path's fallback for ids minted after the view's frozen
// clone.
func (s *Service) lockedItemName(id int32) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.names.Items.Name(id)
}

// execute runs the id-space query against the pinned snapshot in the
// requested mode, filling the execution half of ex as it goes. cache is
// the seeker's owning cache shard (nil when caching is disabled or the
// request opted out); ans is the caller's reused answer.
func (s *Service) execute(ctx context.Context, eng *core.Engine, q core.Query, req search.Request, cache *qcache.Cache, gen uint64, bst *burst, ex *search.Explain, ans *core.Answer) error {
	maxAge := time.Duration(req.MaxCacheAgeMS) * time.Millisecond
	switch req.Mode {
	case search.ModeExact:
		ex.Algorithm = planner.SocialMerge.String()
		return s.horizonAnswer(ctx, eng, q, cache, gen, maxAge, core.Options{RefineScores: true, Ctx: ctx}, bst, ex, ans)
	case search.ModeApprox:
		ex.Algorithm = planner.SocialMerge.String()
		return s.horizonAnswer(ctx, eng, q, cache, gen, maxAge, core.Options{Ctx: ctx}, bst, ex, ans)
	}
	// ModeAuto: plan (or obey the hint), then run — SocialMerge plans go
	// through the horizon cache, everything else runs directly.
	p, err := planner.New(eng)
	if err != nil {
		return err
	}
	var alg planner.Algorithm
	if req.AlgHint != "" {
		alg, _ = planner.ParseAlgorithm(req.AlgHint) // Normalize vetted the spelling
		if !p.Available(alg) {
			return search.WrapInvalid(fmt.Errorf("social: algorithm %s unavailable on this engine (SocialTA needs an item index, GlobalTopK needs beta = 0)", alg))
		}
	} else {
		plan := p.Plan(q)
		alg = plan.Alg
		ex.Planned = true
		ex.Estimates = make(map[string]float64, len(plan.Est))
		for a, est := range plan.Est {
			ex.Estimates[a.String()] = est
		}
	}
	ex.Algorithm = alg.String()
	if alg == planner.SocialMerge {
		return s.horizonAnswer(ctx, eng, q, cache, gen, maxAge, core.Options{Ctx: ctx}, bst, ex, ans)
	}
	a, err := p.Run(ctx, alg, q)
	if err != nil {
		return err
	}
	*ans = a
	return nil
}

// horizonAnswer executes a SocialMerge-family query through the
// seeker's cache shard when one was pinned. gen is the shard generation
// captured with the snapshot: a cached horizon is used only when valid
// under that generation (and younger than maxAge, when positive), and a
// freshly materialized one is offered back under the same stamp
// (refused if the graph moved meanwhile).
func (s *Service) horizonAnswer(ctx context.Context, eng *core.Engine, q core.Query, cache *qcache.Cache, gen uint64, maxAge time.Duration, opts core.Options, bst *burst, ex *search.Explain, ans *core.Answer) error {
	if cache == nil {
		// No cache shard pinned. A same-seeker batch burst still gets to
		// amortize the expansion: the worker carries the horizon of its
		// previous request and the answers are identical either way (the
		// materialized stream replays the live expansion's entries and
		// bounds verbatim).
		if bst != nil {
			if bst.h == nil || bst.eng != eng || bst.seeker != q.Seeker {
				h, err := s.materializeSpan(ctx, eng, q.Seeker)
				if err != nil {
					return err
				}
				bst.eng, bst.seeker, bst.h = eng, q.Seeker, h
			}
			ex.HorizonUsers = bst.h.Size()
			ex.HorizonResidual = bst.h.Residual()
			return eng.SocialMergeWithHorizonInto(q, bst.h, opts, ans)
		}
		// Single query, caching disabled (or opted out): run the lazy
		// incremental expansion — cheaper than materializing a full
		// horizon nobody will reuse.
		return eng.SocialMergeInto(q, opts, ans)
	}
	h, hit := cache.Lookup(q.Seeker, gen, maxAge)
	if !hit {
		var err error
		if h, err = s.materializeSpan(ctx, eng, q.Seeker); err != nil {
			return err
		}
		cache.Put(q.Seeker, gen, h)
	}
	ex.CacheHit = hit
	ex.CacheGeneration = gen
	ex.HorizonUsers = h.Size()
	ex.HorizonResidual = h.Residual()
	return eng.SocialMergeWithHorizonInto(q, h, opts, ans)
}

// materializeSpan is MaterializeHorizonCtx under a horizon.materialize
// trace span — cache misses are exactly the expansions worth seeing in
// a trace.
func (s *Service) materializeSpan(ctx context.Context, eng *core.Engine, seeker graph.UserID) (*core.SeekerHorizon, error) {
	_, sp := obs.StartSpan(ctx, "horizon.materialize")
	h, err := eng.MaterializeHorizonCtx(ctx, seeker, s.cfg.MaxHorizonUsers)
	if sp != nil {
		if h != nil {
			sp.SetInt("users", int64(h.Size()))
		}
		sp.End()
	}
	return h, err
}

// DoBatch answers many requests concurrently on a pool of
// cfg.BatchWorkers workers, returning outcomes in input order with
// per-request error reporting. Requests are grouped by seeker and each
// group runs back-to-back on one worker, so a burst of same-seeker
// queries pays for at most one horizon expansion — through the cache
// shard when caching is on, or worker-carried burst state when it is
// off. Cancellation is honoured at three levels: requests not yet
// handed to a worker fail immediately with ctx.Err(), workers skip
// queued requests once the context is done, and in-flight executions
// abort at the engine's next checkpoint.
func (s *Service) DoBatch(ctx context.Context, reqs []search.Request) []search.BatchResult {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]search.BatchResult, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	// Group request indexes by seeker, preserving first-seen order.
	groups := make(map[string][]int, len(reqs))
	order := make([]string, 0, len(reqs))
	for i, r := range reqs {
		if _, ok := groups[r.Seeker]; !ok {
			order = append(order, r.Seeker)
		}
		groups[r.Seeker] = append(groups[r.Seeker], i)
	}
	workers := s.cfg.BatchWorkers
	if workers > len(order) {
		workers = len(order)
	}
	jobs := make(chan []int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idxs := range jobs {
				var bst burst
				for _, i := range idxs {
					if err := ctx.Err(); err != nil {
						out[i] = search.BatchResult{Err: err}
						continue
					}
					var resp search.Response
					err := s.doInto(ctx, reqs[i], &resp, &bst)
					if err != nil {
						out[i] = search.BatchResult{Err: err}
					} else {
						out[i] = search.BatchResult{Response: resp}
					}
				}
			}
		}()
	}
dispatch:
	for gi, seeker := range order {
		select {
		case jobs <- groups[seeker]:
		case <-ctx.Done():
			// Everything not yet dispatched fails without executing.
			for _, sk := range order[gi:] {
				for _, j := range groups[sk] {
					out[j] = search.BatchResult{Err: ctx.Err()}
				}
			}
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	return out
}
