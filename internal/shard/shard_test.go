package shard

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/qcache"
	"repro/internal/search"
	"repro/internal/tagstore"
)

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(0, 0); err == nil {
		t.Error("0 shards accepted")
	}
	if _, err := NewRing(4, -1); err == nil {
		t.Error("negative vnodes accepted")
	}
}

func TestRingDeterministicAndStable(t *testing.T) {
	r1, err := NewRing(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := NewRing(8, 0)
	for u := graph.UserID(0); u < 1000; u++ {
		if r1.OwnerUser(u) != r2.OwnerUser(u) {
			t.Fatalf("ring not deterministic for user %d", u)
		}
	}
	if r1.OwnerString("alice") != r2.OwnerString("alice") {
		t.Fatal("ring not deterministic for strings")
	}
}

func TestRingSpreadsLoad(t *testing.T) {
	const shards, users = 8, 10000
	r, err := NewRing(shards, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, shards)
	for u := graph.UserID(0); u < users; u++ {
		counts[r.OwnerUser(u)]++
	}
	for s, n := range counts {
		if n == 0 {
			t.Fatalf("shard %d owns no users", s)
		}
		// Virtual nodes should keep every shard within 3x of the mean.
		if n > 3*users/shards {
			t.Fatalf("shard %d owns %d of %d users", s, n, users)
		}
	}
}

// TestRingResizeStability: growing the fleet must remap only a modest
// fraction of keys — the consistent-hashing property a plain modulus
// lacks.
func TestRingResizeStability(t *testing.T) {
	const users = 10000
	r8, _ := NewRing(8, 0)
	r9, _ := NewRing(9, 0)
	moved := 0
	for u := graph.UserID(0); u < users; u++ {
		if r8.OwnerUser(u) != r9.OwnerUser(u) {
			moved++
		}
	}
	// Ideal is 1/9 ≈ 11%; allow generous slack but reject modulus-like
	// behaviour (a plain mod remaps ~89%).
	if moved > users/3 {
		t.Fatalf("resize 8→9 moved %d of %d keys", moved, users)
	}

	// The smoke resizes 3→5→3: at both sizes the failover spread must
	// stay uniform — every shard owns within 2x of its fair share of
	// keys, and a dead owner's keys spill across ALL survivors, each
	// catching within 3x of its fair share of the spill.
	for _, shards := range []int{3, 5} {
		r, err := NewRing(shards, 0)
		if err != nil {
			t.Fatal(err)
		}
		const keys = 6000
		owned := make([]int, shards)
		spill := make([]map[int]int, shards)
		for s := range spill {
			spill[s] = make(map[int]int)
		}
		for i := 0; i < keys; i++ {
			succ := r.SuccessorsString(fmt.Sprintf("seeker-%d", i))
			owned[succ[0]]++
			spill[succ[0]][succ[1]]++
		}
		fair := keys / shards
		for s, n := range owned {
			if n > 2*fair || n < fair/2 {
				t.Fatalf("%d shards: shard %d owns %d keys, fair share %d", shards, s, n, fair)
			}
		}
		for s := range spill {
			if len(spill[s]) != shards-1 {
				t.Fatalf("%d shards: shard %d spills to only %d of %d survivors (%v)",
					shards, s, len(spill[s]), shards-1, spill[s])
			}
			for to, n := range spill[s] {
				if fairSpill := owned[s] / (shards - 1); n > 3*fairSpill {
					t.Fatalf("%d shards: shard %d dumps %d of %d spilled keys on shard %d",
						shards, s, n, owned[s], to)
				}
			}
		}
	}
}

// TestRingOfMinimalMovement is the resize property test: across grow,
// shrink and mid-slot retirement, a key owned by a slot present on
// both rings NEVER changes owner — every move is to an added slot or
// away from a removed one. This is the invariant elastic resharding
// warms against: the moved slice is exactly what changes hands.
func TestRingOfMinimalMovement(t *testing.T) {
	cases := []struct {
		name     string
		old, new []int
	}{
		{"grow 3→5", []int{0, 1, 2}, []int{0, 1, 2, 3, 4}},
		{"shrink 5→3", []int{0, 1, 2, 3, 4}, []int{0, 1, 2}},
		{"retire middle slot", []int{0, 1, 2, 3, 4}, []int{0, 2, 3, 4}},
		{"rejoin after retirement", []int{0, 2, 3, 4}, []int{0, 1, 2, 3, 4}},
	}
	const keys = 20000
	for _, tc := range cases {
		oldRing, err := NewRingOf(tc.old, 0)
		if err != nil {
			t.Fatal(err)
		}
		newRing, err := NewRingOf(tc.new, 0)
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for i := 0; i < keys; i++ {
			key := fmt.Sprintf("seeker-%d", i)
			was, is := oldRing.OwnerString(key), newRing.OwnerString(key)
			if was == is {
				continue
			}
			moved++
			if newRing.HasSlot(was) && oldRing.HasSlot(is) {
				t.Fatalf("%s: %q moved %d→%d though both slots exist on both rings",
					tc.name, key, was, is)
			}
		}
		// Same invariant at the id level (the cache-shard routing path).
		for u := graph.UserID(0); u < keys; u++ {
			was, is := oldRing.OwnerUser(u), newRing.OwnerUser(u)
			if was != is && newRing.HasSlot(was) && oldRing.HasSlot(is) {
				t.Fatalf("%s: user %d moved %d→%d though both slots exist on both rings",
					tc.name, u, was, is)
			}
		}
		if moved == 0 {
			t.Fatalf("%s: no key moved — resize diff cannot be empty", tc.name)
		}
		// And MovedKeys must report exactly the moved set, keyed by the
		// new owner.
		all := make([]string, keys)
		for i := range all {
			all[i] = fmt.Sprintf("seeker-%d", i)
		}
		diff := MovedKeys(oldRing, newRing, all)
		total := 0
		for slot, ks := range diff {
			total += len(ks)
			for _, k := range ks {
				if newRing.OwnerString(k) != slot {
					t.Fatalf("%s: MovedKeys filed %q under %d, owner is %d",
						tc.name, k, slot, newRing.OwnerString(k))
				}
				if oldRing.OwnerString(k) == slot {
					t.Fatalf("%s: MovedKeys reports unmoved key %q", tc.name, k)
				}
			}
		}
		if total != moved {
			t.Fatalf("%s: MovedKeys reports %d moves, direct count %d", tc.name, total, moved)
		}
	}
}

func TestRingOfValidation(t *testing.T) {
	if _, err := NewRingOf(nil, 0); err == nil {
		t.Error("empty slot set accepted")
	}
	if _, err := NewRingOf([]int{0, 1, 1}, 0); err == nil {
		t.Error("duplicate slot accepted")
	}
	if _, err := NewRingOf([]int{-1, 0}, 0); err == nil {
		t.Error("negative slot accepted")
	}
	r, err := NewRingOf([]int{0, 2, 5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Shards() != 3 {
		t.Fatalf("Shards() = %d, want 3", r.Shards())
	}
	for _, s := range []int{0, 2, 5} {
		if !r.HasSlot(s) {
			t.Fatalf("HasSlot(%d) = false", s)
		}
	}
	for _, s := range []int{1, 3, 4, 6} {
		if r.HasSlot(s) {
			t.Fatalf("HasSlot(%d) = true", s)
		}
	}
	succ := r.SuccessorsString("alice")
	if len(succ) != 3 {
		t.Fatalf("successors over sparse slots: %v", succ)
	}
	// Equal-labelled rings agree regardless of construction path.
	classic, _ := NewRing(3, 0)
	viaSlots, _ := NewRingOf([]int{0, 1, 2}, 0)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("k%d", i)
		if classic.OwnerString(key) != viaSlots.OwnerString(key) {
			t.Fatalf("NewRing and NewRingOf disagree on %q", key)
		}
	}
}

func shardTestEngine(t testing.TB, n int) *core.Engine {
	t.Helper()
	gb := graph.NewBuilder(n)
	for u := 0; u < n-1; u++ {
		gb.AddEdge(graph.UserID(u), graph.UserID(u+1), 0.5)
	}
	g, err := gb.Build()
	if err != nil {
		t.Fatal(err)
	}
	tb := tagstore.NewBuilder(n, n, 1)
	for u := 0; u < n; u++ {
		tb.Add(int32(u), tagstore.ItemID(u), 0)
	}
	store, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEngine(g, store, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestCachesRouteAndInvalidate(t *testing.T) {
	e := shardTestEngine(t, 16)
	cs, err := NewCaches(CacheConfig{Shards: 4, Capacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Install a horizon per seeker in its owning shard, the way a
	// service does.
	for u := graph.UserID(0); u < 16; u++ {
		c := cs.For(u)
		h, err := e.MaterializeHorizon(u, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !c.Put(u, c.Generation(), h) {
			t.Fatalf("seeker %d refused", u)
		}
	}
	if cs.Len() != 16 {
		t.Fatalf("fleet holds %d entries, want 16", cs.Len())
	}
	// Ownership is exclusive: the same seeker always lands on the same
	// shard, and other shards never see it.
	for u := graph.UserID(0); u < 16; u++ {
		own := cs.ShardFor(u)
		for s := 0; s < cs.NumShards(); s++ {
			c := cs.Shard(s)
			_, ok := c.Get(u, c.Generation())
			if (s == own) != ok {
				t.Fatalf("seeker %d: shard %d hit=%v, owner is %d", u, s, ok, own)
			}
		}
	}
	// An edge drop fans out to every shard but only touches affected
	// entries. Horizons are 4 users wide on a line, so edge (0,1)
	// affects only seekers near the line's start.
	dropped := cs.InvalidateEdges([][2]graph.UserID{{0, 1}})
	if dropped == 0 || dropped > 6 {
		t.Fatalf("edge (0,1) dropped %d entries", dropped)
	}
	if cs.Len() != 16-dropped {
		t.Fatalf("fleet holds %d entries after drop of %d", cs.Len(), dropped)
	}
	agg := cs.Counters()
	if agg.Invalidations != int64(dropped) {
		t.Fatalf("aggregate invalidations %d, want %d", agg.Invalidations, dropped)
	}
	per := cs.PerShard()
	if len(per) != 4 {
		t.Fatalf("%d per-shard snapshots", len(per))
	}
	total := 0
	for i, s := range per {
		if s.Shard != i {
			t.Fatalf("snapshot %d labelled shard %d", i, s.Shard)
		}
		total += s.Entries
	}
	if total != cs.Len() {
		t.Fatalf("per-shard entries sum %d, fleet len %d", total, cs.Len())
	}
	cs.Invalidate()
	for u := graph.UserID(0); u < 16; u++ {
		c := cs.For(u)
		if _, ok := c.Get(u, c.Generation()); ok {
			t.Fatalf("seeker %d served after global invalidation", u)
		}
	}
}

func TestCachesValidation(t *testing.T) {
	if _, err := NewCaches(CacheConfig{Shards: -1, Capacity: 8}); err == nil {
		t.Error("negative shard count accepted")
	}
	if cs, err := NewCaches(CacheConfig{Capacity: 8}); err != nil || cs.NumShards() != DefaultShards {
		t.Errorf("zero Shards: caches=%v err=%v, want %d shards", cs, err, DefaultShards)
	}
	if _, err := NewCaches(CacheConfig{Shards: 2, Capacity: 0}); err == nil {
		t.Error("0 capacity accepted")
	}
	if _, err := NewCaches(CacheConfig{Shards: 2, Capacity: 8, Policy: qcache.Policy{MinMisses: -1}}); err == nil {
		t.Error("bad policy accepted")
	}
	// Tiny total capacity still gives every shard at least one slot.
	cs, err := NewCaches(CacheConfig{Shards: 4, Capacity: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cs.NumShards() != 4 {
		t.Fatalf("NumShards = %d", cs.NumShards())
	}
}

// spySearcher records which replica served which seeker.
type spySearcher struct {
	id int

	mu      sync.Mutex
	seekers []string
}

func (s *spySearcher) Do(ctx context.Context, req search.Request) (search.Response, error) {
	s.mu.Lock()
	s.seekers = append(s.seekers, req.Seeker)
	s.mu.Unlock()
	if req.Seeker == "explode" {
		return search.Response{}, fmt.Errorf("replica %d: boom", s.id)
	}
	return search.Response{Results: []search.Result{{Item: fmt.Sprintf("r%d:%s", s.id, req.Seeker), Score: 1}}}, nil
}

func (s *spySearcher) DoBatch(ctx context.Context, reqs []search.Request) []search.BatchResult {
	out := make([]search.BatchResult, len(reqs))
	for i, req := range reqs {
		resp, err := s.Do(ctx, req)
		out[i] = search.BatchResult{Response: resp, Err: err}
	}
	return out
}

func TestRouterRoutesBySeeker(t *testing.T) {
	replicas := []*spySearcher{{id: 0}, {id: 1}, {id: 2}}
	r, err := NewRouter([]search.Searcher{replicas[0], replicas[1], replicas[2]}, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// The same seeker must always land on the same replica.
	for i := 0; i < 3; i++ {
		if _, err := r.Do(ctx, search.Request{Seeker: "alice", Tags: []string{"x"}}); err != nil {
			t.Fatal(err)
		}
	}
	owner := r.ReplicaFor("alice")
	for i, rep := range replicas {
		rep.mu.Lock()
		n := len(rep.seekers)
		rep.mu.Unlock()
		if i == owner && n != 3 {
			t.Fatalf("owner replica %d served %d queries, want 3", i, n)
		}
		if i != owner && n != 0 {
			t.Fatalf("non-owner replica %d served %d queries", i, n)
		}
	}
}

func TestRouterBatchOrderAndErrors(t *testing.T) {
	reps := []search.Searcher{&spySearcher{id: 0}, &spySearcher{id: 1}, &spySearcher{id: 2}}
	r, err := NewRouter(reps, 0)
	if err != nil {
		t.Fatal(err)
	}
	var reqs []search.Request
	for i := 0; i < 40; i++ {
		seeker := fmt.Sprintf("user-%d", i)
		if i%7 == 3 {
			seeker = "explode"
		}
		reqs = append(reqs, search.Request{Seeker: seeker, Tags: []string{"x"}})
	}
	out := r.DoBatch(context.Background(), reqs)
	if len(out) != len(reqs) {
		t.Fatalf("%d outcomes for %d requests", len(out), len(reqs))
	}
	for i, br := range out {
		if reqs[i].Seeker == "explode" {
			if br.Err == nil {
				t.Fatalf("entry %d: expected error", i)
			}
			continue
		}
		if br.Err != nil {
			t.Fatalf("entry %d: %v", i, br.Err)
		}
		want := fmt.Sprintf("r%d:%s", r.ReplicaFor(reqs[i].Seeker), reqs[i].Seeker)
		if got := br.Response.Results[0].Item; got != want {
			t.Fatalf("entry %d answered by %q, want %q (order scrambled?)", i, got, want)
		}
	}
}

func TestRouterValidation(t *testing.T) {
	if _, err := NewRouter(nil, 0); err == nil {
		t.Error("empty replica set accepted")
	}
	if _, err := NewRouter([]search.Searcher{nil}, 0); err == nil {
		t.Error("nil replica accepted")
	}
}

// errSearcher fails every call with a fixed error.
type errSearcher struct{ err error }

func (e *errSearcher) Do(ctx context.Context, req search.Request) (search.Response, error) {
	return search.Response{}, e.err
}

func (e *errSearcher) DoBatch(ctx context.Context, reqs []search.Request) []search.BatchResult {
	out := make([]search.BatchResult, len(reqs))
	for i := range out {
		out[i] = search.BatchResult{Err: e.err}
	}
	return out
}

// TestRouterDoError pins the single-query error path: a replica's Do
// failure surfaces to the caller untouched (the in-process router has
// no failover — that is the fleet pool's job).
func TestRouterDoError(t *testing.T) {
	boom := fmt.Errorf("replica exploded")
	reps := []search.Searcher{&errSearcher{err: boom}, &errSearcher{err: boom}}
	r, err := NewRouter(reps, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.Do(context.Background(), search.Request{Seeker: "alice", Tags: []string{"x"}})
	if err == nil || err.Error() != boom.Error() {
		t.Fatalf("Do error = %v, want %v", err, boom)
	}
}

// TestRouterDoBatchFailedReplica mixes a healthy replica with one whose
// every request fails: the failed replica's entries error individually,
// the healthy replica's entries still answer, and order is preserved.
func TestRouterDoBatchFailedReplica(t *testing.T) {
	boom := fmt.Errorf("replica down")
	healthy := &spySearcher{id: 0}
	reps := []search.Searcher{healthy, &errSearcher{err: boom}}
	r, err := NewRouter(reps, 0)
	if err != nil {
		t.Fatal(err)
	}
	var reqs []search.Request
	for i := 0; i < 64; i++ {
		reqs = append(reqs, search.Request{Seeker: fmt.Sprintf("user-%d", i), Tags: []string{"x"}})
	}
	out := r.DoBatch(context.Background(), reqs)
	if len(out) != len(reqs) {
		t.Fatalf("%d outcomes for %d requests", len(out), len(reqs))
	}
	sawHealthy, sawFailed := false, false
	for i, br := range out {
		switch r.ReplicaFor(reqs[i].Seeker) {
		case 0:
			sawHealthy = true
			if br.Err != nil {
				t.Fatalf("entry %d on healthy replica failed: %v", i, br.Err)
			}
			if want := fmt.Sprintf("r0:%s", reqs[i].Seeker); br.Response.Results[0].Item != want {
				t.Fatalf("entry %d = %q, want %q", i, br.Response.Results[0].Item, want)
			}
		case 1:
			sawFailed = true
			if br.Err == nil || br.Err.Error() != boom.Error() {
				t.Fatalf("entry %d on failed replica: err = %v, want %v", i, br.Err, boom)
			}
		}
	}
	if !sawHealthy || !sawFailed {
		t.Fatalf("workload did not hit both replicas (healthy=%v failed=%v)", sawHealthy, sawFailed)
	}
}

// TestRouterReplicaForStable pins routing determinism: two routers
// built from identical ring parameters agree on every seeker — the
// property that lets separately-built front-ends (and restarts) route
// the same seeker to the same replica.
func TestRouterReplicaForStable(t *testing.T) {
	build := func() *Router {
		reps := []search.Searcher{&spySearcher{id: 0}, &spySearcher{id: 1}, &spySearcher{id: 2}}
		r, err := NewRouter(reps, 0)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := build(), build()
	for i := 0; i < 500; i++ {
		seeker := fmt.Sprintf("user-%d", i)
		if a.ReplicaFor(seeker) != b.ReplicaFor(seeker) {
			t.Fatalf("seeker %q routed to %d and %d by identical rings", seeker, a.ReplicaFor(seeker), b.ReplicaFor(seeker))
		}
	}
}

// TestRingSuccessors pins the failover preference order: it starts at
// the owner, visits every shard exactly once, is deterministic, and
// spreads a dead owner's keys across several survivors (ring geometry,
// not owner+1).
func TestRingSuccessors(t *testing.T) {
	r, err := NewRing(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	spill := make(map[int]int)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("user-%d", i)
		succ := r.SuccessorsString(key)
		if len(succ) != 5 {
			t.Fatalf("%q: %d successors, want 5", key, len(succ))
		}
		if succ[0] != r.OwnerString(key) {
			t.Fatalf("%q: first successor %d is not the owner %d", key, succ[0], r.OwnerString(key))
		}
		seen := make(map[int]bool)
		for _, s := range succ {
			if seen[s] {
				t.Fatalf("%q: duplicate shard %d in %v", key, s, succ)
			}
			seen[s] = true
		}
		r2, _ := NewRing(5, 0)
		succ2 := r2.SuccessorsString(key)
		for j := range succ {
			if succ[j] != succ2[j] {
				t.Fatalf("%q: successor order differs across identical rings (%v vs %v)", key, succ, succ2)
			}
		}
		if succ[0] == 0 { // keys owned by shard 0: where would they spill?
			spill[succ[1]]++
		}
	}
	if len(spill) < 2 {
		t.Fatalf("shard 0's keys all spill to one shard (%v); want ring-geometry spread", spill)
	}
}
