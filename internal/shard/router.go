package shard

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/search"
)

// Router partitions the canonical search surface across N replica
// Searchers by consistent hashing over the request seeker: every query
// for a given seeker lands on the same replica, so that replica's
// horizon cache is the only one that ever pays the seeker's expansion.
// It implements search.Searcher and is the in-process prototype of the
// multi-process fleet front door.
type Router struct {
	ring     *Ring
	replicas []search.Searcher
}

var _ search.Searcher = (*Router)(nil)

// NewRouter builds a router over the replicas (≥ 1, none nil).
func NewRouter(replicas []search.Searcher, vnodes int) (*Router, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("shard: router needs >= 1 replica")
	}
	for i, r := range replicas {
		if r == nil {
			return nil, fmt.Errorf("shard: nil replica %d", i)
		}
	}
	ring, err := NewRing(len(replicas), vnodes)
	if err != nil {
		return nil, err
	}
	return &Router{ring: ring, replicas: replicas}, nil
}

// Replicas returns the replica count.
func (r *Router) Replicas() int { return len(r.replicas) }

// ReplicaFor returns the index of the replica owning a seeker name.
func (r *Router) ReplicaFor(seeker string) int {
	return r.ring.OwnerString(seeker)
}

// Do routes the request to the replica owning its seeker.
func (r *Router) Do(ctx context.Context, req search.Request) (search.Response, error) {
	return r.replicas[r.ring.OwnerString(req.Seeker)].Do(ctx, req)
}

// DoBatch splits the batch by owning replica, runs the sub-batches
// concurrently on the replicas' own worker pools, and reassembles the
// outcomes in input order. Per-request errors stay per-request; a
// cancelled ctx is handled by each replica's DoBatch (unstarted
// requests fail with ctx.Err()).
func (r *Router) DoBatch(ctx context.Context, reqs []search.Request) []search.BatchResult {
	out := make([]search.BatchResult, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	if len(r.replicas) == 1 {
		return r.replicas[0].DoBatch(ctx, reqs)
	}
	subs := make([][]search.Request, len(r.replicas))
	positions := make([][]int, len(r.replicas))
	for i, req := range reqs {
		s := r.ring.OwnerString(req.Seeker)
		subs[s] = append(subs[s], req)
		positions[s] = append(positions[s], i)
	}
	var wg sync.WaitGroup
	for s := range r.replicas {
		if len(subs[s]) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for j, br := range r.replicas[s].DoBatch(ctx, subs[s]) {
				out[positions[s][j]] = br
			}
		}(s)
	}
	wg.Wait()
	return out
}
