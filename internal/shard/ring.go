// Package shard is the sharded serving spine: it partitions seekers
// across N shards by consistent hashing so each shard owns its
// seekers' cached horizons (Caches) and, one level up, so whole
// requests can be routed across N engine replicas (Router).
//
// Consistent hashing — a ring of virtual nodes rather than a plain
// modulus — is deliberate: shard ownership is stable under fleet
// resizing (growing from N to N+1 shards remaps only ~1/(N+1) of the
// seekers), which is the property the later multi-process fleet needs
// to warm new replicas without cold-starting every cache at once.
package shard

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// DefaultVirtualNodes is the number of ring points per shard. 64 keeps
// the load imbalance between shards within a few percent while the
// ring stays small enough that building and searching it is noise.
const DefaultVirtualNodes = 64

// Ring maps keys to shard slots by consistent hashing. A slot is a
// stable integer label: the classic NewRing labels them 0..N-1, while
// NewRingOf accepts an arbitrary slot set so an elastic fleet can
// retire slot 1 and keep slots {0, 2, 4} without renumbering — a
// slot's ring points depend only on its own label, so adding or
// removing a slot moves exactly that slot's points and nothing else.
type Ring struct {
	shards  int
	slots   []int       // sorted slot labels
	maxSlot int         // largest slot label
	points  []ringPoint // hash-ascending
}

type ringPoint struct {
	hash  uint64
	shard int
}

// NewRing builds a ring over the given number of shards (≥ 1) with
// vnodes virtual nodes per shard (0 = DefaultVirtualNodes). The slots
// are labelled 0..shards-1.
func NewRing(shards, vnodes int) (*Ring, error) {
	if shards < 1 {
		return nil, fmt.Errorf("shard: %d shards, need >= 1", shards)
	}
	slots := make([]int, shards)
	for s := range slots {
		slots[s] = s
	}
	return NewRingOf(slots, vnodes)
}

// NewRingOf builds a ring over an arbitrary set of slot labels (≥ 1
// distinct, non-negative) with vnodes virtual nodes per slot
// (0 = DefaultVirtualNodes). Two rings sharing a slot label place that
// slot's points identically, which is what makes resizes minimal: keys
// only ever move to an added slot or away from a removed one.
func NewRingOf(slots []int, vnodes int) (*Ring, error) {
	if len(slots) < 1 {
		return nil, fmt.Errorf("shard: empty slot set, need >= 1")
	}
	if vnodes < 0 {
		return nil, fmt.Errorf("shard: negative virtual node count %d", vnodes)
	}
	if vnodes == 0 {
		vnodes = DefaultVirtualNodes
	}
	sorted := append([]int(nil), slots...)
	sort.Ints(sorted)
	for i, s := range sorted {
		if s < 0 {
			return nil, fmt.Errorf("shard: negative slot label %d", s)
		}
		if i > 0 && s == sorted[i-1] {
			return nil, fmt.Errorf("shard: duplicate slot label %d", s)
		}
	}
	r := &Ring{
		shards:  len(sorted),
		slots:   sorted,
		maxSlot: sorted[len(sorted)-1],
		points:  make([]ringPoint, 0, len(sorted)*vnodes),
	}
	for _, s := range sorted {
		for v := 0; v < vnodes; v++ {
			// Hash the (slot, vnode) pair as a little label; FNV keeps
			// the ring deterministic across processes and restarts.
			h := fnv1a(uint64(s)<<32 | uint64(v))
			r.points = append(r.points, ringPoint{hash: h, shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r, nil
}

// Shards returns the number of slots on the ring.
func (r *Ring) Shards() int { return r.shards }

// Slots returns the ring's slot labels, ascending. Callers must not
// mutate the returned slice.
func (r *Ring) Slots() []int { return r.slots }

// HasSlot reports whether the given slot label is on the ring.
func (r *Ring) HasSlot(slot int) bool {
	i := sort.SearchInts(r.slots, slot)
	return i < len(r.slots) && r.slots[i] == slot
}

// Owner returns the shard owning an arbitrary pre-hashed key: the first
// ring point at or clockwise-after the key's hash.
func (r *Ring) Owner(key uint64) int {
	h := fnv1a(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// OwnerUser returns the shard owning a seeker id.
func (r *Ring) OwnerUser(u graph.UserID) int {
	return r.Owner(uint64(uint32(u)))
}

// OwnerString returns the shard owning a string key (a name-level
// seeker a router sees before id resolution).
func (r *Ring) OwnerString(s string) int {
	return r.points[r.startString(s)].shard
}

// SuccessorsString returns every shard index exactly once, ordered by
// clockwise ring traversal from the key's hash — the owner first, then
// the shards a fleet router spills to when earlier choices are
// unhealthy. Walking the ring (instead of owner+1, owner+2, …) keeps
// the spill deterministic per key while spreading one dead shard's
// keys across the survivors by ring geometry rather than dumping them
// all on a single neighbour.
func (r *Ring) SuccessorsString(s string) []int {
	out := make([]int, 0, r.shards)
	seen := make([]bool, r.maxSlot+1)
	start := r.startString(s)
	for i := 0; i < len(r.points) && len(out) < r.shards; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.shard] {
			seen[p.shard] = true
			out = append(out, p.shard)
		}
	}
	return out
}

// MovedKeys computes the ring-slice diff of a resize: which of the
// given string keys change owner between old and new, grouped by their
// new owner slot. Because a slot's points depend only on its own
// label, the moved set is exactly the minimal slice — keys either move
// to a slot added in new or away from a slot removed from old; a key
// owned by a slot present on both rings never moves (see the property
// test). The result is what resize orchestration warms: for a join,
// the joiner's entry lists the horizons to transfer; for a retirement,
// each entry lists what a ring successor inherits.
func MovedKeys(old, new *Ring, keys []string) map[int][]string {
	moved := make(map[int][]string)
	for _, k := range keys {
		was, is := old.OwnerString(k), new.OwnerString(k)
		if was != is {
			moved[is] = append(moved[is], k)
		}
	}
	return moved
}

// startString returns the index of the first ring point at or
// clockwise-after the string key's hash.
func (r *Ring) startString(s string) int {
	h := uint64(fnvOffset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	h = mix64(h)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// fnv1a hashes the 8 bytes of v, little-endian, then avalanches the
// result. The finalizer matters: plain FNV-1a has weak diffusion on
// the highly structured inputs this ring hashes — sequential user ids
// and (shard, vnode) labels — leaving the ring's shard sequence nearly
// periodic, which both skews load and, worse, concentrates a dead
// shard's failover spill (SuccessorsString) onto a single survivor.
func fnv1a(v uint64) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < 8; i++ {
		h ^= v >> (8 * i) & 0xff
		h *= fnvPrime
	}
	return mix64(h)
}

// mix64 is the splitmix64 finalizer: a cheap, deterministic full-
// avalanche permutation of the hash space.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
