package shard

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/qcache"
)

// DefaultShards is the shard count substituted when a CacheConfig
// leaves Shards zero — the single place the fleet-wide default lives.
const DefaultShards = 4

// CacheConfig tunes a sharded cache fleet.
type CacheConfig struct {
	// Shards is the number of cache shards (0 = DefaultShards). Each
	// shard is an independently locked qcache.Cache owning the seekers
	// the ring assigns to it, so lock contention and invalidation blast
	// radius shrink with the shard count.
	Shards int
	// Capacity is the TOTAL entry budget, split evenly across shards
	// (each shard gets at least 1).
	Capacity int
	// Policy is the per-shard admission/TTL policy (see qcache.Policy).
	Policy qcache.Policy
	// VirtualNodes configures the ring (0 = DefaultVirtualNodes).
	VirtualNodes int
}

// Caches is a fleet of per-shard seeker-horizon caches behind one
// consistent-hash ring. A seeker's horizon lives in exactly one shard;
// invalidation fans out, since a friendship edge can affect horizons in
// any shard. It is safe for concurrent use.
type Caches struct {
	ring   *Ring
	shards []*qcache.Cache
}

// NewCaches builds the fleet.
func NewCaches(cfg CacheConfig) (*Caches, error) {
	if cfg.Shards == 0 {
		cfg.Shards = DefaultShards
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("shard: %d cache shards, need >= 1", cfg.Shards)
	}
	if cfg.Capacity < 1 {
		return nil, fmt.Errorf("shard: total cache capacity %d, need >= 1", cfg.Capacity)
	}
	ring, err := NewRing(cfg.Shards, cfg.VirtualNodes)
	if err != nil {
		return nil, err
	}
	per := (cfg.Capacity + cfg.Shards - 1) / cfg.Shards
	shards := make([]*qcache.Cache, cfg.Shards)
	for i := range shards {
		c, err := qcache.NewWithPolicy(per, cfg.Policy)
		if err != nil {
			return nil, err
		}
		shards[i] = c
	}
	return &Caches{ring: ring, shards: shards}, nil
}

// NumShards returns the shard count.
func (c *Caches) NumShards() int { return len(c.shards) }

// ShardFor returns the index of the shard owning a seeker.
func (c *Caches) ShardFor(seeker graph.UserID) int {
	return c.ring.OwnerUser(seeker)
}

// For returns the cache shard owning a seeker.
func (c *Caches) For(seeker graph.UserID) *qcache.Cache {
	return c.shards[c.ring.OwnerUser(seeker)]
}

// Shard returns shard i directly (stats, tests).
func (c *Caches) Shard(i int) *qcache.Cache { return c.shards[i] }

// Invalidate logically drops every cached horizon in every shard — the
// global hammer for graph changes edge scoping cannot bound.
func (c *Caches) Invalidate() {
	for _, s := range c.shards {
		s.Invalidate()
	}
}

// InvalidateEdges drops, in every shard, the cached horizons the given
// friendship mutations could affect (see qcache.InvalidateEdges). The
// fan-out is unconditional — an edge's endpoints may appear in horizons
// owned by any shard — but within each shard the drop is scoped to
// affected entries. Returns the total number of entries dropped.
func (c *Caches) InvalidateEdges(edges [][2]graph.UserID) int {
	n := 0
	for _, s := range c.shards {
		n += s.InvalidateEdges(edges)
	}
	return n
}

// Len returns the total number of resident entries across shards.
func (c *Caches) Len() int {
	n := 0
	for _, s := range c.shards {
		n += s.Len()
	}
	return n
}

// Counters returns the fleet-wide aggregate of the per-shard counters.
func (c *Caches) Counters() metrics.CacheSnapshot {
	var agg metrics.CacheSnapshot
	for _, s := range c.shards {
		agg = agg.Add(s.Counters())
	}
	return agg
}

// Seekers returns every seeker with a resident horizon, shard by shard
// (hottest first within each shard; see qcache.Cache.Seekers). The
// fleet's pre-warm transfer enumerates these on the source replica.
func (c *Caches) Seekers() []graph.UserID {
	var out []graph.UserID
	for _, s := range c.shards {
		out = append(out, s.Seekers()...)
	}
	return out
}

// Snapshot is one shard's observable state.
type Snapshot struct {
	Shard    int
	Entries  int
	Counters metrics.CacheSnapshot
}

// PerShard returns each shard's entry count and counters, in shard
// order — what /v1/stats reports so a hot or cold shard is visible.
func (c *Caches) PerShard() []Snapshot {
	out := make([]Snapshot, len(c.shards))
	for i, s := range c.shards {
		out[i] = Snapshot{Shard: i, Entries: s.Len(), Counters: s.Counters()}
	}
	return out
}
