package bench

import (
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/gen"
	"repro/internal/overlay"
	"repro/internal/similarity"
)

// runExt1 measures the serving-layer horizon cache: repeated queries by
// the same seekers under different cache sizes.
func runExt1(cfg Config, w io.Writer) error {
	cfg = cfg.normalized()
	ds, err := primaryDataset(cfg)
	if err != nil {
		return err
	}
	e, err := engineFor(ds, evalEngineConfig())
	if err != nil {
		return err
	}
	// a workload with repetition: the same queries issued 4 times
	wp := workloadFor(cfg)
	wp.NumQueries = cfg.Queries / 2
	if wp.NumQueries < 4 {
		wp.NumQueries = 4
	}
	specs, err := gen.Workload(ds, wp, cfg.Seed)
	if err != nil {
		return err
	}
	var queries []core.Query
	for rep := 0; rep < 4; rep++ {
		for _, s := range specs {
			queries = append(queries, core.Query{Seeker: s.Seeker, Tags: s.Tags, K: 10})
		}
	}

	t := newTable(w, "Ext 1: horizon cache effectiveness — "+ds.Name)
	t.row("cache-size", "total-ms", "hit-rate", "evictions")
	for _, size := range []int{0, 4, 64, 1024} {
		x, err := exec.New(e, exec.Config{Workers: 1, CacheSize: size})
		if err != nil {
			return err
		}
		start := time.Now()
		for _, q := range queries {
			if _, err := x.Query(q, core.Options{}); err != nil {
				return err
			}
		}
		elapsed := float64(time.Since(start).Microseconds()) / 1000
		st := x.Stats()
		hitRate := 0.0
		if st.Hits+st.Misses > 0 {
			hitRate = float64(st.Hits) / float64(st.Hits+st.Misses)
		}
		t.row(size, elapsed, hitRate, st.Evictions)
	}
	t.flush()
	return nil
}

// runExt2 measures dynamic updates: query latency on an overlay as
// mutations accumulate, and the compaction cost that resets it.
func runExt2(cfg Config, w io.Writer) error {
	cfg = cfg.normalized()
	ds, err := primaryDataset(cfg)
	if err != nil {
		return err
	}
	o, err := overlay.New(ds.Graph, ds.Store)
	if err != nil {
		return err
	}
	oe, err := overlay.NewEngine(o, evalEngineConfig(), 0)
	if err != nil {
		return err
	}
	specs, err := gen.Workload(ds, workloadFor(cfg), cfg.Seed)
	if err != nil {
		return err
	}

	t := newTable(w, "Ext 2: dynamic updates — mutations, compaction and query cost")
	t.row("batch", "mutations-pending", "compact-ms", "query-ms-after")
	users := ds.Graph.NumUsers()
	items := ds.Store.NumItems()
	tags := ds.Store.NumTags()
	for batch := 1; batch <= 4; batch++ {
		// apply a batch of synthetic mutations: new taggings + edges
		for i := 0; i < 500; i++ {
			u := int32((batch*7919 + i*104729) % users)
			v := int32((batch*31 + i*7919 + 1) % users)
			if err := oe.Tag(u, int32((i*613)%items), int32((i*389)%tags)); err != nil {
				return err
			}
			if u != v && i%5 == 0 {
				if err := oe.Befriend(u, v, 0.3); err != nil {
					return err
				}
			}
		}
		_, pending := o.Pending()
		start := time.Now()
		if err := oe.Compact(); err != nil {
			return err
		}
		compactMS := float64(time.Since(start).Microseconds()) / 1000

		start = time.Now()
		n := 0
		for _, s := range specs[:min(10, len(specs))] {
			q := core.Query{Seeker: s.Seeker, Tags: s.Tags, K: 10}
			if _, err := oe.SocialMerge(q, core.Options{}); err != nil {
				return err
			}
			n++
		}
		queryMS := float64(time.Since(start).Microseconds()) / 1000 / float64(n)
		t.row(batch, pending, compactMS, queryMS)
	}
	t.flush()
	return nil
}

// runExt3 replaces declared edge weights with behaviour-derived
// similarity weights and measures how much the answers move.
func runExt3(cfg Config, w io.Writer) error {
	cfg = cfg.normalized()
	ds, err := primaryDataset(cfg)
	if err != nil {
		return err
	}
	base, err := engineFor(ds, evalEngineConfig())
	if err != nil {
		return err
	}
	specs, err := gen.Workload(ds, workloadFor(cfg), cfg.Seed)
	if err != nil {
		return err
	}
	ref, err := runQueries(specs, 10, func(q core.Query) (core.Answer, error) {
		return base.SocialMerge(q, core.Options{})
	})
	if err != nil {
		return err
	}
	t := newTable(w, "Ext 3: behaviour-derived edge weights — "+ds.Name)
	t.row("weighting", "latency-ms", "overlap-vs-declared", "users-settled")
	t.row("declared", meanLatencyMS(ref), 1.0, meanSettled(ref))
	for _, m := range []similarity.Measure{similarity.Jaccard, similarity.Cosine} {
		start := time.Now()
		g2, err := similarity.Reweight(ds.Graph, ds.Store, similarity.ReweightParams{
			Measure: m, Floor: 0.05, Blend: 1,
		})
		if err != nil {
			return err
		}
		_ = time.Since(start)
		e2, err := core.NewEngine(g2, ds.Store, evalEngineConfig())
		if err != nil {
			return err
		}
		runs, err := runQueries(specs, 10, func(q core.Query) (core.Answer, error) {
			return e2.SocialMerge(q, core.Options{})
		})
		if err != nil {
			return err
		}
		prec, _ := quality(runs, ref)
		t.row(m.String(), meanLatencyMS(runs), prec, meanSettled(runs))
	}
	t.flush()
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
