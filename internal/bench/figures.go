package bench

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/proximity"
)

// primaryDataset returns the delicious-like corpus, the headline
// workload of the evaluation.
func primaryDataset(cfg Config) (*gen.Dataset, error) {
	return gen.Generate(gen.DeliciousParams().Scale(cfg.Scale), cfg.Seed)
}

// runFig4 sweeps k and reports mean latency of SocialMerge against both
// baselines. Expected shape: SocialMerge ≪ ExactSocial at small k, gap
// narrowing as k grows; GlobalTopK cheapest but unpersonalized.
func runFig4(cfg Config, w io.Writer) error {
	cfg = cfg.normalized()
	ds, err := primaryDataset(cfg)
	if err != nil {
		return err
	}
	e, err := engineFor(ds, evalEngineConfig())
	if err != nil {
		return err
	}
	qs, err := gen.Workload(ds, workloadFor(cfg), cfg.Seed)
	if err != nil {
		return err
	}
	t := newTable(w, "Fig 4: mean query latency (ms) vs k — "+ds.Name)
	t.row("k", "SocialMerge", "ExactSocial", "GlobalTopK")
	for _, k := range []int{1, 5, 10, 20, 50, 100} {
		merge, err := runQueries(qs, k, func(q core.Query) (core.Answer, error) {
			return e.SocialMerge(q, core.Options{})
		})
		if err != nil {
			return err
		}
		exact, err := runQueries(qs, k, e.ExactSocial)
		if err != nil {
			return err
		}
		global, err := runQueries(qs, k, e.GlobalTopK)
		if err != nil {
			return err
		}
		t.row(k, meanLatencyMS(merge), meanLatencyMS(exact), meanLatencyMS(global))
	}
	t.flush()
	return nil
}

// runFig5 reports the hardware-independent cost counters for the same
// sweep: posting-list accesses and users expanded.
func runFig5(cfg Config, w io.Writer) error {
	cfg = cfg.normalized()
	ds, err := primaryDataset(cfg)
	if err != nil {
		return err
	}
	e, err := engineFor(ds, evalEngineConfig())
	if err != nil {
		return err
	}
	qs, err := gen.Workload(ds, workloadFor(cfg), cfg.Seed)
	if err != nil {
		return err
	}
	t := newTable(w, "Fig 5: mean accesses vs k — "+ds.Name)
	t.row("k", "merge-seq", "merge-rand", "merge-users", "exact-seq", "exact-users")
	for _, k := range []int{1, 5, 10, 20, 50, 100} {
		merge, err := runQueries(qs, k, func(q core.Query) (core.Answer, error) {
			return e.SocialMerge(q, core.Options{})
		})
		if err != nil {
			return err
		}
		exact, err := runQueries(qs, k, e.ExactSocial)
		if err != nil {
			return err
		}
		ms, mr, mu := meanAccess(merge)
		es, _, eu := meanAccess(exact)
		t.row(k, ms, mr, mu, es, eu)
	}
	t.flush()
	return nil
}

// runFig6 sweeps the hop-damping factor α. Lower α shrinks effective
// neighbourhoods, so SocialMerge terminates earlier.
func runFig6(cfg Config, w io.Writer) error {
	cfg = cfg.normalized()
	ds, err := primaryDataset(cfg)
	if err != nil {
		return err
	}
	qs, err := gen.Workload(ds, workloadFor(cfg), cfg.Seed)
	if err != nil {
		return err
	}
	t := newTable(w, "Fig 6: SocialMerge vs alpha — "+ds.Name)
	t.row("alpha", "latency-ms", "users-settled", "exact-latency-ms")
	for _, alpha := range []float64{0.5, 0.6, 0.7, 0.8, 0.9, 1.0} {
		ecfg := evalEngineConfig()
		ecfg.Proximity.Alpha = alpha // keep the σ-floor of the eval model
		e, err := engineFor(ds, ecfg)
		if err != nil {
			return err
		}
		merge, err := runQueries(qs, 10, func(q core.Query) (core.Answer, error) {
			return e.SocialMerge(q, core.Options{})
		})
		if err != nil {
			return err
		}
		exact, err := runQueries(qs, 10, e.ExactSocial)
		if err != nil {
			return err
		}
		t.row(alpha, meanLatencyMS(merge), meanSettled(merge), meanLatencyMS(exact))
	}
	t.flush()
	return nil
}

// runFig7 varies the seeker's connectivity (degree percentile).
func runFig7(cfg Config, w io.Writer) error {
	cfg = cfg.normalized()
	ds, err := primaryDataset(cfg)
	if err != nil {
		return err
	}
	e, err := engineFor(ds, evalEngineConfig())
	if err != nil {
		return err
	}
	t := newTable(w, "Fig 7: SocialMerge vs seeker degree percentile — "+ds.Name)
	t.row("degree-pct", "seeker-degree", "latency-ms", "users-settled")
	for _, pct := range []int{10, 50, 90, 99} {
		wp := workloadFor(cfg)
		wp.SeekerPercentile = pct
		qs, err := gen.Workload(ds, wp, cfg.Seed)
		if err != nil {
			return err
		}
		merge, err := runQueries(qs, 10, func(q core.Query) (core.Answer, error) {
			return e.SocialMerge(q, core.Options{})
		})
		if err != nil {
			return err
		}
		deg := ds.Graph.Degree(ds.Graph.DegreePercentileUser(pct))
		t.row(pct, deg, meanLatencyMS(merge), meanSettled(merge))
	}
	t.flush()
	return nil
}

// runFig8 sweeps the approximation knobs and reports quality vs the
// exact answer alongside the latency savings.
func runFig8(cfg Config, w io.Writer) error {
	cfg = cfg.normalized()
	ds, err := primaryDataset(cfg)
	if err != nil {
		return err
	}
	e, err := engineFor(ds, evalEngineConfig())
	if err != nil {
		return err
	}
	qs, err := gen.Workload(ds, workloadFor(cfg), cfg.Seed)
	if err != nil {
		return err
	}
	exact, err := runQueries(qs, 10, func(q core.Query) (core.Answer, error) {
		return e.SocialMerge(q, core.Options{})
	})
	if err != nil {
		return err
	}
	t := newTable(w, "Fig 8: approximation quality — "+ds.Name)
	t.row("variant", "latency-ms", "users-settled", "precision@10", "ndcg@10")
	t.row("exact", meanLatencyMS(exact), meanSettled(exact), 1.0, 1.0)
	// θ below the model's σ-floor (0.1) is a no-op; sweep above it.
	for _, theta := range []float64{0.12, 0.15, 0.2, 0.35} {
		approx, err := runQueries(qs, 10, func(q core.Query) (core.Answer, error) {
			return e.SocialMerge(q, core.Options{Theta: theta})
		})
		if err != nil {
			return err
		}
		prec, ndcg := quality(approx, exact)
		t.row(sprintf("theta=%g", theta), meanLatencyMS(approx), meanSettled(approx), prec, ndcg)
	}
	for _, hops := range []int{1, 2, 3, 4} {
		approx, err := runQueries(qs, 10, func(q core.Query) (core.Answer, error) {
			return e.SocialMerge(q, core.Options{MaxHops: hops})
		})
		if err != nil {
			return err
		}
		prec, ndcg := quality(approx, exact)
		t.row(sprintf("hops=%d", hops), meanLatencyMS(approx), meanSettled(approx), prec, ndcg)
	}
	t.flush()
	return nil
}

// runFig9 scales the network size and compares latency growth.
func runFig9(cfg Config, w io.Writer) error {
	cfg = cfg.normalized()
	t := newTable(w, "Fig 9: scalability — latency (ms) vs network size (delicious-like)")
	t.row("users", "SocialMerge", "ExactSocial", "merge-users-settled")
	for _, scale := range []float64{0.5, 1, 2, 4} {
		p := gen.DeliciousParams().Scale(cfg.Scale * scale)
		ds, err := gen.Generate(p, cfg.Seed)
		if err != nil {
			return err
		}
		e, err := engineFor(ds, evalEngineConfig())
		if err != nil {
			return err
		}
		wp := workloadFor(cfg)
		wp.NumQueries = cfg.Queries / 2 // keep large scales affordable
		if wp.NumQueries < 5 {
			wp.NumQueries = 5
		}
		qs, err := gen.Workload(ds, wp, cfg.Seed)
		if err != nil {
			return err
		}
		merge, err := runQueries(qs, 10, func(q core.Query) (core.Answer, error) {
			return e.SocialMerge(q, core.Options{})
		})
		if err != nil {
			return err
		}
		exact, err := runQueries(qs, 10, e.ExactSocial)
		if err != nil {
			return err
		}
		t.row(ds.Graph.NumUsers(), meanLatencyMS(merge), meanLatencyMS(exact), meanSettled(merge))
	}
	t.flush()
	return nil
}

// runFig10 is the ablation: the plain algorithm against landmark
// pruning and materialized neighbourhoods of two sizes.
func runFig10(cfg Config, w io.Writer) error {
	cfg = cfg.normalized()
	ds, err := primaryDataset(cfg)
	if err != nil {
		return err
	}
	e, err := engineFor(ds, evalEngineConfig())
	if err != nil {
		return err
	}
	lm, err := proximity.BuildLandmarks(ds.Graph, 16, e.ProximityParams())
	if err != nil {
		return err
	}
	e.AttachLandmarks(lm)
	qs, err := gen.Workload(ds, workloadFor(cfg), cfg.Seed)
	if err != nil {
		return err
	}
	exact, err := runQueries(qs, 10, func(q core.Query) (core.Answer, error) {
		return e.SocialMerge(q, core.Options{})
	})
	if err != nil {
		return err
	}
	t := newTable(w, "Fig 10: ablation — "+ds.Name)
	t.row("variant", "latency-ms", "users-settled", "precision@10", "certified")
	t.row("plain", meanLatencyMS(exact), meanSettled(exact), 1.0, certifiedRatio(exact))
	lmRuns, err := runQueries(qs, 10, func(q core.Query) (core.Answer, error) {
		return e.SocialMerge(q, core.Options{LandmarkPrune: true})
	})
	if err != nil {
		return err
	}
	prec, _ := quality(lmRuns, exact)
	t.row("landmark-prune(16)", meanLatencyMS(lmRuns), meanSettled(lmRuns), prec, certifiedRatio(lmRuns))
	for _, l := range []int{64, 256} {
		nbr, err := core.BuildNeighborhoods(ds.Graph, l, e.ProximityParams())
		if err != nil {
			return err
		}
		e.AttachNeighborhoods(nbr)
		runs, err := runQueries(qs, 10, func(q core.Query) (core.Answer, error) {
			return e.SocialMerge(q, core.Options{UseNeighborhoods: true})
		})
		if err != nil {
			return err
		}
		prec, _ := quality(runs, exact)
		t.row(sprintf("neighborhoods(L=%d)", l), meanLatencyMS(runs), meanSettled(runs), prec, certifiedRatio(runs))
	}
	t.flush()
	return nil
}

// runFig11 sweeps β and shows how the answer drifts between the global
// ranking (β=0) and the fully personalized one (β=1).
func runFig11(cfg Config, w io.Writer) error {
	cfg = cfg.normalized()
	ds, err := primaryDataset(cfg)
	if err != nil {
		return err
	}
	qs, err := gen.Workload(ds, workloadFor(cfg), cfg.Seed)
	if err != nil {
		return err
	}
	// reference answers at the extremes
	eSocial, err := engineFor(ds, evalEngineConfig())
	if err != nil {
		return err
	}
	social, err := runQueries(qs, 10, eSocial.ExactSocial)
	if err != nil {
		return err
	}
	global, err := runQueries(qs, 10, eSocial.GlobalTopK)
	if err != nil {
		return err
	}
	t := newTable(w, "Fig 11: blend beta vs result composition — "+ds.Name)
	t.row("beta", "latency-ms", "overlap-vs-social", "overlap-vs-global")
	for _, beta := range []float64{0, 0.25, 0.5, 0.75, 1} {
		ecfg := evalEngineConfig()
		ecfg.Beta = beta
		e, err := engineFor(ds, ecfg)
		if err != nil {
			return err
		}
		runs, err := runQueries(qs, 10, func(q core.Query) (core.Answer, error) {
			return e.SocialMerge(q, core.Options{})
		})
		if err != nil {
			return err
		}
		ps, _ := quality(runs, social)
		pg, _ := quality(runs, global)
		t.row(beta, meanLatencyMS(runs), ps, pg)
	}
	t.flush()
	return nil
}

func certifiedRatio(ms []measured) float64 {
	if len(ms) == 0 {
		return 0
	}
	n := 0
	for _, m := range ms {
		if m.exact {
			n++
		}
	}
	return float64(n) / float64(len(ms))
}

func sprintf(format string, args ...interface{}) string {
	return fmt.Sprintf(format, args...)
}
