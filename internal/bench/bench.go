// Package bench implements the experiment harness: one registered
// runner per table and figure of the (reconstructed) evaluation, each
// regenerating the corresponding rows from scratch — corpus generation,
// workload, algorithm execution, measurement, and table formatting.
// cmd/benchall drives the registry; EXPERIMENTS.md records the output.
package bench

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/proximity"
	"repro/internal/topk"
)

// Config parameterizes an experiment run.
type Config struct {
	// Scale multiplies every corpus preset's universe (1 = paper-scale
	// presets, 0.25 = quick smoke run).
	Scale float64
	// Seed drives all generation deterministically.
	Seed int64
	// Queries is the number of queries measured per data point.
	Queries int
}

// DefaultConfig returns the standard full-run configuration.
func DefaultConfig() Config { return Config{Scale: 1.0, Seed: 42, Queries: 40} }

func (c Config) normalized() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Queries <= 0 {
		c.Queries = 40
	}
	return c
}

// Experiment is one registered table/figure runner.
type Experiment struct {
	// ID is the experiment identifier, e.g. "table1" or "fig4".
	ID string
	// Title describes what the experiment shows.
	Title string
	// Run executes the experiment and writes its table to w.
	Run func(cfg Config, w io.Writer) error
}

// All returns every registered experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{ID: "table1", Title: "Dataset statistics", Run: runTable1},
		{ID: "table2", Title: "Index build time and size", Run: runTable2},
		{ID: "table3", Title: "Exactness: SocialMerge vs ExactSocial", Run: runTable3},
		{ID: "fig4", Title: "Query latency vs k", Run: runFig4},
		{ID: "fig5", Title: "List accesses and users expanded vs k", Run: runFig5},
		{ID: "fig6", Title: "Latency vs proximity damping alpha", Run: runFig6},
		{ID: "fig7", Title: "Latency vs seeker degree percentile", Run: runFig7},
		{ID: "fig8", Title: "Approximation quality vs horizon", Run: runFig8},
		{ID: "fig9", Title: "Scalability: latency vs network size", Run: runFig9},
		{ID: "fig10", Title: "Ablation: landmark pruning and materialized neighbourhoods", Run: runFig10},
		{ID: "fig11", Title: "Social/global blend beta vs result quality", Run: runFig11},
		{ID: "fig12", Title: "Exact-algorithm portfolio (SocialMerge/ContextMerge/SocialTA)", Run: runFig12},
		{ID: "ext1", Title: "Extension: horizon cache effectiveness", Run: runExt1},
		{ID: "ext2", Title: "Extension: dynamic updates and compaction", Run: runExt2},
		{ID: "ext3", Title: "Extension: behaviour-derived edge weights", Run: runExt3},
		{ID: "ext4", Title: "Extension: durability (WAL, checkpoint, recovery)", Run: runExt4},
		{ID: "ext5", Title: "Extension: buffer pool hit ratio vs capacity", Run: runExt5},
		{ID: "ext6", Title: "Extension: cost-based planner vs oracle", Run: runExt6},
		{ID: "ext7", Title: "Extension: serving-layer request cost", Run: runExt7},
		{ID: "ext8", Title: "Extension: continuous queries (incremental maintenance)", Run: runExt8},
	}
}

// ByID finds an experiment by identifier.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// datasets materializes the three corpus presets at the configured
// scale.
func datasets(cfg Config) ([]*gen.Dataset, error) {
	var out []*gen.Dataset
	for i, p := range gen.Presets() {
		ds, err := gen.Generate(p.Scale(cfg.Scale), cfg.Seed+int64(i))
		if err != nil {
			return nil, fmt.Errorf("bench: generating %s: %w", p.Name, err)
		}
		out = append(out, ds)
	}
	return out, nil
}

// engineFor builds an engine over a dataset with the given config.
func engineFor(ds *gen.Dataset, ecfg core.Config) (*core.Engine, error) {
	return core.NewEngine(ds.Graph, ds.Store, ecfg)
}

// evalEngineConfig is the proximity configuration used throughout the
// evaluation unless an experiment sweeps it explicitly: hop damping
// α = 0.6 (the conventional exponential-decay-with-distance proximity)
// with a support floor σ ≥ 0.1 (the social horizon is part of the
// scoring model — users that far out contribute nothing), pure social
// scoring. Fig 6 shows the sensitivity to α, including the undamped
// α = 1 extreme.
func evalEngineConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Proximity = proximity.Params{Alpha: 0.6, SelfWeight: 1, MinSigma: 0.1}
	return cfg
}

// measured is one algorithm execution's observations.
type measured struct {
	latency time.Duration
	access  topk.Access
	settled int
	answer  []topk.Result
	exact   bool
}

// runQueries executes algo over the workload and returns per-query
// measurements.
func runQueries(qs []gen.QuerySpec, k int, algo func(core.Query) (core.Answer, error)) ([]measured, error) {
	out := make([]measured, 0, len(qs))
	for _, spec := range qs {
		q := core.Query{Seeker: spec.Seeker, Tags: spec.Tags, K: k}
		start := time.Now()
		ans, err := algo(q)
		if err != nil {
			return nil, err
		}
		out = append(out, measured{
			latency: time.Since(start),
			access:  ans.Access,
			settled: ans.UsersSettled,
			answer:  ans.Results,
			exact:   ans.Exact,
		})
	}
	return out, nil
}

func meanLatencyMS(ms []measured) float64 {
	if len(ms) == 0 {
		return 0
	}
	var total time.Duration
	for _, m := range ms {
		total += m.latency
	}
	return float64(total.Microseconds()) / float64(len(ms)) / 1000
}

func meanAccess(ms []measured) (seq, random, users float64) {
	if len(ms) == 0 {
		return 0, 0, 0
	}
	var a topk.Access
	for _, m := range ms {
		a.Add(m.access)
	}
	n := float64(len(ms))
	return float64(a.Sequential) / n, float64(a.Random) / n, float64(a.UsersExpanded) / n
}

func meanSettled(ms []measured) float64 {
	if len(ms) == 0 {
		return 0
	}
	s := 0
	for _, m := range ms {
		s += m.settled
	}
	return float64(s) / float64(len(ms))
}

// quality compares per-query answers against reference answers.
func quality(got, want []measured) (precision, ndcg float64) {
	if len(got) == 0 || len(got) != len(want) {
		return 0, 0
	}
	var p, n float64
	for i := range got {
		p += metrics.PrecisionAtK(got[i].answer, want[i].answer)
		n += metrics.NDCGAtK(got[i].answer, want[i].answer)
	}
	return p / float64(len(got)), n / float64(len(got))
}

// table is a tiny helper around tabwriter with a title line.
type table struct {
	tw *tabwriter.Writer
}

func newTable(w io.Writer, title string) *table {
	fmt.Fprintf(w, "\n== %s ==\n", title)
	return &table{tw: tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)}
}

func (t *table) row(cells ...interface{}) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(t.tw, "\t")
		}
		switch v := c.(type) {
		case float64:
			fmt.Fprintf(t.tw, "%.3f", v)
		default:
			fmt.Fprint(t.tw, v)
		}
	}
	fmt.Fprintln(t.tw)
}

func (t *table) flush() { t.tw.Flush() }

// sortedCopy returns results sorted canonically (already are, but the
// quality metrics assume it; keep the invariant explicit).
func sortedCopy(rs []topk.Result) []topk.Result {
	out := make([]topk.Result, len(rs))
	copy(out, rs)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Item < out[j].Item
	})
	return out
}
