package bench

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/gen"
	"repro/internal/index"
	"repro/internal/pagestore"
	"repro/internal/planner"
	"repro/internal/social"
	"repro/internal/wal"
)

// runFig12 compares the exact-algorithm portfolio — SocialMerge,
// ContextMerge, SocialTA — across k, reporting latency and the two
// access classes. Expected shape: SocialMerge settles the fewest users
// throughout; SocialTA wins at k = 1 on sorted-round counts but pays
// ball-sized expansion plus random accesses; ContextMerge's up-front
// full-ball expansion makes it the most expensive except on very small
// balls.
func runFig12(cfg Config, w io.Writer) error {
	cfg = cfg.normalized()
	ds, err := primaryDataset(cfg)
	if err != nil {
		return err
	}
	e, err := engineFor(ds, evalEngineConfig())
	if err != nil {
		return err
	}
	e.AttachItemIndex(core.BuildItemIndex(ds.Store))
	qs, err := gen.Workload(ds, workloadFor(cfg), cfg.Seed)
	if err != nil {
		return err
	}
	t := newTable(w, "Fig 12: exact-algorithm portfolio vs k — "+ds.Name)
	t.row("k", "algo", "lat-ms", "seq", "rand", "users")
	for _, k := range []int{1, 5, 10, 20, 50} {
		for _, alg := range []struct {
			name string
			run  func(core.Query) (core.Answer, error)
		}{
			{"SocialMerge", func(q core.Query) (core.Answer, error) { return e.SocialMerge(q, core.Options{}) }},
			{"ContextMerge", func(q core.Query) (core.Answer, error) { return e.ContextMerge(q, core.Options{}) }},
			{"SocialTA", func(q core.Query) (core.Answer, error) { return e.SocialTA(q, core.Options{}) }},
		} {
			ms, err := runQueries(qs, k, alg.run)
			if err != nil {
				return fmt.Errorf("fig12 %s k=%d: %w", alg.name, k, err)
			}
			seq, rnd, _ := meanAccess(ms)
			t.row(k, alg.name, meanLatencyMS(ms), seq, rnd, meanSettled(ms))
		}
	}
	t.flush()
	return nil
}

// runExt4 measures the durability layer: write-ahead append throughput
// under both sync policies, checkpoint cost, and recovery time as a
// function of the log length replayed. Expected shape: SyncManual
// appends are orders of magnitude faster than SyncAlways (one fsync
// per record); recovery time grows linearly in the replayed suffix and
// collapses after a checkpoint.
func runExt4(cfg Config, w io.Writer) error {
	cfg = cfg.normalized()
	rng := rand.New(rand.NewSource(cfg.Seed))
	nUsers := int(200 * cfg.Scale)
	if nUsers < 20 {
		nUsers = 20
	}
	mutations := nUsers * 10

	user := func(i int) string { return fmt.Sprintf("u%03d", i) }
	randomMutation := func(s *durable.Service) error {
		if rng.Intn(4) == 0 {
			a, b := rng.Intn(nUsers), rng.Intn(nUsers)
			if a == b {
				b = (b + 1) % nUsers
			}
			return s.Befriend(user(a), user(b), 0.1+0.9*rng.Float64())
		}
		return s.Tag(user(rng.Intn(nUsers)),
			fmt.Sprintf("i%04d", rng.Intn(nUsers*4)),
			fmt.Sprintf("t%02d", rng.Intn(40)))
	}

	t := newTable(w, "Ext 4: durability — WAL throughput, checkpoint, recovery")
	t.row("phase", "records", "ms", "us/record")

	for _, pol := range []struct {
		name string
		sync wal.SyncPolicy
	}{{"append-syncalways", wal.SyncAlways}, {"append-syncmanual", wal.SyncManual}} {
		dcfg := durable.DefaultConfig()
		dcfg.Sync = pol.sync
		dcfg.CheckpointEvery = 0
		appendDir, err := os.MkdirTemp("", "ext4-"+pol.name)
		if err != nil {
			return err
		}
		defer os.RemoveAll(appendDir)
		svc, err := durable.Open(appendDir, dcfg)
		if err != nil {
			return err
		}
		n := mutations / 4
		start := time.Now()
		for i := 0; i < n; i++ {
			if err := randomMutation(svc); err != nil {
				return err
			}
		}
		if err := svc.Sync(); err != nil {
			return err
		}
		el := time.Since(start)
		t.row(pol.name, n, float64(el.Microseconds())/1000, float64(el.Microseconds())/float64(n))
		svc.Close()
	}

	// Recovery cost vs replayed length, before and after checkpointing.
	dir, err := os.MkdirTemp("", "ext4-recovery")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	dcfg := durable.DefaultConfig()
	dcfg.Sync = wal.SyncManual
	dcfg.CheckpointEvery = 0
	svc, err := durable.Open(dir, dcfg)
	if err != nil {
		return err
	}
	for i := 0; i < mutations; i++ {
		if err := randomMutation(svc); err != nil {
			return err
		}
	}
	svc.Close()

	start := time.Now()
	svc, err = durable.Open(dir, dcfg)
	if err != nil {
		return err
	}
	el := time.Since(start)
	rec := svc.Stats().RecoveredRecords
	t.row("recover-full-log", rec, float64(el.Microseconds())/1000, float64(el.Microseconds())/float64(max64(1, int64(rec))))

	ckStart := time.Now()
	if err := svc.Checkpoint(); err != nil {
		return err
	}
	t.row("checkpoint", mutations, float64(time.Since(ckStart).Microseconds())/1000, 0.0)
	svc.Close()

	start = time.Now()
	svc, err = durable.Open(dir, dcfg)
	if err != nil {
		return err
	}
	el = time.Since(start)
	rec = svc.Stats().RecoveredRecords
	t.row("recover-after-ckpt", rec, float64(el.Microseconds())/1000, 0.0)
	svc.Close()
	t.flush()
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// runExt5 measures the buffer pool: index load IO behaviour and hit
// ratio under a Zipf-skewed random-page workload as pool capacity
// varies. Expected shape: sequential load misses exactly once per page
// at any capacity; the skewed workload's hit ratio climbs steeply with
// capacity and saturates once the hot set is resident.
func runExt5(cfg Config, w io.Writer) error {
	cfg = cfg.normalized()
	ds, err := primaryDataset(cfg)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "ext5")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "data.frnd")
	if err := index.WriteFile(path, ds.Graph, ds.Store); err != nil {
		return err
	}

	t := newTable(w, "Ext 5: buffer pool — paged index load and Zipf page access")
	t.row("capacity", "load-ms", "load-miss", "zipf-hit-ratio", "zipf-evictions")
	for _, capacity := range []int{2, 8, 32, 128, 512} {
		opts := pagestore.Options{PageSize: 4096, Capacity: capacity}
		start := time.Now()
		_, _, loadStats, err := index.ReadPagedFile(path, opts)
		if err != nil {
			return err
		}
		loadMS := float64(time.Since(start).Microseconds()) / 1000

		pool, closer, err := pagestore.FilePool(path, opts)
		if err != nil {
			return err
		}
		numPages := pool.NumPages()
		rng := rand.New(rand.NewSource(cfg.Seed))
		zipf := rand.NewZipf(rng, 1.2, 1, uint64(max64(1, numPages-1)))
		buf := make([]byte, 64)
		for i := 0; i < 20000; i++ {
			page := int64(zipf.Uint64())
			if _, err := pool.ReadAt(buf, page*4096); err != nil && page < numPages-1 {
				closer.Close()
				return err
			}
		}
		st := pool.Stats()
		closer.Close()
		t.row(capacity, loadMS, loadStats.Misses, st.HitRatio(), st.Evictions)
	}
	t.flush()
	return nil
}

// runExt6 measures the cost-based planner: total access cost of
// always-one-algorithm strategies vs the calibrated planner vs the
// per-query oracle. Expected shape: no single algorithm matches the
// oracle everywhere; the calibrated planner lands within a few percent
// of it.
func runExt6(cfg Config, w io.Writer) error {
	cfg = cfg.normalized()
	ds, err := primaryDataset(cfg)
	if err != nil {
		return err
	}
	e, err := engineFor(ds, evalEngineConfig())
	if err != nil {
		return err
	}
	e.AttachItemIndex(core.BuildItemIndex(ds.Store))
	p, err := planner.New(e)
	if err != nil {
		return err
	}

	calibWP := workloadFor(cfg)
	if calibWP.NumQueries < 12 { // the fit needs more rows than features
		calibWP.NumQueries = 12
	}
	calibQs, err := gen.Workload(ds, calibWP, cfg.Seed+1000)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	toCore := func(qs []gen.QuerySpec) []core.Query {
		out := make([]core.Query, len(qs))
		for i, s := range qs {
			out[i] = core.Query{Seeker: s.Seeker, Tags: s.Tags, K: 1 + rng.Intn(30)}
		}
		return out
	}
	if err := p.Calibrate(toCore(calibQs)); err != nil {
		return err
	}

	heldQs, err := gen.Workload(ds, workloadFor(cfg), cfg.Seed+2000)
	if err != nil {
		return err
	}
	held := toCore(heldQs)

	algs := []planner.Algorithm{planner.SocialMerge, planner.ContextMerge, planner.SocialTA}
	totals := map[string]float64{}
	picks := map[planner.Algorithm]int{}
	var oracle, planned float64
	for _, q := range held {
		best := -1.0
		costs := map[planner.Algorithm]float64{}
		for _, alg := range algs {
			var ans core.Answer
			var err error
			switch alg {
			case planner.SocialMerge:
				ans, err = e.SocialMerge(q, core.Options{})
			case planner.ContextMerge:
				ans, err = e.ContextMerge(q, core.Options{})
			case planner.SocialTA:
				ans, err = e.SocialTA(q, core.Options{})
			}
			if err != nil {
				return err
			}
			c := float64(ans.Access.Total() + ans.Access.UsersExpanded)
			costs[alg] = c
			totals["always-"+alg.String()] += c
			if best < 0 || c < best {
				best = c
			}
		}
		oracle += best
		pick := p.Plan(q).Alg
		picks[pick]++
		planned += costs[pick]
	}
	t := newTable(w, "Ext 6: planner vs oracle — total accesses over held-out workload")
	t.row("strategy", "total-accesses", "vs-oracle")
	t.row("oracle", oracle, 1.0)
	t.row("planner(calibrated)", planned, planned/oracle)
	for _, alg := range algs {
		key := "always-" + alg.String()
		t.row(key, totals[key], totals[key]/oracle)
	}
	t.flush()
	fmt.Fprintf(w, "planner picks: SocialMerge=%d ContextMerge=%d SocialTA=%d (of %d)\n",
		picks[planner.SocialMerge], picks[planner.ContextMerge], picks[planner.SocialTA], len(held))
	return nil
}

// runExt7 measures end-to-end HTTP serving: requests per second and
// mean latency for a mixed workload against the in-process handler
// (no network stack), as a function of read share. It quantifies the
// facade + overlay + engine cost a deployment pays per request.
func runExt7(cfg Config, w io.Writer) error {
	cfg = cfg.normalized()
	t := newTable(w, "Ext 7: serving layer — in-process request cost")
	t.row("mix", "requests", "ms-total", "us/request")
	for _, mix := range []struct {
		name      string
		readShare int // out of 100
	}{{"write-heavy(10%reads)", 10}, {"balanced(50%reads)", 50}, {"read-heavy(90%reads)", 90}} {
		scfg := social.DefaultServiceConfig()
		scfg.AutoCompactEvery = 64
		svc, err := social.NewService(scfg)
		if err != nil {
			return err
		}
		rng := rand.New(rand.NewSource(cfg.Seed))
		// Seed a small community so searches have work to do; the first
		// loop guarantees every queried user and tag exists.
		for i := 0; i < 40; i++ {
			if err := svc.Tag(fmt.Sprintf("u%d", i), fmt.Sprintf("i%d", i), fmt.Sprintf("t%d", i%10)); err != nil {
				return err
			}
		}
		for i := 0; i < 50; i++ {
			a, b := rng.Intn(40), rng.Intn(40)
			if a == b {
				continue
			}
			if err := svc.Befriend(fmt.Sprintf("u%d", a), fmt.Sprintf("u%d", b), 0.5+0.5*rng.Float64()); err != nil {
				return err
			}
		}
		for i := 0; i < 300; i++ {
			if err := svc.Tag(fmt.Sprintf("u%d", rng.Intn(40)), fmt.Sprintf("i%d", rng.Intn(100)), fmt.Sprintf("t%d", rng.Intn(10))); err != nil {
				return err
			}
		}
		if err := svc.Flush(); err != nil {
			return err
		}
		const n = 2000
		start := time.Now()
		for i := 0; i < n; i++ {
			if rng.Intn(100) < mix.readShare {
				if _, err := svc.Search(fmt.Sprintf("u%d", rng.Intn(40)), []string{fmt.Sprintf("t%d", rng.Intn(10))}, 10); err != nil {
					return err
				}
			} else {
				if err := svc.Tag(fmt.Sprintf("u%d", rng.Intn(40)), fmt.Sprintf("i%d", rng.Intn(100)), fmt.Sprintf("t%d", rng.Intn(10))); err != nil {
					return err
				}
			}
		}
		el := time.Since(start)
		t.row(mix.name, n, float64(el.Microseconds())/1000, float64(el.Microseconds())/n)
	}
	t.flush()
	return nil
}
