package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/monitor"
	"repro/internal/overlay"
	"repro/internal/tagstore"
)

// runExt8 measures continuous-query maintenance: N standing queries,
// batches of mutations, comparing the monitor's damage-filtered
// re-evaluation against the naive re-evaluate-everything strategy.
// Expected shape: with tag-scoped mutations the monitor re-runs only
// the subscriptions whose tags were touched (a small fraction);
// friendship mutations conservatively invalidate everything, so
// batches containing them approach the naive cost.
func runExt8(cfg Config, w io.Writer) error {
	cfg = cfg.normalized()
	ds, err := primaryDataset(cfg)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	build := func() (*monitor.Monitor, error) {
		o, err := overlay.New(ds.Graph, ds.Store)
		if err != nil {
			return nil, err
		}
		eng, err := overlay.NewEngine(o, evalEngineConfig(), 0)
		if err != nil {
			return nil, err
		}
		return monitor.New(eng)
	}

	subs := 50
	if s := int(float64(50) * cfg.Scale); s < subs {
		subs = s
	}
	if subs < 5 {
		subs = 5
	}
	numTags := ds.Store.NumTags()
	subscribe := func(m *monitor.Monitor) error {
		srng := rand.New(rand.NewSource(cfg.Seed + 1))
		for i := 0; i < subs; i++ {
			q := core.Query{
				Seeker: graph.UserID(srng.Intn(ds.Graph.NumUsers())),
				Tags:   []tagstore.TagID{tagstore.TagID(srng.Intn(numTags))},
				K:      10,
			}
			if _, err := m.Subscribe(q, core.Options{}, func(monitor.Update) {}); err != nil {
				return err
			}
		}
		return nil
	}

	type batchKind struct {
		name       string
		befriends  int
		tagActions int
	}
	t := newTable(w, "Ext 8: continuous queries — damage-filtered vs naive re-evaluation")
	t.row("batch-kind", "batches", "monitor-reevals", "naive-reevals", "monitor-ms", "naive-ms")
	for _, kind := range []batchKind{
		{"tags-only", 0, 40},
		{"mixed(1-friend)", 1, 40},
	} {
		m, err := build()
		if err != nil {
			return err
		}
		if err := subscribe(m); err != nil {
			return err
		}
		base := m.Evaluations()
		const batches = 5
		start := time.Now()
		for b := 0; b < batches; b++ {
			for i := 0; i < kind.befriends; i++ {
				u := graph.UserID(rng.Intn(ds.Graph.NumUsers()))
				v := graph.UserID(rng.Intn(ds.Graph.NumUsers()))
				if u == v {
					v = (v + 1) % graph.UserID(ds.Graph.NumUsers())
				}
				if err := m.Befriend(u, v, 0.5+0.5*rng.Float64()); err != nil {
					return err
				}
			}
			for i := 0; i < kind.tagActions; i++ {
				if err := m.Tag(
					graph.UserID(rng.Intn(ds.Graph.NumUsers())),
					tagstore.ItemID(rng.Intn(ds.Store.NumItems())),
					tagstore.TagID(rng.Intn(numTags)),
				); err != nil {
					return err
				}
			}
			if _, err := m.Refresh(); err != nil {
				return err
			}
		}
		monitorMS := float64(time.Since(start).Microseconds()) / 1000
		monitorEvals := m.Evaluations() - base

		// Naive: same mutations, re-run every subscription per batch.
		// The evaluation count is subs × batches by construction; time it
		// with a fresh monitor whose damage filter is bypassed by running
		// all queries manually.
		m2, err := build()
		if err != nil {
			return err
		}
		if err := subscribe(m2); err != nil {
			return err
		}
		nrng := rand.New(rand.NewSource(cfg.Seed + 2))
		srng := rand.New(rand.NewSource(cfg.Seed + 1))
		queries := make([]core.Query, subs)
		for i := range queries {
			queries[i] = core.Query{
				Seeker: graph.UserID(srng.Intn(ds.Graph.NumUsers())),
				Tags:   []tagstore.TagID{tagstore.TagID(srng.Intn(numTags))},
				K:      10,
			}
		}
		start = time.Now()
		naiveEvals := int64(0)
		for b := 0; b < batches; b++ {
			for i := 0; i < kind.befriends; i++ {
				u := graph.UserID(nrng.Intn(ds.Graph.NumUsers()))
				v := graph.UserID(nrng.Intn(ds.Graph.NumUsers()))
				if u == v {
					v = (v + 1) % graph.UserID(ds.Graph.NumUsers())
				}
				if err := m2.Befriend(u, v, 0.5+0.5*nrng.Float64()); err != nil {
					return err
				}
			}
			for i := 0; i < kind.tagActions; i++ {
				if err := m2.Tag(
					graph.UserID(nrng.Intn(ds.Graph.NumUsers())),
					tagstore.ItemID(nrng.Intn(ds.Store.NumItems())),
					tagstore.TagID(nrng.Intn(numTags)),
				); err != nil {
					return err
				}
			}
			if _, err := m2.Refresh(); err != nil { // folds mutations in
				return err
			}
			for _, q := range queries { // naive: re-run everything
				if _, err := m2.Query(q); err != nil {
					return err
				}
				naiveEvals++
			}
		}
		naiveMS := float64(time.Since(start).Microseconds()) / 1000
		t.row(kind.name, batches, fmt.Sprint(monitorEvals), fmt.Sprint(naiveEvals), monitorMS, naiveMS)
	}
	t.flush()
	return nil
}
