package bench

import (
	"bytes"
	"strings"
	"testing"
)

// quickConfig is a tiny configuration so every experiment runs in a few
// hundred milliseconds under `go test`.
func quickConfig() Config {
	return Config{Scale: 0.05, Seed: 7, Queries: 4}
}

func TestRegistryIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("incomplete experiment: %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
	}
	for _, want := range []string{"table1", "table2", "table3", "fig4", "fig5", "fig6",
		"fig7", "fig8", "fig9", "fig10", "fig11"} {
		if !seen[want] {
			t.Fatalf("missing experiment %q", want)
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("fig4"); !ok {
		t.Fatal("fig4 not found")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("unknown id found")
	}
}

// TestAllExperimentsRun executes every registered experiment at smoke
// scale and sanity-checks the emitted tables.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow in -short mode")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(quickConfig(), &buf); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			out := buf.String()
			if !strings.Contains(out, "==") {
				t.Fatalf("%s: no table header in output:\n%s", e.ID, out)
			}
			if len(strings.Split(strings.TrimSpace(out), "\n")) < 3 {
				t.Fatalf("%s: table has no data rows:\n%s", e.ID, out)
			}
		})
	}
}

func TestConfigNormalized(t *testing.T) {
	c := Config{}.normalized()
	if c.Scale != 1 || c.Queries != 40 {
		t.Fatalf("normalized zero config = %+v", c)
	}
	c = Config{Scale: 2, Queries: 3}.normalized()
	if c.Scale != 2 || c.Queries != 3 {
		t.Fatalf("normalization clobbered values: %+v", c)
	}
}

func TestMeasurementHelpersEmpty(t *testing.T) {
	if meanLatencyMS(nil) != 0 || meanSettled(nil) != 0 {
		t.Fatal("empty means should be zero")
	}
	s, r, u := meanAccess(nil)
	if s != 0 || r != 0 || u != 0 {
		t.Fatal("empty access means should be zero")
	}
	if p, n := quality(nil, nil); p != 0 || n != 0 {
		t.Fatalf("empty quality = %g,%g", p, n)
	}
	if certifiedRatio(nil) != 0 {
		t.Fatal("empty certified ratio should be zero")
	}
}

func TestSortedCopy(t *testing.T) {
	in := sortedCopy(nil)
	if len(in) != 0 {
		t.Fatal("sortedCopy(nil) not empty")
	}
}
