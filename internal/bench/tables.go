package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/index"
	"repro/internal/proximity"
)

// runTable1 prints per-corpus structural statistics: the shape evidence
// that the synthetic corpora stand in for the paper-era crawls.
func runTable1(cfg Config, w io.Writer) error {
	cfg = cfg.normalized()
	dss, err := datasets(cfg)
	if err != nil {
		return err
	}
	t := newTable(w, "Table 1: dataset statistics")
	t.row("dataset", "users", "edges", "avg-deg", "max-deg", "clustering", "items", "tags", "triples", "annotations")
	for _, ds := range dss {
		gs := ds.Graph.ComputeStats(128)
		ss := ds.Store.ComputeStats()
		t.row(ds.Name, gs.NumUsers, gs.NumEdges, gs.AvgDegree, gs.MaxDegree,
			gs.ClusteringSample, ss.Items, ss.Tags, ss.Triples, ss.Annotations)
	}
	t.flush()
	return nil
}

// runTable2 measures index construction cost and footprint: the on-disk
// dataset file, the landmark sketch and the materialized neighbourhood
// index.
func runTable2(cfg Config, w io.Writer) error {
	cfg = cfg.normalized()
	dss, err := datasets(cfg)
	if err != nil {
		return err
	}
	tmp, err := os.MkdirTemp("", "bench-table2-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	t := newTable(w, "Table 2: index build time and size")
	t.row("dataset", "disk-write-ms", "disk-bytes", "landmark-build-ms", "landmark-bytes",
		"nbr-build-ms", "nbr-bytes")
	for i, ds := range dss {
		path := filepath.Join(tmp, fmt.Sprintf("ds%d.frnd", i))
		start := time.Now()
		if err := index.WriteFile(path, ds.Graph, ds.Store); err != nil {
			return err
		}
		writeMS := float64(time.Since(start).Microseconds()) / 1000
		info, err := os.Stat(path)
		if err != nil {
			return err
		}

		start = time.Now()
		lm, err := proximity.BuildLandmarks(ds.Graph, 16, proximity.DefaultParams())
		if err != nil {
			return err
		}
		lmMS := float64(time.Since(start).Microseconds()) / 1000

		start = time.Now()
		nbr, err := core.BuildNeighborhoods(ds.Graph, 64, proximity.DefaultParams())
		if err != nil {
			return err
		}
		nbrMS := float64(time.Since(start).Microseconds()) / 1000

		t.row(ds.Name, writeMS, info.Size(), lmMS, lm.MemoryBytes(), nbrMS, nbr.MemoryBytes())
	}
	t.flush()
	return nil
}

// runTable3 verifies, corpus by corpus, that SocialMerge's certified
// answers coincide with ExactSocial's on a measured workload — the
// soundness check the test suite also enforces.
func runTable3(cfg Config, w io.Writer) error {
	cfg = cfg.normalized()
	dss, err := datasets(cfg)
	if err != nil {
		return err
	}
	t := newTable(w, "Table 3: SocialMerge exactness vs ExactSocial")
	t.row("dataset", "queries", "certified", "set-precision", "ndcg")
	for _, ds := range dss {
		e, err := engineFor(ds, evalEngineConfig())
		if err != nil {
			return err
		}
		qs, err := gen.Workload(ds, workloadFor(cfg), cfg.Seed)
		if err != nil {
			return err
		}
		merge, err := runQueries(qs, 10, func(q core.Query) (core.Answer, error) {
			return e.SocialMerge(q, core.Options{})
		})
		if err != nil {
			return err
		}
		exact, err := runQueries(qs, 10, e.ExactSocial)
		if err != nil {
			return err
		}
		certified := 0
		for _, m := range merge {
			if m.exact {
				certified++
			}
		}
		prec, ndcg := quality(merge, exact)
		t.row(ds.Name, len(qs), fmt.Sprintf("%d/%d", certified, len(qs)), prec, ndcg)
	}
	t.flush()
	return nil
}

func workloadFor(cfg Config) gen.WorkloadParams {
	wp := gen.DefaultWorkloadParams()
	wp.NumQueries = cfg.Queries
	return wp
}
