package tagstore

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// smallStore: 3 users, 4 items, 3 tags.
//
//	u0: (i0,t0)x2, (i1,t0), (i1,t1)
//	u1: (i0,t0), (i2,t1)x3
//	u2: (i3,t2)
func smallStore(t testing.TB) *Store {
	t.Helper()
	b := NewBuilder(3, 4, 3)
	b.AddCount(0, 0, 0, 2)
	b.Add(0, 1, 0)
	b.Add(0, 1, 1)
	b.Add(1, 0, 0)
	b.AddCount(1, 2, 1, 3)
	b.Add(2, 3, 2)
	s, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBuildEmpty(t *testing.T) {
	s, err := NewBuilder(0, 0, 0).Build()
	if err != nil {
		t.Fatal(err)
	}
	if s.NumTriples() != 0 || s.TotalAnnotations() != 0 {
		t.Fatalf("empty store: %d triples, %d annotations", s.NumTriples(), s.TotalAnnotations())
	}
}

func TestBuildValidation(t *testing.T) {
	cases := []struct {
		name string
		add  func(*Builder)
	}{
		{"user out of range", func(b *Builder) { b.Add(5, 0, 0) }},
		{"negative user", func(b *Builder) { b.Add(-1, 0, 0) }},
		{"item out of range", func(b *Builder) { b.Add(0, 9, 0) }},
		{"tag out of range", func(b *Builder) { b.Add(0, 0, 9) }},
		{"zero count", func(b *Builder) { b.AddCount(0, 0, 0, 0) }},
		{"negative count", func(b *Builder) { b.AddCount(0, 0, 0, -2) }},
	}
	for _, tc := range cases {
		b := NewBuilder(2, 2, 2)
		tc.add(b)
		if _, err := b.Build(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestDuplicateTriplesSum(t *testing.T) {
	b := NewBuilder(1, 1, 1)
	b.Add(0, 0, 0)
	b.AddCount(0, 0, 0, 4)
	s, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if s.NumTriples() != 1 {
		t.Fatalf("NumTriples = %d, want 1", s.NumTriples())
	}
	if tf := s.TF(0, 0, 0); tf != 5 {
		t.Fatalf("TF = %d, want 5", tf)
	}
	if s.TotalAnnotations() != 5 {
		t.Fatalf("TotalAnnotations = %d, want 5", s.TotalAnnotations())
	}
}

func TestGlobalListSortedByTF(t *testing.T) {
	s := smallStore(t)
	// tag 0: item 0 has tf 2+1=3, item 1 has tf 1.
	got := s.GlobalList(0)
	want := []Posting{{Item: 0, TF: 3}, {Item: 1, TF: 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("GlobalList(0) = %v, want %v", got, want)
	}
	if s.MaxTF(0) != 3 {
		t.Fatalf("MaxTF(0) = %d, want 3", s.MaxTF(0))
	}
	// tag 1: item 2 tf 3, item 1 tf 1
	got = s.GlobalList(1)
	want = []Posting{{Item: 2, TF: 3}, {Item: 1, TF: 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("GlobalList(1) = %v, want %v", got, want)
	}
}

func TestGlobalListTieBreakByItem(t *testing.T) {
	b := NewBuilder(1, 3, 1)
	b.Add(0, 2, 0)
	b.Add(0, 0, 0)
	b.Add(0, 1, 0)
	s, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	got := s.GlobalList(0)
	want := []Posting{{Item: 0, TF: 1}, {Item: 1, TF: 1}, {Item: 2, TF: 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("tie-break order = %v, want %v", got, want)
	}
}

func TestUserList(t *testing.T) {
	s := smallStore(t)
	got := s.UserList(0, 0)
	want := []UserPosting{{Item: 0, TF: 2}, {Item: 1, TF: 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("UserList(0,0) = %v, want %v", got, want)
	}
	if lst := s.UserList(2, 0); lst != nil {
		t.Fatalf("UserList(2,0) = %v, want nil", lst)
	}
	if lst := s.UserList(1, 2); lst != nil {
		t.Fatalf("UserList(1,2) = %v, want nil", lst)
	}
}

func TestUserTags(t *testing.T) {
	s := smallStore(t)
	if got := s.UserTags(0); !reflect.DeepEqual(got, []TagID{0, 1}) {
		t.Fatalf("UserTags(0) = %v", got)
	}
	if got := s.UserTags(2); !reflect.DeepEqual(got, []TagID{2}) {
		t.Fatalf("UserTags(2) = %v", got)
	}
}

func TestPointLookups(t *testing.T) {
	s := smallStore(t)
	if tf := s.TF(0, 0, 0); tf != 2 {
		t.Fatalf("TF(0,0,0) = %d, want 2", tf)
	}
	if tf := s.TF(1, 2, 1); tf != 3 {
		t.Fatalf("TF(1,2,1) = %d, want 3", tf)
	}
	if tf := s.TF(2, 0, 0); tf != 0 {
		t.Fatalf("TF(2,0,0) = %d, want 0", tf)
	}
	if tf := s.GlobalTF(0, 0); tf != 3 {
		t.Fatalf("GlobalTF(0,0) = %d, want 3", tf)
	}
	if tf := s.GlobalTF(3, 0); tf != 0 {
		t.Fatalf("GlobalTF(3,0) = %d, want 0", tf)
	}
}

func TestComputeStats(t *testing.T) {
	s := smallStore(t)
	st := s.ComputeStats()
	if st.Users != 3 || st.Items != 4 || st.Tags != 3 {
		t.Fatalf("universe wrong: %+v", st)
	}
	if st.Triples != 6 || st.Annotations != 9 {
		t.Fatalf("triples/annotations wrong: %+v", st)
	}
	if st.DistinctItemsTagged != 4 || st.DistinctTagsUsed != 3 {
		t.Fatalf("distinct counts wrong: %+v", st)
	}
	if st.MaxGlobalListLen != 2 {
		t.Fatalf("MaxGlobalListLen = %d, want 2", st.MaxGlobalListLen)
	}
}

func TestTriplesCanonicalOrder(t *testing.T) {
	s := smallStore(t)
	trs := s.Triples()
	ok := sort.SliceIsSorted(trs, func(i, j int) bool {
		a, b := trs[i], trs[j]
		if a.User != b.User {
			return a.User < b.User
		}
		if a.Tag != b.Tag {
			return a.Tag < b.Tag
		}
		return a.Item < b.Item
	})
	if !ok {
		t.Fatalf("triples not canonically sorted: %v", trs)
	}
}

// TestPropertyGlobalEqualsSumOfUserLists: for every tag, the global TF of
// an item equals the sum of per-user TFs — the two access paths are
// views of the same relation.
func TestPropertyGlobalEqualsSumOfUserLists(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nu, ni, nt := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(5)
		b := NewBuilder(nu, ni, nt)
		for k := 0; k < 40; k++ {
			b.AddCount(int32(rng.Intn(nu)), ItemID(rng.Intn(ni)), TagID(rng.Intn(nt)), int32(1+rng.Intn(3)))
		}
		s, err := b.Build()
		if err != nil {
			return false
		}
		for tag := TagID(0); int(tag) < nt; tag++ {
			fromUsers := make(map[ItemID]int32)
			for u := int32(0); int(u) < nu; u++ {
				for _, p := range s.UserList(u, tag) {
					fromUsers[p.Item] += p.TF
				}
			}
			global := make(map[ItemID]int32)
			for _, p := range s.GlobalList(tag) {
				global[p.Item] = p.TF
			}
			if len(fromUsers) != len(global) {
				return false
			}
			for i, tf := range fromUsers {
				if global[i] != tf {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyPointMatchesUserList: TF(u,i,t) agrees with the per-user
// posting lists.
func TestPropertyPointMatchesUserList(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nu, ni, nt := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(4)
		b := NewBuilder(nu, ni, nt)
		for k := 0; k < 30; k++ {
			b.Add(int32(rng.Intn(nu)), ItemID(rng.Intn(ni)), TagID(rng.Intn(nt)))
		}
		s, err := b.Build()
		if err != nil {
			return false
		}
		for u := int32(0); int(u) < nu; u++ {
			for _, tag := range s.UserTags(u) {
				for _, p := range s.UserList(u, tag) {
					if s.TF(u, p.Item, tag) != p.TF {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyMaxTFIsListHead: MaxTF equals the head of each non-empty
// global list and 0 otherwise.
func TestPropertyMaxTFIsListHead(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nu, ni, nt := 1+rng.Intn(5), 1+rng.Intn(8), 1+rng.Intn(6)
		b := NewBuilder(nu, ni, nt)
		for k := 0; k < 25; k++ {
			b.Add(int32(rng.Intn(nu)), ItemID(rng.Intn(ni)), TagID(rng.Intn(nt)))
		}
		s, err := b.Build()
		if err != nil {
			return false
		}
		for tag := TagID(0); int(tag) < nt; tag++ {
			lst := s.GlobalList(tag)
			if len(lst) == 0 {
				if s.MaxTF(tag) != 0 {
					return false
				}
				continue
			}
			if s.MaxTF(tag) != lst[0].TF {
				return false
			}
			// list must be sorted by TF desc
			for i := 1; i < len(lst); i++ {
				if lst[i].TF > lst[i-1].TF {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
