// Package tagstore stores the user–item–tag annotation relation of a
// collaborative tagging site and exposes it through the two access paths
// classic top-k processing distinguishes:
//
//   - sequential access: per-tag global posting lists sorted by descending
//     tag frequency, consumed front-to-back by threshold algorithms;
//   - random access: O(1)-ish point lookups tf(u, i, t) and per-(user,tag)
//     lists, consumed by the network-aware algorithm as the social
//     frontier visits each user.
//
// The store is immutable after Build; all query-time structures are
// read-only and safe for concurrent use.
package tagstore

import (
	"errors"
	"fmt"
	"sort"
)

// ItemID is a dense item identifier in [0, NumItems).
type ItemID = int32

// TagID is a dense tag identifier in [0, NumTags).
type TagID = int32

// Triple is one tagging action: user u annotated item i with tag t,
// count times (count ≥ 1; repeated annotation is meaningful on sites
// where an item can be re-bookmarked).
type Triple struct {
	User  int32
	Item  ItemID
	Tag   TagID
	Count int32
}

// Posting is one entry of a global per-tag list: an item and the total
// frequency with which the tag was applied to it across all users.
type Posting struct {
	Item ItemID
	TF   int32
}

// UserPosting is one entry of a per-(user,tag) list.
type UserPosting struct {
	Item ItemID
	TF   int32
}

// Builder accumulates triples before freezing them into a Store.
// Duplicate (user, item, tag) triples have their counts summed.
type Builder struct {
	numUsers int
	numItems int
	numTags  int
	triples  []Triple
}

// NewBuilder returns a Builder over the given universe sizes.
func NewBuilder(numUsers, numItems, numTags int) *Builder {
	return &Builder{numUsers: numUsers, numItems: numItems, numTags: numTags}
}

// Add records a tagging triple with count 1.
func (b *Builder) Add(user int32, item ItemID, tag TagID) {
	b.AddCount(user, item, tag, 1)
}

// AddCount records a tagging triple with an explicit count.
func (b *Builder) AddCount(user int32, item ItemID, tag TagID, count int32) {
	b.triples = append(b.triples, Triple{User: user, Item: item, Tag: tag, Count: count})
}

// Build validates and freezes the store.
func (b *Builder) Build() (*Store, error) {
	if b.numUsers < 0 || b.numItems < 0 || b.numTags < 0 {
		return nil, errors.New("tagstore: negative universe size")
	}
	for _, tr := range b.triples {
		if tr.User < 0 || int(tr.User) >= b.numUsers {
			return nil, fmt.Errorf("tagstore: user %d outside [0,%d)", tr.User, b.numUsers)
		}
		if tr.Item < 0 || int(tr.Item) >= b.numItems {
			return nil, fmt.Errorf("tagstore: item %d outside [0,%d)", tr.Item, b.numItems)
		}
		if tr.Tag < 0 || int(tr.Tag) >= b.numTags {
			return nil, fmt.Errorf("tagstore: tag %d outside [0,%d)", tr.Tag, b.numTags)
		}
		if tr.Count <= 0 {
			return nil, fmt.Errorf("tagstore: non-positive count %d", tr.Count)
		}
	}
	// Merge duplicates.
	merged := make(map[Triple]int32, len(b.triples))
	for _, tr := range b.triples {
		key := Triple{User: tr.User, Item: tr.Item, Tag: tr.Tag}
		merged[key] += tr.Count
	}
	triples := make([]Triple, 0, len(merged))
	for k, c := range merged {
		k.Count = c
		triples = append(triples, k)
	}
	sort.Slice(triples, func(i, j int) bool {
		a, b := triples[i], triples[j]
		if a.User != b.User {
			return a.User < b.User
		}
		if a.Tag != b.Tag {
			return a.Tag < b.Tag
		}
		return a.Item < b.Item
	})

	s := &Store{
		numUsers: b.numUsers,
		numItems: b.numItems,
		numTags:  b.numTags,
		triples:  triples,
	}
	s.buildIndexes()
	return s, nil
}

// Store is the immutable tagging store.
type Store struct {
	numUsers, numItems, numTags int
	triples                     []Triple // canonical sorted triples

	// global per-tag posting lists sorted by (TF desc, Item asc)
	global [][]Posting
	// maxTF[t] = largest global TF of any item under tag t (0 if none)
	maxTF []int32

	// per-(user,tag) posting lists: userTagKeys maps packed key → slice
	// into userPostings. Built as flat sorted structures for memory
	// efficiency.
	userTagOff   map[uint64]int32 // packed(user,tag) → offset into userPostings
	userTagLen   map[uint64]int32
	userPostings []UserPosting

	// userTags[u] = sorted distinct tags used by u
	userTags [][]TagID

	// point lookup (user,item,tag) → count
	point map[uint64]int32
	// point lookup (tag,item) → global count
	globalPoint map[uint64]int32

	totalAnnotations int64
}

func packTI(tag TagID, item ItemID) uint64 {
	return uint64(uint32(tag))<<32 | uint64(uint32(item))
}

func packUT(user int32, tag TagID) uint64 {
	return uint64(uint32(user))<<32 | uint64(uint32(tag))
}

func packUIT(user int32, item ItemID, tag TagID) uint64 {
	// 21 bits each is plenty for the evaluated scales (≤ 2M ids); verify
	// at build time.
	return uint64(uint32(user))<<42 | uint64(uint32(item))<<21 | uint64(uint32(tag))
}

const maxPackedID = 1 << 21

func (s *Store) buildIndexes() {
	// Global lists: aggregate per (tag, item).
	type ti struct {
		t TagID
		i ItemID
	}
	agg := make(map[ti]int32)
	for _, tr := range s.triples {
		agg[ti{tr.Tag, tr.Item}] += tr.Count
		s.totalAnnotations += int64(tr.Count)
	}
	s.global = make([][]Posting, s.numTags)
	s.globalPoint = make(map[uint64]int32, len(agg))
	for k, c := range agg {
		s.global[k.t] = append(s.global[k.t], Posting{Item: k.i, TF: c})
		s.globalPoint[packTI(k.t, k.i)] = c
	}
	s.maxTF = make([]int32, s.numTags)
	for t := range s.global {
		lst := s.global[t]
		sort.Slice(lst, func(i, j int) bool {
			if lst[i].TF != lst[j].TF {
				return lst[i].TF > lst[j].TF
			}
			return lst[i].Item < lst[j].Item
		})
		if len(lst) > 0 {
			s.maxTF[t] = lst[0].TF
		}
	}

	// Per-(user,tag) lists and point index. The triples slice is already
	// sorted by (user, tag, item), so runs are contiguous.
	s.userTagOff = make(map[uint64]int32)
	s.userTagLen = make(map[uint64]int32)
	s.point = make(map[uint64]int32, len(s.triples))
	s.userTags = make([][]TagID, s.numUsers)
	usePacked := s.numUsers < maxPackedID && s.numItems < maxPackedID && s.numTags < maxPackedID
	if !usePacked {
		// The packed point index would overflow; the evaluated scales
		// never reach 2M ids, so treat it as a hard limit.
		panic(fmt.Sprintf("tagstore: universe too large for packed index (%d users, %d items, %d tags)",
			s.numUsers, s.numItems, s.numTags))
	}
	i := 0
	for i < len(s.triples) {
		u, t := s.triples[i].User, s.triples[i].Tag
		start := len(s.userPostings)
		j := i
		for j < len(s.triples) && s.triples[j].User == u && s.triples[j].Tag == t {
			tr := s.triples[j]
			s.userPostings = append(s.userPostings, UserPosting{Item: tr.Item, TF: tr.Count})
			s.point[packUIT(tr.User, tr.Item, tr.Tag)] = tr.Count
			j++
		}
		// order per-user list by TF desc for consistent consumption
		seg := s.userPostings[start:]
		sort.Slice(seg, func(a, b int) bool {
			if seg[a].TF != seg[b].TF {
				return seg[a].TF > seg[b].TF
			}
			return seg[a].Item < seg[b].Item
		})
		s.userTagOff[packUT(u, t)] = int32(start)
		s.userTagLen[packUT(u, t)] = int32(j - i)
		if n := len(s.userTags[u]); n == 0 || s.userTags[u][n-1] != t {
			s.userTags[u] = append(s.userTags[u], t)
		}
		i = j
	}
}

// NumUsers reports the user universe size.
func (s *Store) NumUsers() int { return s.numUsers }

// NumItems reports the item universe size.
func (s *Store) NumItems() int { return s.numItems }

// NumTags reports the tag universe size.
func (s *Store) NumTags() int { return s.numTags }

// NumTriples reports the number of distinct (user, item, tag) triples.
func (s *Store) NumTriples() int { return len(s.triples) }

// TotalAnnotations reports the sum of all counts.
func (s *Store) TotalAnnotations() int64 { return s.totalAnnotations }

// Triples returns the canonical sorted triples. The slice aliases
// internal storage and must not be modified.
func (s *Store) Triples() []Triple { return s.triples }

// GlobalList returns the global posting list of tag t, sorted by
// descending total frequency. The slice aliases internal storage.
func (s *Store) GlobalList(t TagID) []Posting { return s.global[t] }

// MaxTF returns the largest global frequency under tag t; it is the
// per-list score ceiling threshold algorithms use.
func (s *Store) MaxTF(t TagID) int32 { return s.maxTF[t] }

// UserList returns the posting list of (user u, tag t), sorted by
// descending frequency, or nil when u never used t.
func (s *Store) UserList(u int32, t TagID) []UserPosting {
	off, ok := s.userTagOff[packUT(u, t)]
	if !ok {
		return nil
	}
	n := s.userTagLen[packUT(u, t)]
	return s.userPostings[off : off+n]
}

// UserTags returns the sorted distinct tags user u has used. The slice
// aliases internal storage.
func (s *Store) UserTags(u int32) []TagID { return s.userTags[u] }

// TF returns tf(u, i, t): how many times user u applied tag t to item i.
func (s *Store) TF(u int32, i ItemID, t TagID) int32 {
	return s.point[packUIT(u, i, t)]
}

// GlobalTF returns the total frequency of tag t on item i across users.
// The lookup is O(1).
func (s *Store) GlobalTF(i ItemID, t TagID) int32 {
	return s.globalPoint[packTI(t, i)]
}

// Stats summarizes the corpus; it backs Table 1.
type Stats struct {
	Users, Items, Tags  int
	Triples             int
	Annotations         int64
	AvgTriplesPerUser   float64
	DistinctItemsTagged int
	DistinctTagsUsed    int
	MaxGlobalListLen    int
}

// ComputeStats derives corpus statistics.
func (s *Store) ComputeStats() Stats {
	st := Stats{
		Users:       s.numUsers,
		Items:       s.numItems,
		Tags:        s.numTags,
		Triples:     len(s.triples),
		Annotations: s.totalAnnotations,
	}
	if s.numUsers > 0 {
		st.AvgTriplesPerUser = float64(len(s.triples)) / float64(s.numUsers)
	}
	items := make(map[ItemID]struct{})
	for _, tr := range s.triples {
		items[tr.Item] = struct{}{}
	}
	st.DistinctItemsTagged = len(items)
	for t := range s.global {
		if len(s.global[t]) > 0 {
			st.DistinctTagsUsed++
		}
		if len(s.global[t]) > st.MaxGlobalListLen {
			st.MaxGlobalListLen = len(s.global[t])
		}
	}
	return st
}
