// Package tagstore stores the user–item–tag annotation relation of a
// collaborative tagging site and exposes it through the two access paths
// classic top-k processing distinguishes:
//
//   - sequential access: per-tag global posting lists sorted by descending
//     tag frequency, consumed front-to-back by threshold algorithms;
//   - random access: O(1)-ish point lookups tf(u, i, t) and per-(user,tag)
//     lists, consumed by the network-aware algorithm as the social
//     frontier visits each user.
//
// The store is immutable after Build; all query-time structures are
// read-only and safe for concurrent use.
package tagstore

import (
	"errors"
	"fmt"
	"sort"
)

// ItemID is a dense item identifier in [0, NumItems).
type ItemID = int32

// TagID is a dense tag identifier in [0, NumTags).
type TagID = int32

// Triple is one tagging action: user u annotated item i with tag t,
// count times (count ≥ 1; repeated annotation is meaningful on sites
// where an item can be re-bookmarked).
type Triple struct {
	User  int32
	Item  ItemID
	Tag   TagID
	Count int32
}

// Posting is one entry of a global per-tag list: an item and the total
// frequency with which the tag was applied to it across all users.
type Posting struct {
	Item ItemID
	TF   int32
}

// UserPosting is one entry of a per-(user,tag) list.
type UserPosting struct {
	Item ItemID
	TF   int32
}

// Builder accumulates triples before freezing them into a Store.
// Duplicate (user, item, tag) triples have their counts summed.
type Builder struct {
	numUsers int
	numItems int
	numTags  int
	triples  []Triple
}

// NewBuilder returns a Builder over the given universe sizes.
func NewBuilder(numUsers, numItems, numTags int) *Builder {
	return &Builder{numUsers: numUsers, numItems: numItems, numTags: numTags}
}

// Add records a tagging triple with count 1.
func (b *Builder) Add(user int32, item ItemID, tag TagID) {
	b.AddCount(user, item, tag, 1)
}

// AddCount records a tagging triple with an explicit count.
func (b *Builder) AddCount(user int32, item ItemID, tag TagID, count int32) {
	b.triples = append(b.triples, Triple{User: user, Item: item, Tag: tag, Count: count})
}

// Build validates and freezes the store.
func (b *Builder) Build() (*Store, error) {
	if b.numUsers < 0 || b.numItems < 0 || b.numTags < 0 {
		return nil, errors.New("tagstore: negative universe size")
	}
	for _, tr := range b.triples {
		if tr.User < 0 || int(tr.User) >= b.numUsers {
			return nil, fmt.Errorf("tagstore: user %d outside [0,%d)", tr.User, b.numUsers)
		}
		if tr.Item < 0 || int(tr.Item) >= b.numItems {
			return nil, fmt.Errorf("tagstore: item %d outside [0,%d)", tr.Item, b.numItems)
		}
		if tr.Tag < 0 || int(tr.Tag) >= b.numTags {
			return nil, fmt.Errorf("tagstore: tag %d outside [0,%d)", tr.Tag, b.numTags)
		}
		if tr.Count <= 0 {
			return nil, fmt.Errorf("tagstore: non-positive count %d", tr.Count)
		}
	}
	// Merge duplicates.
	merged := make(map[Triple]int32, len(b.triples))
	for _, tr := range b.triples {
		key := Triple{User: tr.User, Item: tr.Item, Tag: tr.Tag}
		merged[key] += tr.Count
	}
	triples := make([]Triple, 0, len(merged))
	for k, c := range merged {
		k.Count = c
		triples = append(triples, k)
	}
	sort.Slice(triples, func(i, j int) bool {
		a, b := triples[i], triples[j]
		if a.User != b.User {
			return a.User < b.User
		}
		if a.Tag != b.Tag {
			return a.Tag < b.Tag
		}
		return a.Item < b.Item
	})

	s := &Store{
		numUsers: b.numUsers,
		numItems: b.numItems,
		numTags:  b.numTags,
		triples:  triples,
	}
	s.buildIndexes()
	return s, nil
}

// Store is the immutable tagging store.
type Store struct {
	numUsers, numItems, numTags int
	triples                     []Triple // canonical sorted triples

	// global per-tag posting lists sorted by (TF desc, Item asc)
	global [][]Posting
	// maxTF[t] = largest global TF of any item under tag t (0 if none)
	maxTF []int32

	// Per-user tag CSR: user u's distinct tags are
	// utTags[utStart[u]:utStart[u+1]] (sorted ascending), and the tag at
	// index j owns userPostings[utOff[j] : utOff[j]+utLen[j]]. A flat
	// binary search over the (small) per-user tag segment replaces the
	// packed-key hash lookups the random-access path used to pay per
	// settled user — no hashing, no map runtime, cache-local.
	utStart      []int32 // len numUsers+1
	utTags       []TagID // parallel to utOff/utLen
	utOff        []int32
	utLen        []int32
	userPostings []UserPosting

	// Per-item tag CSR for gtf(i, t): item i's tags are
	// itTags[itStart[i]:itStart[i+1]] (sorted ascending) with their
	// global frequencies in itTF. Replaces the packed-key global point
	// map on the candidate-creation path.
	itStart []int32 // len numItems+1
	itTags  []TagID
	itTF    []int32

	// point lookup (user,item,tag) → count
	point map[uint64]int32

	totalAnnotations int64
}

func packUIT(user int32, item ItemID, tag TagID) uint64 {
	// 21 bits each is plenty for the evaluated scales (≤ 2M ids); verify
	// at build time.
	return uint64(uint32(user))<<42 | uint64(uint32(item))<<21 | uint64(uint32(tag))
}

const maxPackedID = 1 << 21

func (s *Store) buildIndexes() {
	// Global lists: aggregate per (tag, item).
	type ti struct {
		t TagID
		i ItemID
	}
	agg := make(map[ti]int32)
	for _, tr := range s.triples {
		agg[ti{tr.Tag, tr.Item}] += tr.Count
		s.totalAnnotations += int64(tr.Count)
	}
	s.global = make([][]Posting, s.numTags)
	for k, c := range agg {
		s.global[k.t] = append(s.global[k.t], Posting{Item: k.i, TF: c})
	}
	s.maxTF = make([]int32, s.numTags)
	for t := range s.global {
		lst := s.global[t]
		sort.Slice(lst, func(i, j int) bool {
			if lst[i].TF != lst[j].TF {
				return lst[i].TF > lst[j].TF
			}
			return lst[i].Item < lst[j].Item
		})
		if len(lst) > 0 {
			s.maxTF[t] = lst[0].TF
		}
	}

	// Per-item tag CSR: the same (tag, item) aggregates keyed by item.
	type it struct {
		i ItemID
		t TagID
		c int32
	}
	flat := make([]it, 0, len(agg))
	for k, c := range agg {
		flat = append(flat, it{i: k.i, t: k.t, c: c})
	}
	sort.Slice(flat, func(a, b int) bool {
		if flat[a].i != flat[b].i {
			return flat[a].i < flat[b].i
		}
		return flat[a].t < flat[b].t
	})
	s.itStart = make([]int32, s.numItems+1)
	s.itTags = make([]TagID, len(flat))
	s.itTF = make([]int32, len(flat))
	cur := 0
	for j, e := range flat {
		for cur <= int(e.i) {
			s.itStart[cur] = int32(j)
			cur++
		}
		s.itTags[j] = e.t
		s.itTF[j] = e.c
	}
	for ; cur <= s.numItems; cur++ {
		s.itStart[cur] = int32(len(flat))
	}

	// Per-(user,tag) lists and point index. The triples slice is already
	// sorted by (user, tag, item), so runs are contiguous and the
	// per-user CSR segments come out tag-sorted by construction.
	s.point = make(map[uint64]int32, len(s.triples))
	usePacked := s.numUsers < maxPackedID && s.numItems < maxPackedID && s.numTags < maxPackedID
	if !usePacked {
		// The packed point index would overflow; the evaluated scales
		// never reach 2M ids, so treat it as a hard limit.
		panic(fmt.Sprintf("tagstore: universe too large for packed index (%d users, %d items, %d tags)",
			s.numUsers, s.numItems, s.numTags))
	}
	s.utStart = make([]int32, s.numUsers+1)
	userCur := 0
	i := 0
	for i < len(s.triples) {
		u, t := s.triples[i].User, s.triples[i].Tag
		for userCur <= int(u) {
			s.utStart[userCur] = int32(len(s.utTags))
			userCur++
		}
		start := len(s.userPostings)
		j := i
		for j < len(s.triples) && s.triples[j].User == u && s.triples[j].Tag == t {
			tr := s.triples[j]
			s.userPostings = append(s.userPostings, UserPosting{Item: tr.Item, TF: tr.Count})
			s.point[packUIT(tr.User, tr.Item, tr.Tag)] = tr.Count
			j++
		}
		// order per-user list by TF desc for consistent consumption
		seg := s.userPostings[start:]
		sort.Slice(seg, func(a, b int) bool {
			if seg[a].TF != seg[b].TF {
				return seg[a].TF > seg[b].TF
			}
			return seg[a].Item < seg[b].Item
		})
		s.utTags = append(s.utTags, t)
		s.utOff = append(s.utOff, int32(start))
		s.utLen = append(s.utLen, int32(j-i))
		i = j
	}
	for ; userCur <= s.numUsers; userCur++ {
		s.utStart[userCur] = int32(len(s.utTags))
	}
}

// NumUsers reports the user universe size.
func (s *Store) NumUsers() int { return s.numUsers }

// NumItems reports the item universe size.
func (s *Store) NumItems() int { return s.numItems }

// NumTags reports the tag universe size.
func (s *Store) NumTags() int { return s.numTags }

// NumTriples reports the number of distinct (user, item, tag) triples.
func (s *Store) NumTriples() int { return len(s.triples) }

// TotalAnnotations reports the sum of all counts.
func (s *Store) TotalAnnotations() int64 { return s.totalAnnotations }

// Triples returns the canonical sorted triples. The slice aliases
// internal storage and must not be modified.
func (s *Store) Triples() []Triple { return s.triples }

// GlobalList returns the global posting list of tag t, sorted by
// descending total frequency. The slice aliases internal storage.
func (s *Store) GlobalList(t TagID) []Posting { return s.global[t] }

// MaxTF returns the largest global frequency under tag t; it is the
// per-list score ceiling threshold algorithms use.
func (s *Store) MaxTF(t TagID) int32 { return s.maxTF[t] }

// UserList returns the posting list of (user u, tag t), sorted by
// descending frequency, or nil when u never used t. The lookup is a
// binary search over u's (small, sorted) tag segment in the flat CSR —
// no hashing, no pointer chasing.
func (s *Store) UserList(u int32, t TagID) []UserPosting {
	lo, hi := s.utStart[u], s.utStart[u+1]
	for lo < hi {
		mid := (lo + hi) / 2
		if s.utTags[mid] < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < s.utStart[u+1] && s.utTags[lo] == t {
		off, n := s.utOff[lo], s.utLen[lo]
		return s.userPostings[off : off+n]
	}
	return nil
}

// UserTags returns the sorted distinct tags user u has used. The slice
// aliases internal storage.
func (s *Store) UserTags(u int32) []TagID {
	return s.utTags[s.utStart[u]:s.utStart[u+1]]
}

// TF returns tf(u, i, t): how many times user u applied tag t to item i.
func (s *Store) TF(u int32, i ItemID, t TagID) int32 {
	return s.point[packUIT(u, i, t)]
}

// GlobalTF returns the total frequency of tag t on item i across users:
// a binary search over item i's sorted tag segment in the flat CSR.
func (s *Store) GlobalTF(i ItemID, t TagID) int32 {
	lo, hi := s.itStart[i], s.itStart[i+1]
	for lo < hi {
		mid := (lo + hi) / 2
		if s.itTags[mid] < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < s.itStart[i+1] && s.itTags[lo] == t {
		return s.itTF[lo]
	}
	return 0
}

// Stats summarizes the corpus; it backs Table 1.
type Stats struct {
	Users, Items, Tags  int
	Triples             int
	Annotations         int64
	AvgTriplesPerUser   float64
	DistinctItemsTagged int
	DistinctTagsUsed    int
	MaxGlobalListLen    int
}

// ComputeStats derives corpus statistics.
func (s *Store) ComputeStats() Stats {
	st := Stats{
		Users:       s.numUsers,
		Items:       s.numItems,
		Tags:        s.numTags,
		Triples:     len(s.triples),
		Annotations: s.totalAnnotations,
	}
	if s.numUsers > 0 {
		st.AvgTriplesPerUser = float64(len(s.triples)) / float64(s.numUsers)
	}
	items := make(map[ItemID]struct{})
	for _, tr := range s.triples {
		items[tr.Item] = struct{}{}
	}
	st.DistinctItemsTagged = len(items)
	for t := range s.global {
		if len(s.global[t]) > 0 {
			st.DistinctTagsUsed++
		}
		if len(s.global[t]) > st.MaxGlobalListLen {
			st.MaxGlobalListLen = len(s.global[t])
		}
	}
	return st
}
