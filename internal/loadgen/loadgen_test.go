package loadgen

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/search"
)

// stubTarget answers instantly with a canned outcome per class.
type stubTarget struct {
	calls    atomic.Int64
	writes   atomic.Int64
	batches  atomic.Int64
	err      error
	degraded bool
	delay    time.Duration
}

func (s *stubTarget) Do(ctx context.Context, req search.Request) (search.Response, error) {
	s.calls.Add(1)
	if s.delay > 0 {
		select {
		case <-time.After(s.delay):
		case <-ctx.Done():
			return search.Response{}, ctx.Err()
		}
	}
	if s.err != nil {
		return search.Response{}, s.err
	}
	return search.Response{Results: []search.Result{{Item: "x", Score: 1}}, Degraded: s.degraded}, nil
}

func (s *stubTarget) DoBatch(ctx context.Context, reqs []search.Request) []search.BatchResult {
	s.batches.Add(1)
	out := make([]search.BatchResult, len(reqs))
	for i := range out {
		resp, err := s.Do(ctx, reqs[i])
		out[i] = search.BatchResult{Response: resp, Err: err}
	}
	return out
}

func (s *stubTarget) Befriend(ctx context.Context, a, b string, w float64) error {
	s.writes.Add(1)
	return s.err
}

func (s *stubTarget) Tag(ctx context.Context, user, item, tag string) error {
	s.writes.Add(1)
	return s.err
}

func baseCfg(qps float64) Config {
	return Config{
		QPS:      qps,
		Duration: 300 * time.Millisecond,
		SLO:      50 * time.Millisecond,
		Seekers:  []string{"alice", "bob"},
		Tags:     []string{"pizza"},
	}
}

func TestRunOffersAtConfiguredRate(t *testing.T) {
	st := &stubTarget{}
	rep, err := Run(context.Background(), st, baseCfg(200))
	if err != nil {
		t.Fatal(err)
	}
	// 200 QPS for 0.3s = 60 arrivals; allow generous scheduling slack.
	if rep.Offered < 40 || rep.Offered > 80 {
		t.Fatalf("Offered = %d, want ~60", rep.Offered)
	}
	if rep.Sent != rep.Offered || rep.Dropped != 0 {
		t.Fatalf("Sent=%d Dropped=%d, want all offered sent", rep.Sent, rep.Dropped)
	}
	if rep.OK != rep.Sent {
		t.Fatalf("OK = %d of %d: instant stub should always be on SLO", rep.OK, rep.Sent)
	}
	if rep.Goodput <= 0 || rep.P99 <= 0 {
		t.Fatalf("report missing goodput/quantiles: %+v", rep)
	}
}

func TestRunClassifiesSheds(t *testing.T) {
	st := &stubTarget{err: search.Overloadedf(time.Second, "shed")}
	rep, err := Run(context.Background(), st, baseCfg(100))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shed != rep.Sent || rep.OK != 0 {
		t.Fatalf("Shed=%d Sent=%d OK=%d, want all shed", rep.Shed, rep.Sent, rep.OK)
	}
	if rep.ShedPct < 99 {
		t.Fatalf("ShedPct = %v, want ~100", rep.ShedPct)
	}
}

func TestRunCountsDegraded(t *testing.T) {
	st := &stubTarget{degraded: true}
	rep, err := Run(context.Background(), st, baseCfg(100))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Degraded != rep.OK+rep.Late || rep.Degraded == 0 {
		t.Fatalf("Degraded = %d of %d successes, want all", rep.Degraded, rep.OK+rep.Late)
	}
	if rep.DegradedPct < 99 {
		t.Fatalf("DegradedPct = %v, want ~100", rep.DegradedPct)
	}
}

func TestOpenLoopKeepsOfferingWhenTargetStalls(t *testing.T) {
	// A closed-loop harness with one worker would offer ~1 request per
	// delay; the open loop must keep offering at the arrival rate and
	// count the overflowing arrivals as dropped once the cap is hit.
	st := &stubTarget{delay: time.Second}
	cfg := baseCfg(200)
	cfg.Timeout = 2 * time.Second
	cfg.MaxOutstanding = 10
	rep, err := Run(context.Background(), st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Offered < 40 {
		t.Fatalf("Offered = %d: arrival loop throttled by the stalled target", rep.Offered)
	}
	if rep.Dropped == 0 {
		t.Fatal("Dropped = 0: overflow past MaxOutstanding must be accounted, not hidden")
	}
	if rep.Offered != rep.Sent+rep.Dropped {
		t.Fatalf("Offered %d != Sent %d + Dropped %d", rep.Offered, rep.Sent, rep.Dropped)
	}
}

func TestWriteMixReachesMutations(t *testing.T) {
	st := &stubTarget{}
	cfg := baseCfg(300)
	cfg.Mix = Mix{Read: 1, Write: 1, Batch: 1}
	cfg.BatchSize = 2
	rep, err := Run(context.Background(), st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.writes.Load() == 0 || st.batches.Load() == 0 {
		t.Fatalf("mix not exercised: writes=%d batches=%d", st.writes.Load(), st.batches.Load())
	}
	if rep.OK == 0 {
		t.Fatalf("no successes: %+v", rep)
	}
}

func TestSweepProducesOneReportPerStep(t *testing.T) {
	st := &stubTarget{}
	cfg := baseCfg(0)
	cfg.Duration = 100 * time.Millisecond
	reps, err := Sweep(context.Background(), st, cfg, []float64{50, 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 || reps[0].QPS != 50 || reps[1].QPS != 100 {
		t.Fatalf("sweep = %+v, want steps at 50 and 100", reps)
	}
}

func TestConfigValidation(t *testing.T) {
	st := &stubTarget{}
	if _, err := Run(context.Background(), st, Config{Duration: time.Second, Seekers: []string{"a"}}); err == nil {
		t.Error("zero QPS accepted")
	}
	if _, err := Run(context.Background(), st, Config{QPS: 10, Seekers: []string{"a"}}); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := Run(context.Background(), st, Config{QPS: 10, Duration: time.Second}); err == nil {
		t.Error("empty corpus accepted")
	}
}
